(* calm_repl — an interactive Datalog¬ shell over the library.

   Lines containing ':-' are rules (accumulated into the program); lines
   like 'E(1,2).' are facts (accumulated into the instance); ':'-commands
   drive evaluation, classification, and network simulation. Reads stdin,
   so it is scriptable:  echo '...' | dune exec bin/calm_repl.exe *)

open Relational

type state = {
  mutable rules : Datalog.Ast.program;
  mutable facts : Instance.t;
}

let state = { rules = []; facts = Instance.empty }

let help () =
  print_string
    "commands:\n\
    \  <rule>.            add a rule        (anything containing ':-')\n\
    \  <fact>.            add input facts   (e.g. E(1,2).)\n\
    \  :run               evaluate (stratified; falls back to well-founded)\n\
    \  :classify          fragment, CALM level, points of order\n\
    \  :simulate N        run the compiled strategy on N simulated nodes\n\
    \  :rules / :facts    show current program / instance\n\
    \  :load FILE         load rules from FILE\n\
    \  :clear             forget rules and facts\n\
    \  :help / :quit\n"

let program_of_rules () =
  Datalog.Adom.augment state.rules

let outputs_of_rules rules =
  List.map (fun (r : Datalog.Ast.rule) -> r.Datalog.Ast.head.Datalog.Ast.pred) rules
  |> List.sort_uniq String.compare
  |> List.filter (fun p -> p <> Datalog.Adom.predicate)

let with_program k =
  if state.rules = [] then print_endline "no rules yet (type one, or :help)"
  else
    let rules = program_of_rules () in
    let outputs = outputs_of_rules state.rules in
    k rules outputs

let run () =
  with_program (fun rules outputs ->
      match Datalog.Eval.stratified rules state.facts with
      | Ok full ->
        let out = Instance.restrict_rels full outputs in
        Printf.printf "%s\n" (Instance.to_string out)
      | Error _ ->
        let m = Datalog.Wellfounded.eval rules state.facts in
        Printf.printf "well-founded: true = %s; undefined = %s\n"
          (Instance.to_string
             (Instance.restrict_rels m.Datalog.Wellfounded.true_facts outputs))
          (Instance.to_string
             (Instance.restrict_rels m.Datalog.Wellfounded.undefined outputs)))

let classify () =
  with_program (fun rules _ ->
      Printf.printf "fragment:        %s\n"
        (Datalog.Fragment.to_string (Datalog.Fragment.classify rules));
      Printf.printf "connectivity:    %s\n" (Datalog.Connectivity.explain rules);
      Printf.printf "points of order: %s\n"
        (Datalog.Points_of_order.coordination_level rules);
      let level =
        Calm_core.Hierarchy.of_fragment (Datalog.Fragment.classify rules)
      in
      Printf.printf "CALM level:      %s (model: %s)\n"
        (Calm_core.Hierarchy.to_string level)
        (Calm_core.Hierarchy.transducer_model level))

let simulate n =
  with_program (fun _rules outputs ->
      match
        Datalog.Program.parse ~outputs
          (Datalog.Ast.to_string state.rules)
      with
      | exception Invalid_argument msg -> Printf.printf "cannot simulate: %s\n" msg
      | program -> (
        match Calm_core.Compile.compile_program program with
        | exception Invalid_argument msg ->
          Printf.printf "cannot compile: %s\n" msg
        | compiled ->
          let network =
            Distributed.network_of_ints (List.init (max n 1) (fun i -> i + 1))
          in
          let policy =
            Network.Policy.hash_value compiled.Calm_core.Compile.query.Query.input
              network
          in
          let result =
            Network.Run.run ~variant:compiled.Calm_core.Compile.variant ~policy
              ~transducer:compiled.Calm_core.Compile.transducer
              ~input:state.facts Network.Run.Round_robin
          in
          let expected = Datalog.Program.run program state.facts in
          Printf.printf
            "level=%s nodes=%d quiesced=%b messages=%d correct=%b\n\
             output: %s\n"
            (Calm_core.Hierarchy.to_string compiled.Calm_core.Compile.level)
            n result.Network.Run.quiesced result.Network.Run.messages_sent
            (Instance.equal result.Network.Run.outputs expected)
            (Instance.to_string result.Network.Run.outputs)))

let add_line line =
  let contains_turnstile =
    let rec go i =
      i + 1 < String.length line
      && ((line.[i] = ':' && line.[i + 1] = '-') || go (i + 1))
    in
    go 0
  in
  if contains_turnstile then (
    match Datalog.Parser.parse_program line with
    | rules ->
      state.rules <- state.rules @ rules;
      Printf.printf "added %d rule(s)\n" (List.length rules)
    | exception Datalog.Parser.Syntax_error { line; col; message } ->
      Printf.printf "syntax error (line %d, column %d): %s\n" line col message)
  else
    match Io.parse_facts line with
    | facts ->
      state.facts <- Instance.union state.facts facts;
      Printf.printf "added %d fact(s), instance now %d\n"
        (Instance.cardinal facts)
        (Instance.cardinal state.facts)
    | exception Invalid_argument msg -> Printf.printf "error: %s\n" msg

let load file =
  match open_in file with
  | exception Sys_error e -> Printf.printf "error: %s\n" e
  | ic ->
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    add_line s

let handle line =
  let line = String.trim line in
  if line = "" then ()
  else if line.[0] = ':' then begin
    match String.split_on_char ' ' line with
    | ":quit" :: _ | ":q" :: _ -> raise Exit
    | ":help" :: _ -> help ()
    | ":run" :: _ -> run ()
    | ":classify" :: _ -> classify ()
    | ":simulate" :: arg :: _ ->
      (match int_of_string_opt arg with
      | Some n -> simulate n
      | None -> print_endline "usage: :simulate N")
    | ":simulate" :: _ -> simulate 3
    | ":rules" :: _ ->
      if state.rules = [] then print_endline "(none)"
      else print_endline (Datalog.Ast.to_string state.rules)
    | ":facts" :: _ -> print_endline (Instance.to_string state.facts)
    | ":load" :: file :: _ -> load file
    | ":clear" :: _ ->
      state.rules <- [];
      state.facts <- Instance.empty;
      print_endline "cleared"
    | cmd :: _ -> Printf.printf "unknown command %s (:help)\n" cmd
    | [] -> ()
  end
  else add_line line

let () =
  let interactive = Unix.isatty Unix.stdin in
  if interactive then begin
    print_endline "calm repl — Datalog¬ + CALM hierarchy (:help for commands)"
  end;
  try
    while true do
      if interactive then (print_string "calm> "; flush stdout);
      match input_line stdin with
      | line -> handle line
      | exception End_of_file -> raise Exit
    done
  with Exit -> if interactive then print_endline "bye"
