(* calm — command-line driver for the library.

   Subcommands:
     calm eval      evaluate a Datalog¬ program on an input instance
     calm classify  syntactic fragment + CALM level + empirical placement
     calm check     monotonicity-class membership with explicit bounds
     calm simulate  compile to a coordination-free transducer and run it
                    on a simulated asynchronous network
     calm run       one instrumented network run (--metrics-out,
                    --trace-out, --profile, --causal-out/-dot/-chrome)
     calm sweep     the policy × scheduler grid, optionally parallel
                    (--traces-out for deterministic causal JSONL)
     calm netquery  "the network computes the query" verdict
     calm explain   provenance of an output fact: its causal cone,
                    replay-validated
     calm detect    empirical coordination detection vs the static claim
     calm validate  schema-check emitted telemetry artifacts
     calm bench-diff  stable-metric regression guard vs a baseline
                    (--update accepts the new trajectory in place)
     calm plan      EXPLAIN ANALYZE of the compiled Joindb plans
     calm profile   span-tree attribution of the monotonicity scans
                    (--out/--folded/--chrome exports)

   Programs use the conventional syntax (see lib/datalog/parser.mli);
   facts are given as 'E(1,2). E(2,3)'. *)

open Relational
open Cmdliner

(* ------------------------------------------------------------------ *)
(* Shared argument plumbing *)

let read_file f =
  let ic = open_in f in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let program_src_term =
  let program =
    Arg.(
      value
      & opt (some string) None
      & info [ "program"; "p" ] ~docv:"RULES" ~doc:"Program text.")
  in
  let file =
    Arg.(
      value
      & opt (some file) None
      & info [ "file"; "f" ] ~docv:"FILE" ~doc:"Program file.")
  in
  let combine program file =
    match (program, file) with
    | Some s, None -> `Ok s
    | None, Some f -> `Ok (read_file f)
    | None, None -> `Error (false, "one of --program or --file is required")
    | Some _, Some _ -> `Error (false, "give only one of --program, --file")
  in
  Term.(ret (const combine $ program $ file))

(* Like [program_src_term], but the source may be absent (commands with a
   --fixture mode validate its presence themselves). *)
let program_src_opt_term =
  let program =
    Arg.(
      value
      & opt (some string) None
      & info [ "program"; "p" ] ~docv:"RULES" ~doc:"Program text.")
  in
  let file =
    Arg.(
      value
      & opt (some file) None
      & info [ "file"; "f" ] ~docv:"FILE" ~doc:"Program file.")
  in
  let combine program file =
    match (program, file) with
    | Some s, None -> `Ok (Some s)
    | None, Some f -> `Ok (Some (read_file f))
    | None, None -> `Ok None
    | Some _, Some _ -> `Error (false, "give only one of --program, --file")
  in
  Term.(ret (const combine $ program $ file))

let outputs_term =
  Arg.(
    value
    & opt (list string) [ "O" ]
    & info [ "outputs"; "o" ] ~docv:"RELS" ~doc:"Output relations.")

let semantics_term =
  Arg.(
    value
    & opt
        (enum
           [
             ("stratified", Datalog.Program.Stratified);
             ("well-founded", Datalog.Program.Well_founded);
           ])
        Datalog.Program.Stratified
    & info [ "semantics" ] ~docv:"SEM" ~doc:"stratified or well-founded.")

let jobs_term =
  Arg.(
    value
    & opt int (Parallel.Pool.default_jobs ())
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Worker domains for the parallel search paths (membership \
           checking, model checking). Defaults to the number of cores; 1 \
           forces the sequential paths. Verdicts and certificates are \
           independent of $(docv).")

let facts_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "facts"; "i" ] ~docv:"FACTS" ~doc:"Input facts, e.g. 'E(1,2). E(2,3)'.")

let facts_file_term =
  Arg.(
    value
    & opt (some file) None
    & info [ "facts-file" ] ~docv:"FILE" ~doc:"File of input facts.")

let parse_facts s =
  s
  |> String.split_on_char '.'
  |> List.filter_map (fun part ->
         let part = String.trim part in
         if part = "" then None else Some (Fact.of_string part))
  |> Instance.of_list

let default_input schema =
  List.fold_left
    (fun acc (name, ar) ->
      List.fold_left
        (fun acc k ->
          Instance.add
            (Fact.make name (List.init ar (fun i -> Value.Int (k + i))))
            acc)
        acc [ 1; 2; 3 ])
    Instance.empty
    (Schema.relations schema)

let resolve_input schema facts facts_file =
  match (facts, facts_file) with
  | Some s, _ -> parse_facts s
  | None, Some f -> parse_facts (read_file f)
  | None, None -> default_input schema

let load_program ~outputs ~semantics src =
  try Datalog.Program.parse ~outputs ~semantics src with
  | Datalog.Parser.Syntax_error { line; col; message } ->
    Printf.eprintf "syntax error (line %d, column %d): %s\n" line col message;
    exit 1
  | Invalid_argument msg ->
    Printf.eprintf "invalid program: %s\n" msg;
    exit 1

(* Like {!load_program} but falls back to the well-founded semantics for
   unstratifiable programs (win-move!). *)
let load_program_any ~outputs src =
  match Datalog.Program.parse ~outputs ~semantics:Datalog.Program.Stratified src with
  | p -> p
  | exception Invalid_argument _ ->
    Printf.eprintf "(not stratifiable; using well-founded semantics)\n";
    load_program ~outputs ~semantics:Datalog.Program.Well_founded src
  | exception Datalog.Parser.Syntax_error { line; col; message } ->
    Printf.eprintf "syntax error (line %d, column %d): %s\n" line col message;
    exit 1

(* ------------------------------------------------------------------ *)
(* Observability plumbing: --metrics-out / --trace-out / --profile.

   The wrapper resets the root collector, enables the default event sink
   when a trace is requested, runs the command body, and then writes the
   requested artifacts. Stable metrics are jobs-independent (see
   lib/observe/metrics.mli); --redact-timings makes --profile output
   reproducible too. *)

type obs = {
  metrics_out : string option;
  trace_out : string option;
  profile : bool;
  profile_out : string option;
  redact_timings : bool;
  series_out : string option;
  live : bool;
  heartbeat : float;
}

let obs_term =
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:
            "Write a calm-metrics/v1 JSON snapshot of the run's metrics to \
             $(docv). Stable metrics are independent of $(b,--jobs).")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Record structured events and write them to $(docv): Chrome \
             trace_event JSON (open in Perfetto or chrome://tracing; pool \
             workers appear as separate tracks), or JSONL when $(docv) \
             ends in $(b,.jsonl).")
  in
  let profile =
    Arg.(
      value & flag
      & info [ "profile" ]
          ~doc:
            "Enable span profiling and print a human-readable metrics \
             profile plus the attribution span tree to stdout at exit.")
  in
  let profile_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "profile-out" ] ~docv:"FILE"
          ~doc:
            "Enable span profiling and write a calm-profile/v1 JSON \
             document (span tree with counts, annotations, and timings) \
             to $(docv). Counts and annotations are independent of \
             $(b,--jobs).")
  in
  let redact_timings =
    Arg.(
      value & flag
      & info [ "redact-timings" ]
          ~doc:
            "In $(b,--profile) output, replace schedule-dependent numbers \
             (durations, per-worker tallies) with '-' so the profile is \
             byte-reproducible.")
  in
  let series_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "series-out" ] ~docv:"FILE"
          ~doc:
            "Enable the time-series recorder and write a calm-series/v1 \
             JSONL document (per-round / per-depth / per-base \
             trajectories) to $(docv). Stable series are independent of \
             $(b,--jobs).")
  in
  let live =
    Arg.(
      value & flag
      & info [ "live" ]
          ~doc:
            "Enable the time-series recorder and print live \
             rate/quantile/ETA progress lines to stderr at the \
             $(b,--heartbeat) cadence.")
  in
  let heartbeat =
    Arg.(
      value
      & opt float 5.
      & info [ "heartbeat" ] ~docv:"SECS"
          ~doc:
            "Cadence (seconds) of progress output: plain \\[hb\\] lines \
             during network stabilization, and \\[live\\] lines when \
             $(b,--live) is set. 0 disables the plain heartbeat.")
  in
  let mk metrics_out trace_out profile profile_out redact_timings series_out
      live heartbeat =
    {
      metrics_out;
      trace_out;
      profile;
      profile_out;
      redact_timings;
      series_out;
      live;
      heartbeat;
    }
  in
  Term.(
    const mk $ metrics_out $ trace_out $ profile $ profile_out
    $ redact_timings $ series_out $ live $ heartbeat)

let write_file f s =
  let oc = open_out f in
  output_string oc s;
  close_out oc

let with_observability obs f =
  Observe.Metrics.reset Observe.Metrics.root;
  if obs.trace_out <> None then Observe.Sink.enable Observe.Sink.default;
  if obs.profile || obs.profile_out <> None then Observe.Profile.enable ();
  if obs.series_out <> None || obs.live then begin
    Observe.Series.reset Observe.Series.root;
    Observe.Series.enable ();
    if obs.live then Observe.Series.set_live obs.heartbeat
  end;
  let finish () =
    Observe.Profile.disable ();
    (if obs.series_out <> None || obs.live then begin
       Observe.Series.disable ();
       Observe.Series.set_live 0.;
       match obs.series_out with
       | None -> ()
       | Some file -> write_file file (Observe.Series.to_jsonl Observe.Series.root)
     end);
    (match obs.metrics_out with
    | None -> ()
    | Some file ->
      write_file file
        (Observe.Json.to_string_pretty
           (Observe.Metrics.to_json Observe.Metrics.root)
        ^ "\n"));
    (match obs.trace_out with
    | None -> ()
    | Some file ->
      let events = Observe.Sink.events Observe.Sink.default in
      Observe.Sink.disable Observe.Sink.default;
      if Filename.check_suffix file ".jsonl" then
        write_file file (Observe.Sink.to_jsonl events)
      else write_file file (Observe.Sink.to_chrome events));
    (match obs.profile_out with
    | None -> ()
    | Some file ->
      write_file file
        (Observe.Json.to_string_pretty
           (Observe.Profile.to_json Observe.Metrics.root)
        ^ "\n"));
    if obs.profile then begin
      Format.printf "%a@?"
        (Observe.Metrics.pp_profile ~redact_timings:obs.redact_timings)
        Observe.Metrics.root;
      Format.printf "%a@?"
        (Observe.Profile.pp ~redact_timings:obs.redact_timings)
        Observe.Metrics.root
    end
  in
  Fun.protect ~finally:finish f

(* ------------------------------------------------------------------ *)
(* calm eval *)

let eval_cmd =
  let run src outputs semantics facts facts_file =
    let program = load_program ~outputs ~semantics src in
    let input = resolve_input (Datalog.Program.input_schema program) facts facts_file in
    let out = Datalog.Program.run program input in
    Printf.printf "input  (%d facts): %s\n" (Instance.cardinal input)
      (Instance.to_string input);
    Printf.printf "output (%d facts): %s\n" (Instance.cardinal out)
      (Instance.to_string out)
  in
  Cmd.v
    (Cmd.info "eval" ~doc:"evaluate a Datalog¬ program on an input instance")
    Term.(
      const run $ program_src_term $ outputs_term $ semantics_term
      $ facts_term $ facts_file_term)

(* ------------------------------------------------------------------ *)
(* calm classify *)

let bounds_term =
  let dom =
    Arg.(value & opt int 3 & info [ "dom" ] ~doc:"Base-domain size for checks.")
  in
  let fresh = Arg.(value & opt int 2 & info [ "fresh" ] ~doc:"Fresh values.") in
  let base =
    Arg.(value & opt int 3 & info [ "max-base" ] ~doc:"Max base facts.")
  in
  let ext =
    Arg.(value & opt int 2 & info [ "max-ext" ] ~doc:"Max extension facts.")
  in
  let mk dom_size fresh max_base max_ext =
    { Monotone.Checker.dom_size; fresh; max_base; max_ext }
  in
  Term.(const mk $ dom $ fresh $ base $ ext)

let classify_cmd =
  let run src outputs bounds jobs =
    let program = load_program_any ~outputs src in
    let fragment = Datalog.Program.fragment program in
    Printf.printf "fragment:        %s\n" (Datalog.Fragment.to_string fragment);
    Printf.printf "connectivity:    %s\n"
      (Datalog.Connectivity.explain program.Datalog.Program.rules);
    let syntactic = Calm_core.Hierarchy.of_fragment fragment in
    Printf.printf "syntactic level: %s (class %s; model %s; fragment %s)\n"
      (Calm_core.Hierarchy.to_string syntactic)
      (Calm_core.Hierarchy.monotonicity_class syntactic)
      (Calm_core.Hierarchy.transducer_model syntactic)
      (Calm_core.Hierarchy.datalog_fragment syntactic);
    let q = Datalog.Program.query ~name:"program" program in
    let empirical = Calm_core.Hierarchy.place_empirically ~bounds ~jobs q in
    Printf.printf "empirical level: %s (bounded: dom %d, fresh %d, base %d, ext %d)\n"
      (Calm_core.Hierarchy.to_string empirical)
      bounds.Monotone.Checker.dom_size bounds.Monotone.Checker.fresh
      bounds.Monotone.Checker.max_base bounds.Monotone.Checker.max_ext;
    let points = Datalog.Points_of_order.analyze program.Datalog.Program.rules in
    Printf.printf "points of order: %d — %s\n" (List.length points)
      (Datalog.Points_of_order.coordination_level program.Datalog.Program.rules);
    List.iter
      (fun pt -> Format.printf "  %a@." Datalog.Points_of_order.pp_point pt)
      points
  in
  Cmd.v
    (Cmd.info "classify"
       ~doc:"place a program in the refined CALM hierarchy")
    Term.(
      const run $ program_src_term $ outputs_term $ bounds_term $ jobs_term)

(* ------------------------------------------------------------------ *)
(* calm check *)

let check_cmd =
  let kind_term =
    Arg.(
      value
      & opt
          (enum
             [
               ("plain", Monotone.Classes.Plain);
               ("distinct", Monotone.Classes.Distinct);
               ("disjoint", Monotone.Classes.Disjoint);
             ])
          Monotone.Classes.Plain
      & info [ "class" ] ~docv:"KIND" ~doc:"plain, distinct, or disjoint.")
  in
  let run src outputs kind bounds jobs obs =
    (* Compute the exit code inside the wrapper and [exit] after it, so
       a violated check still writes its telemetry artifacts
       (--metrics-out/--series-out used to be skipped on exit 2). *)
    let code =
      with_observability obs @@ fun () ->
      let program = load_program_any ~outputs src in
      let q = Datalog.Program.query ~name:"program" program in
      let t0 = Unix.gettimeofday () in
      let outcome = Monotone.Checker.check_exhaustive ~bounds ~jobs kind q in
      let wall = Unix.gettimeofday () -. t0 in
      match outcome with
      | Monotone.Checker.No_violation { pairs } ->
        Printf.printf
          "%s-monotonicity holds on all %d admissible pairs within bounds\n"
          (Monotone.Classes.kind_to_string kind)
          pairs;
        Printf.printf "checked in %.3fs (%.0f pairs/s)\n" wall
          (float_of_int pairs /. Float.max wall 1e-9);
        0
      | Monotone.Checker.Violated v ->
        Format.printf "%a@." Monotone.Classes.pp_violation v;
        Printf.printf "violated after %.3fs\n" wall;
        2
    in
    if code <> 0 then exit code
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"bounded-exhaustive monotonicity-class membership check")
    Term.(
      const run $ program_src_term $ outputs_term $ kind_term $ bounds_term
      $ jobs_term $ obs_term)

(* ------------------------------------------------------------------ *)
(* Shared network-command plumbing *)

let compile_or_exit program =
  try Calm_core.Compile.compile_program program
  with Invalid_argument msg ->
    Printf.eprintf "cannot compile: %s\n" msg;
    exit 1

let default_policy_for compiled network =
  let schema = compiled.Calm_core.Compile.query.Query.input in
  if compiled.Calm_core.Compile.domain_guided_only then
    Network.Policy.hash_value schema network
  else Network.Policy.hash_fact schema network

let make_network nodes =
  Distributed.network_of_ints (List.init (max nodes 1) (fun i -> 1 + i))

let nodes_term =
  Arg.(value & opt int 3 & info [ "nodes"; "n" ] ~doc:"Network size.")

let scheduler_of nodes seed = function
  | `Rr -> Network.Run.Round_robin
  | `Rand -> Network.Run.Random { seed; steps = 50 * nodes }
  | `Stingy -> Network.Run.Stingy { seed; steps = 80 * nodes }
  | `Adv -> Network.Run.Adversarial { steps = 50 * nodes }

let scheduler_enum =
  Arg.enum
    [
      ("round-robin", `Rr);
      ("random", `Rand);
      ("stingy", `Stingy);
      ("adversarial", `Adv);
    ]

let faults_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "faults" ] ~docv:"PLAN"
        ~doc:
          "Wrap the scheduler(s) in a fault plan: semicolon-separated \
           clauses seed=S, dup=PxK, loss=P:D, horizon=H, crash=N\\@R, \
           part=G1|G2\\@R+D (e.g. \
           'seed=7;dup=0.4x3;loss=0.25:2;crash=2\\@4;part=1|2,3\\@2+3'), \
           or 'default' for a representative all-faults plan. Faulty \
           runs are deterministic from the seed; quiescence additionally \
           requires every fault to have struck and healed.")

let faults_of_flag = function
  | None -> None
  | Some "default" -> Some Network.Fault.default
  | Some s -> (
    match Network.Fault.of_string s with
    | Ok plan -> Some plan
    | Error msg ->
      Printf.eprintf "%s\n" msg;
      exit 1)

let with_faults faults sched =
  match faults with
  | None -> sched
  | Some plan -> Network.Run.Faulty { base = sched; plan }

let faulty_schedulers plan schedulers =
  List.map
    (fun (sname, sched) ->
      (sname ^ "+faults", Network.Run.Faulty { base = sched; plan }))
    schedulers

(* ------------------------------------------------------------------ *)
(* calm simulate *)

let simulate_cmd =
  let scheduler_term =
    Arg.(
      value
      & opt scheduler_enum `Rr
      & info [ "scheduler"; "s" ] ~docv:"SCHED"
          ~doc:"round-robin, random, stingy, or adversarial.")
  in
  let seed_term =
    Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Scheduler seed.")
  in
  let run src outputs facts facts_file nodes scheduler seed =
    let program = load_program_any ~outputs src in
    let input = resolve_input (Datalog.Program.input_schema program) facts facts_file in
    let compiled = compile_or_exit program in
    Printf.printf "compiled at level %s (%s strategy)\n"
      (Calm_core.Hierarchy.to_string compiled.Calm_core.Compile.level)
      (Calm_core.Hierarchy.transducer_model compiled.Calm_core.Compile.level);
    let network = make_network nodes in
    let policy = default_policy_for compiled network in
    let sched = scheduler_of nodes seed scheduler in
    let result =
      Network.Run.run ~variant:compiled.Calm_core.Compile.variant ~policy
        ~transducer:compiled.Calm_core.Compile.transducer ~input sched
    in
    let expected = Datalog.Program.run program input in
    Printf.printf
      "nodes=%d policy=%s quiesced=%b transitions=%d messages=%d\n" nodes
      (Network.Policy.name policy) result.Network.Run.quiesced
      result.Network.Run.transitions result.Network.Run.messages_sent;
    Printf.printf "distributed output matches centralized: %b\n"
      (Instance.equal result.Network.Run.outputs expected);
    Printf.printf "output: %s\n" (Instance.to_string result.Network.Run.outputs);
    let t0 = Unix.gettimeofday () in
    let witness =
      Network.Coordination.heartbeat_witness
        ~variant:compiled.Calm_core.Compile.variant
        ~transducer:compiled.Calm_core.Compile.transducer
        ~query:compiled.Calm_core.Compile.query ~input network
    in
    let wall = Unix.gettimeofday () -. t0 in
    match witness with
    | Some w ->
      let beats = w.Network.Coordination.result.Network.Run.transitions in
      Printf.printf
        "coordination-freeness witness: node %s, %d heartbeats, 0 messages read\n"
        (Value.to_string w.Network.Coordination.node)
        beats;
      Printf.printf "witness search: %.3fs (%.0f heartbeats/s)\n" wall
        (float_of_int beats /. Float.max wall 1e-9)
    | None -> print_endline "no heartbeat witness found"
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"compile and run a program on a simulated asynchronous network")
    Term.(
      const run $ program_src_term $ outputs_term $ facts_term
      $ facts_file_term $ nodes_term $ scheduler_term $ seed_term)

(* ------------------------------------------------------------------ *)
(* calm run *)

let run_cmd =
  let scheduler_term =
    Arg.(
      value
      & opt scheduler_enum `Rr
      & info [ "scheduler"; "s" ] ~docv:"SCHED"
          ~doc:"round-robin, random, stingy, or adversarial.")
  in
  let seed_term =
    Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Scheduler seed.")
  in
  let causal_out_term =
    Arg.(
      value
      & opt (some string) None
      & info [ "causal-out" ] ~docv:"FILE"
          ~doc:
            "Write the run's causal trace — every transition with its \
             Lamport clock, vector clock, and message origins — as a \
             calm-causal/v1 JSON document to $(docv).")
  in
  let causal_dot_term =
    Arg.(
      value
      & opt (some string) None
      & info [ "causal-dot" ] ~docv:"FILE"
          ~doc:
            "Write the run's happens-before DAG as Graphviz DOT to \
             $(docv): one cluster per node, program order solid, message \
             deliveries dashed.")
  in
  let causal_chrome_term =
    Arg.(
      value
      & opt (some string) None
      & info [ "causal-chrome" ] ~docv:"FILE"
          ~doc:
            "Write the run as a Chrome trace_event file to $(docv): one \
             track per node on the Lamport time axis, message deliveries \
             as flow arrows (open in Perfetto or chrome://tracing).")
  in
  let run src outputs facts facts_file nodes scheduler seed faults causal_out
      causal_dot causal_chrome obs =
    with_observability obs @@ fun () ->
    let program = load_program_any ~outputs src in
    let input =
      resolve_input (Datalog.Program.input_schema program) facts facts_file
    in
    let compiled = compile_or_exit program in
    let network = make_network nodes in
    let policy = default_policy_for compiled network in
    let sched =
      with_faults (faults_of_flag faults) (scheduler_of nodes seed scheduler)
    in
    let tracer =
      if causal_out <> None || causal_dot <> None || causal_chrome <> None
      then Some (Network.Trace.collector ())
      else None
    in
    let t0 = Unix.gettimeofday () in
    let result =
      Network.Run.run ?tracer ~heartbeat:obs.heartbeat
        ~variant:compiled.Calm_core.Compile.variant ~policy
        ~transducer:compiled.Calm_core.Compile.transducer ~input sched
    in
    let wall = Unix.gettimeofday () -. t0 in
    Printf.printf
      "policy=%s scheduler=%s quiesced=%b rounds=%d transitions=%d \
       messages=%d deliveries=%d\n"
      (Network.Policy.name policy)
      (Network.Run.scheduler_label sched)
      result.Network.Run.quiesced result.Network.Run.rounds
      result.Network.Run.transitions result.Network.Run.messages_sent
      result.Network.Run.deliveries;
    Printf.printf "wall=%.3fs rate=%.0f deliveries/s (%.0f transitions/s)\n"
      wall
      (float_of_int result.Network.Run.deliveries /. Float.max wall 1e-9)
      (float_of_int result.Network.Run.transitions /. Float.max wall 1e-9);
    Printf.printf "output (%d facts): %s\n"
      (Instance.cardinal result.Network.Run.outputs)
      (Instance.to_string result.Network.Run.outputs);
    match tracer with
    | None -> ()
    | Some t ->
      let events = Network.Trace.events t in
      Option.iter
        (fun f -> write_file f (Network.Trace.to_causal_json ~network events))
        causal_out;
      Option.iter
        (fun f -> write_file f (Network.Trace.to_dot events))
        causal_dot;
      Option.iter
        (fun f ->
          write_file f (Network.Trace.to_chrome_causal ~network events))
        causal_chrome
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "compile a program and run it once on a simulated network \
          (instrumented; see --metrics-out / --trace-out / --profile / \
          --causal-out / --causal-dot / --causal-chrome / --faults)")
    Term.(
      const run $ program_src_term $ outputs_term $ facts_term
      $ facts_file_term $ nodes_term $ scheduler_term $ seed_term
      $ faults_term $ causal_out_term $ causal_dot_term
      $ causal_chrome_term $ obs_term)

(* ------------------------------------------------------------------ *)
(* calm sweep *)

let sweep_cmd =
  let traces_out_term =
    Arg.(
      value
      & opt (some string) None
      & info [ "traces-out" ] ~docv:"FILE"
          ~doc:
            "Write every cell's causal trace as JSONL to $(docv): cells \
             sorted by label, each cell's events in the canonical \
             (lamport, node, index) order — a linear extension of \
             happens-before — so the bytes are identical under any \
             $(b,--jobs).")
  in
  let run src outputs facts facts_file nodes jobs faults traces_out obs =
    with_observability obs @@ fun () ->
    let program = load_program_any ~outputs src in
    let input =
      resolve_input (Datalog.Program.input_schema program) facts facts_file
    in
    let compiled = compile_or_exit program in
    let network = make_network nodes in
    let schema = compiled.Calm_core.Compile.query.Query.input in
    let policies =
      Network.Netquery.default_policies
        ~domain_guided_only:compiled.Calm_core.Compile.domain_guided_only
        schema network
    in
    let schedulers =
      match faults_of_flag faults with
      | None -> Network.Netquery.default_schedulers
      | Some plan -> faulty_schedulers plan Network.Netquery.default_schedulers
    in
    let cells =
      List.concat_map
        (fun policy ->
          List.map
            (fun (sname, sched) ->
              (Network.Policy.name policy ^ "/" ^ sname, policy, sched))
            schedulers)
        policies
    in
    let results =
      Network.Run.sweep ~jobs ~heartbeat:obs.heartbeat
        ~variant:compiled.Calm_core.Compile.variant
        ~transducer:compiled.Calm_core.Compile.transducer ~input cells
    in
    List.iter
      (fun (label, r, events) ->
        Printf.printf
          "%-28s quiesced=%b rounds=%d transitions=%d messages=%d \
           outputs=%d events=%d\n"
          label r.Network.Run.quiesced r.Network.Run.rounds
          r.Network.Run.transitions r.Network.Run.messages_sent
          (Instance.cardinal r.Network.Run.outputs)
          (List.length events))
      results;
    match traces_out with
    | None -> ()
    | Some file ->
      write_file file
        (Network.Trace.sweep_to_jsonl
           (List.map (fun (label, _, events) -> (label, events)) results))
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "run the full policy × scheduler grid for a program, optionally \
          in parallel (and optionally under a --faults plan); stable \
          metrics and --traces-out bytes are identical under any --jobs")
    Term.(
      const run $ program_src_term $ outputs_term $ facts_term
      $ facts_file_term $ nodes_term $ jobs_term $ faults_term
      $ traces_out_term $ obs_term)

(* ------------------------------------------------------------------ *)
(* calm netquery *)

let netquery_cmd =
  let run src outputs facts facts_file nodes jobs obs =
    with_observability obs @@ fun () ->
    let program = load_program_any ~outputs src in
    let input =
      resolve_input (Datalog.Program.input_schema program) facts facts_file
    in
    let compiled = compile_or_exit program in
    let network = make_network nodes in
    let schema = compiled.Calm_core.Compile.query.Query.input in
    let policies =
      Network.Netquery.default_policies
        ~domain_guided_only:compiled.Calm_core.Compile.domain_guided_only
        schema network
    in
    let verdict =
      Network.Netquery.check ~policies ~jobs
        ~variant:compiled.Calm_core.Compile.variant
        ~transducer:compiled.Calm_core.Compile.transducer
        ~query:compiled.Calm_core.Compile.query ~input network
    in
    Printf.printf "expected (%d facts): %s\n"
      (Instance.cardinal verdict.Network.Netquery.expected)
      (Instance.to_string verdict.Network.Netquery.expected);
    Printf.printf "runs: %d  all quiesced: %b  mismatches: %d\n"
      (List.length verdict.Network.Netquery.runs)
      verdict.Network.Netquery.all_quiesced
      (List.length verdict.Network.Netquery.mismatches);
    List.iter
      (fun label -> Printf.printf "  mismatch: %s\n" label)
      verdict.Network.Netquery.mismatches;
    if Network.Netquery.consistent verdict then
      print_endline "verdict: the network computes the query on this input"
    else begin
      print_endline "verdict: INCONSISTENT";
      exit 2
    end
  in
  Cmd.v
    (Cmd.info "netquery"
       ~doc:
         "check that the compiled network computes the query under every \
          default policy × scheduler combination")
    Term.(
      const run $ program_src_term $ outputs_term $ facts_term
      $ facts_file_term $ nodes_term $ jobs_term $ obs_term)

(* ------------------------------------------------------------------ *)
(* calm explain *)

let compile_any_or_exit program =
  try Calm_core.Compile.compile_program_any program
  with Invalid_argument msg ->
    Printf.eprintf "cannot compile: %s\n" msg;
    exit 1

let parse_fact s =
  try Fact.of_string s
  with Invalid_argument msg | Failure msg ->
    Printf.eprintf "bad fact %S: %s\n" s msg;
    exit 1

let explain_cmd =
  let scheduler_term =
    Arg.(
      value
      & opt scheduler_enum `Rr
      & info [ "scheduler"; "s" ] ~docv:"SCHED"
          ~doc:"round-robin, random, stingy, or adversarial.")
  in
  let seed_term =
    Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Scheduler seed.")
  in
  let fact_term =
    Arg.(
      value
      & opt (some string) None
      & info [ "fact" ] ~docv:"FACT"
          ~doc:
            "The output fact to explain, e.g. 'T(1,3)'. Defaults to every \
             output fact of the run.")
  in
  let run src outputs facts facts_file nodes scheduler seed faults fact =
    let program = load_program_any ~outputs src in
    let input =
      resolve_input (Datalog.Program.input_schema program) facts facts_file
    in
    let compiled = compile_any_or_exit program in
    let network = make_network nodes in
    let policy = default_policy_for compiled network in
    let sched =
      with_faults (faults_of_flag faults) (scheduler_of nodes seed scheduler)
    in
    let tracer = Network.Trace.collector () in
    let result =
      Network.Run.run ~tracer ~variant:compiled.Calm_core.Compile.variant
        ~policy ~transducer:compiled.Calm_core.Compile.transducer ~input sched
    in
    let events = Network.Trace.events tracer in
    Printf.printf "level=%s policy=%s quiesced=%b transitions=%d\n"
      (Calm_core.Hierarchy.to_string compiled.Calm_core.Compile.level)
      (Network.Policy.name policy) result.Network.Run.quiesced
      result.Network.Run.transitions;
    let targets =
      match fact with
      | Some s -> [ parse_fact s ]
      | None -> Instance.to_list result.Network.Run.outputs
    in
    if targets = [] then begin
      Printf.eprintf "the run produced no output facts to explain\n";
      exit 1
    end;
    let failed = ref false in
    List.iter
      (fun target ->
        match Network.Provenance.cone_of events target with
        | None ->
          Printf.eprintf "%s: not among the run's outputs\n"
            (Fact.to_string target);
          failed := true
        | Some cone ->
          Format.printf "%a@." Network.Provenance.pp cone;
          Printf.printf "  heard-from-all-nodes cut: %b\n"
            (Network.Provenance.heard_from_all ~network cone);
          (match
             Network.Provenance.validate
               ~variant:compiled.Calm_core.Compile.variant ~policy
               ~transducer:compiled.Calm_core.Compile.transducer ~input cone
           with
          | Ok () ->
            Printf.printf "  replay: the cone alone reproduces the fact \
                           (validated)\n"
          | Error msg ->
            Printf.printf "  replay: FAILED — %s\n" msg;
            failed := true))
      targets;
    if !failed then exit 2
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "provenance of an output fact as its minimal causal cone — the \
          anchor transition plus its happens-before past — validated by \
          replaying just the cone (faulty runs replay too: their traces \
          carry the dup/restart annotations)")
    Term.(
      const run $ program_src_term $ outputs_term $ facts_term
      $ facts_file_term $ nodes_term $ scheduler_term $ seed_term
      $ faults_term $ fact_term)

(* ------------------------------------------------------------------ *)
(* calm detect *)

let detect_cmd =
  let scatter_term =
    Arg.(
      value & flag
      & info [ "scatter" ]
          ~doc:
            "Append the value-scattering domain-guided policy to the \
             battery — the 'bad' placement that spreads connected data \
             across the whole network (win-move coordinates under it).")
  in
  let fixture_term =
    Arg.(
      value
      & opt (some (enum [ ("forced-disagree", `Forced) ])) None
      & info [ "fixture" ] ~docv:"NAME"
          ~doc:
            "Run a built-in detector fixture instead of a program. \
             'forced-disagree' is engineered so the static and empirical \
             verdicts disagree in every run (a non-monotone query \
             compiled at the wrong Monotone level, with the \
             counterexample split away from the early-outputting node): \
             the command must exit 2. Composes with $(b,--faults).")
  in
  let finish entry =
    Format.printf "%a@." Calm_core.Empirical.pp_entry entry;
    if not entry.Calm_core.Empirical.agree then
      print_endline
        "verdict: observed coordination behaviour DISAGREES with the \
         static claim";
    exit (Calm_core.Empirical.exit_code entry)
  in
  let run src outputs facts facts_file nodes jobs scatter fixture faults =
    let faults = faults_of_flag faults in
    match fixture with
    | Some `Forced ->
      finish (Calm_core.Empirical.forced_disagree ~jobs ?faults ())
    | None ->
      let src =
        match src with
        | Some s -> s
        | None ->
          Printf.eprintf
            "one of --program, --file or --fixture is required\n";
          exit 1
      in
      let program = load_program_any ~outputs src in
      let input =
        resolve_input (Datalog.Program.input_schema program) facts facts_file
      in
      let compiled = compile_any_or_exit program in
      let network = make_network nodes in
      let schema = compiled.Calm_core.Compile.query.Query.input in
      let policies =
        let base =
          Network.Netquery.default_policies
            ~domain_guided_only:compiled.Calm_core.Compile.domain_guided_only
            schema network
        in
        if scatter then
          base @ [ Calm_core.Empirical.scatter_policy schema network ]
        else base
      in
      let schedulers =
        Option.map
          (fun plan ->
            faulty_schedulers plan Network.Netquery.default_schedulers)
          faults
      in
      finish
        (Calm_core.Empirical.detect_compiled ~network ~policies ?schedulers
           ~jobs ~name:"program" ~compiled ~input ())
  in
  Cmd.v
    (Cmd.info "detect"
       ~doc:
         "empirical coordination detection: run the policy × scheduler \
          battery with causal tracing and check whether some correct \
          quiescent run avoids a heard-from-all-nodes cut, then compare \
          against the static CALM placement (exit 0 on agreement, 2 on \
          disagreement; see --faults and --fixture)")
    Term.(
      const run $ program_src_opt_term $ outputs_term $ facts_term
      $ facts_file_term $ nodes_term $ jobs_term $ scatter_term
      $ fixture_term $ faults_term)

(* ------------------------------------------------------------------ *)
(* calm validate *)

let validate_cmd =
  let kind_term =
    Arg.(
      required
      & opt
          (some
             (enum
                [
                  ("metrics", `Metrics); ("bench", `Bench);
                  ("trace", `Trace); ("causal", `Causal);
                  ("profile", `Profile); ("series", `Series);
                ]))
          None
      & info [ "kind" ] ~docv:"KIND"
          ~doc:
            "Artifact kind: metrics, bench, trace, causal, profile, or \
             series.")
  in
  let file_term =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"The JSON artifact to validate.")
  in
  let run kind file =
    let contents = read_file file in
    let result =
      match kind with
      | `Trace when Filename.check_suffix file ".jsonl" ->
        Result.map (fun _ -> ()) (Observe.Sink.of_jsonl contents)
      | `Series -> Observe.Schema_check.validate_series_jsonl contents
      | _ -> (
        match Observe.Json.of_string contents with
        | Error m -> Error ("not valid JSON: " ^ m)
        | Ok j -> (
          match kind with
          | `Metrics -> Observe.Schema_check.validate_metrics j
          | `Bench -> Observe.Schema_check.validate_bench j
          | `Trace -> Observe.Schema_check.validate_trace j
          | `Causal -> Observe.Schema_check.validate_causal j
          | `Profile -> Observe.Schema_check.validate_profile j
          | `Series -> assert false))
    in
    match result with
    | Ok () ->
      Printf.printf "%s: valid %s artifact\n" file
        (match kind with
        | `Metrics -> "calm-metrics/v1"
        | `Bench -> "calm-bench/v1"
        | `Trace -> "trace"
        | `Causal -> "calm-causal/v1"
        | `Profile -> "calm-profile/v1"
        | `Series -> "calm-series/v1")
    | Error m ->
      Printf.eprintf "%s: INVALID: %s\n" file m;
      exit 1
  in
  Cmd.v
    (Cmd.info "validate"
       ~doc:
         "validate a telemetry artifact (--metrics-out snapshot, bench \
          --json trajectory, --trace-out trace, --causal-out causal \
          trace, or --profile-out profile) against its schema")
    Term.(const run $ kind_term $ file_term)

(* ------------------------------------------------------------------ *)
(* calm bench-diff *)

(* The regression guard for the bench trajectory: the stable metric rows
   below are deterministic by construction (jobs- and cache-invariant),
   so any drift against the committed baseline means the scan visited a
   different pair stream, found different violations, or shrank to
   different certificates — a semantic regression, not noise. Wall-clock
   and volatile rows are never compared. *)
let bench_diff_cmd =
  (* The guarded row list lives in Observe.Report now, shared with the
     whole-history `calm report --diff`. *)
  let guard_metrics = Observe.Report.guard_metrics in
  let baselines_term =
    Arg.(
      non_empty
      & opt_all file []
      & info [ "baseline" ] ~docv:"FILE"
          ~doc:
            "A committed calm-bench/v1 baseline to compare against. \
             Repeatable: with several baselines, each experiment is \
             compared against the $(i,last) given baseline that contains \
             it, and every reported row names its source baseline.")
  in
  let file_term =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"The freshly produced bench --json file.")
  in
  let load file =
    match Observe.Json.of_string (read_file file) with
    | Error m ->
      Printf.eprintf "%s: not valid JSON: %s\n" file m;
      exit 1
    | Ok j -> (
      match Observe.Schema_check.validate_bench j with
      | Error m ->
        Printf.eprintf "%s: INVALID calm-bench/v1 artifact: %s\n" file m;
        exit 1
      | Ok () -> j)
  in
  let experiments j =
    match Observe.Json.member "experiments" j with
    | Some (Observe.Json.List es) ->
      List.filter_map
        (fun e ->
          match
            (Observe.Json.member "id" e, Observe.Json.member "metrics" e)
          with
          | Some (Observe.Json.String id), Some (Observe.Json.Obj ms) ->
            Some (id, ms)
          | _ -> None)
        es
    | _ -> []
  in
  let update_term =
    Arg.(
      value & flag
      & info [ "update" ]
          ~doc:
            "After validating both files and reporting any drift, rewrite \
             the baseline file in place with the new trajectory and exit 0 \
             — the accepted-change workflow that used to be a manual copy.")
  in
  let run baselines file update =
    (* Per-experiment resolution across baselines: the last baseline on
       the command line that contains an experiment wins for it, and
       every reported row names the baseline it came from. *)
    let base =
      List.fold_left
        (fun acc b ->
          List.fold_left
            (fun acc (id, ms) ->
              (id, (b, ms)) :: List.remove_assoc id acc)
            acc
            (experiments (load b)))
        [] baselines
    in
    let base = List.rev base in
    let cur = experiments (load file) in
    let compared = ref 0 in
    let drifts = ref [] in
    List.iter
      (fun (id, (src, bms)) ->
        match List.assoc_opt id cur with
        | None -> ()
        | Some cms ->
          List.iter
            (fun name ->
              match List.assoc_opt name bms with
              | None -> ()
              | Some bv -> (
                incr compared;
                match List.assoc_opt name cms with
                | Some cv when Observe.Json.equal bv cv -> ()
                | cv ->
                  let render = function
                    | None -> "<missing>"
                    | Some v -> Observe.Json.to_string v
                  in
                  drifts :=
                    Printf.sprintf "%s/%s: baseline %s (%s), got %s" id name
                      (render (Some bv)) src (render cv)
                    :: !drifts))
            guard_metrics)
      base;
    if !compared = 0 && not update then begin
      Printf.eprintf
        "bench-diff: no guarded metric rows in common between [%s] and %s\n"
        (String.concat "; " baselines)
        file;
      exit 1
    end;
    let drifts = List.rev !drifts in
    if update then begin
      let baseline =
        match baselines with
        | [ b ] -> b
        | _ ->
          Printf.eprintf
            "bench-diff: --update requires exactly one --baseline\n";
          exit 1
      in
      (* Both files already passed calm-bench/v1 validation in [load], so
         the rewrite can't replace a good baseline with a malformed one. *)
      List.iter (fun d -> Printf.printf "  accepting drift: %s\n" d) drifts;
      write_file baseline (read_file file);
      Printf.printf
        "bench-diff: baseline %s updated from %s (%d guarded rows, %d had \
         drifted)\n"
        baseline file !compared (List.length drifts)
    end
    else
      match drifts with
      | [] ->
        Printf.printf
          "bench-diff: %d stable metric rows match the baseline(s) (%s)\n"
          !compared
          (String.concat "; " baselines)
      | ds ->
        Printf.eprintf "bench-diff: %d/%d stable metric rows drifted:\n"
          (List.length ds) !compared;
        List.iter (fun d -> Printf.eprintf "  %s\n" d) ds;
        exit 1
  in
  Cmd.v
    (Cmd.info "bench-diff"
       ~doc:
         "compare a bench --json trajectory's stable metric rows (probes, \
          pairs scanned, violations, counterexample sizes) against one or \
          more committed baselines (repeat --baseline; the last baseline \
          containing an experiment wins for it, and drift reports name \
          their source baseline); exits 1 on any drift, or accepts the \
          new trajectory into a single baseline with --update")
    Term.(const run $ baselines_term $ file_term $ update_term)

(* ------------------------------------------------------------------ *)
(* calm plan *)

let plan_cmd =
  let run src outputs facts facts_file =
    let program = load_program_any ~outputs src in
    let input =
      resolve_input (Datalog.Program.input_schema program) facts facts_file
    in
    let rules = program.Datalog.Program.rules in
    (* EXPLAIN against the fixpoint, so estimated-vs-actual counts
       reflect the plans under their real extents, recursion included. *)
    let db =
      match program.Datalog.Program.semantics with
      | Datalog.Program.Stratified -> Datalog.Eval.stratified_exn rules input
      | Datalog.Program.Well_founded ->
        (Datalog.Wellfounded.eval rules input).Datalog.Wellfounded.true_facts
    in
    Printf.printf "rules=%d input-facts=%d fixpoint-facts=%d\n"
      (List.length rules) (Instance.cardinal input) (Instance.cardinal db);
    Format.printf "%a@?" Datalog.Eval.pp_explain (Datalog.Eval.explain rules db)
  in
  Cmd.v
    (Cmd.info "plan"
       ~doc:
         "EXPLAIN ANALYZE the compiled Joindb plans: per-atom index choice \
          (hashed positions, bind/check slots) with estimated vs actual \
          candidate counts from one instrumented pass over the fixpoint")
    Term.(
      const run $ program_src_term $ outputs_term $ facts_term
      $ facts_file_term)

(* ------------------------------------------------------------------ *)
(* calm profile *)

let profile_cmd =
  let out_term =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Write the calm-profile/v1 JSON export to $(docv).")
  in
  let folded_term =
    Arg.(
      value
      & opt (some string) None
      & info [ "folded" ] ~docv:"FILE"
          ~doc:
            "Write folded stacks ('frame;frame value' lines, self-time in \
             µs) to $(docv) — feed to flamegraph.pl or speedscope.")
  in
  let chrome_term =
    Arg.(
      value
      & opt (some string) None
      & info [ "chrome" ] ~docv:"FILE"
          ~doc:
            "Write a Chrome trace_event rendering of the span tree to \
             $(docv) (open in Perfetto or chrome://tracing).")
  in
  let redact_term =
    Arg.(
      value & flag
      & info [ "redact-timings" ]
          ~doc:
            "Replace schedule-dependent numbers with '-' so stdout is \
             byte-reproducible (counts and annotations only).")
  in
  let run src outputs bounds jobs out folded chrome redact =
    Observe.Metrics.reset Observe.Metrics.root;
    Observe.Profile.enable ();
    let program = load_program_any ~outputs src in
    let q = Datalog.Program.query ~name:"program" program in
    let t0 = Unix.gettimeofday () in
    let placement = Monotone.Checker.place ~bounds ~jobs q in
    let wall = Unix.gettimeofday () -. t0 in
    Observe.Profile.disable ();
    Printf.printf "placement: %s (dom %d, fresh %d, base %d, ext %d)\n"
      (Monotone.Checker.strongest placement)
      bounds.Monotone.Checker.dom_size bounds.Monotone.Checker.fresh
      bounds.Monotone.Checker.max_base bounds.Monotone.Checker.max_ext;
    let root = Observe.Metrics.root in
    Format.printf "%a@?" (Observe.Profile.pp ~redact_timings:redact) root;
    (if not redact then
       let nodes = Observe.Profile.spans root in
       match
         List.find_opt (fun n -> n.Observe.Profile.path = [ "scan" ]) nodes
       with
       | Some scan ->
         Printf.printf
           "attribution: %.1f%% of the %.3fs scan wall time is attributed \
            to named (base, stage, rule) spans (%.3fs total placement wall)\n"
           (100. *. Observe.Profile.coverage scan)
           scan.Observe.Profile.total_s wall
       | None -> ());
    Option.iter
      (fun f ->
        write_file f
          (Observe.Json.to_string_pretty (Observe.Profile.to_json root) ^ "\n"))
      out;
    Option.iter (fun f -> write_file f (Observe.Profile.to_folded root)) folded;
    Option.iter
      (fun f ->
        write_file f
          (Observe.Sink.to_chrome (Observe.Profile.to_chrome_events root)))
      chrome
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "profile the full monotonicity placement of a program: run the \
          plain/distinct/disjoint scans with span profiling enabled and \
          print the attribution tree (scan → base → stage/probe → rule, \
          with cache-hit / witness-route / empty-before annotations); \
          export with --out / --folded / --chrome")
    Term.(
      const run $ program_src_term $ outputs_term $ bounds_term $ jobs_term
      $ out_term $ folded_term $ chrome_term $ redact_term)

(* ------------------------------------------------------------------ *)
(* calm graph *)

let graph_cmd =
  let run src outputs =
    let program = load_program_any ~outputs src in
    print_endline (Datalog.Depgraph.to_dot program.Datalog.Program.rules)
  in
  Cmd.v
    (Cmd.info "graph"
       ~doc:"print the predicate dependency graph as graphviz DOT")
    Term.(const run $ program_src_term $ outputs_term)

(* ------------------------------------------------------------------ *)
(* calm figure2 *)

let figure2_cmd =
  let run () = print_string (Calm_core.Figure2.render ()) in
  Cmd.v
    (Cmd.info "figure2"
       ~doc:"print the paper's results figure with experiment evidence")
    Term.(const run $ const ())

(* ------------------------------------------------------------------ *)
(* calm explore *)

let explore_cmd =
  let budget_term =
    Arg.(
      value & opt int 20_000
      & info [ "budget" ] ~doc:"Maximum configurations to explore.")
  in
  let run src outputs facts facts_file budget jobs =
    let program = load_program_any ~outputs src in
    let input =
      resolve_input (Datalog.Program.input_schema program) facts facts_file
    in
    let compiled =
      try Calm_core.Compile.compile_program program
      with Invalid_argument msg ->
        Printf.eprintf "cannot compile: %s\n" msg;
        exit 1
    in
    let network = Distributed.network_of_ints [ 1; 2 ] in
    let schema = compiled.Calm_core.Compile.query.Query.input in
    let policy =
      if compiled.Calm_core.Compile.domain_guided_only then
        Network.Policy.hash_value schema network
      else Network.Policy.hash_fact schema network
    in
    Printf.printf
      "model-checking every message order on a 2-node network (budget %d)...\n"
      budget;
    let verdict =
      Network.Explore.check ~max_configs:budget ~jobs
        ~variant:compiled.Calm_core.Compile.variant ~policy
        ~transducer:compiled.Calm_core.Compile.transducer
        ~query:compiled.Calm_core.Compile.query ~input ()
    in
    print_endline (Network.Explore.verdict_to_string verdict)
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "exhaustively verify the compiled strategy under every message \
          order (tiny inputs)")
    Term.(
      const run $ program_src_term $ outputs_term $ facts_term
      $ facts_file_term $ budget_term $ jobs_term)

(* ------------------------------------------------------------------ *)
(* calm lint *)

let lint_cmd =
  let paths_term =
    Arg.(
      non_empty
      & pos_all string []
      & info [] ~docv:"PATH"
          ~doc:"Files or directories; directories are searched recursively \
                for $(b,.dlog) files.")
  in
  let format_term =
    Arg.(
      value
      & opt (enum [ ("human", `Human); ("json", `Json); ("sarif", `Sarif) ])
          `Human
      & info [ "format" ] ~docv:"FMT" ~doc:"human, json, or sarif.")
  in
  let output_term =
    Arg.(
      value
      & opt (some string) None
      & info [ "output" ] ~docv:"FILE" ~doc:"Write the report to $(docv).")
  in
  let claim_term =
    Arg.(
      value
      & opt (some string) None
      & info [ "claim" ] ~docv:"FRAG"
          ~doc:
            "Claimed fragment: datalog, ineq, sp, con, semicon, or \
             stratified. Violations become errors.")
  in
  let edb_term =
    Arg.(
      value
      & opt (list string) []
      & info [ "edb" ] ~docv:"RELS" ~doc:"Predicates declared extensional.")
  in
  let lint_outputs_term =
    Arg.(
      value
      & opt (list string) []
      & info [ "outputs"; "o" ] ~docv:"RELS"
          ~doc:"Output relations (enables the unused-predicate check).")
  in
  let run paths format output claim edb outputs jobs =
    let claim =
      match claim with
      | None -> None
      | Some s -> (
        match Analysis.Lint.claim_of_string s with
        | Some _ as c -> c
        | None ->
          Printf.eprintf "unknown fragment claim: %s\n" s;
          exit 2)
    in
    let options = { Analysis.Lint.claim; edb; outputs } in
    match Analysis.Driver.collect paths with
    | Error msg ->
      Printf.eprintf "calm lint: %s\n" msg;
      exit 2
    | Ok [] ->
      Printf.eprintf "calm lint: no .dlog files found\n";
      exit 2
    | Ok files ->
      let reports = Analysis.Driver.run ~options ~jobs files in
      let rendered =
        match format with
        | `Human -> Analysis.Driver.render_human reports
        | `Json -> Analysis.Driver.render_json reports
        | `Sarif -> Analysis.Driver.render_sarif reports
      in
      (match output with
      | None -> print_string rendered
      | Some f ->
        let oc = open_out f in
        output_string oc rendered;
        close_out oc);
      if Analysis.Driver.total Analysis.Diagnostic.Error reports > 0 then
        exit 1
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "report span-accurate diagnostics (CALM000-CALM013) for Datalog¬ \
          sources")
    Term.(
      const run $ paths_term $ format_term $ output_term $ claim_term
      $ edb_term $ lint_outputs_term $ jobs_term)

(* ------------------------------------------------------------------ *)
(* calm certify *)

let certify_cmd =
  let run src =
    let rules =
      try Datalog.Adom.augment (Datalog.Parser.parse_program src) with
      | Datalog.Parser.Syntax_error { line; col; message } ->
        Printf.eprintf "syntax error (line %d, column %d): %s\n" line col
          message;
        exit 1
      | Invalid_argument msg ->
        Printf.eprintf "invalid program: %s\n" msg;
        exit 1
    in
    let cert = Analysis.certify rules in
    print_string (Analysis.Certificate.to_string cert);
    match Analysis.check_certificate rules cert with
    | Ok () -> print_endline "certificate: VERIFIED by independent checker"
    | Error msg ->
      Printf.printf "certificate: REJECTED: %s\n" msg;
      exit 1
  in
  Cmd.v
    (Cmd.info "certify"
       ~doc:
         "emit the fragment certificate (evidence + counter-witnesses) and \
          check it independently")
    Term.(const run $ program_src_term)

(* ------------------------------------------------------------------ *)
(* calm report *)

let report_cmd =
  let files_term =
    Arg.(
      non_empty
      & pos_all file []
      & info [] ~docv:"FILE"
          ~doc:
            "calm-bench/v1 trajectory files in chronological order (e.g. \
             BENCH_baseline.json BENCH_indexed.json BENCH_ivm.json).")
  in
  let html_term =
    Arg.(
      value
      & opt (some string) None
      & info [ "html" ] ~docv:"FILE"
          ~doc:
            "Write a self-contained HTML dashboard (inline-SVG \
             sparklines, no external assets) to $(docv).")
  in
  let md_term =
    Arg.(
      value
      & opt (some string) None
      & info [ "md" ] ~docv:"FILE"
          ~doc:
            "Write the markdown summary to $(docv) instead of stdout.")
  in
  let series_term =
    Arg.(
      value
      & opt (some file) None
      & info [ "series" ] ~docv:"FILE"
          ~doc:
            "Include a calm-series/v1 JSONL artifact (from --series-out): \
             each series becomes a sparkline row in the dashboard.")
  in
  let metrics_term =
    Arg.(
      value
      & opt (some file) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:"Include a calm-metrics/v1 snapshot in the dashboard.")
  in
  let profile_term =
    Arg.(
      value
      & opt (some file) None
      & info [ "profile" ] ~docv:"FILE"
          ~doc:"Include a calm-profile/v1 document in the dashboard.")
  in
  let diff_term =
    Arg.(
      value & flag
      & info [ "diff" ]
          ~doc:
            "Regression mode: compare consecutive files' shared \
             experiments (guarded metric rows must be byte-equal when \
             present on both sides; wall clock may grow at most \
             $(b,--threshold)); print the per-metric regression table \
             and exit 1 on any regression.")
  in
  let threshold_term =
    Arg.(
      value
      & opt float Observe.Report.default_threshold
      & info [ "threshold" ] ~docv:"FRAC"
          ~doc:
            "Maximum allowed relative wall-clock increase between \
             consecutive files in $(b,--diff) mode (1.0 = doubling).")
  in
  let load_validated kind validate file =
    let contents = read_file file in
    match Observe.Json.of_string contents with
    | Error m ->
      Printf.eprintf "%s: not valid JSON: %s\n" file m;
      exit 1
    | Ok j -> (
      match validate j with
      | Error m ->
        Printf.eprintf "%s: INVALID %s artifact: %s\n" file kind m;
        exit 1
      | Ok () -> j)
  in
  let run files html md series metrics profile diff threshold =
    let benches =
      List.map
        (fun path ->
          match Observe.Report.load_bench ~path (read_file path) with
          | Ok b -> b
          | Error m ->
            Printf.eprintf "%s\n" m;
            exit 1)
        files
    in
    if diff then begin
      let regressions, compared = Observe.Report.diff ~threshold benches in
      print_string (Observe.Report.render_diff regressions compared);
      if regressions <> [] then exit 1
    end
    else begin
      let series_contents =
        Option.map
          (fun file ->
            let contents = read_file file in
            match Observe.Schema_check.validate_series_jsonl contents with
            | Ok () -> contents
            | Error m ->
              Printf.eprintf "%s: INVALID calm-series/v1 artifact: %s\n"
                file m;
              exit 1)
          series
      in
      let metrics_json =
        Option.map
          (load_validated "calm-metrics/v1"
             Observe.Schema_check.validate_metrics)
          metrics
      in
      let profile_json =
        Option.map
          (load_validated "calm-profile/v1"
             Observe.Schema_check.validate_profile)
          profile
      in
      (match html with
      | None -> ()
      | Some file ->
        write_file file
          (Observe.Report.html ?series:series_contents ?metrics:metrics_json
             ?profile:profile_json benches);
        Printf.printf "report: wrote %s\n" file);
      let summary = Observe.Report.markdown benches in
      match md with
      | None -> if html = None then print_string summary
      | Some file ->
        write_file file summary;
        Printf.printf "report: wrote %s\n" file
    end
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "aggregate the committed bench trajectory (plus optional metrics \
          / series / profile artifacts) into an HTML dashboard and \
          markdown summary, or gate regressions across the whole history \
          with --diff")
    Term.(
      const run $ files_term $ html_term $ md_term $ series_term
      $ metrics_term $ profile_term $ diff_term $ threshold_term)

(* ------------------------------------------------------------------ *)

let () =
  let doc = "weaker forms of monotonicity for declarative networking" in
  let info = Cmd.info "calm" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            eval_cmd; classify_cmd; check_cmd; simulate_cmd; run_cmd;
            sweep_cmd; netquery_cmd; explain_cmd; detect_cmd; explore_cmd;
            validate_cmd; bench_diff_cmd; report_cmd; plan_cmd; profile_cmd;
            graph_cmd; figure2_cmd; lint_cmd; certify_cmd;
          ]))
