(* Quickstart: write a Datalog¬ program, classify it in the CALM
   hierarchy, run it centrally, then compile it to a coordination-free
   transducer and run it on a simulated 4-node asynchronous network.

   Run with: dune exec examples/quickstart.exe *)

open Relational

let program_src =
  {|
  % Pairs of people in the same connected friend-group.
  Reach(x,y) :- Friend(x,y).
  Reach(x,y) :- Friend(y,x).
  Reach(x,z) :- Reach(x,y), Reach(y,z).
  O(x,y)     :- Reach(x,y).
|}

let input =
  Instance.of_strings
    [
      "Friend(alice, bob)";
      "Friend(bob, carol)";
      "Friend(dave, erin)";
      "Friend(erin, dave)";
    ]

let () =
  print_endline "== 1. Parse and classify ==";
  let program = Datalog.Program.parse program_src in
  let fragment = Datalog.Program.fragment program in
  Printf.printf "fragment: %s\n" (Datalog.Fragment.to_string fragment);
  Printf.printf "guaranteed monotonicity class: %s\n"
    (Datalog.Fragment.monotonicity_upper_bound fragment);

  print_endline "\n== 2. Centralized evaluation ==";
  let expected = Datalog.Program.run program input in
  Printf.printf "Q(I) has %d facts, e.g. %s\n"
    (Instance.cardinal expected)
    (match Instance.to_list expected with
    | f :: _ -> Fact.to_string f
    | [] -> "(none)");

  print_endline "\n== 3. Compile to a coordination-free transducer ==";
  let compiled = Calm_core.Compile.compile_program program in
  Printf.printf "strategy level: %s (model: %s)\n"
    (Calm_core.Hierarchy.to_string compiled.Calm_core.Compile.level)
    (Calm_core.Hierarchy.transducer_model compiled.Calm_core.Compile.level);

  print_endline "\n== 4. Run on a 4-node asynchronous network ==";
  let network = Distributed.network_of_names [ "n1"; "n2"; "n3"; "n4" ] in
  let policy =
    Network.Policy.hash_value compiled.Calm_core.Compile.query.Query.input
      network
  in
  List.iter
    (fun (name, sched) ->
      let result =
        Network.Run.run ~variant:compiled.Calm_core.Compile.variant ~policy
          ~transducer:compiled.Calm_core.Compile.transducer ~input sched
      in
      Printf.printf
        "%-12s quiesced=%b transitions=%4d messages=%5d correct=%b\n" name
        result.Network.Run.quiesced result.Network.Run.transitions
        result.Network.Run.messages_sent
        (Instance.equal result.Network.Run.outputs expected))
    [
      ("round-robin", Network.Run.Round_robin);
      ("random", Network.Run.Random { seed = 7; steps = 80 });
      ("stingy", Network.Run.Stingy { seed = 8; steps = 120 });
    ];

  print_endline "\n== 5. Coordination-freeness witness (Definition 3) ==";
  match
    Network.Coordination.heartbeat_witness
      ~variant:compiled.Calm_core.Compile.variant
      ~transducer:compiled.Calm_core.Compile.transducer
      ~query:compiled.Calm_core.Compile.query ~input network
  with
  | Some w ->
    Printf.printf
      "node %s computes Q(I) with %d heartbeats and zero communication\n"
      (Value.to_string w.Network.Coordination.node)
      w.Network.Coordination.result.Network.Run.transitions
  | None -> print_endline "no witness found (unexpected)"
