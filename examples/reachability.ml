(* Distributed reachability: the CALM base case. Transitive closure is
   monotone, so the naive broadcast strategy computes it consistently on
   every network, under every distribution policy, with any message
   delays — and needs no system relations at all (Corollary 4.6:
   oblivious transducers capture exactly M).

   Run with: dune exec examples/reachability.exe *)

open Relational
open Queries

let () =
  let input = Graph_gen.erdos_renyi ~seed:5 ~nodes:12 ~edges:18 in
  let expected = Query.apply Zoo.tc input in
  Printf.printf "random digraph: %d edges, %d reachable pairs\n"
    (Instance.cardinal input)
    (Instance.cardinal expected);

  let t = Strategies.Broadcast.transducer Zoo.tc in
  List.iter
    (fun n ->
      let network = Distributed.network_of_ints (List.init n (fun i -> 1000 + i)) in
      let policy = Network.Policy.hash_fact Graph_gen.schema network in
      let result =
        Network.Run.run ~variant:Network.Config.oblivious ~policy
          ~transducer:t ~input Network.Run.Round_robin
      in
      Printf.printf
        "%2d nodes (oblivious model): correct=%b rounds=%d messages=%d\n" n
        (Instance.equal result.Network.Run.outputs expected)
        result.Network.Run.rounds result.Network.Run.messages_sent)
    [ 1; 2; 4; 8 ];

  print_endline "\nadversarial delivery (stingy scheduler, one message at a time):";
  let network = Distributed.network_of_ints [ 1; 2; 3 ] in
  let policy = Network.Policy.hash_fact Graph_gen.schema network in
  List.iter
    (fun seed ->
      let result =
        Network.Run.run ~variant:Network.Config.oblivious ~policy
          ~transducer:t ~input
          (Network.Run.Stingy { seed; steps = 200 })
      in
      Printf.printf "  seed %2d: correct=%b transitions=%d\n" seed
        (Instance.equal result.Network.Run.outputs expected)
        result.Network.Run.transitions)
    [ 1; 2; 3 ];

  print_endline "\nper-node output growth is monotone: facts only ever accumulate,";
  print_endline "which is exactly why no coordination is needed (CALM)."
