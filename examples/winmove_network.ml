(* The paper's flagship example: the non-monotone win-move query is
   coordination-free under domain-guided data distribution (Theorem 4.4,
   after Zinn, Green & Ludäscher), while no monotone-style strategy can
   compute it.

   The game: positions and moves; a position is WON if some move leads to
   a position that is not won (well-founded semantics of
   Win(x) <- Move(x,y), not Win(y)).

   Run with: dune exec examples/winmove_network.exe *)

open Relational
open Queries

let game =
  (* 1 -> 2 -> 3 (dead end), 4 <-> 5 (perpetual draw), 6 -> 4. *)
  Instance.of_strings
    [ "Move(1,2)"; "Move(2,3)"; "Move(4,5)"; "Move(5,4)"; "Move(6,4)" ]

let () =
  print_endline "== The win-move game ==";
  let wins = Query.apply Zoo.winmove game in
  Printf.printf "positions: 1..6; winners (well-founded semantics): %s\n"
    (String.concat ", "
       (List.map Fact.to_string (Instance.to_list wins)));
  print_endline "(2 wins by moving to the dead end; 4/5 are drawn;";
  print_endline " 6's only move reaches drawn 4, so 6 is not won)";

  print_endline "\n== Engine cross-check ==";
  let p = Datalog.Parser.parse_program Zoo.winmove_program in
  let m = Datalog.Wellfounded.eval p game in
  Printf.printf "well-founded engine agrees: %b; undefined (drawn) facts: %s\n"
    (Instance.equal wins
       (Instance.restrict_rels m.Datalog.Wellfounded.true_facts [ "Win" ]))
    (String.concat ", "
       (List.map Fact.to_string (Instance.to_list m.Datalog.Wellfounded.undefined)));

  print_endline "\n== Distributed, domain-guided (Theorem 4.4) ==";
  let network = Distributed.network_of_ints [ 100; 200; 300 ] in
  let t = Strategies.Domain_request.transducer Zoo.winmove in
  let policies =
    Network.Netquery.default_policies ~domain_guided_only:true
      Zoo.winmove.Query.input network
  in
  List.iter
    (fun policy ->
      let result =
        Network.Run.run ~variant:Network.Config.policy_aware ~policy
          ~transducer:t ~input:game
          (Network.Run.Random { seed = 42; steps = 100 })
      in
      Printf.printf "policy %-16s correct=%b messages=%d transitions=%d\n"
        (Network.Policy.name policy)
        (Instance.equal result.Network.Run.outputs wins)
        result.Network.Run.messages_sent result.Network.Run.transitions)
    policies;

  print_endline "\n== Protocol trace (request -> facts -> acks -> OK) ==";
  let tracer = Network.Trace.collector () in
  let policy = Network.Policy.hash_value Zoo.winmove.Query.input network in
  ignore
    (Network.Run.run ~tracer ~variant:Network.Config.policy_aware ~policy
       ~transducer:t ~input:game Network.Run.Round_robin);
  Format.printf "%a" (Network.Trace.pp_summary ~limit:6) tracer;
  let first_output =
    match Network.Trace.outputs_timeline tracer with
    | (i, f) :: _ -> Printf.sprintf "%s at transition #%d" (Fact.to_string f) i
    | [] -> "(none)"
  in
  Printf.printf "first output: %s\n" first_output;

  print_endline "\n== Coordination-freeness witness ==";
  (match
     Network.Coordination.heartbeat_witness ~variant:Network.Config.policy_aware
       ~transducer:t ~query:Zoo.winmove ~input:game network
   with
  | Some w ->
    Printf.printf
      "under the ideal (domain-guided) policy, node %s outputs all winners\n\
       after %d heartbeats without reading a single message\n"
      (Value.to_string w.Network.Coordination.node)
      w.Network.Coordination.result.Network.Run.transitions
  | None -> print_endline "no witness (unexpected)");

  print_endline "\n== Why weaker strategies fail here ==";
  print_endline
    "win-move is not domain-distinct-monotone: adding Move(3,7) (a new\n\
     escape from the dead end) flips winners among the OLD positions:";
  let extended = Instance.add (Fact.of_string "Move(3,7)") game in
  let wins' = Query.apply Zoo.winmove extended in
  Printf.printf "before: %s\nafter:  %s\n"
    (String.concat ", " (List.map Fact.to_string (Instance.to_list wins)))
    (String.concat ", " (List.map Fact.to_string (Instance.to_list wins')));
  Printf.printf "retracted: %s  => not in Mdistinct, hence not in F1\n"
    (String.concat ", "
       (List.map Fact.to_string (Instance.to_list (Instance.diff wins wins'))))
