(* Declarative networking: link-state routing as a relational transducer
   whose queries are Datalog¬ rules — the programming model the paper's
   introduction motivates.

   The global input is a Link relation; the distribution policy stores
   each link at its source router (Example 4.1's first-attribute policy).
   Every router broadcasts its local links and computes its routing table
   Route(src, dst) as the transitive closure of everything it has heard —
   a monotone computation, so the result is consistent on every fair run
   with zero coordination (CALM, level 0).

   Run with: dune exec examples/routing.exe *)

open Relational

let link_schema = Schema.of_list [ ("Link", 2) ]

let topology =
  (* Two rings bridged by 30<->40:
       10 -> 20 -> 30 -> 10   and   40 -> 50 -> 60 -> 40 *)
  Instance.of_strings
    [
      "Link(10,20)"; "Link(20,30)"; "Link(30,10)";
      "Link(40,50)"; "Link(50,60)"; "Link(60,40)";
      "Link(30,40)"; "Link(40,30)";
    ]

let routing_transducer =
  let schema =
    Network.Transducer_schema.make ~input:link_schema
      ~output:(Schema.of_list [ ("Route", 2) ])
      ~message:(Schema.of_list [ ("Lsa", 2) ])   (* link-state adverts *)
      ~memory:(Schema.of_list [ ("Lsdb", 2) ])   (* link-state database *)
      ()
  in
  Network.Transducer.of_datalog ~schema
    ~out:
      "K(x,y) :- Link(x,y).  K(x,y) :- Lsdb(x,y).  K(x,y) :- Lsa(x,y).\n\
       Out_Route(x,y) :- K(x,y).\n\
       Out_Route(x,z) :- Out_Route(x,y), K(y,z)."
    ~ins:
      "Ins_Lsdb(x,y) :- Link(x,y).  Ins_Lsdb(x,y) :- Lsa(x,y).\n\
       Ins_Lsdb(x,y) :- Lsdb(x,y)."
    ~snd:"Snd_Lsa(x,y) :- Link(x,y)."
    ()

let expected =
  (* Centralized reference: transitive closure of the topology. *)
  let tc = Queries.Zoo.tc in
  Instance.fold
    (fun f acc -> Instance.add (Fact.make "Route" (Fact.args f)) acc)
    (Query.apply tc
       (Instance.fold
          (fun f acc -> Instance.add (Fact.make "E" (Fact.args f)) acc)
          topology Instance.empty))
    Instance.empty

let () =
  print_endline "== Link-state routing on a simulated router network ==";
  Printf.printf "topology: %d links, expecting %d routes\n"
    (Instance.cardinal topology)
    (Instance.cardinal expected);

  (* Routers are the vertices themselves: node identifiers occur as data
     (Section 4.1.1). Links live at their source router. *)
  let routers = Distributed.network_of_ints [ 10; 20; 30; 40; 50; 60 ] in
  let policy =
    Network.Policy.make ~name:"at-source" link_schema routers (fun f ->
        [ Fact.arg f 0 ])
  in
  List.iter
    (fun (name, sched) ->
      let r =
        Network.Run.run ~variant:Network.Config.policy_aware ~policy
          ~transducer:routing_transducer ~input:topology sched
      in
      Printf.printf
        "%-12s correct=%b quiesced=%b rounds=%d adverts(sent)=%d\n" name
        (Instance.equal r.Network.Run.outputs expected)
        r.Network.Run.quiesced r.Network.Run.rounds
        r.Network.Run.messages_sent)
    [
      ("round-robin", Network.Run.Round_robin);
      ("random", Network.Run.Random { seed = 13; steps = 150 });
      ("stingy", Network.Run.Stingy { seed = 14; steps = 250 });
    ];

  print_endline "\nlink failure = smaller input, not retraction:";
  let degraded =
    Instance.remove (Fact.of_string "Link(30,40)") topology
  in
  let r =
    Network.Run.run ~variant:Network.Config.policy_aware ~policy
      ~transducer:routing_transducer ~input:degraded Network.Run.Round_robin
  in
  Printf.printf
    "without Link(30,40): %d routes (ring 1 can no longer reach ring 2)\n"
    (Instance.cardinal r.Network.Run.outputs);
  Printf.printf
    "the CALM lesson: adding links only adds routes (monotone), so routers\n\
     may announce routes the moment they derive them; handling retraction\n\
     (true link failure) would push the query out of M and require\n\
     coordination - exactly the paper's hierarchy.\n"
