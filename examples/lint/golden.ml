(* Golden-test runner: lints one fixture and prints the human and JSON
   renderings. Options come from the fixture's own [% calm-lint:] pragma;
   the file name is reduced to its basename so the expected output is
   independent of the build path. *)

let () =
  let path = Sys.argv.(1) in
  let ic = open_in_bin path in
  let source = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let file = Filename.basename path in
  let diags = Analysis.Lint.lint_source source in
  print_endline "== human ==";
  let ppf = Format.std_formatter in
  List.iter (Analysis.Diagnostic.pp_human ~file ~source ppf) diags;
  Format.pp_print_flush ppf ();
  print_endline "== json ==";
  print_endline
    (Analysis.Json.to_string
       (Analysis.Diagnostic.file_report_to_json ~file diags))
