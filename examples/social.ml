(* Social-network moderation: find the accounts NOT reachable from any
   verified account — a connected stratified Datalog¬ (con-Datalog¬)
   query, hence domain-disjoint-monotone (Theorem 5.3) and computable
   coordination-free under domain-guided distribution (Theorem 4.4),
   even though it is not monotone and not even in Mdistinct.

   Run with: dune exec examples/social.exe *)

open Relational

let program_src =
  {|
  % Accounts reachable from a verified account by follow edges.
  Reach(x) :- Verified(x).
  Reach(y) :- Reach(x), Follows(x,y).
  % The unvetted accounts.
  O(x) :- Adom(x), not Reach(x).
|}

let network_of_users ~seed ~users ~follows ~verified =
  let st = Random.State.make [| seed |] in
  let facts = ref [] in
  for _ = 1 to follows do
    let a = Random.State.int st users and b = Random.State.int st users in
    facts := Fact.make "Follows" [ Value.Int a; Value.Int b ] :: !facts
  done;
  for _ = 1 to verified do
    facts := Fact.make "Verified" [ Value.Int (Random.State.int st users) ] :: !facts
  done;
  Instance.of_list !facts

let () =
  let program = Datalog.Program.parse program_src in
  print_endline "== The moderation query ==";
  Printf.printf "fragment: %s\n"
    (Datalog.Fragment.to_string (Datalog.Program.fragment program));
  Printf.printf "points of order: %s\n"
    (Datalog.Points_of_order.coordination_level program.Datalog.Program.rules);

  let input = network_of_users ~seed:11 ~users:30 ~follows:45 ~verified:3 in
  let expected = Datalog.Program.run program input in
  Printf.printf "\n%d follow edges, %d verified; %d unvetted accounts\n"
    (Instance.cardinal (Instance.restrict_rels input [ "Follows" ]))
    (Instance.cardinal (Instance.restrict_rels input [ "Verified" ]))
    (Instance.cardinal expected);

  print_endline "\n== Why this needs level F2 ==";
  let compiled = Calm_core.Compile.compile_program program in
  Printf.printf "compiled at: %s (domain-guided policies only: %b)\n"
    (Calm_core.Hierarchy.to_string compiled.Calm_core.Compile.level)
    compiled.Calm_core.Compile.domain_guided_only;
  print_endline
    "a new follower chain from a verified account can vet an OLD account,\n\
     so outputs can be retracted by domain-distinct growth - but never by\n\
     domain-disjoint growth: fresh users bring their own component.";

  print_endline "\n== Distributed run (4 shards, domain-guided) ==";
  let shards = Distributed.network_of_ints [ 9001; 9002; 9003; 9004 ] in
  let policy =
    Network.Policy.hash_value (Datalog.Program.input_schema program) shards
  in
  let result =
    Network.Run.run ~variant:compiled.Calm_core.Compile.variant ~policy
      ~transducer:compiled.Calm_core.Compile.transducer ~input
      Network.Run.Round_robin
  in
  Printf.printf "quiesced=%b transitions=%d messages=%d correct=%b\n"
    result.Network.Run.quiesced result.Network.Run.transitions
    result.Network.Run.messages_sent
    (Instance.equal result.Network.Run.outputs expected);

  print_endline "\n== Placement visualization (DOT, first shard only) ==";
  let h = Network.Policy.dist policy input in
  let dot = Dot.of_distributed ~rel:"Follows" h in
  Printf.printf "(%d characters of graphviz; head:)\n" (String.length dot);
  String.split_on_char '\n' dot
  |> List.filteri (fun i _ -> i < 6)
  |> List.iter print_endline
