(* Hierarchy explorer: feed any Datalog¬ program and learn (a) its
   syntactic fragment, (b) its guaranteed CALM level, (c) its empirical
   monotonicity placement with counterexamples, and (d) whether the
   compiled coordination-free strategy actually computes it on a simulated
   network.

   Usage:
     dune exec examples/hierarchy_explorer.exe -- --program 'O(x,y) :- E(x,y).'
     dune exec examples/hierarchy_explorer.exe -- --file prog.dl --facts 'E(1,2). E(2,3)'
     dune exec examples/hierarchy_explorer.exe -- --demo comp-tc *)

open Relational
open Cmdliner

let demos =
  [
    ("tc", (Queries.Zoo.tc_program, [ "T" ]));
    ("comp-tc", (Queries.Zoo.comp_tc_program, [ "O" ]));
    ("p1", (Queries.Zoo.example_51_p1, [ "O" ]));
    ("p2", (Queries.Zoo.example_51_p2, [ "O" ]));
  ]

let parse_facts s =
  s
  |> String.split_on_char '.'
  |> List.filter_map (fun part ->
         let part = String.trim part in
         if part = "" then None else Some (Fact.of_string part))
  |> Instance.of_list

let default_input schema =
  (* A small generic input: a path over each binary relation, a couple of
     unary facts. *)
  List.fold_left
    (fun acc (name, ar) ->
      List.fold_left
        (fun acc k ->
          Instance.add
            (Fact.make name (List.init ar (fun i -> Value.Int (k + i))))
            acc)
        acc [ 1; 2; 3 ])
    Instance.empty
    (Schema.relations schema)

let explore src outputs facts verify =
  let program =
    try Datalog.Program.parse ~outputs src with
    | Datalog.Parser.Syntax_error { line; col; message } ->
      Printf.eprintf "syntax error (line %d, column %d): %s\n" line col message;
      exit 1
    | Invalid_argument msg ->
      Printf.eprintf "invalid program: %s\n" msg;
      exit 1
  in
  let fragment = Datalog.Program.fragment program in
  Printf.printf "fragment:          %s\n" (Datalog.Fragment.to_string fragment);
  Printf.printf "connectivity:      %s\n"
    (Datalog.Connectivity.explain program.Datalog.Program.rules);
  let syntactic = Calm_core.Hierarchy.of_fragment fragment in
  Printf.printf "syntactic level:   %s (class %s, model %s)\n"
    (Calm_core.Hierarchy.to_string syntactic)
    (Calm_core.Hierarchy.monotonicity_class syntactic)
    (Calm_core.Hierarchy.transducer_model syntactic);

  let q = Datalog.Program.query ~name:"program" program in
  let bounds =
    { Monotone.Checker.dom_size = 3; fresh = 2; max_base = 3; max_ext = 2 }
  in
  let placement = Monotone.Checker.place ~bounds q in
  Printf.printf "empirical level:   %s (bounded check)\n"
    (Monotone.Checker.strongest placement);
  List.iter
    (fun (name, outcome) ->
      match outcome with
      | Monotone.Checker.No_violation { pairs } ->
        Printf.printf "  %-10s no violation in %d admissible pairs\n" name pairs
      | Monotone.Checker.Violated v ->
        Printf.printf "  %-10s VIOLATED: %s\n" name
          (Format.asprintf "%a" Monotone.Classes.pp_violation v))
    [
      ("M", placement.Monotone.Checker.plain);
      ("Mdistinct", placement.Monotone.Checker.distinct);
      ("Mdisjoint", placement.Monotone.Checker.disjoint);
    ];

  let input =
    match facts with
    | Some s -> parse_facts s
    | None -> default_input (Datalog.Program.input_schema program)
  in
  Printf.printf "\ninput I = %s\n" (Instance.to_string input);
  Printf.printf "Q(I)    = %s\n" (Instance.to_string (Datalog.Program.run program input));

  if verify then begin
    print_endline "\nverifying the compiled coordination-free strategy...";
    match Calm_core.Compile.compile_program ~bounds program with
    | exception Invalid_argument msg -> Printf.printf "cannot compile: %s\n" msg
    | compiled ->
      let network = Distributed.network_of_ints [ 1; 2; 3 ] in
      let report =
        Calm_core.Verify.check compiled ~inputs:[ input ] network
      in
      Format.printf "%a@." Calm_core.Verify.pp_report report
  end

let src_term =
  let program =
    Arg.(value & opt (some string) None & info [ "program"; "p" ] ~doc:"Program text.")
  in
  let file =
    Arg.(value & opt (some file) None & info [ "file"; "f" ] ~doc:"Program file.")
  in
  let demo =
    Arg.(
      value
      & opt (some (enum (List.map (fun (k, _) -> (k, k)) demos))) None
      & info [ "demo" ] ~doc:"Built-in demo program (tc, comp-tc, p1, p2).")
  in
  let combine program file demo =
    match (program, file, demo) with
    | Some s, None, None -> `Ok (s, [ "O" ])
    | None, Some f, None ->
      let ic = open_in f in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      `Ok (s, [ "O" ])
    | None, None, Some d -> `Ok (List.assoc d demos)
    | None, None, None -> `Ok (List.assoc "comp-tc" demos)
    | _ -> `Error (false, "give at most one of --program, --file, --demo")
  in
  Term.(ret (const combine $ program $ file $ demo))

let facts_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "facts" ] ~doc:"Input facts, e.g. 'E(1,2). E(2,3)'.")

let verify_term =
  Arg.(value & flag & info [ "verify" ] ~doc:"Run the compiled strategy on a simulated network.")

let cmd =
  let doc = "place a Datalog¬ program in the refined CALM hierarchy" in
  Cmd.v
    (Cmd.info "hierarchy_explorer" ~doc)
    Term.(
      const (fun (src, outputs) facts verify -> explore src outputs facts verify)
      $ src_term $ facts_term $ verify_term)

let () = exit (Cmd.eval cmd)
