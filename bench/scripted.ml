(* The scripted adversarial fair-run prefix showing that the Mdistinct
   (absence) strategy is unsound for win-move: node 110 becomes complete
   on the induced subgame {Move(1,2), Move(4,4)} while the message
   carrying Move(2,3) is still in flight, and outputs Win(1) — wrong in
   the full game, where 2 wins via 3 and 1 therefore loses. Used by
   experiment E10. *)

open Relational
open Queries

let absence_winmove_wrong_output () =
  let v = Value.int in
  let net = Distributed.network_of_ints [ 110; 220 ] in
  let input =
    Instance.of_strings [ "Move(1,2)"; "Move(2,3)"; "Move(4,4)" ]
  in
  let t = Strategies.Absence.transducer Zoo.winmove in
  let move_schema = Zoo.winmove.Query.input in
  let base = Network.Policy.single move_schema net (v 110) in
  let policy =
    Network.Policy.override ~name:"split"
      ~on:(fun f -> Value.equal (Fact.arg f 0) (v 2))
      ~to_:[ v 220 ] base
  in
  let step config node deliver =
    fst
      (Network.Config.transition ~variant:Network.Config.policy_aware ~policy
         ~transducer:t ~input config ~node ~deliver)
  in
  let abs args = Fact.make "AbsMsg_Move" (List.map v args) in
  let c = step (Network.Config.start net) (v 110) Multiset.empty in
  let teach = Multiset.of_list [ abs [ 1; 1 ]; abs [ 1; 4 ] ] in
  if not (Multiset.sub teach (Network.Config.buffer_of c (v 220))) then None
  else
    let c = step c (v 220) teach in
    let certs =
      Multiset.of_list
        [
          abs [ 2; 1 ]; abs [ 2; 2 ]; abs [ 2; 4 ]; abs [ 2; 110 ];
          abs [ 2; 220 ];
        ]
    in
    if not (Multiset.sub certs (Network.Config.buffer_of c (v 110))) then None
    else
      let c = step c (v 110) certs in
      let out =
        Network.Config.outputs t.Network.Transducer.schema c
      in
      let expected = Query.apply Zoo.winmove input in
      Instance.to_list (Instance.diff out expected) |> function
      | f :: _ -> Some f
      | [] -> None
