(* Benchmark harness: regenerates every figure and theorem-level claim of
   the paper as a table (experiments E1-E13 of DESIGN.md), measures the
   cost of the three coordination-free evaluation strategies (E14), and
   finishes with bechamel timing benches (E14/E15).

   Run with: dune exec bench/main.exe
   Pass --quick to shrink the slowest experiments, and --jobs N to size
   the Domain pool of the E23 parallel-speedup section (default: all
   cores). Pass --json FILE to additionally write a calm-bench/v1
   trajectory document: per experiment, its wall-clock and its stable
   telemetry counters (see lib/observe). *)

open Relational
open Monotone
open Queries
open Calm_core

let quick = Array.exists (fun a -> a = "--quick") Sys.argv

let jobs =
  let rec find i =
    if i >= Array.length Sys.argv then Parallel.Pool.default_jobs ()
    else if Sys.argv.(i) = "--jobs" && i + 1 < Array.length Sys.argv then
      match int_of_string_opt Sys.argv.(i + 1) with
      | Some n when n >= 1 -> n
      | _ -> Parallel.Pool.default_jobs ()
    else find (i + 1)
  in
  find 1

let json_out =
  let rec find i =
    if i >= Array.length Sys.argv then None
    else if Sys.argv.(i) = "--json" && i + 1 < Array.length Sys.argv then
      Some Sys.argv.(i + 1)
    else find (i + 1)
  in
  find 1

(* --json trajectory: per experiment, wall-clock plus the stable metric
   rows the run recorded into the root collector (reset per experiment,
   so each entry is self-contained). *)
let recorded : (string * float * Observe.Metrics.row list) list ref = ref []

let experiment id f =
  Observe.Metrics.reset Observe.Metrics.root;
  let t0 = Unix.gettimeofday () in
  f ();
  let wall = Unix.gettimeofday () -. t0 in
  recorded :=
    (id, wall, Observe.Metrics.snapshot ~stable_only:true Observe.Metrics.root)
    :: !recorded;
  print_newline ()

let metrics_json rows =
  let open Observe in
  Json.Obj
    (List.map
       (fun (r : Metrics.row) ->
         let key =
           match r.labels with
           | [] -> r.name
           | ls ->
             r.name ^ "{"
             ^ String.concat ","
                 (List.map (fun (k, v) -> k ^ "=" ^ v) ls)
             ^ "}"
         in
         let value =
           match r.kind with
           | Metrics.Counter -> Json.Int r.count
           | Metrics.Gauge -> Json.Float r.last
           | Metrics.Histogram | Metrics.Timing -> Json.Float r.sum
         in
         (key, value))
       rows)

let emit_json file =
  let open Observe in
  let experiments = List.rev !recorded in
  let doc =
    Json.Obj
      [
        ("schema", Json.String "calm-bench/v1");
        ("quick", Json.Bool quick);
        ("jobs", Json.Int jobs);
        ( "experiments",
          Json.List
            (List.map
               (fun (id, wall, rows) ->
                 Json.Obj
                   [
                     ("id", Json.String id);
                     ("wall_s", Json.Float wall);
                     ("metrics", metrics_json rows);
                   ])
               experiments) );
      ]
  in
  let oc = open_out file in
  output_string oc (Json.to_string_pretty doc ^ "\n");
  close_out oc;
  Printf.printf "wrote %s\n" file

let violated = Checker.is_violation

let verdict_cell outcome ~expect_violation =
  let got = violated outcome in
  let marker = if got = expect_violation then "" else "  <<< UNEXPECTED" in
  (if got then "violated" else "holds") ^ marker

(* ================================================================== *)
(* E1 — Figure 1: the monotonicity hierarchy, unbounded classes        *)
(* ================================================================== *)

let e1_fig1_hierarchy () =
  let t =
    Report.create ~title:"E1 / Figure 1: membership in M, Mdistinct, Mdisjoint"
      ~columns:[ "query"; "M"; "Mdistinct"; "Mdisjoint"; "paper says" ]
  in
  let bounds = { Checker.dom_size = 3; fresh = 3; max_base = 3; max_ext = 3 } in
  let row name q expected extra_bases =
    let check kind =
      match (Checker.check_exhaustive ~bounds kind q, extra_bases) with
      | (Checker.Violated _ as v), _ -> v
      | ok, [] -> ok
      | Checker.No_violation { pairs }, bases -> (
        match Checker.check_on_bases ~fresh:3 ~max_ext:3 kind q bases with
        | Checker.Violated _ as v -> v
        | Checker.No_violation { pairs = p2 } ->
          Checker.No_violation { pairs = pairs + p2 })
    in
    let cell kind = Report.cell_member (not (violated (check kind))) in
    Report.add_row t
      [
        name;
        cell Classes.Plain;
        cell Classes.Distinct;
        cell Classes.Disjoint;
        expected;
      ]
  in
  row "TC" Zoo.tc "M" [];
  row "comp-TC (Q_TC)" Zoo.comp_tc "Mdisjoint \\ Mdistinct" [];
  row "win-move" Zoo.winmove "Mdisjoint \\ Mdistinct" [];
  row "triangles-unless-2-disjoint" Zoo.triangles_unless_two_disjoint
    "C \\ Mdisjoint"
    [ Graph_gen.cycle 3 ];
  Report.add_note t
    "bounded-exhaustive: dom 3 (+3 fresh), bases <= 3 facts, extensions <= 3";
  Report.print t

(* ================================================================== *)
(* E2 — Theorem 3.1(2): the bounded plain classes collapse, M = M^i    *)
(* ================================================================== *)

let e2_bounded_collapse () =
  let t =
    Report.create ~title:"E2 / Thm 3.1(2): M^1 = M^3 on a query sample"
      ~columns:[ "query"; "M^1"; "M^3"; "agree" ]
  in
  let bounds i =
    { Checker.dom_size = 3; fresh = 2; max_base = 3; max_ext = i }
  in
  List.iter
    (fun (name, q) ->
      let v1 =
        violated (Checker.check_exhaustive ~bounds:(bounds 1) Classes.Plain q)
      in
      let v3 =
        violated (Checker.check_exhaustive ~bounds:(bounds 3) Classes.Plain q)
      in
      Report.add_row t
        [
          name;
          (if v1 then "violated" else "holds");
          (if v3 then "violated" else "holds");
          Report.cell_bool (v1 = v3);
        ])
    [
      ("TC", Zoo.tc);
      ("comp-TC", Zoo.comp_tc);
      ("q-star-2", Zoo.q_star 2);
      ("win-move", Zoo.winmove);
    ];
  Report.add_note t
    "a single added fact already exposes any plain-monotonicity violation";
  Report.print t

(* ================================================================== *)
(* E3 — Theorem 3.1(3,5): the clique ladder                            *)
(* ================================================================== *)

(* A one-directional clique on k vertices starting at [offset]. *)
let half_clique ?(offset = 1) k =
  let edges = ref [] in
  for i = 0 to k - 1 do
    for j = i + 1 to k - 1 do
      edges := (offset + i, offset + j) :: !edges
    done
  done;
  Graph_gen.of_edges !edges

let e3_clique_ladder () =
  let t =
    Report.create
      ~title:
        "E3 / Thm 3.1(3,5): Q^(i+2)-clique in M^i-distinct \\ M^(i+1)-distinct"
      ~columns:[ "query"; "class"; "bound"; "result"; "paper" ]
  in
  let is = if quick then [ 1 ] else [ 1; 2 ] in
  List.iter
    (fun i ->
      let k = i + 2 in
      let q = Zoo.q_clique k in
      let bases = [ half_clique (k - 1); Graph_gen.path 2; Graph_gen.path 1 ] in
      let check kind bound =
        Checker.check_on_bases ~fresh:(k + 1) ~max_ext:bound kind q bases
      in
      let name = Printf.sprintf "Q^%d-clique" k in
      Report.add_row t
        [
          name; "distinct"; string_of_int i;
          verdict_cell (check Classes.Distinct i) ~expect_violation:false;
          "in";
        ];
      Report.add_row t
        [
          name; "distinct"; string_of_int (i + 1);
          verdict_cell (check Classes.Distinct (i + 1)) ~expect_violation:true;
          "NOT in";
        ];
      (* Creating a brand-new k-clique disjointly needs C(k,2) edges. *)
      let fresh_edges_needed = k * (k - 1) / 2 in
      Report.add_row t
        [
          name; "disjoint"; string_of_int (fresh_edges_needed - 1);
          verdict_cell
            (check Classes.Disjoint (fresh_edges_needed - 1))
            ~expect_violation:false;
          "in";
        ];
      Report.add_row t
        [
          name; "disjoint"; string_of_int fresh_edges_needed;
          verdict_cell
            (check Classes.Disjoint fresh_edges_needed)
            ~expect_violation:true;
          "NOT in";
        ])
    is;
  Report.add_note t
    "bases include the (k-1)-clique of the paper's proof; a new centre \
     vertex with i+1 spokes completes a k-clique";
  Report.print t

(* ================================================================== *)
(* E4 — Theorem 3.1(4,6): the star ladder                              *)
(* ================================================================== *)

let e4_star_ladder () =
  let t =
    Report.create
      ~title:"E4 / Thm 3.1(4,6): Q^k-star in M^(k-1)-disjoint \\ M^k-disjoint"
      ~columns:[ "query"; "class"; "bound"; "result"; "paper" ]
  in
  let ks = if quick then [ 2 ] else [ 2; 3 ] in
  List.iter
    (fun k ->
      let q = Zoo.q_star k in
      let bases = [ Graph_gen.star (k - 1); Graph_gen.path 1 ] in
      let check kind bound =
        Checker.check_on_bases ~fresh:(k + 1) ~max_ext:bound kind q bases
      in
      let name = Printf.sprintf "Q^%d-star" k in
      Report.add_row t
        [
          name; "disjoint"; string_of_int (k - 1);
          verdict_cell (check Classes.Disjoint (k - 1)) ~expect_violation:false;
          "in";
        ];
      Report.add_row t
        [
          name; "disjoint"; string_of_int k;
          verdict_cell (check Classes.Disjoint k) ~expect_violation:true;
          "NOT in";
        ];
      (* Thm 3.1(6): one domain-distinct edge at the old centre suffices. *)
      Report.add_row t
        [
          name; "distinct"; "1";
          verdict_cell (check Classes.Distinct 1) ~expect_violation:true;
          "NOT in";
        ])
    ks;
  Report.add_note t
    "k disjoint fresh edges build a brand-new k-spoke star; one distinct \
     edge extends the old centre";
  Report.print t

(* ================================================================== *)
(* E5 — Theorem 3.1(7): the duplicate query                            *)
(* ================================================================== *)

let e5_duplicate () =
  let t =
    Report.create
      ~title:"E5 / Thm 3.1(7): Q^j-duplicate in M^i-distinct \\ M^j-disjoint"
      ~columns:[ "query"; "class"; "bound"; "result"; "paper" ]
  in
  let js = if quick then [ 2 ] else [ 2; 3 ] in
  List.iter
    (fun j ->
      let q = Zoo.q_duplicate j in
      let base =
        Instance.of_list [ Fact.make "R1" [ Value.Int 1; Value.Int 2 ] ]
      in
      let check kind bound =
        Checker.check_on_bases ~fresh:2 ~max_ext:bound kind q [ base ]
      in
      let name = Printf.sprintf "Q^%d-duplicate" j in
      Report.add_row t
        [
          name; "distinct"; string_of_int (j - 1);
          verdict_cell (check Classes.Distinct (j - 1)) ~expect_violation:false;
          "in";
        ];
      Report.add_row t
        [
          name; "disjoint"; string_of_int (j - 1);
          verdict_cell (check Classes.Disjoint (j - 1)) ~expect_violation:false;
          "in";
        ];
      Report.add_row t
        [
          name; "disjoint"; string_of_int j;
          verdict_cell (check Classes.Disjoint j) ~expect_violation:true;
          "NOT in";
        ])
    js;
  Report.add_note t
    "j domain-disjoint facts replicate one fresh tuple across all j relations";
  Report.print t

(* ================================================================== *)
(* E21 — Figure 1, lower half: the bounded ladders as a matrix         *)
(* ================================================================== *)

let e21_bounded_ladders () =
  let t =
    Report.create
      ~title:
        "E21 / Figure 1 (bounded): M^i membership, i = 1..4 (x = violated)"
      ~columns:
        [ "query"; "class"; "i=1"; "i=2"; "i=3"; "i=4"; "certificate (shrunk)" ]
  in
  let cell o = if violated o then "x" else "ok" in
  let certificate q outcomes =
    match
      List.find_map
        (function Checker.Violated v -> Some v | _ -> None)
        outcomes
    with
    | None -> "-"
    | Some v ->
      let v = Shrink.shrink q v in
      Format.asprintf "|I|=%d, |J|=%d"
        (Instance.cardinal v.Classes.base)
        (Instance.cardinal v.Classes.extension)
  in
  let row name q kind bases fresh =
    let outcomes = Checker.ladder ~fresh ~bases kind ~max_i:4 q in
    Report.add_row t
      ([ name; Classes.kind_to_string kind ]
      @ List.map cell outcomes
      @ [ certificate q outcomes ])
  in
  row "Q^3-clique" (Zoo.q_clique 3) Classes.Distinct
    [ half_clique 2; Graph_gen.path 1 ]
    4;
  row "Q^3-clique" (Zoo.q_clique 3) Classes.Disjoint
    [ half_clique 2; Graph_gen.path 1 ]
    4;
  row "Q^2-star" (Zoo.q_star 2) Classes.Distinct
    [ Graph_gen.star 1; Graph_gen.path 1 ]
    4;
  row "Q^2-star" (Zoo.q_star 2) Classes.Disjoint
    [ Graph_gen.star 1; Graph_gen.path 1 ]
    4;
  row "Q^2-duplicate" (Zoo.q_duplicate 2) Classes.Distinct
    [ Instance.of_list [ Fact.make "R1" [ Value.Int 1; Value.Int 2 ] ] ]
    2;
  row "Q^2-duplicate" (Zoo.q_duplicate 2) Classes.Disjoint
    [ Instance.of_list [ Fact.make "R1" [ Value.Int 1; Value.Int 2 ] ] ]
    2;
  row "comp-TC" Zoo.comp_tc Classes.Distinct
    [ Graph_gen.path 1 ]
    2;
  Report.add_note t
    "each first 'x' column realizes a strict inclusion M^(i)_k > M^(i+1)_k \
     of Figure 1; certificates are fact-minimal after shrinking";
  Report.print t

(* ================================================================== *)
(* E6 — Lemma 3.2: E = Mdistinct                                       *)
(* ================================================================== *)

let e6_lemma32 () =
  let t =
    Report.create
      ~title:"E6 / Lemma 3.2: preserved-under-extensions = Mdistinct"
      ~columns:[ "query"; "E-checker"; "Mdistinct-checker"; "agree" ]
  in
  let bounds = { Checker.dom_size = 3; fresh = 2; max_base = 3; max_ext = 2 } in
  List.iter
    (fun (name, q) ->
      let e = violated (Relate.check_extensions_exhaustive ~bounds q) in
      let d = violated (Checker.check_exhaustive ~bounds Classes.Distinct q) in
      Report.add_row t
        [
          name;
          (if e then "violated" else "holds");
          (if d then "violated" else "holds");
          Report.cell_bool (e = d);
        ])
    [
      ("TC", Zoo.tc);
      ("comp-TC", Zoo.comp_tc);
      ("q-clique-3", Zoo.q_clique 3);
      ("q-star-2", Zoo.q_star 2);
      ("win-move", Zoo.winmove);
    ];
  Report.print t

(* ================================================================== *)
(* Network experiment plumbing                                         *)
(* ================================================================== *)

let net2 = Distributed.network_of_ints [ 101; 102 ]

let schedulers =
  [
    ("round-robin", Network.Run.Round_robin);
    ("random", Network.Run.Random { seed = 1; steps = 60 });
    ("stingy", Network.Run.Stingy { seed = 2; steps = 90 });
  ]

(* Complement of the edge relation: the canonical SP-Datalog (hence
   Mdistinct) query used for the F1-level experiments. *)
let comp_edges =
  Query.make ~name:"comp-edges" ~input:Graph_gen.schema
    ~output:(Schema.of_list [ ("O", 2) ])
    (fun i ->
      let dom = Value.Set.elements (Instance.adom i) in
      List.fold_left
        (fun acc a ->
          List.fold_left
            (fun acc b ->
              if Instance.mem (Fact.make "E" [ a; b ]) i then acc
              else Instance.add (Fact.make "O" [ a; b ]) acc)
            acc dom)
        Instance.empty dom)

let strategy_row t variant ~name ~strategy ~query ~input ~dg_only network =
  let policies =
    Network.Netquery.default_policies ~domain_guided_only:dg_only
      query.Query.input network
  in
  let verdict =
    Network.Netquery.check ~schedulers ~policies ~variant ~transducer:strategy
      ~query ~input network
  in
  let witness =
    Network.Coordination.heartbeat_witness ~variant ~transducer:strategy
      ~query ~input network
  in
  Report.add_row t
    [
      name;
      query.Query.name;
      Report.cell_bool (Network.Netquery.consistent verdict);
      string_of_int (List.length verdict.Network.Netquery.runs);
      Report.cell_bool (witness <> None);
    ]

(* ================================================================== *)
(* E7 — Theorem 4.3: Mdistinct ⊆ F1 (absence strategy)                 *)
(* ================================================================== *)

let e7_policy_aware () =
  let t =
    Report.create
      ~title:
        "E7 / Thm 4.3: the absence strategy is coordination-free on Mdistinct"
      ~columns:[ "strategy"; "query"; "consistent"; "runs"; "hb witness" ]
  in
  let input = Graph_gen.of_edges [ (1, 2); (2, 3); (5, 1) ] in
  strategy_row t Network.Config.policy_aware ~name:"absence"
    ~strategy:(Strategies.Absence.transducer comp_edges)
    ~query:comp_edges ~input ~dg_only:false net2;
  strategy_row t Network.Config.policy_aware ~name:"absence"
    ~strategy:(Strategies.Absence.transducer Zoo.comp_tc)
    ~query:Zoo.comp_tc ~input ~dg_only:false net2;
  strategy_row t Network.Config.policy_aware ~name:"broadcast"
    ~strategy:(Strategies.Broadcast.transducer Zoo.tc)
    ~query:Zoo.tc ~input ~dg_only:false net2;
  Report.add_note t
    "consistent = identical, correct output on every policy x scheduler; \
     hb witness = Q(I) computed by heartbeats alone under the ideal policy";
  Report.print t

(* ================================================================== *)
(* E8 — Theorem 4.4: Mdisjoint ⊆ F2 (domain-request strategy)          *)
(* ================================================================== *)

let e8_domain_guided () =
  let t =
    Report.create
      ~title:
        "E8 / Thm 4.4: the domain-request strategy is coordination-free \
         under domain guidance"
      ~columns:[ "strategy"; "query"; "consistent"; "runs"; "hb witness" ]
  in
  let game =
    Instance.of_strings [ "Move(1,2)"; "Move(2,3)"; "Move(4,5)"; "Move(5,4)" ]
  in
  strategy_row t Network.Config.policy_aware ~name:"domain-request"
    ~strategy:(Strategies.Domain_request.transducer Zoo.winmove)
    ~query:Zoo.winmove ~input:game ~dg_only:true net2;
  strategy_row t Network.Config.policy_aware ~name:"domain-request"
    ~strategy:(Strategies.Domain_request.transducer Zoo.comp_tc)
    ~query:Zoo.comp_tc
    ~input:(Graph_gen.of_edges [ (1, 2); (2, 3) ])
    ~dg_only:true net2;
  Report.add_note t "policies restricted to domain-guided ones (F2's model)";
  Report.print t

(* ================================================================== *)
(* E9 — Theorem 4.5 / Corollary 4.6: the All-free and oblivious models *)
(* ================================================================== *)

let e9_all_free () =
  let t =
    Report.create
      ~title:"E9 / Thm 4.5 + Cor 4.6: the same strategies work without All"
      ~columns:
        [ "model"; "strategy"; "query"; "consistent"; "runs"; "hb witness" ]
  in
  let add variant model_name name strategy query input dg =
    let policies =
      Network.Netquery.default_policies ~domain_guided_only:dg
        query.Query.input net2
    in
    let verdict =
      Network.Netquery.check ~schedulers ~policies ~variant
        ~transducer:strategy ~query ~input net2
    in
    let witness =
      Network.Coordination.heartbeat_witness ~variant ~transducer:strategy
        ~query ~input net2
    in
    Report.add_row t
      [
        model_name;
        name;
        query.Query.name;
        Report.cell_bool (Network.Netquery.consistent verdict);
        string_of_int (List.length verdict.Network.Netquery.runs);
        Report.cell_bool (witness <> None);
      ]
  in
  let edges = Graph_gen.of_edges [ (1, 2); (2, 3) ] in
  let game = Instance.of_strings [ "Move(1,2)"; "Move(2,3)" ] in
  add Network.Config.all_free "All-free" "absence"
    (Strategies.Absence.transducer comp_edges)
    comp_edges edges false;
  add Network.Config.all_free "All-free" "domain-request"
    (Strategies.Domain_request.transducer Zoo.winmove)
    Zoo.winmove game true;
  add Network.Config.oblivious "oblivious" "broadcast"
    (Strategies.Broadcast.transducer Zoo.tc)
    Zoo.tc edges false;
  Report.add_note t
    "A1 = Mdistinct, A2 = Mdisjoint, oblivious = M: knowledge of all nodes \
     is never needed";
  Report.print t

(* ================================================================== *)
(* E10 — Figure 2 columns: strictness F0 ⊊ F1 ⊊ F2                     *)
(* ================================================================== *)

let e10_strictness () =
  let t =
    Report.create
      ~title:"E10 / Fig 2: each strategy fails one level up the hierarchy"
      ~columns:[ "strategy (level)"; "query (level)"; "outcome" ]
  in
  let edges = Graph_gen.of_edges [ (1, 2); (2, 3); (5, 1) ] in
  let verdict =
    Network.Netquery.check ~schedulers ~variant:Network.Config.policy_aware
      ~transducer:(Strategies.Broadcast.transducer comp_edges)
      ~query:comp_edges ~input:edges net2
  in
  Report.add_row t
    [
      "broadcast (F0)";
      "comp-edges (Mdistinct)";
      Printf.sprintf "%d/%d runs wrong"
        (List.length verdict.Network.Netquery.mismatches)
        (List.length verdict.Network.Netquery.runs);
    ];
  let verdict =
    Network.Netquery.check ~schedulers ~variant:Network.Config.original
      ~transducer:(Strategies.Absence.transducer comp_edges)
      ~query:comp_edges ~input:edges net2
  in
  Report.add_row t
    [
      "absence w/o policy rels (F0 model)";
      "comp-edges (Mdistinct)";
      Printf.sprintf "%d/%d runs wrong"
        (List.length verdict.Network.Netquery.mismatches)
        (List.length verdict.Network.Netquery.runs);
    ];
  let wrong = Scripted.absence_winmove_wrong_output () in
  Report.add_row t
    [
      "absence (F1)";
      "win-move (Mdisjoint)";
      (match wrong with
      | Some f -> Printf.sprintf "wrong fact %s produced" (Fact.to_string f)
      | None -> "no wrong output  <<< UNEXPECTED");
    ];
  let verdict =
    Network.Netquery.check ~schedulers ~variant:Network.Config.policy_aware
      ~policies:
        (Network.Netquery.default_policies ~domain_guided_only:true
           Zoo.winmove.Query.input net2)
      ~transducer:(Strategies.Domain_request.transducer Zoo.winmove)
      ~query:Zoo.winmove
      ~input:(Instance.of_strings [ "Move(1,2)"; "Move(2,3)" ])
      net2
  in
  Report.add_row t
    [
      "domain-request (F2)";
      "win-move (Mdisjoint)";
      Printf.sprintf "%d/%d runs wrong"
        (List.length verdict.Network.Netquery.mismatches)
        (List.length verdict.Network.Netquery.runs);
    ];
  Report.add_note t "F0 < F1 < F2: Zinn et al.'s hierarchy, reproduced";
  Report.print t

(* ================================================================== *)
(* E11 — Lemma 5.2: con-Datalog¬ distributes over components           *)
(* ================================================================== *)

let e11_components () =
  let t =
    Report.create
      ~title:"E11 / Lemma 5.2: connected programs distribute over components"
      ~columns:[ "program"; "inputs"; "Q(I) = U Q(C)"; "outputs adom-disjoint" ]
  in
  let programs =
    [
      ("P1 (Example 5.1)", Datalog.Program.parse Zoo.example_51_p1);
      ("TC", Datalog.Program.parse ~outputs:[ "T" ] Zoo.tc_program);
    ]
  in
  let trials = if quick then 10 else 30 in
  List.iter
    (fun (name, p) ->
      let ok_union = ref true and ok_disjoint = ref true in
      for seed = 0 to trials - 1 do
        let a = Graph_gen.erdos_renyi ~seed ~nodes:4 ~edges:5 in
        let b = Graph_gen.erdos_renyi ~seed:(seed + 1000) ~nodes:4 ~edges:4 in
        let i = Graph_gen.disjoint_union a b in
        let whole = Datalog.Program.run p i in
        let comps = Component.components i in
        let parts = List.map (Datalog.Program.run p) comps in
        let union = List.fold_left Instance.union Instance.empty parts in
        if not (Instance.equal whole union) then ok_union := false;
        List.iteri
          (fun x ox ->
            List.iteri
              (fun y oy ->
                if x < y && not (Instance.is_domain_disjoint_from ox oy) then
                  ok_disjoint := false)
              parts)
          parts
      done;
      Report.add_row t
        [
          name;
          string_of_int trials;
          Report.cell_bool !ok_union;
          Report.cell_bool !ok_disjoint;
        ])
    programs;
  Report.add_note t "random two-component inputs; components via union-find";
  Report.print t

(* ================================================================== *)
(* E12 — Theorem 5.3: semicon-Datalog¬ ⊆ Mdisjoint                     *)
(* ================================================================== *)

let e12_semicon () =
  let t =
    Report.create
      ~title:"E12 / Thm 5.3: semicon-Datalog programs sit in Mdisjoint"
      ~columns:[ "program"; "fragment"; "Mdisjoint check"; "paper" ]
  in
  let bounds = { Checker.dom_size = 3; fresh = 3; max_base = 3; max_ext = 3 } in
  let row name src expect_in =
    let p = Datalog.Program.parse src in
    let fragment = Datalog.Fragment.to_string (Datalog.Program.fragment p) in
    let q = Datalog.Program.query ~name p in
    let outcome = Checker.check_exhaustive ~bounds Classes.Disjoint q in
    Report.add_row t
      [
        name;
        fragment;
        verdict_cell outcome ~expect_violation:(not expect_in);
        (if expect_in then "in" else "NOT in");
      ]
  in
  row "P1 (Example 5.1)" Zoo.example_51_p1 true;
  row "comp-TC (semicon)" Zoo.comp_tc_program true;
  row "P2 (Example 5.1, not semicon)" Zoo.example_51_p2 false;
  Report.add_note t
    "P2's violation needs two disjoint triangles: found with 3 fresh values \
     against a triangle base";
  Report.print t

(* ================================================================== *)
(* E13 — Section 7: win-move via the doubled program                   *)
(* ================================================================== *)

let e13_winmove_doubled () =
  let t =
    Report.create
      ~title:"E13 / Sec 7: well-founded win-move = doubled-program win-move"
      ~columns:[ "games"; "nodes"; "edges"; "all equal" ]
  in
  let trials = if quick then 15 else 50 in
  let ok = ref true in
  for seed = 0 to trials - 1 do
    let g = Graph_gen.game ~seed ~nodes:8 ~edges:14 in
    let a = Query.apply Zoo.winmove g in
    let b = Query.apply Zoo.winmove_doubled g in
    if not (Instance.equal a b) then ok := false
  done;
  Report.add_row t [ string_of_int trials; "8"; "14"; Report.cell_bool !ok ];
  Report.add_note t
    "the doubled evaluation iterates the connected SP-Datalog step \
     W(x) :- Move(x,y), not P(y)";
  Report.print t

(* ================================================================== *)
(* E16 — Theorem 5.4: semicon-wILOG¬ and Mdisjoint                     *)
(* ================================================================== *)

let e16_wilog () =
  let t =
    Report.create
      ~title:
        "E16 / Thm 5.4: wILOG value invention — fragments and Mdisjoint"
      ~columns:
        [ "program"; "weakly safe"; "SP"; "semicon"; "Mdisjoint check" ]
  in
  let bounds = { Checker.dom_size = 3; fresh = 2; max_base = 3; max_ext = 2 } in
  let row name src query =
    let p = Datalog.Adom.augment (Datalog.Parser.parse_program src) in
    let safe = Datalog.Ilog.is_weakly_safe ~outputs:[ "O" ] p in
    let sp = Datalog.Ilog.is_sp_wilog p in
    let semicon = Datalog.Ilog.is_semi_connected_wilog p in
    let verdict =
      match query with
      | None -> "n/a (rejected)"
      | Some q ->
        verdict_cell
          (Checker.check_exhaustive ~bounds Classes.Disjoint q)
          ~expect_violation:false
    in
    Report.add_row t
      [
        name;
        Report.cell_bool safe;
        Report.cell_bool sp;
        Report.cell_bool semicon;
        verdict;
      ]
  in
  row "tagged-edges (SP-wILOG)" Wilog_zoo.tagged_edges
    (Some Wilog_zoo.tagged_edges_query);
  row "sinks-of-sources (semicon-wILOG)" Wilog_zoo.sinks_of_sources
    (Some Wilog_zoo.sinks_of_sources_query);
  row "unsafe-leak" Wilog_zoo.unsafe_leak None;
  Report.add_note t
    "semicon-wILOG programs stay in Mdisjoint (Thm 5.4, easy direction); \
     the unsafe program is rejected statically by the weak-safety closure";
  Report.print t

(* ================================================================== *)
(* E14 — cost of the three strategies (the paper's Sec 4.3 discussion) *)
(* ================================================================== *)

let e14_costs () =
  let t =
    Report.create
      ~title:"E14 / Sec 4.3: cost of the naive evaluation strategies"
      ~columns:
        [ "strategy"; "query"; "nodes"; "messages"; "transitions"; "rounds" ]
  in
  let sizes = if quick then [ 2; 4 ] else [ 2; 4; 8 ] in
  let run name strategy query input dg n =
    let network =
      Distributed.network_of_ints (List.init n (fun i -> 500 + i))
    in
    let policy =
      if dg then Network.Policy.hash_value query.Query.input network
      else Network.Policy.hash_fact query.Query.input network
    in
    let r =
      Network.Run.run ~variant:Network.Config.policy_aware ~policy
        ~transducer:strategy ~input Network.Run.Round_robin
    in
    Report.add_row t
      [
        name;
        query.Query.name;
        string_of_int n;
        string_of_int r.Network.Run.messages_sent;
        string_of_int r.Network.Run.transitions;
        string_of_int r.Network.Run.rounds;
      ]
  in
  let edges = Graph_gen.erdos_renyi ~seed:9 ~nodes:6 ~edges:8 in
  let game = Graph_gen.game ~seed:9 ~nodes:6 ~edges:8 in
  List.iter
    (fun n ->
      run "broadcast" (Strategies.Broadcast.transducer Zoo.tc) Zoo.tc edges
        false n;
      run "absence"
        (Strategies.Absence.transducer comp_edges)
        comp_edges edges false n;
      run "domain-request"
        (Strategies.Domain_request.transducer Zoo.winmove)
        Zoo.winmove game true n)
    sizes;
  Report.add_note t
    "same input per strategy; messages grow with node count — the \
     inefficiency the paper's conclusion points at";
  Report.print t

(* ================================================================== *)
(* E17 — ablation: rebroadcast vs send-once (the paper's future work)  *)
(* ================================================================== *)

let e17_delta_ablation () =
  let t =
    Report.create
      ~title:"E17 / ablation: naive rebroadcast vs send-once delta (M strategy)"
      ~columns:[ "variant"; "nodes"; "messages"; "correct" ]
  in
  let input = Graph_gen.erdos_renyi ~seed:21 ~nodes:8 ~edges:12 in
  let expected = Query.apply Zoo.tc input in
  let sizes = if quick then [ 2; 4 ] else [ 2; 4; 8 ] in
  List.iter
    (fun n ->
      let network =
        Distributed.network_of_ints (List.init n (fun i -> 700 + i))
      in
      let policy = Network.Policy.hash_fact Graph_gen.schema network in
      let run name transducer =
        let r =
          Network.Run.run ~variant:Network.Config.policy_aware ~policy
            ~transducer ~input Network.Run.Round_robin
        in
        Report.add_row t
          [
            name;
            string_of_int n;
            string_of_int r.Network.Run.messages_sent;
            Report.cell_bool (Instance.equal r.Network.Run.outputs expected);
          ]
      in
      run "broadcast (naive)" (Strategies.Broadcast.transducer Zoo.tc);
      run "broadcast-delta" (Strategies.Broadcast_delta.transducer Zoo.tc))
    sizes;
  Report.add_note t
    "delta sends each fact once per holder instead of once per transition \
     — same outputs, strictly fewer messages";
  Report.print t

(* ================================================================== *)
(* E22 — the punchline: strategy x query-level matrix                  *)
(* ================================================================== *)

let e22_matrix () =
  let t =
    Report.create
      ~title:
        "E22 / the refined CALM theorem as a matrix: which strategy computes \
         which query"
      ~columns:
        [ "query (its class)"; "broadcast (F0)"; "absence (F1)";
          "domain-request (F2)" ]
  in
  let game = Instance.of_strings [ "Move(1,2)"; "Move(2,3)" ] in
  let edges = Graph_gen.of_edges [ (1, 2); (2, 3); (5, 1) ] in
  let cell strategy query input dg =
    let policies =
      Network.Netquery.default_policies ~domain_guided_only:dg
        query.Query.input net2
    in
    let verdict =
      Network.Netquery.check ~schedulers ~policies
        ~variant:Network.Config.policy_aware ~transducer:strategy ~query
        ~input net2
    in
    if Network.Netquery.consistent verdict then "computes"
    else
      Printf.sprintf "WRONG (%d/%d runs)"
        (List.length verdict.Network.Netquery.mismatches)
        (List.length verdict.Network.Netquery.runs)
  in
  let row name query input =
    (* Every strategy needs its level's policy restriction to even have a
       chance; domain-request is only defined under domain guidance. *)
    Report.add_row t
      [
        name;
        cell (Strategies.Broadcast.transducer query) query input false;
        cell (Strategies.Absence.transducer query) query input false;
        cell (Strategies.Domain_request.transducer query) query input true;
      ]
  in
  row "TC (M)" Zoo.tc edges;
  row "comp-edges (Mdistinct)" comp_edges edges;
  (* The absence/win-move cell needs the scripted adversarial schedule —
     random sampling can miss the unsound interleaving. *)
  Report.add_row t
    [
      "win-move (Mdisjoint)";
      cell (Strategies.Broadcast.transducer Zoo.winmove) Zoo.winmove game false;
      (match Scripted.absence_winmove_wrong_output () with
      | Some f -> Printf.sprintf "WRONG (%s, scripted)" (Fact.to_string f)
      | None ->
        cell (Strategies.Absence.transducer Zoo.winmove) Zoo.winmove game
          false);
      cell (Strategies.Domain_request.transducer Zoo.winmove) Zoo.winmove game
        true;
    ];
  Report.add_note t
    "lower-left of the diagonal fails, diagonal and upper-right compute: \
     exactly the refined CALM theorem";
  Report.print t

(* ================================================================== *)
(* E19 — exhaustive verification (bounded model checking)              *)
(* ================================================================== *)

let e19_model_checking () =
  let t =
    Report.create
      ~title:
        "E19 / model checking: every message order, exhaustively (tiny inputs)"
      ~columns:[ "strategy"; "query"; "verdict" ]
  in
  let parity =
    Network.Policy.make ~name:"parity" Graph_gen.schema net2 (fun f ->
        match Fact.arg f 0 with
        | Value.Int a when a mod 2 = 1 -> [ Value.Int 101 ]
        | _ -> [ Value.Int 102 ])
  in
  let row name strategy query input variant policy =
    let verdict =
      Network.Explore.check ~max_configs:60_000 ~variant ~policy
        ~transducer:strategy ~query ~input ()
    in
    Report.add_row t
      [ name; query.Query.name; Network.Explore.verdict_to_string verdict ]
  in
  let two_edges = Graph_gen.of_edges [ (1, 2); (2, 3) ] in
  let crossed = Graph_gen.of_edges [ (1, 2); (2, 1) ] in
  row "broadcast" (Strategies.Broadcast.transducer Zoo.tc) Zoo.tc two_edges
    Network.Config.oblivious parity;
  row "broadcast"
    (Strategies.Broadcast.transducer comp_edges)
    comp_edges crossed Network.Config.policy_aware parity;
  (* Keep the value universe tiny for the absence strategy: its messages
     range over all candidate facts on adom ∪ N, so let the node ids
     coincide with the data values. *)
  let tiny_net = Distributed.network_of_ints [ 1; 2 ] in
  let parity_tiny =
    Network.Policy.make ~name:"parity" Graph_gen.schema tiny_net (fun f ->
        match Fact.arg f 0 with
        | Value.Int a when a mod 2 = 1 -> [ Value.Int 1 ]
        | _ -> [ Value.Int 2 ])
  in
  row "absence"
    (Strategies.Absence.transducer comp_edges)
    comp_edges
    (Graph_gen.of_edges [ (1, 2) ])
    Network.Config.policy_aware parity_tiny;
  let one_move = Instance.of_strings [ "Move(5,6)" ] in
  row "domain-request"
    (Strategies.Domain_request.transducer Zoo.winmove)
    Zoo.winmove one_move Network.Config.policy_aware
    (Network.Policy.hash_value Zoo.winmove.Query.input net2);
  Report.add_note t
    "exhaustive over buffer-support-abstracted configurations with \
     heartbeat/full/singleton deliveries; 'wrong output' rows reproduce the \
     hierarchy separations with certainty rather than by sampling";
  Report.print t

(* ================================================================== *)
(* E23 — multicore: sequential vs parallel wall-clock on the hot paths *)
(* ================================================================== *)

let e23_parallel_speedup () =
  let t =
    Report.create
      ~title:
        (Printf.sprintf
           "E23 / multicore: wall-clock, --jobs 1 vs --jobs %d (runtime \
            recommends %d domain%s)"
           jobs
           (Parallel.Pool.default_jobs ())
           (if Parallel.Pool.default_jobs () = 1 then "" else "s"))
      ~columns:[ "workload"; "seq (s)"; "par (s)"; "speedup"; "agree" ]
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let row name ~seq ~par ~agree =
    let r1, t1 = time seq in
    let r2, t2 = time par in
    Report.add_row t
      [
        name;
        Printf.sprintf "%.3f" t1;
        Printf.sprintf "%.3f" t2;
        Printf.sprintf "%.2fx" (t1 /. t2);
        Report.cell_bool (agree r1 r2);
      ]
  in
  (* E19 workload: the domain-request model check explores the largest
     state space of the suite (11 601 configurations). *)
  let one_move = Instance.of_strings [ "Move(5,6)" ] in
  let explore ?jobs () =
    Network.Explore.check ~max_configs:60_000 ?jobs
      ~variant:Network.Config.policy_aware
      ~policy:(Network.Policy.hash_value Zoo.winmove.Query.input net2)
      ~transducer:(Strategies.Domain_request.transducer Zoo.winmove)
      ~query:Zoo.winmove ~input:one_move ()
  in
  row "E19: domain-request/win-move model check"
    ~seq:(fun () -> explore ())
    ~par:(fun () -> explore ~jobs ())
    ~agree:(fun a b ->
      Network.Explore.verdict_to_string a = Network.Explore.verdict_to_string b);
  (* E21 workload: the bounded membership ladder of comp-TC. *)
  let ladder ?jobs () =
    Checker.ladder
      ~bounds:{ Checker.dom_size = 3; fresh = 2; max_base = 4; max_ext = 1 }
      ?jobs Classes.Distinct ~max_i:3 Zoo.comp_tc
  in
  row "E21: comp-TC Mdistinct ladder (i <= 3)"
    ~seq:(fun () -> ladder ())
    ~par:(fun () -> ladder ~jobs ())
    ~agree:(fun a b ->
      List.for_all2 (fun x y -> violated x = violated y) a b);
  (* Sweep workload: the full policy x scheduler grid of E7's absence
     strategy, cells fanned across the pool. *)
  let sweep ?jobs () =
    let input = Graph_gen.erdos_renyi ~seed:5 ~nodes:6 ~edges:9 in
    Network.Netquery.check ~schedulers ?jobs
      ~variant:Network.Config.policy_aware
      ~transducer:(Strategies.Absence.transducer comp_edges)
      ~query:comp_edges ~input net2
  in
  row "E7: absence/comp-edges policy x scheduler sweep"
    ~seq:(fun () -> sweep ())
    ~par:(fun () -> sweep ~jobs ())
    ~agree:(fun a b ->
      Network.Netquery.consistent a = Network.Netquery.consistent b
      && List.map fst a.Network.Netquery.runs
         = List.map fst b.Network.Netquery.runs);
  Report.add_note t
    "same verdicts by construction (first-in-enumeration-order selection); \
     speedup needs physical cores — on a 1-core host expect ~1.0x";
  Report.print t

(* ================================================================== *)
(* E24 — indexed joins + cross-probe cache vs the seed engine          *)
(* ================================================================== *)

let e24_engine_ablation () =
  let t =
    Report.create
      ~title:
        "E24 / ablation: indexed joins + cross-probe cache vs the seed \
         engine (same verdicts, same certificates)"
      ~columns:[ "workload"; "seed (s)"; "optimized (s)"; "speedup"; "agree" ]
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let row name ~seed ~opt ~agree =
    let r1, t1 = time seed in
    let r2, t2 = time opt in
    Report.add_row t
      [
        name;
        Printf.sprintf "%.3f" t1;
        Printf.sprintf "%.3f" t2;
        Printf.sprintf "%.2fx" (t1 /. t2);
        Report.cell_bool (agree r1 r2);
      ]
  in
  (* The seed route through a scan: no witness fast path, so every probe
     materializes Q(base ∪ ext), and no cross-probe cache, so Q(base) is
     recomputed per pair — the pre-optimization configuration. *)
  let strip q = { q with Query.witness = None } in
  let outcome_agree a b =
    match (a, b) with
    | Checker.No_violation { pairs = p }, Checker.No_violation { pairs = p' }
      ->
      p = p'
    | Checker.Violated v, Checker.Violated v' ->
      Instance.equal v.Classes.base v'.Classes.base
      && Instance.equal v.Classes.extension v'.Classes.extension
      && Fact.equal v.Classes.missing v'.Classes.missing
    | _ -> false
  in
  (* E1 workload: the Figure-1 hierarchy scans at the E1 bounds. *)
  let bounds =
    {
      Checker.dom_size = 3;
      fresh = 3;
      max_base = 3;
      max_ext = (if quick then 2 else 3);
    }
  in
  let scan_row name q kind =
    row name
      ~seed:(fun () ->
        Checker.check_exhaustive ~bounds ~cache:false kind (strip q))
      ~opt:(fun () -> Checker.check_exhaustive ~bounds ~cache:true kind q)
      ~agree:outcome_agree
  in
  scan_row "E1: comp-TC Mdisjoint scan" Zoo.comp_tc Classes.Disjoint;
  scan_row "E1: win-move Mdisjoint scan" Zoo.winmove Classes.Disjoint;
  scan_row "E1: triangles-2-disjoint scan" Zoo.triangles_unless_two_disjoint
    Classes.Disjoint;
  (* E21 workload: the bounded-ladder matrix for comp-TC. *)
  row "E21: comp-TC Mdistinct ladder (i <= 3)"
    ~seed:(fun () ->
      Checker.ladder ~bounds ~cache:false Classes.Distinct ~max_i:3
        (strip Zoo.comp_tc))
    ~opt:(fun () ->
      Checker.ladder ~bounds ~cache:true Classes.Distinct ~max_i:3 Zoo.comp_tc)
    ~agree:(List.for_all2 outcome_agree);
  (* E15 workload: the Datalog fixpoint itself — the frozen seed
     nested-loop evaluator against the indexed engine. *)
  let tc_rules = Datalog.Parser.parse_program Zoo.tc_program in
  let graph = Graph_gen.erdos_renyi ~seed:4 ~nodes:40 ~edges:90 in
  row "E15: semi-naive TC (40v/90e)"
    ~seed:(fun () -> Datalog.Refeval.seminaive tc_rules graph)
    ~opt:(fun () -> Datalog.Eval.seminaive tc_rules graph)
    ~agree:Instance.equal;
  Report.add_note t
    "seed = witness-free probes, Q(base) per pair, nested-loop joins; \
     optimized = staged witnesses + per-base cache + indexed joins. \
     Verdicts, pair tallies and certificates are equal by construction \
     (the agree column re-checks it); eval.index_hits and \
     monotone.cache_hits land in this experiment's stable metrics.";
  Report.print t

(* ================================================================== *)
(* E25 — empirical coordination: heard-from-all cuts vs static claims  *)
(* ================================================================== *)

let e25_empirical_coordination () =
  let t =
    Report.create
      ~title:
        "E25 / empirical coordination: heard-from-all-nodes cuts in causal \
         cones vs the static CALM placement"
      ~columns:[ "query"; "static"; "observed"; "free cells"; "verdict" ]
  in
  let entries = Empirical.zoo ~jobs () in
  List.iter
    (fun (e : Empirical.entry) ->
      let free_cells =
        List.filter
          (fun (v : Empirical.policy_verdict) ->
            v.Empirical.correct && v.Empirical.quiesced
            && not v.Empirical.coordinated)
          e.Empirical.runs
      in
      Report.add_row t
        [
          Printf.sprintf "%s (%s)" e.Empirical.name
            (Hierarchy.to_string e.Empirical.level);
          (if e.Empirical.static_free then "free" else "coordinated");
          (if e.Empirical.observed_free then "free" else "coordinated");
          Printf.sprintf "%d/%d"
            (List.length free_cells)
            (List.length e.Empirical.runs);
          (if e.Empirical.agree then "AGREE" else "DISAGREE  <<< UNEXPECTED");
        ])
    entries;
  (match
     List.find_opt (fun (e : Empirical.entry) -> e.Empirical.name = "winmove")
       entries
   with
  | None -> ()
  | Some e ->
    Report.add_note t
      (Printf.sprintf "win-move per cell: %s"
         (String.concat "; "
            (List.map
               (fun (v : Empirical.policy_verdict) ->
                 Printf.sprintf "%s %s" v.Empirical.label
                   (if v.Empirical.coordinated then "coordinated" else "free"))
               e.Empirical.runs))));
  Report.add_note t
    "observed free = some correct quiescent run in which no output fact's \
     causal cone touches every node (Definition 3's existential over \
     policies/runs); Beyond queries run the coordinated barrier strategy, \
     so every cone spans the network — win-move flips per placement: free \
     under replicate-all/single, coordinated under the scatter policy";
  Report.print t

(* ================================================================== *)
(* E26 — fault-injection overhead: Faulty wrapper vs base schedulers   *)
(* ================================================================== *)

let e26_fault_overhead () =
  let t =
    Report.create
      ~title:
        "E26 / fault battery: Faulty-wrapper overhead on the E1/E2-class \
         runs (tc, broadcast strategy)"
      ~columns:
        [
          "scheduler"; "nodes"; "base ms"; "faulty ms"; "overhead";
          "messages"; "dup/drop/crash"; "correct";
        ]
  in
  let query = Zoo.tc in
  let transducer = Strategies.Broadcast.transducer query in
  let input = Graph_gen.erdos_renyi ~seed:26 ~nodes:8 ~edges:12 in
  let expected = Query.apply query input in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, (Unix.gettimeofday () -. t0) *. 1000.)
  in
  let counter name =
    match
      List.find_opt
        (fun (r : Observe.Metrics.row) -> r.Observe.Metrics.name = name)
        (Observe.Metrics.snapshot ~stable_only:true Observe.Metrics.root)
    with
    | Some r -> r.Observe.Metrics.count
    | None -> 0
  in
  let sizes = if quick then [ 3 ] else [ 3; 6 ] in
  List.iter
    (fun n ->
      let ids = List.init n (fun i -> 1 + i) in
      let network = Distributed.network_of_ints ids in
      let policy = Network.Policy.hash_fact query.Query.input network in
      let half = n / 2 in
      let plan =
        {
          Network.Fault.seed = 26;
          dup_prob = 0.4;
          dup_copies = 3;
          loss_prob = 0.25;
          loss_delay = 2;
          horizon = 4;
          crashes = [ (Value.int 2, 2) ];
          partitions =
            [
              {
                Network.Fault.from_round = 1;
                rounds = 2;
                groups =
                  [
                    List.map Value.int (List.filteri (fun i _ -> i < half) ids);
                    List.map Value.int
                      (List.filteri (fun i _ -> i >= half) ids);
                  ];
              };
            ];
        }
      in
      List.iter
        (fun (sname, base) ->
          let go sched () =
            Network.Run.run ~variant:Network.Config.oblivious ~policy
              ~transducer ~input sched
          in
          let _, base_ms = time (go base) in
          let d0 = counter "network.dup_deliveries" in
          let l0 = counter "network.dropped" in
          let c0 = counter "network.crashes" in
          let rf, faulty_ms =
            time (go (Network.Run.Faulty { base; plan }))
          in
          Report.add_row t
            [
              sname;
              string_of_int n;
              Printf.sprintf "%.1f" base_ms;
              Printf.sprintf "%.1f" faulty_ms;
              Printf.sprintf "%.2fx" (faulty_ms /. Float.max base_ms 0.01);
              string_of_int rf.Network.Run.messages_sent;
              Printf.sprintf "%d/%d/%d"
                (counter "network.dup_deliveries" - d0)
                (counter "network.dropped" - l0)
                (counter "network.crashes" - c0);
              Report.cell_bool
                (rf.Network.Run.quiesced
                && Instance.equal rf.Network.Run.outputs expected);
            ])
        [
          ("round_robin", Network.Run.Round_robin);
          ("random", Network.Run.Random { seed = 1; steps = 40 });
          ("stingy", Network.Run.Stingy { seed = 2; steps = 60 });
          ("adversarial", Network.Run.Adversarial { steps = 40 });
        ])
    sizes;
  Report.add_note t
    "every faulty run still quiesces with outputs = Q(I); the overhead \
     column is wall-clock faulty/base (dominated by extra deliveries: \
     duplicated copies, retransmissions, post-crash redelivery and \
     partition backlogs); network.* counters land in this experiment's \
     stable metrics for the bench-diff guard";
  Report.print t

(* ================================================================== *)
(* E27 — scan-time attribution: where the E1-class scans spend it      *)
(* ================================================================== *)

let e27_scan_attribution () =
  let t =
    Report.create
      ~title:
        "E27 / attribution: top-5 spans by self time on E1-class scans \
         (the calm profile machinery; scan → base → stage/probe → rule)"
      ~columns:[ "workload"; "span"; "count"; "self ms"; "share"; "annotations" ]
  in
  let bounds =
    {
      Checker.dom_size = 3;
      fresh = 3;
      max_base = 3;
      max_ext = (if quick then 2 else 3);
    }
  in
  let workload name q kind =
    (* One private collector per workload: the span paths are the same
       for every scan, so sharing a collector would aggregate the
       workloads into one indistinguishable tree. *)
    let c = Observe.Metrics.create () in
    Observe.Metrics.with_current c (fun () ->
        Observe.Profile.enable ();
        Fun.protect ~finally:Observe.Profile.disable (fun () ->
            ignore (Checker.check_exhaustive ~bounds kind q)));
    let roots = Observe.Profile.spans c in
    let scan_total =
      List.fold_left (fun acc n -> acc +. n.Observe.Profile.total_s) 0. roots
    in
    let top5 =
      Observe.Profile.flatten roots
      |> List.sort (fun a b ->
             compare b.Observe.Profile.self_s a.Observe.Profile.self_s)
      |> List.filteri (fun i _ -> i < 5)
    in
    List.iter
      (fun (n : Observe.Profile.node) ->
        Report.add_row t
          [
            name;
            String.concat "/" n.Observe.Profile.path;
            string_of_int n.Observe.Profile.count;
            Printf.sprintf "%.2f" (n.Observe.Profile.self_s *. 1e3);
            Printf.sprintf "%.1f%%"
              (100. *. n.Observe.Profile.self_s /. Float.max scan_total 1e-9);
            String.concat " "
              (List.map
                 (fun (k, v) -> Printf.sprintf "%s=%d" k v)
                 n.Observe.Profile.annots);
          ])
      top5
  in
  workload "E1: comp-TC Mdisjoint scan" Zoo.comp_tc Classes.Disjoint;
  workload "E1: win-move Mdisjoint scan" Zoo.winmove Classes.Disjoint;
  workload "E1: TC M scan" Zoo.tc Classes.Plain;
  workload "E28: comp-TC program Mdisjoint scan (ivm)"
    (Datalog.Program.query ~name:"comp-tc-prog"
       (Datalog.Program.parse Zoo.comp_tc_program))
    Classes.Disjoint;
  Report.add_note t
    "share = span self time / total scan wall. The three zoo queries \
     carry staged witnesses, so probe dispatch plus the kernel stages \
     (intern, dfs, wins) dominate; the witness/cache_hit/empty_before \
     annotations tally which probe fast path answered. The \
     program-backed workload routes through incremental maintenance \
     instead: its probes sit in ivm.apply spans (fallback recomputation \
     under ivm.rederive), nested under scan/base/probe like every other \
     route. Span counts and annotations are jobs-invariant; timings are \
     schedule-dependent.";
  Report.print t

(* ================================================================== *)
(* Bechamel timing benches (E14 wall-clock + E15 engine)               *)
(* ================================================================== *)

(* ================================================================== *)
(* E28 — ablation: incremental maintenance vs cache vs from-scratch   *)
(* ================================================================== *)

let e28_ivm_ablation () =
  let t =
    Report.create
      ~title:
        "E28 / ablation: delta-driven incremental maintenance vs \
         cross-probe cache vs from-scratch (engine-backed queries, no \
         witnesses; same verdicts, same certificates)"
      ~columns:
        [
          "workload";
          "scratch (s)";
          "cache (s)";
          "ivm (s)";
          "ivm speedup";
          "agree";
        ]
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let outcome_agree a b =
    match (a, b) with
    | Checker.No_violation { pairs = p }, Checker.No_violation { pairs = p' }
      ->
      p = p'
    | Checker.Violated v, Checker.Violated v' ->
      Instance.equal v.Classes.base v'.Classes.base
      && Instance.equal v.Classes.extension v'.Classes.extension
      && Fact.equal v.Classes.missing v'.Classes.missing
    | _ -> false
  in
  let bounds =
    {
      Checker.dom_size = 3;
      fresh = 3;
      max_base = 3;
      max_ext = (if quick then 2 else 3);
    }
  in
  let row name q kind =
    let scan ~cache ~ivm () =
      Checker.check_exhaustive ~bounds ~cache ~ivm kind q
    in
    let r0, t0 = time (scan ~cache:false ~ivm:false) in
    let r1, t1 = time (scan ~cache:true ~ivm:false) in
    let r2, t2 = time (scan ~cache:true ~ivm:true) in
    Report.add_row t
      [
        name;
        Printf.sprintf "%.3f" t0;
        Printf.sprintf "%.3f" t1;
        Printf.sprintf "%.3f" t2;
        Printf.sprintf "%.2fx" (t1 /. t2);
        Report.cell_bool (outcome_agree r0 r1 && outcome_agree r1 r2);
      ]
  in
  let prog name ?outputs src =
    Datalog.Program.query ~name (Datalog.Program.parse ?outputs src)
  in
  row "TC program, M scan"
    (prog "tc-prog" ~outputs:[ "T" ] Zoo.tc_program)
    Classes.Plain;
  row "comp-TC program, Mdisjoint scan"
    (prog "comp-tc-prog" Zoo.comp_tc_program)
    Classes.Disjoint;
  row "P1 program, Mdisjoint scan"
    (prog "p1-prog" Zoo.example_51_p1)
    Classes.Disjoint;
  Report.add_note t
    "scratch = Q(base u ext) evaluated per pair (cache and ivm off); \
     cache = Q(base) once per base, probes still evaluate; ivm = probes \
     answered by delta-seeded maintenance against a per-base \
     materialization (Datalog.Ivm). ivm speedup is cache/ivm: the gain \
     attributable to incremental answering alone.";
  Report.print t

(* ================================================================== *)
(* E29 — telemetry overhead: series recorder off vs on                 *)
(* ================================================================== *)

let e29_telemetry_overhead () =
  let t =
    Report.create
      ~title:
        "E29 / telemetry overhead: E1-class scans with the series \
         recorder off (default: one atomic load per sample site) vs on \
         (--series-out / --live)"
      ~columns:
        [ "workload"; "off ms"; "on ms"; "overhead"; "series"; "points" ]
  in
  let repeats = if quick then 3 else 5 in
  let median_ms f =
    let walls =
      List.init repeats (fun _ ->
          let t0 = Unix.gettimeofday () in
          ignore (f ());
          (Unix.gettimeofday () -. t0) *. 1000.)
    in
    List.nth (List.sort compare walls) (repeats / 2)
  in
  let bounds =
    {
      Checker.dom_size = 3;
      fresh = 2;
      max_base = 3;
      max_ext = (if quick then 2 else 3);
    }
  in
  List.iter
    (fun (name, q, kind) ->
      let scan () = Checker.check_exhaustive ~bounds kind q in
      let off_ms = median_ms scan in
      Observe.Series.reset Observe.Series.root;
      Observe.Series.enable ();
      let on_ms = median_ms scan in
      Observe.Series.disable ();
      let rows = Observe.Series.rows Observe.Series.root in
      let points =
        List.fold_left
          (fun acc (r : Observe.Series.row) ->
            acc + List.length r.Observe.Series.points)
          0 rows
      in
      Report.add_row t
        [
          name;
          Printf.sprintf "%.1f" off_ms;
          Printf.sprintf "%.1f" on_ms;
          (if off_ms < 0.5 then "-"
           else Printf.sprintf "%+.1f%%" ((on_ms /. off_ms -. 1.) *. 100.));
          string_of_int (List.length rows);
          string_of_int points;
        ];
      Observe.Series.reset Observe.Series.root)
    [
      ("tc, M scan (holds)", Zoo.tc, Classes.Plain);
      ("comp-tc, M scan (witness)", Zoo.comp_tc, Classes.Plain);
      ("q-star-2, Mdisjoint scan", Zoo.q_star 2, Classes.Disjoint);
    ];
  Report.add_note t
    "off = shipped default: every sample site is gated on one atomic \
     load, so the recorder costs nothing until --series-out or --live \
     arms it. on = recorder armed, per-base trajectories buffered and \
     merged (the last run's point totals are shown). Medians over \
     repeated runs; sub-millisecond rows are below timer resolution, so \
     their overhead is printed as '-'. The off column tracks the \
     E1-class walls of the committed trajectory (report --diff guards \
     them).";
  Report.print t

let bechamel_section () =
  let open Bechamel in
  print_endline "== Timing benches (bechamel; time per run via OLS) ==";
  let tc_rules = Datalog.Parser.parse_program Zoo.tc_program in
  let graph25 = Graph_gen.erdos_renyi ~seed:4 ~nodes:25 ~edges:45 in
  let graph12 = Graph_gen.erdos_renyi ~seed:4 ~nodes:12 ~edges:20 in
  let game20 = Graph_gen.game ~seed:4 ~nodes:20 ~edges:35 in
  let winmove_rules = Datalog.Parser.parse_program Zoo.winmove_program in
  let edges6 = Graph_gen.erdos_renyi ~seed:9 ~nodes:6 ~edges:8 in
  let game6 = Graph_gen.game ~seed:9 ~nodes:6 ~edges:8 in
  let net4 = Distributed.network_of_ints [ 501; 502; 503; 504 ] in
  let run_strategy strategy query input dg () =
    let policy =
      if dg then Network.Policy.hash_value query.Query.input net4
      else Network.Policy.hash_fact query.Query.input net4
    in
    ignore
      (Network.Run.run ~variant:Network.Config.policy_aware ~policy
         ~transducer:strategy ~input Network.Run.Round_robin)
  in
  let tests =
    [
      Test.make ~name:"E15: naive TC (25v/45e)"
        (Staged.stage (fun () -> ignore (Datalog.Eval.naive tc_rules graph25)));
      Test.make ~name:"E15: semi-naive TC (25v/45e)"
        (Staged.stage (fun () ->
             ignore (Datalog.Eval.seminaive tc_rules graph25)));
      Test.make ~name:"E15: semi-naive TC (12v/20e)"
        (Staged.stage (fun () ->
             ignore (Datalog.Eval.seminaive tc_rules graph12)));
      Test.make ~name:"E13: well-founded win-move (20v/35e)"
        (Staged.stage (fun () ->
             ignore (Datalog.Wellfounded.eval winmove_rules game20)));
      Test.make ~name:"E13: doubled-program win-move (20v/35e)"
        (Staged.stage (fun () ->
             ignore (Query.apply Zoo.winmove_doubled game20)));
      Test.make ~name:"E11: components (25v/45e)"
        (Staged.stage (fun () -> ignore (Component.components graph25)));
      (let squares =
         Datalog.Parser.parse_program
           "O(x,y,z,w) :- E(x,y), E(z,w), E(y,z), E(w,x)."
       in
       Test.make ~name:"E18: 4-cycles, source order"
         (Staged.stage (fun () -> ignore (Datalog.Eval.seminaive squares graph12))));
      (let squares =
         Datalog.Eval.optimize
           (Datalog.Parser.parse_program
              "O(x,y,z,w) :- E(x,y), E(z,w), E(y,z), E(w,x).")
       in
       Test.make ~name:"E18: 4-cycles, greedy join order"
         (Staged.stage (fun () -> ignore (Datalog.Eval.seminaive squares graph12))));
      (let squares =
         Datalog.Parser.parse_program
           "O(x,y,z,w) :- E(x,y), E(z,w), E(y,z), E(w,x)."
       in
       Test.make ~name:"E20: 4-cycles, hash join"
         (Staged.stage (fun () ->
              ignore (Datalog.Hashjoin.seminaive squares graph12))));
      Test.make ~name:"E20: semi-naive TC, hash join (25v/45e)"
        (Staged.stage (fun () ->
             ignore (Datalog.Hashjoin.seminaive tc_rules graph25)));
      Test.make ~name:"E14: broadcast/TC, 4 nodes"
        (Staged.stage
           (run_strategy (Strategies.Broadcast.transducer Zoo.tc) Zoo.tc
              edges6 false));
      Test.make ~name:"E14: absence/comp-edges, 4 nodes"
        (Staged.stage
           (run_strategy
              (Strategies.Absence.transducer comp_edges)
              comp_edges edges6 false));
      Test.make ~name:"E14: domain-request/win-move, 4 nodes"
        (Staged.stage
           (run_strategy
              (Strategies.Domain_request.transducer Zoo.winmove)
              Zoo.winmove game6 true));
    ]
  in
  let grouped = Test.make_grouped ~name:"calm" tests in
  let instance = Toolkit.Instance.monotonic_clock in
  let quota = if quick then 0.25 else 0.5 in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) () in
  let raw = Benchmark.all cfg [ instance ] grouped in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with Some (x :: _) -> x | _ -> nan
        in
        (name, ns) :: acc)
      results []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  List.iter
    (fun (name, ns) ->
      if ns >= 1e6 then
        Printf.printf "  %-50s %10.3f ms/run\n" name (ns /. 1e6)
      else Printf.printf "  %-50s %10.1f ns/run\n" name ns)
    rows

(* ================================================================== *)

let () =
  Printf.printf
    "CALM hierarchy reproduction benches%s\n\
     paper: Ameloot, Ketsman, Neven, Zinn - PODS 2014\n\n"
    (if quick then " (--quick)" else "");
  print_string (Figure2.render ());
  print_newline ();
  experiment "E1" e1_fig1_hierarchy;
  experiment "E2" e2_bounded_collapse;
  experiment "E3" e3_clique_ladder;
  experiment "E4" e4_star_ladder;
  experiment "E5" e5_duplicate;
  experiment "E21" e21_bounded_ladders;
  experiment "E6" e6_lemma32;
  experiment "E7" e7_policy_aware;
  experiment "E8" e8_domain_guided;
  experiment "E9" e9_all_free;
  experiment "E10" e10_strictness;
  experiment "E22" e22_matrix;
  experiment "E11" e11_components;
  experiment "E12" e12_semicon;
  experiment "E13" e13_winmove_doubled;
  experiment "E16" e16_wilog;
  experiment "E14" e14_costs;
  experiment "E17" e17_delta_ablation;
  experiment "E19" e19_model_checking;
  experiment "E23" e23_parallel_speedup;
  experiment "E24" e24_engine_ablation;
  experiment "E25" e25_empirical_coordination;
  experiment "E26" e26_fault_overhead;
  experiment "E27" e27_scan_attribution;
  experiment "E28" e28_ivm_ablation;
  experiment "E29" e29_telemetry_overhead;
  experiment "bechamel" bechamel_section;
  (match json_out with Some file -> emit_json file | None -> ());
  print_endline "\nall experiment tables printed."
