(** Monotonicity classes of Section 3 of the paper and bounded decision
    procedures for them. *)

module Classes = Classes
module Enumerate = Enumerate
module Checker = Checker
module Relate = Relate
module Shrink = Shrink
