(** Preservation classes and their correspondence with the monotonicity
    classes (Section 3.2, Lemma 3.2: [H ⊊ Hinj = M ⊊ E = Mdistinct]). *)

open Relational

val extension_pair_violation :
  Query.t -> whole:Instance.t -> part:Instance.t -> Fact.t option
(** Preservation under extensions for one pair: when [part] is an induced
    subinstance of [whole], a fact of [Q(part) \ Q(whole)] if any. [None]
    when [part] is not induced in [whole]. *)

val check_extensions_exhaustive :
  ?bounds:Checker.bounds -> Query.t -> Checker.outcome
(** Tests preservation under extensions over all instances within bounds
    and all induced subinstances thereof (induced subinstances are in
    bijection with subsets of the active domain). Violations are reported
    in Mdistinct form: base = part, extension = whole \ part. *)

val induced_iff_distinct : whole:Instance.t -> part:Instance.t -> bool
(** The translation underlying [E = Mdistinct]: [part] is an induced
    subinstance of [whole] iff [whole \ part] is domain-distinct from
    [part] {b and} [part ⊆ whole]. Used as a tested lemma. *)

val hom_pair_violation :
  injective:bool -> Query.t -> Instance.t -> Instance.t ->
  (Fact.t * Homomorphism.mapping) option
(** Preservation under (injective) homomorphisms for one pair of
    instances: searches all (injective) homomorphisms [h : I → J] for one
    with [h(Q(I)) ⊄ Q(J)]... more precisely returns a fact [R(d̄) ∈ Q(I)]
    with [R(h(d̄)) ∉ Q(J)], together with the homomorphism. *)

val check_hom_exhaustive :
  ?bounds:Checker.bounds -> injective:bool -> Query.t -> Checker.outcome
(** Tests preservation under (injective) homomorphisms over pairs of
    instances within bounds. Violations are reported with base = source
    instance, extension = target instance, missing = the unpreserved
    output fact. *)
