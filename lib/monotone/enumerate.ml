open Relational

let value_pool n = List.init n (fun i -> Value.Int (i + 1))
let fresh_pool n = List.init n (fun i -> Value.Int (9_000_000 + i))

(* Subsets in nondecreasing size order so that small counterexamples are
   found first. *)
let subsets_up_to items k =
  let items = Array.of_list items in
  let n = Array.length items in
  let rec choose size start acc () =
    if size = 0 then Seq.Cons (List.rev acc, fun () -> Seq.Nil)
    else
      let rec from i () =
        if i > n - size then Seq.Nil
        else
          Seq.append
            (choose (size - 1) (i + 1) (items.(i) :: acc))
            (from (i + 1))
            ()
      in
      from start ()
  in
  let rec sizes s () =
    if s > min k n then Seq.Nil
    else Seq.append (choose s 0 []) (sizes (s + 1)) ()
  in
  sizes 0

let instances schema ~dom ~max_facts =
  let facts =
    Schema.all_facts schema (Value.Set.of_list dom)
    |> List.sort Fact.compare
  in
  Seq.map Instance.of_list (subsets_up_to facts max_facts)

(* Extensions are constructed fact-by-fact from a sorted candidate list,
   so each one IS a delta against the base: hand the scan the raw
   (sorted, duplicate-free) fact list and a lazy instance view instead
   of materializing a set it would immediately re-diff. *)
let extension_deltas kind ~base ~schema ~fresh ~max_size =
  let base_dom = Instance.adom base in
  let pool =
    match (kind : Classes.kind) with
    | Disjoint -> Value.Set.of_list fresh
    | Plain | Distinct ->
      Value.Set.union base_dom (Value.Set.of_list fresh)
  in
  let candidates =
    Schema.all_facts schema pool
    |> List.filter (fun f ->
           (not (Instance.mem f base))
           &&
           match kind with
           | Classes.Plain -> true
           | Classes.Distinct ->
             not (Value.Set.subset (Fact.adom f) base_dom)
           | Classes.Disjoint ->
             Value.Set.is_empty (Value.Set.inter (Fact.adom f) base_dom))
    |> List.sort Fact.compare
  in
  subsets_up_to candidates max_size
  |> Seq.filter (fun l -> l <> [])
  |> Seq.map Query.delta_of_facts

let extensions kind ~base ~schema ~fresh ~max_size =
  extension_deltas kind ~base ~schema ~fresh ~max_size
  |> Seq.map Query.delta_instance
