open Relational

let still_violates q (v : Classes.violation) ~base ~extension =
  Classes.check_pair v.kind q ~base ~extension

(* One pass of greedy removals over a component (base or extension). *)
let shrink_part q v ~get ~set =
  let rec go v =
    let facts = Instance.to_list (get v) in
    let improved =
      List.find_map
        (fun f ->
          let candidate = set v (Instance.remove f (get v)) in
          match
            still_violates q v ~base:candidate.Classes.base
              ~extension:candidate.Classes.extension
          with
          | Some v' ->
            Some
              {
                v' with
                Classes.kind = v.Classes.kind;
                bound = v.Classes.bound;
              }
          | None -> None)
        facts
    in
    match improved with None -> v | Some v' -> go v'
  in
  go v

let shrink q v =
  Observe.Profile.span_rooted [ "shrink" ] @@ fun () ->
  let v =
    shrink_part q v
      ~get:(fun v -> v.Classes.base)
      ~set:(fun v base -> { v with Classes.base = base })
  in
  shrink_part q v
    ~get:(fun v -> v.Classes.extension)
    ~set:(fun v extension -> { v with Classes.extension = extension })

let is_minimal q v =
  let removable get set =
    List.exists
      (fun f ->
        let candidate = set (Instance.remove f (get ())) in
        still_violates q v ~base:candidate.Classes.base
          ~extension:candidate.Classes.extension
        <> None)
      (Instance.to_list (get ()))
  in
  (not
     (removable
        (fun () -> v.Classes.base)
        (fun base -> { v with Classes.base = base })))
  && not
       (removable
          (fun () -> v.Classes.extension)
          (fun extension -> { v with Classes.extension = extension }))
