open Relational

let is_induced ~whole ~part =
  Instance.subset part whole
  && Instance.equal part (Instance.induced whole (Instance.adom part))

let extension_pair_violation q ~whole ~part =
  if not (is_induced ~whole ~part) then None
  else
    let out_part = Query.apply q part in
    let out_whole = Query.apply q whole in
    Instance.to_list (Instance.diff out_part out_whole) |> function
    | [] -> None
    | f :: _ -> Some f

let check_extensions_exhaustive ?(bounds = Checker.default_bounds) q =
  let schema = q.Query.input in
  let dom =
    Enumerate.value_pool bounds.dom_size @ Enumerate.fresh_pool bounds.fresh
  in
  let count = ref 0 in
  let result = ref None in
  let wholes =
    Enumerate.instances schema ~dom ~max_facts:bounds.max_base
  in
  Seq.iter
    (fun whole ->
      if !result = None then
        let vals = Value.Set.elements (Instance.adom whole) in
        Enumerate.subsets_up_to vals (List.length vals)
        |> Seq.iter (fun sub ->
               if !result = None then begin
                 let part = Instance.induced whole (Value.Set.of_list sub) in
                 incr count;
                 match extension_pair_violation q ~whole ~part with
                 | None -> ()
                 | Some f ->
                   result :=
                     Some
                       {
                         Classes.kind = Classes.Distinct;
                         bound = None;
                         base = part;
                         extension = Instance.diff whole part;
                         missing = f;
                       }
               end))
    wholes;
  match !result with
  | Some v -> Checker.Violated v
  | None -> Checker.No_violation { pairs = !count }

let induced_iff_distinct ~whole ~part =
  let lhs = is_induced ~whole ~part in
  let rhs =
    Instance.subset part whole
    && Instance.is_domain_distinct_from (Instance.diff whole part) part
  in
  lhs = rhs

(* All mappings adom(i) → adom(j), filtered to (injective) homomorphisms. *)
let all_homs ~injective i j =
  let src = Value.Set.elements (Instance.adom i) in
  let tgt = Value.Set.elements (Instance.adom j) in
  let rec go acc = function
    | [] -> Seq.return acc
    | v :: rest ->
      List.to_seq tgt
      |> Seq.concat_map (fun w -> go (Value.Map.add v w acc) rest)
  in
  go Value.Map.empty src
  |> Seq.filter (fun h ->
         Homomorphism.is_homomorphism h i j
         && ((not injective) || Homomorphism.is_injective h))

let hom_pair_violation ~injective q i j =
  let out_i = Query.apply q i in
  let out_j = Query.apply q j in
  all_homs ~injective i j
  |> Seq.filter_map (fun h ->
         Instance.to_list out_i
         |> List.find_opt (fun f ->
                not (Instance.mem (Homomorphism.apply_fact h f) out_j))
         |> Option.map (fun f -> (f, h)))
  |> fun s -> Seq.uncons s |> Option.map fst

let check_hom_exhaustive ?(bounds = Checker.default_bounds) ~injective q =
  let schema = q.Query.input in
  let dom = Enumerate.value_pool bounds.dom_size in
  let dom2 =
    Enumerate.value_pool bounds.dom_size @ Enumerate.fresh_pool bounds.fresh
  in
  let count = ref 0 in
  let result = ref None in
  Enumerate.instances schema ~dom ~max_facts:bounds.max_base
  |> Seq.iter (fun i ->
         if !result = None then
           Enumerate.instances schema ~dom:dom2 ~max_facts:bounds.max_base
           |> Seq.iter (fun j ->
                  if !result = None then begin
                    incr count;
                    match hom_pair_violation ~injective q i j with
                    | None -> ()
                    | Some (f, _) ->
                      result :=
                        Some
                          {
                            Classes.kind = Classes.Plain;
                            bound = None;
                            base = i;
                            extension = j;
                            missing = f;
                          }
                  end))
  |> ignore;
  match !result with
  | Some v -> Checker.Violated v
  | None -> Checker.No_violation { pairs = !count }
