(** Bounded-exhaustive and randomized membership checking for the
    monotonicity classes.

    A [Violated] outcome is a certificate: the violating pair is concrete
    and recheckable. A [No_violation] outcome is evidence up to the bounds
    explored (membership is undecidable in general). For the paper's
    separating queries the violating pairs are small, so modest bounds
    decide the separations exactly. *)

open Relational

type outcome =
  | No_violation of { pairs : int }  (** number of admissible pairs tested *)
  | Violated of Classes.violation

val is_violation : outcome -> bool

type bounds = {
  dom_size : int;    (** values available to base instances *)
  fresh : int;       (** new values available to extensions *)
  max_base : int;    (** max facts in a base instance *)
  max_ext : int;     (** max facts in an extension; the [i] of [Mᵢ] *)
}

val default_bounds : bounds
(** [{ dom_size = 3; fresh = 2; max_base = 4; max_ext = 2 }]. *)

val check_exhaustive :
  ?bounds:bounds -> ?schema:Schema.t -> ?jobs:int -> ?cache:bool ->
  ?ivm:bool -> Classes.kind -> Query.t -> outcome
(** Tries every base over the (input) schema within bounds, and every
    admissible extension of it. [schema] defaults to the query's input
    schema. With [jobs > 1] the per-base groups of probes fan out across
    that many domains; the verdict — including the certificate and the
    pair count — is identical to the sequential one, because the search
    reports the first violation in enumeration order.

    The scan is grouped per base: [Q(base)] is evaluated once and every
    admissible extension of that base is probed against it ([cache],
    default [true]; when [Q(base)] is empty the extensions are counted
    but not evaluated at all, since an empty output cannot lose facts).
    [~cache:false] recomputes [Q(base)] per pair — same verdicts, same
    certificates, same [monotone.probes]/[pairs_scanned]; only
    [monotone.cache_hits] and wall-clock differ.

    [ivm] (default [true]) enables the incremental route: when the query
    carries a maintenance function ({!Relational.Query.route} is [Ivm]),
    each group materializes [Q(base)] once and answers every probe by a
    delta application instead of re-evaluating on [base ∪ extension].
    Verdicts, certificates, and the stable metric rows are byte-identical
    with the knob on or off; [monotone.ivm_hits] counts probes answered
    incrementally. *)

val check_on_bases :
  ?fresh:int -> ?max_ext:int -> ?jobs:int -> ?cache:bool -> ?ivm:bool ->
  Classes.kind -> Query.t -> Instance.t list -> outcome
(** Exhaustive extensions over user-supplied base instances — used when
    the interesting bases are known (e.g. the paper's counterexample
    constructions) and full enumeration would be too wide. *)

val random_instance :
  Random.State.t -> Schema.t -> dom:Value.t list -> max_facts:int ->
  Instance.t

val check_random :
  ?seed:int -> ?trials:int -> ?bounds:bounds -> ?schema:Schema.t ->
  ?jobs:int -> ?cache:bool -> ?ivm:bool -> Classes.kind -> Query.t ->
  outcome
(** Randomized pairs: random base, random admissible extension. The pair
    stream is drawn from the seeded RNG in enumeration order even under
    [jobs > 1], so the verdict does not depend on [jobs]. *)

val ladder :
  ?fresh:int -> ?bases:Instance.t list -> ?bounds:bounds -> ?jobs:int ->
  ?cache:bool -> ?ivm:bool -> Classes.kind -> max_i:int -> Query.t ->
  outcome list
(** The bounded profile [M¹ₖ, M²ₖ, ..., Mᵐᵃˣₖ] of a query (Figure 1's
    bounded ladders): element [i-1] checks the class with extensions of
    size at most [i], over the given bases ({!check_on_bases}) or
    exhaustively. By inclusion the outcomes are monotone: once violated at
    [i], violated for all [j ≥ i]. *)

type placement = {
  plain : outcome;
  distinct : outcome;
  disjoint : outcome;
}

val place :
  ?bounds:bounds -> ?schema:Schema.t -> ?jobs:int -> ?cache:bool ->
  ?ivm:bool -> Query.t -> placement
(** Runs {!check_exhaustive} for all three kinds. *)

val strongest : placement -> string
(** Human name of the strongest class with no violation found:
    "M" / "Mdistinct" / "Mdisjoint" / "C (non-monotone)" — using the
    inclusion chain M ⊆ Mdistinct ⊆ Mdisjoint. *)
