open Relational

type outcome =
  | No_violation of { pairs : int }
  | Violated of Classes.violation

let is_violation = function Violated _ -> true | No_violation _ -> false

type bounds = {
  dom_size : int;
  fresh : int;
  max_base : int;
  max_ext : int;
}

let default_bounds = { dom_size = 3; fresh = 2; max_base = 4; max_ext = 2 }

let scan kind q pairs =
  let count = ref 0 in
  let rec go s =
    match s () with
    | Seq.Nil -> No_violation { pairs = !count }
    | Seq.Cons ((base, extension), rest) -> (
      incr count;
      match Classes.check_pair kind q ~base ~extension with
      | Some v -> Violated v
      | None -> go rest)
  in
  go pairs

let check_exhaustive ?(bounds = default_bounds) ?schema kind q =
  let schema = Option.value schema ~default:q.Query.input in
  let dom = Enumerate.value_pool bounds.dom_size in
  let fresh = Enumerate.fresh_pool bounds.fresh in
  let pairs =
    Enumerate.instances schema ~dom ~max_facts:bounds.max_base
    |> Seq.concat_map (fun base ->
           Enumerate.extensions kind ~base ~schema ~fresh
             ~max_size:bounds.max_ext
           |> Seq.map (fun ext -> (base, ext)))
  in
  scan kind q pairs

let check_on_bases ?(fresh = 2) ?(max_ext = 2) kind q bases =
  let fresh = Enumerate.fresh_pool fresh in
  let pairs =
    List.to_seq bases
    |> Seq.concat_map (fun base ->
           Enumerate.extensions kind ~base ~schema:q.Query.input ~fresh
             ~max_size:max_ext
           |> Seq.map (fun ext -> (base, ext)))
  in
  scan kind q pairs

let random_instance st schema ~dom ~max_facts =
  let dom = Array.of_list dom in
  let pick () = dom.(Random.State.int st (Array.length dom)) in
  let n = Random.State.int st (max_facts + 1) in
  let rels = Array.of_list (Schema.relations schema) in
  if Array.length rels = 0 then Instance.empty
  else
    List.init n (fun _ ->
        let name, ar = rels.(Random.State.int st (Array.length rels)) in
        Fact.make name (List.init ar (fun _ -> pick ())))
    |> Instance.of_list

(* A random admissible extension: for Distinct each fact gets at least one
   fresh value; for Disjoint, only fresh values. *)
let random_extension st kind schema ~base ~fresh ~max_size =
  let base_vals = Value.Set.elements (Instance.adom base) in
  let fresh = Array.of_list fresh in
  let pick_fresh () = fresh.(Random.State.int st (Array.length fresh)) in
  let pick_any () =
    let n_old = List.length base_vals in
    let k = Random.State.int st (n_old + Array.length fresh) in
    if k < n_old then List.nth base_vals k else pick_fresh ()
  in
  let n = 1 + Random.State.int st max_size in
  let rels = Array.of_list (Schema.relations schema) in
  if Array.length rels = 0 then Instance.empty
  else
    List.init n (fun _ ->
        let name, ar = rels.(Random.State.int st (Array.length rels)) in
        let args =
          match (kind : Classes.kind) with
          | Plain -> List.init ar (fun _ -> pick_any ())
          | Disjoint -> List.init ar (fun _ -> pick_fresh ())
          | Distinct ->
            let forced = Random.State.int st ar in
            List.init ar (fun i ->
                if i = forced then pick_fresh () else pick_any ())
        in
        Fact.make name args)
    |> Instance.of_list
    |> fun i -> Instance.diff i base

let check_random ?(seed = 17) ?(trials = 500) ?(bounds = default_bounds)
    ?schema kind q =
  let schema = Option.value schema ~default:q.Query.input in
  let st = Random.State.make [| seed |] in
  let dom = Enumerate.value_pool bounds.dom_size in
  let fresh = Enumerate.fresh_pool bounds.fresh in
  let pairs =
    Seq.init trials (fun _ ->
        let base = random_instance st schema ~dom ~max_facts:bounds.max_base in
        let extension =
          random_extension st kind schema ~base ~fresh
            ~max_size:bounds.max_ext
        in
        (base, extension))
    |> Seq.filter (fun (base, extension) ->
           (not (Instance.is_empty extension))
           && Classes.admissible kind ~base ~extension)
  in
  scan kind q pairs

let ladder ?fresh ?bases ?(bounds = default_bounds) kind ~max_i q =
  List.init max_i (fun k ->
      let i = k + 1 in
      match bases with
      | Some bases -> check_on_bases ?fresh ~max_ext:i kind q bases
      | None -> check_exhaustive ~bounds:{ bounds with max_ext = i } kind q)

type placement = {
  plain : outcome;
  distinct : outcome;
  disjoint : outcome;
}

let place ?bounds ?schema q =
  {
    plain = check_exhaustive ?bounds ?schema Classes.Plain q;
    distinct = check_exhaustive ?bounds ?schema Classes.Distinct q;
    disjoint = check_exhaustive ?bounds ?schema Classes.Disjoint q;
  }

let strongest p =
  if not (is_violation p.plain) then "M"
  else if not (is_violation p.distinct) then "Mdistinct"
  else if not (is_violation p.disjoint) then "Mdisjoint"
  else "C (non-monotone)"
