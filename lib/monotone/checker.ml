open Relational

type outcome =
  | No_violation of { pairs : int }
  | Violated of Classes.violation

let is_violation = function Violated _ -> true | No_violation _ -> false

type bounds = {
  dom_size : int;
  fresh : int;
  max_base : int;
  max_ext : int;
}

let default_bounds = { dom_size = 3; fresh = 2; max_base = 4; max_ext = 2 }

(* Telemetry. [monotone.probes] is incremented inside the probe, so on
   the parallel path it is committed through the pool's per-task buffers:
   only probes at indices up to the winning counterexample count, making
   the value identical to the sequential scan's. The remaining stable
   rows are derived from the (deterministic) outcome; wall-clock goes to
   the volatile [monotone.scan] timing. *)
let m_probes = Observe.Metrics.counter "monotone.probes"
let m_pairs = Observe.Metrics.counter "monotone.pairs_scanned"
let m_violations = Observe.Metrics.counter "monotone.violations"
let m_cert_size = Observe.Metrics.histogram "monotone.counterexample_size"
let m_scan = Observe.Metrics.timing "monotone.scan"

(* Scan the (base, extension) stream for a violation. With [jobs > 1]
   the probes fan out across a Domain pool; the search is cancelled as
   soon as any worker finds a violation, but the reported violation is
   always the first one in enumeration order, so certificates (and their
   shrunken forms) are reproducible independently of [jobs]. *)
let scan ?jobs kind q pairs =
  let probe (base, extension) =
    Observe.Metrics.incr m_probes;
    Classes.check_pair kind q ~base ~extension
  in
  let outcome =
    Observe.Metrics.time m_scan (fun () ->
        match jobs with
        | Some j when j > 1 ->
          Parallel.Pool.with_pool ~jobs:j (fun pool ->
              match Parallel.Pool.search pool probe pairs with
              | Parallel.Pool.Found v -> Violated v
              | Parallel.Pool.Exhausted pairs -> No_violation { pairs })
        | _ ->
          let count = ref 0 in
          let rec go s =
            match s () with
            | Seq.Nil -> No_violation { pairs = !count }
            | Seq.Cons (pair, rest) -> (
              incr count;
              match probe pair with Some v -> Violated v | None -> go rest)
          in
          go pairs)
  in
  (match outcome with
  | No_violation { pairs } -> Observe.Metrics.incr ~by:pairs m_pairs
  | Violated v ->
    Observe.Metrics.incr m_violations;
    Observe.Metrics.observe m_cert_size
      (float_of_int
         (Instance.cardinal v.Classes.base
         + Instance.cardinal v.Classes.extension)));
  outcome

let check_exhaustive ?(bounds = default_bounds) ?schema ?jobs kind q =
  let schema = Option.value schema ~default:q.Query.input in
  let dom = Enumerate.value_pool bounds.dom_size in
  let fresh = Enumerate.fresh_pool bounds.fresh in
  let pairs =
    Enumerate.instances schema ~dom ~max_facts:bounds.max_base
    |> Seq.concat_map (fun base ->
           Enumerate.extensions kind ~base ~schema ~fresh
             ~max_size:bounds.max_ext
           |> Seq.map (fun ext -> (base, ext)))
  in
  scan ?jobs kind q pairs

let check_on_bases ?(fresh = 2) ?(max_ext = 2) ?jobs kind q bases =
  let fresh = Enumerate.fresh_pool fresh in
  let pairs =
    List.to_seq bases
    |> Seq.concat_map (fun base ->
           Enumerate.extensions kind ~base ~schema:q.Query.input ~fresh
             ~max_size:max_ext
           |> Seq.map (fun ext -> (base, ext)))
  in
  scan ?jobs kind q pairs

let random_instance st schema ~dom ~max_facts =
  let dom = Array.of_list dom in
  let pick () = dom.(Random.State.int st (Array.length dom)) in
  let n = Random.State.int st (max_facts + 1) in
  let rels = Array.of_list (Schema.relations schema) in
  if Array.length rels = 0 then Instance.empty
  else
    List.init n (fun _ ->
        let name, ar = rels.(Random.State.int st (Array.length rels)) in
        Fact.make name (List.init ar (fun _ -> pick ())))
    |> Instance.of_list

(* A random admissible extension: for Distinct each fact gets at least one
   fresh value; for Disjoint, only fresh values. *)
let random_extension st kind schema ~base ~fresh ~max_size =
  let base_vals = Value.Set.elements (Instance.adom base) in
  let fresh = Array.of_list fresh in
  let pick_fresh () = fresh.(Random.State.int st (Array.length fresh)) in
  let pick_any () =
    let n_old = List.length base_vals in
    let k = Random.State.int st (n_old + Array.length fresh) in
    if k < n_old then List.nth base_vals k else pick_fresh ()
  in
  let n = 1 + Random.State.int st max_size in
  let rels = Array.of_list (Schema.relations schema) in
  if Array.length rels = 0 then Instance.empty
  else
    List.init n (fun _ ->
        let name, ar = rels.(Random.State.int st (Array.length rels)) in
        let args =
          match (kind : Classes.kind) with
          | Plain -> List.init ar (fun _ -> pick_any ())
          | Disjoint -> List.init ar (fun _ -> pick_fresh ())
          | Distinct ->
            let forced = Random.State.int st ar in
            List.init ar (fun i ->
                if i = forced then pick_fresh () else pick_any ())
        in
        Fact.make name args)
    |> Instance.of_list
    |> fun i -> Instance.diff i base

let check_random ?(seed = 17) ?(trials = 500) ?(bounds = default_bounds)
    ?schema ?jobs kind q =
  let schema = Option.value schema ~default:q.Query.input in
  let st = Random.State.make [| seed |] in
  let dom = Enumerate.value_pool bounds.dom_size in
  let fresh = Enumerate.fresh_pool bounds.fresh in
  let pairs =
    Seq.init trials (fun _ ->
        let base = random_instance st schema ~dom ~max_facts:bounds.max_base in
        let extension =
          random_extension st kind schema ~base ~fresh
            ~max_size:bounds.max_ext
        in
        (base, extension))
    |> Seq.filter (fun (base, extension) ->
           (not (Instance.is_empty extension))
           && Classes.admissible kind ~base ~extension)
  in
  scan ?jobs kind q pairs

let ladder ?fresh ?bases ?(bounds = default_bounds) ?jobs kind ~max_i q =
  List.init max_i (fun k ->
      let i = k + 1 in
      let m_bound =
        Observe.Metrics.timing
          ~labels:[ ("max_ext", string_of_int i) ]
          "monotone.ladder_bound"
      in
      Observe.Metrics.time m_bound (fun () ->
          match bases with
          | Some bases -> check_on_bases ?fresh ~max_ext:i ?jobs kind q bases
          | None ->
            check_exhaustive ~bounds:{ bounds with max_ext = i } ?jobs kind q))

type placement = {
  plain : outcome;
  distinct : outcome;
  disjoint : outcome;
}

let place ?bounds ?schema ?jobs q =
  {
    plain = check_exhaustive ?bounds ?schema ?jobs Classes.Plain q;
    distinct = check_exhaustive ?bounds ?schema ?jobs Classes.Distinct q;
    disjoint = check_exhaustive ?bounds ?schema ?jobs Classes.Disjoint q;
  }

let strongest p =
  if not (is_violation p.plain) then "M"
  else if not (is_violation p.distinct) then "Mdistinct"
  else if not (is_violation p.disjoint) then "Mdisjoint"
  else "C (non-monotone)"
