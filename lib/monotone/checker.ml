open Relational

type outcome =
  | No_violation of { pairs : int }
  | Violated of Classes.violation

let is_violation = function Violated _ -> true | No_violation _ -> false

type bounds = {
  dom_size : int;
  fresh : int;
  max_base : int;
  max_ext : int;
}

let default_bounds = { dom_size = 3; fresh = 2; max_base = 4; max_ext = 2 }

(* Telemetry. [monotone.probes] and [monotone.cache_hits] are
   incremented inside the per-base group probe, so on the parallel path
   they are committed through the pool's per-task buffers: only groups
   at indices up to the winning counterexample count (the winning group
   itself stops at its first in-group violation), making the values
   identical to the sequential scan's. The remaining stable rows are
   derived from the (deterministic) outcome; wall-clock goes to the
   volatile [monotone.scan] timing. *)
let m_probes = Observe.Metrics.counter "monotone.probes"
let m_pairs = Observe.Metrics.counter "monotone.pairs_scanned"
let m_cache_hits = Observe.Metrics.counter "monotone.cache_hits"
let m_ivm_hits = Observe.Metrics.counter "monotone.ivm_hits"
let m_violations = Observe.Metrics.counter "monotone.violations"
let m_cert_size = Observe.Metrics.histogram "monotone.counterexample_size"
let m_scan = Observe.Metrics.timing "monotone.scan"

(* Probe one base's admissible extensions left to right, stopping at the
   first violation. This is where the cross-probe cache lives: [Q(base)]
   is evaluated once per base rather than once per pair; every probe
   after the first within a group is a cache hit. When [Q(base)] is
   empty no extension can lose a fact ([diff before after ⊆ before]), so
   the second evaluation is skipped outright — the probes are still
   counted, keeping [monotone.probes]/[pairs_scanned] byte-identical to
   the pair-at-a-time scan's. With [cache = false] the probe recomputes
   [Q(base)] per pair (the seed's behaviour); verdicts and certificates
   are identical either way, which the test wall pins. *)
(* Attribution paths are rooted ("scan/base/..."): probe_group runs on
   pool worker domains under [jobs > 1], whose ambient span stack is
   empty, so absolute paths are what makes the parallel profile
   aggregate with the sequential one. *)
let probe_group ~cache ~ivm kind q (ord, (base, exts)) =
  Observe.Profile.span_rooted [ "scan"; "base" ] @@ fun () ->
  let series_on = Observe.Series.is_enabled () in
  let wall0 = if series_on then Unix.gettimeofday () else 0. in
  let is_ivm_route = cache && Query.route ~ivm q = Query.Ivm in
  let route =
    match Query.route ~ivm q with
    | Query.Witness -> "witness"
    | Query.Ivm -> "ivm"
    | Query.Eval -> "eval"
  in
  let probe, empty_fast =
    if cache then begin
      let before =
        Observe.Profile.span_rooted [ "scan"; "base"; "qbase" ] (fun () ->
            Query.apply q base)
      in
      if Instance.is_empty before then ((fun _ -> None), true)
      else
        ( Observe.Profile.span_rooted [ "scan"; "base"; "stage" ] (fun () ->
              Classes.stage ~ivm ~before kind q ~base),
          false )
    end
    else
      (* The seed's pair-at-a-time behaviour: re-evaluate [Q(base)] and
         re-stage per probe, incremental route off. *)
      ( (fun d ->
          let before = Query.apply q base in
          if Instance.is_empty before then None
          else Classes.stage ~ivm:false ~before kind q ~base d),
        false )
  in
  let scanned = ref 0 in
  let found = ref None in
  let profiling = Observe.Profile.is_enabled () in
  let rec go s =
    match s () with
    | Seq.Nil -> ()
    | Seq.Cons (d, rest) -> (
      incr scanned;
      let verdict =
        if profiling then
          Observe.Profile.span_rooted [ "scan"; "base"; "probe" ] (fun () ->
              if empty_fast then Observe.Profile.annot "empty_before"
              else begin
                Observe.Profile.annot route;
                if cache && !scanned > 1 then Observe.Profile.annot "cache_hit"
              end;
              probe d)
        else probe d
      in
      match verdict with
      | Some v -> found := Some v
      | None -> go rest)
  in
  go exts;
  (* Committed once per group rather than once per probe — the hot loop
     pays no registry hits — with totals byte-identical to the per-probe
     accounting, including a winning group's partial tally. *)
  if !scanned > 0 then begin
    Observe.Metrics.incr ~by:!scanned m_probes;
    if cache && !scanned > 1 then
      Observe.Metrics.incr ~by:(!scanned - 1) m_cache_hits;
    if is_ivm_route && not empty_fast then
      Observe.Metrics.incr ~by:!scanned m_ivm_hits
  end;
  (* Per-base trajectory, tick = the base's ordinal in enumeration
     order: on the parallel path these land in the pool's per-task
     buffers and only groups up to the winning index commit, so the
     stable series match the sequential scan's byte for byte. The wall
     sample is volatile (schedule-dependent); it feeds the live line's
     probes/sec, never the stable snapshot. *)
  if series_on then begin
    Observe.Series.sample "monotone.base_probes" ~tick:ord
      (float_of_int !scanned);
    (match !found with
    | Some _ -> Observe.Series.sample "monotone.base_violation" ~tick:ord 1.
    | None -> ());
    Observe.Series.sample ~stable:false "monotone.base_wall" ~tick:ord
      (Unix.gettimeofday () -. wall0)
  end;
  (!scanned, !found)

(* Scan a per-base grouped (base, extensions) stream for a violation.
   Groups preserve pair enumeration order, so "first violation in group
   order, scanning within each group sequentially" is the first
   violation in pair order. With [jobs > 1] the groups fan out across a
   Domain pool; the search is cancelled as soon as any worker finds a
   violation, but the reported violation is always the first one in
   enumeration order, so certificates (and their shrunken forms) are
   reproducible independently of [jobs]. *)
let scan ?jobs ?(cache = true) ?(ivm = true) kind q groups =
  (* Ordinal-tag the groups so the per-base series tick is the base's
     position in enumeration order, a schedule-independent coordinate. *)
  let groups = Seq.mapi (fun i g -> (i, g)) groups in
  let outcome =
    Observe.Profile.span_rooted [ "scan" ] @@ fun () ->
    Observe.Metrics.time m_scan (fun () ->
        match jobs with
        | Some j when j > 1 ->
          (* Pair tallies live outside the pool's metric buffers: the
             total is only read on [Exhausted], when every group has
             completed, so the sum is independent of scheduling. *)
          let pairs = Atomic.make 0 in
          let probe group =
            let scanned, v = probe_group ~cache ~ivm kind q group in
            (match v with
            | None -> ignore (Atomic.fetch_and_add pairs scanned)
            | Some _ -> ());
            v
          in
          Parallel.Pool.with_pool ~jobs:j (fun pool ->
              match Parallel.Pool.search pool probe groups with
              | Parallel.Pool.Found v -> Violated v
              | Parallel.Pool.Exhausted _ ->
                No_violation { pairs = Atomic.get pairs })
        | _ ->
          let count = ref 0 in
          let rec go s =
            match s () with
            | Seq.Nil -> No_violation { pairs = !count }
            | Seq.Cons (group, rest) -> (
              let scanned, v = probe_group ~cache ~ivm kind q group in
              count := !count + scanned;
              match v with Some v -> Violated v | None -> go rest)
          in
          go groups)
  in
  (match outcome with
  | No_violation { pairs } -> Observe.Metrics.incr ~by:pairs m_pairs
  | Violated v ->
    Observe.Metrics.incr m_violations;
    Observe.Metrics.observe m_cert_size
      (float_of_int
         (Instance.cardinal v.Classes.base
         + Instance.cardinal v.Classes.extension)));
  outcome

(* The pair streams were already generated base-major; the checkers now
   keep that grouping explicit — each group is one base with the lazy
   sequence of its admissible extensions ({!Enumerate.extensions}
   guarantees admissibility per kind, so the probe skips re-checking). *)

let check_exhaustive ?(bounds = default_bounds) ?schema ?jobs ?cache ?ivm
    kind q =
  let schema = Option.value schema ~default:q.Query.input in
  let dom = Enumerate.value_pool bounds.dom_size in
  let fresh = Enumerate.fresh_pool bounds.fresh in
  let groups =
    Enumerate.instances schema ~dom ~max_facts:bounds.max_base
    |> Seq.map (fun base ->
           ( base,
             Enumerate.extension_deltas kind ~base ~schema ~fresh
               ~max_size:bounds.max_ext ))
  in
  scan ?jobs ?cache ?ivm kind q groups

let check_on_bases ?(fresh = 2) ?(max_ext = 2) ?jobs ?cache ?ivm kind q bases
    =
  let fresh = Enumerate.fresh_pool fresh in
  let groups =
    List.to_seq bases
    |> Seq.map (fun base ->
           ( base,
             Enumerate.extension_deltas kind ~base ~schema:q.Query.input
               ~fresh ~max_size:max_ext ))
  in
  scan ?jobs ?cache ?ivm kind q groups

let random_instance st schema ~dom ~max_facts =
  let dom = Array.of_list dom in
  let pick () = dom.(Random.State.int st (Array.length dom)) in
  let n = Random.State.int st (max_facts + 1) in
  let rels = Array.of_list (Schema.relations schema) in
  if Array.length rels = 0 then Instance.empty
  else
    List.init n (fun _ ->
        let name, ar = rels.(Random.State.int st (Array.length rels)) in
        Fact.make name (List.init ar (fun _ -> pick ())))
    |> Instance.of_list

(* A random admissible extension: for Distinct each fact gets at least one
   fresh value; for Disjoint, only fresh values. *)
let random_extension st kind schema ~base ~fresh ~max_size =
  let base_vals = Value.Set.elements (Instance.adom base) in
  let fresh = Array.of_list fresh in
  let pick_fresh () = fresh.(Random.State.int st (Array.length fresh)) in
  let pick_any () =
    let n_old = List.length base_vals in
    let k = Random.State.int st (n_old + Array.length fresh) in
    if k < n_old then List.nth base_vals k else pick_fresh ()
  in
  let n = 1 + Random.State.int st max_size in
  let rels = Array.of_list (Schema.relations schema) in
  if Array.length rels = 0 then Instance.empty
  else
    List.init n (fun _ ->
        let name, ar = rels.(Random.State.int st (Array.length rels)) in
        let args =
          match (kind : Classes.kind) with
          | Plain -> List.init ar (fun _ -> pick_any ())
          | Disjoint -> List.init ar (fun _ -> pick_fresh ())
          | Distinct ->
            let forced = Random.State.int st ar in
            List.init ar (fun i ->
                if i = forced then pick_fresh () else pick_any ())
        in
        Fact.make name args)
    |> Instance.of_list
    |> fun i -> Instance.diff i base

let check_random ?(seed = 17) ?(trials = 500) ?(bounds = default_bounds)
    ?schema ?jobs ?cache ?ivm kind q =
  let schema = Option.value schema ~default:q.Query.input in
  let st = Random.State.make [| seed |] in
  let dom = Enumerate.value_pool bounds.dom_size in
  let fresh = Enumerate.fresh_pool bounds.fresh in
  (* Singleton groups: random bases repeat too rarely to cache across,
     and drawing from [st] must stay in the outer sequence, which the
     pool forces under its lock in enumeration order. The extension is
     materialized eagerly here for the same reason. *)
  let groups =
    Seq.init trials (fun _ ->
        let base = random_instance st schema ~dom ~max_facts:bounds.max_base in
        let extension =
          random_extension st kind schema ~base ~fresh
            ~max_size:bounds.max_ext
        in
        (base, extension))
    |> Seq.filter (fun (base, extension) ->
           (not (Instance.is_empty extension))
           && Classes.admissible kind ~base ~extension)
    |> Seq.map (fun (base, extension) ->
           (base, Seq.return (Query.delta_of_instance extension)))
  in
  scan ?jobs ?cache ?ivm kind q groups

let ladder ?fresh ?bases ?(bounds = default_bounds) ?jobs ?cache ?ivm kind
    ~max_i q =
  List.init max_i (fun k ->
      let i = k + 1 in
      let m_bound =
        Observe.Metrics.timing
          ~labels:[ ("max_ext", string_of_int i) ]
          "monotone.ladder_bound"
      in
      Observe.Metrics.time m_bound (fun () ->
          match bases with
          | Some bases ->
            check_on_bases ?fresh ~max_ext:i ?jobs ?cache ?ivm kind q bases
          | None ->
            check_exhaustive
              ~bounds:{ bounds with max_ext = i }
              ?jobs ?cache ?ivm kind q))

type placement = {
  plain : outcome;
  distinct : outcome;
  disjoint : outcome;
}

let place ?bounds ?schema ?jobs ?cache ?ivm q =
  {
    plain =
      check_exhaustive ?bounds ?schema ?jobs ?cache ?ivm Classes.Plain q;
    distinct =
      check_exhaustive ?bounds ?schema ?jobs ?cache ?ivm Classes.Distinct q;
    disjoint =
      check_exhaustive ?bounds ?schema ?jobs ?cache ?ivm Classes.Disjoint q;
  }

let strongest p =
  if not (is_violation p.plain) then "M"
  else if not (is_violation p.distinct) then "Mdistinct"
  else if not (is_violation p.disjoint) then "Mdisjoint"
  else "C (non-monotone)"
