open Relational

type kind =
  | Plain
  | Distinct
  | Disjoint

let kind_to_string = function
  | Plain -> "M"
  | Distinct -> "Mdistinct"
  | Disjoint -> "Mdisjoint"

(* M ⊆ Mdistinct ⊆ Mdisjoint: the Plain condition quantifies over the most
   extensions, Disjoint over the fewest. *)
let strength = function Plain -> 2 | Distinct -> 1 | Disjoint -> 0
let weaker a b = strength a <= strength b

let admissible kind ~base ~extension =
  match kind with
  | Plain -> true
  | Distinct -> Instance.is_domain_distinct_from extension base
  | Disjoint -> Instance.is_domain_disjoint_from extension base

type violation = {
  kind : kind;
  bound : int option;
  base : Instance.t;
  extension : Instance.t;
  missing : Fact.t;
}

let pp_violation ppf v =
  Format.fprintf ppf
    "@[<v>%s%s violated:@ I = %a@ J = %a@ %a in Q(I) but not in Q(I u J)@]"
    (kind_to_string v.kind)
    (match v.bound with None -> "" | Some i -> Printf.sprintf "^%d" i)
    Instance.pp v.base Instance.pp v.extension Fact.pp v.missing

let check_pair kind q ~base ~extension =
  if not (admissible kind ~base ~extension) then None
  else
    let before = Query.apply q base in
    let after = Query.apply q (Instance.union base extension) in
    match Instance.to_list (Instance.diff before after) with
    | [] -> None
    | missing :: _ ->
      Some
        {
          kind;
          bound = Some (Instance.cardinal extension);
          base;
          extension;
          missing;
        }
