open Relational

type kind =
  | Plain
  | Distinct
  | Disjoint

let kind_to_string = function
  | Plain -> "M"
  | Distinct -> "Mdistinct"
  | Disjoint -> "Mdisjoint"

(* M ⊆ Mdistinct ⊆ Mdisjoint: the Plain condition quantifies over the most
   extensions, Disjoint over the fewest. *)
let strength = function Plain -> 2 | Distinct -> 1 | Disjoint -> 0
let weaker a b = strength a <= strength b

let admissible kind ~base ~extension =
  match kind with
  | Plain -> true
  | Distinct -> Instance.is_domain_distinct_from extension base
  | Disjoint -> Instance.is_domain_disjoint_from extension base

type violation = {
  kind : kind;
  bound : int option;
  base : Instance.t;
  extension : Instance.t;
  missing : Fact.t;
}

let pp_violation ppf v =
  Format.fprintf ppf
    "@[<v>%s%s violated:@ I = %a@ J = %a@ %a in Q(I) but not in Q(I u J)@]"
    (kind_to_string v.kind)
    (match v.bound with None -> "" | Some i -> Printf.sprintf "^%d" i)
    Instance.pp v.base Instance.pp v.extension Fact.pp v.missing

(* Probe admissible extensions of one base against a precomputed
   [before = Q(base)]. [Query.stage] answers each probe with the least
   fact of [before] outside [Q(base ∪ extension)] — the head of
   [diff before after] — so the certificate is the one the seed's
   diff-based probe produced, whether the query answers through a
   witness, an IVM handle, or by evaluating. Probes consume
   {!Query.delta}s; the extension instance is only forced when a
   violation is actually reported. *)
let stage ?ivm ~before kind q ~base =
  let probe = Query.stage ?ivm q ~base ~expected:before in
  fun (d : Query.delta) ->
    match probe d with
    | None -> None
    | Some missing ->
      Some
        {
          kind;
          bound = Some (List.length d.Query.facts);
          base;
          extension = Query.delta_instance d;
          missing;
        }

let check_extension ?ivm ~before kind q ~base ~extension =
  stage ?ivm ~before kind q ~base (Query.delta_of_instance extension)

let check_pair kind q ~base ~extension =
  if not (admissible kind ~base ~extension) then None
  else
    let before = Query.apply q base in
    (* Monotone in the trivial direction: an empty [before] cannot lose
       facts, so no extension violates — skip the second evaluation. *)
    if Instance.is_empty before then None
    else check_extension ~before kind q ~base ~extension
