(** The monotonicity classes of Section 3.1.

    A query [Q] is monotone when [Q(I) ⊆ Q(I ∪ J)] for all [J];
    domain-distinct-monotone when this holds for all [J] whose facts each
    contain a value outside [adom I]; domain-disjoint-monotone when it
    holds for all [J] with [adom J ∩ adom I = ∅]. The bounded variants
    [Mᵢ] restrict [|J| ≤ i]. *)

open Relational

type kind =
  | Plain     (** M *)
  | Distinct  (** Mdistinct *)
  | Disjoint  (** Mdisjoint *)

val kind_to_string : kind -> string

val weaker : kind -> kind -> bool
(** [weaker a b]: the condition of [a] is implied by membership in [b]
    (e.g. [weaker Disjoint Plain]: every monotone query is
    domain-disjoint-monotone). Reflexive. *)

val admissible : kind -> base:Instance.t -> extension:Instance.t -> bool
(** Is the extension one of the [J] quantified over for this kind? *)

type violation = {
  kind : kind;
  bound : int option;
  base : Instance.t;
  extension : Instance.t;
  missing : Fact.t;  (** in [Q(base)] but not in [Q(base ∪ extension)] *)
}

val pp_violation : Format.formatter -> violation -> unit

val stage :
  ?ivm:bool ->
  before:Instance.t -> kind -> Query.t -> base:Instance.t ->
  Query.delta -> violation option
(** Staged probing of one base's extensions against a precomputed
    [before = Q(base)] — the checker's cross-probe cache computes
    [Q(base)] once per base, stages the query's membership probe
    ({!Relational.Query.stage}, honouring the [ivm] knob), and tests
    every admissible extension through the returned function.
    Extensions arrive as {!Relational.Query.delta}s; their instance view
    is forced only when a violation is reported. Admissibility is the
    caller's obligation. The [missing] fact is the least element of
    [diff before (Q(base ∪ extension))], so certificates are independent
    of whether [before] was cached or answered incrementally. *)

val check_extension :
  ?ivm:bool ->
  before:Instance.t -> kind -> Query.t ->
  base:Instance.t -> extension:Instance.t -> violation option
(** {!stage} applied to a single extension instance. *)

val check_pair :
  kind -> Query.t -> base:Instance.t -> extension:Instance.t ->
  violation option
(** Tests [Q(base) ⊆ Q(base ∪ extension)] when the extension is admissible
    for the kind; inadmissible pairs vacuously return [None]. *)
