(** Bounded enumeration of instances and admissible extensions.

    Class membership is undecidable in general (paper, Section 7); the
    checkers explore all instances up to a size/domain bound. Genericity of
    queries means the choice of concrete domain values is irrelevant, so a
    fixed value pool loses no generality at a given size. *)

open Relational

val value_pool : int -> Value.t list
(** [n] canonical base-instance values ([Int 1 .. Int n]). *)

val fresh_pool : int -> Value.t list
(** [n] values guaranteed disjoint from every {!value_pool}. *)

val subsets_up_to : 'a list -> int -> 'a list Seq.t
(** All subsets of size [<= k], smallest first. *)

val instances :
  Schema.t -> dom:Value.t list -> max_facts:int -> Instance.t Seq.t
(** All instances over the schema using only the given values, with at most
    [max_facts] facts. *)

val extension_deltas :
  Classes.kind ->
  base:Instance.t ->
  schema:Schema.t ->
  fresh:Value.t list ->
  max_size:int ->
  Query.delta Seq.t
(** All nonempty extensions [J] admissible for the kind, built from
    [adom base ∪ fresh] ([fresh] only, for [Disjoint]), excluding facts
    already in the base, with [|J| <= max_size] — presented as
    {!Relational.Query.delta}s: the sorted fact list the enumeration
    just constructed, with the instance view forced only by consumers
    that need a set. Same enumeration order as {!extensions}. *)

val extensions :
  Classes.kind ->
  base:Instance.t ->
  schema:Schema.t ->
  fresh:Value.t list ->
  max_size:int ->
  Instance.t Seq.t
(** {!extension_deltas} with each delta forced to its instance. *)
