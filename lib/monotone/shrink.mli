(** Counterexample minimization.

    Violations found by the checkers are already small (extensions are
    enumerated smallest-first), but bases can carry irrelevant facts;
    greedy fact removal yields certificates matching the paper's
    hand-drawn pictures. *)

open Relational

val shrink : Query.t -> Classes.violation -> Classes.violation
(** Greedily removes facts from the base and then from the extension while
    the pair still violates the class condition. The result is a genuine
    violation of the same kind with base and extension that are
    fact-minimal (no single removal preserves the violation).
    Admissibility is preserved by removal: shrinking the base only
    enlarges the set of admissible extensions. *)

val is_minimal : Query.t -> Classes.violation -> bool
(** No single fact can be removed from base or extension while keeping a
    violation. *)
