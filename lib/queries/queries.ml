(** The paper's query zoo and graph generators. *)

module Graph_gen = Graph_gen
module Graph_kernel = Graph_kernel
module Zoo = Zoo
module Wilog_zoo = Wilog_zoo
module Games = Games
