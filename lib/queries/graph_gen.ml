open Relational

let schema = Schema.of_list [ ("E", 2) ]
let edge a b = Fact.make "E" [ Value.Int a; Value.Int b ]
let of_edges l = Instance.of_list (List.map (fun (a, b) -> edge a b) l)
let path n = of_edges (List.init n (fun i -> (i, i + 1)))

let cycle n =
  if n <= 0 then Instance.empty
  else of_edges (List.init n (fun i -> (i, (i + 1) mod n)))

let clique ?(offset = 0) n =
  let pairs = ref [] in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then pairs := (offset + i, offset + j) :: !pairs
    done
  done;
  of_edges !pairs

let star ?(center = 0) ?(first_spoke = 1) k =
  of_edges (List.init k (fun i -> (center, first_spoke + i)))

let random_edges ~rel ~seed ~nodes ~edges =
  let st = Random.State.make [| seed |] in
  List.init edges (fun _ ->
      Fact.make rel
        [
          Value.Int (Random.State.int st (max nodes 1));
          Value.Int (Random.State.int st (max nodes 1));
        ])
  |> Instance.of_list

let erdos_renyi ~seed ~nodes ~edges = random_edges ~rel:"E" ~seed ~nodes ~edges

let max_int_value i =
  Instance.fold
    (fun f acc ->
      List.fold_left
        (fun acc v ->
          match v with
          | Value.Int x -> max acc x
          | _ -> invalid_arg "Graph_gen.disjoint_union: non-integer vertex")
        acc (Fact.args f))
    i min_int

let disjoint_union a b =
  if Instance.is_empty a then b
  else if Instance.is_empty b then a
  else
    let shift = max_int_value a + 1 - min 0 (max_int_value b * 0) in
    let shifted =
      Instance.map_values
        (fun v ->
          match v with
          | Value.Int x -> Value.Int (x + shift + 1_000)
          | _ -> invalid_arg "Graph_gen.disjoint_union: non-integer vertex")
        b
    in
    Instance.union a shifted

let game ~seed ~nodes ~edges = random_edges ~rel:"Move" ~seed ~nodes ~edges
