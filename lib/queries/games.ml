open Relational

type status =
  | Won
  | Lost
  | Drawn

let status_to_string = function
  | Won -> "won"
  | Lost -> "lost"
  | Drawn -> "drawn"

(* Retrograde analysis: start from terminal positions (no moves = Lost)
   and propagate backwards. A position becomes Won as soon as one
   successor is Lost; it becomes Lost once all successors are Won.
   Unlabelled positions at fixpoint are Drawn. *)
let solve i =
  let moves = Instance.restrict_rels i [ "Move" ] in
  let succs =
    Instance.fold
      (fun f acc ->
        Value.Map.update (Fact.arg f 0)
          (function
            | None -> Some [ Fact.arg f 1 ]
            | Some l -> Some (Fact.arg f 1 :: l))
          acc)
      moves Value.Map.empty
  in
  let vertices = Value.Set.elements (Instance.adom moves) in
  let succ x =
    match Value.Map.find_opt x succs with Some l -> l | None -> []
  in
  let label = Hashtbl.create 16 in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun x ->
        if not (Hashtbl.mem label x) then begin
          let ss = succ x in
          let status_of y = Hashtbl.find_opt label y in
          if List.exists (fun y -> status_of y = Some Lost) ss then begin
            Hashtbl.replace label x Won;
            changed := true
          end
          else if List.for_all (fun y -> status_of y = Some Won) ss then begin
            (* includes the terminal case ss = [] *)
            Hashtbl.replace label x Lost;
            changed := true
          end
        end)
      vertices
  done;
  List.fold_left
    (fun acc x ->
      let s =
        match Hashtbl.find_opt label x with Some s -> s | None -> Drawn
      in
      Value.Map.add x s acc)
    Value.Map.empty vertices

let positions status i =
  Value.Map.fold
    (fun x s acc -> if s = status then Value.Set.add x acc else acc)
    (solve i) Value.Set.empty

let facts_of rel vs =
  Value.Set.fold
    (fun x acc -> Instance.add (Fact.make rel [ x ]) acc)
    vs Instance.empty

let move_schema = Schema.of_list [ ("Move", 2) ]

let winners_query =
  Query.make ~name:"game-winners" ~input:move_schema
    ~output:(Schema.of_list [ ("Win", 1) ])
    (fun i -> facts_of "Win" (positions Won i))

let losers_query =
  Query.make ~name:"game-losers" ~input:move_schema
    ~output:(Schema.of_list [ ("Lose", 1) ])
    (fun i -> facts_of "Lose" (positions Lost i))

let agrees_with_wellfounded i =
  let p = Datalog.Parser.parse_program "Win(x) :- Move(x,y), not Win(y)." in
  let m = Datalog.Wellfounded.eval p i in
  let wf_true = Instance.restrict_rels m.Datalog.Wellfounded.true_facts [ "Win" ] in
  let wf_undef = Instance.restrict_rels m.Datalog.Wellfounded.undefined [ "Win" ] in
  let won = facts_of "Win" (positions Won i) in
  let drawn = facts_of "Win" (positions Drawn i) in
  Instance.equal won wf_true && Instance.equal drawn wf_undef
