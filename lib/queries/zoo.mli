(** The paper's query zoo: every query used in a proof or separation,
    as executable {!Relational.Query.t} values, plus the Datalog¬ sources
    for those that the paper writes as programs.

    Membership claims verified by the bench harness (Theorem 3.1):
    - {!tc} ∈ M;
    - {!comp_tc} (the paper's Q_TC) ∈ Mdisjoint \ Mdistinct;
    - {!q_clique}[ k] ∈ Mᵏ⁻²_distinct \ Mᵏ⁻¹_distinct, ∈ Mᵏ⁻²_disjoint;
    - {!q_star}[ k] ∈ Mᵏ⁻¹_disjoint \ Mᵏ_disjoint and ∉ Mᵢ_distinct;
    - {!q_duplicate}[ j] ∈ Mᵢ_distinct (i < j) \ Mʲ_disjoint;
    - {!triangles_unless_two_disjoint} ∈ C \ Mdisjoint;
    - {!winmove} ∈ Mdisjoint \ Mdistinct. *)

open Relational

val graph_schema : Schema.t

(* -- helpers over the undirected view of E ------------------------- *)

val undirected_neighbours : Instance.t -> Value.Set.t Value.Map.t
(** Adjacency of the underlying undirected simple graph of [E] (self-loops
    dropped) — "ignoring the direction of edges" as in Theorem 3.1. *)

val has_clique : Instance.t -> int -> bool
val has_star : Instance.t -> int -> bool
(** A star with [k] spokes: a vertex with at least [k] distinct
    neighbours. *)

val triangles : Instance.t -> Instance.t
(** All facts [O(x,y,z)] with [x,y,z] a directed triangle of distinct
    vertices (all three rotations present as separate facts). *)

(* -- the queries ---------------------------------------------------- *)

val tc : Query.t
(** Transitive closure, output [T/2]. Monotone. *)

val comp_tc : Query.t
(** Q_TC: the complement of the transitive closure over the active domain,
    output [O/2]. *)

val q_clique : int -> Query.t
(** [q_clique k]: the edge relation (as [O/2]) when no [k]-clique exists in
    the undirected view, and the empty relation otherwise. *)

val q_star : int -> Query.t
(** [q_star k]: the edge relation when no star with [k] spokes exists, and
    the empty relation otherwise. *)

val duplicate_schema : int -> Schema.t
(** [{R1/2, ..., Rj/2}]. *)

val q_duplicate : int -> Query.t
(** [q_duplicate j]: relation [R1] (as [O/2]) when the intersection of all
    [j] relations is empty, and the empty set otherwise. *)

val triangles_unless_two_disjoint : Query.t
(** All triangles (as [O/3]) provided no two domain-disjoint triangles
    exist; the separator for Mdisjoint ⊊ C. *)

val winmove : Query.t
(** Input [Move/2]; output [Win/1]: positions won under the well-founded
    semantics of [Win(x) ← Move(x,y), ¬Win(y)]. *)

val winmove_doubled : Query.t
(** Win-move computed by the "doubled program" approach the paper's
    Section 7 alludes to: the alternating fixpoint is driven by repeated
    stratified evaluation of the {e connected} SP-Datalog program
    [W(x) ← Move(x,y), ¬P(y)], feeding each round's result back in as
    relation [P] (underestimates at even rounds, overestimates at odd
    ones). Agrees with {!winmove} on every input (experiment E13). *)

(* -- Datalog sources ------------------------------------------------ *)

val tc_program : string
val comp_tc_program : string
(** A semicon-Datalog¬ program computing {!comp_tc} (its last stratum is
    the only unconnected one — the shape Theorem 5.3 covers). *)

val example_51_p1 : string
(** Example 5.1's P1: con-Datalog¬ but not in Mdistinct. *)

val example_51_p2 : string
(** Example 5.1's P2: stratified but not semi-connected. *)

val winmove_program : string
(** The unstratifiable win-move rule (well-founded semantics). *)

val q_clique3_program : string
(** A stratified Datalog¬ program for {!q_clique}[ 3], using the
    all-marker pattern to express "unless a triangle exists" without
    nullary relations: [W(u)] marks {e every} active-domain element as
    soon as some (undirected) triangle exists, and the last stratum
    filters the edges through [¬W]. Note the [W] rule is {e unconnected}
    (the marker variable floats free) and [W] is negated — the program is
    stratified but {e not} semi-connected, as Theorem 5.3 demands of a
    query outside Mdisjoint. *)

val q_star2_program : string
(** Same pattern for {!q_star}[ 2] ("edges unless some vertex has two
    distinct undirected neighbours"). Also not semi-connected. *)
