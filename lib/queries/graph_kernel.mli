(** Int-interned graph fixpoints backing the zoo's witness fast paths.

    Interns one binary relation of an instance into vertices [0..n-1]
    and answers reachability and game questions on flat arrays — the
    allocation-light engine behind the staged
    {!Relational.Query.t.witness} membership probes of {!Zoo.tc},
    {!Zoo.comp_tc}, {!Zoo.winmove} and
    {!Zoo.triangles_unless_two_disjoint}. Each function's result is
    pinned to the corresponding reference evaluator by the equivalence
    test wall. *)

open Relational

type t = { n : int; values : Value.t array; adj : int list array }

val empty : t

val of_rel : string -> Instance.t -> t
(** Graph of the facts [rel(a, b)] (arity-2 facts of [rel] only); the
    vertex set is exactly the values occurring as an endpoint. *)

val extend : t -> string -> Instance.t -> t
(** [extend g rel i]: [g] plus the [rel]-edges of [i]. Existing vertices
    keep their numbers — resolutions made against the base graph stay
    valid — and only [i]'s facts are traversed, which is what makes the
    staged witnesses cheap per probe. *)

val extend_facts : t -> string -> Fact.t list -> t
(** {!extend} from a raw fact list — the shape {!Relational.Query.delta}
    carries, so witness probes need not force the delta's instance
    view. *)

val vertex : t -> Value.t -> int
(** Vertex number of a value, [-1] when it does not occur. *)

val reach : t -> bool array
(** Row-major [n * n] transitive-closure matrix (paths of length at
    least 1, so a self-loop is needed for [reach x x] on a lone
    vertex). *)

val reaches : t -> bool array -> Value.t -> Value.t -> bool
(** [reaches g (reach g) a b]: is there a nonempty path [a ->* b]?
    [false] when either value is not a vertex. *)

val reacher : t -> int -> int -> bool
(** [reacher g a b]: same relation as {!reach}, computed by per-source
    DFS memoized across calls — cheaper when only a few sources are
    queried. Partially apply to share the memo. *)

val wins : t -> bool array
(** Won positions of the move graph under the alternating fixpoint
    (win-move's well-founded semantics); indexed by vertex number. *)
