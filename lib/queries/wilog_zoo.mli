(** Sample wILOG¬ programs (Section 5.2) for the Theorem 5.4 experiments:
    value invention with weak safety, across the SP / connected /
    semi-connected spectrum. *)

open Relational

val tagged_edges : string
(** Connected SP-wILOG: invent a tag per edge, project the edge back.
    Computes the identity on [E] (monotone); exercises invention and weak
    safety end to end. *)

val sinks_of_sources : string
(** Semicon-wILOG¬: invention in the first stratum, one unconnected
    negated rule in the last. Outputs [O(x,w)] for [x] with an outgoing
    edge and [w] without one — in Mdisjoint \ Mdistinct. *)

val unsafe_leak : string
(** Not weakly safe: the invented value reaches the output relation. *)

val divergent_counter : string
(** Weakly-safe-looking but divergent: recursive invention builds an
    infinite successor chain. Output undefined (paper's convention). *)

val tagged_edges_query : Query.t
val sinks_of_sources_query : Query.t
(** The two well-behaved programs packaged as queries ([O] output). *)
