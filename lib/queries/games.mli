(** Two-player game analysis over the [Move] relation.

    Win-move's well-founded semantics three-values positions: won
    ([Win(x)] true), lost (false), drawn (undefined). This module solves
    games by {e retrograde analysis} (Zermelo's backward induction) — an
    algorithm independent of both the alternating-fixpoint engine and the
    {!Zoo.winmove} query, used to cross-check them. *)

open Relational

type status =
  | Won   (** some move reaches a Lost position *)
  | Lost  (** every move (possibly none) reaches a Won position *)
  | Drawn (** neither, on account of cycles *)

val status_to_string : status -> string

val solve : Instance.t -> status Value.Map.t
(** Status of every position (value occurring in a [Move] fact). *)

val positions : status -> Instance.t -> Value.Set.t

val winners_query : Query.t
(** [Win/1] facts for the Won positions — extensionally equal to
    {!Zoo.winmove} (tested property). *)

val losers_query : Query.t
(** [Lose/1] facts for the Lost positions. Also in Mdisjoint. *)

val agrees_with_wellfounded : Instance.t -> bool
(** Cross-check on one game: retrograde Won = WFS true facts, retrograde
    Drawn = WFS undefined facts. *)
