open Relational

let graph_schema = Graph_gen.schema

module Pair_set = Set.Make (struct
  type t = Value.t * Value.t

  let compare (a, b) (c, d) =
    let x = Value.compare a c in
    if x <> 0 then x else Value.compare b d
end)

(* ------------------------------------------------------------------ *)
(* Undirected helpers *)

let undirected_neighbours i =
  Instance.fold
    (fun f acc ->
      if Fact.rel f <> "E" || Fact.arity f <> 2 then acc
      else
        let a = Fact.arg f 0 and b = Fact.arg f 1 in
        if Value.equal a b then acc
        else
          let link x y m =
            Value.Map.update x
              (function
                | None -> Some (Value.Set.singleton y)
                | Some s -> Some (Value.Set.add y s))
              m
          in
          link a b (link b a acc))
    i Value.Map.empty

let has_clique i k =
  if k <= 1 then not (Instance.is_empty i)
  else
    let adj = undirected_neighbours i in
    let vertices = List.map fst (Value.Map.bindings adj) in
    let adjacent a b =
      match Value.Map.find_opt a adj with
      | Some s -> Value.Set.mem b s
      | None -> false
    in
    (* Extend a clique only with vertices after the last chosen one
       (vertices are sorted), avoiding permutation blowup. *)
    let rec extend clique rest need =
      if need = 0 then true
      else
        match rest with
        | [] -> false
        | v :: rest' ->
          (List.for_all (adjacent v) clique
          && extend (v :: clique) rest' (need - 1))
          || extend clique rest' need
    in
    extend [] vertices k

let has_star i k =
  let adj = undirected_neighbours i in
  Value.Map.exists (fun _ s -> Value.Set.cardinal s >= k) adj

let triangles i =
  let out = ref Instance.empty in
  let edges = Instance.to_list (Instance.restrict_rels i [ "E" ]) in
  let mem a b = Instance.mem (Fact.make "E" [ a; b ]) i in
  List.iter
    (fun f ->
      let x = Fact.arg f 0 and y = Fact.arg f 1 in
      if not (Value.equal x y) then
        List.iter
          (fun g ->
            let y' = Fact.arg g 0 and z = Fact.arg g 1 in
            if
              Value.equal y y'
              && (not (Value.equal y z))
              && (not (Value.equal x z))
              && mem z x
            then out := Instance.add (Fact.make "O" [ x; y; z ]) !out)
          edges)
    edges;
  !out

(* ------------------------------------------------------------------ *)
(* Queries *)

(* Reachable pairs of the edge relation, as a set. *)
let reachable_pairs i =
  let base =
    Instance.fold
      (fun f acc ->
        if Fact.rel f = "E" then Pair_set.add (Fact.arg f 0, Fact.arg f 1) acc
        else acc)
      i Pair_set.empty
  in
  let rec fix reach =
    let next =
      Pair_set.fold
        (fun (a, b) acc ->
          Pair_set.fold
            (fun (b', c) acc ->
              if Value.equal b b' then Pair_set.add (a, c) acc else acc)
            base acc)
        reach reach
    in
    if Pair_set.equal next reach then reach else fix next
  in
  fix base

let facts_of_pairs rel ps =
  Pair_set.fold
    (fun (a, b) acc -> Instance.add (Fact.make rel [ a; b ]) acc)
    ps Instance.empty

(* Staged witness fast paths (see {!Relational.Query.t.witness}): the
   least fact of [expected] outside [Q(base ∪ ext)], answered on the
   int-interned kernel without materializing [Q]. Staging interns the
   base and resolves [expected] against it once; each probe re-interns
   only the extension's few facts ({!Graph_kernel.extend} keeps base
   vertex numbers valid). [Instance.to_list] is in ascending fact order,
   so the first failing fact is the head of [diff expected Q(...)] — the
   certificate the evaluating route picks. [Graph_kernel.of_rel] keeps
   only the arity-2 facts of the relation, which is exactly the
   input-schema restriction the evaluating route applies. *)

let first_failing resolved member =
  List.find_map (fun entry -> if member entry then None else Some (fst entry))
    resolved

(* Resolve an expected fact's values to base vertex numbers at staging
   time; [-1] falls back to a lookup in the extended graph per probe
   (the value can enter through the extension). *)
let resolve2 gb expected =
  List.map
    (fun f ->
      let a = Fact.arg f 0 and b = Fact.arg f 1 in
      (f, ((a, Graph_kernel.vertex gb a), (b, Graph_kernel.vertex gb b))))
    (Instance.to_list expected)

let lookup g (v, v0) = if v0 >= 0 then v0 else Graph_kernel.vertex g v

(* Do the delta's [rel] edges touch the base graph's vertex set? When
   they do not, the extension is a separate component, so reachability
   and game values between base vertices are unchanged — the staged
   base answer serves the probe. *)
let delta_touches gb rel (d : Query.delta) =
  List.exists
    (fun f ->
      Fact.rel f = rel && Fact.arity f = 2
      && (Graph_kernel.vertex gb (Fact.arg f 0) >= 0
         || Graph_kernel.vertex gb (Fact.arg f 1) >= 0))
    d.Query.facts

(* Transitive closure is monotone fact-by-fact: an expected pair already
   reachable in the base stays reachable under any extension, so staging
   discharges those entries once and each probe examines only the
   (typically empty) remainder against the extended graph. When
   [expected = Q(base)] — the scan's cross-probe cache — every entry is
   discharged and the probe is delta-blind. *)
let tc_witness ~base ~expected =
  let gb = Graph_kernel.of_rel "E" base in
  let rb = Graph_kernel.reacher gb in
  let unknown =
    List.filter
      (fun (_, ((_, va), (_, vb))) -> not (va >= 0 && vb >= 0 && rb va vb))
      (resolve2 gb expected)
  in
  fun (d : Query.delta) ->
    match unknown with
    | [] -> None
    | _ ->
      let g = Graph_kernel.extend_facts gb "E" d.Query.facts in
      let reaches = Graph_kernel.reacher g in
      first_failing unknown (fun (_, (a, b)) ->
          let va = lookup g a and vb = lookup g b in
          va >= 0 && vb >= 0 && reaches va vb)

let tc =
  Query.make ~witness:tc_witness ~name:"tc" ~input:graph_schema
    ~output:(Schema.of_list [ ("T", 2) ])
    (fun i -> facts_of_pairs "T" (reachable_pairs i))

(* The active domain of an [E]-only instance is its endpoint set, i.e.
   the kernel's vertex set. When every expected pair resolves in the
   base and the delta touches no base vertex, reachability between base
   vertices is unchanged, so the answer staged against the base closure
   serves the probe — the common case under [Disjoint] extensions. *)
let comp_tc_witness ~base ~expected =
  let gb = Graph_kernel.of_rel "E" base in
  let exp = resolve2 gb expected in
  let staged =
    if List.for_all (fun (_, ((_, va), (_, vb))) -> va >= 0 && vb >= 0) exp
    then
      let rb = Graph_kernel.reacher gb in
      Some
        (first_failing exp (fun (_, ((_, va), (_, vb))) -> not (rb va vb)))
    else None
  in
  fun (d : Query.delta) ->
    match staged with
    | Some answer when not (delta_touches gb "E" d) -> answer
    | _ ->
      let g = Graph_kernel.extend_facts gb "E" d.Query.facts in
      let reaches = Graph_kernel.reacher g in
      first_failing exp (fun (_, (a, b)) ->
          let va = lookup g a and vb = lookup g b in
          va >= 0 && vb >= 0 && not (reaches va vb))

let comp_tc =
  Query.make ~witness:comp_tc_witness ~name:"comp-tc" ~input:graph_schema
    ~output:(Schema.of_list [ ("O", 2) ])
    (fun i ->
      let reach = reachable_pairs i in
      let dom = Value.Set.elements (Instance.adom i) in
      List.fold_left
        (fun acc a ->
          List.fold_left
            (fun acc b ->
              if Pair_set.mem (a, b) reach then acc
              else Instance.add (Fact.make "O" [ a; b ]) acc)
            acc dom)
        Instance.empty dom)

let edges_as_output i =
  Instance.fold
    (fun f acc ->
      if Fact.rel f = "E" then
        Instance.add (Fact.make "O" (Fact.args f)) acc
      else acc)
    i Instance.empty

let q_clique k =
  Query.make
    ~name:(Printf.sprintf "q-clique-%d" k)
    ~input:graph_schema
    ~output:(Schema.of_list [ ("O", 2) ])
    (fun i -> if has_clique i k then Instance.empty else edges_as_output i)

let q_star k =
  Query.make
    ~name:(Printf.sprintf "q-star-%d" k)
    ~input:graph_schema
    ~output:(Schema.of_list [ ("O", 2) ])
    (fun i -> if has_star i k then Instance.empty else edges_as_output i)

let duplicate_schema j =
  Schema.of_list (List.init j (fun k -> (Printf.sprintf "R%d" (k + 1), 2)))

let q_duplicate j =
  Query.make
    ~name:(Printf.sprintf "q-duplicate-%d" j)
    ~input:(duplicate_schema j)
    ~output:(Schema.of_list [ ("O", 2) ])
    (fun i ->
      let tuples rel =
        Instance.fold
          (fun f acc ->
            if Fact.rel f = rel then
              Pair_set.add (Fact.arg f 0, Fact.arg f 1) acc
            else acc)
          i Pair_set.empty
      in
      let inter =
        List.fold_left
          (fun acc k ->
            Pair_set.inter acc (tuples (Printf.sprintf "R%d" (k + 2))))
          (tuples "R1")
          (List.init (j - 1) Fun.id)
      in
      if Pair_set.is_empty inter then
        Instance.fold
          (fun f acc ->
            if Fact.rel f = "R1" then
              Instance.add (Fact.make "O" (Fact.args f)) acc
            else acc)
          i Instance.empty
      else Instance.empty)

(* Triangles of the extended graph as vertex triples, plus whether two of
   them share no vertex — the same cyclic enumeration as {!triangles}
   (rotations repeat a triple, which cannot affect the disjointness
   test). Delta-staged: the base adjacency matrix, triangle list, and
   disjoint-pair flag are computed once per base. Adding edges preserves
   triangles, so expected facts that are base triangles are discharged
   at staging; each probe enumerates only the triangles using at least
   one delta edge — every new triangle must — and tests the disjointness
   escape against those plus the staged base list. *)
let tri2d_witness ~base ~expected =
  let gb = Graph_kernel.of_rel "E" base in
  let nb = gb.Graph_kernel.n in
  let matb = Array.make (nb * nb) false in
  Array.iteri
    (fun x ys -> List.iter (fun y -> matb.((x * nb) + y) <- true) ys)
    gb.Graph_kernel.adj;
  let trisb = ref [] in
  Array.iteri
    (fun x ys ->
      List.iter
        (fun y ->
          if x <> y then
            List.iter
              (fun z ->
                if z <> y && z <> x && matb.((z * nb) + x) then
                  trisb := (x, y, z) :: !trisb)
              gb.Graph_kernel.adj.(y))
        ys)
    gb.Graph_kernel.adj;
  let trisb = !trisb in
  let disjoint (a, b, c) (d, e, f) =
    a <> d && a <> e && a <> f && b <> d && b <> e && b <> f && c <> d
    && c <> e && c <> f
  in
  let base_two_disjoint =
    List.exists (fun t1 -> List.exists (fun t2 -> disjoint t1 t2) trisb) trisb
  in
  let exp =
    List.map
      (fun f ->
        let x = Fact.arg f 0 and y = Fact.arg f 1 and z = Fact.arg f 2 in
        ( f,
          ( (x, Graph_kernel.vertex gb x),
            (y, Graph_kernel.vertex gb y),
            (z, Graph_kernel.vertex gb z) ) ))
      (Instance.to_list expected)
  in
  let is_base_triangle (_, ((_, vx), (_, vy), (_, vz))) =
    vx >= 0 && vy >= 0 && vz >= 0 && vx <> vy && vy <> vz && vx <> vz
    && matb.((vx * nb) + vy)
    && matb.((vy * nb) + vz)
    && matb.((vz * nb) + vx)
  in
  let unknown = List.filter (fun e -> not (is_base_triangle e)) exp in
  fun (d : Query.delta) ->
    let g = Graph_kernel.extend_facts gb "E" d.Query.facts in
    let n = g.Graph_kernel.n in
    (* Delta edges by extended vertex number, base duplicates dropped;
       base adjacency plus this list is the extended edge test. *)
    let dedges =
      List.filter_map
        (fun f ->
          if Fact.rel f = "E" && Fact.arity f = 2 then
            let u = Graph_kernel.vertex g (Fact.arg f 0)
            and v = Graph_kernel.vertex g (Fact.arg f 1) in
            if u < nb && v < nb && matb.((u * nb) + v) then None
            else Some (u, v)
          else None)
        d.Query.facts
    in
    let edge u v =
      (u < nb && v < nb && matb.((u * nb) + v))
      || List.exists (fun (a, b) -> a = u && b = v) dedges
    in
    let new_tris = ref [] in
    List.iter
      (fun (x, y) ->
        if x <> y then
          for z = 0 to n - 1 do
            if z <> x && z <> y && edge y z && edge z x then
              new_tris := (x, y, z) :: !new_tris
          done)
      dedges;
    let new_tris = !new_tris in
    let two_disjoint =
      base_two_disjoint
      || List.exists
           (fun t1 ->
             List.exists (fun t2 -> disjoint t1 t2) trisb
             || List.exists (fun t2 -> disjoint t1 t2) new_tris)
           new_tris
    in
    if two_disjoint then match exp with (f, _) :: _ -> Some f | [] -> None
    else
      first_failing unknown (fun (_, (x, y, z)) ->
          let vx = lookup g x and vy = lookup g y and vz = lookup g z in
          vx >= 0 && vy >= 0 && vz >= 0 && vx <> vy && vy <> vz && vx <> vz
          && edge vx vy && edge vy vz && edge vz vx)

let triangles_unless_two_disjoint =
  Query.make ~witness:tri2d_witness ~name:"triangles-unless-two-disjoint"
    ~input:graph_schema
    ~output:(Schema.of_list [ ("O", 3) ])
    (fun i ->
      let ts = triangles i in
      (* Two domain-disjoint triangles: two O-facts sharing no vertex. *)
      let facts = Instance.to_list ts in
      let disjoint_pair_exists =
        List.exists
          (fun f ->
            List.exists
              (fun g ->
                Value.Set.is_empty
                  (Value.Set.inter (Fact.adom f) (Fact.adom g)))
              facts)
          facts
      in
      if disjoint_pair_exists then Instance.empty else ts)

(* Win-move: alternating fixpoint over the Move graph, independent of the
   Datalog engine so that engine and query can cross-check each other. *)
let winmove_schema = Schema.of_list [ ("Move", 2) ]

(* Win-move is not monotone, but a delta touching no base vertex is a
   separate game component: base positions keep their game values, so
   the answer staged against the base game serves every such probe. *)
let winmove_witness ~base ~expected =
  let gb = Graph_kernel.of_rel "Move" base in
  let exp =
    List.map
      (fun f ->
        let x = Fact.arg f 0 in
        (f, (x, Graph_kernel.vertex gb x)))
      (Instance.to_list expected)
  in
  let staged =
    if List.for_all (fun (_, (_, v)) -> v >= 0) exp then begin
      let wb = Graph_kernel.wins gb in
      Some (first_failing exp (fun (_, (_, v)) -> wb.(v)))
    end
    else None
  in
  fun (d : Query.delta) ->
    match staged with
    | Some answer when not (delta_touches gb "Move" d) -> answer
    | _ ->
      let g = Graph_kernel.extend_facts gb "Move" d.Query.facts in
      let w = Graph_kernel.wins g in
      first_failing exp (fun (_, x) ->
          let v = lookup g x in
          v >= 0 && w.(v))

let winmove =
  Query.make ~witness:winmove_witness ~name:"win-move" ~input:winmove_schema
    ~output:(Schema.of_list [ ("Win", 1) ])
    (fun i ->
      let moves =
        Instance.fold
          (fun f acc ->
            if Fact.rel f = "Move" then
              Value.Map.update (Fact.arg f 0)
                (function
                  | None -> Some [ Fact.arg f 1 ]
                  | Some l -> Some (Fact.arg f 1 :: l))
                acc
            else acc)
          i Value.Map.empty
      in
      let succ x =
        match Value.Map.find_opt x moves with Some l -> l | None -> []
      in
      let vertices = Value.Set.elements (Instance.adom i) in
      (* Alternating fixpoint on the set of won positions: won(x) iff some
         successor is not in the current overestimate of "possibly won". *)
      let step possibly_won =
        List.filter
          (fun x ->
            List.exists (fun y -> not (Value.Set.mem y possibly_won)) (succ x))
          vertices
        |> Value.Set.of_list
      in
      let rec fix under over =
        let under' = step over in
        let over' = step under' in
        if Value.Set.equal under under' && Value.Set.equal over over' then
          under
        else fix under' over'
      in
      let won = fix Value.Set.empty (step Value.Set.empty) in
      Value.Set.fold
        (fun x acc -> Instance.add (Fact.make "Win" [ x ]) acc)
        won Instance.empty)

(* The doubled-program evaluation of win-move: one connected SP-Datalog
   step program, iterated. The step reads the previous round's win set as
   an edb relation P, so each round is an honest stratified evaluation;
   the OCaml loop plays the role of the program doubling. *)
let winmove_doubled =
  let step_program =
    Datalog.Parser.parse_program "W(x) :- Move(x,y), not P(y)."
  in
  let rename from_rel to_rel i =
    Instance.fold
      (fun f acc ->
        if Fact.rel f = from_rel then
          Instance.add (Fact.make to_rel (Fact.args f)) acc
        else acc)
      i Instance.empty
  in
  Query.make ~name:"win-move-doubled" ~input:winmove_schema
    ~output:(Schema.of_list [ ("Win", 1) ])
    (fun i ->
      let moves = Instance.restrict_rels i [ "Move" ] in
      let step prev =
        let input = Instance.union moves (rename "W" "P" prev) in
        Instance.restrict_rels
          (Datalog.Eval.stratified_exn step_program input)
          [ "W" ]
      in
      let rec fix under over =
        let under' = step over in
        let over' = step under' in
        if Instance.equal under under' && Instance.equal over over' then under
        else fix under' over'
      in
      let under = fix Instance.empty (step Instance.empty) in
      rename "W" "Win" under)

(* ------------------------------------------------------------------ *)
(* Datalog sources *)

let tc_program = "T(x,y) :- E(x,y).  T(x,z) :- T(x,y), E(y,z)."

let comp_tc_program =
  "T(x,y) :- E(x,y).\n\
   T(x,z) :- T(x,y), E(y,z).\n\
   O(x,y) :- Adom(x), Adom(y), not T(x,y)."

let example_51_p1 =
  "T(x) :- E(x,y), E(y,z), E(z,x), y != x, y != z, x != z.\n\
   O(x) :- Adom(x), not T(x)."

let example_51_p2 =
  "T(x,y,z) :- E(x,y), E(y,z), E(z,x), y != x, y != z, x != z.\n\
   D(x1) :- T(x1,x2,x3), T(y1,y2,y3), x1 != y1, x1 != y2, x1 != y3, x2 != \
   y1, x2 != y2, x2 != y3, x3 != y1, x3 != y2, x3 != y3.\n\
   O(x) :- Adom(x), not D(x)."

let winmove_program = "Win(x) :- Move(x,y), not Win(y)."

let undirected_rules =
  "U(x,y) :- E(x,y).\nU(x,y) :- E(y,x).\n"

let q_clique3_program =
  undirected_rules
  ^ "W(u) :- Adom(u), U(x,y), U(y,z), U(x,z), x != y, y != z, x != z.\n\
     O(x,y) :- E(x,y), not W(x)."

let q_star2_program =
  undirected_rules
  ^ "W(u) :- Adom(u), U(c,x), U(c,y), x != y, x != c, y != c.\n\
     O(x,y) :- E(x,y), not W(x)."
