open Relational

(* Int-interned view of one binary relation of an instance.

   The monotonicity scan probes millions of tiny graphs (a handful of
   edges each); the zoo's reference evaluators answer each probe by
   materializing the query output as a [Fact.Set] over [Value.t], which
   is dominated by value comparisons and set allocation. The kernel
   instead interns the endpoints into [0..n-1] and runs the fixpoints on
   flat arrays, so the zoo queries can expose staged
   {!Relational.Query.t.witness} fast paths whose answers are provably
   the same facts, without the intermediate instances. The staged shape
   matches {!extend}: a scan interns the base once and re-interns only
   each extension's few facts, with base vertex numbers preserved. *)

type t = {
  n : int;
  values : Value.t array;  (* interning order: first occurrence *)
  adj : int list array;  (* successors *)
}

let empty = { n = 0; values = [||]; adj = [||] }

(* Intern endpoints by linear scan: the scanned graphs have at most a
   dozen vertices, where an array scan beats any hashing. *)
let vertex g v =
  let rec go i =
    if i = g.n then -1 else if Value.equal g.values.(i) v then i else go (i + 1)
  in
  go 0

let edges_of rel i =
  Instance.fold
    (fun f acc ->
      if Fact.rel f = rel && Fact.arity f = 2 then
        (Fact.arg f 0, Fact.arg f 1) :: acc
      else acc)
    i []

let add_edges g edges =
  match edges with
  | [] -> g
  | _ ->
    let values = Array.make (g.n + (2 * List.length edges)) (Value.int 0) in
    Array.blit g.values 0 values 0 g.n;
    let n = ref g.n in
    let intern v =
      let rec go i =
        if i = !n then begin
          values.(i) <- v;
          incr n;
          i
        end
        else if Value.equal values.(i) v then i
        else go (i + 1)
      in
      go 0
    in
    let edges = List.rev_map (fun (a, b) -> (intern a, intern b)) edges in
    let n = !n in
    let adj = Array.make n [] in
    Array.blit g.adj 0 adj 0 g.n;
    List.iter (fun (a, b) -> adj.(a) <- b :: adj.(a)) edges;
    { n; values = Array.sub values 0 n; adj }

(* Stage spans nest under whatever scan span is ambient at call time
   (e.g. scan/base/stage/kernel.intern), so [calm profile] can say which
   kernel stage of a witness dominates. No-ops unless profiling. *)
let of_rel rel i =
  Observe.Profile.span "kernel.intern" @@ fun () ->
  add_edges empty (edges_of rel i)

let extend g rel i =
  Observe.Profile.span "kernel.intern" @@ fun () ->
  add_edges g (edges_of rel i)

let extend_facts g rel facts =
  Observe.Profile.span "kernel.intern" @@ fun () ->
  add_edges g
    (List.filter_map
       (fun f ->
         if Fact.rel f = rel && Fact.arity f = 2 then
           Some (Fact.arg f 0, Fact.arg f 1)
         else None)
       facts)

(* Transitive closure (paths of length >= 1), row-major [n * n] matrix:
   Floyd–Warshall on at most a dozen vertices. *)
let reach g =
  Observe.Profile.span "kernel.reach" @@ fun () ->
  let n = g.n in
  let r = Array.make (n * n) false in
  Array.iteri
    (fun x succs -> List.iter (fun y -> r.((x * n) + y) <- true) succs)
    g.adj;
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      if r.((i * n) + k) then
        for j = 0 to n - 1 do
          if r.((k * n) + j) then r.((i * n) + j) <- true
        done
    done
  done;
  r

let reaches g r a b =
  let va = vertex g a and vb = vertex g b in
  va >= 0 && vb >= 0 && r.((va * g.n) + vb)

(* Reachability probe with per-source memoized DFS: the scan's probes ask
   about few distinct sources (the expected facts' first components), so
   computing only their rows beats the full closure. *)
let reacher g =
  let memo = Array.make (max g.n 1) [||] in
  fun a b ->
    let row =
      let cached = memo.(a) in
      if Array.length cached > 0 then cached
      else
        Observe.Profile.span "kernel.dfs" @@ fun () ->
        let row = Array.make g.n false in
        let rec dfs v =
          List.iter
            (fun y ->
              if not row.(y) then begin
                row.(y) <- true;
                dfs y
              end)
            g.adj.(v)
        in
        dfs a;
        memo.(a) <- row;
        row
    in
    row.(b)

(* Won positions of the move graph: the alternating fixpoint of
   [step S = { x | some move x -> y with y not in S }], iterated from
   (empty, step empty) until both the under- and over-estimate are
   stationary — the same iteration as {!Zoo.winmove}, on bit arrays. *)
let wins g =
  Observe.Profile.span "kernel.wins" @@ fun () ->
  let step s =
    Array.init g.n (fun x -> List.exists (fun y -> not s.(y)) g.adj.(x))
  in
  let rec fix under over =
    let under' = step over in
    let over' = step under' in
    if under = under' && over = over' then under else fix under' over'
  in
  let bottom = Array.make g.n false in
  fix bottom (step bottom)
