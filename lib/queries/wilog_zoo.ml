let tagged_edges =
  "Tag(*, x, y) :- E(x, y).\n\
   O(x, y) :- Tag(t, x, y)."

let sinks_of_sources =
  "Tag(*, x, y) :- E(x, y).\n\
   HasOut(x) :- Tag(t, x, y).\n\
   O(x, w) :- HasOut(x), Adom(w), not HasOut(w)."

let unsafe_leak = "O(*, x) :- V(x)."

let divergent_counter =
  "N(*, x) :- V(x).\n\
   N(*, n) :- N(n, x)."

let force_query name src =
  match
    Datalog.Ilog.query ~name ~outputs:[ "O" ]
      (Datalog.Parser.parse_program src)
  with
  | Ok q -> q
  | Error e -> invalid_arg ("Wilog_zoo: " ^ name ^ ": " ^ e)

let tagged_edges_query = force_query "tagged-edges" tagged_edges
let sinks_of_sources_query = force_query "sinks-of-sources" sinks_of_sources
