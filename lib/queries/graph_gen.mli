(** Seeded graph generators over the binary edge relation [E] (the input
    schema of almost every query in the paper). *)

open Relational

val schema : Schema.t
(** [{E/2}]. *)

val edge : int -> int -> Fact.t
val of_edges : (int * int) list -> Instance.t

val path : int -> Instance.t
(** [path n]: edges 0→1→...→n. *)

val cycle : int -> Instance.t
(** [cycle n]: a directed cycle on vertices 0..n-1. *)

val clique : ?offset:int -> int -> Instance.t
(** [clique n]: all edges between [n] distinct vertices (both directions,
    no self-loops), vertices [offset..offset+n-1]. *)

val star : ?center:int -> ?first_spoke:int -> int -> Instance.t
(** [star k]: edges center→spoke for [k] spokes. *)

val erdos_renyi : seed:int -> nodes:int -> edges:int -> Instance.t
(** [edges] directed edges sampled uniformly with replacement (self-loops
    allowed), deterministic in [seed]. *)

val disjoint_union : Instance.t -> Instance.t -> Instance.t
(** Union after shifting the second instance's integer vertices past the
    first's maximum, making the two parts domain-disjoint.
    @raise Invalid_argument if either instance has non-integer values. *)

val game : seed:int -> nodes:int -> edges:int -> Instance.t
(** Like {!erdos_renyi} but over the [Move] relation (for win-move). *)
