(* A deterministic JSON emitter — enough for the diagnostic and SARIF
   renderers without an external dependency. Objects print their fields
   in the order given, so output is byte-stable across runs. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec emit buf ~indent ~level j =
  let pad n = String.make (n * indent) ' ' in
  match j with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Int k -> Buffer.add_string buf (string_of_int k)
  | String s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
    Buffer.add_string buf "[\n";
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf (pad (level + 1));
        emit buf ~indent ~level:(level + 1) item)
      items;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (pad level);
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    Buffer.add_string buf "{\n";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf (pad (level + 1));
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape k);
        Buffer.add_string buf "\": ";
        emit buf ~indent ~level:(level + 1) v)
      fields;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (pad level);
    Buffer.add_char buf '}'

let to_string ?(indent = 2) j =
  let buf = Buffer.create 256 in
  emit buf ~indent ~level:0 j;
  Buffer.contents buf
