open Datalog
module Span = Ast.Span

(* The rule-based lint engine. Each rule emits structured diagnostics
   (stable CALM codes, spans, notes, fix-its); see Diagnostic.codes for
   the registry. Works on located programs so ill-formed rules are
   reported instead of rejected. *)

type options = {
  claim : Fragment.t option;
      (** fragment the program is claimed to inhabit; failures to meet the
          claim are errors (CALM004/005/006/013) *)
  edb : string list;  (** predicates declared extensional *)
  outputs : string list;  (** output relations; [] = unknown *)
}

let default_options = { claim = None; edb = []; outputs = [] }

let claim_of_string = function
  | "datalog" | "positive" -> Some Fragment.Positive
  | "ineq" -> Some Fragment.Positive_ineq
  | "sp" -> Some Fragment.Semi_positive
  | "con" -> Some Fragment.Connected_stratified
  | "semicon" -> Some Fragment.Semi_connected_stratified
  | "stratified" -> Some Fragment.Stratified
  | _ -> None

let claim_to_string = function
  | Fragment.Positive -> "datalog"
  | Fragment.Positive_ineq -> "ineq"
  | Fragment.Semi_positive -> "sp"
  | Fragment.Connected_stratified -> "con"
  | Fragment.Semi_connected_stratified -> "semicon"
  | Fragment.Stratified | Fragment.Unstratifiable -> "stratified"

(* In-file configuration: a comment line of the shape
     % calm-lint: claim=sp outputs=O,T edb=E,Move
   merged over the caller's options (the pragma wins). *)
let pragma_options ~options src =
  let apply opts line =
    let line = String.trim line in
    let marker = "calm-lint:" in
    match String.index_opt line '%' with
    | Some 0 ->
      let body = String.sub line 1 (String.length line - 1) |> String.trim in
      if String.length body >= String.length marker
         && String.sub body 0 (String.length marker) = marker
      then begin
        let args =
          String.sub body (String.length marker)
            (String.length body - String.length marker)
          |> String.split_on_char ' '
          |> List.concat_map (String.split_on_char '\t')
          |> List.filter (fun s -> s <> "")
        in
        List.fold_left
          (fun opts arg ->
            match String.index_opt arg '=' with
            | None -> opts
            | Some i ->
              let key = String.sub arg 0 i in
              let value =
                String.sub arg (i + 1) (String.length arg - i - 1)
              in
              let split v = String.split_on_char ',' v |> List.filter (( <> ) "") in
              (match key with
              | "claim" -> { opts with claim = claim_of_string value }
              | "outputs" -> { opts with outputs = split value }
              | "edb" -> { opts with edb = split value }
              | _ -> opts))
          opts args
      end
      else opts
    | _ -> opts
  in
  List.fold_left apply options (String.split_on_char '\n' src)

(* ------------------------------------------------------------------ *)

let claim_satisfied claim p =
  match claim with
  | Fragment.Positive -> Fragment.is_positive p
  | Fragment.Positive_ineq -> Fragment.is_positive_with_ineq p
  | Fragment.Semi_positive -> Fragment.is_semi_positive p
  | Fragment.Connected_stratified -> Connectivity.is_connected_program p
  | Fragment.Semi_connected_stratified -> Connectivity.is_semi_connected p
  | Fragment.Stratified -> Stratify.is_stratifiable p
  | Fragment.Unstratifiable -> not (Stratify.is_stratifiable p)

(* Alpha-canonical form: variables renamed to _v0, _v1, ... in order of
   first occurrence across head, pos, neg, ineq. Two alpha-equivalent
   rules have equal canonical forms. *)
let canonicalize (r : Ast.rule) =
  let tbl = Hashtbl.create 8 in
  let rename v =
    match Hashtbl.find_opt tbl v with
    | Some v' -> v'
    | None ->
      let v' = Printf.sprintf "_v%d" (Hashtbl.length tbl) in
      Hashtbl.replace tbl v v';
      v'
  in
  let term = function Ast.Var v -> Ast.Var (rename v) | c -> c in
  let atom (a : Ast.atom) = { a with Ast.terms = List.map term a.terms } in
  {
    Ast.head = atom r.head;
    pos = List.map atom r.pos;
    neg = List.map atom r.neg;
    ineq = List.map (fun (a, b) -> (term a, term b)) r.ineq;
  }

let subset_atoms xs ys = List.for_all (fun a -> List.exists (Ast.equal_atom a) ys) xs

let subset_ineqs xs ys =
  List.for_all
    (fun (a, b) ->
      List.exists (fun (c, d) -> Ast.equal_term a c && Ast.equal_term b d) ys)
    xs

(* Span of the first body literal (or head) mentioning variable [v]. *)
let span_of_var (lr : Ast.located_rule) v =
  let in_head = List.mem v (Ast.vars_of_atom lr.lhead.value) in
  if in_head then lr.lhead.span
  else
    let hit =
      List.find_opt
        (fun lit ->
          match lit with
          | Ast.Lpos a | Ast.Lneg a -> List.mem v (Ast.vars_of_atom a.value)
          | Ast.Lineq { value = (a, b); _ } ->
            List.mem v (Ast.vars_of_term a @ Ast.vars_of_term b))
        lr.lbody
    in
    match hit with
    | Some (Ast.Lpos a) | Some (Ast.Lneg a) -> a.span
    | Some (Ast.Lineq i) -> i.span
    | None -> lr.lspan

let severity_if cond = if cond then Diagnostic.Error else Diagnostic.Warning

(* ------------------------------------------------------------------ *)
(* The engine *)

let lint_program ?(options = default_options) (lp : Ast.located_program) =
  let p = Ast.strip lp in
  let ilp = List.mapi (fun i lr -> (i, lr)) lp in
  let ip = List.mapi (fun i r -> (i, r)) p in
  let heads = List.map (fun (r : Ast.rule) -> r.Ast.head.pred) p in
  let is_idb q = List.mem q heads in
  let head_span_of q =
    List.find_map
      (fun (lr : Ast.located_rule) ->
        if lr.lhead.value.Ast.pred = q then Some lr.lhead.span else None)
      lp
  in
  let diags = ref [] in
  let emit ?notes ?fixits ~code ~severity ~span message =
    diags := Diagnostic.make ?notes ?fixits ~code ~severity ~span message :: !diags
  in

  (* -- per-rule checks -------------------------------------------- *)
  List.iter
    (fun (i, (lr : Ast.located_rule)) ->
      let r = List.assoc i ip in
      (* CALM012: no positive literal at all *)
      if r.Ast.pos = [] then
        emit ~code:"CALM012" ~severity:Diagnostic.Error ~span:lr.lhead.span
          (Printf.sprintf
             "rule for %s has no positive body literal; range restriction \
              cannot hold"
             r.Ast.head.pred)
      else begin
        (* CALM001: unsafe variables (head, negation, inequality) *)
        let bound = List.concat_map Ast.vars_of_atom r.Ast.pos in
        List.iter
          (fun v ->
            if not (List.mem v bound) then
              emit ~code:"CALM001" ~severity:Diagnostic.Error
                ~span:(span_of_var lr v)
                (Printf.sprintf
                   "variable %s is not bound by a positive body atom" v))
          (Ast.vars_of_rule r)
      end;
      (* CALM002: invention slots in body literals *)
      List.iter
        (fun lit ->
          let flag (a : Ast.atom Ast.located) negated =
            if a.value.Ast.invents then
              emit ~code:"CALM002" ~severity:Diagnostic.Error ~span:a.span
                ~fixits:
                  [
                    {
                      Diagnostic.fix_span = a.span;
                      replacement =
                        (let plain =
                           Format.asprintf "%a" Ast.pp_atom
                             { a.value with Ast.invents = false }
                         in
                         if negated then "not " ^ plain else plain);
                    };
                  ]
                (Printf.sprintf
                   "invention slot in a body literal of %s; '*' invents \
                    values only in rule heads"
                   a.value.Ast.pred)
          in
          match lit with
          | Ast.Lpos a -> flag a false
          | Ast.Lneg a -> flag a true
          | Ast.Lineq _ -> ())
        lr.lbody;
      (* CALM009: reserved or declared-extensional predicate as head *)
      let hp = lr.lhead.value.Ast.pred in
      if hp = Adom.predicate then
        emit ~code:"CALM009" ~severity:Diagnostic.Error ~span:lr.lhead.span
          (Printf.sprintf
             "%s is the reserved active-domain predicate and cannot head a \
              rule"
             Adom.predicate)
      else if List.mem hp options.edb then
        emit ~code:"CALM009" ~severity:Diagnostic.Error ~span:lr.lhead.span
          (Printf.sprintf
             "predicate %s is declared extensional but appears as a rule head"
             hp))
    ilp;

  (* -- CALM007: duplicate / subsumed rules -------------------------- *)
  let canon = Array.of_list (List.map (fun (_, r) -> canonicalize r) ip) in
  let n = Array.length canon in
  (* ci subsumes cj when (after shared canonicalization) the heads agree
     and ci's body literals are among cj's: the variable renaming
     canon_j⁻¹ ∘ canon_i then witnesses classical subsumption, so rule j
     can never fire without rule i deriving the same head fact. *)
  let body_subset ci cj =
    Ast.equal_atom ci.Ast.head cj.Ast.head
    && subset_atoms ci.Ast.pos cj.Ast.pos
    && subset_atoms ci.Ast.neg cj.Ast.neg
    && subset_ineqs ci.Ast.ineq cj.Ast.ineq
  in
  for j = 0 to n - 1 do
    let cj = canon.(j) in
    let lrj = List.nth lp j in
    let found = ref false in
    for i = 0 to n - 1 do
      if (not !found) && i <> j then begin
        let ci = canon.(i) in
        let dup = body_subset ci cj && body_subset cj ci in
        if dup && i < j then begin
          found := true;
          emit ~code:"CALM007" ~severity:Diagnostic.Warning
            ~span:lrj.Ast.lspan
            ~notes:
              [
                Diagnostic.note ~span:(List.nth lp i).Ast.lspan
                  (Printf.sprintf "first occurrence (rule %d)" (i + 1));
              ]
            (Printf.sprintf "rule duplicates rule %d" (i + 1))
        end
        else if (not dup) && body_subset ci cj then begin
          found := true;
          emit ~code:"CALM007" ~severity:Diagnostic.Warning
            ~span:lrj.Ast.lspan
            ~notes:
              [
                Diagnostic.note ~span:(List.nth lp i).Ast.lspan
                  (Printf.sprintf "subsuming rule %d" (i + 1));
              ]
            (Printf.sprintf
               "rule is subsumed by rule %d (same head, its body is a \
                subset of this one)"
               (i + 1))
        end
      end
    done
  done;

  (* -- CALM011: arity conflicts ------------------------------------- *)
  let arity_conflicts = ref false in
  let seen_arity : (string, int * Span.t) Hashtbl.t = Hashtbl.create 16 in
  let visit_atom (a : Ast.atom Ast.located) =
    let ar = Ast.atom_arity a.value in
    match Hashtbl.find_opt seen_arity a.value.Ast.pred with
    | None -> Hashtbl.replace seen_arity a.value.Ast.pred (ar, a.span)
    | Some (ar0, span0) ->
      if ar <> ar0 then begin
        arity_conflicts := true;
        emit ~code:"CALM011" ~severity:Diagnostic.Error ~span:a.span
          ~notes:
            [
              Diagnostic.note ~span:span0
                (Printf.sprintf "first used with arity %d here" ar0);
            ]
          (Printf.sprintf "predicate %s used with arity %d, previously %d"
             a.value.Ast.pred ar ar0)
      end
  in
  List.iter
    (fun (lr : Ast.located_rule) ->
      visit_atom lr.lhead;
      List.iter
        (function
          | Ast.Lpos a | Ast.Lneg a -> visit_atom a
          | Ast.Lineq _ -> ())
        lr.lbody)
    lp;

  (* The semantic passes need a consistent schema. *)
  if not !arity_conflicts then begin
    let edb = Ast.edb p in
    let stratifiable = Stratify.is_stratifiable p in
    let semicon = Connectivity.is_semi_connected p in

    (* -- CALM003: unstratifiable, with the cycle as witness -------- *)
    if not stratifiable then begin
      match Certificate.find_negative_cycle p with
      | Some cycle ->
        let render =
          String.concat " -> "
            (List.map
               (fun (s : Certificate.cycle_step) ->
                 if s.via_negation then "not " ^ s.step_pred else s.step_pred)
               cycle)
        in
        let k = List.length cycle in
        (* Anchor on a negative step's literal. *)
        let anchor =
          List.mapi (fun j s -> (j, s)) cycle
          |> List.find_map (fun (j, (s : Certificate.cycle_step)) ->
                 if not s.Certificate.via_negation then None
                 else
                   let prev =
                     (List.nth cycle ((j + k - 1) mod k)).Certificate.step_pred
                   in
                   let r = List.nth p s.step_rule in
                   let lr = List.nth lp s.step_rule in
                   List.mapi (fun jj (a : Ast.atom) -> (jj, a)) r.Ast.neg
                   |> List.find_map (fun (jj, (a : Ast.atom)) ->
                          if a.pred = prev then Some (Ast.neg_span lr jj)
                          else None))
        in
        let notes =
          List.map
            (fun (s : Certificate.cycle_step) ->
              Diagnostic.note
                ~span:(List.nth lp s.step_rule).Ast.lspan
                (Printf.sprintf "%s derived here (rule %d)" s.step_pred
                   (s.step_rule + 1)))
            cycle
        in
        emit ~code:"CALM003" ~severity:Diagnostic.Error
          ~span:(Option.value ~default:Span.dummy anchor)
          ~notes
          (Printf.sprintf
             "program is not syntactically stratifiable: cycle through \
              negation %s -> %s"
             render
             (List.nth cycle (k - 1)).Certificate.step_pred)
      | None ->
        emit ~code:"CALM003" ~severity:Diagnostic.Error ~span:Span.dummy
          "program is not syntactically stratifiable"
    end;

    (* -- CALM004: unconnected rules, with graph+ components -------- *)
    let disconnections =
      List.filter_map
        (fun (i, r) ->
          if Connectivity.rule_is_connected r then None
          else Some (i, Certificate.var_components r))
        ip
    in
    List.iter
      (fun (i, components) ->
        let lr = List.nth lp i in
        emit ~code:"CALM004"
          ~severity:
            (severity_if (options.claim = Some Fragment.Connected_stratified))
          ~span:lr.Ast.lhead.span
          ~notes:
            (List.map
               (fun c ->
                 Diagnostic.note
                   (Printf.sprintf "variable component: {%s}"
                      (String.concat ", " c)))
               components)
          (Printf.sprintf
             "rule is unconnected: graph+ of its positive body has %d \
              variable components"
             (List.length components)))
      disconnections;

    (* -- CALM005: in-set negation breaking semi-connectedness ------ *)
    if stratifiable && disconnections <> [] then begin
      let forced = Connectivity.forced_final_stratum p in
      let forced_note =
        Diagnostic.note
          (Printf.sprintf "forced final stratum: {%s}"
             (String.concat ", " forced))
      in
      let source_note =
        match disconnections with
        | (i, _) :: _ ->
          [
            Diagnostic.note ~span:(List.nth lp i).Ast.lspan
              (Printf.sprintf "forced by this unconnected rule (rule %d)"
                 (i + 1));
          ]
        | [] -> []
      in
      List.iter
        (fun (i, (r : Ast.rule)) ->
          if List.mem r.Ast.head.pred forced then
            List.iteri
              (fun j (a : Ast.atom) ->
                if List.mem a.pred forced then
                  emit ~code:"CALM005"
                    ~severity:
                      (severity_if
                         (options.claim = Some Fragment.Semi_connected_stratified))
                    ~span:(Ast.neg_span (List.nth lp i) j)
                    ~notes:(forced_note :: source_note)
                    (Printf.sprintf
                       "negation of %s inside the forced final stratum \
                        breaks semi-connectedness"
                       a.pred))
              r.Ast.neg)
        ip
    end;

    (* -- CALM006: idb negation under an SP claim ------------------- *)
    if options.claim = Some Fragment.Semi_positive then
      List.iter
        (fun (i, (r : Ast.rule)) ->
          List.iteri
            (fun j (a : Ast.atom) ->
              if is_idb a.pred then
                emit ~code:"CALM006" ~severity:Diagnostic.Error
                  ~span:(Ast.neg_span (List.nth lp i) j)
                  ~notes:
                    (match head_span_of a.pred with
                    | Some sp ->
                      [
                        Diagnostic.note ~span:sp
                          (Printf.sprintf "%s is derived here" a.pred);
                      ]
                    | None -> [])
                  (Printf.sprintf
                     "negation of intensional predicate %s in a program \
                      claimed SP-Datalog"
                     a.pred))
            r.Ast.neg)
        ip;

    (* -- CALM013: claimed fragment not met ------------------------- *)
    (match options.claim with
    | Some claim when not (claim_satisfied claim p) ->
      emit ~code:"CALM013" ~severity:Diagnostic.Error ~span:Span.dummy
        (Printf.sprintf "program claimed %s but certified as %s"
           (Fragment.to_string claim)
           (Fragment.to_string (Fragment.classify p)))
    | _ -> ());

    (* -- CALM008: predicates unused by any output ------------------ *)
    if options.outputs <> [] && List.for_all is_idb options.outputs then begin
      let reachable =
        List.concat_map (fun o -> Stratify.depends_on_trans p o) options.outputs
        @ options.outputs
        |> List.sort_uniq String.compare
      in
      List.iter
        (fun q ->
          if
            (not (List.mem q reachable))
            && q <> Adom.predicate
          then
            match head_span_of q with
            | Some sp ->
              emit ~code:"CALM008" ~severity:Diagnostic.Warning ~span:sp
                (Printf.sprintf
                   "predicate %s does not contribute to any output relation \
                    (%s)"
                   q
                   (String.concat ", " options.outputs))
            | None -> ())
        (List.sort_uniq String.compare heads)
    end;

    (* -- CALM010: points of order ---------------------------------- *)
    List.iter
      (fun (i, (r : Ast.rule)) ->
        List.iteri
          (fun j (a : Ast.atom) ->
            let severity_kind =
              if Relational.Schema.mem edb a.pred then
                Points_of_order.Edb_negation
              else if semicon then Points_of_order.Stratified_negation
              else Points_of_order.Blocking_negation
            in
            let sev, text =
              match severity_kind with
              | Points_of_order.Edb_negation ->
                ( Diagnostic.Info,
                  Printf.sprintf
                    "point of order (edb-negation): absence of %s facts must \
                     be certain; F1 coordination (absence information) \
                     suffices"
                    a.pred )
              | Points_of_order.Stratified_negation ->
                ( Diagnostic.Info,
                  Printf.sprintf
                    "point of order (stratified-negation): component \
                     completeness for %s suffices (F2)"
                    a.pred )
              | Points_of_order.Blocking_negation ->
                ( Diagnostic.Warning,
                  Printf.sprintf
                    "point of order (blocking-negation): negation of %s \
                     requires global coordination"
                    a.pred )
            in
            emit ~code:"CALM010" ~severity:sev
              ~span:(Ast.neg_span (List.nth lp i) j)
              text)
          r.Ast.neg)
      ip
  end;

  Diagnostic.sort !diags

let lint_source ?(options = default_options) src =
  let options = pragma_options ~options src in
  match Parser.parse_program_located src with
  | lp -> lint_program ~options lp
  | exception Parser.Syntax_error { line; col; message } ->
    let span =
      if line = 0 then Span.dummy
      else
        Span.make
          ~start:{ Span.line; col }
          ~stop:{ Span.line; col = col + 1 }
    in
    [ Diagnostic.make ~code:"CALM000" ~severity:Diagnostic.Error ~span message ]
