open Datalog

(* Machine-checkable evidence for fragment membership (paper Figure 2).

   A certificate pairs the classifier's verdict with (a) positive
   evidence that the program lies in the claimed fragment and (b) one
   counter-witness per strictly more specific fragment. The point of the
   split: {!check} validates a certificate by local inspection of the
   witnesses — spanning trees are verified edge by edge, stratification
   witnesses constraint by constraint, cycles step by step — without
   re-running the classifier's search. classify ≡ certify ∘ check is the
   test wall. *)

(* ------------------------------------------------------------------ *)
(* Witnesses *)

type spanning_edge = {
  from_var : Ast.var;
  to_var : Ast.var;
  via_atom : int;  (** index into the rule's positive body *)
}

type connectivity_witness = {
  cw_rule : int;
  tree : spanning_edge list;
      (** edges that connect every variable of [graph+(ϕ)]; empty for
          rules with at most one positive-body variable *)
}

type disconnection_witness = {
  dw_rule : int;
  components : Ast.var list list;
      (** a partition of the rule's positive-body variables into ≥ 2
          parts no positive atom bridges *)
}

type stratification_witness = (string * int) list
(** idb predicate → stratum number; valid iff every rule satisfies
    ρ(body) ≤ ρ(head) for positive and ρ(body) < ρ(head) for negative
    idb dependencies. *)

type cycle_step = {
  step_pred : string;
  step_rule : int;
  via_negation : bool;
      (** rule [step_rule] has head [step_pred] and its body mentions the
          previous step's predicate — under negation when set *)
}

type negative_cycle = cycle_step list

type forcing_chain = {
  fc_source : disconnection_witness;
  fc_chain : (string * int) list;
      (** dependency path from the unconnected rule's head: each
          [(pred, rule)] has [rule]'s head [pred] and its body mentioning
          the previous predicate; proves the final predicate lies in the
          forced final stratum *)
}

type evidence =
  | Ev_positive
  | Ev_positive_ineq
  | Ev_semi_positive
  | Ev_connected of {
      strat : stratification_witness;
      trees : connectivity_witness list;
    }
  | Ev_semi_connected of {
      strat : stratification_witness;
      forced : string list;
      trees : connectivity_witness list;  (** for every rule outside [forced] *)
    }
  | Ev_stratified of { strat : stratification_witness }
  | Ev_unstratifiable of negative_cycle

type exclusion =
  | Has_ineq of { xrule : int; index : int }
  | Has_negation of { xrule : int; index : int }
  | Idb_negation of { xrule : int; index : int; defining_rule : int }
  | Unconnected of disconnection_witness
  | Inset_negation of {
      xrule : int;
      index : int;
      head_chain : forcing_chain;
      neg_chain : forcing_chain;
    }

type t = {
  fragment : Fragment.t;
  membership : evidence;
  exclusions : exclusion list;
}

(* ------------------------------------------------------------------ *)
(* Shared helpers *)

let indexed p = List.mapi (fun i r -> (i, r)) p

let head_preds p =
  List.map (fun (r : Ast.rule) -> r.head.pred) p |> List.sort_uniq String.compare

let body_preds (r : Ast.rule) =
  List.map (fun (a : Ast.atom) -> a.pred) (r.pos @ r.neg)

let pos_vars (r : Ast.rule) =
  List.concat_map Ast.vars_of_atom r.pos |> List.sort_uniq String.compare

let var_components r =
  let graph = Connectivity.rule_graph r in
  let adj v = try List.assoc v graph with Not_found -> [] in
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun (v, _) ->
      if Hashtbl.mem seen v then None
      else begin
        let comp = ref [] in
        let rec dfs x =
          if not (Hashtbl.mem seen x) then begin
            Hashtbl.replace seen x ();
            comp := x :: !comp;
            List.iter dfs (adj x)
          end
        in
        dfs v;
        Some (List.sort String.compare !comp)
      end)
    graph

let first_shared_atom (r : Ast.rule) u v =
  let rec go i = function
    | [] -> None
    | (a : Ast.atom) :: rest ->
      let vs = Ast.vars_of_atom a in
      if List.mem u vs && List.mem v vs then Some i else go (i + 1) rest
  in
  go 0 r.pos

let spanning_tree (r : Ast.rule) =
  match Connectivity.rule_graph r with
  | [] | [ _ ] -> []
  | ((start, _) :: _) as graph ->
    let adj v = try List.assoc v graph with Not_found -> [] in
    let seen = Hashtbl.create 8 in
    let edges = ref [] in
    let rec dfs u =
      Hashtbl.replace seen u ();
      List.iter
        (fun v ->
          if not (Hashtbl.mem seen v) then begin
            (match first_shared_atom r u v with
            | Some i ->
              edges := { from_var = u; to_var = v; via_atom = i } :: !edges
            | None -> ());
            dfs v
          end)
        (adj u)
    in
    dfs start;
    List.rev !edges

(* Dependency edges between idb predicates: [(from, to, rule, negated)]
   when rule [rule] (with head [to]) mentions [from] in its body. *)
let idb_edges p =
  let idb = head_preds p in
  List.concat_map
    (fun (i, (r : Ast.rule)) ->
      let t = r.head.pred in
      List.filter_map
        (fun (a : Ast.atom) ->
          if List.mem a.pred idb then Some (a.pred, t, i, false) else None)
        r.pos
      @ List.filter_map
          (fun (a : Ast.atom) ->
            if List.mem a.pred idb then Some (a.pred, t, i, true) else None)
          r.neg)
    (indexed p)

(* A cycle through negation: pick a negative edge q → h, search a path
   h ⇝ q, close the loop. *)
let find_negative_cycle p =
  let edges = idb_edges p in
  let succs v = List.filter (fun (u, _, _, _) -> u = v) edges in
  let path_to ~start ~target =
    (* BFS, returning the edge list of a path start ⇝ target. *)
    let parent = Hashtbl.create 16 in
    let queue = Queue.create () in
    Queue.add start queue;
    Hashtbl.replace parent start None;
    let found = ref false in
    while (not !found) && not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      if v = target then found := true
      else
        List.iter
          (fun ((_, w, _, _) as e) ->
            if not (Hashtbl.mem parent w) then begin
              Hashtbl.replace parent w (Some e);
              Queue.add w queue
            end)
          (succs v)
    done;
    if not !found then None
    else begin
      let rec unwind v acc =
        match Hashtbl.find parent v with
        | None -> acc
        | Some ((u, _, _, _) as e) -> unwind u (e :: acc)
      in
      Some (unwind target [])
    end
  in
  List.find_map
    (fun (q, h, rule, negated) ->
      if not negated then None
      else
        match path_to ~start:h ~target:q with
        | None -> None
        | Some path ->
          let steps =
            { step_pred = h; step_rule = rule; via_negation = true }
            :: List.map
                 (fun (_, w, ri, n) ->
                   { step_pred = w; step_rule = ri; via_negation = n })
                 path
          in
          Some steps)
    edges

let strat_witness p =
  match Stratify.stratify p with
  | Error e -> invalid_arg ("Certificate.strat_witness: " ^ e)
  | Ok { number; _ } ->
    List.filter_map
      (fun q -> match number q with Some n -> Some (q, n) | None -> None)
      (head_preds p)

(* Chain from some unconnected rule's head to [target], walking the
   "dependents" direction of the idb dependency graph. *)
let forcing_chain_to p ~witnesses target =
  let edges = idb_edges p in
  List.find_map
    (fun (dw : disconnection_witness) ->
      let source = (List.nth p dw.dw_rule).Ast.head.pred in
      if source = target then Some { fc_source = dw; fc_chain = [] }
      else begin
        let parent = Hashtbl.create 16 in
        let queue = Queue.create () in
        Queue.add source queue;
        Hashtbl.replace parent source None;
        let found = ref false in
        while (not !found) && not (Queue.is_empty queue) do
          let v = Queue.pop queue in
          if v = target then found := true
          else
            List.iter
              (fun (u, w, ri, _) ->
                if u = v && not (Hashtbl.mem parent w) then begin
                  Hashtbl.replace parent w (Some (v, w, ri));
                  Queue.add w queue
                end)
              edges
        done;
        if not !found then None
        else begin
          let rec unwind v acc =
            match Hashtbl.find parent v with
            | None -> acc
            | Some (u, w, ri) -> unwind u ((w, ri) :: acc)
          in
          Some { fc_source = dw; fc_chain = unwind target [] }
        end
      end)
    witnesses

(* ------------------------------------------------------------------ *)
(* Certification *)

let certify p =
  let fragment = Fragment.classify p in
  let idx = indexed p in
  let idb = head_preds p in
  let is_idb q = List.mem q idb in
  let defining_rule q =
    List.find_map (fun (i, (r : Ast.rule)) -> if r.head.pred = q then Some i else None) idx
  in
  let first_ineq =
    List.find_map
      (fun (i, (r : Ast.rule)) ->
        if r.ineq <> [] then Some (Has_ineq { xrule = i; index = 0 }) else None)
      idx
  in
  let first_neg =
    List.find_map
      (fun (i, (r : Ast.rule)) ->
        if r.neg <> [] then Some (Has_negation { xrule = i; index = 0 })
        else None)
      idx
  in
  let first_idb_neg =
    List.find_map
      (fun (i, (r : Ast.rule)) ->
        List.mapi (fun j (a : Ast.atom) -> (j, a)) r.neg
        |> List.find_map (fun (j, (a : Ast.atom)) ->
               if is_idb a.pred then
                 Some
                   (Idb_negation
                      {
                        xrule = i;
                        index = j;
                        defining_rule = Option.get (defining_rule a.pred);
                      })
               else None))
      idx
  in
  let disconnections =
    List.filter_map
      (fun (i, r) ->
        if Connectivity.rule_is_connected r then None
        else Some { dw_rule = i; components = var_components r })
      idx
  in
  let all_trees () =
    List.map (fun (i, r) -> { cw_rule = i; tree = spanning_tree r }) idx
  in
  let need name = function
    | Some x -> x
    | None -> invalid_arg ("Certificate.certify: missing witness: " ^ name)
  in
  match fragment with
  | Fragment.Positive -> { fragment; membership = Ev_positive; exclusions = [] }
  | Fragment.Positive_ineq ->
    {
      fragment;
      membership = Ev_positive_ineq;
      exclusions = [ need "ineq" first_ineq ];
    }
  | Fragment.Semi_positive ->
    {
      fragment;
      membership = Ev_semi_positive;
      exclusions = [ need "negation" first_neg ];
    }
  | Fragment.Unstratifiable ->
    {
      fragment;
      membership =
        Ev_unstratifiable (need "negative cycle" (find_negative_cycle p));
      exclusions =
        [ need "negation" first_neg; need "idb negation" first_idb_neg ];
    }
  | Fragment.Connected_stratified ->
    {
      fragment;
      membership = Ev_connected { strat = strat_witness p; trees = all_trees () };
      exclusions =
        [ need "negation" first_neg; need "idb negation" first_idb_neg ];
    }
  | Fragment.Semi_connected_stratified ->
    let forced = Connectivity.forced_final_stratum p in
    let trees =
      List.filter_map
        (fun (i, (r : Ast.rule)) ->
          if List.mem r.head.pred forced then None
          else Some { cw_rule = i; tree = spanning_tree r })
        idx
    in
    {
      fragment;
      membership = Ev_semi_connected { strat = strat_witness p; forced; trees };
      exclusions =
        [
          need "negation" first_neg;
          need "idb negation" first_idb_neg;
          Unconnected (need "disconnection" (List.nth_opt disconnections 0));
        ];
    }
  | Fragment.Stratified ->
    let forced = Connectivity.forced_final_stratum p in
    let inset =
      List.find_map
        (fun (i, (r : Ast.rule)) ->
          if not (List.mem r.head.pred forced) then None
          else
            List.mapi (fun j (a : Ast.atom) -> (j, a)) r.neg
            |> List.find_map (fun (j, (a : Ast.atom)) ->
                   if not (List.mem a.pred forced) then None
                   else
                     match
                       ( forcing_chain_to p ~witnesses:disconnections
                           r.head.pred,
                         forcing_chain_to p ~witnesses:disconnections a.pred )
                     with
                     | Some head_chain, Some neg_chain ->
                       Some
                         (Inset_negation
                            { xrule = i; index = j; head_chain; neg_chain })
                     | _ -> None))
        idx
    in
    {
      fragment;
      membership = Ev_stratified { strat = strat_witness p };
      exclusions =
        [
          need "negation" first_neg;
          need "idb negation" first_idb_neg;
          Unconnected (need "disconnection" (List.nth_opt disconnections 0));
          need "in-set negation" inset;
        ];
    }

(* ------------------------------------------------------------------ *)
(* The independent checker *)

let ( let* ) = Result.bind

let err fmt = Printf.ksprintf (fun s -> Error s) fmt

let rec all_ok = function
  | [] -> Ok ()
  | x :: rest ->
    let* () = x () in
    all_ok rest

let check p cert =
  let n = List.length p in
  let rule_at i =
    if i < 0 || i >= n then err "rule index %d out of range" i
    else Ok (List.nth p i)
  in
  let idb = head_preds p in
  let is_idb q = List.mem q idb in

  let check_no_neg () =
    match
      List.find_opt (fun (r : Ast.rule) -> r.neg <> []) p
    with
    | Some r -> err "claimed negation-free but %s has a negated literal" r.head.pred
    | None -> Ok ()
  in
  let check_no_ineq () =
    match List.find_opt (fun (r : Ast.rule) -> r.ineq <> []) p with
    | Some r -> err "claimed inequality-free but %s has an inequality" r.head.pred
    | None -> Ok ()
  in
  let check_sp () =
    match
      List.find_opt
        (fun (r : Ast.rule) ->
          List.exists (fun (a : Ast.atom) -> is_idb a.pred) r.neg)
        p
    with
    | Some r -> err "claimed semi-positive but %s negates an idb predicate" r.head.pred
    | None -> Ok ()
  in

  let check_strat (w : stratification_witness) =
    let number q = List.assoc_opt q w in
    let* () =
      all_ok
        (List.map
           (fun (q, s) () ->
             if not (is_idb q) then err "stratification assigns non-idb %s" q
             else if s < 1 then err "stratum of %s is %d < 1" q s
             else Ok ())
           w)
    in
    let* () =
      all_ok
        (List.map
           (fun q () ->
             match number q with
             | Some _ -> Ok ()
             | None -> err "idb predicate %s missing from stratification" q)
           idb)
    in
    all_ok
      (List.map
         (fun (r : Ast.rule) () ->
           let h = Option.value ~default:0 (number r.head.pred) in
           let* () =
             all_ok
               (List.map
                  (fun (a : Ast.atom) () ->
                    match number a.pred with
                    | Some s when s > h ->
                      err "positive dependency %s (stratum %d) above head %s (%d)"
                        a.pred s r.head.pred h
                    | _ -> Ok ())
                  r.pos)
           in
           all_ok
             (List.map
                (fun (a : Ast.atom) () ->
                  match number a.pred with
                  | Some s when s >= h ->
                    err "negative dependency %s (stratum %d) not below head %s (%d)"
                      a.pred s r.head.pred h
                  | _ -> Ok ())
                r.neg))
         p)
  in

  let check_tree (cw : connectivity_witness) =
    let* r = rule_at cw.cw_rule in
    let vars = pos_vars r in
    if List.length vars <= 1 then Ok ()
    else begin
      let* () =
        all_ok
          (List.map
             (fun e () ->
               if e.from_var = e.to_var then
                 err "rule %d: degenerate spanning edge %s" cw.cw_rule e.from_var
               else
                 match List.nth_opt r.pos e.via_atom with
                 | None -> err "rule %d: spanning edge cites missing atom %d" cw.cw_rule e.via_atom
                 | Some a ->
                   let vs = Ast.vars_of_atom a in
                   if List.mem e.from_var vs && List.mem e.to_var vs then Ok ()
                   else
                     err "rule %d: %s and %s do not co-occur in atom %d"
                       cw.cw_rule e.from_var e.to_var e.via_atom)
             cw.tree)
      in
      (* The cited edges must connect every positive-body variable. *)
      let reached = Hashtbl.create 8 in
      let rec grow v =
        if not (Hashtbl.mem reached v) then begin
          Hashtbl.replace reached v ();
          List.iter
            (fun e ->
              if e.from_var = v then grow e.to_var
              else if e.to_var = v then grow e.from_var)
            cw.tree
        end
      in
      grow (List.hd vars);
      match List.find_opt (fun v -> not (Hashtbl.mem reached v)) vars with
      | Some v ->
        err "rule %d: spanning certificate does not reach variable %s"
          cw.cw_rule v
      | None -> Ok ()
    end
  in

  let check_components (dw : disconnection_witness) =
    let* r = rule_at dw.dw_rule in
    let vars = pos_vars r in
    let flat = List.concat dw.components in
    let* () =
      if List.length dw.components < 2 then
        err "rule %d: fewer than two components" dw.dw_rule
      else if List.exists (fun c -> c = []) dw.components then
        err "rule %d: empty component" dw.dw_rule
      else Ok ()
    in
    let* () =
      if List.sort String.compare flat <> vars then
        err "rule %d: components do not partition the positive variables"
          dw.dw_rule
      else if List.length flat <> List.length (List.sort_uniq String.compare flat)
      then err "rule %d: components overlap" dw.dw_rule
      else Ok ()
    in
    let component_of v =
      List.find_opt (fun c -> List.mem v c) dw.components
    in
    all_ok
      (List.map
         (fun (a : Ast.atom) () ->
           let vs = Ast.vars_of_atom a in
           match vs with
           | [] -> Ok ()
           | v :: rest ->
             let c = component_of v in
             if List.for_all (fun w -> component_of w = c) rest then Ok ()
             else
               err "rule %d: atom %s bridges two claimed components" dw.dw_rule
                 a.pred)
         r.pos)
  in

  let check_cycle (steps : negative_cycle) =
    let* () = if steps = [] then err "empty cycle witness" else Ok () in
    let* () =
      if List.exists (fun s -> s.via_negation) steps then Ok ()
      else err "cycle witness has no negative edge"
    in
    let k = List.length steps in
    all_ok
      (List.mapi
         (fun j (s : cycle_step) () ->
           let prev = (List.nth steps ((j + k - 1) mod k)).step_pred in
           let* r = rule_at s.step_rule in
           if r.head.pred <> s.step_pred then
             err "cycle step %d: rule %d does not define %s" j s.step_rule
               s.step_pred
           else
             let pool = if s.via_negation then r.neg else r.pos in
             if List.exists (fun (a : Ast.atom) -> a.pred = prev) pool then
               Ok ()
             else
               err "cycle step %d: rule %d does not mention %s%s" j s.step_rule
                 prev
                 (if s.via_negation then " under negation" else ""))
         steps)
  in

  let check_chain (fc : forcing_chain) target =
    let* () = check_components fc.fc_source in
    let* source = rule_at fc.fc_source.dw_rule in
    let final =
      List.fold_left (fun _ (q, _) -> q) source.Ast.head.pred fc.fc_chain
    in
    let* () =
      if final <> target then
        err "forcing chain ends at %s, not %s" final target
      else Ok ()
    in
    let rec walk prev = function
      | [] -> Ok ()
      | (q, ri) :: rest ->
        let* r = rule_at ri in
        if r.Ast.head.pred <> q then
          err "forcing chain: rule %d does not define %s" ri q
        else if not (List.mem prev (body_preds r)) then
          err "forcing chain: rule %d does not depend on %s" ri prev
        else walk q rest
    in
    walk source.Ast.head.pred fc.fc_chain
  in

  (* -- membership ------------------------------------------------- *)
  let* () =
    match (cert.fragment, cert.membership) with
    | Fragment.Positive, Ev_positive ->
      let* () = check_no_neg () in
      check_no_ineq ()
    | Fragment.Positive_ineq, Ev_positive_ineq -> check_no_neg ()
    | Fragment.Semi_positive, Ev_semi_positive -> check_sp ()
    | Fragment.Connected_stratified, Ev_connected { strat; trees } ->
      let* () = check_strat strat in
      let* () =
        all_ok
          (List.map
             (fun i () ->
               match List.find_opt (fun cw -> cw.cw_rule = i) trees with
               | Some cw -> check_tree cw
               | None -> err "no spanning certificate for rule %d" i)
             (List.init n Fun.id))
      in
      Ok ()
    | Fragment.Semi_connected_stratified, Ev_semi_connected { strat; forced; trees }
      ->
      let* () = check_strat strat in
      let* () =
        all_ok
          (List.map (fun q () ->
               if is_idb q then Ok ()
               else err "forced set lists non-idb predicate %s" q)
             forced)
      in
      (* Rules outside the forced set must be certified connected. *)
      let* () =
        all_ok
          (List.map
             (fun (i, (r : Ast.rule)) () ->
               if List.mem r.head.pred forced then Ok ()
               else
                 match List.find_opt (fun cw -> cw.cw_rule = i) trees with
                 | Some cw -> check_tree cw
                 | None ->
                   err "rule %d outside forced set lacks a spanning certificate" i)
             (indexed p))
      in
      (* Upward closure: a rule depending on the forced set is in it. *)
      let* () =
        all_ok
          (List.map
             (fun (r : Ast.rule) () ->
               if
                 List.exists (fun q -> List.mem q forced) (body_preds r)
                 && not (List.mem r.head.pred forced)
               then
                 err "forced set not upward closed: %s depends on it"
                   r.head.pred
               else Ok ())
             p)
      in
      (* The forced set must be one semi-positive stratum. *)
      all_ok
        (List.map
           (fun (r : Ast.rule) () ->
             if
               List.mem r.head.pred forced
               && List.exists
                    (fun (a : Ast.atom) -> List.mem a.pred forced)
                    r.neg
             then err "in-set negation inside the forced final stratum (%s)" r.head.pred
             else Ok ())
           p)
    | Fragment.Stratified, Ev_stratified { strat } -> check_strat strat
    | Fragment.Unstratifiable, Ev_unstratifiable cycle -> check_cycle cycle
    | _ -> err "membership evidence does not match fragment %s"
             (Fragment.to_string cert.fragment)
  in

  (* -- exclusions -------------------------------------------------- *)
  let check_exclusion = function
    | Has_ineq { xrule; index } ->
      let* r = rule_at xrule in
      if List.nth_opt r.ineq index <> None then Ok ()
      else err "rule %d has no inequality at index %d" xrule index
    | Has_negation { xrule; index } ->
      let* r = rule_at xrule in
      if List.nth_opt r.neg index <> None then Ok ()
      else err "rule %d has no negated literal at index %d" xrule index
    | Idb_negation { xrule; index; defining_rule } ->
      let* r = rule_at xrule in
      let* d = rule_at defining_rule in
      (match List.nth_opt r.neg index with
      | None -> err "rule %d has no negated literal at index %d" xrule index
      | Some (a : Ast.atom) ->
        if d.head.pred = a.pred then Ok ()
        else err "rule %d does not define the negated predicate %s" defining_rule a.pred)
    | Unconnected dw -> check_components dw
    | Inset_negation { xrule; index; head_chain; neg_chain } ->
      let* r = rule_at xrule in
      (match List.nth_opt r.neg index with
      | None -> err "rule %d has no negated literal at index %d" xrule index
      | Some (a : Ast.atom) ->
        let* () = check_chain head_chain r.head.pred in
        check_chain neg_chain a.pred)
  in
  let* () = all_ok (List.map (fun x () -> check_exclusion x) cert.exclusions) in

  (* -- the exclusion set must rule out every stronger fragment ----- *)
  let tag = function
    | Has_ineq _ -> `Ineq
    | Has_negation _ -> `Neg
    | Idb_negation _ -> `Idb_neg
    | Unconnected _ -> `Unconnected
    | Inset_negation _ -> `Inset
  in
  let required =
    match cert.fragment with
    | Fragment.Positive -> []
    | Fragment.Positive_ineq -> [ (`Ineq, "an inequality (not plain Datalog)") ]
    | Fragment.Semi_positive -> [ (`Neg, "a negation (not positive)") ]
    | Fragment.Connected_stratified | Fragment.Unstratifiable ->
      [
        (`Neg, "a negation (not positive)");
        (`Idb_neg, "an idb negation (not SP)");
      ]
    | Fragment.Semi_connected_stratified ->
      [
        (`Neg, "a negation (not positive)");
        (`Idb_neg, "an idb negation (not SP)");
        (`Unconnected, "an unconnected rule (not con)");
      ]
    | Fragment.Stratified ->
      [
        (`Neg, "a negation (not positive)");
        (`Idb_neg, "an idb negation (not SP)");
        (`Unconnected, "an unconnected rule (not con)");
        (`Inset, "an in-set negation (not semicon)");
      ]
  in
  let tags = List.map tag cert.exclusions in
  all_ok
    (List.map
       (fun (t, what) () ->
         if List.mem t tags then Ok ()
         else err "missing counter-witness: %s" what)
       required)

(* ------------------------------------------------------------------ *)
(* Rendering *)

let pp_chain ppf fc =
  let source = Printf.sprintf "rule %d" fc.fc_source.dw_rule in
  match fc.fc_chain with
  | [] -> Format.fprintf ppf "head of unconnected %s" source
  | chain ->
    Format.fprintf ppf "from unconnected %s via %s" source
      (String.concat " -> " (List.map fst chain))

let pp_evidence ppf = function
  | Ev_positive -> Format.fprintf ppf "  every rule is positive, no inequalities@."
  | Ev_positive_ineq -> Format.fprintf ppf "  every rule is positive@."
  | Ev_semi_positive ->
    Format.fprintf ppf "  every negated predicate is extensional@."
  | Ev_connected { strat; trees } ->
    Format.fprintf ppf "  stratification: %s@."
      (String.concat ", "
         (List.map (fun (q, s) -> Printf.sprintf "%s:%d" q s) strat));
    Format.fprintf ppf "  spanning certificates for %d rule(s)@."
      (List.length trees)
  | Ev_semi_connected { strat; forced; trees } ->
    Format.fprintf ppf "  stratification: %s@."
      (String.concat ", "
         (List.map (fun (q, s) -> Printf.sprintf "%s:%d" q s) strat));
    Format.fprintf ppf "  forced final stratum: {%s}@."
      (String.concat ", " forced);
    Format.fprintf ppf
      "  spanning certificates for the %d rule(s) outside it@."
      (List.length trees)
  | Ev_stratified { strat } ->
    Format.fprintf ppf "  stratification: %s@."
      (String.concat ", "
         (List.map (fun (q, s) -> Printf.sprintf "%s:%d" q s) strat))
  | Ev_unstratifiable cycle ->
    Format.fprintf ppf "  cycle through negation: %s@."
      (String.concat " -> "
         (List.map
            (fun s ->
              if s.via_negation then "not " ^ s.step_pred else s.step_pred)
            cycle))

let pp_exclusion ppf = function
  | Has_ineq { xrule; _ } ->
    Format.fprintf ppf "  not Datalog: rule %d uses an inequality@." xrule
  | Has_negation { xrule; _ } ->
    Format.fprintf ppf "  not positive: rule %d uses negation@." xrule
  | Idb_negation { xrule; defining_rule; _ } ->
    Format.fprintf ppf
      "  not SP-Datalog: rule %d negates a predicate defined by rule %d@."
      xrule defining_rule
  | Unconnected dw ->
    Format.fprintf ppf "  not con-Datalog^neg: rule %d splits into {%s}@."
      dw.dw_rule
      (String.concat "} {" (List.map (String.concat ", ") dw.components))
  | Inset_negation { xrule; head_chain; neg_chain; _ } ->
    Format.fprintf ppf
      "  not semicon-Datalog^neg: rule %d negates inside the forced final \
       stratum (head %a; negated predicate %a)@."
      xrule pp_chain head_chain pp_chain neg_chain

let pp ppf cert =
  Format.fprintf ppf "fragment: %s (upper bound %s)@."
    (Fragment.to_string cert.fragment)
    (Fragment.monotonicity_upper_bound cert.fragment);
  Format.fprintf ppf "membership evidence:@.";
  pp_evidence ppf cert.membership;
  if cert.exclusions <> [] then begin
    Format.fprintf ppf "counter-witnesses:@.";
    List.iter (pp_exclusion ppf) cert.exclusions
  end

let to_string cert = Format.asprintf "%a" pp cert
