(* Multi-file lint driver: expands directories to [.dlog] files, fans the
   per-file analysis out over a {!Parallel.Pool}, and renders the
   aggregate in any of the three formats. Lint verdicts are pure
   functions of file contents, so the fan-out is deterministic. *)

type file_report = {
  path : string;
  source : string;  (** "" when the file could not be read *)
  diagnostics : Diagnostic.t list;
}

let has_suffix suffix s =
  let ls = String.length suffix and l = String.length s in
  l >= ls && String.sub s (l - ls) ls = suffix

(* Directories expand to their [.dlog] files, recursively, sorted so the
   report order is stable; explicit file arguments are taken as-is. *)
let collect paths =
  let rec expand acc path =
    if Sys.is_directory path then
      Sys.readdir path |> Array.to_list |> List.sort String.compare
      |> List.filter_map (fun entry ->
             let child = Filename.concat path entry in
             if Sys.is_directory child || has_suffix ".dlog" child then
               Some child
             else None)
      |> List.fold_left expand acc
    else path :: acc
  in
  match List.fold_left expand [] paths with
  | files -> Ok (List.rev files)
  | exception Sys_error msg -> Error msg

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let lint_file ~options path =
  match read_file path with
  | source -> { path; source; diagnostics = Lint.lint_source ~options source }
  | exception Sys_error msg ->
    {
      path;
      source = "";
      diagnostics =
        [
          Diagnostic.make ~code:"CALM000" ~severity:Diagnostic.Error
            ~span:Datalog.Ast.Span.dummy
            (Printf.sprintf "cannot read file: %s" msg);
        ];
    }

let run ?(options = Lint.default_options) ?jobs paths =
  Parallel.Pool.with_pool ?jobs (fun pool ->
      Parallel.Pool.map pool (lint_file ~options) paths)

let total severity reports =
  List.fold_left (fun n r -> n + Diagnostic.count severity r.diagnostics) 0 reports

(* ------------------------------------------------------------------ *)
(* Renderers *)

let render_human reports =
  let buf = Buffer.create 1024 in
  let ppf = Format.formatter_of_buffer buf in
  List.iter
    (fun r ->
      List.iter
        (fun d ->
          Diagnostic.pp_human ~file:r.path ~source:r.source ppf d)
        r.diagnostics)
    reports;
  let errors = total Diagnostic.Error reports
  and warnings = total Diagnostic.Warning reports in
  if errors + warnings > 0 || reports <> [] then
    Format.fprintf ppf "%d file%s checked: %d error%s, %d warning%s@."
      (List.length reports)
      (if List.length reports = 1 then "" else "s")
      errors
      (if errors = 1 then "" else "s")
      warnings
      (if warnings = 1 then "" else "s");
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let render_json reports =
  Json.to_string
    (Json.Obj
       [
         ("errors", Json.Int (total Diagnostic.Error reports));
         ("warnings", Json.Int (total Diagnostic.Warning reports));
         ( "files",
           Json.List
             (List.map
                (fun r ->
                  Diagnostic.file_report_to_json ~file:r.path r.diagnostics)
                reports) );
       ])
  ^ "\n"

let render_sarif reports =
  Json.to_string
    (Diagnostic.sarif_report
       (List.map (fun r -> (r.path, r.diagnostics)) reports))
  ^ "\n"
