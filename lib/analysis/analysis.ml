(** Static analysis for Datalog¬ programs: span-accurate lint
    diagnostics and independently-checkable fragment certificates.

    The subsystem splits into a {e classifier} side (the lint rules and
    {!certify}, which search for evidence) and a {e checker} side
    ({!check_certificate}, which validates evidence by local inspection
    without re-running any search) — mirroring the certifying-algorithm
    discipline: trust the check, not the search. *)

module Json = Json
module Diagnostic = Diagnostic
module Certificate = Certificate
module Lint = Lint
module Driver = Driver

let certify = Certificate.certify

let check_certificate = Certificate.check
