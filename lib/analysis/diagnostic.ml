open Datalog
module Span = Ast.Span

type severity =
  | Error
  | Warning
  | Info

type note = {
  note_span : Span.t;  (** {!Span.dummy} for location-free notes *)
  note_message : string;
}

type fixit = {
  fix_span : Span.t;
  replacement : string;
}

type t = {
  code : string;
  severity : severity;
  span : Span.t;
  message : string;
  notes : note list;
  fixits : fixit list;
}

(* The stable code registry. Renderers (SARIF rule table, README) derive
   from this list; the lint engine may only emit codes listed here
   (enforced by the test suite). *)
let codes =
  [
    ("CALM000", "syntax error");
    ("CALM001", "variable not bound by a positive body atom");
    ("CALM002", "invention slot in a body literal");
    ("CALM003", "unstratifiable: cycle through negation");
    ("CALM004", "unconnected rule (graph+ falls apart)");
    ("CALM005", "in-set negation breaks semi-connectedness");
    ("CALM006", "negation of an intensional predicate under an SP claim");
    ("CALM007", "duplicate or subsumed rule");
    ("CALM008", "predicate unused by any output relation");
    ("CALM009", "extensional or reserved predicate used as a rule head");
    ("CALM010", "point of order: negation requiring runtime knowledge");
    ("CALM011", "predicate used with conflicting arities");
    ("CALM012", "rule has no positive body literal");
    ("CALM013", "program does not belong to the claimed fragment");
  ]

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let make ?(notes = []) ?(fixits = []) ~code ~severity ~span message =
  if not (List.mem_assoc code codes) then
    invalid_arg (Printf.sprintf "Diagnostic.make: unknown code %s" code);
  { code; severity; span; message; notes; fixits }

let note ?(span = Span.dummy) note_message = { note_span = span; note_message }

(* Source order, then severity (errors first), then code: stable under
   any lint-rule evaluation order. *)
let compare_diag a b =
  let pos (s : Span.t) = (s.start.line, s.start.col, s.stop.line, s.stop.col) in
  let rank = function Error -> 0 | Warning -> 1 | Info -> 2 in
  let c = compare (pos a.span) (pos b.span) in
  if c <> 0 then c
  else
    let c = compare (rank a.severity) (rank b.severity) in
    if c <> 0 then c
    else
      let c = String.compare a.code b.code in
      if c <> 0 then c else String.compare a.message b.message

let sort ds = List.stable_sort compare_diag ds

let count severity ds = List.length (List.filter (fun d -> d.severity = severity) ds)

(* ------------------------------------------------------------------ *)
(* Human rendering with caret underlines *)

let split_lines source = String.split_on_char '\n' source

let pp_snippet ppf ~lines (span : Span.t) =
  if not (Span.is_dummy span) then
    match List.nth_opt lines (span.start.line - 1) with
    | None -> ()
    | Some text ->
      let gutter = string_of_int span.start.line in
      Format.fprintf ppf "  %s | %s@." gutter text;
      let width =
        if span.stop.line = span.start.line then
          max 1 (span.stop.col - span.start.col)
        else max 1 (String.length text - span.start.col + 1)
      in
      let width = min width (max 1 (String.length text - span.start.col + 1)) in
      Format.fprintf ppf "  %s | %s%s@."
        (String.make (String.length gutter) ' ')
        (String.make (max 0 (span.start.col - 1)) ' ')
        (String.make width '^')

let pp_human ~file ~source ppf d =
  let lines = split_lines source in
  let loc =
    if Span.is_dummy d.span then file
    else Printf.sprintf "%s:%d:%d" file d.span.start.line d.span.start.col
  in
  Format.fprintf ppf "%s: %s[%s]: %s@." loc
    (severity_to_string d.severity)
    d.code d.message;
  pp_snippet ppf ~lines d.span;
  List.iter
    (fun n ->
      if Span.is_dummy n.note_span then
        Format.fprintf ppf "  note: %s@." n.note_message
      else begin
        Format.fprintf ppf "  note (%s): %s@."
          (Span.to_string n.note_span)
          n.note_message;
        pp_snippet ppf ~lines n.note_span
      end)
    d.notes;
  List.iter
    (fun f ->
      Format.fprintf ppf "  fix (%s): replace with `%s`@."
        (Span.to_string f.fix_span)
        f.replacement)
    d.fixits

(* ------------------------------------------------------------------ *)
(* JSON rendering *)

let span_to_json (s : Span.t) =
  if Span.is_dummy s then Json.Null
  else
    Json.Obj
      [
        ( "start",
          Json.Obj
            [ ("line", Json.Int s.start.line); ("col", Json.Int s.start.col) ]
        );
        ( "end",
          Json.Obj
            [ ("line", Json.Int s.stop.line); ("col", Json.Int s.stop.col) ] );
      ]

let to_json d =
  Json.Obj
    [
      ("code", Json.String d.code);
      ("severity", Json.String (severity_to_string d.severity));
      ("span", span_to_json d.span);
      ("message", Json.String d.message);
      ( "notes",
        Json.List
          (List.map
             (fun n ->
               Json.Obj
                 [
                   ("span", span_to_json n.note_span);
                   ("message", Json.String n.note_message);
                 ])
             d.notes) );
      ( "fixits",
        Json.List
          (List.map
             (fun f ->
               Json.Obj
                 [
                   ("span", span_to_json f.fix_span);
                   ("replacement", Json.String f.replacement);
                 ])
             d.fixits) );
    ]

let file_report_to_json ~file ds =
  Json.Obj
    [
      ("file", Json.String file);
      ("errors", Json.Int (count Error ds));
      ("warnings", Json.Int (count Warning ds));
      ("diagnostics", Json.List (List.map to_json (sort ds)));
    ]

(* ------------------------------------------------------------------ *)
(* SARIF 2.1.0 rendering (one run, one result per diagnostic) *)

let sarif_level = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "note"

let sarif_region (s : Span.t) =
  Json.Obj
    [
      ("startLine", Json.Int s.start.line);
      ("startColumn", Json.Int s.start.col);
      ("endLine", Json.Int s.stop.line);
      ("endColumn", Json.Int s.stop.col);
    ]

let sarif_location ~file (s : Span.t) =
  Json.Obj
    [
      ( "physicalLocation",
        Json.Obj
          ([ ("artifactLocation", Json.Obj [ ("uri", Json.String file) ]) ]
          @ if Span.is_dummy s then [] else [ ("region", sarif_region s) ]) );
    ]

let sarif_result ~file d =
  Json.Obj
    ([
       ("ruleId", Json.String d.code);
       ("level", Json.String (sarif_level d.severity));
       ("message", Json.Obj [ ("text", Json.String d.message) ]);
       ("locations", Json.List [ sarif_location ~file d.span ]);
     ]
    @
    if d.notes = [] then []
    else
      [
        ( "relatedLocations",
          Json.List
            (List.map
               (fun n ->
                 Json.Obj
                   [
                     ( "physicalLocation",
                       Json.Obj
                         ([
                            ( "artifactLocation",
                              Json.Obj [ ("uri", Json.String file) ] );
                          ]
                         @
                         if Span.is_dummy n.note_span then []
                         else [ ("region", sarif_region n.note_span) ]) );
                     ( "message",
                       Json.Obj [ ("text", Json.String n.note_message) ] );
                   ])
               d.notes) );
      ])

let sarif_report reports =
  let rules =
    List.map
      (fun (id, description) ->
        Json.Obj
          [
            ("id", Json.String id);
            ( "shortDescription",
              Json.Obj [ ("text", Json.String description) ] );
          ])
      codes
  in
  let results =
    List.concat_map
      (fun (file, ds) -> List.map (sarif_result ~file) (sort ds))
      reports
  in
  Json.Obj
    [
      ( "$schema",
        Json.String
          "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"
      );
      ("version", Json.String "2.1.0");
      ( "runs",
        Json.List
          [
            Json.Obj
              [
                ( "tool",
                  Json.Obj
                    [
                      ( "driver",
                        Json.Obj
                          [
                            ("name", Json.String "calm-lint");
                            ("version", Json.String "1.0.0");
                            ( "informationUri",
                              Json.String
                                "https://github.com/calm/calm#calm-lint" );
                            ("rules", Json.List rules);
                          ] );
                    ] );
                ("results", Json.List results);
              ];
          ] );
    ]
