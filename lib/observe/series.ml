(* Bounded ring-buffer time-series recorder. See series.mli for the
   design constraints (one-atomic-load gate when off, tick-keyed points
   so merging is schedule-independent, stride-doubling downsampling that
   commutes with merge). *)

let enabled = Atomic.make false
let enable () = Atomic.set enabled true
let disable () = Atomic.set enabled false
let is_enabled () = Atomic.get enabled

let default_capacity = 512

type point = { tick : int; value : float }

type series = {
  stable : bool;
  auto : bool;
  mutable stride : int;
  mutable rev_points : point list;  (* newest first *)
  mutable n : int;
  mutable arrivals : int;
  (* Wall clocks of the first/last arrival: volatile, never exported in
     stable renderings — they only feed the live flight recorder. *)
  mutable first_wall : float;
  mutable last_wall : float;
}

type key = string * (string * string) list

type t = {
  lock : Mutex.t;
  capacity : int;
  tbl : (key, series) Hashtbl.t;
}

let create ?(capacity = default_capacity) () =
  { lock = Mutex.create (); capacity = max 2 capacity; tbl = Hashtbl.create 8 }

let root = create ()

let ambient : t Domain.DLS.key = Domain.DLS.new_key (fun () -> root)

let current () = Domain.DLS.get ambient

let with_current t f =
  let saved = Domain.DLS.get ambient in
  Domain.DLS.set ambient t;
  Fun.protect ~finally:(fun () -> Domain.DLS.set ambient saved) f

let silenced f = with_current (create ()) f

(* Task buffers never downsample: they hold every raw point of one
   bounded work unit so that replaying them into the caller's recorder
   (in input order) reconstructs exactly the sequential arrival
   sequence — stride decisions included. *)
let task_buffer () = create ~capacity:max_int ()

(* Ambient label context: [with_label] scopes an extra label onto every
   sample recorded inside, e.g. the sweep labels each cell so parallel
   cells keep distinct series. *)
let label_ctx : (string * string) list Domain.DLS.key =
  Domain.DLS.new_key (fun () -> [])

let with_label kv f =
  let saved = Domain.DLS.get label_ctx in
  Domain.DLS.set label_ctx (kv :: saved);
  Fun.protect ~finally:(fun () -> Domain.DLS.set label_ctx saved) f

(* ------------------------------------------------------------------ *)
(* Recording *)

(* Ticks are non-negative in practice; Euclidean remainder keeps the
   keep-set well-defined either way. *)
let keeps stride tick = tick mod stride = 0 || (tick mod stride) + stride = 0

let downsample_series s =
  s.stride <- 2 * s.stride;
  let kept = List.filter (fun p -> keeps s.stride p.tick) s.rev_points in
  s.rev_points <- kept;
  s.n <- List.length kept

let find_series t key ~stable ~auto =
  match Hashtbl.find_opt t.tbl key with
  | Some s -> s
  | None ->
    let s =
      {
        stable;
        auto;
        stride = 1;
        rev_points = [];
        n = 0;
        arrivals = 0;
        first_wall = nan;
        last_wall = nan;
      }
    in
    Hashtbl.add t.tbl key s;
    s

(* The one append path, shared by recording and merge replay, so both
   make identical keep/downsample decisions. Caller holds [t.lock]. *)
let push t s ~wall ~tick value =
  let tick = if s.auto then s.arrivals else tick in
  if s.arrivals = 0 then s.first_wall <- wall;
  s.last_wall <- wall;
  s.arrivals <- s.arrivals + 1;
  if keeps s.stride tick then begin
    (match s.rev_points with
    | p :: rest when p.tick = tick ->
      (* Same tick sampled again: last write wins. *)
      s.rev_points <- { tick; value } :: rest
    | _ ->
      s.rev_points <- { tick; value } :: s.rev_points;
      s.n <- s.n + 1);
    while s.n > t.capacity do
      downsample_series s
    done
  end;
  s

let normalize_labels labels =
  List.sort (fun (a, _) (b, _) -> String.compare a b) labels

(* Forward declaration dance for the live recorder (defined below): the
   sampling hot path calls it through this ref. *)
let live_hook : (key -> series -> float -> unit) ref = ref (fun _ _ _ -> ())

let record ?(labels = []) ?(stable = true) ~auto name ~tick value =
  if Atomic.get enabled then begin
    let t = current () in
    let labels = normalize_labels (labels @ Domain.DLS.get label_ctx) in
    let key = (name, labels) in
    let wall = Unix.gettimeofday () in
    Mutex.lock t.lock;
    let s =
      try push t (find_series t key ~stable ~auto) ~wall ~tick value
      with e ->
        Mutex.unlock t.lock;
        raise e
    in
    Mutex.unlock t.lock;
    !live_hook key s wall
  end

let sample ?labels ?stable name ~tick value =
  record ?labels ?stable ~auto:false name ~tick value

let sample_auto ?labels ?stable name value =
  record ?labels ?stable ~auto:true name ~tick:0 value

(* ------------------------------------------------------------------ *)
(* Merge *)

let merge_into dst src =
  (* [src] is owned by a finished task, so only [dst] needs locking.
     Keys replay in sorted order and points in arrival order, so the
     merged recorder is a deterministic function of the input-ordered
     task buffers, independent of scheduling. Strides align upward
     before the replay: filtering by stride depends only on the tick, so
     downsampling commutes with merging (the property the test wall
     pins). *)
  let keys =
    List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) src.tbl [])
  in
  Mutex.lock dst.lock;
  (try
     List.iter
       (fun key ->
         let s = Hashtbl.find src.tbl key in
         let d = find_series dst key ~stable:s.stable ~auto:s.auto in
         if s.stride > d.stride then begin
           d.stride <- s.stride;
           let kept = List.filter (fun p -> keeps d.stride p.tick) d.rev_points in
           d.rev_points <- kept;
           d.n <- List.length kept
         end;
         List.iter
           (fun p ->
             let wall =
               if Float.is_nan s.last_wall then Unix.gettimeofday ()
               else s.last_wall
             in
             ignore (push dst d ~wall ~tick:p.tick p.value))
           (List.rev s.rev_points))
       keys
   with e ->
     Mutex.unlock dst.lock;
     raise e);
  Mutex.unlock dst.lock

let downsample t =
  Mutex.lock t.lock;
  Hashtbl.iter (fun _ s -> downsample_series s) t.tbl;
  Mutex.unlock t.lock

let reset t =
  Mutex.lock t.lock;
  Hashtbl.reset t.tbl;
  Mutex.unlock t.lock

(* ------------------------------------------------------------------ *)
(* Snapshots and exporters *)

type row = {
  name : string;
  labels : (string * string) list;
  stable : bool;
  stride : int;
  points : point list;  (* arrival order *)
}

let rows ?(stable_only = false) t =
  Mutex.lock t.lock;
  let out =
    Hashtbl.fold
      (fun (name, labels) (s : series) acc ->
        if stable_only && not s.stable then acc
        else if s.rev_points = [] then acc
        else
          {
            name;
            labels;
            stable = s.stable;
            stride = s.stride;
            points = List.rev s.rev_points;
          }
          :: acc)
      t.tbl []
  in
  Mutex.unlock t.lock;
  List.sort
    (fun a b ->
      match String.compare a.name b.name with
      | 0 -> compare a.labels b.labels
      | c -> c)
    out

let num f =
  if Float.is_nan f then "nan"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let label_string labels =
  match labels with
  | [] -> ""
  | _ ->
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) labels)
    ^ "}"

let render_stable t =
  let b = Buffer.create 256 in
  List.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf "%s%s stride=%d n=%d points=%s\n" r.name
           (label_string r.labels) r.stride (List.length r.points)
           (String.concat ","
              (List.map
                 (fun p -> Printf.sprintf "%d:%s" p.tick (num p.value))
                 r.points))))
    (rows ~stable_only:true t);
  Buffer.contents b

let to_jsonl t =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Json.to_string (Json.Obj [ ("schema", Json.String "calm-series/v1") ]));
  Buffer.add_char b '\n';
  List.iter
    (fun r ->
      Buffer.add_string b
        (Json.to_string
           (Json.Obj
              [
                ("series", Json.String r.name);
                ( "labels",
                  Json.Obj
                    (List.map (fun (k, v) -> (k, Json.String v)) r.labels) );
                ("stable", Json.Bool r.stable);
                ("stride", Json.Int r.stride);
                ( "points",
                  Json.List
                    (List.map
                       (fun p ->
                         Json.List [ Json.Int p.tick; Json.Float p.value ])
                       r.points) );
              ]));
      Buffer.add_char b '\n')
    (rows t);
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Live flight recorder *)

type live = {
  llock : Mutex.t;
  mutable cadence : float;
  mutable last_emit : float;
  mutable out : out_channel;
  targets : (string, float) Hashtbl.t;
}

let live =
  {
    llock = Mutex.create ();
    cadence = 0.;
    last_emit = 0.;
    out = stderr;
    targets = Hashtbl.create 4;
  }

let live_on = Atomic.make false

let set_live ?(out = stderr) cadence =
  Mutex.lock live.llock;
  live.cadence <- cadence;
  live.out <- out;
  live.last_emit <- 0.;
  Mutex.unlock live.llock;
  Atomic.set live_on (cadence > 0.)

let set_target name total =
  Mutex.lock live.llock;
  if total > 0. then Hashtbl.replace live.targets name total
  else Hashtbl.remove live.targets name;
  Mutex.unlock live.llock

(* Quantiles of the buffered values by sorting — the live line is
   human-oriented and schedule-dependent by nature, so unlike the
   Metrics buckets it needs no merge-exactness. *)
let buffer_quantile sorted p =
  match Array.length sorted with
  | 0 -> nan
  | n ->
    let rank = int_of_float (Float.ceil (p *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))

let live_line (name, labels) s =
  let values =
    Array.of_list (List.map (fun p -> p.value) s.rev_points)
  in
  Array.sort compare values;
  let span = s.last_wall -. s.first_wall in
  let rate =
    if span > 0. then float_of_int (s.arrivals - 1) /. span else nan
  in
  let eta =
    match Hashtbl.find_opt live.targets name with
    | Some total when rate > 0. && float_of_int s.arrivals < total ->
      Printf.sprintf "%.1fs" ((total -. float_of_int s.arrivals) /. rate)
    | _ -> "-"
  in
  let last =
    match s.rev_points with [] -> nan | p :: _ -> p.value
  in
  Printf.sprintf
    "[live] %s%s n=%d last=%s p50=%s p90=%s p99=%s rate=%s/s eta=%s"
    name (label_string labels) s.arrivals (num last)
    (num (buffer_quantile values 0.50))
    (num (buffer_quantile values 0.90))
    (num (buffer_quantile values 0.99))
    (if Float.is_nan rate then "-" else Printf.sprintf "%.1f" rate)
    eta

let () =
  live_hook :=
    fun key s wall ->
      if Atomic.get live_on then begin
        Mutex.lock live.llock;
        let due = wall -. live.last_emit >= live.cadence in
        if due then live.last_emit <- wall;
        let line = if due then Some (live_line key s) else None in
        Mutex.unlock live.llock;
        match line with
        | Some l ->
          output_string live.out (l ^ "\n");
          flush live.out
        | None -> ()
      end

