type event = {
  ts : float;
  dur : float option;
  track : string;
  cat : string;
  name : string;
  args : (string * Json.t) list;
}

type t = {
  lock : Mutex.t;
  mutable enabled : bool;
  mutable t0 : float;
  mutable events : event list;  (* newest first *)
}

let create () =
  { lock = Mutex.create (); enabled = true; t0 = Metrics.now (); events = [] }

let default =
  { lock = Mutex.create (); enabled = false; t0 = 0.; events = [] }

let enable t =
  Mutex.lock t.lock;
  t.events <- [];
  t.t0 <- Metrics.now ();
  t.enabled <- true;
  Mutex.unlock t.lock

let disable t =
  Mutex.lock t.lock;
  t.enabled <- false;
  Mutex.unlock t.lock

let is_enabled t = t.enabled

let ambient_track : string Domain.DLS.key = Domain.DLS.new_key (fun () -> "main")
let set_track name = Domain.DLS.set ambient_track name

let push t e =
  Mutex.lock t.lock;
  if t.enabled then t.events <- e :: t.events;
  Mutex.unlock t.lock

let record ?(sink = default) ?(cat = "app") ?(args = []) name =
  if sink.enabled then
    push sink
      {
        ts = Metrics.now () -. sink.t0;
        dur = None;
        track = Domain.DLS.get ambient_track;
        cat;
        name;
        args;
      }

let span ?(sink = default) ?(cat = "app") ?(args = []) name f =
  if not sink.enabled then f ()
  else begin
    let t0 = Metrics.now () in
    Fun.protect
      ~finally:(fun () ->
        let t1 = Metrics.now () in
        push sink
          {
            ts = t0 -. sink.t0;
            dur = Some (t1 -. t0);
            track = Domain.DLS.get ambient_track;
            cat;
            name;
            args;
          })
      f
  end

let events t =
  Mutex.lock t.lock;
  let es = List.rev t.events in
  Mutex.unlock t.lock;
  es

(* ------------------------------------------------------------------ *)
(* Exporters *)

let event_to_json e =
  Json.Obj
    (("ts", Json.Float e.ts)
     ::
     (match e.dur with
     | Some d -> [ ("dur", Json.Float d) ]
     | None -> [])
    @ [
        ("track", Json.String e.track);
        ("cat", Json.String e.cat);
        ("name", Json.String e.name);
        ("args", Json.Obj e.args);
      ])

let to_jsonl es =
  String.concat ""
    (List.map (fun e -> Json.to_string (event_to_json e) ^ "\n") es)

let event_of_json j =
  let str k =
    match Json.member k j with
    | Some (Json.String s) -> Ok s
    | _ -> Error (Printf.sprintf "missing string field %S" k)
  in
  let numf = function
    | Json.Float f -> Some f
    | Json.Int i -> Some (float_of_int i)
    | _ -> None
  in
  match (Json.member "ts" j, str "track", str "cat", str "name") with
  | Some tsj, Ok track, Ok cat, Ok name -> (
    match numf tsj with
    | None -> Error "ts is not a number"
    | Some ts ->
      let dur = Option.bind (Json.member "dur" j) numf in
      let args =
        match Json.member "args" j with Some (Json.Obj a) -> a | _ -> []
      in
      Ok { ts; dur; track; cat; name; args })
  | None, _, _, _ -> Error "missing field ts"
  | _, Error e, _, _ | _, _, Error e, _ | _, _, _, Error e -> Error e

let of_jsonl s =
  let lines =
    List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' s)
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | l :: rest -> (
      match Json.of_string l with
      | Error e -> Error e
      | Ok j -> (
        match event_of_json j with
        | Error e -> Error e
        | Ok ev -> go (ev :: acc) rest))
  in
  go [] lines

(* Chrome trace_event format: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
   Spans are "X" complete events; instants are "i"; tracks become tids
   with thread_name metadata so Perfetto shows the pool's workers as
   separate rows. Timestamps are microseconds. *)
let to_chrome es =
  let tracks =
    List.sort_uniq String.compare (List.map (fun e -> e.track) es)
  in
  (* "main" first, then workers in name order. *)
  let tracks =
    List.filter (( = ) "main") tracks
    @ List.filter (( <> ) "main") tracks
  in
  let tid tr =
    let rec idx i = function
      | [] -> 0
      | t :: _ when t = tr -> i
      | _ :: rest -> idx (i + 1) rest
    in
    1 + idx 0 tracks
  in
  let us s = Json.Float (s *. 1e6) in
  let meta =
    List.map
      (fun tr ->
        Json.Obj
          [
            ("name", Json.String "thread_name");
            ("ph", Json.String "M");
            ("pid", Json.Int 1);
            ("tid", Json.Int (tid tr));
            ("args", Json.Obj [ ("name", Json.String tr) ]);
          ])
      tracks
  in
  let body =
    List.map
      (fun e ->
        let common =
          [
            ("name", Json.String e.name);
            ("cat", Json.String e.cat);
            ("ts", us e.ts);
            ("pid", Json.Int 1);
            ("tid", Json.Int (tid e.track));
            ("args", Json.Obj e.args);
          ]
        in
        match e.dur with
        | Some d ->
          Json.Obj (("ph", Json.String "X") :: ("dur", us d) :: common)
        | None ->
          Json.Obj
            (("ph", Json.String "i") :: ("s", Json.String "t") :: common))
      es
  in
  Json.to_string
    (Json.Obj
       [
         ("traceEvents", Json.List (meta @ body));
         ("displayTimeUnit", Json.String "ms");
       ])

let pp_human ?(limit = 40) ppf es =
  let shown = List.filteri (fun i _ -> i < limit) es in
  List.iter
    (fun e ->
      let dur =
        match e.dur with
        | Some d -> Printf.sprintf " (%.3f ms)" (d *. 1e3)
        | None -> ""
      in
      let args =
        match e.args with
        | [] -> ""
        | a -> " " ^ Json.to_string (Json.Obj a)
      in
      Format.fprintf ppf "[%8.3f ms] %-9s %s/%s%s%s@." (e.ts *. 1e3) e.track
        e.cat e.name dur args)
    shown;
  let rest = List.length es - List.length shown in
  if rest > 0 then Format.fprintf ppf "... and %d more events@." rest
