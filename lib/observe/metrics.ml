type kind = Counter | Gauge | Histogram | Timing

let kind_to_string = function
  | Counter -> "counter"
  | Gauge -> "gauge"
  | Histogram -> "histogram"
  | Timing -> "timing"

type handle = {
  id : int;
  name : string;
  labels : (string * string) list;
  kind : kind;
  stable : bool;
}

(* ------------------------------------------------------------------ *)
(* The global intern table: a metric identity is (name, labels, kind),
   shared by every collector. Handles are created at module
   initialization time (or lazily for dynamic labels), never on a hot
   path. *)

let intern_lock = Mutex.create ()
let interned : (string * (string * string) list * kind, handle) Hashtbl.t =
  Hashtbl.create 64
let registered : handle list ref = ref []
let next_id = ref 0

let register ?(labels = []) ?(stable = true) kind name =
  let labels = List.sort (fun (a, _) (b, _) -> String.compare a b) labels in
  let stable = stable && kind <> Timing in
  Mutex.lock intern_lock;
  let h =
    match Hashtbl.find_opt interned (name, labels, kind) with
    | Some h -> h
    | None ->
      let h = { id = !next_id; name; labels; kind; stable } in
      incr next_id;
      Hashtbl.add interned (name, labels, kind) h;
      registered := h :: !registered;
      h
  in
  Mutex.unlock intern_lock;
  h

let counter ?labels ?stable name = register ?labels ?stable Counter name
let gauge ?labels ?stable name = register ?labels ?stable Gauge name
let histogram ?labels ?stable name = register ?labels ?stable Histogram name
let timing ?labels name = register ?labels ~stable:false Timing name

(* ------------------------------------------------------------------ *)
(* Log-bucketed value histograms (HDR-style).

   A bucket key is derived from the value alone — sign, power-of-two
   octave, and one of [sub_count] equal mantissa sub-buckets — so the
   same multiset of observations always lands in the same buckets no
   matter the order or the domain that recorded them, and merging is
   per-key count addition. That exactness is what keeps quantile
   readouts byte-identical across [jobs]. Key layout: 0 is the zero
   bucket; positive values map to [bucket_offset + octave*sub_count +
   sub] (monotone in the value), negative values to the negated key, so
   integer key order is value order. Non-finite observations update
   (count, sum, last) but are not bucketed. *)

let sub_count = 8
let bucket_offset = 100_000

let bucket_of_value v =
  if v = 0. then 0
  else
    let m, e = Float.frexp (Float.abs v) in
    (* m in [0.5, 1): sub-bucket of width 0.5 / sub_count. *)
    let sub = int_of_float ((m -. 0.5) *. 2. *. float_of_int sub_count) in
    let sub = if sub >= sub_count then sub_count - 1 else sub in
    let idx = (e * sub_count) + sub in
    if v > 0. then bucket_offset + idx else -(bucket_offset + idx)

(* The bucket's representative: its edge closest to zero, so quantile
   readouts are conservative in magnitude and, like the key itself,
   depend only on the bucket. *)
let bucket_value k =
  if k = 0 then 0.
  else
    let idx = abs k - bucket_offset in
    let e =
      if idx >= 0 then idx / sub_count
      else -(((-idx) + sub_count - 1) / sub_count)
    in
    let sub = idx - (e * sub_count) in
    let m = 0.5 +. (float_of_int sub *. 0.5 /. float_of_int sub_count) in
    let v = Float.ldexp m e in
    if k > 0 then v else -.v

(* ------------------------------------------------------------------ *)
(* Collectors *)

type cell = {
  mutable count : int;
  mutable sum : float;
  mutable vmin : float;
  mutable vmax : float;
  mutable last : float;
  (* Allocated on the first [observe]; counters and gauges never pay
     for it. *)
  mutable buckets : (int, int) Hashtbl.t option;
}

let bucket_incr c k n =
  let tbl =
    match c.buckets with
    | Some tbl -> tbl
    | None ->
      let tbl = Hashtbl.create 8 in
      c.buckets <- Some tbl;
      tbl
  in
  Hashtbl.replace tbl k (n + Option.value ~default:0 (Hashtbl.find_opt tbl k))

type t = { lock : Mutex.t; mutable cells : cell option array }

let create () = { lock = Mutex.create (); cells = Array.make 32 None }

let root = create ()

let ambient : t Domain.DLS.key = Domain.DLS.new_key (fun () -> root)

let current () = Domain.DLS.get ambient

let with_current t f =
  let saved = Domain.DLS.get ambient in
  Domain.DLS.set ambient t;
  Fun.protect ~finally:(fun () -> Domain.DLS.set ambient saved) f

let silenced f = with_current (create ()) f

let cell_of t (h : handle) =
  let n = Array.length t.cells in
  if h.id >= n then begin
    let cells = Array.make (max (h.id + 1) (2 * n)) None in
    Array.blit t.cells 0 cells 0 n;
    t.cells <- cells
  end;
  match t.cells.(h.id) with
  | Some c -> c
  | None ->
    let c =
      {
        count = 0;
        sum = 0.;
        vmin = nan;
        vmax = nan;
        last = nan;
        buckets = None;
      }
    in
    t.cells.(h.id) <- Some c;
    c

let widen c v =
  if c.count = 1 then begin
    c.vmin <- v;
    c.vmax <- v
  end
  else begin
    if v < c.vmin then c.vmin <- v;
    if v > c.vmax then c.vmax <- v
  end

let record t h f =
  Mutex.lock t.lock;
  (try f (cell_of t h)
   with e ->
     Mutex.unlock t.lock;
     raise e);
  Mutex.unlock t.lock

let incr ?(by = 1) h =
  record (current ()) h (fun c ->
      c.count <- c.count + by;
      c.sum <- c.sum +. float_of_int by)

let observe h v =
  record (current ()) h (fun c ->
      c.count <- c.count + 1;
      c.sum <- c.sum +. v;
      c.last <- v;
      widen c v;
      if Float.is_finite v then bucket_incr c (bucket_of_value v) 1)

let set h v =
  record (current ()) h (fun c ->
      c.count <- c.count + 1;
      c.last <- v)

let now () = Unix.gettimeofday ()

let time h f =
  let t0 = now () in
  Fun.protect ~finally:(fun () -> observe h (now () -. t0)) f

let merge_into dst src =
  (* Collectors are merged by the domain that owns [src] after its task
     completed, so only [dst] needs locking. *)
  Mutex.lock dst.lock;
  Array.iteri
    (fun id src_cell ->
      match src_cell with
      | None -> ()
      | Some s when s.count = 0 -> ()
      | Some s ->
        let h =
          (* ids are dense; find the handle to size dst's array. *)
          { id; name = ""; labels = []; kind = Counter; stable = true }
        in
        let d = cell_of dst h in
        let was_empty = d.count = 0 in
        d.count <- d.count + s.count;
        d.sum <- d.sum +. s.sum;
        d.last <- s.last;
        if was_empty then begin
          d.vmin <- s.vmin;
          d.vmax <- s.vmax
        end
        else begin
          if s.vmin < d.vmin then d.vmin <- s.vmin;
          if s.vmax > d.vmax then d.vmax <- s.vmax
        end;
        (* Bucketed histograms merge exactly: per-key count addition. *)
        match s.buckets with
        | None -> ()
        | Some tbl -> Hashtbl.iter (fun k n -> bucket_incr d k n) tbl)
    src.cells;
  Mutex.unlock dst.lock

let reset t =
  Mutex.lock t.lock;
  Array.iteri (fun i _ -> t.cells.(i) <- None) t.cells;
  Mutex.unlock t.lock

(* ------------------------------------------------------------------ *)
(* Snapshots *)

type row = {
  name : string;
  labels : (string * string) list;
  kind : kind;
  stable : bool;
  count : int;
  sum : float;
  vmin : float;
  vmax : float;
  last : float;
  buckets : (int * int) list;
}

let row_buckets (c : cell) =
  match c.buckets with
  | None -> []
  | Some tbl ->
    List.sort
      (fun (a, _) (b, _) -> compare a b)
      (Hashtbl.fold (fun k n acc -> (k, n) :: acc) tbl [])

(* Nearest-rank quantile over the bucket counts: the representative of
   the bucket holding the ceil(p * n)-th observation. [nan] when nothing
   was bucketed (counters, gauges, empty or all-non-finite histograms). *)
let quantile (r : row) p =
  match r.buckets with
  | [] -> nan
  | buckets ->
    let total = List.fold_left (fun acc (_, n) -> acc + n) 0 buckets in
    let rank = int_of_float (Float.ceil (p *. float_of_int total)) in
    let rank = max 1 (min rank total) in
    let rec go acc = function
      | [] -> r.vmax
      | (k, n) :: rest ->
        let acc = acc + n in
        if acc >= rank then bucket_value k else go acc rest
    in
    go 0 buckets

let snapshot ?(stable_only = false) t =
  Mutex.lock intern_lock;
  let handles = !registered in
  Mutex.unlock intern_lock;
  Mutex.lock t.lock;
  let rows =
    List.filter_map
      (fun (h : handle) ->
        if stable_only && not h.stable then None
        else if h.id >= Array.length t.cells then None
        else
          match t.cells.(h.id) with
          | None -> None
          | Some c when c.count = 0 -> None
          | Some c ->
            Some
              {
                name = h.name;
                labels = h.labels;
                kind = h.kind;
                stable = h.stable;
                count = c.count;
                sum = c.sum;
                vmin = c.vmin;
                vmax = c.vmax;
                last = c.last;
                buckets = row_buckets c;
              })
      handles
  in
  Mutex.unlock t.lock;
  List.sort
    (fun a b ->
      match String.compare a.name b.name with
      | 0 -> compare a.labels b.labels
      | c -> c)
    rows

let label_string labels =
  match labels with
  | [] -> ""
  | _ ->
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) labels)
    ^ "}"

let num f =
  if Float.is_nan f then "nan"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let quantile_suffix r =
  match r.kind with
  | Histogram | Timing ->
    Printf.sprintf " p50=%s p90=%s p99=%s"
      (num (quantile r 0.50))
      (num (quantile r 0.90))
      (num (quantile r 0.99))
  | Counter | Gauge -> ""

let render_stable t =
  let b = Buffer.create 256 in
  List.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf "%s%s %s count=%d sum=%s min=%s max=%s last=%s%s\n"
           r.name (label_string r.labels) (kind_to_string r.kind) r.count
           (num r.sum) (num r.vmin) (num r.vmax) (num r.last)
           (quantile_suffix r)))
    (snapshot ~stable_only:true t);
  Buffer.contents b

let row_to_json r =
  let distribution =
    match r.kind with
    | Counter | Gauge -> []
    | Histogram | Timing ->
      [
        ("p50", Json.Float (quantile r 0.50));
        ("p90", Json.Float (quantile r 0.90));
        ("p99", Json.Float (quantile r 0.99));
        ( "buckets",
          Json.List
            (List.map
               (fun (k, n) -> Json.List [ Json.Int k; Json.Int n ])
               r.buckets) );
      ]
  in
  Json.Obj
    ([
       ("name", Json.String r.name);
       ("labels", Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) r.labels));
       ("kind", Json.String (kind_to_string r.kind));
       ("count", Json.Int r.count);
       ("sum", Json.Float r.sum);
       ("min", Json.Float r.vmin);
       ("max", Json.Float r.vmax);
       ("last", Json.Float r.last);
     ]
    @ distribution)

let to_json t =
  let rows = snapshot t in
  let stable, volatile = List.partition (fun r -> r.stable) rows in
  Json.Obj
    [
      ("schema", Json.String "calm-metrics/v1");
      ("metrics", Json.List (List.map row_to_json stable));
      ("volatile", Json.List (List.map row_to_json volatile));
    ]

let pp_profile ?(redact_timings = false) ppf t =
  let rows = snapshot t in
  let stable, volatile = List.partition (fun r -> r.stable) rows in
  let key r = r.name ^ label_string r.labels in
  let width =
    List.fold_left (fun w r -> max w (String.length (key r))) 24 rows
  in
  let value r =
    match r.kind with
    | Counter -> string_of_int r.count
    | Gauge -> num r.last
    | Histogram | Timing ->
      Printf.sprintf "n=%d sum=%s min=%s max=%s p50=%s p90=%s p99=%s" r.count
        (num r.sum) (num r.vmin) (num r.vmax)
        (num (quantile r 0.50))
        (num (quantile r 0.90))
        (num (quantile r 0.99))
  in
  let redacted r =
    Printf.sprintf "n=%d sum=- min=- max=- p50=- p90=- p99=-" r.count
  in
  Format.fprintf ppf "== profile: stable metrics ==@.";
  List.iter
    (fun r ->
      Format.fprintf ppf "  %-*s %-9s %s@." width (key r)
        (kind_to_string r.kind) (value r))
    stable;
  if volatile <> [] then begin
    Format.fprintf ppf "== profile: timings and per-worker tallies \
                        (schedule-dependent) ==@.";
    List.iter
      (fun r ->
        Format.fprintf ppf "  %-*s %-9s %s@." width (key r)
          (kind_to_string r.kind)
          (if redact_timings then redacted r else value r))
      volatile
  end
