type kind = Counter | Gauge | Histogram | Timing

let kind_to_string = function
  | Counter -> "counter"
  | Gauge -> "gauge"
  | Histogram -> "histogram"
  | Timing -> "timing"

type handle = {
  id : int;
  name : string;
  labels : (string * string) list;
  kind : kind;
  stable : bool;
}

(* ------------------------------------------------------------------ *)
(* The global intern table: a metric identity is (name, labels, kind),
   shared by every collector. Handles are created at module
   initialization time (or lazily for dynamic labels), never on a hot
   path. *)

let intern_lock = Mutex.create ()
let interned : (string * (string * string) list * kind, handle) Hashtbl.t =
  Hashtbl.create 64
let registered : handle list ref = ref []
let next_id = ref 0

let register ?(labels = []) ?(stable = true) kind name =
  let labels = List.sort (fun (a, _) (b, _) -> String.compare a b) labels in
  let stable = stable && kind <> Timing in
  Mutex.lock intern_lock;
  let h =
    match Hashtbl.find_opt interned (name, labels, kind) with
    | Some h -> h
    | None ->
      let h = { id = !next_id; name; labels; kind; stable } in
      incr next_id;
      Hashtbl.add interned (name, labels, kind) h;
      registered := h :: !registered;
      h
  in
  Mutex.unlock intern_lock;
  h

let counter ?labels ?stable name = register ?labels ?stable Counter name
let gauge ?labels ?stable name = register ?labels ?stable Gauge name
let histogram ?labels ?stable name = register ?labels ?stable Histogram name
let timing ?labels name = register ?labels ~stable:false Timing name

(* ------------------------------------------------------------------ *)
(* Collectors *)

type cell = {
  mutable count : int;
  mutable sum : float;
  mutable vmin : float;
  mutable vmax : float;
  mutable last : float;
}

type t = { lock : Mutex.t; mutable cells : cell option array }

let create () = { lock = Mutex.create (); cells = Array.make 32 None }

let root = create ()

let ambient : t Domain.DLS.key = Domain.DLS.new_key (fun () -> root)

let current () = Domain.DLS.get ambient

let with_current t f =
  let saved = Domain.DLS.get ambient in
  Domain.DLS.set ambient t;
  Fun.protect ~finally:(fun () -> Domain.DLS.set ambient saved) f

let silenced f = with_current (create ()) f

let cell_of t (h : handle) =
  let n = Array.length t.cells in
  if h.id >= n then begin
    let cells = Array.make (max (h.id + 1) (2 * n)) None in
    Array.blit t.cells 0 cells 0 n;
    t.cells <- cells
  end;
  match t.cells.(h.id) with
  | Some c -> c
  | None ->
    let c = { count = 0; sum = 0.; vmin = nan; vmax = nan; last = nan } in
    t.cells.(h.id) <- Some c;
    c

let widen c v =
  if c.count = 1 then begin
    c.vmin <- v;
    c.vmax <- v
  end
  else begin
    if v < c.vmin then c.vmin <- v;
    if v > c.vmax then c.vmax <- v
  end

let record t h f =
  Mutex.lock t.lock;
  (try f (cell_of t h)
   with e ->
     Mutex.unlock t.lock;
     raise e);
  Mutex.unlock t.lock

let incr ?(by = 1) h =
  record (current ()) h (fun c ->
      c.count <- c.count + by;
      c.sum <- c.sum +. float_of_int by)

let observe h v =
  record (current ()) h (fun c ->
      c.count <- c.count + 1;
      c.sum <- c.sum +. v;
      c.last <- v;
      widen c v)

let set h v =
  record (current ()) h (fun c ->
      c.count <- c.count + 1;
      c.last <- v)

let now () = Unix.gettimeofday ()

let time h f =
  let t0 = now () in
  Fun.protect ~finally:(fun () -> observe h (now () -. t0)) f

let merge_into dst src =
  (* Collectors are merged by the domain that owns [src] after its task
     completed, so only [dst] needs locking. *)
  Mutex.lock dst.lock;
  Array.iteri
    (fun id src_cell ->
      match src_cell with
      | None -> ()
      | Some s when s.count = 0 -> ()
      | Some s ->
        let h =
          (* ids are dense; find the handle to size dst's array. *)
          { id; name = ""; labels = []; kind = Counter; stable = true }
        in
        let d = cell_of dst h in
        let was_empty = d.count = 0 in
        d.count <- d.count + s.count;
        d.sum <- d.sum +. s.sum;
        d.last <- s.last;
        if was_empty then begin
          d.vmin <- s.vmin;
          d.vmax <- s.vmax
        end
        else begin
          if s.vmin < d.vmin then d.vmin <- s.vmin;
          if s.vmax > d.vmax then d.vmax <- s.vmax
        end)
    src.cells;
  Mutex.unlock dst.lock

let reset t =
  Mutex.lock t.lock;
  Array.iteri (fun i _ -> t.cells.(i) <- None) t.cells;
  Mutex.unlock t.lock

(* ------------------------------------------------------------------ *)
(* Snapshots *)

type row = {
  name : string;
  labels : (string * string) list;
  kind : kind;
  stable : bool;
  count : int;
  sum : float;
  vmin : float;
  vmax : float;
  last : float;
}

let snapshot ?(stable_only = false) t =
  Mutex.lock intern_lock;
  let handles = !registered in
  Mutex.unlock intern_lock;
  Mutex.lock t.lock;
  let rows =
    List.filter_map
      (fun (h : handle) ->
        if stable_only && not h.stable then None
        else if h.id >= Array.length t.cells then None
        else
          match t.cells.(h.id) with
          | None -> None
          | Some c when c.count = 0 -> None
          | Some c ->
            Some
              {
                name = h.name;
                labels = h.labels;
                kind = h.kind;
                stable = h.stable;
                count = c.count;
                sum = c.sum;
                vmin = c.vmin;
                vmax = c.vmax;
                last = c.last;
              })
      handles
  in
  Mutex.unlock t.lock;
  List.sort
    (fun a b ->
      match String.compare a.name b.name with
      | 0 -> compare a.labels b.labels
      | c -> c)
    rows

let label_string labels =
  match labels with
  | [] -> ""
  | _ ->
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) labels)
    ^ "}"

let num f =
  if Float.is_nan f then "nan"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let render_stable t =
  let b = Buffer.create 256 in
  List.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf "%s%s %s count=%d sum=%s min=%s max=%s last=%s\n"
           r.name (label_string r.labels) (kind_to_string r.kind) r.count
           (num r.sum) (num r.vmin) (num r.vmax) (num r.last)))
    (snapshot ~stable_only:true t);
  Buffer.contents b

let row_to_json r =
  Json.Obj
    [
      ("name", Json.String r.name);
      ("labels", Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) r.labels));
      ("kind", Json.String (kind_to_string r.kind));
      ("count", Json.Int r.count);
      ("sum", Json.Float r.sum);
      ("min", Json.Float r.vmin);
      ("max", Json.Float r.vmax);
      ("last", Json.Float r.last);
    ]

let to_json t =
  let rows = snapshot t in
  let stable, volatile = List.partition (fun r -> r.stable) rows in
  Json.Obj
    [
      ("schema", Json.String "calm-metrics/v1");
      ("metrics", Json.List (List.map row_to_json stable));
      ("volatile", Json.List (List.map row_to_json volatile));
    ]

let pp_profile ?(redact_timings = false) ppf t =
  let rows = snapshot t in
  let stable, volatile = List.partition (fun r -> r.stable) rows in
  let key r = r.name ^ label_string r.labels in
  let width =
    List.fold_left (fun w r -> max w (String.length (key r))) 24 rows
  in
  let value r =
    match r.kind with
    | Counter -> string_of_int r.count
    | Gauge -> num r.last
    | Histogram | Timing ->
      Printf.sprintf "n=%d sum=%s min=%s max=%s" r.count (num r.sum)
        (num r.vmin) (num r.vmax)
  in
  let redacted r = Printf.sprintf "n=%d sum=- min=- max=-" r.count in
  Format.fprintf ppf "== profile: stable metrics ==@.";
  List.iter
    (fun r ->
      Format.fprintf ppf "  %-*s %-9s %s@." width (key r)
        (kind_to_string r.kind) (value r))
    stable;
  if volatile <> [] then begin
    Format.fprintf ppf "== profile: timings and per-worker tallies \
                        (schedule-dependent) ==@.";
    List.iter
      (fun r ->
        Format.fprintf ppf "  %-*s %-9s %s@." width (key r)
          (kind_to_string r.kind)
          (if redact_timings then redacted r else value r))
      volatile
  end
