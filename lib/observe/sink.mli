(** Structured event sink with pluggable exporters.

    A sink collects timestamped events — instants and spans — from any
    domain; each domain tags its events with an ambient {e track} name
    (the pool labels its workers [worker-1..n-1]), so a Chrome
    [trace_event] export shows the pool's workers as separate tracks in
    Perfetto / [chrome://tracing].

    The process-wide {!default} sink starts {e disabled} and costs one
    branch per event while disabled; the CLI enables it when the user
    passes [--trace-out]. *)

type t

type event = {
  ts : float;  (** seconds since the sink was created/enabled *)
  dur : float option;  (** [Some seconds] for spans, [None] for instants *)
  track : string;  (** e.g. ["main"], ["worker-3"] *)
  cat : string;  (** subsystem: ["net"], ["pool"], ["eval"], ... *)
  name : string;
  args : (string * Json.t) list;
}

val create : unit -> t
(** A fresh, enabled sink with its clock zeroed at the call. *)

val default : t
(** The process-wide sink; starts disabled. *)

val enable : t -> unit
(** Clear the sink, re-zero its clock, start recording. *)

val disable : t -> unit
val is_enabled : t -> bool

val set_track : string -> unit
(** Set this domain's ambient track name (default ["main"]). *)

val record :
  ?sink:t -> ?cat:string -> ?args:(string * Json.t) list -> string -> unit
(** Record an instant event on the ambient track ([sink] defaults to
    {!default}); a no-op when the sink is disabled. *)

val span :
  ?sink:t ->
  ?cat:string ->
  ?args:(string * Json.t) list ->
  string ->
  (unit -> 'a) ->
  'a
(** Run the thunk and record a span covering it (recorded even when the
    thunk raises). When the sink is disabled, just runs the thunk. *)

val events : t -> event list
(** In chronological (recording) order. *)

(** {1 Exporters} *)

val to_jsonl : event list -> string
(** One JSON object per line:
    [{"ts":..,"dur":..,"track":..,"cat":..,"name":..,"args":{..}}]. *)

val event_of_json : Json.t -> (event, string) result
(** Inverse of one {!to_jsonl} line — the round-trip half the test wall
    checks. *)

val of_jsonl : string -> (event list, string) result

val to_chrome : event list -> string
(** A Chrome [trace_event] JSON document: spans as ["ph":"X"] complete
    events and instants as ["ph":"i"], microsecond timestamps, one [tid]
    per track (with [thread_name] metadata), loadable in Perfetto. *)

val pp_human : ?limit:int -> Format.formatter -> event list -> unit
(** The first [limit] (default 40) events, one per line. *)
