(** A minimal JSON tree, printer, and parser.

    The telemetry layer emits machine-readable artifacts (metrics
    snapshots, JSONL event streams, Chrome [trace_event] files, bench
    trajectories) and the test wall parses them back; keeping the codec
    in-tree avoids a dependency and pins the exact syntax the exporters
    guarantee. Numbers are split into [Int] and [Float] so counters
    survive a round-trip without a [1 -> 1.0] drift. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering with RFC 8259 string escaping.
    [Float] values render via ["%.17g"] (shortest round-trippable form is
    not attempted); [nan] and infinities render as [null]. *)

val to_string_pretty : t -> string
(** Two-space indented rendering, for humans. *)

val of_string : string -> (t, string) result
(** Parses a single JSON value (surrounding whitespace allowed). Numbers
    without [.], [e], or [E] parse as [Int]. *)

val of_string_exn : string -> t
(** @raise Invalid_argument on a parse error. *)

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] on other constructors. *)

val equal : t -> t -> bool
