(** A minimal JSON tree, printer, and parser.

    The telemetry layer emits machine-readable artifacts (metrics
    snapshots, JSONL event streams, Chrome [trace_event] files, bench
    trajectories) and the test wall parses them back; keeping the codec
    in-tree avoids a dependency and pins the exact syntax the exporters
    guarantee. Numbers are split into [Int] and [Float] so counters
    survive a round-trip without a [1 -> 1.0] drift. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering with RFC 8259 string escaping.
    Strings are treated as byte sequences: every byte outside printable
    ASCII (controls, DEL, and bytes ≥ 0x80) is escaped as [\u00XX], so
    the output is pure ASCII and survives strings holding arbitrary raw
    bytes. [Float] values render via ["%.17g"] (shortest round-trippable
    form is not attempted); [nan] and infinities render as [null]. *)

val to_string_pretty : t -> string
(** Two-space indented rendering, for humans. *)

val of_string : string -> (t, string) result
(** Parses a single JSON value (surrounding whitespace allowed). Numbers
    without [.], [e], or [E] parse as [Int]. [\uXXXX] escapes below
    0x100 decode to the single byte — the inverse of {!to_string}'s
    byte-oriented escaping, so print/parse is the identity on arbitrary
    byte strings; higher BMP code points decode as UTF-8. *)

val of_string_exn : string -> t
(** @raise Invalid_argument on a parse error. *)

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] on other constructors. *)

val equal : t -> t -> bool
