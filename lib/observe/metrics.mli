(** Metrics registry: counters, gauges, and histograms keyed by
    name + labels, with a strict stable/volatile split.

    The paper's constructive results are operational — Theorems 4.3/4.4/4.5
    are claims about how many messages, rounds, and heartbeats a
    coordination-free strategy spends — so the semantic counters of a run
    are first-class outputs, not debug noise. Two requirements shape this
    module:

    {ol
    {- {b Determinism under [?jobs].} Every {e stable} metric must have
       byte-identical values whether the work ran sequentially or fanned
       out on the {!Parallel.Pool}. Work units executed on the pool record
       into per-task collectors which the pool merges back {e in input
       order} (and, for cancelled searches, only up to the winning index),
       so stable aggregates cannot observe scheduling. Wall-clock
       measurements and per-worker tallies are inherently
       schedule-dependent; they are registered as {e volatile} and
       excluded from stable snapshots and equality.}
    {- {b Zero plumbing on hot paths.} Instrumented code records into an
       ambient per-domain collector ({!with_current}); handles are
       interned once at module initialization, so a hit on a hot path is a
       lock, two or three field updates, and an unlock.}} *)

type kind = Counter | Gauge | Histogram | Timing

type t
(** A collector: a set of cells, one per registered metric. *)

type handle
(** An interned (name, labels, kind) triple, shared by all collectors. *)

(** {1 Registering metrics} *)

val counter : ?labels:(string * string) list -> ?stable:bool -> string -> handle
(** Monotonically increasing integer total. [stable] defaults to [true]. *)

val gauge : ?labels:(string * string) list -> ?stable:bool -> string -> handle
(** Last-written value. *)

val histogram :
  ?labels:(string * string) list -> ?stable:bool -> string -> handle
(** Distribution: count, sum, min, max, plus a log-bucketed value
    histogram supporting {!quantile} readout. Buckets are HDR-style —
    base-2 octaves split into equal mantissa sub-buckets — so a value's
    bucket depends on the value alone: the same observations produce the
    same buckets in any order, and merging per-task buffers is exact
    per-bucket count addition, keeping p50/p90/p99 readouts of stable
    histograms byte-identical across [jobs]. *)

val timing : ?labels:(string * string) list -> string -> handle
(** A histogram of durations in seconds; always volatile. *)

(** {1 Recording (into the ambient collector)} *)

val incr : ?by:int -> handle -> unit
val set : handle -> float -> unit
val observe : handle -> float -> unit

val time : handle -> (unit -> 'a) -> 'a
(** Run the thunk, record its wall-clock duration, and re-raise whatever
    it raises (the duration is recorded either way). *)

val now : unit -> float
(** The clock used by {!time} and by the event {!Sink}: seconds, from
    [Unix.gettimeofday]. *)

(** {1 Collectors} *)

val root : t
(** The process-wide default collector. Every domain's ambient collector
    starts as [root]; the CLI snapshots it for [--metrics-out]. *)

val create : unit -> t

val current : unit -> t
(** This domain's ambient collector. *)

val with_current : t -> (unit -> 'a) -> 'a
(** Run the thunk with the ambient collector rebound (restored on exit,
    also on exceptions). This is what the pool uses to give each task its
    own buffer. *)

val silenced : (unit -> 'a) -> 'a
(** Run the thunk with a throwaway ambient collector: everything it
    records is discarded. Used by the model checker, whose inner
    what-if simulation must not pollute the network counters. *)

val merge_into : t -> t -> unit
(** [merge_into dst src] adds [src]'s cells into [dst]: counters and
    histograms add (count, sum), widen (min, max), and add per-bucket
    counts; a gauge written in [src] overwrites the one in [dst].
    Merging per-task buffers in input order therefore reproduces exactly
    the sequential recording order. *)

val reset : t -> unit

(** {1 Snapshots} *)

type row = {
  name : string;
  labels : (string * string) list;  (** sorted by label key *)
  kind : kind;
  stable : bool;
  count : int;      (** counter total, or number of observations *)
  sum : float;
  vmin : float;     (** [nan] when count = 0 *)
  vmax : float;
  last : float;     (** gauges: the last written value *)
  buckets : (int * int) list;
      (** log-bucket key -> observation count, sorted by key (which is
          value order); empty for counters and gauges *)
}

val quantile : row -> float -> float
(** Nearest-rank quantile from the bucket counts: the representative
    value (zero-side edge) of the bucket holding the [ceil (p * n)]-th
    observation. [nan] when the row has no buckets. *)

val bucket_of_value : float -> int
(** The log-bucket key of a finite value: 0 for zero, sign-mirrored
    monotone integer keys otherwise. Exposed for the determinism wall. *)

val bucket_value : int -> float
(** The representative of a bucket key: its edge closest to zero.
    [bucket_of_value (bucket_value k) = k] for every key produced by
    {!bucket_of_value}. *)

val snapshot : ?stable_only:bool -> t -> row list
(** Rows with at least one recording, sorted by (name, labels); with
    [stable_only] (default [false]) volatile rows are dropped. *)

val render_stable : t -> string
(** Canonical one-line-per-row text of the stable rows — the string the
    determinism wall compares byte-for-byte across [jobs] 1/2/4. *)

val to_json : t -> Json.t
(** [{ "schema": "calm-metrics/v1", "metrics": [...], "volatile": [...] }];
    the [metrics] section holds the stable rows. *)

val pp_profile :
  ?redact_timings:bool -> Format.formatter -> t -> unit
(** Human profile tables: stable metrics, then volatile/timing rows. With
    [redact_timings] every schedule-dependent number is replaced by ["-"]
    so the output is reproducible (used by the golden fixture). *)

val kind_to_string : kind -> string
