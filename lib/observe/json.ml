type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing *)

(* Strings are treated as byte sequences, not UTF-8: every byte outside
   printable ASCII is escaped as [\u00XX], so the output is pure ASCII
   and always well-formed JSON even for strings holding raw control or
   high bytes. The parser decodes [\uXXXX] below 0x100 back to the
   single byte, making print/parse the identity on arbitrary bytes. *)
let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 || Char.code c >= 0x7f ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let float_repr f =
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then
    "null"
  else
    let s = Printf.sprintf "%.17g" f in
    (* Keep floats recognizable as floats on re-parse. *)
    if String.contains s '.' || String.contains s 'e' || String.contains s 'E'
    then s
    else s ^ ".0"

let rec write b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> Buffer.add_string b (float_repr f)
  | String s -> escape_string b s
  | List l ->
    Buffer.add_char b '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char b ',';
        write b x)
      l;
    Buffer.add_char b ']'
  | Obj fields ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        escape_string b k;
        Buffer.add_char b ':';
        write b v)
      fields;
    Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  write b v;
  Buffer.contents b

let rec write_pretty b indent = function
  | List (_ :: _ as l) ->
    let pad = String.make indent ' ' and pad' = String.make (indent + 2) ' ' in
    Buffer.add_string b "[\n";
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_string b ",\n";
        Buffer.add_string b pad';
        write_pretty b (indent + 2) x)
      l;
    Buffer.add_char b '\n';
    Buffer.add_string b pad;
    Buffer.add_char b ']'
  | Obj (_ :: _ as fields) ->
    let pad = String.make indent ' ' and pad' = String.make (indent + 2) ' ' in
    Buffer.add_string b "{\n";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string b ",\n";
        Buffer.add_string b pad';
        escape_string b k;
        Buffer.add_string b ": ";
        write_pretty b (indent + 2) v)
      fields;
    Buffer.add_char b '\n';
    Buffer.add_string b pad;
    Buffer.add_char b '}'
  | v -> write b v

let to_string_pretty v =
  let b = Buffer.create 256 in
  write_pretty b 0 v;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parsing *)

exception Fail of string

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let fail c msg = raise (Fail (Printf.sprintf "at offset %d: %s" c.pos msg))

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance c;
    skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> fail c (Printf.sprintf "expected %c" ch)

let literal c word value =
  let n = String.length word in
  if
    c.pos + n <= String.length c.src
    && String.sub c.src c.pos n = word
  then (
    c.pos <- c.pos + n;
    value)
  else fail c (Printf.sprintf "expected %s" word)

let parse_string c =
  expect c '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
      advance c;
      match peek c with
      | Some '"' -> advance c; Buffer.add_char b '"'; go ()
      | Some '\\' -> advance c; Buffer.add_char b '\\'; go ()
      | Some '/' -> advance c; Buffer.add_char b '/'; go ()
      | Some 'n' -> advance c; Buffer.add_char b '\n'; go ()
      | Some 't' -> advance c; Buffer.add_char b '\t'; go ()
      | Some 'r' -> advance c; Buffer.add_char b '\r'; go ()
      | Some 'b' -> advance c; Buffer.add_char b '\b'; go ()
      | Some 'f' -> advance c; Buffer.add_char b '\012'; go ()
      | Some 'u' ->
        advance c;
        if c.pos + 4 > String.length c.src then fail c "bad \\u escape";
        let hex = String.sub c.src c.pos 4 in
        let code =
          try int_of_string ("0x" ^ hex)
          with _ -> fail c "bad \\u escape"
        in
        c.pos <- c.pos + 4;
        (* Codes below 0x100 decode to the single byte (the printer's
           byte-oriented [\u00XX] escapes round-trip); higher BMP codes
           decode as UTF-8 (surrogate pairs are not recombined — the
           exporters never emit them). *)
        if code < 0x100 then Buffer.add_char b (Char.chr code)
        else if code < 0x800 then begin
          Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
          Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
        end
        else begin
          Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
          Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
          Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
        end;
        go ()
      | _ -> fail c "bad escape")
    | Some ch ->
      advance c;
      Buffer.add_char b ch;
      go ()
  in
  go ();
  Buffer.contents b

let parse_number c =
  let start = c.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  let rec go () =
    match peek c with
    | Some ch when is_num_char ch ->
      advance c;
      go ()
    | _ -> ()
  in
  go ();
  let s = String.sub c.src start (c.pos - start) in
  let is_float =
    String.contains s '.' || String.contains s 'e' || String.contains s 'E'
  in
  if is_float then
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> fail c "bad number"
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> fail c "bad number"

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some 'n' -> literal c "null" Null
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some '"' -> String (parse_string c)
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then (advance c; List [])
    else
      let rec items acc =
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          items (v :: acc)
        | Some ']' ->
          advance c;
          List.rev (v :: acc)
        | _ -> fail c "expected , or ] in array"
      in
      List (items [])
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then (advance c; Obj [])
    else
      let field () =
        skip_ws c;
        let k = parse_string c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        (k, v)
      in
      let rec fields acc =
        let kv = field () in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          fields (kv :: acc)
        | Some '}' ->
          advance c;
          List.rev (kv :: acc)
        | _ -> fail c "expected , or } in object"
      in
      Obj (fields [])
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> fail c (Printf.sprintf "unexpected character %c" ch)

let of_string s =
  let c = { src = s; pos = 0 } in
  match parse_value c with
  | v ->
    skip_ws c;
    if c.pos = String.length s then Ok v
    else Error (Printf.sprintf "trailing garbage at offset %d" c.pos)
  | exception Fail msg -> Error msg

let of_string_exn s =
  match of_string s with
  | Ok v -> v
  | Error msg -> invalid_arg ("Json.of_string_exn: " ^ msg)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> x = y
  | String x, String y -> String.equal x y
  | List x, List y -> List.equal equal x y
  | Obj x, Obj y ->
    List.equal (fun (k, v) (k', v') -> String.equal k k' && equal v v') x y
  | _ -> false
