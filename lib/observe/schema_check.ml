let ( let* ) = Result.bind

let error fmt = Printf.ksprintf (fun s -> Error s) fmt

let field name j =
  match Json.member name j with
  | Some v -> Ok v
  | None -> error "missing field %S" name

let string_field name j =
  match Json.member name j with
  | Some (Json.String s) -> Ok s
  | Some _ -> error "field %S is not a string" name
  | None -> error "missing field %S" name

let number_field name j =
  match Json.member name j with
  | Some (Json.Float f) -> Ok f
  | Some (Json.Int i) -> Ok (float_of_int i)
  | Some _ -> error "field %S is not a number" name
  | None -> error "missing field %S" name

let int_field name j =
  match Json.member name j with
  | Some (Json.Int i) -> Ok i
  | Some _ -> error "field %S is not an integer" name
  | None -> error "missing field %S" name

let list_field name j =
  match Json.member name j with
  | Some (Json.List l) -> Ok l
  | Some _ -> error "field %S is not an array" name
  | None -> error "missing field %S" name

let obj_field name j =
  match Json.member name j with
  | Some (Json.Obj o) -> Ok o
  | Some _ -> error "field %S is not an object" name
  | None -> error "missing field %S" name

let expect_schema tag j =
  let* s = string_field "schema" j in
  if s = tag then Ok () else error "schema is %S, expected %S" s tag

let rec each f i = function
  | [] -> Ok ()
  | x :: rest -> (
    match f x with
    | Ok () -> each f (i + 1) rest
    | Error e -> error "entry %d: %s" i e)

let known_kinds = [ "counter"; "gauge"; "histogram"; "timing" ]

(* A [[tick, value]] / [[bucket, count]] pair list shared by the series
   points and the histogram buckets. *)
let pair_list ~what ~second_int name l =
  each
    (fun p ->
      match p with
      | Json.List [ Json.Int _; Json.Int _ ] -> Ok ()
      | Json.List [ Json.Int _; (Json.Float _ | Json.Null) ]
        when not second_int ->
        Ok ()
      | _ -> error "%S: %s entry is not an [int, %s] pair" name what
               (if second_int then "int" else "number"))
    0 l

let validate_row row =
  let* name = string_field "name" row in
  let* _ = obj_field "labels" row in
  let* kind = string_field "kind" row in
  let* count = int_field "count" row in
  let* _ = field "sum" row in
  let* _ = field "min" row in
  let* _ = field "max" row in
  let* _ = field "last" row in
  let* () =
    match Json.member "buckets" row with
    | None -> Ok ()
    | Some (Json.List l) -> pair_list ~what:"bucket" ~second_int:true name l
    | Some _ -> error "row %S: buckets is not an array" name
  in
  if not (List.mem kind known_kinds) then
    error "row %S has unknown kind %S" name kind
  else if count < 0 then error "row %S has negative count" name
  else Ok ()

let validate_metrics j =
  let* () = expect_schema "calm-metrics/v1" j in
  let* stable = list_field "metrics" j in
  let* volatile = list_field "volatile" j in
  let* () = each validate_row 0 stable in
  each validate_row 0 volatile

let validate_bench j =
  let* () = expect_schema "calm-bench/v1" j in
  let* _ = field "quick" j in
  let* jobs = int_field "jobs" j in
  let* experiments = list_field "experiments" j in
  if jobs < 1 then error "jobs must be >= 1"
  else if experiments = [] then error "experiments array is empty"
  else
    each
      (fun e ->
        let* id = string_field "id" e in
        let* wall = number_field "wall_s" e in
        let* _ = obj_field "metrics" e in
        if wall < 0. then error "experiment %S has negative wall_s" id
        else Ok ())
      0 experiments

let validate_causal j =
  let* () = expect_schema "calm-causal/v1" j in
  let* network = list_field "network" j in
  let* () =
    each
      (function
        | Json.String _ -> Ok ()
        | _ -> error "network entry is not a string")
      0 network
  in
  if network = [] then error "network array is empty"
  else
    let* events = list_field "events" j in
    let fact_list name e =
      let* l = list_field name e in
      each
        (function
          | Json.String _ -> Ok ()
          | _ -> error "%s entry is not a string" name)
        0 l
    in
    each
      (fun e ->
        let* index = int_field "index" e in
        let* _node = string_field "node" e in
        let* lamport = int_field "lamport" e in
        let* vector = obj_field "vector" e in
        let* origins = list_field "origins" e in
        let* () = fact_list "delivered" e in
        let* () = fact_list "sent" e in
        let* () = fact_list "output_delta" e in
        if index < 1 then error "event index %d is not positive" index
        else if lamport < 1 then
          error "event #%d has lamport %d < 1" index lamport
        else
          let* () =
            each
              (function
                | _, Json.Int k when k >= 1 -> Ok ()
                | k, _ -> error "vector component %S is not a positive int" k)
              0 vector
          in
          let* () =
            each
              (function
                | Json.List [ Json.String _; Json.Int o ] when o >= 1 -> Ok ()
                | _ -> error "origin is not a [fact, send index] pair")
              0 origins
          in
          (* Fault annotations are optional (present only when
             non-default, so failure-free documents stay unchanged). *)
          let* () =
            match Json.member "dup" e with
            | None -> Ok ()
            | Some (Json.Int d) when d >= 1 -> Ok ()
            | Some _ -> error "event #%d: dup is not an int >= 1" index
          in
          let* () =
            match Json.member "restart" e with
            | None | Some (Json.Bool _) -> Ok ()
            | Some _ -> error "event #%d: restart is not a bool" index
          in
          let* () =
            match Json.member "injected" e with
            | None -> Ok ()
            | Some (Json.List _) -> fact_list "injected" e
            | Some _ -> error "event #%d: injected is not an array" index
          in
          if vector = [] then error "event #%d has an empty vector" index
          else Ok ())
      0 events

let validate_profile j =
  let* () = expect_schema "calm-profile/v1" j in
  let* spans = list_field "spans" j in
  each
    (fun s ->
      let* path = string_field "path" s in
      let* count = int_field "count" s in
      let* annots = obj_field "annots" s in
      let* total = number_field "total_s" s in
      let* self = number_field "self_s" s in
      if path = "" then error "span has an empty path"
      else if List.exists (( = ) "") (String.split_on_char '/' path) then
        error "span path %S has an empty frame" path
      else if count < 0 then error "span %S has negative count %d" path count
      else if total < 0. then error "span %S has negative total_s" path
      else if self < 0. then error "span %S has negative self_s" path
      else if self > total +. 1e-9 then
        error "span %S has self_s exceeding total_s" path
      else
        each
          (function
            | _, Json.Int v when v >= 0 -> Ok ()
            | k, _ ->
                error "span %S annot %S is not a non-negative int" path k)
          0 annots)
    0 spans

let validate_trace j =
  let* events = list_field "traceEvents" j in
  each
    (fun e ->
      let* ph = string_field "ph" e in
      let* _ = int_field "pid" e in
      let* _ = int_field "tid" e in
      if ph = "M" then Ok ()
      else
        let* _ = string_field "name" e in
        let* _ = number_field "ts" e in
        Ok ())
    0 events

(* The calm-series/v1 export is JSONL: a header line carrying the schema
   tag, then one object per series. Validated line by line so an error
   names the offending line. *)
let validate_series_row j =
  let* name = string_field "series" j in
  let* labels = obj_field "labels" j in
  let* () =
    each
      (function
        | _, Json.String _ -> Ok ()
        | k, _ -> error "label %S is not a string" k)
      0 labels
  in
  let* () =
    match Json.member "stable" j with
    | Some (Json.Bool _) -> Ok ()
    | Some _ -> error "series %S: stable is not a bool" name
    | None -> error "series %S: missing field \"stable\"" name
  in
  let* stride = int_field "stride" j in
  let* points = list_field "points" j in
  if name = "" then error "series has an empty name"
  else if stride < 1 then error "series %S has stride %d < 1" name stride
  else pair_list ~what:"point" ~second_int:false name points

let validate_series_jsonl s =
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' s)
  in
  match lines with
  | [] -> error "empty series document"
  | header :: rows ->
    let* h =
      match Json.of_string header with
      | Ok j -> Ok j
      | Error e -> error "header line: %s" e
    in
    let* () = expect_schema "calm-series/v1" h in
    let rec go lineno = function
      | [] -> Ok ()
      | line :: rest -> (
        match Json.of_string line with
        | Error e -> error "line %d: %s" lineno e
        | Ok j -> (
          match validate_series_row j with
          | Ok () -> go (lineno + 1) rest
          | Error e -> error "line %d: %s" lineno e))
    in
    go 2 rows
