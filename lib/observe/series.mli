(** Bounded time-series recorder: how a run evolves, not just its
    totals.

    {!Metrics} answers "how much, in total" — this module records the
    trajectory: one {e point} per (series, labels, tick), where the tick
    is a semantic coordinate of the run (stabilization round, BFS depth,
    base ordinal, apply ordinal), never a wall clock. Three constraints
    shape it:

    {ol
    {- {b One atomic load when off.} Like {!Profile}, recording is gated
       on a global flag; instrumented hot paths pay a single
       [Atomic.get] when the recorder is disabled.}
    {- {b Determinism under [?jobs].} Points are keyed by tick, work
       units on the {!Parallel.Pool} record into per-task buffers
       ({!task_buffer}: unbounded, so they keep every raw point), and
       the pool replays those buffers into the caller's recorder in
       input order — so a stable series is byte-identical across job
       counts, exactly like stable metrics.}
    {- {b Bounded memory.} Each series keeps at most [capacity] points.
       On overflow the stride doubles and only points with
       [tick mod stride = 0] survive (deterministic 2:1 downsampling).
       The keep-set depends on the tick alone, so downsampling commutes
       with merging — the property the test wall pins.}} *)

(** {1 Gate} *)

val enable : unit -> unit
val disable : unit -> unit
val is_enabled : unit -> bool

(** {1 Recorders} *)

type t

val default_capacity : int
(** 512 points per (series, labels) key. *)

val create : ?capacity:int -> unit -> t

val root : t
(** The process-wide default recorder; the CLI exports it for
    [--series-out]. *)

val current : unit -> t
val with_current : t -> (unit -> 'a) -> 'a
val silenced : (unit -> 'a) -> 'a

val task_buffer : unit -> t
(** An unbounded recorder for one pool task: it never downsamples, so
    {!merge_into} can replay its raw points and reproduce exactly the
    sequential arrival sequence (stride decisions included). *)

(** {1 Recording} *)

val sample :
  ?labels:(string * string) list ->
  ?stable:bool ->
  string ->
  tick:int ->
  float ->
  unit
(** Record one point of the ambient recorder's series at an explicit
    tick. Sampling the same tick again overwrites (last write wins).
    [stable] defaults to [true]; pass [false] for wall-clock-derived
    values, which are excluded from {!render_stable}. No-op when the
    recorder is disabled. *)

val sample_auto :
  ?labels:(string * string) list -> ?stable:bool -> string -> float -> unit
(** Like {!sample} with the tick auto-assigned from the series' arrival
    count. Auto ticks are renumbered on {!merge_into} replay, so
    pool-buffered auto series reproduce the sequential numbering. *)

val with_label : string * string -> (unit -> 'a) -> 'a
(** Scope an extra label onto every sample recorded inside (e.g. the
    sweep labels each cell, keeping parallel cells' series distinct). *)

(** {1 Merging and downsampling} *)

val merge_into : t -> t -> unit
(** Replay [src]'s points into [dst]: keys in sorted order, points in
    arrival order, strides aligned upward first. Replaying input-ordered
    task buffers reproduces the sequential recording. *)

val downsample : t -> unit
(** Double every series' stride and drop the points the new stride
    excludes — the same step overflow triggers; exposed for the
    commutation property test. *)

val reset : t -> unit

(** {1 Snapshots and exporters} *)

type point = { tick : int; value : float }

type row = {
  name : string;
  labels : (string * string) list;  (** sorted by label key *)
  stable : bool;
  stride : int;
  points : point list;  (** arrival order *)
}

val rows : ?stable_only:bool -> t -> row list
(** Non-empty series sorted by (name, labels). *)

val render_stable : t -> string
(** Canonical one-line-per-series text of the stable rows — compared
    byte-for-byte across [jobs] by the determinism wall. *)

val to_jsonl : t -> string
(** The [calm-series/v1] JSONL export: a [{"schema":"calm-series/v1"}]
    header line, then one JSON object per series with
    [series]/[labels]/[stable]/[stride]/[points] ([[tick, value]]
    pairs). Validated by {!Schema_check.validate_series_jsonl}. *)

(** {1 Live flight recorder} *)

val set_live : ?out:out_channel -> float -> unit
(** Enable periodic progress lines: whenever a sample lands and at least
    [cadence] seconds passed since the last emission, print one
    [\[live\] series n=… last=… p50=… p90=… p99=… rate=…/s eta=…] line
    for the series that fired (rate and quantiles from the buffered
    points, ETA against {!set_target} when one is set). A cadence of 0
    (the default state) disables emission. *)

val set_target : string -> float -> unit
(** Expected total number of samples for a series name, used for the
    live line's ETA; non-positive clears the target. *)
