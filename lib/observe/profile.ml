(* Hierarchical wall-time attribution layered on the Metrics registry.
   See profile.mli for the design constraints (zero cost when off,
   spans-as-metrics for jobs-invariance, rooted paths across domains). *)

let enabled = Atomic.make false
let enable () = Atomic.set enabled true
let disable () = Atomic.set enabled false
let is_enabled () = Atomic.get enabled

(* The ambient span path, deepest frame first, per domain. Worker
   domains start empty — which is why pool-reachable sites must use
   [span_rooted]. *)
let ambient : string list Domain.DLS.key = Domain.DLS.new_key (fun () -> [])

let sanitize frame =
  String.map
    (fun c ->
      match c with '/' | ';' | ' ' | '\n' | '\t' -> '_' | c -> c)
    frame

let path_string rev_path = String.concat "/" (List.rev rev_path)

let record rev_path f =
  let p = path_string rev_path in
  Metrics.incr (Metrics.counter ~labels:[ ("path", p) ] "profile.span");
  let saved = Domain.DLS.get ambient in
  Domain.DLS.set ambient rev_path;
  Fun.protect
    ~finally:(fun () -> Domain.DLS.set ambient saved)
    (fun () -> Metrics.time (Metrics.timing ~labels:[ ("path", p) ] "profile.time") f)

let span name f =
  if not (Atomic.get enabled) then f ()
  else record (sanitize name :: Domain.DLS.get ambient) f

let span_rooted path f =
  if not (Atomic.get enabled) then f ()
  else record (List.rev_map sanitize path) f

let annot ?(by = 1) key =
  if Atomic.get enabled then
    let p = path_string (Domain.DLS.get ambient) in
    Metrics.incr ~by
      (Metrics.counter
         ~labels:[ ("annot", sanitize key); ("path", p) ]
         "profile.annot")

(* ------------------------------------------------------------------ *)
(* Reconstruction: metric rows -> span forest.                         *)

type node = {
  path : string list;
  count : int;
  annots : (string * int) list;
  total_s : float;
  self_s : float;
  children : node list;
}

let spans t =
  let counts : (string, int) Hashtbl.t = Hashtbl.create 32 in
  let times : (string, float) Hashtbl.t = Hashtbl.create 32 in
  let annots : (string, (string * int) list) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun (r : Metrics.row) ->
      let path = List.assoc_opt "path" r.Metrics.labels in
      match (r.Metrics.name, path) with
      | "profile.span", Some p -> Hashtbl.replace counts p r.Metrics.count
      | "profile.time", Some p -> Hashtbl.replace times p r.Metrics.sum
      | "profile.annot", Some p -> (
          match List.assoc_opt "annot" r.Metrics.labels with
          | Some k ->
              let prev = Option.value ~default:[] (Hashtbl.find_opt annots p) in
              Hashtbl.replace annots p ((k, r.Metrics.count) :: prev)
          | None -> ())
      | _ -> ())
    (Metrics.snapshot t);
  let all_paths = Hashtbl.create 32 in
  let add_path p = if p <> "" then Hashtbl.replace all_paths p () in
  Hashtbl.iter (fun p _ -> add_path p) counts;
  Hashtbl.iter (fun p _ -> add_path p) times;
  Hashtbl.iter (fun p _ -> add_path p) annots;
  let frames =
    Hashtbl.fold (fun p () acc -> String.split_on_char '/' p :: acc) all_paths []
  in
  let rec build prefix frames =
    let heads =
      List.sort_uniq String.compare
        (List.filter_map (function [] -> None | h :: _ -> Some h) frames)
    in
    List.map
      (fun head ->
        let path = prefix @ [ head ] in
        let p = String.concat "/" path in
        let tails =
          List.filter_map
            (function
              | h :: (_ :: _ as tl) when h = head -> Some tl | _ -> None)
            frames
        in
        let children = build path tails in
        let total_s = Option.value ~default:0. (Hashtbl.find_opt times p) in
        let child_total =
          List.fold_left (fun acc c -> acc +. c.total_s) 0. children
        in
        {
          path;
          count = Option.value ~default:0 (Hashtbl.find_opt counts p);
          annots =
            List.sort compare (Option.value ~default:[] (Hashtbl.find_opt annots p));
          total_s;
          self_s = Float.max 0. (total_s -. child_total);
          children;
        })
      heads
  in
  build [] frames

let rec flatten nodes =
  List.concat_map (fun n -> n :: flatten n.children) nodes

let coverage n =
  if n.total_s <= 0. then 1.0
  else
    Float.min 1.0
      (List.fold_left (fun acc c -> acc +. c.total_s) 0. n.children /. n.total_s)

(* ------------------------------------------------------------------ *)
(* Exporters.                                                          *)

let render_stable t =
  let buf = Buffer.create 256 in
  List.iter
    (fun n ->
      Buffer.add_string buf (String.concat "/" n.path);
      Buffer.add_string buf (Printf.sprintf " count=%d" n.count);
      List.iter
        (fun (k, v) -> Buffer.add_string buf (Printf.sprintf " %s=%d" k v))
        n.annots;
      Buffer.add_char buf '\n')
    (flatten (spans t));
  Buffer.contents buf

let to_json t =
  let span_json n =
    Json.Obj
      [
        ("path", Json.String (String.concat "/" n.path));
        ("count", Json.Int n.count);
        ("annots", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) n.annots));
        ("total_s", Json.Float n.total_s);
        ("self_s", Json.Float n.self_s);
      ]
  in
  Json.Obj
    [
      ("schema", Json.String "calm-profile/v1");
      ("spans", Json.List (List.map span_json (flatten (spans t))));
    ]

let folded_of_spans stacks =
  let buf = Buffer.create 256 in
  List.iter
    (fun (frames, value) ->
      Buffer.add_string buf (String.concat ";" frames);
      Buffer.add_char buf ' ';
      Buffer.add_string buf (string_of_int value);
      Buffer.add_char buf '\n')
    stacks;
  Buffer.contents buf

let of_folded s =
  let ( let* ) = Result.bind in
  let parse_line lineno line =
    match String.rindex_opt line ' ' with
    | None -> Error (Printf.sprintf "folded line %d: no value field" lineno)
    | Some i ->
        let stack = String.sub line 0 i in
        let value = String.sub line (i + 1) (String.length line - i - 1) in
        let frames = String.split_on_char ';' stack in
        if List.exists (( = ) "") frames then
          Error (Printf.sprintf "folded line %d: empty frame" lineno)
        else (
          match int_of_string_opt value with
          | None ->
              Error (Printf.sprintf "folded line %d: value %S is not an integer" lineno value)
          | Some v when v < 0 ->
              Error (Printf.sprintf "folded line %d: negative value %d" lineno v)
          | Some v -> Ok (frames, v))
  in
  let lines = String.split_on_char '\n' s in
  let rec go lineno acc = function
    | [] -> Ok (List.rev acc)
    | "" :: rest -> go (lineno + 1) acc rest
    | line :: rest ->
        let* stack = parse_line lineno line in
        go (lineno + 1) (stack :: acc) rest
  in
  go 1 [] lines

let to_folded t =
  folded_of_spans
    (List.map
       (fun n ->
         (n.path, Stdlib.max 0 (int_of_float (Float.round (n.self_s *. 1e6)))))
       (flatten (spans t)))

let to_chrome_events t =
  let acc = ref [] in
  (* Children are laid out sequentially inside their parent: timings lose
     the original interleaving when aggregated, but nesting and relative
     widths — what a flame chart is for — survive. *)
  let rec emit ts n =
    let name = List.nth n.path (List.length n.path - 1) in
    let args =
      ("path", Json.String (String.concat "/" n.path))
      :: ("count", Json.Int n.count)
      :: List.map (fun (k, v) -> ("annot:" ^ k, Json.Int v)) n.annots
    in
    acc :=
      { Sink.ts; dur = Some n.total_s; track = "profile"; cat = "profile"; name; args }
      :: !acc;
    ignore
      (List.fold_left (fun ts c -> emit ts c; ts +. c.total_s) ts n.children)
  in
  ignore
    (List.fold_left (fun ts n -> emit ts n; ts +. n.total_s) 0. (spans t));
  List.rev !acc

let pp ?(redact_timings = false) ppf t =
  let roots = spans t in
  if roots = [] then Format.fprintf ppf "(no profile spans recorded)@."
  else begin
    Format.fprintf ppf "== profile: span tree (total / self / share of root) ==@.";
    let rec pp_node root_total n =
      let depth = List.length n.path - 1 in
      let name =
        String.make (2 * depth) ' ' ^ List.nth n.path depth
      in
      let annots =
        match n.annots with
        | [] -> ""
        | kvs ->
            "  ["
            ^ String.concat " "
                (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) kvs)
            ^ "]"
      in
      if redact_timings then
        Format.fprintf ppf "%-40s count=%-9d total=- self=- share=-%s@." name
          n.count annots
      else
        Format.fprintf ppf
          "%-40s count=%-9d total=%9.3fms self=%9.3fms share=%5.1f%%%s@." name
          n.count (n.total_s *. 1e3) (n.self_s *. 1e3)
          (if root_total > 0. then 100. *. n.total_s /. root_total else 0.)
          annots;
      List.iter (pp_node root_total) n.children
    in
    List.iter (fun root -> pp_node root.total_s root) roots
  end
