(** Hierarchical wall-time attribution on top of the {!Metrics} registry.

    The scan's hot loops already record {e what} happened (probes, cache
    hits, derived facts); this module records {e where the time went}: a
    tree of named spans (scan → base → stage/probe → rule) with per-span
    visit counts, annotation counters (cache hit, witness vs eval route,
    empty-before fast path), and monotonic timings.

    Three properties shape the design:

    {ol
    {- {b Zero cost when off.} Profiling is gated by one global flag;
       every instrumentation site is a single atomic load plus a closure
       call while disabled, so the engines stay un-profiled by default
       and the bench baselines are unaffected.}
    {- {b It is just metrics.} A span records into the ambient
       {!Metrics} collector under the reserved names [profile.span]
       (stable visit counter), [profile.annot] (stable annotation
       counter) and [profile.time] (volatile timing), with the span path
       as a label. Pool tasks therefore buffer and merge spans exactly
       like any other metric — in input order, only up to a cancelled
       search's winning index — so the {e stable} projection of a
       profile (paths, counts, annotations) is byte-identical across
       [--jobs 1/2/4] while timings stay volatile.}
    {- {b Rooted paths across domains.} A span opened inside a pool task
       must aggregate with its sequential twin even though the worker
       domain never saw the enclosing spans. Instrumentation sites that
       run on workers use {!span_rooted} with an absolute path;
       {!span} nests under the ambient per-domain path.}} *)

(** {1 Enabling} *)

val enable : unit -> unit
val disable : unit -> unit

val is_enabled : unit -> bool
(** One atomic load: the gate every instrumentation site checks. *)

(** {1 Recording} *)

val span : string -> (unit -> 'a) -> 'a
(** Run the thunk under a span named [name], nested under this domain's
    ambient span path. Counts one visit and records the wall-clock
    duration (re-raising whatever the thunk raises). Frame names are
    sanitized: ['/'], [';'], spaces, and newlines become ['_'] so paths
    split unambiguously. A no-op wrapper while disabled. *)

val span_rooted : string list -> (unit -> 'a) -> 'a
(** Like {!span} but with an absolute path, ignoring the ambient prefix.
    Use this at sites that execute on pool worker domains, so the span
    aggregates with the identical path recorded on a sequential run. *)

val annot : ?by:int -> string -> unit
(** Increment a stable annotation counter attached to the innermost
    ambient span (e.g. ["cache_hit"], ["witness"]). *)

(** {1 Reconstruction} *)

type node = {
  path : string list;  (** root-to-node frame names *)
  count : int;  (** visits; 0 for synthesized intermediate nodes *)
  annots : (string * int) list;  (** sorted by key *)
  total_s : float;  (** schedule-dependent: wall-clock inside the span *)
  self_s : float;  (** [total_s] minus the children's totals, clamped at 0 *)
  children : node list;  (** sorted by frame name *)
}

val spans : Metrics.t -> node list
(** The span forest recorded in a collector, rebuilt from its
    [profile.*] metric rows; roots sorted by frame name. *)

val flatten : node list -> node list
(** Pre-order flattening of a forest. *)

val coverage : node -> float
(** Fraction of a span's wall time attributed to its direct children
    (1.0 when the span recorded no measurable time). *)

(** {1 Exporters} *)

val render_stable : Metrics.t -> string
(** Canonical one-line-per-span text of the stable profile fields —
    paths, visit counts, annotations; no timings — the string the
    jobs-invariance wall compares byte-for-byte. *)

val to_json : Metrics.t -> Json.t
(** The [calm-profile/v1] document: [{ "schema": "calm-profile/v1",
    "spans": [{path; count; annots; total_s; self_s}] }] in pre-order.
    Validated by {!Schema_check.validate_profile}. *)

val folded_of_spans : (string list * int) list -> string
(** Folded-stack lines ["frame;frame;frame value\n"] — the input format
    of flamegraph tooling. Frames are emitted as given; the {!span}
    sanitization already guarantees they contain no [';'] or spaces. *)

val of_folded : string -> ((string list * int) list, string) result
(** Parse folded-stack lines back (blank lines skipped); rejects empty
    frames, missing or non-integer values, and negative values. The
    round-trip inverse of {!folded_of_spans} — pinned by qcheck. *)

val to_folded : Metrics.t -> string
(** The recorded span tree as folded stacks, one line per span, valued
    by self-time in integer microseconds. *)

val to_chrome_events : Metrics.t -> Sink.event list
(** Synthesize one {!Sink} span event per node — children laid out
    sequentially inside their parent on a single ["profile"] track — so
    {!Sink.to_chrome} renders the attribution tree as a flame chart in
    Perfetto / [chrome://tracing]. *)

val pp : ?redact_timings:bool -> Format.formatter -> Metrics.t -> unit
(** Human span tree: one line per node with count, total, self, and the
    share of the enclosing root's time. With [redact_timings] every
    schedule-dependent number is replaced by ["-"] so the output is
    byte-reproducible (used by the golden fixture). *)
