(** Structural validators for the JSON artifacts the telemetry layer
    emits. CI runs these (via [calm validate]) against the bench
    trajectory file and the [--metrics-out] snapshot before uploading
    them, so a malformed exporter fails the build instead of silently
    polluting the trajectory. *)

val validate_metrics : Json.t -> (unit, string) result
(** The [--metrics-out] document: [schema = "calm-metrics/v1"], a
    [metrics] array of stable rows and a [volatile] array, every row with
    [name]/[labels]/[kind]/[count]/[sum]/[min]/[max]/[last] of the right
    types and a known [kind]. *)

val validate_bench : Json.t -> (unit, string) result
(** The [bench --json] document: [schema = "calm-bench/v1"], [quick] and
    [jobs] fields, and a non-empty [experiments] array whose entries
    carry [id], a non-negative [wall_s], and a [metrics] object. *)

val validate_profile : Json.t -> (unit, string) result
(** The [--profile-out] / [calm profile] document:
    [schema = "calm-profile/v1"] and a [spans] array whose entries carry
    a non-empty ['/']-separated [path] with no empty frames, a
    non-negative [count], an [annots] object of non-negative ints, and
    non-negative [total_s]/[self_s] with [self_s <= total_s]. *)

val validate_trace : Json.t -> (unit, string) result
(** A Chrome [trace_event] document: a [traceEvents] array whose entries
    all have [ph]/[pid]/[tid], with [name]/[ts] on non-metadata events. *)

val validate_causal : Json.t -> (unit, string) result
(** The [--causal-out] document: [schema = "calm-causal/v1"], a
    non-empty [network] array of node names, and an [events] array whose
    entries carry a positive [index], a [node], a positive [lamport]
    clock, a non-empty [vector] object of positive ints, [origins] as
    [[fact, send index]] pairs, and [delivered]/[sent]/[output_delta]
    fact arrays. *)

val validate_series_jsonl : string -> (unit, string) result
(** The [--series-out] JSONL document: a [{"schema":"calm-series/v1"}]
    header line, then one object per series with a non-empty [series]
    name, string [labels], a [stable] bool, a [stride >= 1], and
    [points] as [[tick, value]] pairs. *)
