(* Aggregate committed bench trajectories (BENCH_*.json) plus optional
   metrics / series / profile artifacts into a self-contained HTML
   dashboard, a markdown summary, and a regression diff — the
   whole-history generalization of the pairwise bench-diff guard. Built
   on {!Json} only: no external deps, sparklines are inline SVG. *)

(* The stable metric rows guarded against drift. Shared with the CLI's
   bench-diff (which used to carry its own copy): deterministic by
   construction (jobs- and cache-invariant), so any change against a
   committed value means the scan visited a different pair stream, found
   different violations, or maintained a different volume — a semantic
   regression, not noise. *)
let guard_metrics =
  [
    "monotone.probes";
    "monotone.pairs_scanned";
    "monotone.violations";
    "monotone.counterexample_size";
    (* Fault-layer counters: seeded plans make these deterministic. *)
    "network.dup_deliveries";
    "network.dropped";
    "network.crashes";
    "network.partition_rounds";
    (* Incremental-maintenance counters. *)
    "monotone.ivm_hits";
    "eval.ivm_applies";
    "eval.ivm_rederived";
  ]

type experiment = {
  id : string;
  wall_s : float;
  metrics : (string * Json.t) list;
}

type bench = {
  path : string;
  quick : bool;
  jobs : int;
  experiments : experiment list;
}

let ( let* ) = Result.bind

let error fmt = Printf.ksprintf (fun s -> Error s) fmt

(* Parse + schema-validate one bench artifact. Beyond the schema, wall
   clocks must be finite: the exporter prints non-finite floats as JSON
   null (which the schema already rejects), but "1e999" parses to
   infinity, and a report quietly averaging infinities would be worse
   than an error. *)
let load_bench ~path contents =
  let* j =
    match Json.of_string contents with
    | Ok j -> Ok j
    | Error m -> error "%s: not valid JSON: %s" path m
  in
  let* () =
    match Schema_check.validate_bench j with
    | Ok () -> Ok ()
    | Error m -> error "%s: INVALID calm-bench/v1 artifact: %s" path m
  in
  let quick = Json.member "quick" j = Some (Json.Bool true) in
  let jobs =
    match Json.member "jobs" j with Some (Json.Int n) -> n | _ -> 1
  in
  let experiments =
    match Json.member "experiments" j with
    | Some (Json.List es) ->
      List.filter_map
        (fun e ->
          match
            ( Json.member "id" e,
              Json.member "wall_s" e,
              Json.member "metrics" e )
          with
          | Some (Json.String id), Some w, Some (Json.Obj ms) ->
            let wall_s =
              match w with
              | Json.Float f -> f
              | Json.Int i -> float_of_int i
              | _ -> nan
            in
            Some { id; wall_s; metrics = ms }
          | _ -> None)
        es
    | _ -> []
  in
  let* () =
    match
      List.find_opt (fun e -> not (Float.is_finite e.wall_s)) experiments
    with
    | Some e ->
      error "%s: experiment %S has non-finite wall_s — refusing to report"
        path e.id
    | None -> Ok ()
  in
  Ok { path; quick; jobs; experiments }

let find_experiment b id = List.find_opt (fun e -> e.id = id) b.experiments

(* Union of experiment ids across the history, in order of first
   appearance. *)
let all_ids benches =
  List.fold_left
    (fun acc b ->
      List.fold_left
        (fun acc e -> if List.mem e.id acc then acc else acc @ [ e.id ])
        acc b.experiments)
    [] benches

(* ------------------------------------------------------------------ *)
(* Regression diff *)

type regression = {
  from_file : string;
  to_file : string;
  experiment : string;
  metric : string;  (* "wall_s" or a guard metric name *)
  before : string;
  after : string;
}

let default_threshold = 1.0

(* Scan consecutive pairs of the (chronologically ordered) history.
   A guard metric regresses when it is present on both sides and
   unequal — a metric newly appearing (instrumentation added by a later
   change) is not drift, which is exactly how the committed trajectory
   reads. Wall clock regresses when it grows by more than [threshold]
   (relative, 1.0 = doubling): benches run on different machines and
   under different loads, so only gross slowdowns are flagged. *)
let diff ?(threshold = default_threshold) benches =
  let compared = ref 0 in
  let regressions = ref [] in
  let add r = regressions := r :: !regressions in
  let rec pairs = function
    | a :: (b : bench) :: rest ->
      List.iter
        (fun (eb : experiment) ->
          match find_experiment a eb.id with
          | None -> ()
          | Some ea ->
            List.iter
              (fun name ->
                match
                  ( List.assoc_opt name ea.metrics,
                    List.assoc_opt name eb.metrics )
                with
                | Some va, Some vb ->
                  incr compared;
                  if not (Json.equal va vb) then
                    add
                      {
                        from_file = a.path;
                        to_file = b.path;
                        experiment = eb.id;
                        metric = name;
                        before = Json.to_string va;
                        after = Json.to_string vb;
                      }
                | _ -> ())
              guard_metrics;
            incr compared;
            if
              ea.wall_s > 0.
              && eb.wall_s > ea.wall_s *. (1. +. threshold)
            then
              add
                {
                  from_file = a.path;
                  to_file = b.path;
                  experiment = eb.id;
                  metric = "wall_s";
                  before = Printf.sprintf "%.4fs" ea.wall_s;
                  after =
                    Printf.sprintf "%.4fs (+%.0f%% > +%.0f%% threshold)"
                      eb.wall_s
                      ((eb.wall_s /. ea.wall_s -. 1.) *. 100.)
                      (threshold *. 100.);
                })
        b.experiments;
      pairs (b :: rest)
    | _ -> ()
  in
  pairs benches;
  (List.rev !regressions, !compared)

let render_diff regressions compared =
  let b = Buffer.create 256 in
  (match regressions with
  | [] ->
    Buffer.add_string b
      (Printf.sprintf
         "report-diff: %d metric comparisons across the trajectory, no \
          regression\n"
         compared)
  | rs ->
    Buffer.add_string b
      (Printf.sprintf "report-diff: %d regression(s) in %d comparisons:\n"
         (List.length rs) compared);
    Buffer.add_string b
      "| experiment | metric | from | to | baseline | current |\n";
    Buffer.add_string b "|---|---|---|---|---|---|\n";
    List.iter
      (fun r ->
        Buffer.add_string b
          (Printf.sprintf "| %s | %s | %s | %s | %s | %s |\n" r.experiment
             r.metric
             (Filename.basename r.from_file)
             (Filename.basename r.to_file)
             r.before r.after))
      rs);
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Markdown summary *)

let wall_cell = function
  | None -> "—"
  | Some (e : experiment) -> Printf.sprintf "%.4f" e.wall_s

let markdown benches =
  let b = Buffer.create 1024 in
  Buffer.add_string b "# Bench trajectory\n\n";
  List.iter
    (fun bench ->
      Buffer.add_string b
        (Printf.sprintf "- `%s`: %d experiments, jobs=%d%s\n"
           (Filename.basename bench.path)
           (List.length bench.experiments)
           bench.jobs
           (if bench.quick then ", quick" else "")))
    benches;
  Buffer.add_string b "\n## Wall clock (seconds)\n\n";
  Buffer.add_string b
    (Printf.sprintf "| experiment | %s |\n"
       (String.concat " | "
          (List.map (fun x -> Filename.basename x.path) benches)));
  Buffer.add_string b
    (Printf.sprintf "|---|%s\n"
       (String.concat "" (List.map (fun _ -> "---|") benches)));
  List.iter
    (fun id ->
      Buffer.add_string b
        (Printf.sprintf "| %s | %s |\n" id
           (String.concat " | "
              (List.map (fun x -> wall_cell (find_experiment x id)) benches))))
    (all_ids benches);
  (match List.rev benches with
  | [] -> ()
  | latest :: _ ->
    Buffer.add_string b
      (Printf.sprintf "\n## Guarded metrics (%s)\n\n"
         (Filename.basename latest.path));
    Buffer.add_string b "| experiment | metric | value |\n|---|---|---|\n";
    List.iter
      (fun (e : experiment) ->
        List.iter
          (fun name ->
            match List.assoc_opt name e.metrics with
            | None -> ()
            | Some v ->
              Buffer.add_string b
                (Printf.sprintf "| %s | %s | %s |\n" e.id name
                   (Json.to_string v)))
          guard_metrics)
      latest.experiments);
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* HTML dashboard *)

let html_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '<' -> Buffer.add_string b "&lt;"
      | '>' -> Buffer.add_string b "&gt;"
      | '&' -> Buffer.add_string b "&amp;"
      | '"' -> Buffer.add_string b "&quot;"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* An inline-SVG sparkline: values normalized into a fixed viewbox, a
   polyline through them, no axes. Degenerate inputs (one point, all
   equal) render a flat line rather than erroring. *)
let sparkline ?(w = 120) ?(h = 24) values =
  match values with
  | [] -> "<span class=\"empty\">—</span>"
  | _ ->
    let n = List.length values in
    let vmin = List.fold_left Float.min infinity values in
    let vmax = List.fold_left Float.max neg_infinity values in
    let span = if vmax -. vmin <= 0. then 1. else vmax -. vmin in
    let fw = float_of_int w and fh = float_of_int h in
    let pt i v =
      let x =
        if n = 1 then fw /. 2.
        else 2. +. (float_of_int i *. (fw -. 4.) /. float_of_int (n - 1))
      in
      let y = fh -. 3. -. ((v -. vmin) /. span *. (fh -. 6.)) in
      Printf.sprintf "%.1f,%.1f" x y
    in
    Printf.sprintf
      "<svg width=\"%d\" height=\"%d\" viewBox=\"0 0 %d %d\"><polyline \
       fill=\"none\" stroke=\"#2a6\" stroke-width=\"1.5\" points=\"%s\"/></svg>"
      w h w h
      (String.concat " " (List.mapi pt values))

(* Optional series artifact: re-ingest the calm-series/v1 JSONL and keep
   (display name, point values) per series. *)
let series_rows contents =
  match String.split_on_char '\n' contents with
  | [] -> []
  | _ :: lines ->
    List.filter_map
      (fun line ->
        if line = "" then None
        else
          match Json.of_string line with
          | Error _ -> None
          | Ok j -> (
            match (Json.member "series" j, Json.member "points" j) with
            | Some (Json.String name), Some (Json.List pts) ->
              let labels =
                match Json.member "labels" j with
                | Some (Json.Obj kvs) ->
                  String.concat ","
                    (List.filter_map
                       (fun (k, v) ->
                         match v with
                         | Json.String s ->
                           Some (Printf.sprintf "%s=%s" k s)
                         | _ -> None)
                       kvs)
                | _ -> ""
              in
              let display =
                if labels = "" then name
                else Printf.sprintf "%s{%s}" name labels
              in
              let values =
                List.filter_map
                  (function
                    | Json.List [ _; Json.Float v ] -> Some v
                    | Json.List [ _; Json.Int v ] -> Some (float_of_int v)
                    | _ -> None)
                  pts
              in
              Some (display, values)
            | _ -> None))
      lines

let html ?series ?metrics ?profile benches =
  let b = Buffer.create 8192 in
  let add = Buffer.add_string b in
  add
    "<!doctype html>\n<html><head><meta charset=\"utf-8\">\n\
     <title>calm bench trajectory</title>\n\
     <style>\n\
     body{font:14px/1.5 system-ui,sans-serif;margin:2em;max-width:70em}\n\
     table{border-collapse:collapse;margin:1em 0}\n\
     th,td{border:1px solid #ccc;padding:.25em .6em;text-align:left}\n\
     th{background:#f4f4f4}\n\
     td.num{text-align:right;font-variant-numeric:tabular-nums}\n\
     .empty{color:#999}\n\
     h2{margin-top:2em}\n\
     code{background:#f4f4f4;padding:0 .2em}\n\
     </style></head><body>\n\
     <h1>calm bench trajectory</h1>\n";
  add "<h2>Files</h2><table><tr><th>file</th><th>experiments</th>\
       <th>jobs</th><th>quick</th></tr>\n";
  List.iter
    (fun bench ->
      add
        (Printf.sprintf
           "<tr><td><code>%s</code></td><td class=\"num\">%d</td>\
            <td class=\"num\">%d</td><td>%b</td></tr>\n"
           (html_escape (Filename.basename bench.path))
           (List.length bench.experiments)
           bench.jobs bench.quick))
    benches;
  add "</table>\n";
  add "<h2>Wall clock (seconds)</h2>\n<table><tr><th>experiment</th>";
  List.iter
    (fun x ->
      add
        (Printf.sprintf "<th>%s</th>"
           (html_escape (Filename.basename x.path))))
    benches;
  add "<th>trend</th></tr>\n";
  List.iter
    (fun id ->
      add (Printf.sprintf "<tr><td>%s</td>" (html_escape id));
      let walls =
        List.filter_map
          (fun x -> Option.map (fun e -> e.wall_s) (find_experiment x id))
          benches
      in
      List.iter
        (fun x ->
          add
            (Printf.sprintf "<td class=\"num\">%s</td>"
               (wall_cell (find_experiment x id))))
        benches;
      add (Printf.sprintf "<td>%s</td></tr>\n" (sparkline walls)))
    (all_ids benches);
  add "</table>\n";
  (match List.rev benches with
  | [] -> ()
  | latest :: _ ->
    add
      (Printf.sprintf
         "<h2>Guarded metrics (%s)</h2>\n\
          <table><tr><th>experiment</th>%s</tr>\n"
         (html_escape (Filename.basename latest.path))
         (String.concat ""
            (List.map
               (fun m -> Printf.sprintf "<th>%s</th>" (html_escape m))
               guard_metrics)));
    List.iter
      (fun (e : experiment) ->
        if
          List.exists (fun m -> List.assoc_opt m e.metrics <> None)
            guard_metrics
        then begin
          add (Printf.sprintf "<tr><td>%s</td>" (html_escape e.id));
          List.iter
            (fun m ->
              add
                (Printf.sprintf "<td class=\"num\">%s</td>"
                   (match List.assoc_opt m e.metrics with
                   | None -> "<span class=\"empty\">—</span>"
                   | Some v -> html_escape (Json.to_string v))))
            guard_metrics;
          add "</tr>\n"
        end)
      latest.experiments;
    add "</table>\n");
  (match series with
  | None -> ()
  | Some contents ->
    add "<h2>Series trajectories</h2>\n\
         <table><tr><th>series</th><th>points</th><th>last</th>\
         <th>sparkline</th></tr>\n";
    List.iter
      (fun (display, values) ->
        add
          (Printf.sprintf
             "<tr><td><code>%s</code></td><td class=\"num\">%d</td>\
              <td class=\"num\">%s</td><td>%s</td></tr>\n"
             (html_escape display) (List.length values)
             (match List.rev values with
             | [] -> "—"
             | v :: _ -> Printf.sprintf "%g" v)
             (sparkline values)))
      (series_rows contents);
    add "</table>\n");
  (match metrics with
  | None -> ()
  | Some j ->
    add "<h2>Metrics snapshot</h2>\n<pre>";
    add (html_escape (Json.to_string_pretty j));
    add "</pre>\n");
  (match profile with
  | None -> ()
  | Some j ->
    add "<h2>Profile</h2>\n<pre>";
    add (html_escape (Json.to_string_pretty j));
    add "</pre>\n");
  add "</body></html>\n";
  Buffer.contents b
