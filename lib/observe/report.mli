(** Trajectory reporting: aggregate the committed bench history
    ([BENCH_*.json]) plus optional metrics / series / profile artifacts
    into a self-contained HTML dashboard, a markdown summary, and a
    whole-history regression diff.

    Everything is hand-rolled on {!Json}: no external dependencies, and
    the dashboard's sparklines are inline SVG, so the output is a single
    file that renders offline. *)

val guard_metrics : string list
(** The stable metric rows guarded against drift — deterministic by
    construction (jobs- and cache-invariant), shared with the CLI's
    [bench-diff]. *)

type experiment = {
  id : string;
  wall_s : float;
  metrics : (string * Json.t) list;
}

type bench = {
  path : string;
  quick : bool;
  jobs : int;
  experiments : experiment list;
}

val load_bench : path:string -> string -> (bench, string) result
(** Parse and schema-validate one [calm-bench/v1] artifact. Rejects
    non-finite [wall_s] values (e.g. a crafted ["1e999"], which parses
    to infinity) with a clear error instead of reporting on them. *)

(** {1 Regression diff} *)

type regression = {
  from_file : string;
  to_file : string;
  experiment : string;
  metric : string;  (** ["wall_s"] or a {!guard_metrics} name *)
  before : string;
  after : string;
}

val default_threshold : float
(** [1.0]: wall clock may at most double between consecutive files. *)

val diff : ?threshold:float -> bench list -> regression list * int
(** Scan consecutive pairs of the chronologically ordered history.
    A guard metric regresses when present on both sides and unequal
    (newly appearing metrics are instrumentation growth, not drift);
    [wall_s] regresses when it grows by more than [threshold]
    (relative). Returns the regressions and the number of comparisons
    made. *)

val render_diff : regression list -> int -> string
(** Human-readable (markdown-table) rendering of a {!diff} result. *)

(** {1 Renderers} *)

val markdown : bench list -> string
(** Markdown summary: per-file inventory, wall-clock trajectory table,
    guarded metric values of the latest file. *)

val html :
  ?series:string -> ?metrics:Json.t -> ?profile:Json.t -> bench list -> string
(** The dashboard. [series] is the raw [calm-series/v1] JSONL contents
    (each series becomes a sparkline row); [metrics] / [profile] are
    parsed artifact documents included verbatim as pretty-printed
    sections. *)
