(** A hand-rolled fork-join Domain work pool.

    A pool owns [jobs - 1] worker domains parked on a condition
    variable; the calling domain participates in every parallel region,
    so a [jobs = 1] pool spawns nothing and both combinators degenerate
    to their sequential counterparts. Built from [Domain], [Mutex], and
    [Condition] only.

    Both combinators are {e deterministic}: their observable behaviour
    (results, and which exception propagates) is independent of [jobs]
    and of scheduling, which is what lets the checkers expose a [?jobs]
    knob without perturbing verdicts or certificates.

    The same guarantee extends to telemetry: every task runs with its own
    {!Observe.Metrics} buffer, and the combinators merge the buffers back
    into the caller's ambient collector in input order — for {!search},
    only up to the winning index — so {e stable} metrics recorded inside
    tasks are byte-identical across [jobs]. The pool additionally records
    volatile per-worker tallies ([pool.worker_tasks], [pool.worker_busy]),
    the fan-out counter [pool.map_tasks], and the
    [pool.search_cancel_index] gauge (the winning index of the last
    search) — all volatile, since whether the pool runs at all depends on
    [jobs] — and tags each worker's {!Observe.Sink} events with a
    [worker-i] track. *)

type t

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val create : ?jobs:int -> unit -> t
(** Spawn a pool of [jobs] members (default {!default_jobs}; clamped to
    at least 1): [jobs - 1] worker domains plus the calling domain. *)

val shutdown : t -> unit
(** Stop and join the worker domains. The pool must not be used after. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] on a fresh pool and shuts it down,
    also on exceptions. *)

val jobs : t -> int

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving parallel map, equivalent to [List.map f xs] —
    including on raising [f]: the exception raised by the {e first}
    raising element in input order is re-raised (and the pool survives
    for further use). *)

type 'b outcome =
  | Found of 'b        (** first hit in enumeration order *)
  | Exhausted of int   (** no hit; the number of elements probed *)

val search : t -> ('a -> 'b option) -> 'a Seq.t -> 'b outcome
(** Counterexample search with cancellation: probes the sequence's
    elements concurrently, but returns exactly what a sequential
    left-to-right scan would — the first hit in enumeration order (an
    exception raised by [f] or by forcing the sequence propagates iff it
    enumerates before any hit), or [Exhausted n] after all [n] elements
    miss. Once a hit at index [i] is recorded, no element beyond [i] is
    issued, so the remaining workers drain promptly. The sequence is
    forced under the pool's lock, one element at a time, in order. *)
