(* A hand-rolled fork-join Domain pool.

   The pool owns [jobs - 1] worker domains parked on a condition
   variable; the owning domain participates in every parallel region, so
   a [jobs = 1] pool spawns nothing and degenerates to the sequential
   code path. Parallel regions are generation-numbered: [run] publishes
   a body, bumps the generation, and every worker executes the body
   exactly once per generation before parking again. Only [Domain],
   [Mutex], and [Condition] are used.

   Both combinators are deterministic: [map] preserves input order and,
   when the function raises, re-raises the exception of the *first*
   raising element in input order; [search] returns the first hit in
   enumeration order even though later elements may be probed
   concurrently. Determinism rests on one invariant: indices are issued
   contiguously and an issued element is always processed to completion,
   so when the winning event at index i is recorded, every index below i
   has been issued and will report before the joins complete. *)

type t = {
  jobs : int;
  mutex : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable generation : int;
  mutable body : (unit -> unit) option;
  mutable active : int;
  mutable stopped : bool;
  mutable domains : unit Domain.t list;
}

let default_jobs () = Domain.recommended_domain_count ()
let jobs t = t.jobs

let worker t =
  let rec loop gen =
    Mutex.lock t.mutex;
    while (not t.stopped) && t.generation = gen do
      Condition.wait t.work_ready t.mutex
    done;
    if t.stopped then Mutex.unlock t.mutex
    else begin
      let gen = t.generation in
      let body = Option.get t.body in
      Mutex.unlock t.mutex;
      (try body () with _ -> ());
      Mutex.lock t.mutex;
      t.active <- t.active - 1;
      if t.active = 0 then Condition.broadcast t.work_done;
      Mutex.unlock t.mutex;
      loop gen
    end
  in
  loop 0

let create ?jobs () =
  let jobs =
    match jobs with Some j -> max 1 j | None -> default_jobs ()
  in
  let t =
    {
      jobs;
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      generation = 0;
      body = None;
      active = 0;
      stopped = false;
      domains = [];
    }
  in
  t.domains <- List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker t));
  t

let shutdown t =
  Mutex.lock t.mutex;
  t.stopped <- true;
  Condition.broadcast t.work_ready;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.domains;
  t.domains <- []

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* Run [body] on every member of the pool (workers + the calling domain)
   and return once all have finished. [body] must be exception-safe: a
   worker swallows anything it raises, so the combinators below funnel
   failures through shared state instead. *)
let run t body =
  if t.domains = [] then body ()
  else begin
    Mutex.lock t.mutex;
    t.body <- Some body;
    t.generation <- t.generation + 1;
    t.active <- List.length t.domains;
    Condition.broadcast t.work_ready;
    Mutex.unlock t.mutex;
    (try body () with e -> (
       (* Wait for the workers even on an owner-side failure, otherwise a
          second region could start while they still run the old body. *)
       Mutex.lock t.mutex;
       while t.active > 0 do Condition.wait t.work_done t.mutex done;
       Mutex.unlock t.mutex;
       raise e));
    Mutex.lock t.mutex;
    while t.active > 0 do Condition.wait t.work_done t.mutex done;
    Mutex.unlock t.mutex
  end

(* Order-preserving parallel map. Equivalent to [List.map f xs],
   including on raising [f]: the exception of the first raising element
   (in input order) is re-raised. *)
let map t f xs =
  if t.domains = [] then List.map f xs
  else begin
    let arr = Array.of_list xs in
    let n = Array.length arr in
    let out = Array.make n None in
    let m = Mutex.create () in
    let next = ref 0 in
    let err = ref None in
    let take () =
      Mutex.lock m;
      let r =
        let past_err =
          match !err with Some (j, _) -> !next > j | None -> false
        in
        if past_err || !next >= n then None
        else begin
          let i = !next in
          incr next;
          Some i
        end
      in
      Mutex.unlock m;
      r
    in
    let record_err i e =
      Mutex.lock m;
      (match !err with
      | Some (j, _) when j <= i -> ()
      | _ -> err := Some (i, e));
      Mutex.unlock m
    in
    run t (fun () ->
        let rec go () =
          match take () with
          | None -> ()
          | Some i ->
            (match f arr.(i) with
            | y -> out.(i) <- Some y
            | exception e -> record_err i e);
            go ()
        in
        go ());
    match !err with
    | Some (_, e) -> raise e
    | None -> Array.to_list (Array.map Option.get out)
  end

type 'b outcome =
  | Found of 'b
  | Exhausted of int

(* Counterexample search with cancellation. Probes elements of [seq]
   concurrently but returns exactly what a sequential left-to-right scan
   would: [Found b] for the first element on which [f] yields a hit
   (raising whatever [f] or the sequence raised if an exception comes
   first in enumeration order), or [Exhausted n] after all [n] elements
   miss. Once a worker records an event at index i, no index above i is
   issued any more, so all other workers drain and stop. *)
let search t f seq =
  let sequential () =
    let count = ref 0 in
    let rec go s =
      match s () with
      | Seq.Nil -> Exhausted !count
      | Seq.Cons (x, rest) -> (
        incr count;
        match f x with Some b -> Found b | None -> go rest)
    in
    go seq
  in
  if t.domains = [] then sequential ()
  else begin
    let m = Mutex.create () in
    let cur = ref seq in
    let next = ref 0 in
    (* Minimal-index event: a hit or an exception, whichever enumerates
       first. *)
    let best = ref None in
    let record i ev =
      match !best with
      | Some (j, _) when j <= i -> ()
      | _ -> best := Some (i, ev)
    in
    let take () =
      Mutex.lock m;
      let r =
        let cutoff =
          match !best with Some (j, _) -> j | None -> max_int
        in
        if !next >= cutoff then None
        else
          match !cur () with
          | Seq.Nil -> None
          | Seq.Cons (x, rest) ->
            cur := rest;
            let i = !next in
            incr next;
            Some (i, x)
          | exception e ->
            record !next (Error e);
            cur := Seq.empty;
            None
      in
      Mutex.unlock m;
      r
    in
    let record_locked i ev =
      Mutex.lock m;
      record i ev;
      Mutex.unlock m
    in
    run t (fun () ->
        let rec go () =
          match take () with
          | None -> ()
          | Some (i, x) ->
            (match f x with
            | Some b -> record_locked i (Ok b)
            | None -> ()
            | exception e -> record_locked i (Error e));
            go ()
        in
        go ());
    match !best with
    | Some (_, Ok b) -> Found b
    | Some (_, Error e) -> raise e
    | None -> Exhausted !next
  end
