(* A hand-rolled fork-join Domain pool.

   The pool owns [jobs - 1] worker domains parked on a condition
   variable; the owning domain participates in every parallel region, so
   a [jobs = 1] pool spawns nothing and degenerates to the sequential
   code path. Parallel regions are generation-numbered: [run] publishes
   a body, bumps the generation, and every worker executes the body
   exactly once per generation before parking again. Only [Domain],
   [Mutex], and [Condition] are used.

   Both combinators are deterministic: [map] preserves input order and,
   when the function raises, re-raises the exception of the *first*
   raising element in input order; [search] returns the first hit in
   enumeration order even though later elements may be probed
   concurrently. Determinism rests on one invariant: indices are issued
   contiguously and an issued element is always processed to completion,
   so when the winning event at index i is recorded, every index below i
   has been issued and will report before the joins complete.

   Telemetry: each task runs with its own Observe.Metrics collector, and
   the combinators merge those buffers back into the caller's ambient
   collector in input order — for [search], only the buffers of indices
   up to and including the winning event. A parallel run therefore
   commits exactly the metric recordings the sequential scan would have
   made, which is what lets stable metrics be byte-identical across
   [jobs]. Wall-clock spans and per-worker task tallies are recorded
   directly into the root collector as volatile metrics. *)

type t = {
  jobs : int;
  mutex : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable generation : int;
  mutable body : (unit -> unit) option;
  mutable active : int;
  mutable stopped : bool;
  mutable domains : unit Domain.t list;
}

let default_jobs () = Domain.recommended_domain_count ()
let jobs t = t.jobs

(* Volatile pool telemetry: schedule-dependent by nature, so recorded
   straight into the root collector and excluded from stable snapshots. *)
let m_worker_tasks w =
  Observe.Metrics.counter ~stable:false
    ~labels:[ ("worker", string_of_int w) ]
    "pool.worker_tasks"

let m_worker_busy w =
  Observe.Metrics.timing
    ~labels:[ ("worker", string_of_int w) ]
    "pool.worker_busy"

(* Also volatile: although their values are deterministic when the pool
   is used (first hit in enumeration order; total fan-out), whether the
   pool is used at all depends on [jobs] — the checkers bypass it on
   their sequential paths — so these rows cannot appear in a snapshot
   that must be byte-identical across [jobs]. *)
let m_map_tasks = Observe.Metrics.counter ~stable:false "pool.map_tasks"
let m_search_cancel_index =
  Observe.Metrics.gauge ~stable:false "pool.search_cancel_index"

(* This domain's worker number within the current pool: 0 for the owner,
   1..jobs-1 for spawned workers. *)
let worker_id : int Domain.DLS.key = Domain.DLS.new_key (fun () -> 0)

let run_tasks_on_root f =
  (* Worker-side bookkeeping must bypass the ambient task buffer (which
     may be discarded), so it targets the root collector explicitly. *)
  let w = Domain.DLS.get worker_id in
  let busy = m_worker_busy w in
  Observe.Sink.span ~cat:"pool"
    ~args:[ ("worker", Observe.Json.Int w) ]
    "pool.region"
    (fun () -> Observe.Metrics.with_current Observe.Metrics.root
        (fun () -> Observe.Metrics.time busy f))

let worker t i =
  Domain.DLS.set worker_id i;
  Observe.Sink.set_track (Printf.sprintf "worker-%d" i);
  let rec loop gen =
    Mutex.lock t.mutex;
    while (not t.stopped) && t.generation = gen do
      Condition.wait t.work_ready t.mutex
    done;
    if t.stopped then Mutex.unlock t.mutex
    else begin
      let gen = t.generation in
      let body = Option.get t.body in
      Mutex.unlock t.mutex;
      (try run_tasks_on_root body with _ -> ());
      Mutex.lock t.mutex;
      t.active <- t.active - 1;
      if t.active = 0 then Condition.broadcast t.work_done;
      Mutex.unlock t.mutex;
      loop gen
    end
  in
  loop 0

let create ?jobs () =
  let jobs =
    match jobs with Some j -> max 1 j | None -> default_jobs ()
  in
  let t =
    {
      jobs;
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      generation = 0;
      body = None;
      active = 0;
      stopped = false;
      domains = [];
    }
  in
  t.domains <-
    List.init (jobs - 1) (fun i -> Domain.spawn (fun () -> worker t (i + 1)));
  t

let shutdown t =
  Mutex.lock t.mutex;
  t.stopped <- true;
  Condition.broadcast t.work_ready;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.domains;
  t.domains <- []

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* Run [body] on every member of the pool (workers + the calling domain)
   and return once all have finished. [body] must be exception-safe: a
   worker swallows anything it raises, so the combinators below funnel
   failures through shared state instead. *)
let run t body =
  if t.domains = [] then body ()
  else begin
    Mutex.lock t.mutex;
    t.body <- Some body;
    t.generation <- t.generation + 1;
    t.active <- List.length t.domains;
    Condition.broadcast t.work_ready;
    Mutex.unlock t.mutex;
    (try run_tasks_on_root body with e -> (
       (* Wait for the workers even on an owner-side failure, otherwise a
          second region could start while they still run the old body. *)
       Mutex.lock t.mutex;
       while t.active > 0 do Condition.wait t.work_done t.mutex done;
       Mutex.unlock t.mutex;
       raise e));
    Mutex.lock t.mutex;
    while t.active > 0 do Condition.wait t.work_done t.mutex done;
    Mutex.unlock t.mutex
  end

(* Order-preserving parallel map. Equivalent to [List.map f xs],
   including on raising [f]: the exception of the first raising element
   (in input order) is re-raised. Task metric buffers are merged back in
   input order, up to and including the first raising element — exactly
   the recordings the sequential [List.map] would have committed. *)
let map t f xs =
  Observe.Metrics.incr ~by:(List.length xs) m_map_tasks;
  if t.domains = [] then List.map f xs
  else begin
    let arr = Array.of_list xs in
    let n = Array.length arr in
    let out = Array.make n None in
    let bufs = Array.make n None in
    (* Per-task series buffers mirror the metric buffers (only when the
       recorder is on — otherwise tasks skip the allocation entirely and
       sampling is gated off anyway). *)
    let use_series = Observe.Series.is_enabled () in
    let sbufs = Array.make n None in
    let m = Mutex.create () in
    let next = ref 0 in
    let err = ref None in
    let take () =
      Mutex.lock m;
      let r =
        let past_err =
          match !err with Some (j, _) -> !next > j | None -> false
        in
        if past_err || !next >= n then None
        else begin
          let i = !next in
          incr next;
          Some i
        end
      in
      Mutex.unlock m;
      r
    in
    let record_err i e =
      Mutex.lock m;
      (match !err with
      | Some (j, _) when j <= i -> ()
      | _ -> err := Some (i, e));
      Mutex.unlock m
    in
    let caller = Observe.Metrics.current () in
    let caller_series = Observe.Series.current () in
    run t (fun () ->
        let rec go () =
          match take () with
          | None -> ()
          | Some i ->
            let w = Domain.DLS.get worker_id in
            Observe.Metrics.incr (m_worker_tasks w);
            let buf = Observe.Metrics.create () in
            bufs.(i) <- Some buf;
            let task () =
              if use_series then begin
                let sbuf = Observe.Series.task_buffer () in
                sbufs.(i) <- Some sbuf;
                Observe.Series.with_current sbuf (fun () -> f arr.(i))
              end
              else f arr.(i)
            in
            (match Observe.Metrics.with_current buf task with
            | y -> out.(i) <- Some y
            | exception e -> record_err i e);
            go ()
        in
        go ());
    let commit_upto last =
      for i = 0 to min last (n - 1) do
        (match bufs.(i) with
        | Some buf -> Observe.Metrics.merge_into caller buf
        | None -> ());
        match sbufs.(i) with
        | Some sbuf -> Observe.Series.merge_into caller_series sbuf
        | None -> ()
      done
    in
    match !err with
    | Some (j, e) ->
      commit_upto j;
      raise e
    | None ->
      commit_upto (n - 1);
      Array.to_list (Array.map Option.get out)
  end

type 'b outcome =
  | Found of 'b
  | Exhausted of int

(* Counterexample search with cancellation. Probes elements of [seq]
   concurrently but returns exactly what a sequential left-to-right scan
   would: [Found b] for the first element on which [f] yields a hit
   (raising whatever [f] or the sequence raised if an exception comes
   first in enumeration order), or [Exhausted n] after all [n] elements
   miss. Once a worker records an event at index i, no index above i is
   issued any more, so all other workers drain and stop. *)
let search t f seq =
  let sequential () =
    let count = ref 0 in
    let rec go s =
      match s () with
      | Seq.Nil -> Exhausted !count
      | Seq.Cons (x, rest) -> (
        incr count;
        match f x with
        | Some b ->
          Observe.Metrics.set m_search_cancel_index
            (float_of_int (!count - 1));
          Found b
        | None -> go rest)
    in
    go seq
  in
  if t.domains = [] then sequential ()
  else begin
    let m = Mutex.create () in
    let cur = ref seq in
    let next = ref 0 in
    (* Minimal-index event: a hit or an exception, whichever enumerates
       first. *)
    let best = ref None in
    (* Per-index task metric buffers; only those at indices <= the final
       event index are committed, in index order, so the parallel search
       records exactly what the sequential left-to-right scan would. *)
    let bufs : (int, Observe.Metrics.t) Hashtbl.t = Hashtbl.create 64 in
    let use_series = Observe.Series.is_enabled () in
    let sbufs : (int, Observe.Series.t) Hashtbl.t = Hashtbl.create 64 in
    let record i ev =
      match !best with
      | Some (j, _) when j <= i -> ()
      | _ -> best := Some (i, ev)
    in
    let take () =
      Mutex.lock m;
      let r =
        let cutoff =
          match !best with Some (j, _) -> j | None -> max_int
        in
        if !next >= cutoff then None
        else
          match !cur () with
          | Seq.Nil -> None
          | Seq.Cons (x, rest) ->
            cur := rest;
            let i = !next in
            incr next;
            let buf = Observe.Metrics.create () in
            Hashtbl.replace bufs i buf;
            Some (i, x, buf)
          | exception e ->
            record !next (Error e);
            cur := Seq.empty;
            None
      in
      Mutex.unlock m;
      r
    in
    let record_locked i ev =
      Mutex.lock m;
      record i ev;
      Mutex.unlock m
    in
    let caller = Observe.Metrics.current () in
    let caller_series = Observe.Series.current () in
    run t (fun () ->
        let rec go () =
          match take () with
          | None -> ()
          | Some (i, x, buf) ->
            let w = Domain.DLS.get worker_id in
            Observe.Metrics.incr (m_worker_tasks w);
            let task () =
              if use_series then begin
                let sbuf = Observe.Series.task_buffer () in
                Mutex.lock m;
                Hashtbl.replace sbufs i sbuf;
                Mutex.unlock m;
                Observe.Series.with_current sbuf (fun () -> f x)
              end
              else f x
            in
            (match Observe.Metrics.with_current buf task with
            | Some b -> record_locked i (Ok b)
            | None -> ()
            | exception e -> record_locked i (Error e));
            go ()
        in
        go ());
    let commit_upto last =
      for i = 0 to last do
        (match Hashtbl.find_opt bufs i with
        | Some buf -> Observe.Metrics.merge_into caller buf
        | None -> ());
        match Hashtbl.find_opt sbufs i with
        | Some sbuf -> Observe.Series.merge_into caller_series sbuf
        | None -> ()
      done
    in
    match !best with
    | Some (i, Ok b) ->
      commit_upto i;
      Observe.Metrics.set m_search_cancel_index (float_of_int i);
      Found b
    | Some (i, Error e) ->
      commit_upto i;
      raise e
    | None ->
      commit_upto (!next - 1);
      Exhausted !next
  end
