(** Multicore substrate: a hand-rolled fork-join Domain pool with an
    order-preserving parallel map and a deterministic
    first-in-enumeration-order counterexample search. Every consumer in
    the checker, the model checker, and the sweep driver is property-
    tested to agree verdict-for-verdict with its sequential
    counterpart. *)

module Pool = Pool
