(** Syntactic classification of Datalog¬ programs into the fragments of the
    paper's Figure 2. *)

type t =
  | Positive            (** Datalog: positive, no inequalities *)
  | Positive_ineq       (** Datalog(≠) *)
  | Semi_positive       (** SP-Datalog: negation on edb only *)
  | Connected_stratified      (** con-Datalog¬ *)
  | Semi_connected_stratified (** semicon-Datalog¬ (and not con) *)
  | Stratified          (** stratified but not semi-connected *)
  | Unstratifiable

val classify : Ast.program -> t
(** The most specific fragment: [Positive ⊆ Positive_ineq ⊆ Semi_positive ⊆
    Semi_connected ⊆ Stratified]; connectivity is orthogonal to
    [Semi_positive] (the paper notes SP-Datalog ⊄ con-Datalog¬), so
    [classify] prefers [Semi_positive] over [Connected_stratified] when
    both hold. *)

val is_positive : Ast.program -> bool
val is_positive_with_ineq : Ast.program -> bool
val is_semi_positive : Ast.program -> bool

val all : t list
(** Every constructor, from most to least specific. The test suite pins
    its length against the rendering table so a new fragment cannot be
    added without extending both. *)

val to_string : t -> string

val of_string : string -> t option
(** Inverse of {!to_string} (names are pairwise distinct, tested). *)

val monotonicity_upper_bound : t -> string
(** The monotonicity class the fragment is guaranteed to live in, per the
    paper: positive fragments → "M", semi-positive → "Mdistinct",
    (semi-)connected stratified → "Mdisjoint", general stratified /
    unstratifiable → "C". *)
