(** Shared join substrate of the Datalog engines.

    A value of type {!t} is a per-predicate view of an instance whose
    hash indexes are built lazily, one per (arity, bound-position set)
    actually probed. Which argument positions of a body atom are
    determinate — constants, or variables bound by earlier atoms — is a
    static property of the rule, precomputed once as a {!plan}; a probe
    then answers "facts matching this atom under these bindings" with a
    single hash lookup instead of a scan of the predicate's facts.

    Both {!Eval} (depth-first, tuple-at-a-time) and {!Hashjoin}
    (set-at-a-time) drive their joins through this module; the seed
    tree's duplicated [index]/[term_value]/[ground_atom] helpers live
    here once. *)

open Relational

module Env : Map.S with type key = string
module Smap : Map.S with type key = string

val default_neg : Instance.t -> Fact.t -> bool
(** Absence from the current instance: the paper's negation test for
    semi-positive programs and strata. *)

type t
(** An indexed instance. Indexes are built on demand and memoized;
    building is cheap (one pass per position set) and the structure is
    otherwise immutable. *)

val empty : t
val of_instance : Instance.t -> t

val of_facts : Fact.t list -> t
(** Index a raw fact list (duplicate-free) without building an
    {!Instance.t} first — the overlay databases of the IVM layer. *)

val update : t -> add:Fact.t list -> remove:Instance.t -> t
(** Functional update. Predicates untouched by [add]/[remove] share
    their storage — including every lazily built index — with the input;
    touched predicates drop their indexes for lazy rebuild. The input
    database is left usable and unchanged. *)

val probe :
  t -> string -> arity:int -> positions:int list -> Value.t list ->
  Fact.t list
(** [probe db pred ~arity ~positions key]: all facts of [pred] with the
    given arity whose arguments at [positions] equal [key], via the
    (lazily built) index for that position set. *)

val term_value : Value.t Env.t -> Ast.term -> Value.t
(** Value of a determinate term under an environment.
    @raise Invalid_argument on an unbound variable. *)

val skolem_functor : string -> string
(** Name of the Skolem functor associated with an invention relation
    ([f_R] in the paper). *)

val ground_atom : Value.t Env.t -> Ast.atom -> Fact.t
(** Ground an atom; invention heads are Skolemized (Section 5.2). *)

val checks_pass :
  Instance.t -> (Instance.t -> Fact.t -> bool) -> Value.t Env.t ->
  Ast.rule -> bool
(** Inequality and negation side conditions of a rule under a complete
    positive-body valuation. *)

(** {2 Rule plans} *)

type slot =
  | Bind of int * string  (** free position: bind the variable *)
  | Check of int * string  (** repeated free variable: check equality *)

type atom_plan = {
  pred : string;
  arity : int;
  key_positions : int list;
  key_terms : Ast.term list;
  slots : slot list;
}

type plan = {
  rule : Ast.rule;
  atoms : atom_plan array;
}

val plan_rule : Ast.rule -> plan
val plan_program : Ast.program -> plan list

val key_of_env : Value.t Env.t -> atom_plan -> Value.t list
(** The probe key for an atom under the current bindings. *)

val extend : Value.t Env.t -> slot list -> Fact.t -> Value.t Env.t option
(** Bind the free positions of a probed fact; [None] when a repeated
    free variable clashes. Keyed positions are already guaranteed equal
    by the probe. *)

(** {2 EXPLAIN} *)

val pp_atom_plan : Format.formatter -> atom_plan -> unit
(** One line: index choice (hashed positions + key terms, or full scan)
    and the bind/check slots the probe loop applies per candidate. *)

val pp_plan : Format.formatter -> plan -> unit
(** The rule followed by one [pp_atom_plan] line per body atom, in
    probe order. *)
