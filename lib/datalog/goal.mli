(** Goal-directed evaluation: answer a single (possibly partially bound)
    atom query without materializing unrelated predicates.

    A lightweight cousin of magic sets: the program is sliced to the rules
    transitively relevant to the goal's predicate, evaluated bottom-up,
    and the result filtered against the goal pattern. Sound and complete
    for stratified programs because slicing keeps every rule the goal
    predicate (transitively) depends on. *)

open Relational

val relevant_predicates : Ast.program -> string -> string list
(** The goal predicate together with everything it transitively depends
    on (idb and edb). *)

val slice : Ast.program -> string -> Ast.program
(** The rules whose head predicate is relevant to the goal. *)

val matches : Ast.atom -> Fact.t -> bool
(** Does a fact match the goal pattern? Variables are wildcards, but
    repeated variables must agree; constants must be equal. *)

val query :
  ?max_facts:int -> Ast.program -> Instance.t -> goal:Ast.atom ->
  (Instance.t, string) result
(** All facts matching the goal derivable by the (stratified) program on
    the input. [Error] when the sliced program is not stratifiable. *)
