(** Bloom-style CALM analysis: {e points of order}.

    Alvaro et al.'s consistency analysis (cited in the paper's related
    work) marks the non-monotone constructs of a program — in Datalog¬,
    the negated literals — as the places where a distributed execution
    may need to wait. This module locates them and, refined by the
    paper's hierarchy, reports {e how much} waiting each one needs:
    negation over edb is discharged by absence certificates (policy-aware
    model), negation inside a connected prefix is discharged by component
    completeness (domain-guided model), and anything else requires global
    coordination. *)

type severity =
  | Edb_negation
      (** negated edb atom: needs absence information (level F1) *)
  | Stratified_negation
      (** negated idb atom in a semi-connected position: needs component
          completeness (level F2) *)
  | Blocking_negation
      (** negated idb atom outside the semi-connected shape, or in an
          unstratifiable cycle: global coordination *)

type point = {
  rule : Ast.rule;
  literal : Ast.atom;   (** the negated atom *)
  severity : severity;
}

val severity_to_string : severity -> string

val analyze : Ast.program -> point list
(** Every negated literal of the program with its severity. A program
    with no points of order is positive, hence monotone and
    coordination-free at level F0. *)

val max_severity : point list -> severity option
(** The worst point, [None] for positive programs. *)

val coordination_level : Ast.program -> string
(** Human summary: "F0 (none)" / "F1 (absence info)" /
    "F2 (component completeness)" / "global coordination". *)

val pp_point : Format.formatter -> point -> unit
