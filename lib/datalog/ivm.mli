(** Incremental view maintenance for stratified Datalog¬.

    A handle caches the saturated model of a program over an input — the
    IDB plus support state: per-fact derivation counts for non-recursive
    strata (counting algorithm), DRed over-delete/re-derive where
    counting is unsound (recursive strata) — and answers updates without
    re-saturating from scratch. Insertion-only deltas (the monotonicity
    scan's probes) run semi-naive rounds seeded only with Δ against the
    handle's Joindb indexes, which are built lazily once and shared
    across applies; retractions decrement counts or take the DRed route;
    a stratum whose negated predicates are touched by a change is
    recomputed by itself over the maintained lower strata, never the
    whole program.

    Work is metered by two stable counters: [eval.ivm_applies] (one per
    {!apply}/{!update}) and [eval.ivm_rederived] (facts recomputed by a
    fallback — scratch stratum recomputation or DRed re-derivation).
    Under profiling, applies run inside an [ivm.apply] span with
    fallbacks nested as [ivm.rederive].

    Correctness is pinned by the update-sequence test wall: incremental ≡
    from-scratch saturation ({!Refeval} as oracle) at every step of
    random insert/retract sequences. *)

open Relational

type t
(** A materialization handle. Mutable: {!insert}/{!retract}/{!update}
    advance it destructively; {!apply} answers a what-if delta without
    committing (the handle only memoizes shared indexes). Not
    thread-safe — use one handle per domain. *)

val supported : Ast.program -> bool
(** Stratified semantics only: [Stratify.is_stratifiable]. *)

val materialize : ?max_facts:int -> Ast.program -> Instance.t -> t
(** Saturate the program over the given input and package the model with
    its support state. Derivation counts are built lazily, on the first
    retraction that needs them, so insertion-only users never pay for
    them.
    @raise Invalid_argument if the program is not stratifiable.
    @raise Eval.Diverged past [max_facts]. *)

val given : t -> Instance.t
(** The handle's current input. *)

val current : t -> Instance.t
(** The cached model: [given ∪] every derived fact — extensionally
    [Eval.stratified_exn p (given h)]. *)

val apply : t -> delta:Instance.t -> Instance.t
(** [apply h ~delta] is the model of [given h ∪ delta], computed by
    Δ-seeded semi-naive rounds against the cached model, without
    committing anything to the handle. *)

val apply_facts : t -> Fact.t list -> Instance.t
(** {!apply} taking the delta as a raw fact list (duplicate-free) — the
    scan's hot path, skipping the set construction. *)

val insert : t -> Instance.t -> Instance.t
(** Destructively add input facts and return the new model. *)

val retract : t -> Instance.t -> Instance.t
(** Destructively remove input facts (counting-decrement; DRed for
    recursive strata) and return the new model. *)

val update : t -> add:Instance.t -> remove:Instance.t -> Instance.t
(** Combined retract-then-insert against one consistent snapshot: the
    new input is [(given ∖ remove) ∪ add]. Returns the new model. On an
    exception (e.g. [Eval.Diverged]) the handle is left unchanged. *)
