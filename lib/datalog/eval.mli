(** Fixpoint evaluation of Datalog¬ programs.

    [naive] and [seminaive] compute the minimal fixpoint of the immediate
    consequence operator [T_P] (Section 2) for semi-positive programs —
    programs whose negated predicates are never derived by the rules being
    evaluated (their extent is fixed throughout). [stratified] runs a
    syntactic stratification bottom-up, each stratum with [seminaive].

    The optional [neg] argument overrides how a negated ground atom is
    tested; it receives the current total instance and the candidate fact.
    The default tests absence from the current instance, which is the
    paper's semantics for semi-positive programs and strata. The
    well-founded evaluator overrides it to test against a fixed
    underestimate. *)

open Relational

exception Diverged
(** Raised when a fixpoint exceeds its [max_facts] budget. Pure Datalog¬
    always terminates; the budget matters for ILOG programs with recursive
    value invention, whose output the paper leaves undefined when infinite
    (Section 5.2). *)

val skolem_functor : string -> string
(** Name of the Skolem functor associated with an invention relation
    ([f_R] in the paper). *)

val derive :
  ?neg:(Instance.t -> Fact.t -> bool) ->
  Ast.program -> Instance.t -> Instance.t
(** Facts derived by all satisfying valuations on the given instance (the
    [A] in [T_P(J) = J ∪ A]); result may overlap the instance. *)

val reorder_body : Ast.rule -> Ast.rule
(** Join-order heuristic: greedily reorders the positive body atoms so
    that each atom shares as many variables as possible with the atoms
    before it (ties broken towards atoms with constants, then fewer
    variables). Semantically a no-op — rule bodies are sets — but it
    prunes the nested-loop search; see the E18 ablation bench. *)

val optimize : Ast.program -> Ast.program
(** {!reorder_body} applied to every rule. *)

val immediate_consequence :
  ?neg:(Instance.t -> Fact.t -> bool) ->
  Ast.program -> Instance.t -> Instance.t
(** [T_P(J)]. *)

val naive :
  ?neg:(Instance.t -> Fact.t -> bool) ->
  ?max_facts:int ->
  Ast.program -> Instance.t -> Instance.t
(** Least fixpoint above the input by naive iteration.
    @raise Diverged if the fixpoint grows past [max_facts]. *)

val seminaive :
  ?neg:(Instance.t -> Fact.t -> bool) ->
  ?max_facts:int ->
  Ast.program -> Instance.t -> Instance.t
(** Least fixpoint by semi-naive (delta) iteration. Agrees with {!naive}
    on semi-positive programs (tested property). *)

val stratified :
  ?max_facts:int -> Ast.program -> Instance.t -> (Instance.t, string) result
(** Stratified semantics [P_k(...P_1(I)...)]; [Error] if not syntactically
    stratifiable. *)

val stratified_exn : ?max_facts:int -> Ast.program -> Instance.t -> Instance.t
(** @raise Invalid_argument if not stratifiable. *)

val iter_firings :
  probe:
    (int -> Joindb.atom_plan -> Value.t list -> (Fact.t -> unit) -> unit) ->
  Joindb.plan -> (Value.t Joindb.Env.t -> unit) -> unit
(** Delta plumbing for {!Ivm}: enumerate complete valuations of a plan's
    positive body, probing each atom position through a caller-supplied
    source. [probe i ap key emit] must pass every candidate fact for atom
    [i] whose keyed positions equal [key] to [emit]; the caller composes
    base and overlay databases, membership filters, and the counting
    partitions there. Inequality and negation checks are the caller's
    responsibility ({!Joindb.checks_pass}). *)

(** {2 EXPLAIN ANALYZE}

    When profiling is enabled ({!Observe.Profile.is_enabled}), every rule
    activation additionally records stable per-rule counters
    [eval.rule_fired] / [eval.rule_derived] / [eval.rule_deduped], a
    volatile [eval.rule_time] timing, and a [rule:<label>] profile span —
    all keyed by {!rule_label}. While profiling is off the evaluator pays
    a single atomic load per activation. *)

val rule_label : Ast.rule -> string
(** Flat label shared by the per-rule metrics and profile spans:
    [head<-body1,body2,!negated]. *)

type atom_report = {
  atom : Joindb.atom_plan;
  extent : int;  (** facts of this predicate/arity in the database *)
  lookups : int;  (** index probes issued for this atom *)
  est_candidates : int;  (** [lookups × extent]: a nested-loop scan's cost *)
  candidates : int;  (** facts actually examined after hashing *)
}

type rule_report = {
  plan : Joindb.plan;
  atom_reports : atom_report list;
  valuations : int;  (** complete positive-body valuations *)
  fired : int;  (** valuations passing inequality/negation checks *)
  derived : int;  (** facts derived by this pass not already in the db *)
}

val explain :
  ?neg:(Instance.t -> Fact.t -> bool) ->
  Ast.program -> Instance.t -> rule_report list
(** One instrumented derivation pass of every rule over the given
    database (pass the fixpoint to see the plans under their real
    workload), with per-atom estimated-vs-actual candidate counts.
    Deterministic for a given program and database. *)

val pp_explain : Format.formatter -> rule_report list -> unit
(** [calm plan]'s rendering: each rule, its per-atom access paths with
    lookup/extent/candidate counts, and the valuation summary. *)
