(** Fixpoint evaluation of Datalog¬ programs.

    [naive] and [seminaive] compute the minimal fixpoint of the immediate
    consequence operator [T_P] (Section 2) for semi-positive programs —
    programs whose negated predicates are never derived by the rules being
    evaluated (their extent is fixed throughout). [stratified] runs a
    syntactic stratification bottom-up, each stratum with [seminaive].

    The optional [neg] argument overrides how a negated ground atom is
    tested; it receives the current total instance and the candidate fact.
    The default tests absence from the current instance, which is the
    paper's semantics for semi-positive programs and strata. The
    well-founded evaluator overrides it to test against a fixed
    underestimate. *)

open Relational

exception Diverged
(** Raised when a fixpoint exceeds its [max_facts] budget. Pure Datalog¬
    always terminates; the budget matters for ILOG programs with recursive
    value invention, whose output the paper leaves undefined when infinite
    (Section 5.2). *)

val skolem_functor : string -> string
(** Name of the Skolem functor associated with an invention relation
    ([f_R] in the paper). *)

val derive :
  ?neg:(Instance.t -> Fact.t -> bool) ->
  Ast.program -> Instance.t -> Instance.t
(** Facts derived by all satisfying valuations on the given instance (the
    [A] in [T_P(J) = J ∪ A]); result may overlap the instance. *)

val reorder_body : Ast.rule -> Ast.rule
(** Join-order heuristic: greedily reorders the positive body atoms so
    that each atom shares as many variables as possible with the atoms
    before it (ties broken towards atoms with constants, then fewer
    variables). Semantically a no-op — rule bodies are sets — but it
    prunes the nested-loop search; see the E18 ablation bench. *)

val optimize : Ast.program -> Ast.program
(** {!reorder_body} applied to every rule. *)

val immediate_consequence :
  ?neg:(Instance.t -> Fact.t -> bool) ->
  Ast.program -> Instance.t -> Instance.t
(** [T_P(J)]. *)

val naive :
  ?neg:(Instance.t -> Fact.t -> bool) ->
  ?max_facts:int ->
  Ast.program -> Instance.t -> Instance.t
(** Least fixpoint above the input by naive iteration.
    @raise Diverged if the fixpoint grows past [max_facts]. *)

val seminaive :
  ?neg:(Instance.t -> Fact.t -> bool) ->
  ?max_facts:int ->
  Ast.program -> Instance.t -> Instance.t
(** Least fixpoint by semi-naive (delta) iteration. Agrees with {!naive}
    on semi-positive programs (tested property). *)

val stratified :
  ?max_facts:int -> Ast.program -> Instance.t -> (Instance.t, string) result
(** Stratified semantics [P_k(...P_1(I)...)]; [Error] if not syntactically
    stratifiable. *)

val stratified_exn : ?max_facts:int -> Ast.program -> Instance.t -> Instance.t
(** @raise Invalid_argument if not stratifiable. *)
