open Relational

let relevant_predicates p goal_pred =
  Stratify.depends_on_trans p goal_pred
  @ List.concat_map (Stratify.depends_on p) (Stratify.depends_on_trans p goal_pred)
  |> List.cons goal_pred
  |> List.sort_uniq String.compare

let slice p goal_pred =
  let relevant = relevant_predicates p goal_pred in
  List.filter (fun (r : Ast.rule) -> List.mem r.head.pred relevant) p

let matches (goal : Ast.atom) f =
  Fact.rel f = goal.pred
  && Fact.arity f = List.length goal.terms
  &&
  let bindings = Hashtbl.create 4 in
  List.for_all2
    (fun t value ->
      match t with
      | Ast.Const c -> Value.equal c value
      | Ast.Var v -> (
        match Hashtbl.find_opt bindings v with
        | Some w -> Value.equal w value
        | None ->
          Hashtbl.replace bindings v value;
          true))
    goal.terms (Fact.args f)

let query ?max_facts p i ~goal =
  let sliced = slice p goal.Ast.pred in
  match Eval.stratified ?max_facts sliced i with
  | Error e -> Error e
  | Ok full -> Ok (Instance.filter (matches goal) full)
