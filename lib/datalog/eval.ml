open Relational

exception Diverged

let skolem_functor = Joindb.skolem_functor

module Env = Joindb.Env
module Smap = Joindb.Smap

let default_neg = Joindb.default_neg

(* Telemetry (all stable): where the evaluator's work goes. Counted
   locally per rule activation and committed in one increment, so the hot
   join loop pays one registry hit per rule rather than one per candidate
   fact. [eval.index_hits] counts index probes that produced at least one
   candidate; [eval.join_probes] counts the candidates examined — under
   the indexed engine the latter is the post-hashing residue, not the
   predicate's whole extent as in the seed nested-loop engine. *)
let m_join_probes = Observe.Metrics.counter "eval.join_probes"
let m_index_hits = Observe.Metrics.counter "eval.index_hits"
let m_derived = Observe.Metrics.counter "eval.derived_facts"
let m_rounds = Observe.Metrics.counter "eval.seminaive_rounds"
let m_delta = Observe.Metrics.histogram "eval.delta_size"
let m_fixpoint = Observe.Metrics.timing "eval.fixpoint"

(* Greedy join ordering: repeatedly pick the atom sharing the most
   variables with the already-bound set; prefer atoms with constants and
   small variable counts as tie-breakers. *)
let reorder_body (r : Ast.rule) =
  let score bound (a : Ast.atom) =
    let vars = Ast.vars_of_atom a in
    let shared = List.length (List.filter (fun v -> List.mem v bound) vars) in
    let constants =
      List.length (List.filter (function Ast.Const _ -> true | _ -> false) a.terms)
    in
    (* Lexicographic: shared desc, constants desc, free vars asc. *)
    (shared, constants, -List.length vars)
  in
  let rec go bound remaining acc =
    match remaining with
    | [] -> List.rev acc
    | first :: _ ->
      (* Select by position, not physical identity: two structurally
         equal occurrences of one atom must survive as two atoms. *)
      let _, best_i, best =
        List.fold_left
          (fun (i, best_i, best) a ->
            if score bound a > score bound best then (i + 1, i, a)
            else (i + 1, best_i, best))
          (1, 0, first) (List.tl remaining)
      in
      let remaining = List.filteri (fun i _ -> i <> best_i) remaining in
      go (Ast.vars_of_atom best @ bound) remaining (best :: acc)
  in
  { r with pos = go [] r.pos [] }

let optimize p = List.map reorder_body p

type stats = { mutable probes : int; mutable hits : int }

(* Enumerate environments extending [env] satisfying the positive atoms;
   atom number [idx] (if given) probes [delta] instead of the full
   database. Each atom costs one index lookup plus a scan of the facts
   agreeing with the bindings on its keyed positions. *)
let rec satisfy stats plans which i n db delta env k =
  if i = n then k env
  else begin
    let ap : Joindb.atom_plan = plans.(i) in
    let source = if Some i = which then delta else db in
    let key = Joindb.key_of_env env ap in
    let candidates =
      Joindb.probe source ap.pred ~arity:ap.arity
        ~positions:ap.key_positions key
    in
    (match candidates with [] -> () | _ -> stats.hits <- stats.hits + 1);
    List.iter
      (fun f ->
        stats.probes <- stats.probes + 1;
        match Joindb.extend env ap.slots f with
        | None -> ()
        | Some env' -> satisfy stats plans which (i + 1) n db delta env' k)
      candidates
  end

(* Delta plumbing for the incremental (IVM) layer: enumerate the
   valuations of a plan's positive body with a caller-chosen probe per
   atom position. [probe i ap key emit] must call [emit] on every
   candidate fact for atom [i] whose keyed positions equal [key]; the
   IVM layer composes base/overlay databases and membership filters
   there (Δ-only positions, old ∖ removed, the counting partitions).
   Inequality and negation side conditions stay with the caller, which
   sees each complete valuation. *)
let iter_firings ~probe (p : Joindb.plan) k =
  let n = Array.length p.atoms in
  let rec go i env =
    if i = n then k env
    else
      let ap : Joindb.atom_plan = p.atoms.(i) in
      probe i ap (Joindb.key_of_env env ap) (fun f ->
          match Joindb.extend env ap.slots f with
          | None -> ()
          | Some env' -> go (i + 1) env')
  in
  go 0 Env.empty

(* ANALYZE label: one flat string per rule, shared by the profile span
   and the per-rule metric rows. *)
let rule_label (r : Ast.rule) =
  let preds atoms = List.map (fun (a : Ast.atom) -> a.Ast.pred) atoms in
  r.head.Ast.pred ^ "<-"
  ^ String.concat "," (preds r.pos)
  ^ (match r.neg with
    | [] -> ""
    | ns -> ",!" ^ String.concat ",!" (preds ns))

let derive_plan ~neg ~current ~db ~delta ~which (p : Joindb.plan) acc =
  let profiling = Observe.Profile.is_enabled () in
  let run () =
    let out = ref acc in
    let stats = { probes = 0; hits = 0 } in
    let fired = ref 0 in
    let n = Array.length p.atoms in
    satisfy stats p.atoms which 0 n db delta Env.empty (fun env ->
        if Joindb.checks_pass current neg env p.rule then begin
          if profiling then incr fired;
          out := Instance.add (Joindb.ground_atom env p.rule.head) !out
        end);
    if stats.probes > 0 then Observe.Metrics.incr ~by:stats.probes m_join_probes;
    if stats.hits > 0 then Observe.Metrics.incr ~by:stats.hits m_index_hits;
    (!out, !fired)
  in
  if not profiling then fst (run ())
  else begin
    (* Per-rule ANALYZE, recorded only under [calm profile]/[--profile]:
       fired/derived/deduped are stable counters (summed per activation,
       so byte-identical across --jobs by the pool's in-order merge);
       the timing and the profile span stay volatile. *)
    let label = rule_label p.rule in
    let labels = [ ("rule", label) ] in
    let out, fired =
      Observe.Profile.span ("rule:" ^ label) (fun () ->
          Observe.Metrics.time
            (Observe.Metrics.timing ~labels "eval.rule_time")
            run)
    in
    let derived = Instance.cardinal out - Instance.cardinal acc in
    Observe.Metrics.incr ~by:fired
      (Observe.Metrics.counter ~labels "eval.rule_fired");
    Observe.Metrics.incr ~by:derived
      (Observe.Metrics.counter ~labels "eval.rule_derived");
    Observe.Metrics.incr ~by:(fired - derived)
      (Observe.Metrics.counter ~labels "eval.rule_deduped");
    out
  end

let derive_plans ?(neg = default_neg) plans j =
  let db = Joindb.of_instance j in
  let out =
    List.fold_left
      (fun acc p ->
        derive_plan ~neg ~current:j ~db ~delta:Joindb.empty ~which:None p acc)
      Instance.empty plans
  in
  Observe.Metrics.incr ~by:(Instance.cardinal out) m_derived;
  out

let derive ?neg p j = derive_plans ?neg (Joindb.plan_program p) j

let immediate_consequence ?neg p j = Instance.union j (derive ?neg p j)

let guard max_facts j =
  match max_facts with
  | Some budget when Instance.cardinal j > budget -> raise Diverged
  | _ -> ()

let naive ?neg ?max_facts p i =
  let plans = Joindb.plan_program p in
  let rec go j =
    guard max_facts j;
    let j' = Instance.union j (derive_plans ?neg plans j) in
    if Instance.equal j' j then j else go j'
  in
  go i

(* Semi-naive: after the first full round, every new derivation must match
   at least one positive atom in the delta. Negated predicates are fixed
   during a semi-positive fixpoint, so they take no part in deltas. *)
let seminaive ?(neg = default_neg) ?max_facts p i =
  let plans = Joindb.plan_program p in
  let step db_i delta_i =
    let db = Joindb.of_instance db_i and delta = Joindb.of_instance delta_i in
    List.fold_left
      (fun acc (p : Joindb.plan) ->
        let n = Array.length p.atoms in
        let rec over_idx which acc =
          if which = n then acc
          else
            over_idx (which + 1)
              (derive_plan ~neg ~current:db_i ~db ~delta ~which:(Some which) p
                 acc)
        in
        over_idx 0 acc)
      Instance.empty plans
  in
  Observe.Metrics.time m_fixpoint (fun () ->
      let first = derive_plans ~neg plans i in
      let rec go db delta =
        guard max_facts db;
        if Instance.is_empty delta then db
        else begin
          Observe.Metrics.incr m_rounds;
          Observe.Metrics.observe m_delta
            (float_of_int (Instance.cardinal delta));
          let db' = Instance.union db delta in
          let fresh = Instance.diff (step db' delta) db' in
          go db' fresh
        end
      in
      go i (Instance.diff first i))

let stratified ?max_facts p i =
  match Stratify.stratify p with
  | Error e -> Error e
  | Ok { strata; _ } ->
    Ok
      (List.fold_left
         (fun acc stratum -> seminaive ?max_facts stratum acc)
         i strata)

let stratified_exn ?max_facts p i =
  match stratified ?max_facts p i with
  | Ok r -> r
  | Error e -> invalid_arg ("Eval.stratified_exn: " ^ e)

(* ------------------------------------------------------------------ *)
(* EXPLAIN ANALYZE: one instrumented derivation pass over a database
   (typically the fixpoint), counting per-atom index lookups and the
   candidates each probe actually examined, against the estimate a
   nested-loop scan would have paid (lookups × predicate extent). *)

type atom_report = {
  atom : Joindb.atom_plan;
  extent : int;
  lookups : int;
  est_candidates : int;
  candidates : int;
}

type rule_report = {
  plan : Joindb.plan;
  atom_reports : atom_report list;
  valuations : int;
  fired : int;
  derived : int;
}

let explain ?(neg = default_neg) p j =
  let db = Joindb.of_instance j in
  let extent_of (ap : Joindb.atom_plan) =
    Instance.fold
      (fun f n ->
        if Fact.rel f = ap.pred && Fact.arity f = ap.arity then n + 1 else n)
      j 0
  in
  List.map
    (fun (pl : Joindb.plan) ->
      let n = Array.length pl.atoms in
      let lookups = Array.make n 0 and cands = Array.make n 0 in
      let vals = ref 0 and fired = ref 0 in
      let out = ref Instance.empty in
      let rec go i env =
        if i = n then begin
          incr vals;
          if Joindb.checks_pass j neg env pl.rule then begin
            incr fired;
            out := Instance.add (Joindb.ground_atom env pl.rule.head) !out
          end
        end
        else begin
          let ap = pl.atoms.(i) in
          lookups.(i) <- lookups.(i) + 1;
          let candidates =
            Joindb.probe db ap.pred ~arity:ap.arity ~positions:ap.key_positions
              (Joindb.key_of_env env ap)
          in
          cands.(i) <- cands.(i) + List.length candidates;
          List.iter
            (fun f ->
              match Joindb.extend env ap.slots f with
              | None -> ()
              | Some env' -> go (i + 1) env')
            candidates
        end
      in
      go 0 Env.empty;
      let atom_reports =
        List.init n (fun i ->
            let ap = pl.atoms.(i) in
            let extent = extent_of ap in
            {
              atom = ap;
              extent;
              lookups = lookups.(i);
              est_candidates = lookups.(i) * extent;
              candidates = cands.(i);
            })
      in
      {
        plan = pl;
        atom_reports;
        valuations = !vals;
        fired = !fired;
        derived = Instance.cardinal (Instance.diff !out j);
      })
    (Joindb.plan_program p)

let pp_explain ppf reports =
  List.iteri
    (fun ri r ->
      Format.fprintf ppf "rule %d: %a@." (ri + 1) Ast.pp_rule r.plan.Joindb.rule;
      List.iteri
        (fun ai a ->
          Format.fprintf ppf "  atom %d: %a@." (ai + 1) Joindb.pp_atom_plan
            a.atom;
          let saved =
            if a.candidates < a.est_candidates && a.candidates > 0 then
              Format.asprintf " (%.1fx fewer than scan)"
                (float_of_int a.est_candidates /. float_of_int a.candidates)
            else ""
          in
          Format.fprintf ppf
            "          lookups=%d extent=%d est-candidates=%d candidates=%d%s@."
            a.lookups a.extent a.est_candidates a.candidates saved)
        r.atom_reports;
      Format.fprintf ppf "  valuations=%d fired=%d derived=%d@." r.valuations
        r.fired r.derived)
    reports
