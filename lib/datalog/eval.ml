open Relational

exception Diverged

let skolem_functor pred = "f_" ^ pred

module Env = Map.Make (String)
module Smap = Map.Make (String)

let default_neg j f = not (Instance.mem f j)

(* Telemetry (all stable): where the evaluator's work goes. Join probes
   are counted locally per rule activation and committed in one
   increment, so the hot nested-loop join pays one registry hit per rule
   rather than one per candidate fact. *)
let m_join_probes = Observe.Metrics.counter "eval.join_probes"
let m_derived = Observe.Metrics.counter "eval.derived_facts"
let m_rounds = Observe.Metrics.counter "eval.seminaive_rounds"
let m_delta = Observe.Metrics.histogram "eval.delta_size"
let m_fixpoint = Observe.Metrics.timing "eval.fixpoint"

(* Predicate-indexed view of an instance, built once per fixpoint round so
   atom matching does not rescan the whole fact set. *)
let index i =
  Instance.fold
    (fun f m ->
      Smap.update (Fact.rel f)
        (function None -> Some [ f ] | Some l -> Some (f :: l))
        m)
    i Smap.empty

let lookup idx pred = match Smap.find_opt pred idx with Some l -> l | None -> []

let match_term env term value =
  match (term : Ast.term) with
  | Const c -> if Value.equal c value then Some env else None
  | Var v -> (
    match Env.find_opt v env with
    | Some w -> if Value.equal w value then Some env else None
    | None -> Some (Env.add v value env))

let match_atom env (a : Ast.atom) (f : Fact.t) =
  if Fact.rel f <> a.pred || Fact.arity f <> List.length a.terms then None
  else
    let rec go env i = function
      | [] -> Some env
      | t :: rest -> (
        match match_term env t (Fact.arg f i) with
        | None -> None
        | Some env -> go env (i + 1) rest)
    in
    go env 0 a.terms

let term_value env = function
  | Ast.Const c -> c
  | Ast.Var v -> (
    match Env.find_opt v env with
    | Some c -> c
    | None -> invalid_arg "Eval: unbound variable in a checked position")

(* Invention heads R(⋆, ū) ground to R(f_R(v̄), v̄): the Skolemization of
   Section 5.2, with the functor applied to the remaining head
   arguments. *)
let ground_atom env (a : Ast.atom) =
  let args = List.map (term_value env) a.terms in
  if a.invents then
    Fact.make a.pred (Value.Skolem (skolem_functor a.pred, args) :: args)
  else Fact.make a.pred args

(* Greedy join ordering: repeatedly pick the atom sharing the most
   variables with the already-bound set; prefer atoms with constants and
   small variable counts as tie-breakers. *)
let reorder_body (r : Ast.rule) =
  let score bound (a : Ast.atom) =
    let vars = Ast.vars_of_atom a in
    let shared = List.length (List.filter (fun v -> List.mem v bound) vars) in
    let constants =
      List.length (List.filter (function Ast.Const _ -> true | _ -> false) a.terms)
    in
    (* Lexicographic: shared desc, constants desc, free vars asc. *)
    (shared, constants, -List.length vars)
  in
  let rec go bound remaining acc =
    match remaining with
    | [] -> List.rev acc
    | _ ->
      let best =
        List.fold_left
          (fun best a ->
            match best with
            | None -> Some a
            | Some b -> if score bound a > score bound b then Some a else best)
          None remaining
      in
      let a = Option.get best in
      let remaining = List.filter (fun x -> x != a) remaining in
      go (Ast.vars_of_atom a @ bound) remaining (a :: acc)
  in
  { r with pos = go [] r.pos [] }

let optimize p = List.map reorder_body p

(* Enumerate environments extending [env] satisfying the positive atoms;
   atom number [idx] (if given) matches against [delta_idxed] instead of
   the full index. [probes] tallies candidate-fact match attempts. *)
let rec satisfy_pos probes db_idx delta_idx which i atoms env k =
  match atoms with
  | [] -> k env
  | (a : Ast.atom) :: rest ->
    let source = if Some i = which then delta_idx else db_idx in
    List.iter
      (fun f ->
        incr probes;
        match match_atom env a f with
        | None -> ()
        | Some env' ->
          satisfy_pos probes db_idx delta_idx which (i + 1) rest env' k)
      (lookup source a.pred)

let checks_pass current neg env (r : Ast.rule) =
  List.for_all
    (fun (x, y) -> not (Value.equal (term_value env x) (term_value env y)))
    r.ineq
  && List.for_all (fun a -> neg current (ground_atom env a)) r.neg

let derive_rule ~neg ~current ~db_idx ~delta_idx ~which (r : Ast.rule) acc =
  let out = ref acc in
  let probes = ref 0 in
  satisfy_pos probes db_idx delta_idx which 0 r.pos Env.empty (fun env ->
      if checks_pass current neg env r then
        out := Instance.add (ground_atom env r.head) !out);
  if !probes > 0 then Observe.Metrics.incr ~by:!probes m_join_probes;
  !out

let derive ?(neg = default_neg) p j =
  let idx = index j in
  let out =
    List.fold_left
      (fun acc r ->
        derive_rule ~neg ~current:j ~db_idx:idx ~delta_idx:Smap.empty
          ~which:None r acc)
      Instance.empty p
  in
  Observe.Metrics.incr ~by:(Instance.cardinal out) m_derived;
  out

let immediate_consequence ?neg p j = Instance.union j (derive ?neg p j)

let guard max_facts j =
  match max_facts with
  | Some budget when Instance.cardinal j > budget -> raise Diverged
  | _ -> ()

let naive ?neg ?max_facts p i =
  let rec go j =
    guard max_facts j;
    let j' = immediate_consequence ?neg p j in
    if Instance.equal j' j then j else go j'
  in
  go i

(* Semi-naive: after the first full round, every new derivation must match
   at least one positive atom in the delta. Negated predicates are fixed
   during a semi-positive fixpoint, so they take no part in deltas. *)
let seminaive ?(neg = default_neg) ?max_facts p i =
  let step db delta =
    let db_idx = index db and delta_idx = index delta in
    List.fold_left
      (fun acc (r : Ast.rule) ->
        let n = List.length r.pos in
        let rec over_idx which acc =
          if which = n then acc
          else
            over_idx (which + 1)
              (derive_rule ~neg ~current:db ~db_idx ~delta_idx
                 ~which:(Some which) r acc)
        in
        over_idx 0 acc)
      Instance.empty p
  in
  Observe.Metrics.time m_fixpoint (fun () ->
      let first = derive ~neg p i in
      let rec go db delta =
        guard max_facts db;
        if Instance.is_empty delta then db
        else begin
          Observe.Metrics.incr m_rounds;
          Observe.Metrics.observe m_delta
            (float_of_int (Instance.cardinal delta));
          let db' = Instance.union db delta in
          let fresh = Instance.diff (step db' delta) db' in
          go db' fresh
        end
      in
      go i (Instance.diff first i))

let stratified ?max_facts p i =
  match Stratify.stratify p with
  | Error e -> Error e
  | Ok { strata; _ } ->
    Ok
      (List.fold_left
         (fun acc stratum -> seminaive ?max_facts stratum acc)
         i strata)

let stratified_exn ?max_facts p i =
  match stratified ?max_facts p i with
  | Ok r -> r
  | Error e -> invalid_arg ("Eval.stratified_exn: " ^ e)
