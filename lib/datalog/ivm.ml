open Relational

(* Incremental view maintenance for stratified Datalog¬.

   A handle caches the saturated model of a program over a given input
   plus enough support state to maintain it under change: per-fact
   derivation counts for non-recursive strata (the counting algorithm),
   DRed over-delete/re-derive for recursive strata where counting is
   unsound. The scan's hot path — insertion-only deltas probed against a
   base — runs semi-naive rounds seeded only with Δ against the handle's
   Joindb indexes (built once, shared across thousands of applies);
   retractions take the counting-decrement or DRed route; strata whose
   negated predicates are touched by the change fall back to a per-
   stratum recomputation (counted in [eval.ivm_rederived]), never a
   whole-program one. *)

module Sset = Set.Make (String)

module Ftbl = Hashtbl.Make (struct
  type t = Fact.t

  let equal = Fact.equal
  let hash = Fact.hash
end)

let m_applies = Observe.Metrics.counter "eval.ivm_applies"
let m_rederived = Observe.Metrics.counter "eval.ivm_rederived"

type stratum = {
  rules : Ast.program;
  plans : Joindb.plan list;
  heads : Sset.t;
  heads_list : string list;
  body_preds : Sset.t;  (* positive and negated body predicates *)
  neg_preds : Sset.t;
  recursive : bool;  (* some body mentions a stratum head *)
  mutable derived : Instance.t;
      (* Head-predicate facts of the stratum's model. Invariant: contains
         every derivable head fact; may over-approximate with given idb
         facts until [counts] is forced (harmless: presence is
         [given ∪ derived] and those facts are given). Exact whenever
         [counts] is [Some _]. *)
  mutable counts : int Ftbl.t option;
      (* Derivation counts, non-recursive strata only, built lazily on
         the first retraction that needs them. Absent keys count 0. *)
}

type t = {
  max_facts : int option;
  strata : stratum array;
  all_heads : Sset.t;
  mutable given : Instance.t;
  mutable model : Instance.t;  (* given ∪ ⋃ derived *)
  mutable size : int;  (* cardinal of model, cached for the guard *)
  mutable db : Joindb.t;  (* indexes over model, lazily built, reused *)
}

let supported = Stratify.is_stratifiable
let given h = h.given
let current h = h.model

(* ------------------------------------------------------------------ *)
(* Probe composition for Eval.iter_firings *)

let probe_db db (ap : Joindb.atom_plan) key emit =
  List.iter emit
    (Joindb.probe db ap.pred ~arity:ap.arity ~positions:ap.key_positions key)

let probe_db_filtered db skip (ap : Joindb.atom_plan) key emit =
  List.iter
    (fun f -> if not (skip f) then emit f)
    (Joindb.probe db ap.pred ~arity:ap.arity ~positions:ap.key_positions key)

(* ------------------------------------------------------------------ *)
(* Stratum compilation *)

let make_stratum rules =
  let heads =
    List.fold_left (fun s (r : Ast.rule) -> Sset.add r.head.pred s) Sset.empty
      rules
  in
  let body_preds =
    List.fold_left
      (fun s (r : Ast.rule) ->
        let s =
          List.fold_left (fun s (a : Ast.atom) -> Sset.add a.pred s) s r.pos
        in
        List.fold_left (fun s (a : Ast.atom) -> Sset.add a.pred s) s r.neg)
      Sset.empty rules
  in
  let neg_preds =
    List.fold_left
      (fun s (r : Ast.rule) ->
        List.fold_left (fun s (a : Ast.atom) -> Sset.add a.pred s) s r.neg)
      Sset.empty rules
  in
  {
    rules;
    plans = Joindb.plan_program rules;
    heads;
    heads_list = Sset.elements heads;
    body_preds;
    neg_preds;
    recursive = not (Sset.disjoint heads body_preds);
    derived = Instance.empty;
    counts = None;
  }

let materialize ?max_facts program given =
  match Stratify.stratify program with
  | Error e -> invalid_arg ("Ivm.materialize: " ^ e)
  | Ok { strata = rule_strata; _ } ->
    let strata = Array.of_list (List.map make_stratum rule_strata) in
    let acc = ref given in
    Array.iter
      (fun s ->
        let acc' = Eval.seminaive ?max_facts s.rules !acc in
        s.derived <- Instance.restrict_rels acc' s.heads_list;
        acc := acc')
      strata;
    let all_heads =
      Array.fold_left (fun s st -> Sset.union s st.heads) Sset.empty strata
    in
    {
      max_facts;
      strata;
      all_heads;
      given;
      model = !acc;
      size = Instance.cardinal !acc;
      db = Joindb.of_instance !acc;
    }

(* Exact derivation counts over the committed model; forced by the first
   retraction that needs them. Also makes [derived] exact (a fact of a
   non-recursive stratum is derivable iff it has a one-step derivation
   from the lower, fully determined predicates — i.e. count > 0). *)
let force_counts h s =
  match s.counts with
  | Some c -> c
  | None ->
    let c = Ftbl.create 64 in
    List.iter
      (fun (pl : Joindb.plan) ->
        Eval.iter_firings
          ~probe:(fun _ ap key emit -> probe_db h.db ap key emit)
          pl
          (fun env ->
            if Joindb.checks_pass h.model Joindb.default_neg env pl.rule then begin
              let f = Joindb.ground_atom env pl.rule.Ast.head in
              Ftbl.replace c f
                (1 + (try Ftbl.find c f with Not_found -> 0))
            end))
      s.plans;
    s.counts <- Some c;
    s.derived <- Instance.filter (fun f -> Ftbl.mem c f) s.derived;
    c

(* ------------------------------------------------------------------ *)
(* One maintenance run. All state is functional relative to the handle
   until [commit]; an exception mid-run leaves the handle intact. *)

type counts_patch = Keep | Invalidate | Table of int Ftbl.t

type run = {
  h : t;
  destructive : bool;
  mutable m_new : Instance.t;  (* new model; head preds ≥ current stratum stale *)
  mutable adds : Fact.t list;  (* presence additions vs the old model *)
  mutable rem_inst : Instance.t;  (* presence removals vs the old model *)
  mutable overlays : Joindb.t list;  (* indexes over [adds], chunked *)
  mutable ap : Sset.t;  (* predicates with additions *)
  mutable rp : Sset.t;  (* predicates with removals *)
  mutable size : int;
  new_derived : Instance.t option array;
  counts_patch : counts_patch array;
}

let guard rs =
  match rs.h.max_facts with
  | Some b when rs.size > b -> raise Eval.Diverged
  | _ -> ()

let commit_added rs facts =
  match facts with
  | [] -> ()
  | _ ->
    rs.m_new <- List.fold_left (fun m f -> Instance.add f m) rs.m_new facts;
    rs.adds <- List.rev_append facts rs.adds;
    rs.overlays <- Joindb.of_facts facts :: rs.overlays;
    rs.ap <- List.fold_left (fun s f -> Sset.add (Fact.rel f) s) rs.ap facts;
    rs.size <- rs.size + List.length facts;
    guard rs

let commit_removed rs facts =
  match facts with
  | [] -> ()
  | _ ->
    rs.m_new <- List.fold_left (fun m f -> Instance.remove f m) rs.m_new facts;
    rs.rem_inst <-
      List.fold_left (fun m f -> Instance.add f m) rs.rem_inst facts;
    rs.rp <- List.fold_left (fun s f -> Sset.add (Fact.rel f) s) rs.rp facts;
    rs.size <- rs.size - List.length facts

(* The full probe of the current (partially updated) database: old model
   minus removals-so-far, plus every addition overlay. *)
let probe_full rs ap key emit =
  if Instance.is_empty rs.rem_inst then probe_db rs.h.db ap key emit
  else probe_db_filtered rs.h.db (fun f -> Instance.mem f rs.rem_inst) ap key
      emit;
  List.iter (fun db -> probe_db db ap key emit) rs.overlays

let relevant_to s f = Sset.mem (Fact.rel f) s.body_preds

(* ------------------------------------------------------------------ *)
(* Insertion-only semi-naive over one stratum: the scan's hot path.
   Requires no removals among the stratum's body or head predicates and
   untouched negated predicates; presence additions committed so far
   (including any new given head facts, already committed by the caller)
   seed the delta. Returns the freshly derived head facts. *)
let sem_add rs s =
  let seen = ref Instance.empty in
  let all_fresh = ref [] in
  let local = ref [] in
  let full ap key emit =
    probe_full rs ap key emit;
    List.iter (fun db -> probe_db db ap key emit) !local
  in
  let rec rounds delta_facts =
    match delta_facts with
    | [] -> ()
    | _ ->
      let ddb = Joindb.of_facts delta_facts in
      local := ddb :: !local;
      let fresh = ref [] in
      List.iter
        (fun (pl : Joindb.plan) ->
          let n = Array.length pl.atoms in
          for which = 0 to n - 1 do
            Eval.iter_firings
              ~probe:(fun i ap key emit ->
                if i = which then probe_db ddb ap key emit
                else full ap key emit)
              pl
              (fun env ->
                if Joindb.checks_pass rs.m_new Joindb.default_neg env pl.rule
                then begin
                  let f = Joindb.ground_atom env pl.rule.Ast.head in
                  if
                    (not (Instance.mem f rs.m_new))
                    && not (Instance.mem f !seen)
                  then begin
                    seen := Instance.add f !seen;
                    fresh := f :: !fresh
                  end
                end)
          done)
        s.plans;
      let fresh = !fresh in
      all_fresh := List.rev_append fresh !all_fresh;
      rs.size <- rs.size + List.length fresh;
      guard rs;
      rs.size <- rs.size - List.length fresh;
      rounds fresh
  in
  rounds (List.filter (relevant_to s) rs.adds);
  !all_fresh

(* ------------------------------------------------------------------ *)
(* Per-stratum recomputation: the fallback when a stratum's negated
   predicates are touched (or, in pure mode, when any removal reaches its
   body). Evaluates the stratum's rules to fixpoint over the new lower
   model — old head facts of this stratum excluded, given head facts kept
   — and returns the set of fired (hence derivable) head facts. *)
let scratch rs s ~gh_start =
  let skip f =
    Instance.mem f rs.rem_inst || Sset.mem (Fact.rel f) s.heads
  in
  let ghdb = Joindb.of_facts gh_start in
  let local = ref [] in
  let base ap key emit =
    probe_db_filtered rs.h.db skip ap key emit;
    List.iter (fun db -> probe_db db ap key emit) rs.overlays;
    probe_db ghdb ap key emit;
    List.iter (fun db -> probe_db db ap key emit) !local
  in
  let seen = ref (Instance.of_list gh_start) in
  let derived' = ref Instance.empty in
  let fresh = ref [] in
  let fire (pl : Joindb.plan) env =
    if Joindb.checks_pass rs.m_new Joindb.default_neg env pl.rule then begin
      let f = Joindb.ground_atom env pl.rule.Ast.head in
      derived' := Instance.add f !derived';
      if not (Instance.mem f !seen) then begin
        seen := Instance.add f !seen;
        fresh := f :: !fresh
      end
    end
  in
  List.iter
    (fun pl -> Eval.iter_firings ~probe:(fun _ ap key emit -> base ap key emit)
        pl (fire pl))
    s.plans;
  let rec rounds delta_facts =
    match delta_facts with
    | [] -> ()
    | _ ->
      let ddb = Joindb.of_facts delta_facts in
      local := ddb :: !local;
      fresh := [];
      List.iter
        (fun (pl : Joindb.plan) ->
          let n = Array.length pl.atoms in
          for which = 0 to n - 1 do
            Eval.iter_firings
              ~probe:(fun i ap key emit ->
                if i = which then probe_db ddb ap key emit
                else base ap key emit)
              pl (fire pl)
          done)
        s.plans;
      rs.size <- rs.size + List.length !fresh;
      guard rs;
      rs.size <- rs.size - List.length !fresh;
      rounds !fresh
  in
  rounds !fresh;
  Observe.Metrics.incr ~by:(Instance.cardinal !derived') m_rederived;
  !derived'

(* ------------------------------------------------------------------ *)
(* DRed for a recursive stratum under removals (negated predicates
   untouched): over-delete everything with a derivation through a
   removed fact, then re-derive from the survivors plus the new input. *)
let dred rs s ~ghr =
  let d = ref Instance.empty in
  let seed =
    List.filter (relevant_to s) (Instance.to_list rs.rem_inst)
    @ List.filter
        (fun f ->
          if Instance.mem f s.derived then begin
            d := Instance.add f !d;
            true
          end
          else false)
        ghr
  in
  let rec over_del w =
    match w with
    | [] -> ()
    | _ ->
      let wdb = Joindb.of_facts w in
      let next = ref [] in
      List.iter
        (fun (pl : Joindb.plan) ->
          let n = Array.length pl.atoms in
          for which = 0 to n - 1 do
            Eval.iter_firings
              ~probe:(fun i ap key emit ->
                if i = which then probe_db wdb ap key emit
                else probe_db rs.h.db ap key emit)
              pl
              (fun env ->
                if Joindb.checks_pass rs.m_new Joindb.default_neg env pl.rule
                then begin
                  let f = Joindb.ground_atom env pl.rule.Ast.head in
                  if Instance.mem f s.derived && not (Instance.mem f !d)
                  then begin
                    d := Instance.add f !d;
                    next := f :: !next
                  end
                end)
          done)
        s.plans;
      over_del !next
  in
  over_del seed;
  let survivors = Instance.diff s.derived !d in
  survivors, !d

(* Re-derivation phase of DRed: fixpoint over survivors ∪ new input.
   Rules whose head predicate was over-deleted get one full pass (a
   survivor-supported derivation uses no new fact, so semi-naive seeding
   alone would miss it); everything else rides the semi-naive rounds
   seeded by the additions. *)
let rederive rs s ~survivors ~d ~gh_all ~ghr_inst =
  let d_preds =
    Instance.fold (fun f s -> Sset.add (Fact.rel f) s) d Sset.empty
  in
  let skip f =
    Instance.mem f rs.rem_inst || Instance.mem f d || Instance.mem f ghr_inst
  in
  let gh_new =
    List.filter (fun f -> not (Instance.mem f rs.h.model)) gh_all
  in
  let ghdb = Joindb.of_facts gh_new in
  let local = ref [] in
  let base ap key emit =
    probe_db_filtered rs.h.db skip ap key emit;
    List.iter (fun db -> probe_db db ap key emit) rs.overlays;
    probe_db ghdb ap key emit;
    List.iter (fun db -> probe_db db ap key emit) !local
  in
  let seen =
    ref (List.fold_left (fun m f -> Instance.add f m) survivors gh_all)
  in
  let derived' = ref survivors in
  let fresh = ref [] in
  let fire (pl : Joindb.plan) env =
    if Joindb.checks_pass rs.m_new Joindb.default_neg env pl.rule then begin
      let f = Joindb.ground_atom env pl.rule.Ast.head in
      derived' := Instance.add f !derived';
      if not (Instance.mem f !seen) then begin
        seen := Instance.add f !seen;
        fresh := f :: !fresh
      end
    end
  in
  (* Pass B: full pass for rules that can resurrect over-deleted heads. *)
  List.iter
    (fun (pl : Joindb.plan) ->
      if Sset.mem pl.rule.Ast.head.pred d_preds then
        Eval.iter_firings
          ~probe:(fun _ ap key emit -> base ap key emit)
          pl (fire pl))
    s.plans;
  (* Pass A: semi-naive over the additions accumulated so far. *)
  let body_adds = List.filter (relevant_to s) rs.adds in
  (match body_adds with
  | [] -> ()
  | _ ->
    let adb = Joindb.of_facts body_adds in
    List.iter
      (fun (pl : Joindb.plan) ->
        let n = Array.length pl.atoms in
        for which = 0 to n - 1 do
          Eval.iter_firings
            ~probe:(fun i ap key emit ->
              if i = which then probe_db adb ap key emit
              else base ap key emit)
            pl (fire pl)
        done)
      s.plans);
  let rec rounds delta_facts =
    match delta_facts with
    | [] -> ()
    | _ ->
      let ddb = Joindb.of_facts delta_facts in
      local := ddb :: !local;
      fresh := [];
      List.iter
        (fun (pl : Joindb.plan) ->
          let n = Array.length pl.atoms in
          for which = 0 to n - 1 do
            Eval.iter_firings
              ~probe:(fun i ap key emit ->
                if i = which then probe_db ddb ap key emit
                else base ap key emit)
              pl (fire pl)
          done)
        s.plans;
      rs.size <- rs.size + List.length !fresh;
      guard rs;
      rs.size <- rs.size - List.length !fresh;
      rounds !fresh
  in
  rounds !fresh;
  let recomputed = Instance.cardinal (Instance.diff !derived' survivors) in
  if recomputed > 0 then Observe.Metrics.incr ~by:recomputed m_rederived;
  !derived'

(* ------------------------------------------------------------------ *)
(* Counting maintenance for a non-recursive stratum (negated predicates
   untouched): destroyed firings decrement, created firings increment,
   each enumerated exactly once by the standard partition — the position
   of the least changed fact probes the change, earlier positions the
   pre-state, later positions the post-state. *)
let counting_maintain rs s ~ghr =
  let body_rem =
    List.filter (relevant_to s) (Instance.to_list rs.rem_inst)
  in
  let body_add = List.filter (relevant_to s) rs.adds in
  let need_counts = ghr <> [] || body_rem <> [] in
  let counts =
    if need_counts then Some (Ftbl.copy (force_counts rs.h s))
    else Option.map Ftbl.copy s.counts
  in
  let derived' = ref s.derived in
  (match body_rem with
  | [] -> ()
  | _ ->
    let c = Option.get counts in
    let rdb = Joindb.of_facts body_rem in
    let in_rem f = Instance.mem f rs.rem_inst in
    List.iter
      (fun (pl : Joindb.plan) ->
        let n = Array.length pl.atoms in
        for which = 0 to n - 1 do
          Eval.iter_firings
            ~probe:(fun i ap key emit ->
              if i = which then probe_db rdb ap key emit
              else if i < which then
                probe_db_filtered rs.h.db in_rem ap key emit
              else probe_db rs.h.db ap key emit)
            pl
            (fun env ->
              if Joindb.checks_pass rs.m_new Joindb.default_neg env pl.rule
              then begin
                let f = Joindb.ground_atom env pl.rule.Ast.head in
                match Ftbl.find_opt c f with
                | Some k when k > 1 -> Ftbl.replace c f (k - 1)
                | Some _ ->
                  Ftbl.remove c f;
                  derived' := Instance.remove f !derived'
                | None -> ()
              end)
        done)
      s.plans);
  (match body_add with
  | [] -> ()
  | _ ->
    let adb = Joindb.of_facts body_add in
    let in_rem f = Instance.mem f rs.rem_inst in
    let mid ap key emit = probe_db_filtered rs.h.db in_rem ap key emit in
    let post ap key emit =
      mid ap key emit;
      List.iter (fun db -> probe_db db ap key emit) rs.overlays
    in
    List.iter
      (fun (pl : Joindb.plan) ->
        let n = Array.length pl.atoms in
        for which = 0 to n - 1 do
          Eval.iter_firings
            ~probe:(fun i ap key emit ->
              if i = which then probe_db adb ap key emit
              else if i < which then mid ap key emit
              else post ap key emit)
            pl
            (fun env ->
              if Joindb.checks_pass rs.m_new Joindb.default_neg env pl.rule
              then begin
                let f = Joindb.ground_atom env pl.rule.Ast.head in
                (match counts with
                | Some c ->
                  Ftbl.replace c f
                    (1 + (try Ftbl.find c f with Not_found -> 0))
                | None -> ());
                derived' := Instance.add f !derived'
              end)
        done)
      s.plans);
  (!derived', match counts with Some c -> Table c | None -> Keep)

(* ------------------------------------------------------------------ *)
(* Driver: route each stratum to the cheapest sound maintenance path,
   threading presence changes downward. *)

let run_update h ~destructive ~add_list ~remove =
  Observe.Metrics.incr m_applies;
  (* Trajectory of delta sizes, tick auto-assigned per apply: shows how
     the workload's updates shrink or grow over a scan. *)
  if Observe.Series.is_enabled () then
    Observe.Series.sample_auto "eval.ivm_delta"
      (float_of_int (List.length add_list + Instance.cardinal remove));
  let rs =
    {
      h;
      destructive;
      m_new = h.model;
      adds = [];
      rem_inst = Instance.empty;
      overlays = [];
      ap = Sset.empty;
      rp = Sset.empty;
      size = h.size;
      new_derived = Array.make (Array.length h.strata) None;
      counts_patch = Array.make (Array.length h.strata) Keep;
    }
  in
  let given' =
    lazy
      (List.fold_left
         (fun g f -> Instance.add f g)
         (Instance.diff h.given remove)
         add_list)
  in
  (* Edb-level presence changes: predicates no stratum derives. *)
  commit_added rs
    (List.filter
       (fun f ->
         (not (Sset.mem (Fact.rel f) h.all_heads))
         && not (Instance.mem f h.model))
       add_list);
  if not (Instance.is_empty remove) then
    commit_removed rs
      (Instance.fold
         (fun f acc ->
           if
             (not (Sset.mem (Fact.rel f) h.all_heads))
             && Instance.mem f h.given
             && not (List.exists (Fact.equal f) add_list)
           then f :: acc
           else acc)
         remove []);
  Array.iteri
    (fun si s ->
      let gha_new =
        List.filter
          (fun f ->
            Sset.mem (Fact.rel f) s.heads && not (Instance.mem f h.model))
          add_list
      in
      let ghr =
        if Instance.is_empty remove then []
        else
          Instance.fold
            (fun f acc ->
              if
                Sset.mem (Fact.rel f) s.heads
                && Instance.mem f h.given
                && not (List.exists (Fact.equal f) add_list)
              then f :: acc
              else acc)
            remove []
      in
      let changed = Sset.union rs.ap rs.rp in
      let touched =
        (not (Sset.disjoint s.body_preds changed))
        || gha_new <> [] || ghr <> []
      in
      if touched then begin
        let neg_hit = not (Sset.disjoint s.neg_preds changed) in
        let body_rem = not (Sset.disjoint s.body_preds rs.rp) in
        let profiling = Observe.Profile.is_enabled () in
        let in_span name f =
          if profiling then Observe.Profile.span name f else f ()
        in
        (* Uniform commit for the heavyweight paths: diff the stratum's
           new presence (given' head facts ∪ derived') against the old. *)
        let commit_pres derived' =
          let gh_all =
            Instance.restrict_rels (Lazy.force given') s.heads_list
          in
          let new_pres = Instance.union gh_all derived' in
          let old_pres = Instance.restrict_rels h.model s.heads_list in
          commit_removed rs (Instance.to_list (Instance.diff old_pres new_pres));
          commit_added rs (Instance.to_list (Instance.diff new_pres old_pres));
          rs.new_derived.(si) <- Some derived'
        in
        if destructive then
          if neg_hit then begin
            let derived' =
              in_span "ivm.rederive" (fun () ->
                  scratch rs s
                    ~gh_start:
                      (Instance.to_list
                         (Instance.restrict_rels (Lazy.force given')
                            s.heads_list)))
            in
            commit_pres derived';
            if not s.recursive then rs.counts_patch.(si) <- Invalidate
          end
          else if s.recursive then begin
            if body_rem || ghr <> [] then begin
              let derived' =
                in_span "ivm.rederive" (fun () ->
                    let survivors, d = dred rs s ~ghr in
                    rederive rs s ~survivors ~d
                      ~gh_all:
                        (Instance.to_list
                           (Instance.restrict_rels (Lazy.force given')
                              s.heads_list))
                      ~ghr_inst:(Instance.of_list ghr))
              in
              commit_pres derived'
            end
            else begin
              commit_added rs gha_new;
              let fresh = sem_add rs s in
              commit_added rs fresh;
              rs.new_derived.(si) <-
                Some
                  (List.fold_left
                     (fun acc f -> Instance.add f acc)
                     s.derived fresh)
            end
          end
          else begin
            commit_added rs gha_new;
            let derived', patch = counting_maintain rs s ~ghr in
            (* gha_new already committed; commit_pres recomputes the full
               presence diff, so undo nothing — the diff below is against
               the old model and m_new already holds gha_new, which the
               diff will simply not re-add. *)
            let gh_all =
              Instance.restrict_rels (Lazy.force given') s.heads_list
            in
            let new_pres = Instance.union gh_all derived' in
            let old_pres = Instance.restrict_rels h.model s.heads_list in
            commit_removed rs
              (Instance.to_list (Instance.diff old_pres new_pres));
            commit_added rs
              (List.filter
                 (fun f -> not (Instance.mem f rs.m_new))
                 (Instance.to_list (Instance.diff new_pres old_pres)));
            rs.new_derived.(si) <- Some derived';
            rs.counts_patch.(si) <- patch
          end
        else if neg_hit || body_rem || ghr <> [] then begin
          let derived' =
            in_span "ivm.rederive" (fun () ->
                scratch rs s
                  ~gh_start:
                    (Instance.to_list
                       (Instance.restrict_rels (Lazy.force given')
                          s.heads_list)))
          in
          commit_pres derived'
        end
        else begin
          commit_added rs gha_new;
          commit_added rs (sem_add rs s)
        end
      end)
    h.strata;
  if destructive then begin
    h.given <- Lazy.force given';
    h.model <- rs.m_new;
    h.size <- rs.size;
    h.db <- Joindb.update h.db ~add:rs.adds ~remove:rs.rem_inst;
    Array.iteri
      (fun si s ->
        (match rs.new_derived.(si) with
        | Some d -> s.derived <- d
        | None -> ());
        match rs.counts_patch.(si) with
        | Keep -> ()
        | Invalidate -> s.counts <- None
        | Table c -> s.counts <- Some c)
      h.strata
  end;
  rs.m_new

(* ------------------------------------------------------------------ *)
(* Public entry points *)

let apply_facts h facts =
  let adds = List.filter (fun f -> not (Instance.mem f h.model)) facts in
  match adds with
  | [] ->
    Observe.Metrics.incr m_applies;
    h.model
  | _ ->
    let profiling = Observe.Profile.is_enabled () in
    let run () =
      run_update h ~destructive:false ~add_list:adds ~remove:Instance.empty
    in
    if profiling then Observe.Profile.span "ivm.apply" run else run ()

let apply h ~delta = apply_facts h (Instance.to_list delta)

let update h ~add ~remove =
  let profiling = Observe.Profile.is_enabled () in
  let run () =
    run_update h ~destructive:true ~add_list:(Instance.to_list add) ~remove
  in
  if profiling then Observe.Profile.span "ivm.apply" run else run ()

let insert h delta = update h ~add:delta ~remove:Instance.empty
let retract h delta = update h ~add:Instance.empty ~remove:delta
