(** Bulk hash-join evaluation backend.

    An independent implementation of rule evaluation: instead of the
    tuple-at-a-time backtracking search of {!Eval}, each rule body is
    evaluated set-at-a-time — the bindings relation is joined with each
    positive atom through a hash index on the shared variables. Same
    semantics (tested property: agrees with {!Eval} on random programs);
    different complexity profile (see the E20 bench). *)

open Relational

val derive :
  ?neg:(Instance.t -> Fact.t -> bool) ->
  Ast.program -> Instance.t -> Instance.t
(** Facts derived by one application of all rules (compare
    {!Eval.derive}). *)

val seminaive :
  ?neg:(Instance.t -> Fact.t -> bool) ->
  ?max_facts:int ->
  Ast.program -> Instance.t -> Instance.t
(** Least fixpoint by semi-naive iteration with hash-join rule bodies.
    @raise Eval.Diverged past [max_facts]. *)

val stratified :
  ?max_facts:int -> Ast.program -> Instance.t -> (Instance.t, string) result
