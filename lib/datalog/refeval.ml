open Relational

(* The seed tree's nested-loop engine, preserved verbatim as a reference
   semantics. The production engines ({!Eval}, {!Hashjoin}) are tested
   against it on the query zoo and on random programs; the E24 bench
   measures the indexed engine's speedup relative to it. It keeps the
   seed's per-round predicate index and per-candidate [match_atom] rescan
   — the very pattern the indexed engine replaces — and records no
   metrics, so reference runs leave the [eval.*] counters untouched. *)

module Env = Joindb.Env
module Smap = Map.Make (String)

let index i =
  Instance.fold
    (fun f m ->
      Smap.update (Fact.rel f)
        (function None -> Some [ f ] | Some l -> Some (f :: l))
        m)
    i Smap.empty

let lookup idx pred = match Smap.find_opt pred idx with Some l -> l | None -> []

let match_term env term value =
  match (term : Ast.term) with
  | Const c -> if Value.equal c value then Some env else None
  | Var v -> (
    match Env.find_opt v env with
    | Some w -> if Value.equal w value then Some env else None
    | None -> Some (Env.add v value env))

let match_atom env (a : Ast.atom) (f : Fact.t) =
  if Fact.rel f <> a.pred || Fact.arity f <> List.length a.terms then None
  else
    let rec go env i = function
      | [] -> Some env
      | t :: rest -> (
        match match_term env t (Fact.arg f i) with
        | None -> None
        | Some env -> go env (i + 1) rest)
    in
    go env 0 a.terms

let rec satisfy_pos db_idx delta_idx which i atoms env k =
  match atoms with
  | [] -> k env
  | (a : Ast.atom) :: rest ->
    let source = if Some i = which then delta_idx else db_idx in
    List.iter
      (fun f ->
        match match_atom env a f with
        | None -> ()
        | Some env' -> satisfy_pos db_idx delta_idx which (i + 1) rest env' k)
      (lookup source a.pred)

let derive_rule ~neg ~current ~db_idx ~delta_idx ~which (r : Ast.rule) acc =
  let out = ref acc in
  satisfy_pos db_idx delta_idx which 0 r.pos Env.empty (fun env ->
      if Joindb.checks_pass current neg env r then
        out := Instance.add (Joindb.ground_atom env r.head) !out);
  !out

let derive ?(neg = Joindb.default_neg) p j =
  let idx = index j in
  List.fold_left
    (fun acc r ->
      derive_rule ~neg ~current:j ~db_idx:idx ~delta_idx:Smap.empty ~which:None
        r acc)
    Instance.empty p

let guard max_facts j =
  match max_facts with
  | Some budget when Instance.cardinal j > budget -> raise Eval.Diverged
  | _ -> ()

let naive ?neg ?max_facts p i =
  let rec go j =
    guard max_facts j;
    let j' = Instance.union j (derive ?neg p j) in
    if Instance.equal j' j then j else go j'
  in
  go i

let seminaive ?(neg = Joindb.default_neg) ?max_facts p i =
  let step db delta =
    let db_idx = index db and delta_idx = index delta in
    List.fold_left
      (fun acc (r : Ast.rule) ->
        let n = List.length r.pos in
        let rec over_idx which acc =
          if which = n then acc
          else
            over_idx (which + 1)
              (derive_rule ~neg ~current:db ~db_idx ~delta_idx
                 ~which:(Some which) r acc)
        in
        over_idx 0 acc)
      Instance.empty p
  in
  let first = derive ~neg p i in
  let rec go db delta =
    guard max_facts db;
    if Instance.is_empty delta then db
    else
      let db' = Instance.union db delta in
      let fresh = Instance.diff (step db' delta) db' in
      go db' fresh
  in
  go i (Instance.diff first i)

let stratified ?max_facts p i =
  match Stratify.stratify p with
  | Error e -> Error e
  | Ok { strata; _ } ->
    Ok
      (List.fold_left
         (fun acc stratum -> seminaive ?max_facts stratum acc)
         i strata)
