(** Abstract syntax of Datalog¬ (Section 2 of the paper) and of ILOG¬
    invention heads (Section 5.2).

    A rule is the paper's quadruple [(head, pos, neg, ineq)]. Rules must be
    range-restricted: every variable of the rule occurs in a positive body
    atom. We additionally allow constants in atoms and in inequalities,
    which the paper's examples use implicitly. *)

open Relational

(** Source locations, threaded from the lexer through the parser so that
    the static-analysis layer can report span-accurate diagnostics.
    Lines and columns are 1-based; a span covers [[start, stop)] with
    [stop] one column past the last character. *)
module Span : sig
  type pos = { line : int; col : int }

  type t = { start : pos; stop : pos }

  val dummy : t
  (** The zero span, used for synthesized syntax. *)

  val is_dummy : t -> bool
  val make : start:pos -> stop:pos -> t

  val union : t -> t -> t
  (** Smallest span covering both; dummies are absorbing-neutral. *)

  val pp : Format.formatter -> t -> unit
  (** ["3:5-12"] within one line, ["3:5-4:2"] across lines. *)

  val to_string : t -> string
end

type 'a located = { value : 'a; span : Span.t }

type var = string

type term =
  | Var of var
  | Const of Value.t

type atom = {
  pred : string;
  invents : bool;
      (** [true] for an ILOG invention atom [R(⋆, u1, ..., uk)]; the [*]
          slot is implicit and not part of [terms]. Only legal in heads. *)
  terms : term list;
}

type rule = {
  head : atom;
  pos : atom list;
  neg : atom list;
  ineq : (term * term) list;
}

type program = rule list

(** Located counterparts, produced by {!Parser.parse_program_located}.
    Rules and literals carry source spans; [lbody] preserves the source
    order of the body literals. *)
type located_literal =
  | Lpos of atom located
  | Lneg of atom located
  | Lineq of (term * term) located

type located_rule = {
  lhead : atom located;
  lbody : located_literal list;
  lspan : Span.t;  (** whole rule, head through final ['.'] *)
}

type located_program = located_rule list

val rule_of_located : located_rule -> rule
(** Forget the spans; positive, negative, and inequality literals keep
    their relative source order within each list. *)

val strip : located_program -> program

val pos_span : located_rule -> int -> Span.t
val neg_span : located_rule -> int -> Span.t
val ineq_span : located_rule -> int -> Span.t
(** Span of the [i]-th positive / negative / inequality literal (0-based,
    matching the lists of {!rule_of_located}); {!Span.dummy} out of
    range. *)

val atom : string -> term list -> atom
val invention_atom : string -> term list -> atom
val atom_arity : atom -> int
(** Arity counting the invention slot. *)

val rule :
  ?neg:atom list -> ?ineq:(term * term) list -> atom -> atom list -> rule
(** [rule head pos] builds and validates a rule. @raise Invalid_argument if
    the rule is not well-formed (see {!check_rule}). *)

val check_rule : rule -> (unit, string) result
(** Well-formedness: non-empty [pos]; all variables (head, neg, ineq)
    occur in [pos]; no invention atoms in bodies; negated atoms carry no
    invention flag. *)

val vars_of_term : term -> var list
val vars_of_atom : atom -> var list
val vars_of_rule : rule -> var list
(** In first-occurrence order, without duplicates. *)

val rule_is_positive : rule -> bool
(** No negated atoms (inequalities allowed). *)

val rule_has_ineq : rule -> bool
val rule_invents : rule -> bool

val schema_of : program -> Schema.t
(** [sch(P)]: minimal schema the program is over (invention slots counted).
    @raise Invalid_argument if a predicate is used with two arities. *)

val idb : program -> Schema.t
(** Predicates occurring in rule heads. *)

val edb : program -> Schema.t
(** [sch(P) \ idb(P)]. *)

val preds_of_rule : rule -> string list
val equal_term : term -> term -> bool
val equal_atom : atom -> atom -> bool
val equal_rule : rule -> rule -> bool
val equal_program : program -> program -> bool
(** Set-equality of rules. *)

val pp_term : Format.formatter -> term -> unit
val pp_atom : Format.formatter -> atom -> unit
val pp_rule : Format.formatter -> rule -> unit
val pp_program : Format.formatter -> program -> unit
val to_string : program -> string
