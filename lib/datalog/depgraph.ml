open Relational

let quote s = "\"" ^ s ^ "\""

let to_dot p =
  let idb = Ast.idb p and edb = Ast.edb p in
  let number =
    match Stratify.stratify p with
    | Ok { number; _ } -> number
    | Error _ -> fun _ -> None
  in
  let node name =
    if Schema.mem edb name then
      Printf.sprintf "  %s [shape=box];" (quote name)
    else
      let label =
        match number name with
        | Some s -> Printf.sprintf "%s\\nstratum %d" name s
        | None -> name
      in
      Printf.sprintf "  %s [label=%s];" (quote name) (quote label)
  in
  let nodes =
    List.map node (Schema.names edb @ Schema.names idb)
  in
  let edge_lines =
    List.concat_map
      (fun (r : Ast.rule) ->
        let t = r.head.pred in
        List.map
          (fun (a : Ast.atom) ->
            Printf.sprintf "  %s -> %s;" (quote a.pred) (quote t))
          r.pos
        @ List.map
            (fun (a : Ast.atom) ->
              Printf.sprintf "  %s -> %s [style=dashed, color=red];"
                (quote a.pred) (quote t))
            r.neg)
      p
    |> List.sort_uniq String.compare
  in
  String.concat "\n" (("digraph dependencies {" :: nodes) @ edge_lines @ [ "}" ])
