(** Reference nested-loop engine (the seed implementation, frozen).

    Tuple-at-a-time backtracking over per-predicate fact lists, rescanning
    every fact of a predicate at every atom — the pre-index engine kept as
    an executable specification. The equivalence test wall checks {!Eval}
    and {!Hashjoin} against it on the query zoo and on random programs,
    and the E24 bench reports the indexed engine's speedup over it.

    Records no metrics: reference runs leave [eval.*] counters
    untouched. *)

open Relational

val derive :
  ?neg:(Instance.t -> Fact.t -> bool) ->
  Ast.program -> Instance.t -> Instance.t

val naive :
  ?neg:(Instance.t -> Fact.t -> bool) ->
  ?max_facts:int ->
  Ast.program -> Instance.t -> Instance.t
(** @raise Eval.Diverged past [max_facts]. *)

val seminaive :
  ?neg:(Instance.t -> Fact.t -> bool) ->
  ?max_facts:int ->
  Ast.program -> Instance.t -> Instance.t
(** @raise Eval.Diverged past [max_facts]. *)

val stratified :
  ?max_facts:int -> Ast.program -> Instance.t -> (Instance.t, string) result
