(** Graphviz export of a program's predicate dependency graph: solid
    edges for positive dependencies, dashed (red) edges for negative
    ones, boxes for edb relations, and stratum numbers in the idb labels
    when the program stratifies. The cycles through dashed edges are
    exactly what stratifiability forbids. *)

val to_dot : Ast.program -> string
