open Relational

type model = { true_facts : Instance.t; undefined : Instance.t }

let gamma p input s =
  let idb = Ast.idb p in
  let neg _current f =
    if Schema.mem idb (Fact.rel f) then not (Instance.mem f s)
    else not (Instance.mem f input)
  in
  Eval.seminaive ~neg p input

(* Alternating fixpoint: T0 = ∅, T_{k+1} = Γ(T_k). Even iterates climb to
   lfp(Γ²) (true facts), odd iterates descend to gfp(Γ²) (not-false
   facts). Stop when two consecutive even/odd pairs repeat. *)
let eval p input =
  let rec go under over =
    let under' = gamma p input over in
    let over' = gamma p input under' in
    if Instance.equal under under' && Instance.equal over over' then
      (under, over)
    else go under' over'
  in
  let t1 = gamma p input Instance.empty in
  let under, over = go Instance.empty t1 in
  { true_facts = under; undefined = Instance.diff over under }

let total m = Instance.is_empty m.undefined

let prev_prefix = "Prev_"

let doubled_step_program p =
  let idb = Ast.idb p in
  List.map
    (fun (r : Ast.rule) ->
      {
        r with
        Ast.neg =
          List.map
            (fun (a : Ast.atom) ->
              if Schema.mem idb a.pred then
                { a with Ast.pred = prev_prefix ^ a.pred }
              else a)
            r.neg;
      })
    p

let eval_via_doubling p input =
  let idb = Ast.idb p in
  let step_program = doubled_step_program p in
  let idb_facts i = Instance.restrict i idb in
  let as_prev i =
    Instance.fold
      (fun f acc ->
        Instance.add (Fact.make (prev_prefix ^ Fact.rel f) (Fact.args f)) acc)
      (idb_facts i) Instance.empty
  in
  let step prev =
    let full =
      Eval.seminaive step_program (Instance.union input (as_prev prev))
    in
    (* Keep only genuine idb facts (drop the Prev_ helpers). *)
    Instance.union input (idb_facts full)
  in
  let rec fix under over =
    let under' = step over in
    let over' = step under' in
    if Instance.equal under under' && Instance.equal over over' then
      (under, over)
    else fix under' over'
  in
  let under, over = fix Instance.empty (step Instance.empty) in
  { true_facts = under; undefined = Instance.diff over under }

let is_stratified_compatible p input =
  match Eval.stratified p input with
  | Error _ -> false
  | Ok strat ->
    let m = eval p input in
    total m && Instance.equal m.true_facts strat
