open Relational

type stratification = {
  strata : Ast.program list;
  number : string -> int option;
}

(* Ullman's iterative algorithm: start every idb predicate at stratum 1 and
   propagate the constraints ρ(R) ≤ ρ(T) (positive) and ρ(R) < ρ(T)
   (negative) until fixpoint. A stratum number exceeding |idb| certifies a
   cycle through negation. *)
let stratify p =
  let idb = Ast.idb p in
  let idb_names = Schema.names idb in
  let n = List.length idb_names in
  let num = Hashtbl.create 16 in
  List.iter (fun name -> Hashtbl.replace num name 1) idb_names;
  let get name = try Hashtbl.find num name with Not_found -> 0 in
  let changed = ref true in
  let overflow = ref None in
  while !changed && !overflow = None do
    changed := false;
    List.iter
      (fun (r : Ast.rule) ->
        let t = r.head.pred in
        let bump lo =
          if get t < lo then begin
            Hashtbl.replace num t lo;
            changed := true;
            if lo > n then overflow := Some t
          end
        in
        List.iter
          (fun (a : Ast.atom) -> if Schema.mem idb a.pred then bump (get a.pred))
          r.pos;
        List.iter
          (fun (a : Ast.atom) ->
            if Schema.mem idb a.pred then bump (get a.pred + 1))
          r.neg)
      p
  done;
  match !overflow with
  | Some t ->
    Error
      (Printf.sprintf
         "not syntactically stratifiable: predicate %s lies on a cycle through negation"
         t)
  | None ->
    (* Compact stratum numbers to 1..k preserving order, then group
       rules. *)
    let used =
      Hashtbl.fold (fun _ s acc -> s :: acc) num []
      |> List.sort_uniq Int.compare
    in
    let rank = Hashtbl.create 8 in
    List.iteri (fun i s -> Hashtbl.replace rank s (i + 1)) used;
    let number name =
      match Hashtbl.find_opt num name with
      | None -> None
      | Some s -> Some (Hashtbl.find rank s)
    in
    let k = List.length used in
    let strata =
      List.init k (fun i ->
          List.filter (fun (r : Ast.rule) -> number r.head.pred = Some (i + 1)) p)
    in
    Ok { strata; number }

let is_stratifiable p = Result.is_ok (stratify p)

(* Kosaraju-style SCC condensation of the idb dependency graph. The edge
   R -> T means a rule for T uses R; topological order of the condensation
   then lists dependencies before dependents. *)
let finest p =
  let idb = Ast.idb p in
  let names = Schema.names idb in
  let edges_pos = Hashtbl.create 16 and edges_neg = Hashtbl.create 16 in
  List.iter
    (fun (r : Ast.rule) ->
      let t = r.head.pred in
      List.iter
        (fun (a : Ast.atom) ->
          if Schema.mem idb a.pred then Hashtbl.add edges_pos a.pred t)
        r.pos;
      List.iter
        (fun (a : Ast.atom) ->
          if Schema.mem idb a.pred then Hashtbl.add edges_neg a.pred t)
        r.neg)
    p;
  let succs n =
    Hashtbl.find_all edges_pos n @ Hashtbl.find_all edges_neg n
    |> List.sort_uniq String.compare
  in
  let preds_of n =
    List.filter (fun m -> List.mem n (succs m)) names
  in
  (* First pass: finish order on the forward graph. *)
  let visited = Hashtbl.create 16 in
  let order = ref [] in
  let rec dfs1 n =
    if not (Hashtbl.mem visited n) then begin
      Hashtbl.replace visited n ();
      List.iter dfs1 (succs n);
      order := n :: !order
    end
  in
  List.iter dfs1 names;
  (* Second pass: components on the reverse graph, in finish order. *)
  let comp_of = Hashtbl.create 16 in
  let comps = ref [] in
  let rec dfs2 cid n =
    if not (Hashtbl.mem comp_of n) then begin
      Hashtbl.replace comp_of n cid;
      (match !comps with
      | (id, members) :: rest when id = cid ->
        comps := (id, n :: members) :: rest
      | _ -> comps := (cid, [ n ]) :: !comps);
      List.iter (dfs2 cid) (preds_of n)
    end
  in
  List.iteri (fun i n -> dfs2 i n) !order;
  (* !comps is in reverse discovery order; discovery order of component
     roots along !order is a reverse topological... For Kosaraju on the
     reverse graph in forward finish order, components are discovered in
     topological order of the condensation. *)
  let components = List.rev_map snd !comps in
  (* Validate: no negative edge within a component. *)
  let neg_inside =
    List.exists
      (fun members ->
        List.exists
          (fun m ->
            List.exists
              (fun t -> List.mem t members)
              (Hashtbl.find_all edges_neg m))
          members)
      components
  in
  if neg_inside then
    Error "not syntactically stratifiable: negative edge within a recursive component"
  else begin
    let number_tbl = Hashtbl.create 16 in
    List.iteri
      (fun i members ->
        List.iter (fun n -> Hashtbl.replace number_tbl n (i + 1)) members)
      components;
    let number name = Hashtbl.find_opt number_tbl name in
    let strata =
      List.mapi
        (fun i _ ->
          List.filter (fun (r : Ast.rule) -> number r.head.pred = Some (i + 1)) p)
        components
      |> List.filter (fun stratum -> stratum <> [])
    in
    (* Renumber after dropping empty strata (components with no rules
       cannot occur — every idb pred heads a rule — but keep it safe). *)
    let number name =
      match number name with
      | None -> None
      | Some _ ->
        let rec find i = function
          | [] -> None
          | stratum :: rest ->
            if
              List.exists (fun (r : Ast.rule) -> r.head.pred = name) stratum
            then Some i
            else find (i + 1) rest
        in
        find 1 strata
    in
    Ok { strata; number }
  end

let depends_on p name =
  List.concat_map
    (fun (r : Ast.rule) ->
      if r.head.pred = name then
        List.map (fun (a : Ast.atom) -> a.pred) (r.pos @ r.neg)
      else [])
    p
  |> List.sort_uniq String.compare

let close_over step seeds =
  let seen = Hashtbl.create 16 in
  let rec go = function
    | [] -> ()
    | x :: rest ->
      if Hashtbl.mem seen x then go rest
      else begin
        Hashtbl.replace seen x ();
        go (step x @ rest)
      end
  in
  go seeds;
  Hashtbl.fold (fun x () acc -> x :: acc) seen []
  |> List.sort String.compare

let depends_on_trans p name =
  let idb = Ast.idb p in
  close_over
    (fun x -> List.filter (Schema.mem idb) (depends_on p x))
    [ name ]

let dependents_of_trans p seeds =
  let idb = Ast.idb p in
  let direct_dependents x =
    List.concat_map
      (fun (r : Ast.rule) ->
        let body = List.map (fun (a : Ast.atom) -> a.pred) (r.pos @ r.neg) in
        if List.mem x body then [ r.head.pred ] else [])
      p
    |> List.filter (Schema.mem idb)
  in
  close_over direct_dependents (List.filter (Schema.mem idb) seeds)
