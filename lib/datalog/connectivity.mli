(** Connected and semi-connected Datalog¬ (Section 5.1 of the paper).

    [graph+(ϕ)] has the variables of the positive body atoms as nodes and
    an edge between two variables that co-occur in some positive body atom.
    A rule is connected when that graph is connected; a stratifiable
    program is connected (con-Datalog¬) when all rules are connected, and
    semi-connected (semicon-Datalog¬) when some stratification makes all
    strata but the last connected. *)

val rule_graph : Ast.rule -> (Ast.var * Ast.var list) list
(** Adjacency view of [graph+(ϕ)] (each variable with its neighbours). *)

val rule_is_connected : Ast.rule -> bool
(** Rules whose positive body has at most one variable are connected. *)

val is_connected_program : Ast.program -> bool
(** All rules connected and the program stratifiable (con-Datalog¬). *)

val is_semi_connected : Ast.program -> bool
(** Membership in semicon-Datalog¬. Decided exactly: the unconnected rules
    force their head predicates — and everything depending on them — into
    the final stratum; the program is semi-connected iff that forced set
    can form a single semi-positive stratum (no negation within the set)
    and the program is stratifiable. *)

val forced_final_stratum : Ast.program -> string list
(** The idb predicates forced into the final stratum by unconnected rules
    (transitively closed under "depends on"). Empty when every rule is
    connected. *)

val explain : Ast.program -> string
(** Human-readable classification used by the CLI example. *)
