open Relational

type severity =
  | Edb_negation
  | Stratified_negation
  | Blocking_negation

type point = {
  rule : Ast.rule;
  literal : Ast.atom;
  severity : severity;
}

let severity_to_string = function
  | Edb_negation -> "edb-negation"
  | Stratified_negation -> "stratified-negation"
  | Blocking_negation -> "blocking-negation"

let rank = function
  | Edb_negation -> 1
  | Stratified_negation -> 2
  | Blocking_negation -> 3

let analyze p =
  let edb = Ast.edb p in
  let semicon = Connectivity.is_semi_connected p in
  List.concat_map
    (fun (r : Ast.rule) ->
      List.map
        (fun (a : Ast.atom) ->
          let severity =
            if Schema.mem edb a.pred then Edb_negation
            else if semicon then Stratified_negation
            else Blocking_negation
          in
          { rule = r; literal = a; severity })
        r.neg)
    p

let max_severity points =
  List.fold_left
    (fun acc pt ->
      match acc with
      | None -> Some pt.severity
      | Some s -> if rank pt.severity > rank s then Some pt.severity else Some s)
    None points

let coordination_level p =
  match max_severity (analyze p) with
  | None -> "F0 (none: positive program, monotone)"
  | Some Edb_negation -> "F1 (absence information suffices)"
  | Some Stratified_negation -> "F2 (component completeness suffices)"
  | Some Blocking_negation -> "global coordination required"

let pp_point ppf pt =
  Format.fprintf ppf "%s in [%a]: %a"
    (severity_to_string pt.severity)
    Ast.pp_atom pt.literal Ast.pp_rule pt.rule
