open Relational

(* Source locations. Lines and columns are 1-based; a span covers
   [start, stop) with [stop] pointing one column past the last
   character. *)
module Span = struct
  type pos = { line : int; col : int }

  type t = { start : pos; stop : pos }

  let dummy = { start = { line = 0; col = 0 }; stop = { line = 0; col = 0 } }
  let is_dummy s = s.start.line = 0
  let make ~start ~stop = { start; stop }

  let union a b =
    if is_dummy a then b
    else if is_dummy b then a
    else
      let le p q = p.line < q.line || (p.line = q.line && p.col <= q.col) in
      {
        start = (if le a.start b.start then a.start else b.start);
        stop = (if le a.stop b.stop then b.stop else a.stop);
      }

  let pp ppf s =
    if is_dummy s then Format.pp_print_string ppf "<unknown>"
    else if s.start.line = s.stop.line then
      Format.fprintf ppf "%d:%d-%d" s.start.line s.start.col s.stop.col
    else
      Format.fprintf ppf "%d:%d-%d:%d" s.start.line s.start.col s.stop.line
        s.stop.col

  let to_string s = Format.asprintf "%a" pp s
end

type 'a located = { value : 'a; span : Span.t }

type var = string

type term =
  | Var of var
  | Const of Value.t

type atom = { pred : string; invents : bool; terms : term list }

type rule = {
  head : atom;
  pos : atom list;
  neg : atom list;
  ineq : (term * term) list;
}

type program = rule list

(* Located counterparts, produced by the parser for tooling (the lint
   engine and certificate renderers). [body] lists the literal spans in
   source order; the plain [rule] view drops all spans. *)
type located_literal =
  | Lpos of atom located
  | Lneg of atom located
  | Lineq of (term * term) located

type located_rule = {
  lhead : atom located;
  lbody : located_literal list;
  lspan : Span.t;  (** whole rule, head through final ['.'] *)
}

type located_program = located_rule list

let rule_of_located lr =
  let pos = List.filter_map (function Lpos a -> Some a.value | _ -> None) lr.lbody in
  let neg = List.filter_map (function Lneg a -> Some a.value | _ -> None) lr.lbody in
  let ineq =
    List.filter_map (function Lineq i -> Some i.value | _ -> None) lr.lbody
  in
  { head = lr.lhead.value; pos; neg; ineq }

let strip lp = List.map rule_of_located lp

(* Span of the [i]-th positive (resp. negative, inequality) literal of a
   located rule, counting in source order; {!Span.dummy} when out of
   range. The indices match the lists of {!rule_of_located}. *)
let nth_span filter lr i =
  let spans = List.filter_map filter lr.lbody in
  match List.nth_opt spans i with Some s -> s | None -> Span.dummy

let pos_span = nth_span (function Lpos a -> Some a.span | _ -> None)
let neg_span = nth_span (function Lneg a -> Some a.span | _ -> None)
let ineq_span = nth_span (function Lineq i -> Some i.span | _ -> None)

let atom pred terms = { pred; invents = false; terms }
let invention_atom pred terms = { pred; invents = true; terms }
let atom_arity a = List.length a.terms + if a.invents then 1 else 0

let vars_of_term = function Var v -> [ v ] | Const _ -> []

let dedup vars =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun v ->
      if Hashtbl.mem seen v then false
      else begin
        Hashtbl.add seen v ();
        true
      end)
    vars

let vars_of_atom a = dedup (List.concat_map vars_of_term a.terms)

let vars_of_rule r =
  dedup
    (vars_of_atom r.head
    @ List.concat_map vars_of_atom r.pos
    @ List.concat_map vars_of_atom r.neg
    @ List.concat_map
        (fun (a, b) -> vars_of_term a @ vars_of_term b)
        r.ineq)

let check_rule r =
  let pos_vars = List.concat_map vars_of_atom r.pos in
  let covered v = List.mem v pos_vars in
  if r.pos = [] then Error "rule has an empty positive body"
  else if List.exists (fun a -> a.invents) r.pos then
    Error "invention atom in positive body"
  else if List.exists (fun a -> a.invents) r.neg then
    Error "invention atom in negative body"
  else
    match List.find_opt (fun v -> not (covered v)) (vars_of_rule r) with
    | Some v -> Error (Printf.sprintf "variable %s not bound by a positive atom" v)
    | None -> Ok ()

let rule ?(neg = []) ?(ineq = []) head pos =
  let r = { head; pos; neg; ineq } in
  match check_rule r with
  | Ok () -> r
  | Error msg -> invalid_arg ("Ast.rule: " ^ msg)

let rule_is_positive r = r.neg = []
let rule_has_ineq r = r.ineq <> []
let rule_invents r = r.head.invents

let schema_of p =
  let add_atom sg a =
    let ar = atom_arity a in
    try Schema.add a.pred ar sg
    with Invalid_argument _ ->
      invalid_arg
        (Printf.sprintf "Ast.schema_of: predicate %s used with arities %d and %d"
           a.pred
           (Schema.arity_exn sg a.pred)
           ar)
  in
  List.fold_left
    (fun sg r -> List.fold_left add_atom sg ((r.head :: r.pos) @ r.neg))
    Schema.empty p

let idb p =
  let sg = schema_of p in
  let heads = List.map (fun r -> r.head.pred) p in
  Schema.restrict sg heads

let edb p = Schema.diff (schema_of p) (idb p)

let preds_of_rule r =
  List.map (fun a -> a.pred) ((r.head :: r.pos) @ r.neg)
  |> List.sort_uniq String.compare

let equal_term a b =
  match a, b with
  | Var x, Var y -> String.equal x y
  | Const x, Const y -> Value.equal x y
  | _ -> false

let equal_atom a b =
  String.equal a.pred b.pred
  && Bool.equal a.invents b.invents
  && List.equal equal_term a.terms b.terms

let equal_rule a b =
  equal_atom a.head b.head
  && List.equal equal_atom a.pos b.pos
  && List.equal equal_atom a.neg b.neg
  && List.equal
       (fun (x, y) (x', y') -> equal_term x x' && equal_term y y')
       a.ineq b.ineq

let equal_program a b =
  let mem r p = List.exists (equal_rule r) p in
  List.for_all (fun r -> mem r b) a && List.for_all (fun r -> mem r a) b

let pp_term ppf = function
  | Var v -> Format.pp_print_string ppf v
  | Const (Value.Sym s) -> Format.fprintf ppf "%S" s
  | Const c -> Value.pp ppf c

let pp_atom ppf a =
  let slots =
    (if a.invents then [ fun ppf () -> Format.pp_print_string ppf "*" ] else [])
    @ List.map (fun t ppf () -> pp_term ppf t) a.terms
  in
  Format.fprintf ppf "%s(%a)" a.pred
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       (fun ppf f -> f ppf ()))
    slots

let pp_rule ppf r =
  let body =
    List.map (fun a ppf () -> pp_atom ppf a) r.pos
    @ List.map (fun a ppf () -> Format.fprintf ppf "not %a" pp_atom a) r.neg
    @ List.map
        (fun (x, y) ppf () -> Format.fprintf ppf "%a != %a" pp_term x pp_term y)
        r.ineq
  in
  Format.fprintf ppf "%a :- %a." pp_atom r.head
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       (fun ppf f -> f ppf ()))
    body

let pp_program ppf p =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf "@.")
    pp_rule ppf p

let to_string p = Format.asprintf "%a" pp_program p
