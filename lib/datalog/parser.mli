(** Parser for the conventional Datalog¬ rule syntax.

    Grammar (comments start with [%] and run to end of line):
    {[
      program  ::= rule*
      rule     ::= atom ":-" literal ("," literal)* "."
      literal  ::= "not" atom | atom | term ("!=" | "<>") term
      atom     ::= ident "(" slot ("," slot)* ")"
      slot     ::= "*" | term            (* "*" only in heads: invention *)
      term     ::= ident                 (* a variable *)
                 | integer               (* Const (Int _) *)
                 | '"' chars '"'         (* Const (Sym _) *)
    ]}

    Any identifier directly applied to parentheses is a predicate name; bare
    identifiers in term position are variables. String and integer literals
    are constants. *)

exception Syntax_error of { line : int; col : int; message : string }
(** Lexical and grammatical errors carry the 1-based line and column of
    the offending token, and the message names the token found
    ([line = 0] for whole-program errors such as arity conflicts). *)

val parse_program : string -> Ast.program
(** @raise Syntax_error on lexical or grammatical errors, on rules that
    fail {!Ast.check_rule}, and on arity conflicts. *)

val parse_program_located : string -> Ast.located_program
(** Like {!parse_program} but keeps source spans and skips the
    well-formedness checks ({!Ast.check_rule}, arity consistency) so
    that ill-formed programs can still be linted with precise
    locations. Only lexical/grammatical errors raise. *)

val parse_rule : string -> Ast.rule
(** Parses exactly one rule. *)
