(** Parser for the conventional Datalog¬ rule syntax.

    Grammar (comments start with [%] and run to end of line):
    {[
      program  ::= rule*
      rule     ::= atom ":-" literal ("," literal)* "."
      literal  ::= "not" atom | atom | term ("!=" | "<>") term
      atom     ::= ident "(" slot ("," slot)* ")"
      slot     ::= "*" | term            (* "*" only in heads: invention *)
      term     ::= ident                 (* a variable *)
                 | integer               (* Const (Int _) *)
                 | '"' chars '"'         (* Const (Sym _) *)
    ]}

    Any identifier directly applied to parentheses is a predicate name; bare
    identifiers in term position are variables. String and integer literals
    are constants. *)

exception Syntax_error of { line : int; message : string }

val parse_program : string -> Ast.program
(** @raise Syntax_error on lexical or grammatical errors, and on rules that
    fail {!Ast.check_rule}. *)

val parse_rule : string -> Ast.rule
(** Parses exactly one rule. *)
