(** Datalog¬ engines: abstract syntax, parsing, stratification, naive and
    semi-naive fixpoints, well-founded semantics, (semi-)connectivity
    analysis, fragment classification, and ILOG¬ value invention. *)

module Ast = Ast
module Parser = Parser
module Stratify = Stratify
module Joindb = Joindb
module Eval = Eval
module Refeval = Refeval
module Wellfounded = Wellfounded
module Connectivity = Connectivity
module Fragment = Fragment
module Points_of_order = Points_of_order
module Depgraph = Depgraph
module Hashjoin = Hashjoin
module Ivm = Ivm
module Goal = Goal
module Ilog = Ilog
module Adom = Adom
module Program = Program
