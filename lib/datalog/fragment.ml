open Relational

type t =
  | Positive
  | Positive_ineq
  | Semi_positive
  | Connected_stratified
  | Semi_connected_stratified
  | Stratified
  | Unstratifiable

let is_positive p =
  List.for_all
    (fun r -> Ast.rule_is_positive r && not (Ast.rule_has_ineq r))
    p

let is_positive_with_ineq p = List.for_all Ast.rule_is_positive p

let is_semi_positive p =
  let edb = Ast.edb p in
  List.for_all
    (fun (r : Ast.rule) ->
      List.for_all (fun (a : Ast.atom) -> Schema.mem edb a.pred) r.neg)
    p

let classify p =
  if is_positive p then Positive
  else if is_positive_with_ineq p then Positive_ineq
  else if is_semi_positive p then Semi_positive
  else if not (Stratify.is_stratifiable p) then Unstratifiable
  else if Connectivity.is_connected_program p then Connected_stratified
  else if Connectivity.is_semi_connected p then Semi_connected_stratified
  else Stratified

type info = { name : string; upper_bound : string }

(* The one table every rendering derives from. The exhaustive match makes
   the compiler reject a new constructor until its row is added here;
   [all] is pinned to the same width by the test suite so the two cannot
   silently desync. *)
let info = function
  | Positive -> { name = "Datalog"; upper_bound = "M" }
  | Positive_ineq -> { name = "Datalog(!=)"; upper_bound = "M" }
  | Semi_positive -> { name = "SP-Datalog"; upper_bound = "Mdistinct" }
  | Connected_stratified ->
    { name = "con-Datalog^neg"; upper_bound = "Mdisjoint" }
  | Semi_connected_stratified ->
    { name = "semicon-Datalog^neg"; upper_bound = "Mdisjoint" }
  | Stratified -> { name = "Datalog^neg (stratified)"; upper_bound = "C" }
  | Unstratifiable -> { name = "unstratifiable"; upper_bound = "C" }

let all =
  [
    Positive;
    Positive_ineq;
    Semi_positive;
    Connected_stratified;
    Semi_connected_stratified;
    Stratified;
    Unstratifiable;
  ]

let to_string f = (info f).name
let monotonicity_upper_bound f = (info f).upper_bound

let of_string s =
  List.find_opt (fun f -> (info f).name = s) all
