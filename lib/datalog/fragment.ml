open Relational

type t =
  | Positive
  | Positive_ineq
  | Semi_positive
  | Connected_stratified
  | Semi_connected_stratified
  | Stratified
  | Unstratifiable

let is_positive p =
  List.for_all
    (fun r -> Ast.rule_is_positive r && not (Ast.rule_has_ineq r))
    p

let is_positive_with_ineq p = List.for_all Ast.rule_is_positive p

let is_semi_positive p =
  let edb = Ast.edb p in
  List.for_all
    (fun (r : Ast.rule) ->
      List.for_all (fun (a : Ast.atom) -> Schema.mem edb a.pred) r.neg)
    p

let classify p =
  if is_positive p then Positive
  else if is_positive_with_ineq p then Positive_ineq
  else if is_semi_positive p then Semi_positive
  else if not (Stratify.is_stratifiable p) then Unstratifiable
  else if Connectivity.is_connected_program p then Connected_stratified
  else if Connectivity.is_semi_connected p then Semi_connected_stratified
  else Stratified

let to_string = function
  | Positive -> "Datalog"
  | Positive_ineq -> "Datalog(!=)"
  | Semi_positive -> "SP-Datalog"
  | Connected_stratified -> "con-Datalog^neg"
  | Semi_connected_stratified -> "semicon-Datalog^neg"
  | Stratified -> "Datalog^neg (stratified)"
  | Unstratifiable -> "unstratifiable"

let monotonicity_upper_bound = function
  | Positive | Positive_ineq -> "M"
  | Semi_positive -> "Mdistinct"
  | Connected_stratified | Semi_connected_stratified -> "Mdisjoint"
  | Stratified | Unstratifiable -> "C"
