open Relational
module Span = Ast.Span

exception Syntax_error of { line : int; col : int; message : string }

type token =
  | Tident of string
  | Tint of int
  | Tstring of string
  | Tstar
  | Tlparen
  | Trparen
  | Tcomma
  | Tturnstile
  | Tdot
  | Tneq
  | Tnot

let describe_token = function
  | Tident s -> Printf.sprintf "identifier '%s'" s
  | Tint k -> Printf.sprintf "integer %d" k
  | Tstring s -> Printf.sprintf "string %S" s
  | Tstar -> "'*'"
  | Tlparen -> "'('"
  | Trparen -> "')'"
  | Tcomma -> "','"
  | Tturnstile -> "':-'"
  | Tdot -> "'.'"
  | Tneq -> "'!='"
  | Tnot -> "'not'"

let fail (span : Span.t) message =
  raise
    (Syntax_error { line = span.start.line; col = span.start.col; message })

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '\''

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

(* Tokens never span newlines (strings may not contain them), so the
   current line/beginning-of-line indices suffice to position both span
   ends. *)
let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let line = ref 1 in
  let bol = ref 0 in
  let i = ref 0 in
  let pos_at idx : Span.pos = { line = !line; col = idx - !bol + 1 } in
  let fail_at idx message = fail (Span.make ~start:(pos_at idx) ~stop:(pos_at idx)) message in
  while !i < n do
    let c = src.[!i] in
    let start = !i in
    let push t =
      tokens := (t, Span.make ~start:(pos_at start) ~stop:(pos_at !i)) :: !tokens
    in
    if c = '\n' then begin
      incr i;
      incr line;
      bol := !i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '%' then
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    else if c = '(' then (incr i; push Tlparen)
    else if c = ')' then (incr i; push Trparen)
    else if c = ',' then (incr i; push Tcomma)
    else if c = '.' then (incr i; push Tdot)
    else if c = '*' then (incr i; push Tstar)
    else if c = ':' && !i + 1 < n && src.[!i + 1] = '-' then begin
      i := !i + 2;
      push Tturnstile
    end
    else if c = '!' && !i + 1 < n && src.[!i + 1] = '=' then begin
      i := !i + 2;
      push Tneq
    end
    else if c = '<' && !i + 1 < n && src.[!i + 1] = '>' then begin
      i := !i + 2;
      push Tneq
    end
    else if c = '"' then begin
      let j = ref (!i + 1) in
      let buf = Buffer.create 8 in
      while !j < n && src.[!j] <> '"' do
        if src.[!j] = '\n' then fail_at start "unterminated string literal";
        Buffer.add_char buf src.[!j];
        incr j
      done;
      if !j >= n then fail_at start "unterminated string literal";
      i := !j + 1;
      push (Tstring (Buffer.contents buf))
    end
    else if c = '-' || (c >= '0' && c <= '9') then begin
      let j = ref !i in
      if src.[!j] = '-' then incr j;
      let digits = !j in
      while !j < n && src.[!j] >= '0' && src.[!j] <= '9' do
        incr j
      done;
      if !j = digits then fail_at start "expected digits after '-'";
      let text = String.sub src !i (!j - !i) in
      i := !j;
      push (Tint (int_of_string text))
    end
    else if is_ident_start c then begin
      let j = ref !i in
      while !j < n && is_ident_char src.[!j] do
        incr j
      done;
      let text = String.sub src !i (!j - !i) in
      i := !j;
      if text = "not" then push Tnot else push (Tident text)
    end
    else fail_at start (Printf.sprintf "unexpected character %C" c)
  done;
  List.rev !tokens

(* Recursive-descent over the token list. [last] remembers the most
   recently consumed token's span so end-of-input errors still point
   somewhere useful. *)
type state = {
  mutable toks : (token * Span.t) list;
  mutable last : Span.t;
}

let peek st = match st.toks with [] -> None | (t, _) :: _ -> Some t
let span_of st = match st.toks with [] -> st.last | (_, sp) :: _ -> sp

let describe_peek st =
  match peek st with Some t -> describe_token t | None -> "end of input"

let next st =
  match st.toks with
  | [] -> fail st.last "unexpected end of input"
  | (t, sp) :: rest ->
    st.toks <- rest;
    st.last <- sp;
    (t, sp)

let expect st want describe =
  let t, sp = next st in
  if t <> want then
    fail sp
      (Printf.sprintf "expected %s but found %s" describe (describe_token t));
  sp

let parse_term st : Ast.term Ast.located =
  match next st with
  | Tident v, sp -> { value = Ast.Var v; span = sp }
  | Tint k, sp -> { value = Ast.Const (Value.Int k); span = sp }
  | Tstring s, sp -> { value = Ast.Const (Value.Sym s); span = sp }
  | t, sp ->
    fail sp
      ("expected a term (variable, integer, or string) but found "
      ^ describe_token t)

(* '*' is accepted in the first argument position of any atom; the
   restriction to heads is a well-formedness condition (Ast.check_rule),
   reported by the checked parse and by the lint engine with a span. *)
let parse_atom st : Ast.atom Ast.located =
  let name, name_span =
    match next st with
    | Tident name, sp -> (name, sp)
    | t, sp -> fail sp ("expected a predicate name but found " ^ describe_token t)
  in
  ignore (expect st Tlparen "'(' after predicate name");
  let invents = ref false in
  let terms = ref [] in
  let parse_slot ~first =
    match peek st with
    | Some Tstar ->
      let _, sp = next st in
      if not first then
        fail sp "'*' (invention) is only allowed in the first argument position";
      invents := true
    | _ -> terms := (parse_term st).value :: !terms
  in
  parse_slot ~first:true;
  let rec loop () =
    match peek st with
    | Some Tcomma ->
      ignore (next st);
      parse_slot ~first:false;
      loop ()
    | Some Trparen -> snd (next st)
    | _ ->
      fail (span_of st)
        ("expected ',' or ')' in atom but found " ^ describe_peek st)
  in
  let rparen_span = loop () in
  if !terms = [] && not !invents then
    fail name_span ("predicate " ^ name ^ " applied to no arguments");
  let terms = List.rev !terms in
  let atom =
    if !invents then Ast.invention_atom name terms else Ast.atom name terms
  in
  { value = atom; span = Span.union name_span rparen_span }

let parse_literal st : Ast.located_literal =
  let ineq () =
    let a = parse_term st in
    ignore (expect st Tneq "'!=' in inequality");
    let b = parse_term st in
    Ast.Lineq { value = (a.value, b.value); span = Span.union a.span b.span }
  in
  match peek st with
  | Some Tnot ->
    let _, not_span = next st in
    let a = parse_atom st in
    Ast.Lneg { a with span = Span.union not_span a.span }
  | Some (Tident _) -> begin
    (* Could be an atom (ident followed by '(') or a variable in an
       inequality. Look ahead one token. *)
    match st.toks with
    | (Tident _, _) :: (Tlparen, _) :: _ -> Ast.Lpos (parse_atom st)
    | _ -> ineq ()
  end
  | Some (Tint _ | Tstring _) -> ineq ()
  | _ -> fail (span_of st) ("expected a body literal but found " ^ describe_peek st)

let parse_one_rule st : Ast.located_rule =
  let head = parse_atom st in
  ignore (expect st Tturnstile "':-' after rule head");
  let body = ref [] in
  let add () = body := parse_literal st :: !body in
  add ();
  let rec loop () =
    match peek st with
    | Some Tcomma ->
      ignore (next st);
      add ();
      loop ()
    | Some Tdot -> snd (next st)
    | _ ->
      fail (span_of st)
        ("expected ',' or '.' after a body literal but found " ^ describe_peek st)
  in
  let dot_span = loop () in
  { lhead = head; lbody = List.rev !body; lspan = Span.union head.span dot_span }

let parse_program_located src =
  let st = { toks = tokenize src; last = Span.dummy } in
  let rules = ref [] in
  while peek st <> None do
    rules := parse_one_rule st :: !rules
  done;
  List.rev !rules

let parse_program src =
  let lp = parse_program_located src in
  let p =
    List.map
      (fun (lr : Ast.located_rule) ->
        let r = Ast.rule_of_located lr in
        match Ast.check_rule r with
        | Ok () -> r
        | Error msg -> fail lr.lspan msg)
      lp
  in
  (* Trigger arity consistency checking. *)
  (try ignore (Ast.schema_of p)
   with Invalid_argument msg ->
     raise (Syntax_error { line = 0; col = 0; message = msg }));
  p

let parse_rule src =
  match parse_program src with
  | [ r ] -> r
  | l ->
    raise
      (Syntax_error
         {
           line = 1;
           col = 1;
           message =
             Printf.sprintf "expected exactly one rule, got %d" (List.length l);
         })
