open Relational

exception Syntax_error of { line : int; message : string }

type token =
  | Tident of string
  | Tint of int
  | Tstring of string
  | Tstar
  | Tlparen
  | Trparen
  | Tcomma
  | Tturnstile
  | Tdot
  | Tneq
  | Tnot

let fail line message = raise (Syntax_error { line; message })

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '\''

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let line = ref 1 in
  let push t = tokens := (t, !line) :: !tokens in
  let i = ref 0 in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin
      incr line;
      incr i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '%' then begin
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    end
    else if c = '(' then (push Tlparen; incr i)
    else if c = ')' then (push Trparen; incr i)
    else if c = ',' then (push Tcomma; incr i)
    else if c = '.' then (push Tdot; incr i)
    else if c = '*' then (push Tstar; incr i)
    else if c = ':' && !i + 1 < n && src.[!i + 1] = '-' then begin
      push Tturnstile;
      i := !i + 2
    end
    else if c = '!' && !i + 1 < n && src.[!i + 1] = '=' then begin
      push Tneq;
      i := !i + 2
    end
    else if c = '<' && !i + 1 < n && src.[!i + 1] = '>' then begin
      push Tneq;
      i := !i + 2
    end
    else if c = '"' then begin
      let j = ref (!i + 1) in
      let buf = Buffer.create 8 in
      while !j < n && src.[!j] <> '"' do
        if src.[!j] = '\n' then fail !line "unterminated string literal";
        Buffer.add_char buf src.[!j];
        incr j
      done;
      if !j >= n then fail !line "unterminated string literal";
      push (Tstring (Buffer.contents buf));
      i := !j + 1
    end
    else if c = '-' || (c >= '0' && c <= '9') then begin
      let j = ref !i in
      if src.[!j] = '-' then incr j;
      let start = !j in
      while !j < n && src.[!j] >= '0' && src.[!j] <= '9' do
        incr j
      done;
      if !j = start then fail !line "expected digits after '-'";
      let text = String.sub src !i (!j - !i) in
      push (Tint (int_of_string text));
      i := !j
    end
    else if is_ident_start c then begin
      let j = ref !i in
      while !j < n && is_ident_char src.[!j] do
        incr j
      done;
      let text = String.sub src !i (!j - !i) in
      if text = "not" then push Tnot else push (Tident text);
      i := !j
    end
    else fail !line (Printf.sprintf "unexpected character %C" c)
  done;
  List.rev !tokens

(* Recursive-descent over the token list. *)
type state = { mutable toks : (token * int) list }

let peek st = match st.toks with [] -> None | (t, _) :: _ -> Some t
let line_of st = match st.toks with [] -> 0 | (_, l) :: _ -> l

let next st =
  match st.toks with
  | [] -> fail 0 "unexpected end of input"
  | (t, l) :: rest ->
    st.toks <- rest;
    (t, l)

let expect st want describe =
  let t, l = next st in
  if t <> want then fail l ("expected " ^ describe)

let parse_term st =
  match next st with
  | Tident v, _ -> Ast.Var v
  | Tint k, _ -> Ast.Const (Value.Int k)
  | Tstring s, _ -> Ast.Const (Value.Sym s)
  | _, l -> fail l "expected a term (variable, integer, or string)"

let parse_atom st ~head =
  let name, l =
    match next st with
    | Tident name, l -> (name, l)
    | _, l -> fail l "expected a predicate name"
  in
  expect st Tlparen "'(' after predicate name";
  let invents = ref false in
  let terms = ref [] in
  let parse_slot ~first =
    match peek st with
    | Some Tstar ->
      ignore (next st);
      if not (head && first) then
        fail (line_of st)
          "'*' (invention) is only allowed as the first head argument";
      invents := true
    | _ -> terms := parse_term st :: !terms
  in
  parse_slot ~first:true;
  let rec loop () =
    match peek st with
    | Some Tcomma ->
      ignore (next st);
      parse_slot ~first:false;
      loop ()
    | Some Trparen -> ignore (next st)
    | _ -> fail (line_of st) "expected ',' or ')' in atom"
  in
  loop ();
  if !terms = [] && not !invents then
    fail l ("predicate " ^ name ^ " applied to no arguments");
  let terms = List.rev !terms in
  if !invents then Ast.invention_atom name terms else Ast.atom name terms

let parse_literal st =
  match peek st with
  | Some Tnot ->
    ignore (next st);
    `Neg (parse_atom st ~head:false)
  | Some (Tident _) -> begin
    (* Could be an atom (ident followed by '(') or a variable in an
       inequality. Look ahead one token. *)
    match st.toks with
    | (Tident _, _) :: (Tlparen, _) :: _ -> `Pos (parse_atom st ~head:false)
    | _ ->
      let a = parse_term st in
      expect st Tneq "'!=' in inequality";
      let b = parse_term st in
      `Ineq (a, b)
  end
  | Some (Tint _ | Tstring _) ->
    let a = parse_term st in
    expect st Tneq "'!=' in inequality";
    let b = parse_term st in
    `Ineq (a, b)
  | _ -> fail (line_of st) "expected a body literal"

let parse_one_rule st =
  let l0 = line_of st in
  let head = parse_atom st ~head:true in
  expect st Tturnstile "':-' after rule head";
  let pos = ref [] and neg = ref [] and ineq = ref [] in
  let add () =
    match parse_literal st with
    | `Pos a -> pos := a :: !pos
    | `Neg a -> neg := a :: !neg
    | `Ineq (a, b) -> ineq := (a, b) :: !ineq
  in
  add ();
  let rec loop () =
    match peek st with
    | Some Tcomma ->
      ignore (next st);
      add ();
      loop ()
    | Some Tdot -> ignore (next st)
    | _ -> fail (line_of st) "expected ',' or '.' after a body literal"
  in
  loop ();
  let r =
    {
      Ast.head;
      pos = List.rev !pos;
      neg = List.rev !neg;
      ineq = List.rev !ineq;
    }
  in
  match Ast.check_rule r with
  | Ok () -> r
  | Error msg -> fail l0 msg

let parse_program src =
  let st = { toks = tokenize src } in
  let rules = ref [] in
  while peek st <> None do
    rules := parse_one_rule st :: !rules
  done;
  let p = List.rev !rules in
  (* Trigger arity consistency checking. *)
  (try ignore (Ast.schema_of p) with Invalid_argument msg -> fail 0 msg);
  p

let parse_rule src =
  match parse_program src with
  | [ r ] -> r
  | l -> fail 1 (Printf.sprintf "expected exactly one rule, got %d" (List.length l))
