open Relational

type outcome =
  | Output of Instance.t
  | Divergent

let invention_relations p =
  List.filter_map
    (fun (r : Ast.rule) -> if r.head.invents then Some r.head.pred else None)
    p
  |> List.sort_uniq String.compare

let validate p =
  let inventing = invention_relations p in
  let bad =
    List.find_opt
      (fun (r : Ast.rule) ->
        (not r.head.invents) && List.mem r.head.pred inventing)
      p
  in
  match bad with
  | Some r ->
    Error
      (Printf.sprintf
         "relation %s occurs in heads both with and without the invention slot"
         r.head.pred)
  | None -> Ok ()

(* Head positions (1-based, invention slot included) holding a given
   variable. *)
let head_positions_of_var (head : Ast.atom) v =
  let offset = if head.invents then 1 else 0 in
  List.mapi (fun i t -> (i + 1 + offset, t)) head.terms
  |> List.filter_map (fun (j, t) ->
         match t with Ast.Var w when w = v -> Some j | _ -> None)

let unsafe_positions p =
  let module PS = Set.Make (struct
    type t = string * int

    let compare = Stdlib.compare
  end) in
  let seed =
    List.fold_left
      (fun s rel -> PS.add (rel, 1) s)
      PS.empty (invention_relations p)
  in
  let step s =
    List.fold_left
      (fun s (r : Ast.rule) ->
        List.fold_left
          (fun s (a : Ast.atom) ->
            List.fold_left
              (fun s (i, t) ->
                match t with
                | Ast.Const _ -> s
                | Ast.Var v ->
                  if PS.mem (a.pred, i) s then
                    List.fold_left
                      (fun s j -> PS.add (r.head.pred, j) s)
                      s
                      (head_positions_of_var r.head v)
                  else s)
              s
              (List.mapi (fun i t -> (i + 1, t)) a.terms))
          s r.pos)
      s p
  in
  let rec fix s =
    let s' = step s in
    if PS.equal s s' then s else fix s'
  in
  PS.elements (fix seed)

let is_weakly_safe ~outputs p =
  let unsafe = unsafe_positions p in
  not (List.exists (fun (rel, _) -> List.mem rel outputs) unsafe)

let is_safe_output i = not (Instance.exists Fact.is_invented i)
let is_sp_wilog p = Fragment.is_semi_positive p
let is_semi_connected_wilog p = Connectivity.is_semi_connected p

let eval ?(max_facts = 50_000) p i =
  match validate p with
  | Error e -> Error e
  | Ok () -> (
    match Eval.stratified ~max_facts p i with
    | Error e -> Error e
    | Ok out -> Ok (Output out)
    | exception Eval.Diverged -> Ok Divergent)

let eval_output ?max_facts ~outputs p i =
  match eval ?max_facts p i with
  | Error e -> Error e
  | Ok Divergent -> Error "ILOG evaluation diverged (output undefined)"
  | Ok (Output out) -> Ok (Instance.restrict_rels out outputs)

let query ?max_facts ~name ~outputs p =
  let p = Adom.augment p in
  match validate p with
  | Error e -> Error e
  | Ok () ->
    if not (Stratify.is_stratifiable p) then
      Error "not syntactically stratifiable"
    else if not (is_weakly_safe ~outputs p) then
      Error "output relations have unsafe (invention-tainted) positions"
    else
      let idb = Ast.idb p in
      match List.find_opt (fun o -> not (Schema.mem idb o)) outputs with
      | Some o -> Error ("output relation " ^ o ^ " is not derived")
      | None ->
        let input = Ast.edb p in
        let output = Schema.restrict idb outputs in
        Ok
          (Query.make ~name ~input ~output (fun i ->
               match eval_output ?max_facts ~outputs p i with
               | Ok out -> out
               | Error e -> invalid_arg ("Ilog.query: " ^ e)))
