(** Syntactic stratification of Datalog¬ programs (Section 2).

    A program is syntactically stratifiable when strata numbers
    [ρ : idb(P) → {1..|idb|}] exist with [ρ(R) ≤ ρ(T)] for positive idb
    dependencies and [ρ(R) < ρ(T)] for negative ones. *)

type stratification = {
  strata : Ast.program list;
      (** The sequence [P1; ...; Pk]: stratum [i] holds exactly the rules
          whose head predicate has stratum number [i+1]. Every stratum is
          nonempty. *)
  number : string -> int option;
      (** Stratum number (1-based) of an idb predicate; [None] for edb or
          unknown predicates. *)
}

val stratify : Ast.program -> (stratification, string) result
(** [Error] explains the negative cycle when the program is not
    syntactically stratifiable. The empty program stratifies to no
    strata. *)

val is_stratifiable : Ast.program -> bool

val finest : Ast.program -> (stratification, string) result
(** An independent stratification algorithm used to cross-check
    {!stratify}: strongly connected components of the predicate dependency
    graph, in topological order, one stratum per component (a negative
    edge inside a component certifies unstratifiability). Produces the
    finest stratification; the stratified semantics does not depend on
    the choice (tested property). *)

val depends_on : Ast.program -> string -> string list
(** Direct dependencies of an idb predicate: the predicates occurring in
    bodies of its rules (positive or negative), idb and edb alike. *)

val depends_on_trans : Ast.program -> string -> string list
(** Reflexive-transitive closure of {!depends_on} restricted to idb
    predicates. *)

val dependents_of_trans : Ast.program -> string list -> string list
(** All idb predicates that (transitively, reflexively) depend on one of
    the given predicates. Used to compute the forced final stratum in the
    semi-connectedness check. *)
