open Relational

(* Set-at-a-time engine on the shared {!Joindb} substrate: the bindings
   relation is materialized as a list of environments and joined with one
   atom at a time through the database's positional hash indexes. Same
   plans, same probes as {!Eval}; only the loop structure differs
   (breadth-first binding lists vs depth-first continuations), which is
   the point of the E20 comparison bench. *)

module Env = Joindb.Env

let join_atom db envs (ap : Joindb.atom_plan) =
  List.concat_map
    (fun env ->
      Joindb.probe db ap.pred ~arity:ap.arity ~positions:ap.key_positions
        (Joindb.key_of_env env ap)
      |> List.filter_map (fun f -> Joindb.extend env ap.slots f))
    envs

let derive_plan ~neg ~current ~db ~delta ~which (p : Joindb.plan) acc =
  let run () =
    let envs =
      Array.to_list p.atoms
      |> List.fold_left
           (fun (i, envs) ap ->
             let source = if Some i = which then delta else db in
             (i + 1, join_atom source envs ap))
           (0, [ Env.empty ])
      |> snd
    in
    List.fold_left
      (fun acc env ->
        if Joindb.checks_pass current neg env p.rule then
          Instance.add (Joindb.ground_atom env p.rule.head) acc
        else acc)
      acc envs
  in
  (* Same ANALYZE parity as Eval.derive_plan: the set-at-a-time engine
     materializes binding lists, so fired is recovered as the passing
     valuation count via a counting fold only under profiling. *)
  if not (Observe.Profile.is_enabled ()) then run ()
  else begin
    let label = Eval.rule_label p.rule in
    let labels = [ ("rule", label) ] in
    let out =
      Observe.Profile.span ("rule:" ^ label) (fun () ->
          Observe.Metrics.time
            (Observe.Metrics.timing ~labels "eval.rule_time")
            run)
    in
    let derived = Instance.cardinal out - Instance.cardinal acc in
    Observe.Metrics.incr ~by:derived
      (Observe.Metrics.counter ~labels "eval.rule_derived");
    out
  end

let derive_plans ?(neg = Joindb.default_neg) plans j =
  let db = Joindb.of_instance j in
  List.fold_left
    (fun acc p ->
      derive_plan ~neg ~current:j ~db ~delta:Joindb.empty ~which:None p acc)
    Instance.empty plans

let derive ?neg p j = derive_plans ?neg (Joindb.plan_program p) j

let guard max_facts j =
  match max_facts with
  | Some budget when Instance.cardinal j > budget -> raise Eval.Diverged
  | _ -> ()

let seminaive ?(neg = Joindb.default_neg) ?max_facts p i =
  let plans = Joindb.plan_program p in
  let step db_i delta_i =
    let db = Joindb.of_instance db_i and delta = Joindb.of_instance delta_i in
    List.fold_left
      (fun acc (p : Joindb.plan) ->
        let n = Array.length p.atoms in
        let rec over_idx which acc =
          if which = n then acc
          else
            over_idx (which + 1)
              (derive_plan ~neg ~current:db_i ~db ~delta ~which:(Some which) p
                 acc)
        in
        over_idx 0 acc)
      Instance.empty plans
  in
  let first = derive_plans ~neg plans i in
  let rec go db delta =
    guard max_facts db;
    if Instance.is_empty delta then db
    else
      let db' = Instance.union db delta in
      let fresh = Instance.diff (step db' delta) db' in
      go db' fresh
  in
  go i (Instance.diff first i)

let stratified ?max_facts p i =
  match Stratify.stratify p with
  | Error e -> Error e
  | Ok { strata; _ } ->
    Ok
      (List.fold_left
         (fun acc stratum -> seminaive ?max_facts stratum acc)
         i strata)
