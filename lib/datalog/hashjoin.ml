open Relational

module Env = Map.Make (String)
module Smap = Map.Make (String)

let default_neg j f = not (Instance.mem f j)

let index i =
  Instance.fold
    (fun f m ->
      Smap.update (Fact.rel f)
        (function None -> Some [ f ] | Some l -> Some (f :: l))
        m)
    i Smap.empty

let lookup idx pred = match Smap.find_opt pred idx with Some l -> l | None -> []

let term_value env = function
  | Ast.Const c -> Some c
  | Ast.Var v -> Env.find_opt v env

let term_value_exn env t =
  match term_value env t with
  | Some c -> c
  | None -> invalid_arg "Hashjoin: unbound variable in a checked position"

let ground_atom env (a : Ast.atom) =
  let args = List.map (term_value_exn env) a.terms in
  if a.invents then
    Fact.make a.pred (Value.Skolem (Eval.skolem_functor a.pred, args) :: args)
  else Fact.make a.pred args

(* Join the current bindings with one atom: hash the atom's facts on the
   positions of already-bound variables (and constants), probe with each
   binding, and extend it with the atom's free variables. *)
let join_atom envs (a : Ast.atom) facts =
  match envs with
  | [] -> []
  | sample_env :: _ ->
    let bound v = Env.mem v sample_env in
    (* Key positions: term index list whose value is determined by the
       current bindings (constants or bound variables). All bindings in
       [envs] share the same domain, so sampling one is enough. *)
    let keyed =
      List.mapi (fun i t -> (i, t)) a.terms
      |> List.filter (fun (_, t) ->
             match t with Ast.Const _ -> true | Ast.Var v -> bound v)
    in
    let key_of_fact f = List.map (fun (i, _) -> Fact.arg f i) keyed in
    let tbl = Hashtbl.create 64 in
    List.iter
      (fun f ->
        if Fact.arity f = List.length a.terms then begin
          (* A fact must also be self-consistent with repeated free
             variables; checked during extension below. *)
          Hashtbl.add tbl (key_of_fact f) f
        end)
      facts;
    let key_of_env env =
      List.map (fun (_, t) -> term_value_exn env t) keyed
    in
    let extend env f =
      (* Bind free variables; fail on clashes between repeated free
         variables in the atom. *)
      let rec go env i = function
        | [] -> Some env
        | Ast.Const _ :: rest -> go env (i + 1) rest
        | Ast.Var v :: rest -> (
          let value = Fact.arg f i in
          match Env.find_opt v env with
          | Some w ->
            if Value.equal w value then go env (i + 1) rest else None
          | None -> go (Env.add v value env) (i + 1) rest)
      in
      go env 0 a.terms
    in
    List.concat_map
      (fun env ->
        Hashtbl.find_all tbl (key_of_env env)
        |> List.filter_map (extend env))
      envs

let checks_pass current neg env (r : Ast.rule) =
  List.for_all
    (fun (x, y) ->
      not (Value.equal (term_value_exn env x) (term_value_exn env y)))
    r.ineq
  && List.for_all (fun a -> neg current (ground_atom env a)) r.neg

let derive_rule ~neg ~current ~db_idx ~delta_idx ~which (r : Ast.rule) acc =
  let envs =
    List.fold_left
      (fun (i, envs) (a : Ast.atom) ->
        let source = if Some i = which then delta_idx else db_idx in
        (i + 1, join_atom envs a (lookup source a.pred)))
      (0, [ Env.empty ])
      r.pos
    |> snd
  in
  List.fold_left
    (fun acc env ->
      if checks_pass current neg env r then
        Instance.add (ground_atom env r.head) acc
      else acc)
    acc envs

let derive ?(neg = default_neg) p j =
  let idx = index j in
  List.fold_left
    (fun acc r ->
      derive_rule ~neg ~current:j ~db_idx:idx ~delta_idx:Smap.empty
        ~which:None r acc)
    Instance.empty p

let guard max_facts j =
  match max_facts with
  | Some budget when Instance.cardinal j > budget -> raise Eval.Diverged
  | _ -> ()

let seminaive ?(neg = default_neg) ?max_facts p i =
  let step db delta =
    let db_idx = index db and delta_idx = index delta in
    List.fold_left
      (fun acc (r : Ast.rule) ->
        let n = List.length r.pos in
        let rec over_idx which acc =
          if which = n then acc
          else
            over_idx (which + 1)
              (derive_rule ~neg ~current:db ~db_idx ~delta_idx
                 ~which:(Some which) r acc)
        in
        over_idx 0 acc)
      Instance.empty p
  in
  let first = derive ~neg p i in
  let rec go db delta =
    guard max_facts db;
    if Instance.is_empty delta then db
    else
      let db' = Instance.union db delta in
      let fresh = Instance.diff (step db' delta) db' in
      go db' fresh
  in
  go i (Instance.diff first i)

let stratified ?max_facts p i =
  match Stratify.stratify p with
  | Error e -> Error e
  | Ok { strata; _ } ->
    Ok
      (List.fold_left
         (fun acc stratum -> seminaive ?max_facts stratum acc)
         i strata)
