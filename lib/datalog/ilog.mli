(** ILOG¬ — Datalog¬ with value invention (Section 5.2 of the paper).

    Invention relations are those that appear in a head with the invention
    slot [R(⋆, ū)]; their first position is the invention position.
    Evaluation Skolemizes the invention slot (done natively by {!Eval}),
    valuations range over the Herbrand expansion, and a program whose
    fixpoint is infinite has undefined output — reported here as
    {!Divergent}. *)

open Relational

type outcome =
  | Output of Instance.t
  | Divergent

val invention_relations : Ast.program -> string list
(** Relations that occur with an invention slot in some head. It is an
    error (reported by {!validate}) for a relation to occur both with and
    without the slot in heads. *)

val validate : Ast.program -> (unit, string) result
(** Checks the invention-relation consistency condition above. *)

val unsafe_positions : Ast.program -> (string * int) list
(** The smallest set closed under the two rules of Section 5.2: invention
    positions are unsafe, and unsafety propagates from a positive body atom
    position to any head position holding the same variable. Positions are
    1-based and count the invention slot. *)

val is_weakly_safe : outputs:string list -> Ast.program -> bool
(** No output relation has an unsafe position (wILOG¬). *)

val is_safe_output : Instance.t -> bool
(** Dynamic safety: the output contains no invented values. Weak safety
    implies this for every input. *)

val is_sp_wilog : Ast.program -> bool
(** Negation restricted to edb predicates (SP-wILOG). *)

val is_semi_connected_wilog : Ast.program -> bool
(** Semi-connected wILOG¬: same criterion as {!Connectivity.is_semi_connected}
    (connectivity only reads positive bodies, so invention heads do not
    affect it). *)

val eval :
  ?max_facts:int -> Ast.program -> Instance.t -> (outcome, string) result
(** Stratified evaluation with invention; [Error] when not stratifiable or
    not consistent per {!validate}. [max_facts] (default 50_000) bounds the
    Herbrand expansion; exceeding it yields [Ok Divergent]. *)

val eval_output :
  ?max_facts:int -> outputs:string list -> Ast.program -> Instance.t ->
  (Instance.t, string) result
(** Convenience: evaluate and restrict to the output relations; [Error] on
    divergence too. *)

val query :
  ?max_facts:int -> name:string -> outputs:string list -> Ast.program ->
  (Query.t, string) result
(** Package a validated, stratifiable wILOG¬ program as an abstract query.
    The returned query raises [Invalid_argument] at evaluation time if the
    program diverges on an input (the paper leaves such outputs
    undefined). [Error] on static problems (unstratifiable, inconsistent
    invention, output relation not derived or not weakly safe). *)
