open Relational

let predicate = "Adom"

let rules_for schema =
  List.concat_map
    (fun (name, ar) ->
      let vars = List.init ar (fun i -> Printf.sprintf "x%d" (i + 1)) in
      let body = [ Ast.atom name (List.map (fun v -> Ast.Var v) vars) ] in
      List.map (fun v -> Ast.rule (Ast.atom predicate [ Ast.Var v ]) body) vars)
    (Schema.relations schema)

let augment p =
  let mentions =
    List.exists (fun (r : Ast.rule) -> List.mem predicate (Ast.preds_of_rule r)) p
  in
  let defines = List.exists (fun (r : Ast.rule) -> r.head.pred = predicate) p in
  if mentions && not defines then
    (* Adom ranges over the *input*: project every edb relation of the
       user program (Adom itself is idb once the rules are added). *)
    p @ rules_for (Schema.diff (Ast.edb p) (Schema.of_list [ (predicate, 1) ]))
  else p
