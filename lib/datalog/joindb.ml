open Relational

(* The shared join substrate of both evaluation engines.

   A [Joindb.t] is a per-predicate view of an instance whose indexes are
   built lazily, one per (arity, bound-position set) actually probed: an
   atom with k determinate terms (constants or already-bound variables)
   is answered by hashing those k values instead of scanning every fact
   of the predicate. Which positions are determinate is a static property
   of the rule — it depends only on the atoms preceding the probe, never
   on the data — so it is computed once per rule as a [plan] and the
   index for a position set is shared by every probe of the fixpoint.

   This module subsumes the seed's duplicated [index]/[term_value]/
   [ground_atom] machinery from [eval.ml] and [hashjoin.ml]; both engines
   now differ only in how they drive the probe loop (depth-first
   continuations vs set-at-a-time binding lists). *)

module Env = Map.Make (String)
module Smap = Map.Make (String)

let default_neg j f = not (Instance.mem f j)

(* ------------------------------------------------------------------ *)
(* Storage *)

module Key = struct
  type t = Value.t list

  let equal = List.equal Value.equal

  let hash k =
    List.fold_left (fun acc v -> (acc * 486187739) + Value.hash v) 17 k
end

module Ktbl = Hashtbl.Make (Key)

type rel = {
  facts : Fact.t list;
  mutable indexes : ((int * int list) * Fact.t Ktbl.t) list;
      (* keyed by (arity, key positions); a handful per predicate, so an
         association list beats a nested hash table. *)
}

type t = rel Smap.t

let empty : t = Smap.empty

let of_instance i : t =
  Instance.fold
    (fun f m ->
      Smap.update (Fact.rel f)
        (function
          | None -> Some { facts = [ f ]; indexes = [] }
          | Some r -> Some { r with facts = f :: r.facts })
        m)
    i Smap.empty

let of_facts facts : t =
  List.fold_left
    (fun m f ->
      Smap.update (Fact.rel f)
        (function
          | None -> Some { facts = [ f ]; indexes = [] }
          | Some r -> Some { r with facts = f :: r.facts })
        m)
    Smap.empty facts

(* Functional update: predicates untouched by [add]/[remove] share their
   [rel] record — and thus every index already built — with the input
   database; touched predicates get a fresh record with no indexes, to be
   rebuilt lazily on first probe. This is what lets an IVM handle keep
   its base indexes warm across thousands of delta applies. *)
let update (db : t) ~add ~remove : t =
  let db =
    if Instance.is_empty remove then db
    else
      Instance.fold
        (fun f preds ->
          if List.mem (Fact.rel f) preds then preds else Fact.rel f :: preds)
        remove []
      |> List.fold_left
           (fun db pred ->
             Smap.update pred
               (function
                 | None -> None
                 | Some r -> (
                   match
                     List.filter (fun f -> not (Instance.mem f remove)) r.facts
                   with
                   | [] -> None
                   | facts -> Some { facts; indexes = [] }))
               db)
           db
  in
  List.fold_left
    (fun db f ->
      Smap.update (Fact.rel f)
        (function
          | None -> Some { facts = [ f ]; indexes = [] }
          | Some r -> Some { facts = f :: r.facts; indexes = [] })
        db)
    db add

let index_for r ~arity ~positions =
  match List.assoc_opt (arity, positions) r.indexes with
  | Some idx -> idx
  | None ->
    let idx = Ktbl.create 64 in
    List.iter
      (fun f ->
        if Fact.arity f = arity then
          Ktbl.add idx (List.map (Fact.arg f) positions) f)
      r.facts;
    r.indexes <- ((arity, positions), idx) :: r.indexes;
    idx

let probe (db : t) pred ~arity ~positions key =
  match Smap.find_opt pred db with
  | None -> []
  | Some r -> Ktbl.find_all (index_for r ~arity ~positions) key

(* ------------------------------------------------------------------ *)
(* Terms and grounding *)

let term_value env = function
  | Ast.Const c -> c
  | Ast.Var v -> (
    match Env.find_opt v env with
    | Some c -> c
    | None -> invalid_arg "Joindb: unbound variable in a checked position")

let skolem_functor pred = "f_" ^ pred

(* Invention heads R(⋆, ū) ground to R(f_R(v̄), v̄): the Skolemization of
   Section 5.2, with the functor applied to the remaining head
   arguments. *)
let ground_atom env (a : Ast.atom) =
  let args = List.map (term_value env) a.terms in
  if a.invents then
    Fact.make a.pred (Value.Skolem (skolem_functor a.pred, args) :: args)
  else Fact.make a.pred args

let checks_pass current neg env (r : Ast.rule) =
  List.for_all
    (fun (x, y) -> not (Value.equal (term_value env x) (term_value env y)))
    r.ineq
  && List.for_all (fun a -> neg current (ground_atom env a)) r.neg

(* ------------------------------------------------------------------ *)
(* Rule plans *)

(* How to process one candidate fact after the index probe: keyed
   positions already matched by hashing, so only the free positions
   remain — bind first occurrences, check repeats. *)
type slot =
  | Bind of int * string
  | Check of int * string

type atom_plan = {
  pred : string;
  arity : int;
  key_positions : int list;
  key_terms : Ast.term list;  (* aligned with [key_positions] *)
  slots : slot list;
}

type plan = {
  rule : Ast.rule;
  atoms : atom_plan array;
}

let plan_atom bound (a : Ast.atom) =
  let keyed = ref [] and slots = ref [] and fresh = ref [] in
  List.iteri
    (fun i t ->
      match t with
      | Ast.Const _ -> keyed := (i, t) :: !keyed
      | Ast.Var v ->
        if List.mem v bound then keyed := (i, t) :: !keyed
        else if List.mem v !fresh then slots := Check (i, v) :: !slots
        else begin
          fresh := v :: !fresh;
          slots := Bind (i, v) :: !slots
        end)
    a.terms;
  let keyed = List.rev !keyed in
  ( {
      pred = a.pred;
      arity = List.length a.terms;
      key_positions = List.map fst keyed;
      key_terms = List.map snd keyed;
      slots = List.rev !slots;
    },
    !fresh )

let plan_rule (r : Ast.rule) =
  let atoms, _ =
    List.fold_left
      (fun (acc, bound) a ->
        let ap, fresh = plan_atom bound a in
        (ap :: acc, fresh @ bound))
      ([], []) r.pos
  in
  { rule = r; atoms = Array.of_list (List.rev atoms) }

let plan_program p = List.map plan_rule p

let key_of_env env ap = List.map (term_value env) ap.key_terms

(* ------------------------------------------------------------------ *)
(* EXPLAIN: pretty-print a compiled plan. One line per body atom showing
   the access path the probe loop will take — which positions are hashed
   (and under which terms), which free positions bind, and which repeats
   are equality-checked after the probe. *)

let pp_term_str t = Format.asprintf "%a" Ast.pp_term t

let pp_slot ppf = function
  | Bind (i, v) -> Format.fprintf ppf "bind %s@@%d" v i
  | Check (i, v) -> Format.fprintf ppf "check %s@@%d" v i

let pp_atom_plan ppf ap =
  (match ap.key_positions with
  | [] -> Format.fprintf ppf "%s/%d via full scan" ap.pred ap.arity
  | ps ->
    Format.fprintf ppf "%s/%d via index(%s) key=<%s>" ap.pred ap.arity
      (String.concat "," (List.map string_of_int ps))
      (String.concat "," (List.map pp_term_str ap.key_terms)));
  match ap.slots with
  | [] -> Format.fprintf ppf ", fully keyed"
  | slots ->
    Format.fprintf ppf ", %s"
      (String.concat ", "
         (List.map (fun s -> Format.asprintf "%a" pp_slot s) slots))

let pp_plan ppf p =
  Format.fprintf ppf "@[<v>%a@," Ast.pp_rule p.rule;
  Array.iteri
    (fun i ap -> Format.fprintf ppf "  atom %d: %a@," (i + 1) pp_atom_plan ap)
    p.atoms;
  Format.fprintf ppf "@]"

let extend env slots f =
  let rec go env = function
    | [] -> Some env
    | Bind (i, v) :: rest -> go (Env.add v (Fact.arg f i) env) rest
    | Check (i, v) :: rest ->
      if Value.equal (Fact.arg f i) (Env.find v env) then go env rest
      else None
  in
  go env slots
