(** The [Adom] convenience predicate (Section 2).

    The paper's examples use a unary idb relation [Adom] holding the active
    domain of the input, "computed as the union of the projections of all
    positions of all edb-relations", with the defining rules left implicit.
    {!rules_for} materializes those rules. *)

val predicate : string
(** ["Adom"]. *)

val rules_for : Relational.Schema.t -> Ast.program
(** One rule per position of each relation of the schema:
    [Adom(xi) :- R(x1, ..., xk).] *)

val augment : Ast.program -> Ast.program
(** Appends {!rules_for} on the program's edb schema when the program
    mentions [Adom] without defining it; otherwise returns the program
    unchanged. *)
