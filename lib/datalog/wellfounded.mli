(** Well-founded semantics via the alternating fixpoint.

    Needed for the win-move query and for the "doubled program" discussion
    in the paper's Section 7. The stable operator [Γ(S)] evaluates the
    program with negated idb atoms read against the fixed set [S] (and
    negated edb atoms against the input); [Γ] is antimonotone, [Γ²]
    monotone. Iterating from the empty underestimate yields the true facts
    as [lfp(Γ²)] and the not-false facts as [gfp(Γ²)]. *)

open Relational

type model = {
  true_facts : Instance.t;  (** includes the input *)
  undefined : Instance.t;   (** facts with undefined truth value *)
}

val gamma : Ast.program -> Instance.t -> Instance.t -> Instance.t
(** [gamma p input s]: the stable operator — least fixpoint of [p] over
    [input] where a negated idb atom [¬R(ā)] holds iff [R(ā) ∉ s]. *)

val eval : Ast.program -> Instance.t -> model

val total : model -> bool
(** No undefined facts: the well-founded model is total. *)

val is_stratified_compatible : Ast.program -> Instance.t -> bool
(** For stratifiable programs, the well-founded model is total and agrees
    with the stratified semantics; this checks both (used as a test
    oracle). *)

(** {2 The doubled-program construction (paper, Section 7)}

    The alternating fixpoint can be driven by an ordinary {e semi-positive}
    program: rename every negated idb atom [¬R(ū)] to [¬Prev_R(ū)], making
    the previous iterate an edb relation. Iterating that program — feeding
    each round's result back in as the [Prev_*] relations — computes the
    well-founded model with a stratified engine, which is how the paper
    argues connected Datalog¬ under the well-founded semantics stays in
    Mdisjoint. *)

val prev_prefix : string
(** ["Prev_"]. *)

val doubled_step_program : Ast.program -> Ast.program
(** The quotient program: negated idb atoms renamed to [Prev_]-relations.
    The result is semi-positive whenever the original negates only idb
    and edb atoms (always). Rule connectivity is untouched: renaming
    preserves [graph+]. *)

val eval_via_doubling : Ast.program -> Instance.t -> model
(** The well-founded model computed by iterating
    {!doubled_step_program} — agrees with {!eval} (tested property). *)
