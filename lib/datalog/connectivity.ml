let pos_vars_by_atom (r : Ast.rule) =
  List.map Ast.vars_of_atom r.pos

let rule_graph (r : Ast.rule) =
  let vars = List.sort_uniq String.compare (List.concat (pos_vars_by_atom r)) in
  List.map
    (fun v ->
      let neighbours =
        List.concat_map
          (fun group -> if List.mem v group then group else [])
          (pos_vars_by_atom r)
        |> List.sort_uniq String.compare
        |> List.filter (fun w -> w <> v)
      in
      (v, neighbours))
    vars

let rule_is_connected r =
  match rule_graph r with
  | [] | [ _ ] -> true
  | (start, _) :: _ as graph ->
    let adj v = try List.assoc v graph with Not_found -> [] in
    let seen = Hashtbl.create 8 in
    let rec dfs v =
      if not (Hashtbl.mem seen v) then begin
        Hashtbl.replace seen v ();
        List.iter dfs (adj v)
      end
    in
    dfs start;
    Hashtbl.length seen = List.length graph

let is_connected_program p =
  List.for_all rule_is_connected p && Stratify.is_stratifiable p

let forced_final_stratum p =
  let heads_of_unconnected =
    List.filter_map
      (fun (r : Ast.rule) ->
        if rule_is_connected r then None else Some r.head.pred)
      p
    |> List.sort_uniq String.compare
  in
  Stratify.dependents_of_trans p heads_of_unconnected

(* The forced set S must be realizable as one semi-positive stratum: rules
   defining predicates of S may not negate predicates of S. S is upward
   closed by construction, so nothing outside S depends on S, and the
   prefix (a subset of a stratifiable program) stratifies whenever P
   does. *)
let is_semi_connected p =
  Stratify.is_stratifiable p
  &&
  let forced = forced_final_stratum p in
  List.for_all
    (fun (r : Ast.rule) ->
      if List.mem r.head.pred forced then
        List.for_all (fun (a : Ast.atom) -> not (List.mem a.pred forced)) r.neg
      else true)
    p

let explain p =
  if not (Stratify.is_stratifiable p) then "not syntactically stratifiable"
  else if List.for_all rule_is_connected p then "connected (con-Datalog¬)"
  else if is_semi_connected p then
    Printf.sprintf "semi-connected (final stratum forced to contain: %s)"
      (String.concat ", " (forced_final_stratum p))
  else "stratifiable but not semi-connected"
