open Relational

type semantics =
  | Stratified
  | Well_founded

type t = {
  rules : Ast.program;
  outputs : string list;
  semantics : semantics;
}

let make ?(outputs = [ "O" ]) ?(semantics = Stratified) rules =
  let rules = Adom.augment rules in
  let idb = Ast.idb rules in
  List.iter
    (fun o ->
      if not (Schema.mem idb o) then
        invalid_arg
          (Printf.sprintf "Program.make: output relation %s is not derived" o))
    outputs;
  (match semantics with
  | Stratified -> (
    match Stratify.stratify rules with
    | Ok _ -> ()
    | Error e -> invalid_arg ("Program.make: " ^ e))
  | Well_founded -> ());
  { rules; outputs; semantics }

let parse ?outputs ?semantics src =
  make ?outputs ?semantics (Parser.parse_program src)

let input_schema t = Ast.edb t.rules
let output_schema t = Schema.restrict (Ast.idb t.rules) t.outputs
let fragment t = Fragment.classify t.rules

let run t i =
  let full =
    match t.semantics with
    | Stratified -> Eval.stratified_exn t.rules i
    | Well_founded -> (Wellfounded.eval t.rules i).true_facts
  in
  Instance.restrict_rels full t.outputs

(* Stratified programs answer the scan's probes incrementally: staging
   materializes the model of the base once ({!Ivm.materialize}), and
   each probe is a Δ-seeded apply against the handle's shared indexes.
   Well-founded programs have no maintenance route and evaluate. *)
let query ~name t =
  let maintain =
    match t.semantics with
    | Well_founded -> None
    | Stratified ->
      Some
        (fun base ->
          let h = Ivm.materialize t.rules base in
          fun (d : Query.delta) ->
            Instance.restrict_rels (Ivm.apply_facts h d.Query.facts) t.outputs)
  in
  Query.make ?maintain ~name ~input:(input_schema t) ~output:(output_schema t)
    (run t)
