(** Top-level Datalog¬ program API.

    Bundles a parsed program with its designated output relations (the
    paper's convention: relation [O] is the intended output, edb relations
    are the input) and a choice of semantics, and exposes it as a
    {!Relational.Query.t}. *)

open Relational

type semantics =
  | Stratified     (** stratified semantics; rejects unstratifiable programs *)
  | Well_founded   (** true facts of the well-founded model *)

type t = {
  rules : Ast.program;
  outputs : string list;
  semantics : semantics;
}

val make :
  ?outputs:string list -> ?semantics:semantics -> Ast.program -> t
(** Default outputs: [["O"]]. Default semantics: [Stratified]. [Adom]
    rules are added via {!Adom.augment}. @raise Invalid_argument when an
    output relation is not an idb relation of the program, or when
    [Stratified] is chosen for an unstratifiable program. *)

val parse : ?outputs:string list -> ?semantics:semantics -> string -> t
(** {!Parser.parse_program} followed by {!make}. *)

val input_schema : t -> Schema.t
val output_schema : t -> Schema.t
val fragment : t -> Fragment.t

val run : t -> Instance.t -> Instance.t
(** Evaluate on an input instance and restrict to the output relations. *)

val query : name:string -> t -> Query.t
(** Package as an abstract query. [Stratified] programs install a
    maintenance route ({!Relational.Query.t.maintain}): staging
    materializes an {!Ivm} handle for the base once, and each probe is
    answered by a Δ-seeded incremental apply instead of re-running the
    engine on [base ∪ Δ]. [Well_founded] programs evaluate per probe. *)
