open Relational

type policy_verdict = {
  label : string;
  correct : bool;
  quiesced : bool;
  report : Network.Detect.report;
  coordinated : bool;
}

type entry = {
  name : string;
  level : Hierarchy.level;
  static_free : bool;
  runs : policy_verdict list;
  observed_free : bool;
  agree : bool;
}

let default_network = Distributed.network_of_ints [ 1; 2; 3 ]

let detect_compiled ?network ?policies ?schedulers ?jobs ~name ~compiled
    ~input () =
  let network = Option.value network ~default:default_network in
  let schedulers =
    Option.value schedulers ~default:Network.Netquery.default_schedulers
  in
  let query = compiled.Compile.query in
  let policies =
    match policies with
    | Some ps -> ps
    | None ->
      Network.Netquery.default_policies
        ~domain_guided_only:compiled.Compile.domain_guided_only
        query.Query.input network
  in
  let expected = Query.apply query input in
  let cells =
    List.concat_map
      (fun policy ->
        List.map
          (fun (sname, sched) ->
            (Network.Policy.name policy ^ "/" ^ sname, policy, sched))
          schedulers)
      policies
  in
  let swept =
    Network.Run.sweep ?jobs ~variant:compiled.Compile.variant
      ~transducer:compiled.Compile.transducer ~input cells
  in
  let runs =
    List.map
      (fun (label, r, events) ->
        let report = Network.Detect.analyze ~network events in
        {
          label;
          correct = Instance.equal r.Network.Run.outputs expected;
          quiesced = r.Network.Run.quiesced;
          report;
          coordinated = report.Network.Detect.coordinated;
        })
      swept
  in
  let observed_free =
    List.exists (fun v -> v.correct && v.quiesced && not v.coordinated) runs
  in
  let static_free = compiled.Compile.level <> Hierarchy.Beyond in
  {
    name;
    level = compiled.Compile.level;
    static_free;
    runs;
    observed_free;
    agree = observed_free = static_free;
  }

let exit_code e = if e.agree then 0 else 2

let faulty_schedulers plan schedulers =
  List.map
    (fun (sname, sched) ->
      (sname ^ "+faults", Network.Run.Faulty { base = sched; plan }))
    schedulers

let detect_query ?network ?policies ?schedulers ?jobs ~name ~level ~query
    ~input () =
  detect_compiled ?network ?policies ?schedulers ?jobs ~name
    ~compiled:(Compile.compile_any ~level query)
    ~input ()

(* The "bad" domain-guided policy: scatter consecutive integer values
   round-robin over the network, so any connected chain of data spans
   every node. *)
let scatter_policy schema network =
  let arr = Array.of_list network in
  let n = Array.length arr in
  let idx i = ((i mod n) + n) mod n in
  Network.Policy.domain_guided ~name:"scatter" schema network (fun v ->
      match v with
      | Value.Int i -> [ arr.(idx (i - 1)) ]
      | v -> [ arr.(idx (Value.hash v)) ])

let winmove_input =
  Instance.of_list
    [
      Fact.make "Move" [ Value.int 1; Value.int 2 ];
      Fact.make "Move" [ Value.int 2; Value.int 3 ];
      Fact.make "Move" [ Value.int 3; Value.int 4 ];
    ]

let graph_input edges =
  Instance.of_list
    (List.map
       (fun (a, b) -> Fact.make "E" [ Value.int a; Value.int b ])
       edges)

(* Inputs are chosen with nonempty query output: a run that outputs
   nothing is vacuously cut-free, which would make any placement look
   coordination-free. *)
let zoo ?jobs ?faults () =
  let network = default_network in
  let schedulers =
    match faults with
    | None -> Network.Netquery.default_schedulers
    | Some plan -> faulty_schedulers plan Network.Netquery.default_schedulers
  in
  let detect = detect_query ?jobs ~network ~schedulers in
  [
    detect ~name:"tc" ~level:Hierarchy.Monotone ~query:Queries.Zoo.tc
      ~input:(graph_input [ (1, 2); (2, 3); (5, 1) ])
      ();
    detect ~name:"comp_tc" ~level:Hierarchy.Domain_disjoint
      ~query:Queries.Zoo.comp_tc
      ~input:(graph_input [ (1, 2); (2, 3) ])
      ();
    (let query = Queries.Zoo.winmove in
     let policies =
       Network.Netquery.default_policies ~domain_guided_only:true
         query.Query.input network
       @ [ scatter_policy query.Query.input network ]
     in
     detect ~name:"winmove" ~level:Hierarchy.Domain_disjoint ~query
       ~policies ~input:winmove_input ());
    detect ~name:"q_clique3" ~level:Hierarchy.Beyond
      ~query:(Queries.Zoo.q_clique 3)
      ~input:(graph_input [ (1, 2); (2, 3) ])
      ();
    detect ~name:"q_star2" ~level:Hierarchy.Beyond
      ~query:(Queries.Zoo.q_star 2)
      ~input:(graph_input [ (1, 2); (3, 4) ])
      ();
    detect ~name:"triangles_u2d" ~level:Hierarchy.Beyond
      ~query:Queries.Zoo.triangles_unless_two_disjoint
      ~input:(graph_input [ (1, 2); (2, 3); (3, 1) ])
      ();
  ]

(* A fixture engineered to make the static and empirical verdicts
   disagree, pinning the detector's failure exit code: compile the
   non-monotone triangles-unless-two-disjoint query at the (wrong)
   Monotone level, so the broadcast strategy runs it. The input holds
   two vertex-disjoint triangles (values 1–3 and 4–6), so the expected
   output is empty — but the policy splits them onto different nodes,
   each node's very first transition sees only its own triangle (no
   disjoint pair locally) and wrongly outputs it, and broadcast output
   sections are append-only. Every run is incorrect, so the query is
   observed coordinated while the static level claims Monotone —
   DISAGREE, exit code 2.

   The disagreement survives any fault plan that does not crash {e
   both} triangle-holding nodes: duplication, loss, partitions, and
   crashes elsewhere cannot retract a premature wrong output (a crash
   of both nodes 1 and 2 would wipe them, and the restarts — now aware
   of the other triangle via the persistent edb and redelivery — would
   not reproduce them). {!Network.Fault.default} crashes only node 2. *)
let forced_disagree ?jobs ?faults () =
  let network = default_network in
  let nodes = Array.of_list network in
  let query = Queries.Zoo.triangles_unless_two_disjoint in
  let policy =
    Network.Policy.domain_guided ~name:"split" query.Query.input network
      (fun v ->
        match v with
        | Value.Int i when i <= 3 -> [ nodes.(0) ]
        | Value.Int _ -> [ nodes.(1) ]
        | _ -> [ nodes.(2) ])
  in
  let schedulers = [ ("round_robin", Network.Run.Round_robin) ] in
  let schedulers =
    match faults with
    | None -> schedulers
    | Some plan -> faulty_schedulers plan schedulers
  in
  detect_compiled ?jobs ~network ~policies:[ policy ] ~schedulers
    ~name:"forced_disagree"
    ~compiled:(Compile.compile_any ~level:Hierarchy.Monotone query)
    ~input:(graph_input [ (1, 2); (2, 3); (3, 1); (4, 5); (5, 6); (6, 4) ])
    ()

let pp_entry ppf e =
  Format.fprintf ppf "@[<v 2>%s: static %s (%s), observed %s — %s@ " e.name
    (if e.static_free then "coordination-free" else "coordinated")
    (Hierarchy.to_string e.level)
    (if e.observed_free then "coordination-free" else "coordinated")
    (if e.agree then "AGREE" else "DISAGREE");
  List.iter
    (fun v ->
      Format.fprintf ppf "%-32s %s%s%s@ " v.label
        (if v.coordinated then "coordinated" else "free")
        (if v.correct then "" else " [WRONG OUTPUT]")
        (if v.quiesced then "" else " [NO QUIESCENCE]"))
    e.runs;
  Format.fprintf ppf "@]"
