open Relational

type policy_verdict = {
  label : string;
  correct : bool;
  quiesced : bool;
  report : Network.Detect.report;
  coordinated : bool;
}

type entry = {
  name : string;
  level : Hierarchy.level;
  static_free : bool;
  runs : policy_verdict list;
  observed_free : bool;
  agree : bool;
}

let default_network = Distributed.network_of_ints [ 1; 2; 3 ]

let detect_compiled ?network ?policies ?schedulers ?jobs ~name ~compiled
    ~input () =
  let network = Option.value network ~default:default_network in
  let schedulers =
    Option.value schedulers ~default:Network.Netquery.default_schedulers
  in
  let query = compiled.Compile.query in
  let policies =
    match policies with
    | Some ps -> ps
    | None ->
      Network.Netquery.default_policies
        ~domain_guided_only:compiled.Compile.domain_guided_only
        query.Query.input network
  in
  let expected = Query.apply query input in
  let cells =
    List.concat_map
      (fun policy ->
        List.map
          (fun (sname, sched) ->
            (Network.Policy.name policy ^ "/" ^ sname, policy, sched))
          schedulers)
      policies
  in
  let swept =
    Network.Run.sweep ?jobs ~variant:compiled.Compile.variant
      ~transducer:compiled.Compile.transducer ~input cells
  in
  let runs =
    List.map
      (fun (label, r, events) ->
        let report = Network.Detect.analyze ~network events in
        {
          label;
          correct = Instance.equal r.Network.Run.outputs expected;
          quiesced = r.Network.Run.quiesced;
          report;
          coordinated = report.Network.Detect.coordinated;
        })
      swept
  in
  let observed_free =
    List.exists (fun v -> v.correct && v.quiesced && not v.coordinated) runs
  in
  let static_free = compiled.Compile.level <> Hierarchy.Beyond in
  {
    name;
    level = compiled.Compile.level;
    static_free;
    runs;
    observed_free;
    agree = observed_free = static_free;
  }

let detect_query ?network ?policies ?schedulers ?jobs ~name ~level ~query
    ~input () =
  detect_compiled ?network ?policies ?schedulers ?jobs ~name
    ~compiled:(Compile.compile_any ~level query)
    ~input ()

(* The "bad" domain-guided policy: scatter consecutive integer values
   round-robin over the network, so any connected chain of data spans
   every node. *)
let scatter_policy schema network =
  let arr = Array.of_list network in
  let n = Array.length arr in
  let idx i = ((i mod n) + n) mod n in
  Network.Policy.domain_guided ~name:"scatter" schema network (fun v ->
      match v with
      | Value.Int i -> [ arr.(idx (i - 1)) ]
      | v -> [ arr.(idx (Value.hash v)) ])

let winmove_input =
  Instance.of_list
    [
      Fact.make "Move" [ Value.int 1; Value.int 2 ];
      Fact.make "Move" [ Value.int 2; Value.int 3 ];
      Fact.make "Move" [ Value.int 3; Value.int 4 ];
    ]

let graph_input edges =
  Instance.of_list
    (List.map
       (fun (a, b) -> Fact.make "E" [ Value.int a; Value.int b ])
       edges)

(* Inputs are chosen with nonempty query output: a run that outputs
   nothing is vacuously cut-free, which would make any placement look
   coordination-free. *)
let zoo ?jobs () =
  let network = default_network in
  let detect = detect_query ?jobs ~network in
  [
    detect ~name:"tc" ~level:Hierarchy.Monotone ~query:Queries.Zoo.tc
      ~input:(graph_input [ (1, 2); (2, 3); (5, 1) ])
      ();
    detect ~name:"comp_tc" ~level:Hierarchy.Domain_disjoint
      ~query:Queries.Zoo.comp_tc
      ~input:(graph_input [ (1, 2); (2, 3) ])
      ();
    (let query = Queries.Zoo.winmove in
     let policies =
       Network.Netquery.default_policies ~domain_guided_only:true
         query.Query.input network
       @ [ scatter_policy query.Query.input network ]
     in
     detect ~name:"winmove" ~level:Hierarchy.Domain_disjoint ~query
       ~policies ~input:winmove_input ());
    detect ~name:"q_clique3" ~level:Hierarchy.Beyond
      ~query:(Queries.Zoo.q_clique 3)
      ~input:(graph_input [ (1, 2); (2, 3) ])
      ();
    detect ~name:"q_star2" ~level:Hierarchy.Beyond
      ~query:(Queries.Zoo.q_star 2)
      ~input:(graph_input [ (1, 2); (3, 4) ])
      ();
    detect ~name:"triangles_u2d" ~level:Hierarchy.Beyond
      ~query:Queries.Zoo.triangles_unless_two_disjoint
      ~input:(graph_input [ (1, 2); (2, 3); (3, 1) ])
      ();
  ]

let pp_entry ppf e =
  Format.fprintf ppf "@[<v 2>%s: static %s (%s), observed %s — %s@ " e.name
    (if e.static_free then "coordination-free" else "coordinated")
    (Hierarchy.to_string e.level)
    (if e.observed_free then "coordination-free" else "coordinated")
    (if e.agree then "AGREE" else "DISAGREE");
  List.iter
    (fun v ->
      Format.fprintf ppf "%-32s %s%s%s@ " v.label
        (if v.coordinated then "coordinated" else "free")
        (if v.correct then "" else " [WRONG OUTPUT]")
        (if v.quiesced then "" else " [NO QUIESCENCE]"))
    e.runs;
  Format.fprintf ppf "@]"
