type t = {
  title : string;
  columns : string list;
  mutable rows : string list list;
  mutable notes : string list;
}

let create ~title ~columns = { title; columns; rows = []; notes = [] }
let add_row t row = t.rows <- row :: t.rows
let add_note t note = t.notes <- note :: t.notes

let render t =
  let rows = List.rev t.rows in
  let all = t.columns :: rows in
  let ncols =
    List.fold_left (fun acc row -> max acc (List.length row)) 0 all
  in
  let width i =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row i with
        | Some cell -> max acc (String.length cell)
        | None -> acc)
      0 all
  in
  let widths = List.init ncols width in
  let pad cell w = cell ^ String.make (max 0 (w - String.length cell)) ' ' in
  let line row =
    "| "
    ^ String.concat " | "
        (List.mapi (fun i w -> pad (Option.value (List.nth_opt row i) ~default:"") w) widths)
    ^ " |"
  in
  let sep =
    "+" ^ String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths)
    ^ "+"
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  Buffer.add_string buf (sep ^ "\n");
  Buffer.add_string buf (line t.columns ^ "\n");
  Buffer.add_string buf (sep ^ "\n");
  List.iter (fun row -> Buffer.add_string buf (line row ^ "\n")) rows;
  Buffer.add_string buf (sep ^ "\n");
  List.iter
    (fun note -> Buffer.add_string buf ("  note: " ^ note ^ "\n"))
    (List.rev t.notes);
  Buffer.contents buf

let to_markdown t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("## " ^ t.title ^ "\n\n");
  let line row = "| " ^ String.concat " | " row ^ " |\n" in
  Buffer.add_string buf (line t.columns);
  Buffer.add_string buf
    (line (List.map (fun _ -> "---") t.columns));
  List.iter (fun row -> Buffer.add_string buf (line row)) (List.rev t.rows);
  List.iter
    (fun note -> Buffer.add_string buf ("\n*" ^ note ^ "*\n"))
    (List.rev t.notes);
  Buffer.contents buf

let print t = print_string (render t)
let cell_bool b = if b then "yes" else "no"
let cell_member b = if b then "in" else "NOT in"
