(** Empirical coordination detection over the query zoo: the run-level
    cross-check of the static CALM placements.

    For each query, compile it ({!Compile.compile_any}: its
    hierarchy-level strategy, or the coordinated barrier when [Beyond]),
    run it over a battery of policies × schedulers with causal tracing,
    and ask {!Network.Detect} whether each correct, quiescent run shows
    a heard-from-all-nodes cut. A query is {e observed coordination-free}
    when some such run has no cut — matching the existential
    quantification over policies and runs in the paper's Definition 3 —
    and the verdict must agree with the static claim: observed-free iff
    the static level is within Mdisjoint.

    Win-move is the "sometimes" case (Zinn–Green–Ludäscher): under good
    domain-guided policies (everything co-located, or fully replicated)
    its runs are coordination-free, while under a value-scattering
    domain-guided policy every win fact's cone spans the whole network. *)

open Relational

type policy_verdict = {
  label : string;           (** "<policy>/<scheduler>" *)
  correct : bool;           (** run output = Q(I) *)
  quiesced : bool;
  report : Network.Detect.report;
  coordinated : bool;       (** [report.coordinated] *)
}

type entry = {
  name : string;
  level : Hierarchy.level;        (** static claim *)
  static_free : bool;             (** level within Mdisjoint *)
  runs : policy_verdict list;
  observed_free : bool;
      (** some correct, quiescent run without a heard-from-all cut *)
  agree : bool;                   (** observed_free = static_free *)
}

val detect_query :
  ?network:Distributed.network ->
  ?policies:Network.Policy.t list ->
  ?schedulers:(string * Network.Run.scheduler) list ->
  ?jobs:int ->
  name:string ->
  level:Hierarchy.level ->
  query:Query.t ->
  input:Instance.t ->
  unit -> entry
(** Defaults: 3-node network [{1,2,3}], the {!Network.Netquery}
    default policy battery (domain-guided only when the compiled
    strategy requires it), and the default scheduler battery. *)

val detect_compiled :
  ?network:Distributed.network ->
  ?policies:Network.Policy.t list ->
  ?schedulers:(string * Network.Run.scheduler) list ->
  ?jobs:int ->
  name:string ->
  compiled:Compile.compiled ->
  input:Instance.t ->
  unit -> entry
(** Same, for an already-compiled query (e.g. from
    {!Compile.compile_program_any}). *)

val scatter_policy : Schema.t -> Distributed.network -> Network.Policy.t
(** The "bad" domain-guided policy: value [Int i] lives on node
    [network[(i-1) mod n]] (other values by hash), so connected data is
    scattered across the whole network and resolving a game chain must
    hear from everyone. *)

val winmove_input : Instance.t
(** The move chain [1→2→3→4] used for the win-move table. *)

val zoo : ?jobs:int -> ?faults:Network.Fault.plan -> unit -> entry list
(** The E25 battery: tc (M), comp_tc and win-move (Mdisjoint — win-move
    with the scatter policy appended to the battery), and q_clique 3,
    q_star 2, triangles-unless-two-disjoint (Beyond, barrier strategy),
    each on inputs with nonempty output so the detector has anchors to
    inspect. With [faults], every scheduler in the battery is wrapped in
    {!Network.Run.Faulty} under the given plan (labels gain a
    ["+faults"] suffix): the static/empirical agreement must survive
    duplication, loss, crash/restart, and partitions. *)

val exit_code : entry -> int
(** [0] when the entry agrees, [2] when it disagrees — the contract of
    [calm detect]'s exit status. *)

val forced_disagree :
  ?jobs:int -> ?faults:Network.Fault.plan -> unit -> entry
(** A fixture engineered to disagree (exit code 2): the non-monotone
    triangles-unless-two-disjoint query compiled at the wrong [Monotone]
    level, with a policy splitting the triangle from the disjoint edges,
    run. Stays DISAGREE under any fault plan that does not crash {e
    both} triangle-holding nodes (simultaneous wipes would retract the
    premature wrong outputs); {!Network.Fault.default} crashes only
    node 2. *)

val pp_entry : Format.formatter -> entry -> unit
