(** The CALM hierarchy of the paper (Figures 1 and 2) as a datatype, with
    both syntactic (Datalog-fragment) and empirical (bounded-checker)
    placement of queries. *)

open Relational

type level =
  | Monotone          (** M — original transducer networks, F0 *)
  | Domain_distinct   (** Mdistinct = E — policy-aware, F1 *)
  | Domain_disjoint   (** Mdisjoint — domain-guided, F2 *)
  | Beyond            (** C \ Mdisjoint: requires coordination *)

val levels : level list
(** In increasing order of weakness. *)

val to_string : level -> string
val monotonicity_class : level -> string
(** "M" / "Mdistinct" / "Mdisjoint" / "C". *)

val transducer_model : level -> string
(** The weakest transducer-network model whose coordination-free fragment
    captures the level ("original" / "policy-aware" / "domain-guided" /
    "none"). *)

val datalog_fragment : level -> string
(** The Datalog variant of Figure 2 associated with the level. *)

val leq : level -> level -> bool
(** Inclusion order: [Monotone ≤ Domain_distinct ≤ Domain_disjoint ≤
    Beyond]. *)

val of_fragment : Datalog.Fragment.t -> level
(** Sound syntactic placement: Datalog/Datalog(≠) → [Monotone],
    SP-Datalog → [Domain_distinct], (semi-)connected stratified →
    [Domain_disjoint], otherwise [Beyond] (no guarantee — the query may
    still sit lower). *)

val place_empirically :
  ?bounds:Monotone.Checker.bounds -> ?jobs:int -> Query.t -> level
(** Bounded-exhaustive placement via {!Monotone.Checker.place}: the
    strongest class with no violation found. [jobs] fans the membership
    probes across a Domain pool without changing the placement. *)

val placement_of_program :
  ?bounds:Monotone.Checker.bounds -> ?jobs:int ->
  Datalog.Program.t -> level * level
(** [(syntactic, empirical)] placement of a Datalog¬ program; the
    syntactic level always bounds the empirical one from above when the
    checkers are given enough budget. *)
