(** End-to-end verification of a compiled query: consistency across
    schedulers × policies, and the coordination-freeness witness of
    Definition 3. Used by the test suite, the benches, and the examples. *)

open Relational

type report = {
  consistent : bool;
  coordination_free : bool;
  runs : int;
  messages_total : int;
  transitions_total : int;
}

val check :
  ?schedulers:(string * Network.Run.scheduler) list ->
  ?max_rounds:int ->
  ?jobs:int ->
  Compile.compiled ->
  inputs:Instance.t list ->
  Distributed.network ->
  report
(** [jobs] fans the per-input scheduler × policy sweep cells across a
    Domain pool; the report is identical to the sequential one. *)

val pp_report : Format.formatter -> report -> unit
