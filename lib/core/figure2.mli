(** The paper's Figure 2 — its summary of results — as data.

    Each claim records the relationship, who proved it (the paper, or the
    prior work it builds on), and which of this repository's experiments
    (EXPERIMENTS.md / bench targets) exercises it. Used by the bench
    harness to print the reproduced figure and by the test suite to keep
    the experiment index consistent. *)

type relation =
  | Equal
  | Strictly_included   (** lhs ⊊ rhs *)
  | Included            (** lhs ⊆ rhs (strictness not claimed) *)

type claim = {
  lhs : string;
  relation : relation;
  rhs : string;
  provenance : string;   (** "this paper", "[13]", "[18]", "[32]", "folklore" *)
  evidence : string list;  (** experiment ids, e.g. ["E7"; "E9"] *)
}

val claims : claim list
val relation_to_string : relation -> string

val experiments_cited : unit -> string list
(** Sorted, deduplicated experiment ids across all claims. *)

val render : unit -> string
(** The figure as an aligned table. *)
