(** Plain-text table rendering for the benchmark harness: the experiment
    tables printed by [bench/main.exe] in the shape of the paper's
    figures. *)

type t

val create : title:string -> columns:string list -> t
val add_row : t -> string list -> unit
val add_note : t -> string -> unit

val render : t -> string
(** Column-aligned ASCII table with title, rows, and trailing notes. *)

val to_markdown : t -> string
(** The same table as GitHub-flavoured markdown (used to refresh
    EXPERIMENTS.md). *)

val print : t -> unit

val cell_bool : bool -> string
(** "yes" / "no". *)

val cell_member : bool -> string
(** "in" / "NOT in" — membership cells of the hierarchy tables. *)
