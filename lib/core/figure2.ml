type relation =
  | Equal
  | Strictly_included
  | Included

type claim = {
  lhs : string;
  relation : relation;
  rhs : string;
  provenance : string;
  evidence : string list;
}

let claim lhs relation rhs provenance evidence =
  { lhs; relation; rhs; provenance; evidence }

let claims =
  [
    (* Datalog fragments into monotonicity classes (left column). *)
    claim "Datalog(!=)" Strictly_included "M" "folklore" [ "E1" ];
    claim "SP-Datalog" Strictly_included "Mdistinct" "[6]" [ "E1"; "E7" ];
    claim "semicon-Datalog^neg" Strictly_included "Mdisjoint" "this paper (Thm 5.3)"
      [ "E12" ];
    (* wILOG fragments capture the classes exactly. *)
    claim "wILOG(!=)" Equal "M" "[18]" [ "E16" ];
    claim "SP-wILOG" Equal "Mdistinct" "[18]" [ "E16" ];
    claim "semicon-wILOG^neg" Equal "Mdisjoint" "this paper (Thm 5.4)" [ "E16" ];
    (* The monotonicity hierarchy. *)
    claim "M" Strictly_included "Mdistinct" "this paper (Thm 3.1)"
      [ "E1"; "E3"; "E4"; "E21" ];
    claim "Mdistinct" Strictly_included "Mdisjoint" "this paper (Thm 3.1)"
      [ "E1" ];
    claim "Mdisjoint" Strictly_included "C" "this paper (Thm 3.1)" [ "E1" ];
    claim "Mdistinct" Equal "E (preserved under extensions)"
      "this paper (Lemma 3.2)" [ "E6" ];
    (* Coordination-free transducer classes. *)
    claim "M" Equal "F0" "[13]" [ "E10" ];
    claim "M" Equal "A0" "[13]" [ "E9" ];
    claim "Mdistinct" Equal "F1" "this paper (Thm 4.3)" [ "E7"; "E10" ];
    claim "Mdistinct" Equal "A1" "this paper (Thm 4.5)" [ "E9" ];
    claim "Mdisjoint" Equal "F2" "this paper (Thm 4.4)" [ "E8"; "E10" ];
    claim "Mdisjoint" Equal "A2" "this paper (Thm 4.5)" [ "E9" ];
    claim "F0" Strictly_included "F1" "[32]" [ "E10"; "E19" ];
    claim "F1" Strictly_included "F2" "[32]" [ "E10"; "E19" ];
  ]

let relation_to_string = function
  | Equal -> "="
  | Strictly_included -> "c" (* proper subset *)
  | Included -> "<="

let experiments_cited () =
  List.concat_map (fun c -> c.evidence) claims |> List.sort_uniq String.compare

let render () =
  let t =
    Report.create ~title:"Figure 2 (paper summary), with experiment evidence"
      ~columns:[ "lhs"; "rel"; "rhs"; "provenance"; "experiments" ]
  in
  List.iter
    (fun c ->
      Report.add_row t
        [
          c.lhs;
          relation_to_string c.relation;
          c.rhs;
          c.provenance;
          String.concat " " c.evidence;
        ])
    claims;
  Report.render t
