(** From a query and its hierarchy level to a coordination-free
    transducer: the constructive direction of Theorems 4.3/4.4 and
    Corollary 4.6 packaged as a compiler. *)

open Relational

type compiled = {
  level : Hierarchy.level;
  query : Query.t;
  transducer : Network.Transducer.t;
  variant : Network.Config.variant;
      (** the weakest model variant the strategy needs *)
  domain_guided_only : bool;
      (** whether correctness requires domain-guided policies *)
}

val strategy_for : Hierarchy.level -> Query.t -> Network.Transducer.t
(** [Monotone] → broadcast, [Domain_distinct] → absence,
    [Domain_disjoint] → domain-request.
    @raise Invalid_argument on [Beyond] — no coordination-free strategy
    exists (that is the paper's point). *)

val compile : level:Hierarchy.level -> Query.t -> compiled

val coordinated : Query.t -> compiled
(** The coordinated fallback: {!Strategies.Barrier} under the original
    model ([Id] and [All], no policy relations). Computes {e any} query
    correctly on any policy, but every output's causal cone contains a
    heard-from-all-nodes cut — the empirically-coordinated complement of
    {!compile}, at level [Beyond]. *)

val compile_any : level:Hierarchy.level -> Query.t -> compiled
(** {!compile}, except that [Beyond] falls back to {!coordinated}
    instead of raising. *)

val compile_program :
  ?bounds:Monotone.Checker.bounds -> ?level:Hierarchy.level ->
  Datalog.Program.t -> compiled
(** Level defaults to the program's syntactic placement
    ({!Hierarchy.of_fragment}); when that is [Beyond] the empirical
    placement is tried before giving up. *)

val compile_program_any :
  ?bounds:Monotone.Checker.bounds -> ?level:Hierarchy.level ->
  Datalog.Program.t -> compiled
(** Like {!compile_program}, but a program that stays [Beyond] even
    empirically compiles to {!coordinated} instead of raising. *)
