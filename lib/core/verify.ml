open Relational

type report = {
  consistent : bool;
  coordination_free : bool;
  runs : int;
  messages_total : int;
  transitions_total : int;
}

let check ?schedulers ?max_rounds ?jobs (c : Compile.compiled) ~inputs network =
  let policies =
    Network.Netquery.default_policies
      ~domain_guided_only:c.Compile.domain_guided_only
      c.Compile.query.Query.input network
  in
  let verdicts =
    List.map
      (fun input ->
        Network.Netquery.check ?schedulers ~policies ?max_rounds ?jobs
          ~variant:c.Compile.variant ~transducer:c.Compile.transducer
          ~query:c.Compile.query ~input network)
      inputs
  in
  let consistent = List.for_all Network.Netquery.consistent verdicts in
  let coordination_free =
    List.for_all
      (fun input ->
        Network.Coordination.heartbeat_witness ~variant:c.Compile.variant
          ~transducer:c.Compile.transducer ~query:c.Compile.query ~input
          network
        <> None)
      inputs
  in
  let all_runs = List.concat_map (fun v -> v.Network.Netquery.runs) verdicts in
  {
    consistent;
    coordination_free;
    runs = List.length all_runs;
    messages_total =
      List.fold_left
        (fun acc (_, r) -> acc + r.Network.Run.messages_sent)
        0 all_runs;
    transitions_total =
      List.fold_left
        (fun acc (_, r) -> acc + r.Network.Run.transitions)
        0 all_runs;
  }

let pp_report ppf r =
  Format.fprintf ppf
    "consistent=%b coordination-free=%b runs=%d messages=%d transitions=%d"
    r.consistent r.coordination_free r.runs r.messages_total
    r.transitions_total
