open Relational

type compiled = {
  level : Hierarchy.level;
  query : Query.t;
  transducer : Network.Transducer.t;
  variant : Network.Config.variant;
  domain_guided_only : bool;
}

let strategy_for (level : Hierarchy.level) q =
  match level with
  | Hierarchy.Monotone -> Strategies.Broadcast.transducer q
  | Hierarchy.Domain_distinct -> Strategies.Absence.transducer q
  | Hierarchy.Domain_disjoint -> Strategies.Domain_request.transducer q
  | Hierarchy.Beyond ->
    invalid_arg
      (Printf.sprintf
         "Compile.strategy_for: %s is outside Mdisjoint; no coordination-free \
          strategy exists"
         q.Query.name)

let compile ~level q =
  {
    level;
    query = q;
    transducer = strategy_for level q;
    variant =
      (match level with
      | Hierarchy.Monotone -> Network.Config.oblivious
      | _ -> Network.Config.policy_aware);
    domain_guided_only = level = Hierarchy.Domain_disjoint;
  }

(* The coordinated complement of [compile]: queries outside Mdisjoint
   have no coordination-free strategy (that is the paper's point), but
   the barrier strategy still computes them — at the price of the
   heard-from-all-nodes cut that {!Network.Detect} observes. It needs no
   policy relations: the original model of Ameloot et al. suffices. *)
let coordinated q =
  {
    level = Hierarchy.Beyond;
    query = q;
    transducer = Strategies.Barrier.transducer q;
    variant = Network.Config.original;
    domain_guided_only = false;
  }

let compile_any ~level q =
  match level with
  | Hierarchy.Beyond -> coordinated q
  | l -> compile ~level:l q

let compile_program ?bounds ?level p =
  let q = Datalog.Program.query ~name:"program" p in
  let level =
    match level with
    | Some l -> l
    | None -> (
      match Hierarchy.of_fragment (Datalog.Program.fragment p) with
      | Hierarchy.Beyond -> Hierarchy.place_empirically ?bounds q
      | l -> l)
  in
  compile ~level q

let compile_program_any ?bounds ?level p =
  let q = Datalog.Program.query ~name:"program" p in
  let level =
    match level with
    | Some l -> l
    | None -> (
      match Hierarchy.of_fragment (Datalog.Program.fragment p) with
      | Hierarchy.Beyond -> Hierarchy.place_empirically ?bounds q
      | l -> l)
  in
  compile_any ~level q
