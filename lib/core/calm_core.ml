(** The paper's primary contribution as a library: the refined CALM
    hierarchy (weaker monotonicity classes ↔ coordination-free transducer
    models ↔ Datalog fragments), a compiler from queries to
    coordination-free transducers, and verification helpers. *)

module Hierarchy = Hierarchy
module Figure2 = Figure2
module Compile = Compile
module Empirical = Empirical
module Verify = Verify
module Report = Report
