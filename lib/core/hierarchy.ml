type level =
  | Monotone
  | Domain_distinct
  | Domain_disjoint
  | Beyond

let levels = [ Monotone; Domain_distinct; Domain_disjoint; Beyond ]

let to_string = function
  | Monotone -> "monotone"
  | Domain_distinct -> "domain-distinct-monotone"
  | Domain_disjoint -> "domain-disjoint-monotone"
  | Beyond -> "beyond-Mdisjoint"

let monotonicity_class = function
  | Monotone -> "M"
  | Domain_distinct -> "Mdistinct"
  | Domain_disjoint -> "Mdisjoint"
  | Beyond -> "C"

let transducer_model = function
  | Monotone -> "original"
  | Domain_distinct -> "policy-aware"
  | Domain_disjoint -> "domain-guided"
  | Beyond -> "none (coordination required)"

let datalog_fragment = function
  | Monotone -> "Datalog(!=)"
  | Domain_distinct -> "SP-Datalog"
  | Domain_disjoint -> "semicon-Datalog^neg"
  | Beyond -> "Datalog^neg"

let rank = function
  | Monotone -> 0
  | Domain_distinct -> 1
  | Domain_disjoint -> 2
  | Beyond -> 3

let leq a b = rank a <= rank b

let of_fragment (f : Datalog.Fragment.t) =
  match f with
  | Datalog.Fragment.Positive | Datalog.Fragment.Positive_ineq -> Monotone
  | Datalog.Fragment.Semi_positive -> Domain_distinct
  | Datalog.Fragment.Connected_stratified
  | Datalog.Fragment.Semi_connected_stratified -> Domain_disjoint
  | Datalog.Fragment.Stratified | Datalog.Fragment.Unstratifiable -> Beyond

let place_empirically ?bounds ?jobs q =
  let p = Monotone.Checker.place ?bounds ?jobs q in
  let open Monotone.Checker in
  if not (is_violation p.plain) then Monotone
  else if not (is_violation p.distinct) then Domain_distinct
  else if not (is_violation p.disjoint) then Domain_disjoint
  else Beyond

let placement_of_program ?bounds ?jobs p =
  let syntactic = of_fragment (Datalog.Program.fragment p) in
  let q = Datalog.Program.query ~name:"program" p in
  (syntactic, place_empirically ?bounds ?jobs q)
