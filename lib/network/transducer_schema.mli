(** Policy-aware transducer schemas (Section 4.1.2).

    [Υ = (Υin, Υout, Υmsg, Υmem, Υsys)] with pairwise disjoint relation
    names, where the system schema is determined by the input schema:
    [Υsys = {Id/1, All/1, MyAdom/1} ∪ {policy_R/k | R/k ∈ Υin}]. *)

open Relational

type t = private {
  input : Schema.t;
  output : Schema.t;
  message : Schema.t;
  memory : Schema.t;
  system : Schema.t;
}

(** ["Id"] *)
val id_rel : string

(** ["All"] *)
val all_rel : string

(** ["MyAdom"] *)
val myadom_rel : string

val policy_rel : string -> string
(** [policy_rel "E" = "policy_E"]. *)

val system_schema : Schema.t -> Schema.t
(** The [Υsys] induced by an input schema. *)

val make :
  input:Schema.t -> output:Schema.t -> ?message:Schema.t ->
  ?memory:Schema.t -> unit -> t
(** @raise Invalid_argument when any two component schemas (including the
    induced system schema) share a relation name. *)

val combined : t -> Schema.t
(** Union of all five schemas: the input schema of the transducer
    queries. *)

val visible_state : t -> Schema.t
(** [Υout ∪ Υmem]: what a node stores across transitions. *)
