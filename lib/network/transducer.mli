(** Policy-aware relational transducers (Section 4.1.2).

    A transducer is a quadruple of queries [(Q_out, Q_ins, Q_del, Q_snd)]
    over the combined schema, producing respectively output facts, memory
    insertions, memory deletions, and messages. Queries can be given as
    OCaml functions or as Datalog¬ programs. *)

open Relational

type t = {
  schema : Transducer_schema.t;
  q_out : Instance.t -> Instance.t;
  q_ins : Instance.t -> Instance.t;
  q_del : Instance.t -> Instance.t;
  q_snd : Instance.t -> Instance.t;
}

val make :
  schema:Transducer_schema.t ->
  ?out:(Instance.t -> Instance.t) ->
  ?ins:(Instance.t -> Instance.t) ->
  ?del:(Instance.t -> Instance.t) ->
  ?snd:(Instance.t -> Instance.t) ->
  unit -> t
(** Omitted queries are constantly empty. Results are clipped to the
    target schemas ([Υout], [Υmem], [Υmem], [Υmsg] respectively) at
    transition time. *)

val of_datalog :
  schema:Transducer_schema.t ->
  ?out:string -> ?ins:string -> ?del:string -> ?snd:string ->
  unit -> t
(** Each component is the source text of a stratified Datalog¬ program
    evaluated on the transition's visible instance [D]. The component's
    result is read off relations with a reserved prefix — [Out_R], [Ins_R],
    [Del_R], [Snd_R] — which is stripped, the fact landing in relation [R]
    of the corresponding target schema ([Υout], [Υmem], [Υmem], [Υmsg]).
    The namespacing separates "what the query derives" from "what is
    currently stored", which matters for deletion queries. Programs may
    use any other helper idb relations; they are discarded after the
    transition (persistent state lives in [Υmem] only).
    @raise Invalid_argument on parse/stratification errors. *)
