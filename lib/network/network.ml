(** Relational transducer networks (Section 4 of the paper): distribution
    policies, transducer schemas and transducers, the asynchronous
    transition semantics, fair schedulers, query computation, and the
    operational coordination-freeness test. *)

module Policy = Policy
module Transducer_schema = Transducer_schema
module Transducer = Transducer
module Config = Config
module Causal = Causal
module Trace = Trace
module Fault = Fault
module Run = Run
module Provenance = Provenance
module Detect = Detect
module Netquery = Netquery
module Coordination = Coordination
module Explore = Explore
