open Relational

type partition = {
  from_round : int;
  rounds : int;
  groups : Value.t list list;
}

type plan = {
  seed : int;
  dup_prob : float;
  dup_copies : int;
  loss_prob : float;
  loss_delay : int;
  horizon : int;
  crashes : (Value.t * int) list;
  partitions : partition list;
}

let none =
  {
    seed = 0;
    dup_prob = 0.;
    dup_copies = 2;
    loss_prob = 0.;
    loss_delay = 2;
    horizon = 8;
    crashes = [];
    partitions = [];
  }

let is_none p =
  p.dup_prob <= 0. && p.loss_prob <= 0. && p.crashes = [] && p.partitions = []

let default =
  {
    none with
    seed = 7;
    dup_prob = 0.4;
    dup_copies = 3;
    loss_prob = 0.25;
    loss_delay = 2;
    crashes = [ (Value.int 2, 4) ];
    partitions =
      [
        {
          from_round = 2;
          rounds = 3;
          groups = [ [ Value.int 1 ]; [ Value.int 2; Value.int 3 ] ];
        };
      ];
  }

(* -- plan syntax ----------------------------------------------------- *)

let float_to_string f =
  (* Shortest round-tripping decimal keeps to_string canonical. *)
  let s = Printf.sprintf "%.12g" f in
  s

let to_string p =
  let buf = Buffer.create 64 in
  let clause s =
    if Buffer.length buf > 0 then Buffer.add_char buf ';';
    Buffer.add_string buf s
  in
  clause (Printf.sprintf "seed=%d" p.seed);
  if p.dup_prob > 0. then
    clause
      (Printf.sprintf "dup=%sx%d" (float_to_string p.dup_prob) p.dup_copies);
  if p.loss_prob > 0. then
    clause
      (Printf.sprintf "loss=%s:%d" (float_to_string p.loss_prob) p.loss_delay);
  clause (Printf.sprintf "horizon=%d" p.horizon);
  List.iter
    (fun (n, r) ->
      clause (Printf.sprintf "crash=%s@%d" (Value.to_string n) r))
    p.crashes;
  List.iter
    (fun part ->
      clause
        (Printf.sprintf "part=%s@%d+%d"
           (String.concat "|"
              (List.map
                 (fun g -> String.concat "," (List.map Value.to_string g))
                 part.groups))
           part.from_round part.rounds))
    p.partitions;
  Buffer.contents buf

let pp ppf p = Format.pp_print_string ppf (to_string p)

let of_string s =
  let ( let* ) = Result.bind in
  let error fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let int_of name v =
    match int_of_string_opt (String.trim v) with
    | Some i -> Ok i
    | None -> error "faults: %s is not an integer: %S" name v
  in
  let float_of name v =
    match float_of_string_opt (String.trim v) with
    | Some f when f >= 0. && f <= 1. -> Ok f
    | Some _ -> error "faults: %s must be a probability in [0,1]: %S" name v
    | None -> error "faults: %s is not a number: %S" name v
  in
  let node_of v =
    let* i = int_of "node" v in
    Ok (Value.int i)
  in
  let split2 sep s =
    match String.index_opt s sep with
    | None -> (s, None)
    | Some i ->
      ( String.sub s 0 i,
        Some (String.sub s (i + 1) (String.length s - i - 1)) )
  in
  let clause p c =
    match split2 '=' (String.trim c) with
    | _, None -> error "faults: clause without '=': %S" c
    | "seed", Some v ->
      let* seed = int_of "seed" v in
      Ok { p with seed }
    | "horizon", Some v ->
      let* horizon = int_of "horizon" v in
      if horizon < 0 then error "faults: horizon must be >= 0"
      else Ok { p with horizon }
    | "dup", Some v ->
      let prob, copies = split2 'x' v in
      let* dup_prob = float_of "dup probability" prob in
      let* dup_copies =
        match copies with None -> Ok 2 | Some c -> int_of "dup copies" c
      in
      if dup_copies < 2 then error "faults: dup copies must be >= 2"
      else Ok { p with dup_prob; dup_copies }
    | "loss", Some v ->
      let prob, delay = split2 ':' v in
      let* loss_prob = float_of "loss probability" prob in
      let* loss_delay =
        match delay with None -> Ok 2 | Some d -> int_of "loss delay" d
      in
      if loss_delay < 1 then error "faults: loss delay must be >= 1"
      else Ok { p with loss_prob; loss_delay }
    | "crash", Some v -> (
      match split2 '@' v with
      | _, None -> error "faults: crash clause needs node@round: %S" v
      | n, Some r ->
        let* node = node_of n in
        let* round = int_of "crash round" r in
        if round < 0 then error "faults: crash round must be >= 0"
        else Ok { p with crashes = p.crashes @ [ (node, round) ] })
    | "part", Some v -> (
      match split2 '@' v with
      | _, None -> error "faults: part clause needs groups@round+rounds: %S" v
      | gs, Some timing ->
        let from_s, rounds_s = split2 '+' timing in
        let* from_round = int_of "partition round" from_s in
        let* rounds =
          match rounds_s with
          | None -> Ok 2
          | Some r -> int_of "partition duration" r
        in
        let* groups =
          List.fold_left
            (fun acc g ->
              let* acc = acc in
              let* nodes =
                List.fold_left
                  (fun acc n ->
                    let* acc = acc in
                    let* node = node_of n in
                    Ok (node :: acc))
                  (Ok [])
                  (String.split_on_char ',' g)
              in
              Ok (List.rev nodes :: acc))
            (Ok [])
            (String.split_on_char '|' gs)
        in
        let groups = List.rev groups in
        if from_round < 0 || rounds < 1 then
          error "faults: partition needs round >= 0 and duration >= 1"
        else
          Ok
            {
              p with
              partitions = p.partitions @ [ { from_round; rounds; groups } ];
            })
    | key, Some _ -> error "faults: unknown clause %S" key
  in
  List.fold_left
    (fun p c ->
      let* p = p in
      if String.trim c = "" then Ok p else clause p c)
    (Ok none)
    (String.split_on_char ';' s)

(* -- telemetry ------------------------------------------------------- *)

let m_dup = Observe.Metrics.counter "network.dup_deliveries"
let m_dropped = Observe.Metrics.counter "network.dropped"
let m_crashes = Observe.Metrics.counter "network.crashes"
let m_partition_rounds = Observe.Metrics.counter "network.partition_rounds"

(* -- per-run state --------------------------------------------------- *)

type held_copy = {
  recipient : Value.t;
  fact : Fact.t;
  copies : int;
  release : int;
  stamps : Causal.held option;
  depth : int;
}

type state = {
  plan : plan;
  net_size : int;
  rng : Random.State.t;
  mutable transitions : int;
  mutable held : held_copy list;
  mutable log : Fact.Set.t Value.Map.t;
  mutable crashes : (Value.t * int) list;
  mutable last_round : int;
}

let start plan ~network =
  {
    plan;
    net_size = max 1 (List.length network);
    rng = Random.State.make [| plan.seed |];
    transitions = 0;
    held = [];
    log = Value.Map.empty;
    crashes = plan.crashes;
    last_round = -1;
  }

let round st = st.transitions / st.net_size

let tick st = st.transitions <- st.transitions + 1

let partition_active_at plan r =
  List.exists
    (fun p -> r >= p.from_round && r < p.from_round + p.rounds)
    plan.partitions

let note_round st =
  let r = round st in
  if r > st.last_round then begin
    for r' = st.last_round + 1 to r do
      if partition_active_at st.plan r' then
        Observe.Metrics.incr m_partition_rounds
    done;
    st.last_round <- r
  end

let draw_dup st ~sends =
  let p = st.plan in
  if sends > 0 && p.dup_prob > 0. && round st < p.horizon then
    if Random.State.float st.rng 1.0 < p.dup_prob then begin
      (* [sends] = (fact, recipient) copy groups: count the extra copies
         actually enqueued. *)
      Observe.Metrics.incr ~by:((p.dup_copies - 1) * sends) m_dup;
      p.dup_copies
    end
    else 1
  else 1

let group_of groups n =
  let rec go i = function
    | [] -> None
    | g :: rest ->
      if List.exists (Value.equal n) g then Some i else go (i + 1) rest
  in
  go 0 groups

let blocks st ~sender ~recipient =
  let r = round st in
  List.fold_left
    (fun acc p ->
      match acc with
      | Some _ -> acc
      | None ->
        if r >= p.from_round && r < p.from_round + p.rounds then
          let gs = group_of p.groups sender
          and gr = group_of p.groups recipient in
          (* A node in no group is its own singleton class, disconnected
             from everything else while the partition is up. *)
          let separated =
            match (gs, gr) with
            | Some a, Some b -> a <> b
            | None, None -> not (Value.equal sender recipient)
            | _ -> true
          in
          if separated then Some (p.from_round + p.rounds) else None
        else None)
    None st.plan.partitions

let draw_loss st =
  let p = st.plan in
  let r = round st in
  if p.loss_prob > 0. && r < p.horizon then
    if Random.State.float st.rng 1.0 < p.loss_prob then
      Some (r + p.loss_delay)
    else None
  else None

let add_held st h =
  Observe.Metrics.incr ~by:h.copies m_dropped;
  st.held <- st.held @ [ h ]

let take_due st =
  let r = round st in
  let due, rest = List.partition (fun h -> h.release <= r) st.held in
  st.held <- rest;
  due

let record_delivery st ~node facts =
  if not (Fact.Set.is_empty facts) then
    st.log <-
      Value.Map.update node
        (fun s ->
          Some (Fact.Set.union facts (Option.value s ~default:Fact.Set.empty)))
        st.log

let crash_due st ~node =
  let r = round st in
  let due, rest =
    List.partition
      (fun (n, cr) -> Value.equal n node && cr <= r)
      st.crashes
  in
  st.crashes <- rest;
  if due <> [] then Observe.Metrics.incr ~by:(List.length due) m_crashes;
  due <> []

let redelivery st ~node =
  match Value.Map.find_opt node st.log with
  | None -> []
  | Some s -> Fact.Set.elements s

let quiescent st =
  let r = round st in
  let p = st.plan in
  st.held = [] && st.crashes = []
  && List.for_all (fun part -> r >= part.from_round + part.rounds) p.partitions
  && (p.loss_prob <= 0. || r >= p.horizon)

let held_pending st =
  List.fold_left (fun acc h -> acc + h.copies) 0 st.held

let crashes_pending st = List.length st.crashes
