open Relational

type stamp = {
  lamport : int;
  vector : (Value.t * int) list;
  origins : (Fact.t * int) list;
}

type clock = { lam : int; vec : int Value.Map.t }

(* Per recipient, per fact: the FIFO queue of pending (send index, send
   clock) stamps, oldest first. The queue length always equals the
   multiplicity of the fact in that node's buffer. *)
type pending = (int * clock) list Fact.Map.t

type t = {
  network : Value.t list;
  clocks : clock Value.Map.t;
  inflight : pending Value.Map.t;
  (* Per recipient, per fact: the stamp of the last send matched to a
     delivery — the causal origin a fault-layer redelivery reuses, so a
     crash-recovery copy points at the send event it retransmits. *)
  log : (int * clock) Fact.Map.t Value.Map.t;
}

let zero = { lam = 0; vec = Value.Map.empty }

let init network =
  {
    network;
    clocks =
      List.fold_left
        (fun m n -> Value.Map.add n zero m)
        Value.Map.empty network;
    inflight =
      List.fold_left
        (fun m n -> Value.Map.add n Fact.Map.empty m)
        Value.Map.empty network;
    log = Value.Map.empty;
  }

let join c1 c2 =
  {
    lam = max c1.lam c2.lam;
    vec = Value.Map.union (fun _ a b -> Some (max a b)) c1.vec c2.vec;
  }

let step ?(dup = 1) t ~node ~index ~delivered ~sent =
  let own =
    match Value.Map.find_opt node t.clocks with Some c -> c | None -> zero
  in
  let pend =
    match Value.Map.find_opt node t.inflight with
    | Some p -> p
    | None -> Fact.Map.empty
  in
  (* Pop the oldest pending send for each delivered copy and join its
     clock into the event's causal past. *)
  let pend, origins_rev, joined, log_x =
    List.fold_left
      (fun (pend, origins, acc, log_x) f ->
        match Fact.Map.find_opt f pend with
        | Some ((idx, c) :: rest) ->
          let pend =
            if rest = [] then Fact.Map.remove f pend
            else Fact.Map.add f rest pend
          in
          (pend, (f, idx) :: origins, join acc c,
           Fact.Map.add f (idx, c) log_x)
        | Some [] | None ->
          invalid_arg
            (Printf.sprintf
               "Causal.step: delivered copy of %s at node %s has no \
                pending send"
               (Fact.to_string f) (Value.to_string node)))
      (pend, [], own,
       match Value.Map.find_opt node t.log with
       | Some l -> l
       | None -> Fact.Map.empty)
      delivered
  in
  let log =
    if delivered = [] then t.log else Value.Map.add node log_x t.log
  in
  let tick =
    {
      lam = joined.lam + 1;
      vec =
        Value.Map.update node
          (function None -> Some 1 | Some k -> Some (k + 1))
          joined.vec;
    }
  in
  let inflight = Value.Map.add node pend t.inflight in
  (* [Config.transition] broadcasts every sent fact to every other node:
     enqueue one pending stamp per (fact, recipient) copy — [dup] stamps
     when the fault layer duplicated this transition's sends. *)
  let entries = List.init dup (fun _ -> (index, tick)) in
  let inflight =
    if sent = [] then inflight
    else
      List.fold_left
        (fun inflight y ->
          if Value.equal y node then inflight
          else
            Value.Map.update y
              (fun p ->
                let p = Option.value p ~default:Fact.Map.empty in
                Some
                  (List.fold_left
                     (fun p f ->
                       Fact.Map.update f
                         (fun q ->
                           Some (Option.value q ~default:[] @ entries))
                         p)
                     p sent))
              inflight)
        inflight t.network
  in
  let t =
    { t with clocks = Value.Map.add node tick t.clocks; inflight; log }
  in
  ( t,
    {
      lamport = tick.lam;
      vector = Value.Map.bindings tick.vec;
      origins = List.rev origins_rev;
    } )

(* -- fault hooks ----------------------------------------------------- *)

type held = (int * clock) list

let hold t ~recipient ~fact ~copies =
  let pend =
    match Value.Map.find_opt recipient t.inflight with
    | Some p -> p
    | None -> Fact.Map.empty
  in
  match Fact.Map.find_opt fact pend with
  | None ->
    invalid_arg
      (Printf.sprintf "Causal.hold: no pending send of %s to %s"
         (Fact.to_string fact) (Value.to_string recipient))
  | Some q ->
    let n = List.length q in
    if n < copies then
      invalid_arg
        (Printf.sprintf "Causal.hold: only %d pending copies of %s to %s" n
           (Fact.to_string fact) (Value.to_string recipient))
    else
      (* The held copies are the newest entries: holds strike the sends
         of the transition that just ran. *)
      let kept = List.filteri (fun i _ -> i < n - copies) q in
      let taken = List.filteri (fun i _ -> i >= n - copies) q in
      let pend =
        if kept = [] then Fact.Map.remove fact pend
        else Fact.Map.add fact kept pend
      in
      ({ t with inflight = Value.Map.add recipient pend t.inflight }, taken)

let release t ~recipient ~fact held =
  let pend =
    match Value.Map.find_opt recipient t.inflight with
    | Some p -> p
    | None -> Fact.Map.empty
  in
  let pend =
    Fact.Map.update fact
      (fun q -> Some (Option.value q ~default:[] @ held))
      pend
  in
  { t with inflight = Value.Map.add recipient pend t.inflight }

let redeliver t ~node ~facts =
  let log_x =
    match Value.Map.find_opt node t.log with
    | Some l -> l
    | None -> Fact.Map.empty
  in
  let pend =
    match Value.Map.find_opt node t.inflight with
    | Some p -> p
    | None -> Fact.Map.empty
  in
  let pend =
    List.fold_left
      (fun pend f ->
        match Fact.Map.find_opt f log_x with
        | None ->
          invalid_arg
            (Printf.sprintf
               "Causal.redeliver: %s was never delivered to %s"
               (Fact.to_string f) (Value.to_string node))
        | Some entry ->
          Fact.Map.update f
            (fun q -> Some (Option.value q ~default:[] @ [ entry ]))
            pend)
      pend facts
  in
  { t with inflight = Value.Map.add node pend t.inflight }

(* -- happens-before on recorded vectors ----------------------------- *)

let vector_get v n =
  match List.assoc_opt n v with Some k -> k | None -> 0

let vector_leq v1 v2 = List.for_all (fun (n, k) -> k <= vector_get v2 n) v1

let vector_equal v1 v2 = vector_leq v1 v2 && vector_leq v2 v1

let hb e e' =
  vector_leq e.vector e'.vector && not (vector_equal e.vector e'.vector)

let concurrent e e' = (not (hb e e')) && not (hb e' e)

let support v = List.filter_map (fun (n, k) -> if k > 0 then Some n else None) v
