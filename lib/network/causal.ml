open Relational

type stamp = {
  lamport : int;
  vector : (Value.t * int) list;
  origins : (Fact.t * int) list;
}

type clock = { lam : int; vec : int Value.Map.t }

(* Per recipient, per fact: the FIFO queue of pending (send index, send
   clock) stamps, oldest first. The queue length always equals the
   multiplicity of the fact in that node's buffer. *)
type pending = (int * clock) list Fact.Map.t

type t = {
  network : Value.t list;
  clocks : clock Value.Map.t;
  inflight : pending Value.Map.t;
}

let zero = { lam = 0; vec = Value.Map.empty }

let init network =
  {
    network;
    clocks =
      List.fold_left
        (fun m n -> Value.Map.add n zero m)
        Value.Map.empty network;
    inflight =
      List.fold_left
        (fun m n -> Value.Map.add n Fact.Map.empty m)
        Value.Map.empty network;
  }

let join c1 c2 =
  {
    lam = max c1.lam c2.lam;
    vec = Value.Map.union (fun _ a b -> Some (max a b)) c1.vec c2.vec;
  }

let step t ~node ~index ~delivered ~sent =
  let own =
    match Value.Map.find_opt node t.clocks with Some c -> c | None -> zero
  in
  let pend =
    match Value.Map.find_opt node t.inflight with
    | Some p -> p
    | None -> Fact.Map.empty
  in
  (* Pop the oldest pending send for each delivered copy and join its
     clock into the event's causal past. *)
  let pend, origins_rev, joined =
    List.fold_left
      (fun (pend, origins, acc) f ->
        match Fact.Map.find_opt f pend with
        | Some ((idx, c) :: rest) ->
          let pend =
            if rest = [] then Fact.Map.remove f pend
            else Fact.Map.add f rest pend
          in
          (pend, (f, idx) :: origins, join acc c)
        | Some [] | None ->
          invalid_arg
            (Printf.sprintf
               "Causal.step: delivered copy of %s at node %s has no \
                pending send"
               (Fact.to_string f) (Value.to_string node)))
      (pend, [], own) delivered
  in
  let tick =
    {
      lam = joined.lam + 1;
      vec =
        Value.Map.update node
          (function None -> Some 1 | Some k -> Some (k + 1))
          joined.vec;
    }
  in
  let inflight = Value.Map.add node pend t.inflight in
  (* [Config.transition] broadcasts every sent fact to every other node:
     enqueue one pending stamp per (fact, recipient) copy. *)
  let inflight =
    if sent = [] then inflight
    else
      List.fold_left
        (fun inflight y ->
          if Value.equal y node then inflight
          else
            Value.Map.update y
              (fun p ->
                let p = Option.value p ~default:Fact.Map.empty in
                Some
                  (List.fold_left
                     (fun p f ->
                       Fact.Map.update f
                         (fun q ->
                           Some (Option.value q ~default:[] @ [ (index, tick) ]))
                         p)
                     p sent))
              inflight)
        inflight t.network
  in
  let t = { t with clocks = Value.Map.add node tick t.clocks; inflight } in
  ( t,
    {
      lamport = tick.lam;
      vector = Value.Map.bindings tick.vec;
      origins = List.rev origins_rev;
    } )

(* -- happens-before on recorded vectors ----------------------------- *)

let vector_get v n =
  match List.assoc_opt n v with Some k -> k | None -> 0

let vector_leq v1 v2 = List.for_all (fun (n, k) -> k <= vector_get v2 n) v1

let vector_equal v1 v2 = vector_leq v1 v2 && vector_leq v2 v1

let hb e e' =
  vector_leq e.vector e'.vector && not (vector_equal e.vector e'.vector)

let concurrent e e' = (not (hb e e')) && not (hb e' e)

let support v = List.filter_map (fun (n, k) -> if k > 0 then Some n else None) v
