(** Logical clocks for network runs.

    Every transition of a transducer network is an {e event}; an event
    [e] happens-before [e'] when [e] precedes [e'] at the same node
    (program order) or a message copy sent by [e] is delivered by [e']
    (message order), closed transitively. This module maintains, along a
    run, the Lamport clock and vector clock of each event plus the exact
    send event behind every delivered message copy, so that the
    happens-before relation of the run can be reconstructed from its
    trace alone.

    Message buffers are multisets and copies of the same fact are
    indistinguishable, so deliveries are matched to pending sends
    oldest-first (per fact, per recipient). This FIFO matching is the
    canonical choice: any other matching yields an isomorphic
    happens-before relation, and oldest-first makes the stamps
    deterministic. *)

open Relational

(** The stamp of one event, as recorded in a trace. The vector is a
    sorted association list over the network's nodes (absent = 0). *)
type stamp = {
  lamport : int;  (** Lamport clock, ≥ 1 *)
  vector : (Value.t * int) list;
      (** vector clock: for each node, how many of its transitions are in
          this event's causal past (inclusive) *)
  origins : (Fact.t * int) list;
      (** one entry per delivered message copy: the index of the send
          event it was matched to *)
}

type t
(** The evolving causal state of a run: per-node clocks plus the pending
    (sent, not yet delivered) message stamps. *)

val init : Distributed.network -> t

val step :
  ?dup:int ->
  t -> node:Value.t -> index:int -> delivered:Fact.t list ->
  sent:Fact.t list -> t * stamp
(** Account for one transition: [delivered] lists the consumed message
    copies (with multiplicity, as {!Relational.Multiset.to_list}),
    [sent] the facts broadcast to every other node, [index] the event's
    transition number. [dup] (default 1) is the fault layer's
    duplication factor: that many pending stamps are enqueued per
    (sent fact, recipient), matching the duplicated buffer copies.
    @raise Invalid_argument if a delivered copy has no pending send —
    i.e. the calls do not replay an actual run from its initial
    configuration. *)

(** {1 Fault hooks}

    The fault layer ({!Fault}, driven by {!Run}) keeps the invariant
    that each (recipient, fact) pending queue is exactly as long as the
    fact's multiplicity in the recipient's buffer. Every buffer
    manipulation it performs is mirrored here. *)

type held
(** Pending stamps removed from a queue by {!hold}, to be re-enqueued by
    {!release} when the lost or partitioned copies are retransmitted. *)

val hold : t -> recipient:Value.t -> fact:Fact.t -> copies:int -> t * held
(** Remove the [copies] newest pending stamps of [fact] at [recipient]
    (the sends of the transition that just ran).
    @raise Invalid_argument if fewer copies are pending. *)

val release : t -> recipient:Value.t -> fact:Fact.t -> held -> t
(** Re-enqueue stamps taken by {!hold}: the retransmitted copies carry
    their original send events, so the happens-before edge points at the
    send being retransmitted. *)

val redeliver : t -> node:Value.t -> facts:Fact.t list -> t
(** Crash redelivery: for each fact, re-enqueue one pending stamp from
    the internal delivered-origin log (the last send matched to a
    delivery of that fact at [node]).
    @raise Invalid_argument if a fact was never delivered to [node]. *)

(* -- happens-before on recorded vectors ----------------------------- *)

val vector_get : (Value.t * int) list -> Value.t -> int

val vector_leq : (Value.t * int) list -> (Value.t * int) list -> bool
(** Pointwise ≤. *)

val vector_equal : (Value.t * int) list -> (Value.t * int) list -> bool

val hb : stamp -> stamp -> bool
(** [hb e e']: event [e] happens-before [e'] (strict: vectors ≤ and
    distinct). Distinct events of a run always have distinct vectors, so
    this decides the happens-before relation exactly. *)

val concurrent : stamp -> stamp -> bool
(** Neither [hb e e'] nor [hb e' e]. *)

val support : (Value.t * int) list -> Value.t list
(** The nodes with a nonzero component: exactly the nodes owning at
    least one event in the causal past. *)
