(** Coordination-freeness (Definition 3).

    A transducer that computes [Q] is coordination-free when, for every
    network and input, {e some} policy lets {e some} node compute [Q(I)]
    with only heartbeat transitions (no communication). The proofs always
    use the "ideal" policy making one node responsible for everything —
    which is domain-guided, so the same witness serves the domain-guided
    notion. *)

open Relational

type witness = {
  node : Value.t;
  policy : Policy.t;
  result : Run.result;
}

val heartbeat_witness :
  ?max_steps:int ->
  variant:Config.variant ->
  transducer:Transducer.t ->
  query:Query.t ->
  input:Instance.t ->
  Distributed.network ->
  witness option
(** Searches the network's nodes with the single-node (ideal, domain-
    guided) policy for one whose heartbeat-only prefix already outputs
    [Q(input)]. *)

val is_coordination_free_on :
  ?schedulers:(string * Run.scheduler) list ->
  ?domain_guided_only:bool ->
  ?max_rounds:int ->
  variant:Config.variant ->
  transducer:Transducer.t ->
  query:Query.t ->
  inputs:Instance.t list ->
  Distributed.network ->
  bool
(** Both halves of Definition 3 over a finite sample: (1) the network
    computes [Q] on every input under every scheduler × policy (restricted
    to domain-guided policies when [domain_guided_only]); and (2) a
    heartbeat witness exists for every input. *)
