(** Runs of transducer networks (Section 4.1.3).

    Paper runs are infinite and fair; terminating computations reach
    {e quiescence}: a configuration whose observable evolution is a
    fixpoint. We detect it as two consecutive full-delivery round-robin
    rounds with identical states and buffer supports — from such a point
    the run repeats verbatim forever, so the accumulated output equals
    [out(R)] of every fair continuation.

    Schedulers realize different fair message orders; all of them finish
    with full-delivery round-robin rounds so that runs terminate whenever
    the transducer quiesces. *)

open Relational

type scheduler =
  | Round_robin
      (** each round activates every node once, delivering its whole
          buffer *)
  | Random of { seed : int; steps : int }
      (** [steps] transitions at random nodes delivering random
          submultisets, then round-robin to quiescence *)
  | Stingy of { seed : int; steps : int }
      (** like [Random] but delivers at most one message copy per
          transition — maximal reordering/delay *)
  | Adversarial of { steps : int }
      (** [steps] transitions that greedily maximize causal depth: each
          step delivers the single pending message copy whose send has
          the deepest happens-before chain, so information ping-pongs
          along the longest dependency path the run admits — the
          deterministic adversary that stresses reorder-sensitivity
          hardest. Heartbeats round-robin when nothing is pending; then
          round-robin to quiescence. No RNG: ties break by (node, fact)
          order, so adversarial runs are reproducible without a seed. *)
  | Faulty of { base : scheduler; plan : Fault.plan }
      (** [base] under the fault plan: seeded duplication, loss with
          delayed retransmission, crash/restart from the persistent
          input partition, and healing partitions (see {!Fault}).
          Quiescence is additionally gated on {!Fault.quiescent}, so
          [quiesced = true] means the run survived every fault {e and}
          stabilized afterwards. [Faulty] with {!Fault.none} is
          byte-identical to [base] (result, trace, stable metrics).
          Nesting [Faulty] raises [Invalid_argument]. *)

val scheduler_label : scheduler -> string
(** ["round_robin"], ["random"], ["stingy"], ["adversarial"]; [Faulty]
    appends ["+faults"] to its base label. *)

type result = {
  config : Config.t;
  outputs : Instance.t;
  transitions : int;
  rounds : int;
  messages_sent : int;
  deliveries : int;
  quiesced : bool;
}

val run :
  ?tracer:Trace.collector ->
  ?max_rounds:int ->
  ?heartbeat:float ->
  variant:Config.variant ->
  policy:Policy.t ->
  transducer:Transducer.t ->
  input:Instance.t ->
  scheduler -> result
(** [max_rounds] (default 500) bounds the stabilization phase; a result
    with [quiesced = false] hit the bound. [heartbeat] (seconds, default
    [0.] = off) prints a [\[hb\] round=… transitions=…] progress line on
    stderr at most once per cadence during stabilization. When the
    {!Observe.Series} recorder is enabled, each stabilization round also
    samples [net.round_output_delta], [net.round_pending],
    [net.round_deliveries] and (under faults) [net.round_held] /
    [net.round_crashes_pending] at [tick = round]. *)

val sweep :
  ?jobs:int ->
  ?max_rounds:int ->
  ?heartbeat:float ->
  variant:Config.variant ->
  transducer:Transducer.t ->
  input:Instance.t ->
  (string * Policy.t * scheduler) list ->
  (string * result * Trace.event list) list
(** Run a batch of independent (label, policy, scheduler) sweep cells,
    fanning them across [jobs] domains when [jobs > 1]. Each cell seeds
    its own RNG and traces into a {e private} collector, so the result
    list — events included — is identical to the sequential one and in
    the same order. (Earlier versions dropped traces silently in
    parallel mode; per-cell collectors restore them under any [jobs].)
    Metrics recorded during each cell's run are merged back in cell
    order by {!Parallel.Pool.map}, so stable metric snapshots are
    [jobs]-independent too. Series recorded during a cell get a
    [cell=<label>] label (see {!Observe.Series.with_label}), keeping
    parallel cells' trajectories distinct; [heartbeat] is passed through
    to each cell's {!run}. *)

val heartbeat_prefix :
  ?tracer:Trace.collector ->
  ?max_steps:int ->
  ?heartbeat:float ->
  variant:Config.variant ->
  policy:Policy.t ->
  transducer:Transducer.t ->
  input:Instance.t ->
  node:Value.t ->
  unit -> result
(** A run prefix consisting solely of heartbeat transitions of one node
    (Definition 3's "prefix of only heartbeat transitions"): no message is
    ever read. Stops when the node's state stops changing (or at
    [max_steps], default 200). [outputs] are the node's accumulated output
    facts. [rounds] reports the number of heartbeat steps actually taken
    (each step is its own one-transition round — this used to be
    hardwired to [0]). [quiesced] is [true] iff the node's state reached
    a fixpoint before [max_steps]; [quiesced = false] means the bound was
    hit while the state was still changing. *)
