open Relational

type scheduler =
  | Round_robin
  | Random of { seed : int; steps : int }
  | Stingy of { seed : int; steps : int }

type result = {
  config : Config.t;
  outputs : Instance.t;
  transitions : int;
  rounds : int;
  messages_sent : int;
  deliveries : int;
  quiesced : bool;
}

type counters = {
  mutable n_transitions : int;
  mutable n_messages : int;
  mutable n_deliveries : int;
  (* Causal state is only advanced when a tracer is attached: untraced
     runs pay nothing for the clock machinery. *)
  mutable causal : Causal.t;
}

(* Telemetry (all stable): per-transition tallies live in [Config]; here
   we record the round structure of a run — how many stabilization
   rounds, how much observable output each contributed, and where
   quiescence was reached. *)
let m_rounds = Observe.Metrics.counter "net.rounds"
let m_round_output_delta = Observe.Metrics.histogram "net.round_output_delta"
let m_quiescence_round = Observe.Metrics.gauge "net.quiescence_round"
let m_heartbeat_steps = Observe.Metrics.counter "net.heartbeat_steps"
let m_run = Observe.Metrics.timing "net.run"

let scheduler_label = function
  | Round_robin -> "round_robin"
  | Random _ -> "random"
  | Stingy _ -> "stingy"

let snapshot config =
  ( config.Config.state,
    Value.Map.map Multiset.support config.Config.buffer )

let snapshot_equal (s1, b1) (s2, b2) =
  Value.Map.equal Instance.equal s1 s2 && Value.Map.equal Fact.Set.equal b1 b2

let step ?tracer ~variant ~policy ~transducer ~input counters config node
    deliver =
  let config', stats =
    Config.transition ~variant ~policy ~transducer ~input config ~node
      ~deliver
  in
  counters.n_transitions <- counters.n_transitions + 1;
  counters.n_messages <- counters.n_messages + stats.Config.messages_sent;
  counters.n_deliveries <- counters.n_deliveries + stats.Config.delivered;
  (match tracer with
  | None -> ()
  | Some c ->
    let delivered = Multiset.to_list deliver in
    let sent = Instance.to_list stats.Config.sent_facts in
    let causal', stamp =
      Causal.step counters.causal ~node ~index:counters.n_transitions
        ~delivered ~sent
    in
    counters.causal <- causal';
    Trace.record c
      {
        Trace.index = counters.n_transitions;
        node;
        lamport = stamp.Causal.lamport;
        vector = stamp.Causal.vector;
        origins = stamp.Causal.origins;
        delivered;
        sent;
        output_delta = Instance.to_list stats.Config.output_delta;
      });
  config'

(* One full-delivery round-robin round. *)
let full_round ?tracer ~variant ~policy ~transducer ~input counters config =
  List.fold_left
    (fun config node ->
      let deliver = Config.buffer_of config node in
      step ?tracer ~variant ~policy ~transducer ~input counters config node
        deliver)
    config
    (Policy.network policy)

let random_submultiset st b =
  Multiset.fold
    (fun f n acc ->
      let keep = Random.State.int st (n + 1) in
      Multiset.add ~copies:keep f acc)
    b Multiset.empty

let random_phase ?tracer ~variant ~policy ~transducer ~input ~stingy counters
    st steps config =
  let network = Array.of_list (Policy.network policy) in
  let pick () = network.(Random.State.int st (Array.length network)) in
  let rec go k config =
    if k = 0 then config
    else
      let node = pick () in
      let b = Config.buffer_of config node in
      let deliver =
        if stingy then
          match Multiset.to_list b with
          | [] -> Multiset.empty
          | l ->
            Multiset.add (List.nth l (Random.State.int st (List.length l)))
              Multiset.empty
        else random_submultiset st b
      in
      go (k - 1)
        (step ?tracer ~variant ~policy ~transducer ~input counters config node
           deliver)
  in
  go steps config

let run ?tracer ?(max_rounds = 500) ~variant ~policy ~transducer ~input
    scheduler =
  Observe.Sink.span ~cat:"net"
    ~args:[ ("scheduler", Observe.Json.String (scheduler_label scheduler)) ]
    "net.run"
  @@ fun () ->
  Observe.Metrics.time m_run @@ fun () ->
  let schema = transducer.Transducer.schema in
  let counters =
    {
      n_transitions = 0;
      n_messages = 0;
      n_deliveries = 0;
      causal = Causal.init (Policy.network policy);
    }
  in
  let config0 = Config.start (Policy.network policy) in
  let config0 =
    match scheduler with
    | Round_robin -> config0
    | Random { seed; steps } ->
      random_phase ?tracer ~variant ~policy ~transducer ~input ~stingy:false
        counters
        (Random.State.make [| seed |])
        steps config0
    | Stingy { seed; steps } ->
      random_phase ?tracer ~variant ~policy ~transducer ~input ~stingy:true
        counters
        (Random.State.make [| seed |])
        steps config0
  in
  let rec stabilize rounds prev prev_out config =
    if rounds >= max_rounds then (config, rounds, false)
    else begin
      let config' =
        full_round ?tracer ~variant ~policy ~transducer ~input counters config
      in
      Observe.Metrics.incr m_rounds;
      let out' = Instance.cardinal (Config.outputs schema config') in
      Observe.Metrics.observe m_round_output_delta
        (float_of_int (out' - prev_out));
      let snap = snapshot config' in
      match prev with
      | Some p when snapshot_equal p snap -> (config', rounds + 1, true)
      | _ -> stabilize (rounds + 1) (Some snap) out' config'
    end
  in
  let out0 = Instance.cardinal (Config.outputs schema config0) in
  let config, rounds, quiesced = stabilize 0 None out0 config0 in
  if quiesced then
    Observe.Metrics.set m_quiescence_round (float_of_int rounds);
  {
    config;
    outputs = Config.outputs schema config;
    transitions = counters.n_transitions;
    rounds;
    messages_sent = counters.n_messages;
    deliveries = counters.n_deliveries;
    quiesced;
  }

(* Run a batch of independent (label, policy, scheduler) sweep cells,
   optionally fanning them across a Domain pool. Each cell owns its RNG
   state (seeded per scheduler) and its own trace collector, so cells are
   independent and the result list is identical to the sequential one, in
   the same order — events included: earlier versions silently dropped
   tracing in parallel mode; now every cell traces into a private
   collector and the merged list carries each cell's events. *)
let sweep ?jobs ?max_rounds ~variant ~transducer ~input cells =
  let run_cell (label, policy, scheduler) =
    let tracer = Trace.collector () in
    let result =
      run ~tracer ?max_rounds ~variant ~policy ~transducer ~input scheduler
    in
    (label, result, Trace.events tracer)
  in
  match jobs with
  | Some j when j > 1 ->
    Parallel.Pool.with_pool ~jobs:j (fun pool ->
        Parallel.Pool.map pool run_cell cells)
  | _ -> List.map run_cell cells

let heartbeat_prefix ?tracer ?(max_steps = 200) ~variant ~policy ~transducer
    ~input ~node () =
  let counters =
    {
      n_transitions = 0;
      n_messages = 0;
      n_deliveries = 0;
      causal = Causal.init (Policy.network policy);
    }
  in
  let config0 = Config.start (Policy.network policy) in
  let rec go k config =
    if k >= max_steps then (config, false)
    else
      let config' =
        step ?tracer ~variant ~policy ~transducer ~input counters config node
          Multiset.empty
      in
      if Instance.equal (Config.state_of config' node) (Config.state_of config node)
      then (config', true)
      else go (k + 1) config'
  in
  let config, quiesced = go 0 config0 in
  Observe.Metrics.incr ~by:counters.n_transitions m_heartbeat_steps;
  {
    config;
    outputs = Config.outputs transducer.Transducer.schema config;
    transitions = counters.n_transitions;
    (* Each heartbeat step is a one-transition "round" of its own; report
       the number of steps actually taken (this used to be hardwired to
       0). *)
    rounds = counters.n_transitions;
    messages_sent = counters.n_messages;
    deliveries = counters.n_deliveries;
    quiesced;
  }
