open Relational

type scheduler =
  | Round_robin
  | Random of { seed : int; steps : int }
  | Stingy of { seed : int; steps : int }
  | Adversarial of { steps : int }
  | Faulty of { base : scheduler; plan : Fault.plan }

type result = {
  config : Config.t;
  outputs : Instance.t;
  transitions : int;
  rounds : int;
  messages_sent : int;
  deliveries : int;
  quiesced : bool;
}

type counters = {
  mutable n_transitions : int;
  mutable n_messages : int;
  mutable n_deliveries : int;
  (* Causal state is only advanced when a tracer is attached: untraced
     runs pay nothing for the clock machinery. *)
  mutable causal : Causal.t;
}

(* Telemetry (all stable): per-transition tallies live in [Config]; here
   we record the round structure of a run — how many stabilization
   rounds, how much observable output each contributed, and where
   quiescence was reached. *)
let m_rounds = Observe.Metrics.counter "net.rounds"
let m_round_output_delta = Observe.Metrics.histogram "net.round_output_delta"
let m_quiescence_round = Observe.Metrics.gauge "net.quiescence_round"
let m_heartbeat_steps = Observe.Metrics.counter "net.heartbeat_steps"
let m_run = Observe.Metrics.timing "net.run"

(* Per-round trajectory sampling (Series recorder, gated off by default):
   tick = stabilization round index, so points are keyed by a semantic
   coordinate of the run and merge deterministically across jobs. *)
let sample_round ~fault config ~round ~delta ~deliveries =
  if Observe.Series.is_enabled () then begin
    Observe.Series.sample "net.round_output_delta" ~tick:round
      (float_of_int delta);
    Observe.Series.sample "net.round_pending" ~tick:round
      (float_of_int
         (Value.Map.fold
            (fun _ b acc -> acc + Multiset.size b)
            config.Config.buffer 0));
    Observe.Series.sample "net.round_deliveries" ~tick:round
      (float_of_int deliveries);
    match fault with
    | None -> ()
    | Some st ->
      Observe.Series.sample "net.round_held" ~tick:round
        (float_of_int (Fault.held_pending st));
      Observe.Series.sample "net.round_crashes_pending" ~tick:round
        (float_of_int (Fault.crashes_pending st))
  end

(* Plain heartbeat: a progress line on stderr every [cadence] seconds
   (0 = off). With [--live] the Series recorder additionally emits
   rate/quantile/ETA lines computed from the sampled buffers. *)
type hb = { cadence : float; mutable last : float }

let hb_start cadence = { cadence; last = Unix.gettimeofday () }

let hb_tick hb fmt =
  Printf.ksprintf
    (fun line ->
      if hb.cadence > 0. then begin
        let now = Unix.gettimeofday () in
        if now -. hb.last >= hb.cadence then begin
          hb.last <- now;
          Printf.eprintf "[hb] %s\n%!" line
        end
      end)
    fmt

let rec scheduler_label = function
  | Round_robin -> "round_robin"
  | Random _ -> "random"
  | Stingy _ -> "stingy"
  | Adversarial _ -> "adversarial"
  | Faulty { base; _ } -> scheduler_label base ^ "+faults"

let snapshot config =
  ( config.Config.state,
    Value.Map.map Multiset.support config.Config.buffer )

let snapshot_equal (s1, b1) (s2, b2) =
  Value.Map.equal Instance.equal s1 s2 && Value.Map.equal Fact.Set.equal b1 b2

(* ------------------------------------------------------------------ *)
(* Adversarial scheduling state: a per-(recipient, fact) multiset of
   message depths. A transition's depth is one more than the deepest
   message it consumed (or than the node's previous depth), and its
   sends carry that depth — so greedily delivering the deepest pending
   copy maximizes the causal depth of the run, the adversary that
   stresses reorder-sensitivity the hardest. Deterministic: no RNG,
   ties broken by (node, fact) order. *)

type adv = {
  mutable depths : int list Fact.Map.t Value.Map.t;  (* desc-sorted *)
  mutable node_depth : int Value.Map.t;
  mutable rr : int;  (* heartbeat rotation when nothing is pending *)
}

let adv_init () =
  { depths = Value.Map.empty; node_depth = Value.Map.empty; rr = 0 }

let rec insert_desc d = function
  | [] -> [ d ]
  | x :: _ as l when d >= x -> d :: l
  | x :: rest -> x :: insert_desc d rest

let adv_push a y f ~depth ~copies =
  if copies > 0 then
    a.depths <-
      Value.Map.update y
        (fun m ->
          let m = Option.value m ~default:Fact.Map.empty in
          Some
            (Fact.Map.update f
               (fun l ->
                 let l = Option.value l ~default:[] in
                 Some
                   (List.fold_left
                      (fun l _ -> insert_desc depth l)
                      l
                      (List.init copies (fun i -> i))))
               m))
        a.depths

(* Remove up to [copies] of the deepest entries for (y, f); the deepest
   removed is the consumed depth (0 when none were tracked). *)
let adv_pop a y f ~copies =
  match Value.Map.find_opt y a.depths with
  | None -> 0
  | Some m -> (
    match Fact.Map.find_opt f m with
    | None -> 0
    | Some l ->
      let taken = List.filteri (fun i _ -> i < copies) l in
      let kept = List.filteri (fun i _ -> i >= copies) l in
      let m =
        if kept = [] then Fact.Map.remove f m else Fact.Map.add f kept m
      in
      a.depths <- Value.Map.add y m a.depths;
      (match taken with [] -> 0 | d :: _ -> d))

(* Remove up to [copies] entries of exactly [depth] (the entries a fault
   hold just took out of the buffer). *)
let adv_remove a y f ~depth ~copies =
  match Value.Map.find_opt y a.depths with
  | None -> ()
  | Some m -> (
    match Fact.Map.find_opt f m with
    | None -> ()
    | Some l ->
      let removed = ref 0 in
      let kept =
        List.filter
          (fun d ->
            if d = depth && !removed < copies then begin
              incr removed;
              false
            end
            else true)
          l
      in
      let m =
        if kept = [] then Fact.Map.remove f m else Fact.Map.add f kept m
      in
      a.depths <- Value.Map.add y m a.depths)

(* The deepest pending copy actually present in a buffer; ties resolve
   to the smallest (node, fact) — map folds are in ascending key order,
   and only strictly deeper candidates displace the incumbent. *)
let adv_choose a config =
  Value.Map.fold
    (fun y m best ->
      Fact.Map.fold
        (fun f l best ->
          match l with
          | d :: _ when Multiset.mem f (Config.buffer_of config y) -> (
            match best with
            | Some (bd, _, _) when bd >= d -> best
            | _ -> Some (d, y, f))
          | _ -> best)
        m best)
    a.depths None

(* ------------------------------------------------------------------ *)
(* The per-run runtime: counters and tracer as before, plus the
   optional fault state (Faulty wrapper) and adversarial state. *)

type rt = {
  counters : counters;
  tracer : Trace.collector option;
  fault : Fault.state option;
  adv : adv option;
}

(* One transition of [node], with fault pre-processing (retransmission
   releases, crash/restart), the transition itself ([deliver_of] reads
   the post-fault buffer), and fault post-processing (duplication, loss
   and partition holds), with the causal tracer and the adversarial
   depth structure kept in sync with every buffer change. *)
let do_step rt ~variant ~policy ~transducer ~input config node deliver_of =
  let counters = rt.counters in
  let traced = rt.tracer <> None in
  (* -- fault pre-processing: releases due now, then crash/restart -- *)
  let config, restart, injected =
    match rt.fault with
    | None -> (config, false, [])
    | Some st ->
      Fault.note_round st;
      let config =
        List.fold_left
          (fun config (h : Fault.held_copy) ->
            let buffer =
              Value.Map.update h.Fault.recipient
                (fun b ->
                  Some
                    (Multiset.add ~copies:h.Fault.copies h.Fault.fact
                       (Option.value b ~default:Multiset.empty)))
                config.Config.buffer
            in
            (match h.Fault.stamps with
            | Some held when traced ->
              counters.causal <-
                Causal.release counters.causal ~recipient:h.Fault.recipient
                  ~fact:h.Fault.fact held
            | _ -> ());
            (match rt.adv with
            | Some a ->
              adv_push a h.Fault.recipient h.Fault.fact ~depth:h.Fault.depth
                ~copies:h.Fault.copies
            | None -> ());
            { config with Config.buffer })
          config (Fault.take_due st)
      in
      if Fault.crash_due st ~node then begin
        let injected = Fault.redelivery st ~node in
        let state =
          Value.Map.add node Instance.empty config.Config.state
        in
        let buffer =
          Value.Map.update node
            (fun b ->
              Some
                (List.fold_left
                   (fun b f -> Multiset.add f b)
                   (Option.value b ~default:Multiset.empty)
                   injected))
            config.Config.buffer
        in
        if traced && injected <> [] then
          counters.causal <-
            Causal.redeliver counters.causal ~node ~facts:injected;
        (match rt.adv with
        | Some a ->
          List.iter (fun f -> adv_push a node f ~depth:0 ~copies:1) injected
        | None -> ());
        ({ Config.state; buffer }, true, injected)
      end
      else (config, false, [])
  in
  (* -- the transition itself --------------------------------------- *)
  let deliver = deliver_of config in
  let config', stats =
    Config.transition ~variant ~policy ~transducer ~input config ~node
      ~deliver
  in
  counters.n_transitions <- counters.n_transitions + 1;
  counters.n_messages <- counters.n_messages + stats.Config.messages_sent;
  counters.n_deliveries <- counters.n_deliveries + stats.Config.delivered;
  let sent = Instance.to_list stats.Config.sent_facts in
  let recipients =
    List.filter (fun y -> not (Value.equal y node)) (Policy.network policy)
  in
  (* -- adversarial bookkeeping: consume delivered depths ------------ *)
  let send_depth =
    match rt.adv with
    | None -> 0
    | Some a ->
      let dmax =
        Multiset.fold
          (fun f n acc -> max acc (adv_pop a node f ~copies:n))
          deliver 0
      in
      let nd =
        max (Option.value (Value.Map.find_opt node a.node_depth) ~default:0)
          dmax
        + 1
      in
      a.node_depth <- Value.Map.add node nd a.node_depth;
      nd
  in
  (* -- duplication --------------------------------------------------- *)
  let dup, config' =
    match rt.fault with
    | None -> (1, config')
    | Some st ->
      let dup =
        Fault.draw_dup st ~sends:(List.length sent * List.length recipients)
      in
      if dup <= 1 then (1, config')
      else
        let extra =
          List.fold_left
            (fun m f -> Multiset.add ~copies:(dup - 1) f m)
            Multiset.empty sent
        in
        let buffer =
          Value.Map.mapi
            (fun y b ->
              if List.exists (Value.equal y) recipients then
                Multiset.union b extra
              else b)
            config'.Config.buffer
        in
        (dup, { config' with Config.buffer })
  in
  (* -- causal step + trace record ----------------------------------- *)
  (match rt.tracer with
  | None -> ()
  | Some c ->
    let delivered = Multiset.to_list deliver in
    let causal', stamp =
      Causal.step ~dup counters.causal ~node ~index:counters.n_transitions
        ~delivered ~sent
    in
    counters.causal <- causal';
    Trace.record c
      {
        Trace.index = counters.n_transitions;
        node;
        lamport = stamp.Causal.lamport;
        vector = stamp.Causal.vector;
        origins = stamp.Causal.origins;
        delivered;
        sent;
        output_delta = Instance.to_list stats.Config.output_delta;
        dup;
        restart;
        injected;
      });
  (* -- post-transition fault bookkeeping ----------------------------- *)
  (match rt.fault with
  | None -> ()
  | Some st -> Fault.record_delivery st ~node (Multiset.support deliver));
  (match rt.adv with
  | None -> ()
  | Some a ->
    List.iter
      (fun y ->
        List.iter
          (fun f -> adv_push a y f ~depth:send_depth ~copies:dup)
          sent)
      recipients);
  (* -- loss and partition holds -------------------------------------- *)
  let config' =
    match rt.fault with
    | None -> config'
    | Some st ->
      if sent = [] || recipients = [] then begin
        Fault.tick st;
        config'
      end
      else begin
        let buffer =
          List.fold_left
            (fun buffer f ->
              List.fold_left
                (fun buffer y ->
                  let release =
                    match Fault.blocks st ~sender:node ~recipient:y with
                    | Some r -> Some r
                    | None -> Fault.draw_loss st
                  in
                  match release with
                  | None -> buffer
                  | Some release ->
                    let stamps =
                      if traced then begin
                        let causal', held =
                          Causal.hold counters.causal ~recipient:y ~fact:f
                            ~copies:dup
                        in
                        counters.causal <- causal';
                        Some held
                      end
                      else None
                    in
                    (match rt.adv with
                    | Some a ->
                      adv_remove a y f ~depth:send_depth ~copies:dup
                    | None -> ());
                    Fault.add_held st
                      {
                        Fault.recipient = y;
                        fact = f;
                        copies = dup;
                        release;
                        stamps;
                        depth = send_depth;
                      };
                    Value.Map.update y
                      (fun b ->
                        Some
                          (Multiset.diff
                             (Option.value b ~default:Multiset.empty)
                             (Multiset.add ~copies:dup f Multiset.empty)))
                      buffer)
                buffer recipients)
            config'.Config.buffer sent
        in
        Fault.tick st;
        { config' with Config.buffer }
      end
  in
  config'

(* One full-delivery round-robin round. *)
let full_round rt ~variant ~policy ~transducer ~input config =
  List.fold_left
    (fun config node ->
      do_step rt ~variant ~policy ~transducer ~input config node (fun c ->
          Config.buffer_of c node))
    config
    (Policy.network policy)

let random_submultiset st b =
  Multiset.fold
    (fun f n acc ->
      let keep = Random.State.int st (n + 1) in
      Multiset.add ~copies:keep f acc)
    b Multiset.empty

let random_phase rt ~variant ~policy ~transducer ~input ~stingy st steps
    config =
  let network = Array.of_list (Policy.network policy) in
  let pick () = network.(Random.State.int st (Array.length network)) in
  let rec go k config =
    if k = 0 then config
    else
      let node = pick () in
      let deliver_of c =
        let b = Config.buffer_of c node in
        if stingy then
          match Multiset.to_list b with
          | [] -> Multiset.empty
          | l ->
            Multiset.add (List.nth l (Random.State.int st (List.length l)))
              Multiset.empty
        else random_submultiset st b
      in
      go (k - 1)
        (do_step rt ~variant ~policy ~transducer ~input config node
           deliver_of)
  in
  go steps config

(* Greedy causal-depth maximization: deliver the single deepest pending
   message copy; heartbeat round-robin when nothing is pending (so the
   phase is fair and the run can still make progress from a cold
   start). *)
let adversarial_phase rt ~variant ~policy ~transducer ~input steps config =
  let a =
    match rt.adv with Some a -> a | None -> assert false
  in
  let network = Array.of_list (Policy.network policy) in
  let rec go k config =
    if k = 0 then config
    else
      match adv_choose a config with
      | Some (_, y, f) ->
        go (k - 1)
          (do_step rt ~variant ~policy ~transducer ~input config y (fun _ ->
               Multiset.add f Multiset.empty))
      | None ->
        let node = network.(a.rr mod Array.length network) in
        a.rr <- a.rr + 1;
        go (k - 1)
          (do_step rt ~variant ~policy ~transducer ~input config node
             (fun _ -> Multiset.empty))
  in
  go steps config

let run ?tracer ?(max_rounds = 500) ?(heartbeat = 0.) ~variant ~policy
    ~transducer ~input scheduler =
  Observe.Sink.span ~cat:"net"
    ~args:[ ("scheduler", Observe.Json.String (scheduler_label scheduler)) ]
    "net.run"
  @@ fun () ->
  Observe.Metrics.time m_run @@ fun () ->
  let base, plan =
    match scheduler with
    | Faulty { base = Faulty _; _ } ->
      invalid_arg "Run.run: nested Faulty schedulers"
    | Faulty { base; plan } ->
      (* The empty plan is the base scheduler, byte for byte: no fault
         state means no RNG draws, no metric rows, no trace deltas. *)
      (base, if Fault.is_none plan then None else Some plan)
    | s -> (s, None)
  in
  let network = Policy.network policy in
  let schema = transducer.Transducer.schema in
  let counters =
    {
      n_transitions = 0;
      n_messages = 0;
      n_deliveries = 0;
      causal = Causal.init network;
    }
  in
  let rt =
    {
      counters;
      tracer;
      fault = Option.map (fun p -> Fault.start p ~network) plan;
      adv =
        (match base with Adversarial _ -> Some (adv_init ()) | _ -> None);
    }
  in
  let config0 = Config.start network in
  let config0 =
    match base with
    | Round_robin -> config0
    | Random { seed; steps } ->
      random_phase rt ~variant ~policy ~transducer ~input ~stingy:false
        (Random.State.make [| seed |])
        steps config0
    | Stingy { seed; steps } ->
      random_phase rt ~variant ~policy ~transducer ~input ~stingy:true
        (Random.State.make [| seed |])
        steps config0
    | Adversarial { steps } ->
      adversarial_phase rt ~variant ~policy ~transducer ~input steps config0
    | Faulty _ -> assert false
  in
  if Observe.Series.is_enabled () then
    Observe.Series.set_target "net.round_output_delta"
      (float_of_int max_rounds);
  let hb = hb_start heartbeat in
  let rec stabilize rounds prev prev_out config =
    if rounds >= max_rounds then (config, rounds, false)
    else begin
      let config' =
        full_round rt ~variant ~policy ~transducer ~input config
      in
      Observe.Metrics.incr m_rounds;
      let out' = Instance.cardinal (Config.outputs schema config') in
      Observe.Metrics.observe m_round_output_delta
        (float_of_int (out' - prev_out));
      sample_round ~fault:rt.fault config' ~round:rounds
        ~delta:(out' - prev_out) ~deliveries:counters.n_deliveries;
      hb_tick hb "round=%d transitions=%d deliveries=%d outputs=%d" rounds
        counters.n_transitions counters.n_deliveries out';
      let snap = snapshot config' in
      (* A faulty run may look quiescent while a crash is still
         scheduled, a partition still up, or retransmissions still
         pending: quiescence additionally requires the fault plan to be
         exhausted, so eventual correctness is judged after every fault
         has struck and healed. *)
      let faults_done =
        match rt.fault with None -> true | Some st -> Fault.quiescent st
      in
      match prev with
      | Some p when snapshot_equal p snap && faults_done ->
        (config', rounds + 1, true)
      | _ -> stabilize (rounds + 1) (Some snap) out' config'
    end
  in
  let out0 = Instance.cardinal (Config.outputs schema config0) in
  let config, rounds, quiesced = stabilize 0 None out0 config0 in
  if quiesced then
    Observe.Metrics.set m_quiescence_round (float_of_int rounds);
  {
    config;
    outputs = Config.outputs schema config;
    transitions = counters.n_transitions;
    rounds;
    messages_sent = counters.n_messages;
    deliveries = counters.n_deliveries;
    quiesced;
  }

(* Run a batch of independent (label, policy, scheduler) sweep cells,
   optionally fanning them across a Domain pool. Each cell owns its RNG
   state (seeded per scheduler) and its own trace collector, so cells are
   independent and the result list is identical to the sequential one, in
   the same order — events included: earlier versions silently dropped
   tracing in parallel mode; now every cell traces into a private
   collector and the merged list carries each cell's events. *)
let sweep ?jobs ?max_rounds ?heartbeat ~variant ~transducer ~input cells =
  let run_cell (label, policy, scheduler) =
    (* Label the cell's series so parallel cells keep distinct keys. *)
    Observe.Series.with_label ("cell", label) @@ fun () ->
    let tracer = Trace.collector () in
    let result =
      run ~tracer ?max_rounds ?heartbeat ~variant ~policy ~transducer ~input
        scheduler
    in
    (label, result, Trace.events tracer)
  in
  match jobs with
  | Some j when j > 1 ->
    Parallel.Pool.with_pool ~jobs:j (fun pool ->
        Parallel.Pool.map pool run_cell cells)
  | _ -> List.map run_cell cells

let heartbeat_prefix ?tracer ?(max_steps = 200) ?(heartbeat = 0.) ~variant
    ~policy ~transducer ~input ~node () =
  let hb = hb_start heartbeat in
  let counters =
    {
      n_transitions = 0;
      n_messages = 0;
      n_deliveries = 0;
      causal = Causal.init (Policy.network policy);
    }
  in
  let rt = { counters; tracer; fault = None; adv = None } in
  let config0 = Config.start (Policy.network policy) in
  let rec go k config =
    if k >= max_steps then (config, false)
    else
      let config' =
        do_step rt ~variant ~policy ~transducer ~input config node (fun _ ->
            Multiset.empty)
      in
      hb_tick hb "heartbeat step=%d/%d" (k + 1) max_steps;
      if Instance.equal (Config.state_of config' node) (Config.state_of config node)
      then (config', true)
      else go (k + 1) config'
  in
  let config, quiesced = go 0 config0 in
  Observe.Metrics.incr ~by:counters.n_transitions m_heartbeat_steps;
  {
    config;
    outputs = Config.outputs transducer.Transducer.schema config;
    transitions = counters.n_transitions;
    (* Each heartbeat step is a one-transition "round" of its own; report
       the number of steps actually taken (this used to be hardwired to
       0). *)
    rounds = counters.n_transitions;
    messages_sent = counters.n_messages;
    deliveries = counters.n_deliveries;
    quiesced;
  }
