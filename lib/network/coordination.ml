open Relational

type witness = {
  node : Value.t;
  policy : Policy.t;
  result : Run.result;
}

let heartbeat_witness ?max_steps ~variant ~transducer ~query ~input network =
  let expected = Query.apply query input in
  let try_node x =
    let policy = Policy.single query.Query.input network x in
    let result =
      Run.heartbeat_prefix ?max_steps ~variant ~policy ~transducer ~input
        ~node:x ()
    in
    if Instance.equal result.Run.outputs expected then
      Some { node = x; policy; result }
    else None
  in
  List.find_map try_node network

let is_coordination_free_on ?schedulers ?(domain_guided_only = false)
    ?max_rounds ~variant ~transducer ~query ~inputs network =
  let policies =
    Netquery.default_policies ~domain_guided_only query.Query.input network
  in
  List.for_all
    (fun input ->
      let verdict =
        Netquery.check ?schedulers ~policies ?max_rounds ~variant ~transducer
          ~query ~input network
      in
      Netquery.consistent verdict
      && heartbeat_witness ~variant ~transducer ~query ~input network <> None)
    inputs
