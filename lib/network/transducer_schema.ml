open Relational

type t = {
  input : Schema.t;
  output : Schema.t;
  message : Schema.t;
  memory : Schema.t;
  system : Schema.t;
}

let id_rel = "Id"
let all_rel = "All"
let myadom_rel = "MyAdom"
let policy_rel r = "policy_" ^ r

let system_schema input =
  List.fold_left
    (fun acc (r, k) -> Schema.add (policy_rel r) k acc)
    (Schema.of_list [ (id_rel, 1); (all_rel, 1); (myadom_rel, 1) ])
    (Schema.relations input)

let make ~input ~output ?(message = Schema.empty) ?(memory = Schema.empty) ()
    =
  let system = system_schema input in
  let components =
    [ ("input", input); ("output", output); ("message", message);
      ("memory", memory); ("system", system) ]
  in
  let rec check = function
    | [] -> ()
    | (n1, s1) :: rest ->
      List.iter
        (fun (n2, s2) ->
          if not (Schema.disjoint s1 s2) then
            invalid_arg
              (Printf.sprintf
                 "Transducer_schema.make: %s and %s schemas share a relation"
                 n1 n2))
        rest;
      check rest
  in
  check components;
  { input; output; message; memory; system }

let combined t =
  List.fold_left Schema.union Schema.empty
    [ t.input; t.output; t.message; t.memory; t.system ]

let visible_state t = Schema.union t.output t.memory
