open Relational

type fact_report = {
  fact : Fact.t;
  anchor_index : int;
  anchor_node : Value.t;
  cone_events : int;
  cone_nodes : Value.t list;
  heard_from_all : bool;
}

type report = {
  network : Distributed.network;
  facts : fact_report list;
  coordinated : bool;
}

let analyze ~network events =
  let events =
    List.sort (fun a b -> compare a.Trace.index b.Trace.index) events
  in
  (* Distinct output facts in order of first production. *)
  let outputs =
    List.concat_map
      (fun e -> List.map (fun f -> (e, f)) e.Trace.output_delta)
      events
  in
  let _, firsts =
    List.fold_left
      (fun (seen, acc) (e, f) ->
        if Fact.Set.mem f seen then (seen, acc)
        else (Fact.Set.add f seen, (e, f) :: acc))
      (Fact.Set.empty, []) outputs
  in
  let facts =
    List.rev_map
      (fun (anchor, fact) ->
        let cone_nodes = Causal.support anchor.Trace.vector in
        let cone_events =
          List.length
            (List.filter
               (fun e ->
                 Causal.vector_leq e.Trace.vector anchor.Trace.vector)
               events)
        in
        {
          fact;
          anchor_index = anchor.Trace.index;
          anchor_node = anchor.Trace.node;
          cone_events;
          cone_nodes;
          heard_from_all =
            List.for_all
              (fun n -> List.exists (Value.equal n) cone_nodes)
              network;
        })
      firsts
  in
  {
    network;
    facts;
    coordinated = List.exists (fun r -> r.heard_from_all) facts;
  }

let pp_nodes ppf ns =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
    Value.pp ppf ns

let pp_report ppf r =
  Format.fprintf ppf "@[<v>network %a — %s@ " pp_nodes r.network
    (if r.coordinated then "COORDINATED (heard-from-all cut observed)"
     else "coordination-free (no heard-from-all cut)");
  List.iter
    (fun f ->
      Format.fprintf ppf "%a: anchor #%d @@ %a, cone %d events, heard %a%s@ "
        Fact.pp f.fact f.anchor_index Value.pp f.anchor_node f.cone_events
        pp_nodes f.cone_nodes
        (if f.heard_from_all then " [ALL]" else ""))
    r.facts;
  Format.fprintf ppf "@]"
