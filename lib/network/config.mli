(** Configurations and transitions of transducer networks
    (Section 4.1.3), including the model variants of Sections 4.1.5 / 4.3:
    the original model (no policy relations), the policy-aware model, and
    the [All]-free and oblivious restrictions. *)

open Relational

type variant = {
  with_policy : bool;
      (** expose [MyAdom] and the [policy_R] relations (Zinn et al.'s
          extension); the original model of Ameloot et al. has neither *)
  with_all : bool;   (** expose [All]; also widens [A] from [{x}] to [N] *)
  with_id : bool;    (** expose [Id]; oblivious transducers lack it too *)
}

(** [Id] and [All], no policy relations: the model of Ameloot et al. *)
val original : variant

(** Everything visible: Zinn et al.'s policy-aware model. *)
val policy_aware : variant

(** No [All] (Section 4.3). *)
val all_free : variant

(** Neither [Id] nor [All] nor policy relations (Corollary 4.6). *)
val oblivious : variant

type t = {
  state : Instance.t Value.Map.t;    (** per node: facts over Υout ∪ Υmem *)
  buffer : Multiset.t Value.Map.t;   (** per node: undelivered messages *)
}

val start : Distributed.network -> t

val state_of : t -> Value.t -> Instance.t
val buffer_of : t -> Value.t -> Multiset.t

val outputs : Transducer_schema.t -> t -> Instance.t
(** Union over all nodes of the facts over [Υout]. *)

val equal : t -> t -> bool
val compare : t -> t -> int

type stats = {
  messages_sent : int;      (** copies enqueued (fact × recipients) *)
  delivered : int;          (** message copies consumed *)
  new_state_facts : int;    (** state facts added or removed *)
  sent_facts : Instance.t;  (** the message facts produced by [Q_snd] *)
  output_delta : Instance.t;  (** output facts new in this transition *)
}

val system_facts :
  variant -> Policy.t -> Distributed.network -> Value.t -> Value.Set.t ->
  Instance.t
(** The set [S] of system facts shown to node [x] given the value set [A]
    (already including whatever the variant prescribes). Exposed for
    tests. *)

val transition :
  variant:variant ->
  policy:Policy.t ->
  transducer:Transducer.t ->
  input:Instance.t ->
  t -> node:Value.t -> deliver:Multiset.t ->
  t * stats
(** One transition of the given node consuming the given submultiset of
    its buffer (the paper's [(ρ1, x, m, ρ2)]).
    @raise Invalid_argument if [deliver] is not a submultiset of the
    node's buffer or the node is not in the network. *)

val heartbeat :
  variant:variant -> policy:Policy.t -> transducer:Transducer.t ->
  input:Instance.t -> t -> node:Value.t -> t * stats
(** [transition] with [deliver = ∅]. *)
