(** Fault plans for network runs: the adversarial conditions that
    motivate CALM in the first place.

    The paper's coordination-free strategies (Theorems 4.3–4.5) are
    correct under {e any} fair run — including runs where the network
    duplicates messages, delays them arbitrarily, drops them (as long as
    a retransmission eventually arrives), crashes nodes (as long as the
    input partition is durable), or partitions and heals. A {!plan}
    describes one such adversarial-but-fair run deterministically from a
    seed, so faulty runs are reproducible and their causal traces
    replayable.

    Fault semantics (all fairness-preserving):
    {ul
    {- {b Duplication}: with probability [dup_prob], a transition's
       outgoing messages are enqueued [dup_copies]-fold instead of once
       per recipient. Extra copies are ordinary deliveries.}
    {- {b Loss with retransmission}: with probability [loss_prob], the
       copies of a sent fact bound for one recipient are removed from
       the buffer and re-enqueued [loss_delay] rounds later — the
       in-flight message is lost and a retransmission (same content,
       same causal origin) arrives on a later heartbeat. Eventual
       delivery, hence fairness, is preserved.}
    {- {b Crash/restart}: at its first transition at or after the
       scheduled round, a node loses its entire state (memory and
       output sections). The input partition is persistent — the edb is
       re-read on every transition — and every message fact the node had
       ever consumed is redelivered into its buffer (at-least-once
       delivery: the crash struck before the acknowledgement), so
       send-once protocols also recover.}
    {- {b Partition}: while a partition is active, message copies
       crossing the group boundary are held; they are released into the
       recipients' buffers when the partition heals after its bounded
       number of rounds.}}

    Probabilistic faults (duplication, loss) only strike during the
    first [horizon] rounds of the run, so every faulty run has a clean
    suffix and quiesces whenever its failure-free counterpart does. A
    {e round} here is a network-wide unit: [transitions / network size],
    uniform across perturbation and stabilization phases.

    Metrics (all stable): [network.dup_deliveries] (extra copies
    enqueued), [network.dropped] (copies removed for delayed
    retransmission), [network.crashes], [network.partition_rounds]
    (rounds with at least one active partition). *)

open Relational

type partition = {
  from_round : int;    (** first round the partition is active *)
  rounds : int;        (** heals after this many rounds (≥ 1) *)
  groups : Value.t list list;
      (** connectivity classes; a node in no group is its own class *)
}

type plan = {
  seed : int;          (** RNG seed for the probabilistic faults *)
  dup_prob : float;    (** per-transition duplication probability *)
  dup_copies : int;    (** copies per recipient when duplication strikes *)
  loss_prob : float;   (** per (fact, recipient) loss probability *)
  loss_delay : int;    (** rounds until the retransmission arrives *)
  horizon : int;       (** dup/loss only strike in rounds < horizon *)
  crashes : (Value.t * int) list;  (** (node, round) crash schedule *)
  partitions : partition list;
}

val none : plan
(** The empty plan: no faults. A [Faulty] scheduler with this plan is
    byte-identical to its base scheduler (results, traces, metrics). *)

val is_none : plan -> bool
(** No fault of any kind can ever strike. *)

val default : plan
(** A representative all-faults plan for smoke tests and CLI examples:
    seeded duplication, loss, one crash, one healing partition on a
    3-node network of nodes 1, 2, 3. *)

val to_string : plan -> string
(** Canonical [--faults] syntax; round-trips through {!of_string}. *)

val of_string : string -> (plan, string) result
(** Parse the [--faults] plan grammar: semicolon-separated clauses
    [seed=S], [dup=PxK], [loss=P:D], [horizon=H], [crash=N\@R]
    (repeatable), [part=G1|G2\@R+D] (repeatable; groups are
    comma-separated node ints). Example:
    ["seed=7;dup=0.4x3;loss=0.3:2;crash=2@4;part=1|2,3@2+3"]. *)

val pp : Format.formatter -> plan -> unit

(** {1 Per-run fault state}

    Mutable bookkeeping threaded through one run by {!Run}: the RNG, the
    round counter, held (lost or partitioned) copies, the per-node
    delivered-fact log backing crash redelivery, and the not-yet-fired
    crash schedule. *)

type held_copy = {
  recipient : Value.t;
  fact : Fact.t;
  copies : int;
  release : int;            (** round at which the copies reappear *)
  stamps : Causal.held option;
      (** pending causal stamps of the held copies (traced runs only) *)
  depth : int;              (** adversarial depth of the held copies *)
}

type state

val start : plan -> network:Value.t list -> state

val round : state -> int
(** The current fault round: [transitions so far / network size]. *)

val tick : state -> unit
(** Account for one completed transition. *)

val note_round : state -> unit
(** Update round-granular bookkeeping (the [network.partition_rounds]
    metric); call once per transition, before processing faults. *)

val draw_dup : state -> sends:int -> int
(** The duplication factor for the current transition: [dup_copies] when
    duplication strikes (only possible when [sends > 0] (fact, recipient)
    copy groups are being enqueued and the round is within the horizon),
    else [1]. Consumes randomness only when a draw is possible. *)

val blocks : state -> sender:Value.t -> recipient:Value.t -> int option
(** [Some release_round] when an active partition separates sender from
    recipient (the copies are held until the heal). *)

val draw_loss : state -> int option
(** [Some release_round] when loss strikes a (fact, recipient) copy
    group: the copies are dropped now and retransmitted [loss_delay]
    rounds later. *)

val add_held : state -> held_copy -> unit

val take_due : state -> held_copy list
(** Remove and return the held copies whose release round has been
    reached, oldest first. *)

val record_delivery : state -> node:Value.t -> Fact.Set.t -> unit
(** Log the facts delivered to [node] (backing crash redelivery). *)

val crash_due : state -> node:Value.t -> bool
(** Whether [node] crashes now (first call at or after a scheduled crash
    round); consumes the schedule entry and counts the crash. *)

val redelivery : state -> node:Value.t -> Fact.t list
(** Every fact ever delivered to [node], sorted — the at-least-once
    redelivery injected into its buffer on restart. *)

val quiescent : state -> bool
(** No fault activity is pending: nothing held, no crash unfired, no
    partition active now or in the future, and probabilistic faults past
    their horizon. {!Run} refuses to declare quiescence before this. *)

val held_pending : state -> int
(** Total message copies currently held back (lost awaiting
    retransmission or blocked by a partition) — the per-round fault
    pressure the series recorder samples. *)

val crashes_pending : state -> int
(** Crashes scheduled but not yet struck. *)
