(** Distribution policies (Section 4.1.1).

    A distribution policy for a schema [σ] and network [N] is a total
    function [facts(σ) → P⁺(N)]. A policy is domain-guided when it is
    induced by a domain assignment [α : dom → P⁺(N)] via
    [P(R(a1,...,ak)) = α(a1) ∪ ... ∪ α(ak)]. *)

open Relational

type t

val name : t -> string
val network : t -> Distributed.network
val schema : t -> Schema.t

val assign : t -> Fact.t -> Value.t list
(** The (nonempty, sorted) set of nodes responsible for a fact.
    @raise Invalid_argument if the fact is not over the policy's schema. *)

val responsible : t -> Value.t -> Fact.t -> bool

val is_domain_guided : t -> bool

val domain_assignment : t -> (Value.t -> Value.t list) option
(** The underlying [α] when domain-guided. *)

val dist : t -> Instance.t -> Distributed.t
(** [dist_P(I)]: the distributed instance placing each fact on its
    responsible nodes. Facts outside the schema are ignored. *)

(* -- constructors --------------------------------------------------- *)

val make :
  name:string -> Schema.t -> Distributed.network -> (Fact.t -> Value.t list) ->
  t
(** General policy. The assignment is normalized (sorted, deduplicated,
    intersected with the network); an empty assignment raises at use
    time. *)

val domain_guided :
  name:string -> Schema.t -> Distributed.network ->
  (Value.t -> Value.t list) -> t
(** Policy induced by a domain assignment. *)

val hash_fact : Schema.t -> Distributed.network -> t
(** Each fact on one node, by hash. Not domain-guided. *)

val first_attribute : Schema.t -> Distributed.network -> t
(** Each fact on one node, by hash of its first attribute (Example 4.1's
    [P1]). Not domain-guided in general. *)

val hash_value : Schema.t -> Distributed.network -> t
(** Domain-guided: each value assigned to one node by hash. *)

val replicate_all : Schema.t -> Distributed.network -> t
(** Every fact on every node. Domain-guided (α maps every value to N). *)

val single : Schema.t -> Distributed.network -> Value.t -> t
(** Everything on one designated node — the "ideal" distribution used in
    the coordination-freeness proofs. Domain-guided. *)

val override :
  name:string -> on:(Fact.t -> bool) -> to_:(Value.t list) -> t -> t
(** [override ~on ~to_ p]: facts matching [on] go to [to_], others follow
    [p] — the [P2] construction in the proof of Theorem 4.3. Generally not
    domain-guided. *)
