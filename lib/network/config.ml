open Relational

type variant = {
  with_policy : bool;
  with_all : bool;
  with_id : bool;
}

let original = { with_policy = false; with_all = true; with_id = true }
let policy_aware = { with_policy = true; with_all = true; with_id = true }
let all_free = { with_policy = true; with_all = false; with_id = true }
let oblivious = { with_policy = false; with_all = false; with_id = false }

type t = {
  state : Instance.t Value.Map.t;
  buffer : Multiset.t Value.Map.t;
}

let start network =
  let network = Distributed.validate_network network in
  {
    state =
      List.fold_left
        (fun m x -> Value.Map.add x Instance.empty m)
        Value.Map.empty network;
    buffer =
      List.fold_left
        (fun m x -> Value.Map.add x Multiset.empty m)
        Value.Map.empty network;
  }

let state_of t x =
  match Value.Map.find_opt x t.state with
  | Some s -> s
  | None -> invalid_arg ("Config.state_of: unknown node " ^ Value.to_string x)

let buffer_of t x =
  match Value.Map.find_opt x t.buffer with
  | Some b -> b
  | None -> invalid_arg ("Config.buffer_of: unknown node " ^ Value.to_string x)

let outputs schema t =
  Value.Map.fold
    (fun _ s acc ->
      Instance.union (Instance.restrict s schema.Transducer_schema.output) acc)
    t.state Instance.empty

let equal a b =
  Value.Map.equal Instance.equal a.state b.state
  && Value.Map.equal Multiset.equal a.buffer b.buffer

let compare a b =
  let c = Value.Map.compare Instance.compare a.state b.state in
  if c <> 0 then c else Value.Map.compare Multiset.compare a.buffer b.buffer

type stats = {
  messages_sent : int;
  delivered : int;
  new_state_facts : int;
  sent_facts : Instance.t;
  output_delta : Instance.t;
}

(* Telemetry (all stable): one recording per transition, mirroring the
   [stats] record. Runs are deterministic given (policy, scheduler,
   input), so these are reproducible across [jobs] by the pool's
   buffer-merge discipline. *)
let m_transitions = Observe.Metrics.counter "net.transitions"
let m_messages = Observe.Metrics.counter "net.messages_sent"
let m_deliveries = Observe.Metrics.counter "net.deliveries"
let m_output_delta = Observe.Metrics.histogram "net.transition_output_delta"

let record_stats stats =
  Observe.Metrics.incr m_transitions;
  if stats.messages_sent > 0 then
    Observe.Metrics.incr ~by:stats.messages_sent m_messages;
  if stats.delivered > 0 then
    Observe.Metrics.incr ~by:stats.delivered m_deliveries;
  Observe.Metrics.observe m_output_delta
    (float_of_int (Instance.cardinal stats.output_delta))

let system_facts variant policy network x a =
  let open Transducer_schema in
  let base = Instance.empty in
  let base =
    if variant.with_id then Instance.add (Fact.make id_rel [ x ]) base
    else base
  in
  let base =
    if variant.with_all then
      List.fold_left
        (fun acc y -> Instance.add (Fact.make all_rel [ y ]) acc)
        base network
    else base
  in
  if not variant.with_policy then base
  else
    let base =
      Value.Set.fold
        (fun v acc -> Instance.add (Fact.make myadom_rel [ v ]) acc)
        a base
    in
    (* policy_R(a1..ak) for every R-fact over A that x is responsible
       for. *)
    List.fold_left
      (fun acc f ->
        if Policy.responsible policy x f then
          Instance.add (Fact.make (policy_rel (Fact.rel f)) (Fact.args f)) acc
        else acc)
      base
      (Schema.all_facts (Policy.schema policy) a)

let transition ~variant ~policy ~transducer ~input t ~node:x ~deliver =
  let schema = transducer.Transducer.schema in
  let network = Policy.network policy in
  if not (List.exists (Value.equal x) network) then
    invalid_arg ("Config.transition: node not in network: " ^ Value.to_string x);
  let buf_x = buffer_of t x in
  if not (Multiset.sub deliver buf_x) then
    invalid_arg "Config.transition: deliver is not a submultiset of the buffer";
  let h = Policy.dist policy (Instance.restrict input schema.Transducer_schema.input) in
  let local_input = Distributed.local h x in
  let s1 = state_of t x in
  let m = Instance.of_set (Multiset.support deliver) in
  let j = Instance.union local_input (Instance.union s1 m) in
  let a =
    let from_j = Instance.adom j in
    if variant.with_all then
      List.fold_left (fun acc y -> Value.Set.add y acc) from_j network
    else Value.Set.add x from_j
  in
  let s = system_facts variant policy network x a in
  let d = Instance.union j s in
  let out_new = Instance.restrict (transducer.Transducer.q_out d) schema.Transducer_schema.output in
  let ins = Instance.restrict (transducer.Transducer.q_ins d) schema.Transducer_schema.memory in
  let del = Instance.restrict (transducer.Transducer.q_del d) schema.Transducer_schema.memory in
  let snd = Instance.restrict (transducer.Transducer.q_snd d) schema.Transducer_schema.message in
  let mem1 = Instance.restrict s1 schema.Transducer_schema.memory in
  let out1 = Instance.restrict s1 schema.Transducer_schema.output in
  let mem2 =
    Instance.diff
      (Instance.union mem1 (Instance.diff ins del))
      (Instance.diff del ins)
  in
  let out2 = Instance.union out1 out_new in
  let s2 = Instance.union out2 mem2 in
  let state = Value.Map.add x s2 t.state in
  let snd_ms = Multiset.of_instance snd in
  let recipients = List.filter (fun y -> not (Value.equal y x)) network in
  let buffer =
    Value.Map.mapi
      (fun y b ->
        if Value.equal y x then Multiset.diff b deliver
        else if List.exists (Value.equal y) recipients then
          Multiset.union b snd_ms
        else b)
      t.buffer
  in
  let stats =
    {
      messages_sent = Multiset.size snd_ms * List.length recipients;
      delivered = Multiset.size deliver;
      new_state_facts =
        Instance.cardinal (Instance.diff s2 s1)
        + Instance.cardinal (Instance.diff s1 s2);
      sent_facts = snd;
      output_delta = Instance.diff out2 out1;
    }
  in
  record_stats stats;
  ({ state; buffer }, stats)

let heartbeat ~variant ~policy ~transducer ~input t ~node =
  transition ~variant ~policy ~transducer ~input t ~node
    ~deliver:Multiset.empty
