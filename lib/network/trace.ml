open Relational

type event = {
  index : int;
  node : Value.t;
  delivered : Fact.t list;
  sent : Fact.t list;
  output_delta : Fact.t list;
}

type collector = event list ref

let collector () = ref []
let record c e = c := e :: !c
let events c = List.rev !c

let outputs_timeline c =
  List.concat_map
    (fun e -> List.map (fun f -> (e.index, f)) e.output_delta)
    (events c)

let pp_facts ppf facts =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
    Fact.pp ppf facts

let pp_event ppf e =
  Format.fprintf ppf "@[<v 2>#%d @ node %a:" e.index Value.pp e.node;
  if e.delivered <> [] then
    Format.fprintf ppf "@ recv  %a" pp_facts e.delivered;
  if e.sent <> [] then Format.fprintf ppf "@ send  %a" pp_facts e.sent;
  if e.output_delta <> [] then
    Format.fprintf ppf "@ OUT   %a" pp_facts e.output_delta;
  Format.fprintf ppf "@]"

let pp_summary ?(limit = 20) ppf c =
  let interesting =
    List.filter
      (fun e -> e.delivered <> [] || e.sent <> [] || e.output_delta <> [])
      (events c)
  in
  let shown = List.filteri (fun i _ -> i < limit) interesting in
  List.iter (fun e -> Format.fprintf ppf "%a@." pp_event e) shown;
  let rest = List.length interesting - List.length shown in
  if rest > 0 then Format.fprintf ppf "... and %d more events@." rest
