open Relational

type event = {
  index : int;
  node : Value.t;
  delivered : Fact.t list;
  sent : Fact.t list;
  output_delta : Fact.t list;
}

type collector = event list ref

let collector () = ref []

(* Every trace event is also forwarded to the ambient structured-event
   sink (a no-op while the sink is disabled), so enabling the sink turns
   run traces into exportable JSONL / Chrome tracks for free. *)
let sink_args e =
  let facts fs = Observe.Json.List (List.map (fun f -> Observe.Json.String (Fact.to_string f)) fs) in
  [
    ("index", Observe.Json.Int e.index);
    ("node", Observe.Json.String (Value.to_string e.node));
    ("delivered", facts e.delivered);
    ("sent", facts e.sent);
    ("output_delta", facts e.output_delta);
  ]

let record c e =
  c := e :: !c;
  if Observe.Sink.is_enabled Observe.Sink.default then
    Observe.Sink.record ~cat:"trace" ~args:(sink_args e) "net.transition"

let events c = List.rev !c

let outputs_timeline c =
  List.concat_map
    (fun e -> List.map (fun f -> (e.index, f)) e.output_delta)
    (events c)

(* JSONL: one compact object per event. Facts are serialized through
   [Fact.to_string]/[Fact.of_string], which round-trip for non-Skolem
   values (Skolem values have no parseable syntax). *)
let event_to_json e = Observe.Json.Obj (sink_args e)

let to_jsonl evs =
  String.concat ""
    (List.map (fun e -> Observe.Json.to_string (event_to_json e) ^ "\n") evs)

let event_of_json j =
  let open Observe.Json in
  let field name =
    match member name j with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "trace event: missing field %S" name)
  in
  let ( let* ) = Result.bind in
  let* index =
    let* v = field "index" in
    match v with Int i -> Ok i | _ -> Error "trace event: index not an int"
  in
  let* node =
    let* v = field "node" in
    match v with
    | String s -> Ok (Value.of_string s)
    | _ -> Error "trace event: node not a string"
  in
  let facts name =
    let* v = field name in
    match v with
    | List l ->
      (try
         Ok
           (List.map
              (function
                | String s -> Fact.of_string s
                | _ -> invalid_arg "not a string")
              l)
       with Invalid_argument m ->
         Error (Printf.sprintf "trace event: bad %s: %s" name m))
    | _ -> Error (Printf.sprintf "trace event: %s not a list" name)
  in
  let* delivered = facts "delivered" in
  let* sent = facts "sent" in
  let* output_delta = facts "output_delta" in
  Ok { index; node; delivered; sent; output_delta }

let of_jsonl s =
  let lines =
    String.split_on_char '\n' s
    |> List.filter (fun l -> String.trim l <> "")
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | l :: rest -> (
      match Observe.Json.of_string l with
      | Error m -> Error m
      | Ok j -> (
        match event_of_json j with
        | Error m -> Error m
        | Ok e -> go (e :: acc) rest))
  in
  go [] lines

let pp_facts ppf facts =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
    Fact.pp ppf facts

let pp_event ppf e =
  Format.fprintf ppf "@[<v 2>#%d @ node %a:" e.index Value.pp e.node;
  if e.delivered <> [] then
    Format.fprintf ppf "@ recv  %a" pp_facts e.delivered;
  if e.sent <> [] then Format.fprintf ppf "@ send  %a" pp_facts e.sent;
  if e.output_delta <> [] then
    Format.fprintf ppf "@ OUT   %a" pp_facts e.output_delta;
  Format.fprintf ppf "@]"

let pp_summary ?(limit = 20) ppf c =
  let interesting =
    List.filter
      (fun e -> e.delivered <> [] || e.sent <> [] || e.output_delta <> [])
      (events c)
  in
  let shown = List.filteri (fun i _ -> i < limit) interesting in
  List.iter (fun e -> Format.fprintf ppf "%a@." pp_event e) shown;
  let rest = List.length interesting - List.length shown in
  if rest > 0 then Format.fprintf ppf "... and %d more events@." rest
