open Relational

type event = {
  index : int;
  node : Value.t;
  lamport : int;
  vector : (Value.t * int) list;
  origins : (Fact.t * int) list;
  delivered : Fact.t list;
  sent : Fact.t list;
  output_delta : Fact.t list;
  (* Fault annotations, at their defaults (1 / false / []) on
     failure-free transitions. They are what makes faulty traces
     replayable: Provenance.replay duplicates the sends [dup]-fold,
     wipes the node's state on [restart], and re-injects [injected] into
     its buffer before the transition. *)
  dup : int;
  restart : bool;
  injected : Fact.t list;
}

let stamp e =
  { Causal.lamport = e.lamport; vector = e.vector; origins = e.origins }

type collector = event list ref

let collector () = ref []

(* Every trace event is also forwarded to the ambient structured-event
   sink (a no-op while the sink is disabled), so enabling the sink turns
   run traces into exportable JSONL / Chrome tracks for free. *)
let sink_args e =
  let facts fs = Observe.Json.List (List.map (fun f -> Observe.Json.String (Fact.to_string f)) fs) in
  [
    ("index", Observe.Json.Int e.index);
    ("node", Observe.Json.String (Value.to_string e.node));
    ("lamport", Observe.Json.Int e.lamport);
    ( "vector",
      Observe.Json.Obj
        (List.map
           (fun (n, k) -> (Value.to_string n, Observe.Json.Int k))
           e.vector) );
    ( "origins",
      Observe.Json.List
        (List.map
           (fun (f, idx) ->
             Observe.Json.List
               [ Observe.Json.String (Fact.to_string f); Observe.Json.Int idx ])
           e.origins) );
    ("delivered", facts e.delivered);
    ("sent", facts e.sent);
    ("output_delta", facts e.output_delta);
  ]
  (* Fault fields only when non-default, so failure-free exports are
     byte-identical to pre-fault ones. *)
  @ (if e.dup <> 1 then [ ("dup", Observe.Json.Int e.dup) ] else [])
  @ (if e.restart then [ ("restart", Observe.Json.Bool true) ] else [])
  @ if e.injected <> [] then [ ("injected", facts e.injected) ] else []

let record c e =
  c := e :: !c;
  if Observe.Sink.is_enabled Observe.Sink.default then
    Observe.Sink.record ~cat:"trace" ~args:(sink_args e) "net.transition"

let events c = List.rev !c

let outputs_timeline c =
  List.concat_map
    (fun e -> List.map (fun f -> (e.index, f)) e.output_delta)
    (events c)

(* A linear extension of happens-before that is independent of the
   schedule interleaving actually observed: Lamport clocks respect
   happens-before, and events sharing a Lamport value are pairwise
   concurrent, so (lamport, node, index) is a total order refining the
   causal one with a stable tie-break. *)
let canonical evs =
  List.stable_sort
    (fun a b ->
      let c = compare a.lamport b.lamport in
      if c <> 0 then c
      else
        let c = Value.compare a.node b.node in
        if c <> 0 then c else compare a.index b.index)
    evs

(* JSONL: one compact object per event. Facts are serialized through
   [Fact.to_string]/[Fact.of_string], which round-trip for non-Skolem
   values (Skolem values have no parseable syntax). *)
let event_to_json e = Observe.Json.Obj (sink_args e)

let to_jsonl evs =
  String.concat ""
    (List.map (fun e -> Observe.Json.to_string (event_to_json e) ^ "\n") evs)

(* Deterministic multi-cell export: cells sorted by label, each cell's
   events in canonical causal order, so the bytes depend only on the
   cells' contents — not on the pool scheduling that produced them. *)
let sweep_to_jsonl cells =
  let cells =
    List.sort (fun (a, _) (b, _) -> String.compare a b) cells
  in
  String.concat ""
    (List.concat_map
       (fun (label, evs) ->
         List.map
           (fun e ->
             Observe.Json.to_string
               (Observe.Json.Obj
                  (("cell", Observe.Json.String label) :: sink_args e))
             ^ "\n")
           (canonical evs))
       cells)

let event_of_json j =
  let open Observe.Json in
  let field name =
    match member name j with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "trace event: missing field %S" name)
  in
  let ( let* ) = Result.bind in
  let* index =
    let* v = field "index" in
    match v with Int i -> Ok i | _ -> Error "trace event: index not an int"
  in
  let* node =
    let* v = field "node" in
    match v with
    | String s -> Ok (Value.of_string s)
    | _ -> Error "trace event: node not a string"
  in
  (* Causal fields default to the empty stamp so that pre-causal traces
     still parse. *)
  let* lamport =
    match member "lamport" j with
    | None -> Ok 0
    | Some (Int i) -> Ok i
    | Some _ -> Error "trace event: lamport not an int"
  in
  let* vector =
    match member "vector" j with
    | None -> Ok []
    | Some (Obj kvs) ->
      (try
         Ok
           (List.map
              (function
                | (n, Int k) -> (Value.of_string n, k)
                | _ -> invalid_arg "component not an int")
              kvs)
       with Invalid_argument m ->
         Error (Printf.sprintf "trace event: bad vector: %s" m))
    | Some _ -> Error "trace event: vector not an object"
  in
  let* origins =
    match member "origins" j with
    | None -> Ok []
    | Some (List l) ->
      (try
         Ok
           (List.map
              (function
                | List [ String f; Int idx ] -> (Fact.of_string f, idx)
                | _ -> invalid_arg "not a [fact, index] pair")
              l)
       with Invalid_argument m ->
         Error (Printf.sprintf "trace event: bad origins: %s" m))
    | Some _ -> Error "trace event: origins not a list"
  in
  let facts name =
    let* v = field name in
    match v with
    | List l ->
      (try
         Ok
           (List.map
              (function
                | String s -> Fact.of_string s
                | _ -> invalid_arg "not a string")
              l)
       with Invalid_argument m ->
         Error (Printf.sprintf "trace event: bad %s: %s" name m))
    | _ -> Error (Printf.sprintf "trace event: %s not a list" name)
  in
  let* delivered = facts "delivered" in
  let* sent = facts "sent" in
  let* output_delta = facts "output_delta" in
  (* Fault annotations default to the failure-free values so pre-fault
     traces parse unchanged. *)
  let* dup =
    match member "dup" j with
    | None -> Ok 1
    | Some (Int d) when d >= 1 -> Ok d
    | Some _ -> Error "trace event: dup not a positive int"
  in
  let* restart =
    match member "restart" j with
    | None -> Ok false
    | Some (Bool b) -> Ok b
    | Some _ -> Error "trace event: restart not a bool"
  in
  let* injected =
    match member "injected" j with
    | None -> Ok []
    | Some (List l) ->
      (try
         Ok
           (List.map
              (function
                | String s -> Fact.of_string s
                | _ -> invalid_arg "not a string")
              l)
       with Invalid_argument m ->
         Error (Printf.sprintf "trace event: bad injected: %s" m))
    | Some _ -> Error "trace event: injected not a list"
  in
  Ok
    {
      index; node; lamport; vector; origins; delivered; sent; output_delta;
      dup; restart; injected;
    }

let of_jsonl s =
  let lines =
    String.split_on_char '\n' s
    |> List.filter (fun l -> String.trim l <> "")
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | l :: rest -> (
      match Observe.Json.of_string l with
      | Error m -> Error m
      | Ok j -> (
        match event_of_json j with
        | Error m -> Error m
        | Ok e -> go (e :: acc) rest))
  in
  go [] lines

(* ------------------------------------------------------------------ *)
(* calm-causal/v1 *)

let causal_schema = "calm-causal/v1"

let to_causal_json ~network evs =
  Observe.Json.to_string
    (Observe.Json.Obj
       [
         ("schema", Observe.Json.String causal_schema);
         ( "network",
           Observe.Json.List
             (List.map
                (fun n -> Observe.Json.String (Value.to_string n))
                network) );
         ("events", Observe.Json.List (List.map event_to_json (canonical evs)));
       ])

(* ------------------------------------------------------------------ *)
(* Happens-before DAG exporters *)

let dot_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_dot evs =
  let evs = List.sort (fun a b -> compare a.index b.index) evs in
  let nodes =
    List.sort_uniq Value.compare (List.map (fun e -> e.node) evs)
  in
  let buf = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "digraph happens_before {\n";
  pr "  rankdir=LR;\n";
  pr "  node [shape=box, fontsize=10];\n";
  List.iteri
    (fun i n ->
      pr "  subgraph cluster_%d {\n" i;
      pr "    label=\"node %s\";\n" (dot_escape (Value.to_string n));
      List.iter
        (fun e ->
          if Value.equal e.node n then begin
            let label =
              Printf.sprintf "#%d L%d" e.index e.lamport
              ^ String.concat ""
                  (List.map
                     (fun f -> "\\nOUT " ^ dot_escape (Fact.to_string f))
                     e.output_delta)
            in
            pr "    e%d [label=\"%s\"];\n" e.index label
          end)
        evs;
      pr "  }\n")
    nodes;
  (* Program order: consecutive events of the same node. *)
  List.iter
    (fun n ->
      let own = List.filter (fun e -> Value.equal e.node n) evs in
      let rec edges = function
        | a :: (b :: _ as rest) ->
          pr "  e%d -> e%d [weight=10];\n" a.index b.index;
          edges rest
        | _ -> ()
      in
      edges own)
    nodes;
  (* Message order: one dashed edge per (send event, receive event) pair,
     labeled with the delivered facts. *)
  List.iter
    (fun e ->
      let by_src =
        List.fold_left
          (fun acc (f, idx) ->
            let prev = try List.assoc idx acc with Not_found -> [] in
            (idx, f :: prev) :: List.remove_assoc idx acc)
          [] e.origins
      in
      let by_src = List.sort (fun (a, _) (b, _) -> compare a b) by_src in
      List.iter
        (fun (idx, facts) ->
          let label =
            String.concat ", "
              (List.rev_map (fun f -> dot_escape (Fact.to_string f)) facts)
          in
          pr "  e%d -> e%d [style=dashed, constraint=false, label=\"%s\"];\n"
            idx e.index label)
        by_src)
    evs;
  pr "}\n";
  Buffer.contents buf

(* Chrome trace_event rendering of the happens-before DAG: one thread per
   network node, the Lamport clock as the (synthetic) time axis — 1 ms
   per tick — and flow events ("s"/"f" pairs sharing an id) drawing every
   message delivery as an arrow between tracks. *)
let to_chrome_causal ~network evs =
  let open Observe.Json in
  let evs = List.sort (fun a b -> compare a.index b.index) evs in
  let tid n =
    let rec idx i = function
      | [] -> 0
      | m :: _ when Value.equal m n -> i
      | _ :: rest -> idx (i + 1) rest
    in
    1 + idx 0 network
  in
  let by_index = Hashtbl.create 64 in
  List.iter (fun e -> Hashtbl.replace by_index e.index e) evs;
  let ts e = float_of_int (e.lamport * 1000) in
  let meta =
    List.map
      (fun n ->
        Obj
          [
            ("name", String "thread_name");
            ("ph", String "M");
            ("pid", Int 1);
            ("tid", Int (tid n));
            ("args", Obj [ ("name", String ("node " ^ Value.to_string n)) ]);
          ])
      network
  in
  let spans =
    List.map
      (fun e ->
        Obj
          [
            ("name", String (Printf.sprintf "#%d" e.index));
            ("ph", String "X");
            ("cat", String "causal");
            ("ts", Float (ts e));
            ("dur", Float 600.);
            ("pid", Int 1);
            ("tid", Int (tid e.node));
            ( "args",
              Obj
                [
                  ("index", Int e.index);
                  ("lamport", Int e.lamport);
                  ( "out",
                    List
                      (List.map
                         (fun f -> String (Fact.to_string f))
                         e.output_delta) );
                ] );
          ])
      evs
  in
  let next_id = ref 0 in
  let flows =
    List.concat_map
      (fun e ->
        List.concat_map
          (fun (f, idx) ->
            match Hashtbl.find_opt by_index idx with
            | None -> []
            | Some src ->
              incr next_id;
              let id = !next_id in
              let common name =
                [
                  ("name", String name);
                  ("cat", String "msg");
                  ("id", Int id);
                  ("pid", Int 1);
                ]
              in
              [
                Obj
                  (("ph", String "s")
                  :: ("tid", Int (tid src.node))
                  :: ("ts", Float (ts src +. 300.))
                  :: common (Fact.to_string f));
                Obj
                  (("ph", String "f")
                  :: ("bp", String "e")
                  :: ("tid", Int (tid e.node))
                  :: ("ts", Float (ts e +. 300.))
                  :: common (Fact.to_string f));
              ])
          e.origins)
      evs
  in
  to_string
    (Obj
       [
         ("traceEvents", List (meta @ spans @ flows));
         ("displayTimeUnit", String "ms");
       ])

(* ------------------------------------------------------------------ *)

let pp_facts ppf facts =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
    Fact.pp ppf facts

let pp_event ppf e =
  Format.fprintf ppf "@[<v 2>#%d @ node %a:" e.index Value.pp e.node;
  if e.delivered <> [] then
    Format.fprintf ppf "@ recv  %a" pp_facts e.delivered;
  if e.sent <> [] then Format.fprintf ppf "@ send  %a" pp_facts e.sent;
  if e.output_delta <> [] then
    Format.fprintf ppf "@ OUT   %a" pp_facts e.output_delta;
  Format.fprintf ppf "@]"

let pp_summary ?(limit = 20) ppf c =
  let interesting =
    List.filter
      (fun e -> e.delivered <> [] || e.sent <> [] || e.output_delta <> [])
      (events c)
  in
  let shown = List.filteri (fun i _ -> i < limit) interesting in
  List.iter (fun e -> Format.fprintf ppf "%a@." pp_event e) shown;
  let rest = List.length interesting - List.length shown in
  if rest > 0 then Format.fprintf ppf "... and %d more events@." rest
