open Relational

type t = {
  schema : Transducer_schema.t;
  q_out : Instance.t -> Instance.t;
  q_ins : Instance.t -> Instance.t;
  q_del : Instance.t -> Instance.t;
  q_snd : Instance.t -> Instance.t;
}

let nothing (_ : Instance.t) = Instance.empty

let make ~schema ?(out = nothing) ?(ins = nothing) ?(del = nothing)
    ?(snd = nothing) () =
  { schema; q_out = out; q_ins = ins; q_del = del; q_snd = snd }

(* A Datalog component derives into relations [<prefix><R>] (e.g.
   [Ins_Seen]); the prefix is stripped and the fact lands in target
   relation [R]. The namespacing keeps "what the query derives" apart from
   "what is currently stored", which matters for deletion queries that read
   the very relation they delete from. *)
let strip_prefix ~prefix name =
  let pl = String.length prefix in
  if String.length name > pl && String.sub name 0 pl = prefix then
    Some (String.sub name pl (String.length name - pl))
  else None

let datalog_component ~prefix ~target src =
  match src with
  | None -> nothing
  | Some src ->
    let rules =
      try Datalog.Adom.augment (Datalog.Parser.parse_program src)
      with Datalog.Parser.Syntax_error { line; col; message } ->
        invalid_arg
          (Printf.sprintf "Transducer.of_datalog: line %d, column %d: %s" line
             col message)
    in
    (match Datalog.Stratify.stratify rules with
    | Ok _ -> ()
    | Error e -> invalid_arg ("Transducer.of_datalog: " ^ e));
    fun d ->
      let full = Datalog.Eval.stratified_exn rules d in
      Instance.fold
        (fun f acc ->
          match strip_prefix ~prefix (Fact.rel f) with
          | None -> acc
          | Some base ->
            let renamed = Fact.make base (Fact.args f) in
            if Schema.fact_over target renamed then Instance.add renamed acc
            else acc)
        full Instance.empty

let of_datalog ~schema ?out ?ins ?del ?snd () =
  {
    schema;
    q_out =
      datalog_component ~prefix:"Out_"
        ~target:schema.Transducer_schema.output out;
    q_ins =
      datalog_component ~prefix:"Ins_"
        ~target:schema.Transducer_schema.memory ins;
    q_del =
      datalog_component ~prefix:"Del_"
        ~target:schema.Transducer_schema.memory del;
    q_snd =
      datalog_component ~prefix:"Snd_"
        ~target:schema.Transducer_schema.message snd;
  }
