open Relational

type t = {
  name : string;
  schema : Schema.t;
  network : Distributed.network;
  raw_assign : Fact.t -> Value.t list;
  alpha : (Value.t -> Value.t list) option;
}

let name t = t.name
let network t = t.network
let schema t = t.schema

let assign t f =
  if not (Schema.fact_over t.schema f) then
    invalid_arg
      (Printf.sprintf "Policy.assign (%s): fact %s not over schema %s" t.name
         (Fact.to_string f)
         (Schema.to_string t.schema));
  let nodes =
    t.raw_assign f
    |> List.filter (fun x -> List.exists (Value.equal x) t.network)
    |> List.sort_uniq Value.compare
  in
  if nodes = [] then
    invalid_arg
      (Printf.sprintf "Policy.assign (%s): empty assignment for %s" t.name
         (Fact.to_string f))
  else nodes

let responsible t x f = List.exists (Value.equal x) (assign t f)
let is_domain_guided t = t.alpha <> None
let domain_assignment t = t.alpha

let dist t i =
  Instance.fold
    (fun f acc ->
      if Schema.fact_over t.schema f then
        List.fold_left
          (fun acc x -> Distributed.update_local acc x (Instance.add f))
          acc (assign t f)
      else acc)
    i
    (Distributed.create t.network)

let make ~name schema network raw_assign =
  { name; schema; network = Distributed.validate_network network; raw_assign;
    alpha = None }

let normalize_nodes network nodes =
  nodes
  |> List.filter (fun x -> List.exists (Value.equal x) network)
  |> List.sort_uniq Value.compare

let domain_guided ~name schema network alpha =
  let network = Distributed.validate_network network in
  let raw_assign f =
    List.concat_map alpha (Value.Set.elements (Fact.adom f))
  in
  { name; schema; network; raw_assign;
    alpha = Some (fun v -> normalize_nodes network (alpha v)) }

let nth_node network k =
  let n = List.length network in
  [ List.nth network (((k mod n) + n) mod n) ]

let hash_fact schema network =
  let network = Distributed.validate_network network in
  make ~name:"hash-fact" schema network (fun f -> nth_node network (Fact.hash f))

let first_attribute schema network =
  let network = Distributed.validate_network network in
  make ~name:"first-attribute" schema network (fun f ->
      nth_node network (Value.hash (Fact.arg f 0)))

let hash_value schema network =
  let network = Distributed.validate_network network in
  domain_guided ~name:"hash-value" schema network (fun v ->
      nth_node network (Value.hash v))

let replicate_all schema network =
  let network = Distributed.validate_network network in
  domain_guided ~name:"replicate-all" schema network (fun _ -> network)

let single schema network x =
  let network = Distributed.validate_network network in
  domain_guided
    ~name:("single-" ^ Value.to_string x)
    schema network
    (fun _ -> [ x ])

let override ~name ~on ~to_ p =
  {
    p with
    name;
    raw_assign = (fun f -> if on f then to_ else p.raw_assign f);
    alpha = None;
  }
