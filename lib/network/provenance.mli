(** Causal provenance of output facts.

    The provenance of an output fact in a traced run is its {e causal
    cone}: the anchor event (the first transition that produced the
    fact) together with the anchor's entire causal past under
    happens-before — every delivery and rule firing the derivation could
    have depended on, and nothing else. Vector clocks decide membership
    directly: an event is in the cone iff its vector is pointwise ≤ the
    anchor's.

    The cone is self-contained by construction: it includes each cone
    node's full program-order prefix and the origin send of every
    delivered copy. Replaying just the cone's transitions, in index
    order, through {!Config.transition} therefore reproduces each
    event's sends and output delta exactly — {!validate} checks this
    event by event and then checks that the target fact is actually
    produced. *)

open Relational

type cone = {
  target : Fact.t;
  anchor : Trace.event;   (** first event with [target] in its output
                              delta *)
  events : Trace.event list;
      (** the causal past of the anchor, inclusive, ascending index *)
  nodes : Value.t list;
      (** nodes owning at least one cone event (the anchor vector's
          support), sorted *)
}

val cone_of : Trace.event list -> Fact.t -> cone option
(** [None] when no event of the trace outputs the fact. *)

val heard_from_all : network:Distributed.network -> cone -> bool
(** The "heard-from-all-nodes" cut: every network node owns an event in
    the cone, i.e. the derivation causally depends on a transition of
    every node — the empirical signature of coordination. *)

val replay :
  variant:Config.variant ->
  policy:Policy.t ->
  transducer:Transducer.t ->
  input:Instance.t ->
  cone -> (Instance.t, string) result
(** Re-run only the cone's transitions from the initial configuration,
    checking each replayed transition's sent facts and output delta
    against the trace. Returns the replayed run's accumulated outputs,
    or a description of the first divergence. *)

val validate :
  variant:Config.variant ->
  policy:Policy.t ->
  transducer:Transducer.t ->
  input:Instance.t ->
  cone -> (unit, string) result
(** {!replay}, additionally requiring the target fact among the replayed
    outputs. *)

val pp : Format.formatter -> cone -> unit
(** Human summary: target, anchor, cone size, nodes heard from, and the
    cone's non-trivial events. *)
