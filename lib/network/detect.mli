(** Empirical coordination detection.

    A traced run shows {e empirical coordination} when some output
    fact's causal cone contains a "heard-from-all-nodes" cut: the
    derivation causally depends on a transition of every network node,
    so no node could have been silently removed without affecting the
    output — the run-level signature of the global barriers that
    coordination-free computations avoid. A query is observed
    coordination-free when {e some} correct, quiescent run has no such
    output fact (matching the existential quantification over
    policies/runs in the paper's Definition 3); see
    {!Calm_core.Empirical} for the query-level cross-check against
    static claims. *)

open Relational

type fact_report = {
  fact : Fact.t;
  anchor_index : int;
  anchor_node : Value.t;
  cone_events : int;      (** size of the fact's causal cone *)
  cone_nodes : Value.t list;  (** nodes the derivation heard from *)
  heard_from_all : bool;
}

type report = {
  network : Distributed.network;
  facts : fact_report list;  (** one per distinct output fact, in anchor
                                 order *)
  coordinated : bool;
      (** some output fact heard from every node (false for runs with no
          output) *)
}

val analyze : network:Distributed.network -> Trace.event list -> report

val pp_report : Format.formatter -> report -> unit
