(** Bounded model checking of transducer networks.

    {!Run} samples fair runs; this module {e exhausts} them on small
    inputs: from the start configuration it explores every reachable
    configuration under a complete set of delivery choices per active node
    (heartbeat, full buffer, and each single buffered fact). Since output
    facts are never retracted (Section 4.1.4), a single configuration
    whose output leaves [Q(I)] refutes "the network computes Q" outright;
    a quiescent configuration (a fixpoint under full delivery at every
    node) with output short of [Q(I)] refutes it too. If neither occurs
    and the state space is exhausted, every fair run — whatever the
    message order — produces exactly [Q(I)].

    This is the operational side of the eventual-consistency /
    confluence decision problems studied by Ameloot and Van den Bussche
    (papers [12,14] in the paper's bibliography). *)

open Relational

type verdict =
  | Consistent of { configs : int }
      (** state space exhausted; all runs compute [Q(input)] *)
  | Wrong_output of { config : Config.t; extra : Fact.t }
      (** some run produces a fact outside [Q(input)] *)
  | Stuck of { config : Config.t; missing : Fact.t }
      (** some run quiesces without having produced all of [Q(input)] *)
  | Out_of_budget of { configs : int }
      (** exploration cut off before exhausting the space *)

val check :
  ?max_configs:int ->
  ?jobs:int ->
  variant:Config.variant ->
  policy:Policy.t ->
  transducer:Transducer.t ->
  query:Query.t ->
  input:Instance.t ->
  unit -> verdict
(** [max_configs] defaults to 20_000. With [jobs > 1] each BFS round's
    frontier is expanded on a Domain pool (inspection and successor
    computation per config), and a sequential replay of the round merges
    dedup sets and checks the budget in the sequential pop order — so
    the verdict, its certificate configuration, and the visited-config
    counts are identical to the sequential run's.

    Exploration deduplicates
    configurations after abstracting message buffers to their supports
    (fair senders regenerate copies, and the transducer queries only see
    the support of a delivery), and explores heartbeat, full-buffer, and
    single-fact deliveries — complete for transducers that accumulate
    deliveries in memory, which all of this library's strategies do. The
    space is then finite whenever states grow monotonically over a finite
    fact universe, so exploration terminates. *)

val verdict_to_string : verdict -> string
