(** Structured run traces: one event per transition, with the causal
    stamps of {!Causal}, for protocol inspection, provenance
    ({!Provenance}), and empirical coordination detection ({!Detect}). *)

open Relational

type event = {
  index : int;           (** transition number within the run *)
  node : Value.t;        (** the active node *)
  lamport : int;         (** Lamport clock of the event *)
  vector : (Value.t * int) list;
      (** vector clock (sorted association list; absent node = 0) *)
  origins : (Fact.t * int) list;
      (** per delivered copy: the send event it came from *)
  delivered : Fact.t list;   (** delivered message copies, multiplicity
                                 included *)
  sent : Fact.t list;        (** facts broadcast by this transition *)
  output_delta : Fact.t list;  (** output facts first produced here *)
  dup : int;
      (** fault duplication factor of this transition's sends (1 when
          failure-free) *)
  restart : bool;
      (** the node crashed and lost its state just before this
          transition *)
  injected : Fact.t list;
      (** message facts re-injected into the node's buffer on restart
          (at-least-once redelivery) *)
}
(** The fault annotations serialize only when non-default, so
    failure-free exports are byte-identical to pre-fault ones, and
    pre-fault traces parse with failure-free annotations. *)

val stamp : event -> Causal.stamp
(** The event's causal stamp, for {!Causal.hb} / {!Causal.concurrent}. *)

type collector

val collector : unit -> collector

val record : collector -> event -> unit
(** Also forwards the event to {!Observe.Sink.default} (as a
    ["net.transition"] instant in category ["trace"], causal stamp in
    the args) when that sink is enabled, so run traces show up in
    JSONL / Chrome exports. *)

val events : collector -> event list
(** In transition order. *)

val outputs_timeline : collector -> (int * Fact.t) list
(** [(transition index, fact)] for every output fact, in order. *)

val canonical : event list -> event list
(** A schedule-independent linear extension of happens-before: sorted by
    (lamport, node, index). Lamport clocks respect happens-before and
    equal-clock events are pairwise concurrent, so this refines the
    causal order deterministically — the stable tie-break that makes
    exports byte-identical across [--jobs]. *)

val to_jsonl : event list -> string
(** One compact JSON object per line. Facts are serialized with
    {!Fact.to_string}; the encoding round-trips through {!of_jsonl} for
    non-Skolem values. *)

val of_jsonl : string -> (event list, string) result
(** Parse {!to_jsonl} output (blank lines ignored). Traces written
    before the causal layer parse with empty stamps. *)

val sweep_to_jsonl : (string * event list) list -> string
(** Deterministic export of several labeled traces (e.g. sweep cells):
    cells sorted by label, each cell's events in {!canonical} order,
    each line carrying a ["cell"] field. Byte-identical across [--jobs]
    for equal inputs. *)

val causal_schema : string
(** ["calm-causal/v1"]. *)

val to_causal_json : network:Distributed.network -> event list -> string
(** The [calm-causal/v1] document: schema tag, network, and the events
    (in {!canonical} order) with their full causal stamps. Validated by
    {!Observe.Schema_check.validate_causal}. *)

val to_dot : event list -> string
(** The happens-before DAG in Graphviz DOT: one cluster per node,
    program-order edges solid, message deliveries dashed and labeled
    with the delivered facts. *)

val to_chrome_causal : network:Distributed.network -> event list -> string
(** Chrome trace_event rendering: one track (tid) per network node, the
    Lamport clock as the synthetic time axis, message deliveries as flow
    events ("s"/"f" arrows between tracks). *)

val pp_event : Format.formatter -> event -> unit

val pp_summary : ?limit:int -> Format.formatter -> collector -> unit
(** The first [limit] (default 20) non-trivial events (those that
    delivered, sent, or output something). *)
