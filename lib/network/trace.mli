(** Structured run traces: one event per transition, for protocol
    inspection in the examples and for debugging transducers. *)

open Relational

type event = {
  index : int;           (** transition number within the run *)
  node : Value.t;        (** the active node *)
  delivered : Fact.t list;   (** support of the delivered submultiset *)
  sent : Fact.t list;        (** facts broadcast by this transition *)
  output_delta : Fact.t list;  (** output facts first produced here *)
}

type collector

val collector : unit -> collector

val record : collector -> event -> unit
(** Also forwards the event to {!Observe.Sink.default} (as a
    ["net.transition"] instant in category ["trace"]) when that sink is
    enabled, so run traces show up in JSONL / Chrome exports. *)

val events : collector -> event list
(** In transition order. *)

val outputs_timeline : collector -> (int * Fact.t) list
(** [(transition index, fact)] for every output fact, in order. *)

val to_jsonl : event list -> string
(** One compact JSON object per line. Facts are serialized with
    {!Fact.to_string}; the encoding round-trips through {!of_jsonl} for
    non-Skolem values. *)

val of_jsonl : string -> (event list, string) result
(** Parse {!to_jsonl} output (blank lines ignored). *)

val pp_event : Format.formatter -> event -> unit

val pp_summary : ?limit:int -> Format.formatter -> collector -> unit
(** The first [limit] (default 20) non-trivial events (those that
    delivered, sent, or output something). *)
