(** "A transducer network computes a query" (Section 4.1.4): every fair
    run on every network/policy produces exactly [Q(I)] as its union of
    outputs. This module checks that property over a finite battery of
    schedulers and policies. *)

open Relational

val default_schedulers : (string * Run.scheduler) list

val default_policies :
  ?domain_guided_only:bool -> Schema.t -> Distributed.network ->
  Policy.t list
(** hash-fact, first-attribute, hash-value, replicate-all, and single-node
    policies (only the domain-guided ones when restricted). *)

type verdict = {
  expected : Instance.t;
  runs : (string * Run.result) list;   (** "<policy>/<scheduler>" label *)
  mismatches : string list;            (** labels whose output ≠ expected *)
  all_quiesced : bool;
}

val consistent : verdict -> bool
(** No mismatches and every run quiesced. *)

val check :
  ?schedulers:(string * Run.scheduler) list ->
  ?policies:Policy.t list ->
  ?max_rounds:int ->
  ?jobs:int ->
  variant:Config.variant ->
  transducer:Transducer.t ->
  query:Query.t ->
  input:Instance.t ->
  Distributed.network -> verdict
(** Runs the transducer network on the input under every
    scheduler × policy combination and compares the accumulated output
    against [Q(input)]. With [jobs > 1] the independent sweep cells run
    on a Domain pool ({!Run.sweep}); the verdict is unchanged. *)

val check_traced :
  ?schedulers:(string * Run.scheduler) list ->
  ?policies:Policy.t list ->
  ?max_rounds:int ->
  ?jobs:int ->
  variant:Config.variant ->
  transducer:Transducer.t ->
  query:Query.t ->
  input:Instance.t ->
  Distributed.network -> verdict * (string * Trace.event list) list
(** Like {!check}, additionally returning each cell's causal trace
    (label in the same ["<policy>/<scheduler>"] format). Cell order —
    events included — is [jobs]-independent. *)
