open Relational

type verdict =
  | Consistent of { configs : int }
  | Wrong_output of { config : Config.t; extra : Fact.t }
  | Stuck of { config : Config.t; missing : Fact.t }
  | Out_of_budget of { configs : int }

module Cset = Set.Make (struct
  type t = Config.t

  let compare = Config.compare
end)

module Cmap = Map.Make (struct
  type t = Config.t

  let compare = Config.compare
end)

exception Found of verdict

(* Telemetry (all stable): BFS shape, not simulation detail. The inner
   what-if simulation (successor steps, fair-continuation replays) runs
   under [Metrics.silenced] — the sequential path caches continuations
   while the parallel one recomputes them, so letting [Config.transition]
   record there would make [net.*] counts jobs-dependent. What both paths
   share is the round-structured search itself, and that is what we
   count. *)
let m_expanded = Observe.Metrics.counter "explore.expanded"
let m_dedup = Observe.Metrics.counter "explore.dedup_hits"
let m_frontier = Observe.Metrics.histogram "explore.frontier"

let check ?(max_configs = 20_000) ?jobs ~variant ~policy ~transducer ~query
    ~input () =
  let network = Policy.network policy in
  let expected = Query.apply query input in
  let schema = transducer.Transducer.schema in
  (* Configurations are canonicalized to buffer supports: fair senders
     regenerate undelivered copies, and the transducers considered here
     read only the support of what is delivered, so multiplicities add no
     reachable knowledge states — but they would make the space
     infinite. *)
  let canonical config =
    {
      config with
      Config.buffer =
        Value.Map.map
          (fun b ->
            Fact.Set.fold
              (fun f acc -> Multiset.add f acc)
              (Multiset.support b) Multiset.empty)
          config.Config.buffer;
    }
  in
  let step config node deliver =
    canonical
      (fst
         (Config.transition ~variant ~policy ~transducer ~input config ~node
            ~deliver))
  in
  (* Complete per-node delivery choices: nothing, everything, or any
     single buffered fact. Single-fact deliveries subsume arbitrary
     submultisets for reachability of knowledge states: any submultiset
     delivery is equivalent to a set of states reachable via singleton
     deliveries interleaved with heartbeats, because D only sees the
     support of what has been delivered and stored. *)
  let successors config =
    List.concat_map
      (fun node ->
        let buffer = Config.buffer_of config node in
        let singletons =
          Fact.Set.fold
            (fun f acc -> Multiset.add f Multiset.empty :: acc)
            (Multiset.support buffer) []
        in
        List.map (step config node) (Multiset.empty :: buffer :: singletons))
      network
  in
  (* The canonical fair continuation: full-delivery round-robin rounds
     until the round-level snapshot repeats; returns the final outputs. *)
  let final_cache = ref Cmap.empty in
  let full_round config =
    List.fold_left
      (fun config node -> step config node (Config.buffer_of config node))
      config network
  in
  let snapshot c =
    (c.Config.state, Value.Map.map Multiset.support c.Config.buffer)
  in
  let snapshot_equal (s1, b1) (s2, b2) =
    Value.Map.equal Instance.equal s1 s2
    && Value.Map.equal Fact.Set.equal b1 b2
  in
  let final_outputs_uncached config =
    let rec go prev c budget =
      if budget = 0 then Config.outputs schema c
      else
        let c' = full_round c in
        let snap = snapshot c' in
        match prev with
        | Some p when snapshot_equal p snap -> Config.outputs schema c'
        | _ -> go (Some snap) c' (budget - 1)
    in
    go None config 200
  in
  let final_outputs config =
    match Cmap.find_opt config !final_cache with
    | Some o -> o
    | None ->
      let o = final_outputs_uncached config in
      final_cache := Cmap.add config o !final_cache;
      o
  in
  let inspect_with final config =
    let out = Config.outputs schema config in
    match Instance.to_list (Instance.diff out expected) with
    | extra :: _ -> Some (Wrong_output { config; extra })
    | [] -> (
      match Instance.to_list (Instance.diff expected (final config)) with
      | missing :: _ -> Some (Stuck { config; missing })
      | [] -> None)
  in
  (* Round-structured BFS, shared by both execution modes: expand the
     whole frontier (output inspection, fair-continuation check,
     successor computation — the expensive part), then a cheap
     sequential merge dedups successors and checks the budget in exactly
     the order the frontier was expanded. The parallel mode only swaps
     the expansion mapper for [Pool.map] (with the uncached continuation
     check, since the cache is not shared across domains), so verdicts,
     certificate configs, visited counts — and the [explore.*] metrics —
     are identical under any [jobs]. *)
  let bfs ~mapper ~inspect =
    let start = Config.start network in
    let visited = ref (Cset.singleton start) in
    let frontier = ref [ start ] in
    (* Per-depth trajectory: both the frontier sample and the wave's
       dedup count happen in the sequential merge, so the series is
       identical under any [jobs]. *)
    let depth = ref 0 in
    try
      while !frontier <> [] do
        Observe.Metrics.observe m_frontier
          (float_of_int (List.length !frontier));
        if Observe.Series.is_enabled () then
          Observe.Series.sample "explore.frontier" ~tick:!depth
            (float_of_int (List.length !frontier));
        let expanded =
          mapper
            (fun c ->
              Observe.Metrics.silenced (fun () -> (inspect c, successors c)))
            !frontier
        in
        let wave_dedup = ref 0 in
        let next = ref [] in
        List.iter
          (fun (verdict, succs) ->
            if Cset.cardinal !visited > max_configs then
              raise
                (Found (Out_of_budget { configs = Cset.cardinal !visited }));
            Observe.Metrics.incr m_expanded;
            (match verdict with Some v -> raise (Found v) | None -> ());
            List.iter
              (fun c ->
                if Cset.mem c !visited then begin
                  Observe.Metrics.incr m_dedup;
                  incr wave_dedup
                end
                else begin
                  visited := Cset.add c !visited;
                  next := c :: !next
                end)
              succs)
          expanded;
        if Observe.Series.is_enabled () then
          Observe.Series.sample "explore.dedup" ~tick:!depth
            (float_of_int !wave_dedup);
        incr depth;
        frontier := List.rev !next
      done;
      Consistent { configs = Cset.cardinal !visited }
    with Found v -> v
  in
  match jobs with
  | Some j when j > 1 ->
    Parallel.Pool.with_pool ~jobs:j (fun pool ->
        bfs
          ~mapper:(fun f frontier -> Parallel.Pool.map pool f frontier)
          ~inspect:(inspect_with final_outputs_uncached))
  | _ -> bfs ~mapper:List.map ~inspect:(inspect_with final_outputs)

let verdict_to_string = function
  | Consistent { configs } ->
    Printf.sprintf "consistent (%d configurations exhausted)" configs
  | Wrong_output { extra; _ } ->
    Printf.sprintf "wrong output: %s" (Fact.to_string extra)
  | Stuck { missing; _ } ->
    Printf.sprintf "stuck: %s never produced" (Fact.to_string missing)
  | Out_of_budget { configs } ->
    Printf.sprintf "inconclusive: budget exhausted at %d configurations"
      configs
