open Relational

let default_schedulers =
  [
    ("round-robin", Run.Round_robin);
    ("random", Run.Random { seed = 1; steps = 60 });
    ("stingy", Run.Stingy { seed = 2; steps = 80 });
  ]

let default_policies ?(domain_guided_only = false) schema network =
  let all =
    [
      Policy.hash_fact schema network;
      Policy.first_attribute schema network;
      Policy.hash_value schema network;
      Policy.replicate_all schema network;
      Policy.single schema network (List.hd network);
    ]
  in
  if domain_guided_only then List.filter Policy.is_domain_guided all else all

type verdict = {
  expected : Instance.t;
  runs : (string * Run.result) list;
  mismatches : string list;
  all_quiesced : bool;
}

let consistent v = v.mismatches = [] && v.all_quiesced

let check_traced ?(schedulers = default_schedulers) ?policies ?max_rounds
    ?jobs ~variant ~transducer ~query ~input network =
  let policies =
    match policies with
    | Some ps -> ps
    | None -> default_policies query.Query.input network
  in
  let expected = Query.apply query input in
  let cells =
    List.concat_map
      (fun policy ->
        List.map
          (fun (sname, sched) ->
            (Policy.name policy ^ "/" ^ sname, policy, sched))
          schedulers)
      policies
  in
  let swept = Run.sweep ?jobs ?max_rounds ~variant ~transducer ~input cells in
  let runs = List.map (fun (label, r, _events) -> (label, r)) swept in
  let mismatches =
    List.filter_map
      (fun (label, r) ->
        if Instance.equal r.Run.outputs expected then None else Some label)
      runs
  in
  let all_quiesced = List.for_all (fun (_, r) -> r.Run.quiesced) runs in
  ( { expected; runs; mismatches; all_quiesced },
    List.map (fun (label, _r, events) -> (label, events)) swept )

let check ?schedulers ?policies ?max_rounds ?jobs ~variant ~transducer ~query
    ~input network =
  fst
    (check_traced ?schedulers ?policies ?max_rounds ?jobs ~variant ~transducer
       ~query ~input network)
