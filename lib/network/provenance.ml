open Relational

type cone = {
  target : Fact.t;
  anchor : Trace.event;
  events : Trace.event list;
  nodes : Value.t list;
}

let cone_of events target =
  let events =
    List.sort (fun a b -> compare a.Trace.index b.Trace.index) events
  in
  match
    List.find_opt
      (fun e -> List.exists (Fact.equal target) e.Trace.output_delta)
      events
  with
  | None -> None
  | Some anchor ->
    (* e is in the anchor's causal past iff V(e) ≤ V(anchor): vector
       clocks characterize happens-before exactly. *)
    let cone_events =
      List.filter
        (fun e -> Causal.vector_leq e.Trace.vector anchor.Trace.vector)
        events
    in
    Some
      {
        target;
        anchor;
        events = cone_events;
        nodes = Causal.support anchor.Trace.vector;
      }

let heard_from_all ~network cone =
  List.for_all
    (fun n -> List.exists (Value.equal n) cone.nodes)
    network

let replay ~variant ~policy ~transducer ~input cone =
  let facts_equal a b =
    Instance.equal (Instance.of_list a) (Instance.of_list b)
  in
  try
    let config =
      List.fold_left
        (fun config e ->
          (* Faulty traces carry the annotations needed to replay them:
             a restart wipes the node's state and re-injects the logged
             redeliveries; loss/partition holds need nothing (the replay
             buffer is a superset of the real one, so sub-checks pass
             and extra copies are simply never delivered). *)
          let config =
            if not e.Trace.restart then config
            else
              let state =
                Value.Map.add e.Trace.node Instance.empty
                  config.Config.state
              in
              let buffer =
                Value.Map.update e.Trace.node
                  (fun b ->
                    Some
                      (List.fold_left
                         (fun b f -> Multiset.add f b)
                         (Option.value b ~default:Multiset.empty)
                         e.Trace.injected))
                  config.Config.buffer
              in
              { Config.state; buffer }
          in
          let config', stats =
            Config.transition ~variant ~policy ~transducer ~input config
              ~node:e.Trace.node
              ~deliver:(Multiset.of_list e.Trace.delivered)
          in
          (* Duplication enqueued [dup]-fold copies in the real run;
             mirror the extras so later deliveries of those copies
             replay. *)
          let config' =
            if e.Trace.dup <= 1 || e.Trace.sent = [] then config'
            else
              let extra =
                List.fold_left
                  (fun m f -> Multiset.add ~copies:(e.Trace.dup - 1) f m)
                  Multiset.empty e.Trace.sent
              in
              let buffer =
                Value.Map.mapi
                  (fun y b ->
                    if Value.equal y e.Trace.node then b
                    else Multiset.union b extra)
                  config'.Config.buffer
              in
              { config' with Config.buffer }
          in
          if
            not
              (facts_equal
                 (Instance.to_list stats.Config.sent_facts)
                 e.Trace.sent)
          then
            failwith
              (Printf.sprintf
                 "replay of event #%d diverged: sent facts differ" e.Trace.index);
          if
            not
              (facts_equal
                 (Instance.to_list stats.Config.output_delta)
                 e.Trace.output_delta)
          then
            failwith
              (Printf.sprintf
                 "replay of event #%d diverged: output delta differs"
                 e.Trace.index);
          config')
        (Config.start (Policy.network policy))
        cone.events
    in
    Ok (Config.outputs transducer.Transducer.schema config)
  with
  | Failure m -> Error m
  | Invalid_argument m -> Error ("replay failed: " ^ m)

let validate ~variant ~policy ~transducer ~input cone =
  match replay ~variant ~policy ~transducer ~input cone with
  | Error _ as e -> e
  | Ok outputs ->
    if Instance.mem cone.target outputs then Ok ()
    else
      Error
        (Printf.sprintf "replayed cone does not produce %s"
           (Fact.to_string cone.target))

let pp ppf cone =
  Format.fprintf ppf "@[<v>fact    %a@ anchor  #%d @@ node %a (L%d)@ "
    Fact.pp cone.target cone.anchor.Trace.index Value.pp
    cone.anchor.Trace.node cone.anchor.Trace.lamport;
  Format.fprintf ppf "cone    %d of the run's events@ nodes   %a@ "
    (List.length cone.events)
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       Value.pp)
    cone.nodes;
  let interesting =
    List.filter
      (fun e ->
        e.Trace.delivered <> [] || e.Trace.sent <> []
        || e.Trace.output_delta <> [])
      cone.events
  in
  Format.fprintf ppf "@[<v 2>events:";
  List.iter
    (fun e -> Format.fprintf ppf "@ %a" Trace.pp_event e)
    interesting;
  Format.fprintf ppf "@]@]"
