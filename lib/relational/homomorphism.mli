(** Homomorphisms between instances and permutations of the domain
    (Sections 2 and 3.2 of the paper). *)

type mapping = Value.t Value.Map.t
(** A finite function on domain values. Values outside its support are
    treated as fixed points by {!apply_value}. *)

val apply_value : mapping -> Value.t -> Value.t
val apply_fact : mapping -> Fact.t -> Fact.t
val apply : mapping -> Instance.t -> Instance.t

val is_homomorphism : mapping -> Instance.t -> Instance.t -> bool
(** [is_homomorphism h i j] checks that [h] is defined on all of [adom i]
    and maps every fact of [i] to a fact of [j]. *)

val is_injective : mapping -> bool

val find : Instance.t -> Instance.t -> mapping option
(** Backtracking search for a homomorphism from the first instance into the
    second. Exponential in the worst case; intended for the small instances
    used in class checking. *)

val find_injective : Instance.t -> Instance.t -> mapping option

val exists : Instance.t -> Instance.t -> bool
val exists_injective : Instance.t -> Instance.t -> bool

val permutations_of : Value.Set.t -> mapping list
(** All permutations of the given (small!) value set, as mappings. Used for
    genericity testing: a query [Q] is generic iff [Q(π I) = π (Q I)] for
    all permutations [π] of [dom]. *)

val random_permutation : seed:int -> Value.Set.t -> mapping
(** A pseudo-random permutation of the given set (deterministic in the
    seed), extended with fresh images so it behaves like a permutation of
    [dom] moving the set off itself half of the time. *)
