let quote s = "\"" ^ String.concat "\\\"" (String.split_on_char '"' s) ^ "\""

let edges ?(rel = "E") ?(prefix = "") i =
  Instance.fold
    (fun f acc ->
      if Fact.rel f = rel && Fact.arity f = 2 then
        Printf.sprintf "  %s -> %s;"
          (quote (prefix ^ Value.to_string (Fact.arg f 0)))
          (quote (prefix ^ Value.to_string (Fact.arg f 1)))
        :: acc
      else acc)
    i []
  |> List.sort String.compare

let node_decls ?(rel = "E") ~prefix i =
  Instance.restrict_rels i [ rel ]
  |> Instance.adom
  |> Value.Set.elements
  |> List.map (fun v ->
         Printf.sprintf "  %s [label=%s];"
           (quote (prefix ^ Value.to_string v))
           (quote (Value.to_string v)))

let of_relation ?rel i =
  String.concat "\n" (("digraph G {" :: edges ?rel i) @ [ "}" ])

let of_distributed ?rel h =
  let clusters =
    List.mapi
      (fun k node ->
        let prefix = Printf.sprintf "c%d_" k in
        let local = Distributed.local h node in
        String.concat "\n"
          ((Printf.sprintf "  subgraph cluster_%d {" k
           :: Printf.sprintf "    label=%s;" (quote (Value.to_string node))
           :: List.map (fun l -> "  " ^ l) (node_decls ?rel ~prefix local))
          @ List.map (fun l -> "  " ^ l) (edges ?rel ~prefix local)
          @ [ "  }" ]))
      (Distributed.network h)
  in
  String.concat "\n" (("digraph G {" :: clusters) @ [ "}" ])
