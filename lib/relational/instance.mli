(** Database instances: finite sets of facts.

    This is the paper's notion of instance (Section 2): a finite set of
    facts over some schema. Instances are immutable; the Datalog engine
    builds its own indexed representation for evaluation. *)

type t

val empty : t
val is_empty : t -> bool
val cardinal : t -> int
(** [|I|], the number of facts. *)

val of_list : Fact.t list -> t
val of_set : Fact.Set.t -> t
val to_list : t -> Fact.t list
val to_set : t -> Fact.Set.t

val of_strings : string list -> t
(** Each string parsed with {!Fact.of_string}. *)

val add : Fact.t -> t -> t
val remove : Fact.t -> t -> t
val mem : Fact.t -> t -> bool
val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val subset : t -> t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val filter : (Fact.t -> bool) -> t -> t
val fold : (Fact.t -> 'a -> 'a) -> t -> 'a -> 'a
val iter : (Fact.t -> unit) -> t -> unit
val for_all : (Fact.t -> bool) -> t -> bool
val exists : (Fact.t -> bool) -> t -> bool
val map_values : (Value.t -> Value.t) -> t -> t

val adom : t -> Value.Set.t
(** Active domain: all values occurring in facts of the instance. *)

val restrict : t -> Schema.t -> t
(** [restrict i sigma] is the paper's [I|σ]: the maximal subset of [i] over
    [sigma]. *)

val restrict_rels : t -> string list -> t
(** Facts whose relation name is in the list (arities not checked). *)

val rels : t -> string list
(** Relation names occurring in the instance, sorted, without duplicates. *)

val by_rel : t -> string -> Fact.t list
(** All facts with the given relation name. *)

val hash : t -> int
(** Structural digest: a fold of {!Fact.hash} over the facts in
    {!Fact.compare} order, so [equal a b] implies [hash a = hash b].
    Suitable as a memo key (paired with {!equal} on collision); not
    cryptographic. *)

val first_missing : t -> t -> Fact.t option
(** [first_missing a b] is the least fact of [a] absent from [b] — equal
    to the head of [to_list (diff a b)] when the diff is non-empty —
    computed without materializing the difference. *)

val tuples : t -> string -> Value.t array list
(** Argument tuples of the facts with the given relation name. *)

val schema : t -> Schema.t
(** Minimal schema the instance is over.
    @raise Invalid_argument if a name occurs with two arities. *)

val over : t -> Schema.t -> bool
(** Is every fact over the given schema? *)

val induced : t -> Value.Set.t -> t
(** [induced i c] = [{ f ∈ i | adom(f) ⊆ c }] — the induced subinstance on
    the value set [c] (Section 3.2). *)

val touching : t -> Value.Set.t -> t
(** [{ f ∈ i | adom(f) ∩ c ≠ ∅ }] — facts sharing a value with [c] (used by
    the Mdisjoint evaluation strategy, Theorem 4.4). *)

val is_domain_distinct_from : t -> t -> bool
(** [is_domain_distinct_from j i]: every fact of [j] contains at least one
    value outside [adom i] (Section 3.1). Vacuously true for empty [j]. *)

val is_domain_disjoint_from : t -> t -> bool
(** [is_domain_disjoint_from j i]: [adom j] and [adom i] are disjoint. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
