(** Components of an instance (Section 5.1 of the paper).

    A component of [I] is a minimal nonempty subset [J ⊆ I] with
    [adom(J) ∩ adom(I \ J) = ∅]: the equivalence classes of facts under the
    "shares a domain value" relation, computed with union-find. *)

val components : Instance.t -> Instance.t list
(** [co(I)], sorted for determinism. The union of the result is [I], the
    results are pairwise nonempty and pairwise adom-disjoint, and each is
    minimal with that property. *)

val component_of : Instance.t -> Value.t -> Instance.t
(** The component whose active domain contains the given value, or the
    empty instance if no fact mentions it. *)

val count : Instance.t -> int

val is_component_of : Instance.t -> Instance.t -> bool
(** [is_component_of j i] checks the definitional conditions directly
    (used to cross-validate the union-find implementation in tests). *)
