(** Data values.

    The paper assumes an infinite universe [dom] of data values. We realize
    it as integers, symbols (strings), and — for ILOG¬ value invention
    (Section 5.2 of the paper) — ground Skolem terms built from a functor
    name and argument values. Node identifiers of a network are ordinary
    values ("node identifiers can occur as data in relations", Section
    4.1.1). *)

type t =
  | Int of int
  | Sym of string
  | Skolem of string * t list
      (** [Skolem (f, args)] is the ground term [f(args)] produced by value
          invention. Invented values never appear in user inputs. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val is_invented : t -> bool
(** [true] iff the value is, or contains, a Skolem term. *)

val int : int -> t
val sym : string -> t

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val of_string : string -> t
(** Inverse of {!to_string} for non-Skolem values: integer literals parse to
    [Int], everything else to [Sym]. *)

module Set : Set.S with type elt = t
module Map : Map.S with type key = t

val fresh_not_in : Set.t -> int -> t list
(** [fresh_not_in used n] returns [n] distinct integer values absent from
    [used] (and from each other). Used to build domain-distinct and
    domain-disjoint extensions in monotonicity checking. *)
