type t = int Fact.Map.t
(* Invariant: all stored multiplicities are >= 1. *)

let empty = Fact.Map.empty
let is_empty = Fact.Map.is_empty
let size t = Fact.Map.fold (fun _ n acc -> acc + n) t 0
let support t = Fact.Map.fold (fun f _ acc -> Fact.Set.add f acc) t Fact.Set.empty
let count f t = match Fact.Map.find_opt f t with Some n -> n | None -> 0
let mem f t = Fact.Map.mem f t

let add ?(copies = 1) f t =
  if copies < 0 then invalid_arg "Multiset.add: negative copies";
  if copies = 0 then t else Fact.Map.add f (count f t + copies) t

let of_list l = List.fold_left (fun t f -> add f t) empty l
let of_instance i = Instance.fold (fun f t -> add f t) i empty
let union a b = Fact.Map.fold (fun f n t -> add ~copies:n f t) b a

let diff a b =
  Fact.Map.fold
    (fun f n t ->
      let k = n - count f b in
      if k > 0 then Fact.Map.add f k t else t)
    a Fact.Map.empty

let remove_one f t =
  match Fact.Map.find_opt f t with
  | None -> t
  | Some 1 -> Fact.Map.remove f t
  | Some n -> Fact.Map.add f (n - 1) t

let sub a b = Fact.Map.for_all (fun f n -> n <= count f b) a
let fold = Fact.Map.fold

let to_list t =
  Fact.Map.fold
    (fun f n acc -> List.rev_append (List.init n (fun _ -> f)) acc)
    t []
  |> List.sort Fact.compare

let equal a b = Fact.Map.equal Int.equal a b
let compare a b = Fact.Map.compare Int.compare a b

let pp ppf t =
  Format.fprintf ppf "{|%a|}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       (fun ppf (f, n) ->
         if n = 1 then Fact.pp ppf f
         else Format.fprintf ppf "%a x%d" Fact.pp f n))
    (Fact.Map.bindings t)
