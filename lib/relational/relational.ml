(** Relational substrate: values, facts, schemas, instances, and the
    structural notions (homomorphisms, components, distribution) the paper
    builds on. Entry point re-exporting the submodules. *)

module Value = Value
module Fact = Fact
module Schema = Schema
module Instance = Instance
module Homomorphism = Homomorphism
module Component = Component
module Multiset = Multiset
module Distributed = Distributed
module Query = Query
module Io = Io
module Dot = Dot
