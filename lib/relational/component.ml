(* Union-find over the active domain; facts glue their values together. *)

module UF = struct
  type t = { parent : (Value.t, Value.t) Hashtbl.t }

  let create () = { parent = Hashtbl.create 64 }

  let rec find t v =
    match Hashtbl.find_opt t.parent v with
    | None ->
      Hashtbl.add t.parent v v;
      v
    | Some p ->
      if Value.equal p v then v
      else begin
        let root = find t p in
        Hashtbl.replace t.parent v root;
        root
      end

  let union t a b =
    let ra = find t a and rb = find t b in
    if not (Value.equal ra rb) then Hashtbl.replace t.parent ra rb
end

let components i =
  let uf = UF.create () in
  Instance.iter
    (fun f ->
      match Fact.args f with
      | [] -> ()
      | v0 :: rest -> List.iter (fun v -> UF.union uf v0 v) rest)
    i;
  let groups = Hashtbl.create 16 in
  Instance.iter
    (fun f ->
      let root =
        match Fact.args f with
        | [] -> assert false
        | v :: _ -> UF.find uf v
      in
      let cur =
        match Hashtbl.find_opt groups root with
        | Some c -> c
        | None -> Instance.empty
      in
      Hashtbl.replace groups root (Instance.add f cur))
    i;
  Hashtbl.fold (fun _ c acc -> c :: acc) groups []
  |> List.sort Instance.compare

let component_of i v =
  match
    List.find_opt (fun c -> Value.Set.mem v (Instance.adom c)) (components i)
  with
  | Some c -> c
  | None -> Instance.empty

let count i = List.length (components i)

let is_component_of j i =
  (not (Instance.is_empty j))
  && Instance.subset j i
  && Instance.is_domain_disjoint_from j (Instance.diff i j)
  &&
  (* Minimality: no strict nonempty subset J' of J is adom-disjoint from
     I \ J'. Equivalent: J has exactly one component. *)
  count j = 1
