let parse_facts s =
  s
  |> String.split_on_char '\n'
  |> List.filter (fun line ->
         let line = String.trim line in
         line = "" || line.[0] <> '%')
  |> List.concat_map (String.split_on_char '.')
  |> List.filter_map (fun chunk ->
         let chunk = String.trim chunk in
         if chunk = "" then None else Some (Fact.of_string chunk))
  |> Instance.of_list

let print_facts i =
  Instance.to_list i |> List.map Fact.to_string |> String.concat "\n"

let load_facts path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  parse_facts s

let save_facts path i =
  let oc = open_out path in
  output_string oc (print_facts i);
  output_char oc '\n';
  close_out oc

let parse_csv ~rel s =
  s
  |> String.split_on_char '\n'
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if line = "" || line.[0] = '#' then None
         else
           let fields =
             String.split_on_char ',' line
             |> List.map (fun f -> Value.of_string (String.trim f))
           in
           Some (Fact.make rel fields))
  |> Instance.of_list

let print_csv ~rel i =
  Instance.by_rel i rel
  |> List.sort Fact.compare
  |> List.map (fun f ->
         Fact.args f
         |> List.map (fun v ->
                let s = Value.to_string v in
                if String.contains s ',' then
                  invalid_arg "Io.print_csv: value contains a comma"
                else s)
         |> String.concat ",")
  |> String.concat "\n"
