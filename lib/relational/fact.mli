(** Facts [R(d1, ..., dk)].

    A fact pairs a relation name with a non-empty tuple of values (the paper
    restricts attention to relations of arity at least one, Section 2). *)

type t = private { rel : string; args : Value.t array }

val make : string -> Value.t list -> t
(** @raise Invalid_argument on an empty argument list. *)

val make_array : string -> Value.t array -> t
(** Like {!make} but takes ownership of the array (it is copied). *)

val rel : t -> string
val args : t -> Value.t list
val arity : t -> int
val arg : t -> int -> Value.t

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val adom : t -> Value.Set.t
(** Set of values occurring in the fact. *)

val map_values : (Value.t -> Value.t) -> t -> t

val is_invented : t -> bool
(** [true] iff some argument contains a Skolem term. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val of_string : string -> t
(** Parses ["R(a, 1, b)"]. @raise Invalid_argument on syntax errors. *)

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
