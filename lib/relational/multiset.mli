(** Fact multisets.

    Message buffers of transducer networks are multisets (Section 4.1.3):
    the same message can be in flight several times simultaneously. *)

type t

val empty : t
val is_empty : t -> bool

val size : t -> int
(** Total number of copies. *)

val support : t -> Fact.Set.t
(** The multiset "collapsed to a set" (the paper's [M]). *)

val count : Fact.t -> t -> int
val mem : Fact.t -> t -> bool
val add : ?copies:int -> Fact.t -> t -> t
val of_list : Fact.t list -> t
val of_instance : Instance.t -> t

val union : t -> t -> t
(** Multiset union: multiplicities add. *)

val diff : t -> t -> t
(** Multiset difference: multiplicities subtract, truncated at zero. *)

val remove_one : Fact.t -> t -> t
(** Removes a single copy; identity if absent. *)

val sub : t -> t -> bool
(** Submultiset test. *)

val fold : (Fact.t -> int -> 'a -> 'a) -> t -> 'a -> 'a
val to_list : t -> Fact.t list
(** Each fact repeated by its multiplicity. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
