(** Database schemas: finite maps from relation names to arities.

    All arities are at least 1 (the paper excludes nullary relations,
    Section 2; the consequences of lifting this are discussed in its
    Section 7). *)

type t

val empty : t

val of_list : (string * int) list -> t
(** @raise Invalid_argument on a non-positive arity or on two bindings of
    the same name with different arities. *)

val add : string -> int -> t -> t
(** @raise Invalid_argument as for {!of_list}. *)

val arity : t -> string -> int option
val arity_exn : t -> string -> int
val mem : t -> string -> bool
val relations : t -> (string * int) list
val names : t -> string list
val is_empty : t -> bool

val union : t -> t -> t
(** @raise Invalid_argument if a shared name has conflicting arities. *)

val disjoint_union : t -> t -> t
(** @raise Invalid_argument if the name sets intersect at all. *)

val diff : t -> t -> t
(** Relations of the first schema not named in the second. *)

val restrict : t -> string list -> t
val subset : t -> t -> bool
val equal : t -> t -> bool
val disjoint : t -> t -> bool

val fact_over : t -> Fact.t -> bool
(** Is the fact over this schema (name present with matching arity)? *)

val all_facts : t -> Value.Set.t -> Fact.t list
(** Every fact over the schema whose values are drawn from the given set.
    Exponential in arity; used for small-domain enumeration and for the
    [policy_R] system relations. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
