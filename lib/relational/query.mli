(** Abstract queries.

    A query (Section 2) is a generic mapping from instances over an input
    schema to instances over an output schema. Genericity — commuting with
    every permutation of [dom] — cannot be checked once and for all, so
    {!check_generic} provides a randomized spot-check used by the test
    suite. *)

type t = {
  name : string;
  input : Schema.t;
  output : Schema.t;
  eval : Instance.t -> Instance.t;
}

val make :
  name:string -> input:Schema.t -> output:Schema.t ->
  (Instance.t -> Instance.t) -> t

val apply : t -> Instance.t -> Instance.t
(** Restricts the input to the input schema, evaluates, and checks the
    result is over the output schema.
    @raise Invalid_argument if the result leaves the output schema. *)

val compose : name:string -> t -> t -> t
(** [compose q2 q1] feeds the output of [q1] (unioned with nothing else) to
    [q2]. Requires the output schema of [q1] to cover the input of [q2]. *)

val union : name:string -> t -> t -> t
(** Pointwise union of two queries with identical schemas. *)

val constant_filter : t -> (Instance.t -> bool) -> t
(** [constant_filter q p] returns [q]'s output when [p] holds of the input
    and the empty instance otherwise. Used to build the paper's separating
    queries ("output the edge relation unless ... exists"). *)

val check_generic : ?trials:int -> ?seed:int -> t -> Instance.t -> bool
(** [check_generic q i] verifies [Q(π I) = π (Q I)] for randomly chosen
    permutations [π] of [adom I] (extended with fresh values). *)
