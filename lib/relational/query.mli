(** Abstract queries.

    A query (Section 2) is a generic mapping from instances over an input
    schema to instances over an output schema. Genericity — commuting with
    every permutation of [dom] — cannot be checked once and for all, so
    {!check_generic} provides a randomized spot-check used by the test
    suite. *)

type delta = { facts : Fact.t list; instance : Instance.t Lazy.t }
(** An extension presented as a delta against some base: the raw fact
    list (duplicate-free, what staged witnesses and the incremental
    engine consume) plus the {!Instance.t} view, forced only by consumers
    that genuinely need a set — the scan enumerates thousands of deltas
    per base and most probes never build the set. *)

val delta_of_instance : Instance.t -> delta
val delta_of_facts : Fact.t list -> delta
val delta_instance : delta -> Instance.t
val empty_delta : delta

type t = {
  name : string;
  input : Schema.t;
  output : Schema.t;
  eval : Instance.t -> Instance.t;
  witness :
    (base:Instance.t -> expected:Instance.t -> delta -> Fact.t option) option;
      (** Optional staged membership fast path: [w ~base ~expected d]
          must equal
          [Instance.first_missing expected (apply _ (union base d))] —
          the least fact of [expected] outside [Q(base ∪ d)] — but may
          compute it without materializing [Q]. The partial application
          [w ~base ~expected] is the place for per-base work (interning,
          resolving [expected]): the monotonicity scan stages it once per
          base and probes every admissible extension through it.
          Correctness is pinned by the engine-equivalence test wall. *)
  maintain : (Instance.t -> delta -> Instance.t) option;
      (** Optional incremental evaluator: [m base] materializes [Q(base)]
          once (saturated IDB plus support state) and the returned probe
          answers [apply _ (union base d)] for each delta by semi-naive
          rules seeded only with [d] — never re-saturating from scratch.
          Supplied by [Datalog.Program.query] via [Datalog.Ivm]; used by
          {!stage} when no witness is registered and the [ivm] knob is
          on. Must agree extensionally with [eval] on every
          [base ∪ d]. *)
}

val make :
  ?witness:(base:Instance.t -> expected:Instance.t -> delta -> Fact.t option) ->
  ?maintain:(Instance.t -> delta -> Instance.t) ->
  name:string -> input:Schema.t -> output:Schema.t ->
  (Instance.t -> Instance.t) -> t

val apply : t -> Instance.t -> Instance.t
(** Restricts the input to the input schema, evaluates, and checks the
    result is over the output schema.
    @raise Invalid_argument if the result leaves the output schema. *)

val stage :
  ?ivm:bool ->
  t -> base:Instance.t -> expected:Instance.t -> delta -> Fact.t option
(** [stage q ~base ~expected] is a probe answering, for each extension
    delta [d], the least fact of [expected] not in [apply q (base ∪ d)]
    ([None] when [expected] is covered) — dispatching to the query's
    {!field-witness} when present, then to {!field-maintain} (unless
    [~ivm:false]), otherwise unioning and evaluating per probe (the
    non-witness routes skip [apply]'s output-schema assertion). Apply it
    partially and reuse the result: per-base work (witness staging, IVM
    materialization) happens at staging time. *)

type route = Witness | Ivm | Eval

val route : ?ivm:bool -> t -> route
(** Which implementation {!stage} will dispatch to under the given [ivm]
    knob — the scan records it per probe group. *)

val first_missing : t -> expected:Instance.t -> Instance.t -> Fact.t option
(** [first_missing q ~expected i] is the least fact of [expected] not in
    [apply q i], or [None] when [expected ⊆ apply q i]:
    [stage q ~base:i ~expected] probed with the empty delta. *)

val compose : name:string -> t -> t -> t
(** [compose q2 q1] feeds the output of [q1] (unioned with nothing else) to
    [q2]. Requires the output schema of [q1] to cover the input of [q2]. *)

val union : name:string -> t -> t -> t
(** Pointwise union of two queries with identical schemas. *)

val constant_filter : t -> (Instance.t -> bool) -> t
(** [constant_filter q p] returns [q]'s output when [p] holds of the input
    and the empty instance otherwise. Used to build the paper's separating
    queries ("output the edge relation unless ... exists"). *)

val check_generic : ?trials:int -> ?seed:int -> t -> Instance.t -> bool
(** [check_generic q i] verifies [Q(π I) = π (Q I)] for randomly chosen
    permutations [π] of [adom I] (extended with fresh values). *)
