(** Abstract queries.

    A query (Section 2) is a generic mapping from instances over an input
    schema to instances over an output schema. Genericity — commuting with
    every permutation of [dom] — cannot be checked once and for all, so
    {!check_generic} provides a randomized spot-check used by the test
    suite. *)

type t = {
  name : string;
  input : Schema.t;
  output : Schema.t;
  eval : Instance.t -> Instance.t;
  witness :
    (base:Instance.t -> expected:Instance.t -> Instance.t -> Fact.t option)
    option;
      (** Optional staged membership fast path: [w ~base ~expected ext]
          must equal
          [Instance.first_missing expected (apply _ (union base ext))] —
          the least fact of [expected] outside [Q(base ∪ ext)] — but may
          compute it without materializing [Q]. The partial application
          [w ~base ~expected] is the place for per-base work (interning,
          resolving [expected]): the monotonicity scan stages it once per
          base and probes every admissible extension through it.
          Correctness is pinned by the engine-equivalence test wall. *)
}

val make :
  ?witness:
    (base:Instance.t -> expected:Instance.t -> Instance.t -> Fact.t option) ->
  name:string -> input:Schema.t -> output:Schema.t ->
  (Instance.t -> Instance.t) -> t

val apply : t -> Instance.t -> Instance.t
(** Restricts the input to the input schema, evaluates, and checks the
    result is over the output schema.
    @raise Invalid_argument if the result leaves the output schema. *)

val stage :
  t -> base:Instance.t -> expected:Instance.t -> Instance.t -> Fact.t option
(** [stage q ~base ~expected] is a probe answering, for each extension
    [J], the least fact of [expected] not in [apply q (base ∪ J)] ([None]
    when [expected] is covered) — dispatching to the query's
    {!field-witness} when present, otherwise unioning and evaluating per
    probe (without [apply]'s output-schema assertion). Apply it partially
    and reuse the result: per-base work happens at staging time. *)

val first_missing : t -> expected:Instance.t -> Instance.t -> Fact.t option
(** [first_missing q ~expected i] is the least fact of [expected] not in
    [apply q i], or [None] when [expected ⊆ apply q i]:
    [stage q ~base:i ~expected] probed with the empty extension. *)

val compose : name:string -> t -> t -> t
(** [compose q2 q1] feeds the output of [q1] (unioned with nothing else) to
    [q2]. Requires the output schema of [q1] to cover the input of [q2]. *)

val union : name:string -> t -> t -> t
(** Pointwise union of two queries with identical schemas. *)

val constant_filter : t -> (Instance.t -> bool) -> t
(** [constant_filter q p] returns [q]'s output when [p] holds of the input
    and the empty instance otherwise. Used to build the paper's separating
    queries ("output the edge relation unless ... exists"). *)

val check_generic : ?trials:int -> ?seed:int -> t -> Instance.t -> bool
(** [check_generic q i] verifies [Q(π I) = π (Q I)] for randomly chosen
    permutations [π] of [adom I] (extended with fresh values). *)
