type t = Fact.Set.t

let empty = Fact.Set.empty
let is_empty = Fact.Set.is_empty
let cardinal = Fact.Set.cardinal
let of_list l = Fact.Set.of_list l
let of_set s = s
let to_list = Fact.Set.elements
let to_set t = t
let of_strings l = of_list (List.map Fact.of_string l)
let add = Fact.Set.add
let remove = Fact.Set.remove
let mem = Fact.Set.mem
let union = Fact.Set.union
let inter = Fact.Set.inter
let diff = Fact.Set.diff
let subset = Fact.Set.subset
let equal = Fact.Set.equal
let compare = Fact.Set.compare
let filter = Fact.Set.filter
let fold = Fact.Set.fold
let iter = Fact.Set.iter
let for_all = Fact.Set.for_all
let exists = Fact.Set.exists
let map_values g t = Fact.Set.map (Fact.map_values g) t

let adom t =
  Fact.Set.fold (fun f acc -> Value.Set.union (Fact.adom f) acc) t
    Value.Set.empty

let restrict t sigma = Fact.Set.filter (Schema.fact_over sigma) t

module Sset = Set.Make (String)

let restrict_rels t names =
  match names with
  | [] -> Fact.Set.empty
  | [ name ] -> Fact.Set.filter (fun f -> Fact.rel f = name) t
  | _ ->
    let names = Sset.of_list names in
    Fact.Set.filter (fun f -> Sset.mem (Fact.rel f) names) t

let rels t =
  Fact.Set.fold (fun f acc -> Sset.add (Fact.rel f) acc) t Sset.empty
  |> Sset.elements

let by_rel t name =
  Fact.Set.fold (fun f acc -> if Fact.rel f = name then f :: acc else acc) t []

(* Order-insensitive only because set iteration is sorted: the digest is
   a fold over facts in {!Fact.compare} order, so equal instances hash
   equally. Cheap enough for memo keys; not cryptographic. *)
let hash t =
  Fact.Set.fold (fun f acc -> (acc * 486187739) + Fact.hash f) t 0x9e3779b9

(* Least fact of [a] missing from [b] — equals
   [List.hd (to_list (diff a b))] when the diff is non-empty, without
   materializing the diff. The scan hot path leans on this equality to
   keep certificates byte-identical with the seed checker. *)
let first_missing a b =
  Fact.Set.to_seq a |> Seq.find (fun f -> not (Fact.Set.mem f b))

let tuples t name =
  List.map (fun f -> Array.of_list (Fact.args f)) (by_rel t name)

let schema t =
  Fact.Set.fold (fun f acc -> Schema.add (Fact.rel f) (Fact.arity f) acc) t
    Schema.empty

let over t sigma = Fact.Set.for_all (Schema.fact_over sigma) t
let induced t c = Fact.Set.filter (fun f -> Value.Set.subset (Fact.adom f) c) t

let touching t c =
  Fact.Set.filter
    (fun f -> not (Value.Set.is_empty (Value.Set.inter (Fact.adom f) c)))
    t

let is_domain_distinct_from j i =
  let dom_i = adom i in
  Fact.Set.for_all
    (fun f -> not (Value.Set.subset (Fact.adom f) dom_i))
    j

let is_domain_disjoint_from j i =
  Value.Set.is_empty (Value.Set.inter (adom j) (adom i))

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       Fact.pp)
    (to_list t)

let to_string t = Format.asprintf "%a" pp t
