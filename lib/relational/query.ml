type t = {
  name : string;
  input : Schema.t;
  output : Schema.t;
  eval : Instance.t -> Instance.t;
}

let make ~name ~input ~output eval = { name; input; output; eval }

let apply q i =
  let result = q.eval (Instance.restrict i q.input) in
  if not (Instance.over result q.output) then
    invalid_arg
      (Printf.sprintf "Query.apply: %s produced facts outside %s" q.name
         (Schema.to_string q.output));
  result

let compose ~name q2 q1 =
  if not (Schema.subset q2.input q1.output) then
    invalid_arg
      (Printf.sprintf "Query.compose: input of %s not covered by output of %s"
         q2.name q1.name);
  {
    name;
    input = q1.input;
    output = q2.output;
    eval = (fun i -> apply q2 (apply q1 i));
  }

let union ~name a b =
  if not (Schema.equal a.input b.input && Schema.equal a.output b.output) then
    invalid_arg "Query.union: schema mismatch";
  {
    name;
    input = a.input;
    output = a.output;
    eval = (fun i -> Instance.union (apply a i) (apply b i));
  }

let constant_filter q p =
  {
    q with
    name = q.name ^ "/filtered";
    eval =
      (fun i -> if p (Instance.restrict i q.input) then q.eval i else Instance.empty);
  }

let check_generic ?(trials = 8) ?(seed = 42) q i =
  let dom = Instance.adom i in
  let ok = ref true in
  for k = 0 to trials - 1 do
    let pi = Homomorphism.random_permutation ~seed:(seed + k) dom in
    let lhs = apply q (Homomorphism.apply pi i) in
    let rhs = Homomorphism.apply pi (apply q i) in
    if not (Instance.equal lhs rhs) then ok := false
  done;
  !ok
