type t = {
  name : string;
  input : Schema.t;
  output : Schema.t;
  eval : Instance.t -> Instance.t;
  witness :
    (base:Instance.t -> expected:Instance.t -> Instance.t -> Fact.t option)
    option;
}

let make ?witness ~name ~input ~output eval =
  { name; input; output; eval; witness }

let apply q i =
  let result = q.eval (Instance.restrict i q.input) in
  if not (Instance.over result q.output) then
    invalid_arg
      (Printf.sprintf "Query.apply: %s produced facts outside %s" q.name
         (Schema.to_string q.output));
  result

(* The monotonicity scan's membership probe, staged per base: [stage q
   ~base ~expected] returns a function answering, for each extension
   [J], the least fact of [expected] outside [Q(base ∪ J)]. A
   query-supplied witness does the per-base analysis once (interning the
   base's graph, resolving [expected]) and answers each probe from the
   extension's few facts, never materializing [Q]; the fallback unions,
   evaluates, and scans [expected] in fact order. Both routes return the
   head of [diff expected after] whenever that diff is non-empty. The
   fallback skips [apply]'s output validation — the scan probes millions
   of instances and the validation is a development assertion,
   re-checked on the certificate path. *)
let stage q ~base ~expected =
  if Instance.is_empty expected then fun _ -> None
  else
    match q.witness with
    | Some w -> w ~base ~expected
    | None ->
      fun extension ->
        Instance.first_missing expected
          (q.eval (Instance.restrict (Instance.union base extension) q.input))

let first_missing q ~expected i = stage q ~base:i ~expected Instance.empty

let compose ~name q2 q1 =
  if not (Schema.subset q2.input q1.output) then
    invalid_arg
      (Printf.sprintf "Query.compose: input of %s not covered by output of %s"
         q2.name q1.name);
  {
    name;
    input = q1.input;
    output = q2.output;
    eval = (fun i -> apply q2 (apply q1 i));
    witness = None;
  }

let union ~name a b =
  if not (Schema.equal a.input b.input && Schema.equal a.output b.output) then
    invalid_arg "Query.union: schema mismatch";
  {
    name;
    input = a.input;
    output = a.output;
    eval = (fun i -> Instance.union (apply a i) (apply b i));
    witness = None;
  }

let constant_filter q p =
  {
    q with
    name = q.name ^ "/filtered";
    eval =
      (fun i -> if p (Instance.restrict i q.input) then q.eval i else Instance.empty);
    witness = None;
  }

let check_generic ?(trials = 8) ?(seed = 42) q i =
  let dom = Instance.adom i in
  let ok = ref true in
  for k = 0 to trials - 1 do
    let pi = Homomorphism.random_permutation ~seed:(seed + k) dom in
    let lhs = apply q (Homomorphism.apply pi i) in
    let rhs = Homomorphism.apply pi (apply q i) in
    if not (Instance.equal lhs rhs) then ok := false
  done;
  !ok
