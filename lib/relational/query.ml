type delta = { facts : Fact.t list; instance : Instance.t Lazy.t }

let delta_of_instance i = { facts = Instance.to_list i; instance = lazy i }
let delta_of_facts facts = { facts; instance = lazy (Instance.of_list facts) }
let delta_instance d = Lazy.force d.instance
let empty_delta = { facts = []; instance = lazy Instance.empty }

type t = {
  name : string;
  input : Schema.t;
  output : Schema.t;
  eval : Instance.t -> Instance.t;
  witness :
    (base:Instance.t -> expected:Instance.t -> delta -> Fact.t option) option;
  maintain : (Instance.t -> delta -> Instance.t) option;
}

let make ?witness ?maintain ~name ~input ~output eval =
  { name; input; output; eval; witness; maintain }

let apply q i =
  let result = q.eval (Instance.restrict i q.input) in
  if not (Instance.over result q.output) then
    invalid_arg
      (Printf.sprintf "Query.apply: %s produced facts outside %s" q.name
         (Schema.to_string q.output));
  result

(* The monotonicity scan's membership probe, staged per base: [stage q
   ~base ~expected] returns a function answering, for each extension
   [Δ], the least fact of [expected] outside [Q(base ∪ Δ)]. A
   query-supplied witness does the per-base analysis once (interning the
   base's graph, resolving [expected]) and answers each probe from the
   delta's few facts, never materializing [Q]; the [maintain] route
   saturates [Q(base)] once into an incremental handle and answers each
   probe with a Δ-seeded semi-naive pass; the fallback unions, evaluates
   from scratch, and scans [expected] in fact order. All routes return
   the head of [diff expected after] whenever that diff is non-empty.
   The non-witness routes skip [apply]'s output validation — the scan
   probes millions of instances and the validation is a development
   assertion, re-checked on the certificate path. *)
let stage ?(ivm = true) q ~base ~expected =
  if Instance.is_empty expected then fun _ -> None
  else
    match (q.witness, q.maintain) with
    | Some w, _ -> w ~base ~expected
    | None, Some m when ivm ->
      let app = m (Instance.restrict base q.input) in
      fun d -> Instance.first_missing expected (app d)
    | None, _ ->
      fun d ->
        Instance.first_missing expected
          (q.eval
             (Instance.restrict
                (Instance.union base (delta_instance d))
                q.input))

type route = Witness | Ivm | Eval

let route ?(ivm = true) q =
  match (q.witness, q.maintain) with
  | Some _, _ -> Witness
  | None, Some _ when ivm -> Ivm
  | None, _ -> Eval

let first_missing q ~expected i = stage q ~base:i ~expected empty_delta

let compose ~name q2 q1 =
  if not (Schema.subset q2.input q1.output) then
    invalid_arg
      (Printf.sprintf "Query.compose: input of %s not covered by output of %s"
         q2.name q1.name);
  {
    name;
    input = q1.input;
    output = q2.output;
    eval = (fun i -> apply q2 (apply q1 i));
    witness = None;
    maintain = None;
  }

let union ~name a b =
  if not (Schema.equal a.input b.input && Schema.equal a.output b.output) then
    invalid_arg "Query.union: schema mismatch";
  {
    name;
    input = a.input;
    output = a.output;
    eval = (fun i -> Instance.union (apply a i) (apply b i));
    witness = None;
    maintain = None;
  }

let constant_filter q p =
  {
    q with
    name = q.name ^ "/filtered";
    eval =
      (fun i -> if p (Instance.restrict i q.input) then q.eval i else Instance.empty);
    witness = None;
    maintain = None;
  }

let check_generic ?(trials = 8) ?(seed = 42) q i =
  let dom = Instance.adom i in
  let ok = ref true in
  for k = 0 to trials - 1 do
    let pi = Homomorphism.random_permutation ~seed:(seed + k) dom in
    let lhs = apply q (Homomorphism.apply pi i) in
    let rhs = Homomorphism.apply pi (apply q i) in
    if not (Instance.equal lhs rhs) then ok := false
  done;
  !ok
