type mapping = Value.t Value.Map.t

let apply_value h v =
  match Value.Map.find_opt v h with Some w -> w | None -> v

let apply_fact h f = Fact.map_values (apply_value h) f
let apply h i = Instance.map_values (apply_value h) i

let is_homomorphism h i j =
  Value.Set.for_all (fun v -> Value.Map.mem v h) (Instance.adom i)
  && Instance.for_all (fun f -> Instance.mem (apply_fact h f) j) i

let is_injective h =
  let images = Value.Map.fold (fun _ w acc -> w :: acc) h [] in
  List.length images
  = Value.Set.cardinal (Value.Set.of_list images)

(* Backtracking search: extend a partial mapping value by value, pruning
   with the facts whose adom is fully mapped. *)
let search ~injective i j =
  let facts_i = Instance.to_list i in
  let vals_i = Value.Set.elements (Instance.adom i) in
  let vals_j = Value.Set.elements (Instance.adom j) in
  let consistent h =
    List.for_all
      (fun f ->
        let mapped = Value.Set.for_all (fun v -> Value.Map.mem v h) (Fact.adom f) in
        (not mapped) || Instance.mem (apply_fact h f) j)
      facts_i
  in
  let rec go h used = function
    | [] -> if consistent h then Some h else None
    | v :: rest ->
      let try_image acc w =
        match acc with
        | Some _ -> acc
        | None ->
          if injective && Value.Set.mem w used then None
          else
            let h' = Value.Map.add v w h in
            if consistent h' then go h' (Value.Set.add w used) rest else None
      in
      List.fold_left try_image None vals_j
  in
  go Value.Map.empty Value.Set.empty vals_i

let find i j = search ~injective:false i j
let find_injective i j = search ~injective:true i j
let exists i j = find i j <> None
let exists_injective i j = find_injective i j <> None

let permutations_of set =
  let vals = Value.Set.elements set in
  let rec perms = function
    | [] -> [ [] ]
    | _ :: _ as l ->
      List.concat_map
        (fun x ->
          let rest = List.filter (fun y -> not (Value.equal x y)) l in
          List.map (fun p -> x :: p) (perms rest))
        l
  in
  List.map
    (fun image ->
      List.fold_left2
        (fun h v w -> Value.Map.add v w h)
        Value.Map.empty vals image)
    (perms vals)

let random_permutation ~seed set =
  let st = Random.State.make [| seed |] in
  let vals = Array.of_list (Value.Set.elements set) in
  let n = Array.length vals in
  if Random.State.bool st then begin
    (* Shuffle within the set. *)
    let image = Array.copy vals in
    for i = n - 1 downto 1 do
      let j = Random.State.int st (i + 1) in
      let tmp = image.(i) in
      image.(i) <- image.(j);
      image.(j) <- tmp
    done;
    Array.to_seq (Array.mapi (fun i v -> (v, image.(i))) vals)
    |> Seq.fold_left (fun h (v, w) -> Value.Map.add v w h) Value.Map.empty
  end
  else
    (* Move the set to fresh values entirely: a permutation of dom
       restricted to its action on [set]. *)
    let fresh = Value.fresh_not_in set n in
    List.fold_left2
      (fun h v w -> Value.Map.add v w h)
      Value.Map.empty (Array.to_list vals) fresh
