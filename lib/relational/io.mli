(** Plain-text instance I/O.

    Two formats:
    - {e fact files}: one fact per line in [R(a,b)] syntax, blank lines
      and [%]-comments ignored (also accepts '.'-terminated facts);
    - {e CSV}: one relation per file, each line a comma-separated tuple.
*)

val parse_facts : string -> Instance.t
(** Parses fact-file content. @raise Invalid_argument on malformed
    facts. *)

val print_facts : Instance.t -> string
(** One fact per line, sorted; inverse of {!parse_facts}. *)

val load_facts : string -> Instance.t
(** {!parse_facts} on a file's contents. *)

val save_facts : string -> Instance.t -> unit

val parse_csv : rel:string -> string -> Instance.t
(** Each non-empty line is a tuple of relation [rel]; fields are trimmed
    and parsed as values (integers or symbols). *)

val print_csv : rel:string -> Instance.t -> string
(** The tuples of relation [rel], one CSV line each, sorted. Values
    containing commas are not supported (raises). *)
