type network = Value.t list

let validate_network nodes =
  let sorted = List.sort_uniq Value.compare nodes in
  if sorted = [] then invalid_arg "Distributed: a network must be nonempty";
  sorted

let network_of_ints l = validate_network (List.map Value.int l)
let network_of_names l = validate_network (List.map Value.sym l)

type t = { net : network; locals : Instance.t Value.Map.t }

let create net =
  let net = validate_network net in
  {
    net;
    locals =
      List.fold_left
        (fun m x -> Value.Map.add x Instance.empty m)
        Value.Map.empty net;
  }

let network t = t.net

let local t x =
  match Value.Map.find_opt x t.locals with
  | Some i -> i
  | None ->
    invalid_arg
      ("Distributed.local: node " ^ Value.to_string x ^ " not in network")

let set_local t x i =
  ignore (local t x);
  { t with locals = Value.Map.add x i t.locals }

let update_local t x f = set_local t x (f (local t x))

let global t =
  Value.Map.fold (fun _ i acc -> Instance.union i acc) t.locals Instance.empty

let of_assignment net assignment =
  let t = create net in
  List.fold_left
    (fun t (x, i) -> update_local t x (Instance.union i))
    t assignment

let nodes t = t.net
let fold f t acc = Value.Map.fold f t.locals acc
let equal a b =
  List.equal Value.equal a.net b.net
  && Value.Map.equal Instance.equal a.locals b.locals

let pp ppf t =
  Value.Map.iter
    (fun x i -> Format.fprintf ppf "%a -> %a@." Value.pp x Instance.pp i)
    t.locals
