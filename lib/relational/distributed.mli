(** Distributed database instances (Section 4.1.1).

    A network is a nonempty finite set of domain values ("nodes"); a
    distributed instance maps each node to a local instance, possibly with
    replication. *)

type network = Value.t list
(** Nonempty, sorted, duplicate-free list of node identifiers. *)

val network_of_ints : int list -> network
val network_of_names : string list -> network

val validate_network : network -> network
(** Sorts, deduplicates. @raise Invalid_argument if empty. *)

type t

val create : network -> t
(** Every node mapped to the empty instance. *)

val network : t -> network
val local : t -> Value.t -> Instance.t
(** @raise Invalid_argument if the node is not in the network. *)

val set_local : t -> Value.t -> Instance.t -> t
val update_local : t -> Value.t -> (Instance.t -> Instance.t) -> t

val global : t -> Instance.t
(** Union of all local instances. *)

val of_assignment : network -> (Value.t * Instance.t) list -> t
val nodes : t -> Value.t list
val fold : (Value.t -> Instance.t -> 'a -> 'a) -> t -> 'a -> 'a
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
