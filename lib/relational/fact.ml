type t = { rel : string; args : Value.t array }

let make rel args =
  if args = [] then invalid_arg "Fact.make: nullary facts are not supported";
  { rel; args = Array.of_list args }

let make_array rel args =
  if Array.length args = 0 then
    invalid_arg "Fact.make_array: nullary facts are not supported";
  { rel; args = Array.copy args }

let rel f = f.rel
let args f = Array.to_list f.args
let arity f = Array.length f.args
let arg f i = f.args.(i)

let compare a b =
  let c = String.compare a.rel b.rel in
  if c <> 0 then c
  else
    let la = Array.length a.args and lb = Array.length b.args in
    let c = Stdlib.compare la lb in
    if c <> 0 then c
    else
      let rec go i =
        if i = la then 0
        else
          let c = Value.compare a.args.(i) b.args.(i) in
          if c <> 0 then c else go (i + 1)
      in
      go 0

let equal a b = compare a b = 0
let hash f = Hashtbl.hash (f.rel, Array.map Value.hash f.args)

let adom f =
  Array.fold_left (fun acc v -> Value.Set.add v acc) Value.Set.empty f.args

let map_values g f = { f with args = Array.map g f.args }
let is_invented f = Array.exists Value.is_invented f.args

let to_string f =
  Printf.sprintf "%s(%s)" f.rel
    (String.concat "," (Array.to_list (Array.map Value.to_string f.args)))

let pp ppf f = Format.pp_print_string ppf (to_string f)

let of_string s =
  let s = String.trim s in
  match String.index_opt s '(' with
  | None -> invalid_arg ("Fact.of_string: missing '(' in " ^ s)
  | Some i ->
    if String.length s = 0 || s.[String.length s - 1] <> ')' then
      invalid_arg ("Fact.of_string: missing ')' in " ^ s);
    let rel = String.trim (String.sub s 0 i) in
    let inner = String.sub s (i + 1) (String.length s - i - 2) in
    let parts = String.split_on_char ',' inner in
    let vals = List.map (fun p -> Value.of_string (String.trim p)) parts in
    if rel = "" || List.exists (fun v -> Value.to_string v = "") vals then
      invalid_arg ("Fact.of_string: bad fact " ^ s);
    make rel vals

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
