type t =
  | Int of int
  | Sym of string
  | Skolem of string * t list

let rec compare a b =
  match a, b with
  | Int x, Int y -> Stdlib.compare x y
  | Int _, _ -> -1
  | _, Int _ -> 1
  | Sym x, Sym y -> String.compare x y
  | Sym _, _ -> -1
  | _, Sym _ -> 1
  | Skolem (f, xs), Skolem (g, ys) ->
    let c = String.compare f g in
    if c <> 0 then c else compare_lists xs ys

and compare_lists xs ys =
  match xs, ys with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | x :: xs', y :: ys' ->
    let c = compare x y in
    if c <> 0 then c else compare_lists xs' ys'

let equal a b = compare a b = 0

let rec hash = function
  | Int x -> Hashtbl.hash (0, x)
  | Sym s -> Hashtbl.hash (1, s)
  | Skolem (f, args) -> Hashtbl.hash (2, f, List.map hash args)

let is_invented = function Int _ | Sym _ -> false | Skolem _ -> true

let int x = Int x
let sym s = Sym s

let rec to_string = function
  | Int x -> string_of_int x
  | Sym s -> s
  | Skolem (f, args) ->
    Printf.sprintf "%s(%s)" f (String.concat "," (List.map to_string args))

let pp ppf v = Format.pp_print_string ppf (to_string v)

let of_string s =
  match int_of_string_opt s with Some x -> Int x | None -> Sym s

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)

let fresh_not_in used n =
  let rec go acc candidate remaining =
    if remaining = 0 then List.rev acc
    else if Set.mem (Int candidate) used then go acc (candidate + 1) remaining
    else go (Int candidate :: acc) (candidate + 1) (remaining - 1)
  in
  go [] 1_000_000 n
