(** Graphviz DOT export for binary relations and distributed instances —
    used by the examples to visualize inputs and placements. *)

val of_relation : ?rel:string -> Instance.t -> string
(** A digraph with one arc per fact of the (default ["E"]) binary
    relation; facts of other relations or arities are ignored. *)

val of_distributed : ?rel:string -> Distributed.t -> string
(** One cluster per node of the network showing its local fragment. *)
