module M = Map.Make (String)

type t = int M.t

let empty = M.empty

let add name ar t =
  if ar < 1 then
    invalid_arg
      (Printf.sprintf "Schema.add: relation %s has arity %d < 1" name ar);
  match M.find_opt name t with
  | Some ar' when ar' <> ar ->
    invalid_arg
      (Printf.sprintf "Schema.add: relation %s bound to arities %d and %d" name
         ar' ar)
  | _ -> M.add name ar t

let of_list l = List.fold_left (fun t (name, ar) -> add name ar t) empty l
let arity t name = M.find_opt name t

let arity_exn t name =
  match M.find_opt name t with
  | Some ar -> ar
  | None -> invalid_arg ("Schema.arity_exn: unknown relation " ^ name)

let mem t name = M.mem name t
let relations t = M.bindings t
let names t = List.map fst (M.bindings t)
let is_empty = M.is_empty
let union a b = M.fold (fun name ar t -> add name ar t) b a

let disjoint_union a b =
  M.fold
    (fun name ar t ->
      if M.mem name t then
        invalid_arg ("Schema.disjoint_union: shared relation " ^ name)
      else M.add name ar t)
    b a

let diff a b = M.filter (fun name _ -> not (M.mem name b)) a
let restrict t keep = M.filter (fun name _ -> List.mem name keep) t
let subset a b = M.for_all (fun name ar -> M.find_opt name b = Some ar) a
let equal a b = M.equal Int.equal a b
let disjoint a b = M.for_all (fun name _ -> not (M.mem name b)) a

let fact_over t f = arity t (Fact.rel f) = Some (Fact.arity f)

let tuples_of_length values k =
  let rec go k =
    if k = 0 then [ [] ]
    else
      let rest = go (k - 1) in
      List.concat_map (fun v -> List.map (fun tl -> v :: tl) rest) values
  in
  go k

let all_facts t dom =
  let values = Value.Set.elements dom in
  M.fold
    (fun name ar acc ->
      List.rev_append
        (List.map (Fact.make name) (tuples_of_length values ar))
        acc)
    t []

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       (fun ppf (name, ar) -> Format.fprintf ppf "%s/%d" name ar))
    (M.bindings t)

let to_string t = Format.asprintf "%a" pp t
