(** Delta variant of the M-strategy: an ablation for the paper's closing
    remark that the naive strategies "require all data to be sent to all
    nodes" on every transition.

    Identical to {!Broadcast} except that each node broadcasts every local
    input fact exactly once (a [Sent_R] memory marker suppresses
    re-sends). Computes the same queries — messages are never lost in the
    model, so one copy per recipient suffices — at a fraction of the
    message volume (experiment E17). *)

open Relational

val sent_prefix : string   (* "Sent_" *)

val transducer : Query.t -> Network.Transducer.t
