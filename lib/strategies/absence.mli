(** The Mdistinct-strategy (proof of Theorem 4.3).

    Nodes broadcast their local input facts {e and} certified non-facts:
    a node responsible for a candidate fact (its [policy_R] row is shown)
    that is absent from its local fragment knows the fact is globally
    absent, and broadcasts the absence. A node outputs [Q] on its
    collected facts once its [MyAdom] is {e complete}: for every candidate
    fact over [MyAdom] it either holds the fact or an absence certificate.
    The collected set is then the induced subinstance of the input on
    [MyAdom], so domain-distinct-monotonicity makes every produced fact
    correct. Requires the policy-aware model (the [policy_R] relations). *)

open Relational

val fact_msg_prefix : string     (* "Msg_" *)
val absence_msg_prefix : string  (* "AbsMsg_" *)
val fact_mem_prefix : string     (* "Got_" *)
val absence_mem_prefix : string  (* "Abs_" *)

val certified_absences : Schema.t -> Instance.t -> Instance.t
(** Candidate input facts over [MyAdom] that this node is responsible for
    but does not hold locally — certified globally absent. *)

val complete : Schema.t -> Instance.t -> bool
(** Is [MyAdom] complete at this node (every candidate fact over it either
    known present or known absent)? *)

val transducer : Query.t -> Network.Transducer.t
