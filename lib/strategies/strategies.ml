(** The three generic coordination-free evaluation strategies from the
    constructive halves of the paper's Theorems 4.3 and 4.4 and
    Corollary 4.6 — broadcast (M), fact-and-absence broadcast
    (Mdistinct), and the domain-request protocol (Mdisjoint,
    domain-guided) — plus the coordinated barrier fallback that computes
    queries outside Mdisjoint. *)

module Common = Common
module Broadcast = Broadcast
module Broadcast_delta = Broadcast_delta
module Absence = Absence
module Domain_request = Domain_request
module Barrier = Barrier
