open Relational

let msg_prefix = "Msg_"
let mem_prefix = "Got_"

let known input d =
  let local = Common.restrict_input input d in
  let stored = Common.unrename ~prefix:mem_prefix d in
  let delivered = Common.unrename ~prefix:msg_prefix d in
  Instance.union local
    (Instance.union
       (Instance.restrict stored input)
       (Instance.restrict delivered input))

let transducer (q : Query.t) =
  let schema =
    Network.Transducer_schema.make ~input:q.Query.input ~output:q.Query.output
      ~message:(Common.rename_schema ~prefix:msg_prefix q.Query.input)
      ~memory:(Common.rename_schema ~prefix:mem_prefix q.Query.input)
      ()
  in
  Network.Transducer.make ~schema
    ~out:(fun d -> Query.apply q (known q.Query.input d))
    ~ins:(fun d -> Common.rename ~prefix:mem_prefix (known q.Query.input d))
    ~snd:(fun d ->
      Common.rename ~prefix:msg_prefix (Common.restrict_input q.Query.input d))
    ()
