open Relational

let fact_prefix = "BFact_"
let ack_prefix = "BAck_"
let here_rel = "BHere"
let ack_here_rel = "BAckHere"
let done_rel = "BDone"
let store_prefix = "S"

let message_schema input =
  Schema.of_list
    ([ (here_rel, 1); (ack_here_rel, 2); (done_rel, 2) ]
    @ List.concat_map
        (fun (r, k) -> [ (fact_prefix ^ r, k + 1); (ack_prefix ^ r, k + 2) ])
        (Schema.relations input))

(* A message fact is "known" when it was just delivered (visible under
   its message name) or stored in an earlier transition (visible under
   its store-prefixed memory name). *)
let known d name =
  Instance.by_rel d name @ Instance.by_rel d (store_prefix ^ name)

let all_nodes d =
  List.fold_left
    (fun acc f -> Value.Set.add (Fact.arg f 0) acc)
    Value.Set.empty
    (Instance.by_rel d Network.Transducer_schema.all_rel)

(* Input facts learned from peers: known BFact_R(x, t) ↦ R(t). *)
let collected input d =
  List.fold_left
    (fun acc (r, _) ->
      List.fold_left
        (fun acc f -> Instance.add (Fact.make r (List.tl (Fact.args f))) acc)
        acc
        (known d (fact_prefix ^ r)))
    Instance.empty (Schema.relations input)

let transducer (q : Query.t) =
  let input = q.Query.input in
  let msg = message_schema input in
  let schema =
    Network.Transducer_schema.make ~input ~output:q.Query.output ~message:msg
      ~memory:(Common.rename_schema ~prefix:store_prefix msg)
      ()
  in
  let snd d =
    match Common.my_id d with
    | None -> Instance.empty
    | Some me ->
      let local = Common.restrict_input input d in
      (* Presence marker + my own input facts, tagged with my id. The
         whole message set is re-broadcast every transition (it is
         monotone and eventually stable), so the network quiesces the
         same way the broadcast strategy does. *)
      let base = Instance.add (Fact.make here_rel [ me ]) Instance.empty in
      let base =
        Instance.fold
          (fun f acc ->
            Instance.add
              (Fact.make (fact_prefix ^ Fact.rel f) (me :: Fact.args f))
              acc)
          local base
      in
      (* Acknowledge every tagged fact and marker I have seen. *)
      let base =
        List.fold_left
          (fun acc (r, _) ->
            List.fold_left
              (fun acc f ->
                Instance.add (Fact.make (ack_prefix ^ r) (me :: Fact.args f)) acc)
              acc
              (known d (fact_prefix ^ r)))
          base (Schema.relations input)
      in
      let base =
        List.fold_left
          (fun acc f ->
            Instance.add (Fact.make ack_here_rel [ me; Fact.arg f 0 ]) acc)
          base (known d here_rel)
      in
      (* BDone(me, y): y has acknowledged my marker and every one of my
         local facts, hence y holds all of my input. *)
      let acked_here_by y =
        List.exists
          (fun f ->
            Value.equal (Fact.arg f 0) y && Value.equal (Fact.arg f 1) me)
          (known d ack_here_rel)
      in
      let acked_fact_by y f =
        List.exists
          (fun g ->
            match Fact.args g with
            | a :: o :: rest ->
              Value.equal a y && Value.equal o me
              && List.equal Value.equal rest (Fact.args f)
            | _ -> false)
          (known d (ack_prefix ^ Fact.rel f))
      in
      Value.Set.fold
        (fun y acc ->
          if Value.equal y me then acc
          else if
            acked_here_by y
            && Instance.fold (fun f ok -> ok && acked_fact_by y f) local true
          then Instance.add (Fact.make done_rel [ me; y ]) acc
          else acc)
        (all_nodes d) base
  in
  let ins d = Common.rename ~prefix:store_prefix (Instance.restrict d msg) in
  let out d =
    match Common.my_id d with
    | None -> Instance.empty
    | Some me ->
      let everyone = all_nodes d in
      let have_done y =
        Value.equal y me
        || List.exists
             (fun f ->
               Value.equal (Fact.arg f 0) y && Value.equal (Fact.arg f 1) me)
             (known d done_rel)
      in
      if Value.Set.is_empty everyone then Instance.empty
      else if Value.Set.for_all have_done everyone then
        (* Barrier passed: my collection is the global input, so Q may be
           applied even when non-monotone. *)
        Query.apply q
          (Instance.union (Common.restrict_input input d) (collected input d))
      else Instance.empty
  in
  Network.Transducer.make ~schema ~out ~ins ~snd ()
