open Relational

let val_msg_rel = "ValMsg"
let req_rel = "Req"
let ok_rel = "OkMsg"
let fact_msg_prefix = "FMsg_"
let ack_msg_prefix = "AckMsg_"

(* memory *)
let got_prefix = "Got_"
let got_ack_prefix = "GotAck_"
let known_val_rel = "KnownVal"
let got_req_rel = "GotReq"
let got_ok_rel = "GotOk"

let collected input d =
  let local = Common.restrict_input input d in
  let stored = Instance.restrict (Common.unrename ~prefix:got_prefix d) input in
  let delivered =
    Instance.restrict (Common.unrename ~prefix:fact_msg_prefix d) input
  in
  Instance.union local (Instance.union stored delivered)

(* Pairs (z, a) from a binary relation plus its delivered counterpart. *)
let pairs_of d rels =
  List.concat_map
    (fun rel ->
      List.filter_map
        (fun f ->
          if Fact.arity f = 2 then Some (Fact.arg f 0, Fact.arg f 1) else None)
        (Instance.by_rel d rel))
    rels

let has_ok d x a =
  List.exists
    (fun (z, b) -> Value.equal z x && Value.equal b a)
    (pairs_of d [ got_ok_rel; ok_rel ])

let complete input d =
  match Common.my_id d with
  | None -> false
  | Some x ->
    let c = Common.my_adom d in
    Value.Set.for_all
      (fun a -> Common.responsible_value input d a || has_ok d x a)
      c

(* Acks this node has seen from requester z, as a fact set over the input
   schema. *)
let acks_from d z =
  List.fold_left
    (fun acc f ->
      let rel = Fact.rel f in
      let prefix_len_mem = String.length got_ack_prefix in
      let prefix_len_msg = String.length ack_msg_prefix in
      let base =
        if
          String.length rel > prefix_len_mem
          && String.sub rel 0 prefix_len_mem = got_ack_prefix
        then Some (String.sub rel prefix_len_mem (String.length rel - prefix_len_mem))
        else if
          String.length rel > prefix_len_msg
          && String.sub rel 0 prefix_len_msg = ack_msg_prefix
        then Some (String.sub rel prefix_len_msg (String.length rel - prefix_len_msg))
        else None
      in
      match base with
      | Some base when Fact.arity f >= 2 && Value.equal (Fact.arg f 0) z ->
        Instance.add
          (Fact.make base (List.tl (Fact.args f)))
          acc
      | _ -> acc)
    Instance.empty (Instance.to_list d)

let requests_seen d = pairs_of d [ got_req_rel; req_rel ]

let q_snd input d =
  let local = Common.restrict_input input d in
  let out = ref Instance.empty in
  let add f = out := Instance.add f !out in
  (* 1. Broadcast the local active domain. *)
  Value.Set.iter
    (fun a -> add (Fact.make val_msg_rel [ a ]))
    (Instance.adom local);
  (match Common.my_id d with
  | None -> ()
  | Some x ->
    (* 2. Request every unresolved value of MyAdom. *)
    Value.Set.iter
      (fun a ->
        if (not (Common.responsible_value input d a)) && not (has_ok d x a)
        then add (Fact.make req_rel [ x; a ]))
      (Common.my_adom d);
    (* 3. Acknowledge every collected response fact. *)
    Instance.iter
      (fun f ->
        add (Fact.make (ack_msg_prefix ^ Fact.rel f) (x :: Fact.args f)))
      (Instance.restrict (Common.unrename ~prefix:got_prefix d) input);
    Instance.iter
      (fun f ->
        add (Fact.make (ack_msg_prefix ^ Fact.rel f) (x :: Fact.args f)))
      (Instance.restrict (Common.unrename ~prefix:fact_msg_prefix d) input));
  (* 4. Answer remembered requests for values we are responsible for. *)
  List.iter
    (fun (z, a) ->
      if Common.responsible_value input d a then begin
        let mine =
          Instance.filter (fun f -> Value.Set.mem a (Fact.adom f)) local
        in
        Instance.iter
          (fun f -> add (Fact.make (fact_msg_prefix ^ Fact.rel f) (Fact.args f)))
          mine;
        let acked = acks_from d z in
        if Instance.for_all (fun f -> Instance.mem f acked) mine then
          add (Fact.make ok_rel [ z; a ])
      end)
    (requests_seen d);
  !out

let q_ins input d =
  let out = ref Instance.empty in
  let add f = out := Instance.add f !out in
  (* Persist MyAdom. *)
  Value.Set.iter
    (fun a -> add (Fact.make known_val_rel [ a ]))
    (Common.my_adom d);
  (* Persist collected response facts. *)
  Instance.iter
    (fun f -> add (Fact.make (got_prefix ^ Fact.rel f) (Fact.args f)))
    (Instance.restrict (Common.unrename ~prefix:fact_msg_prefix d) input);
  Instance.iter
    (fun f -> add (Fact.make (got_prefix ^ Fact.rel f) (Fact.args f)))
    (Instance.restrict (Common.unrename ~prefix:got_prefix d) input);
  (* Persist requests, acks, OKs. *)
  List.iter
    (fun (z, a) -> add (Fact.make got_req_rel [ z; a ]))
    (requests_seen d);
  List.iter
    (fun (z, a) -> add (Fact.make got_ok_rel [ z; a ]))
    (pairs_of d [ ok_rel; got_ok_rel ]);
  Instance.iter
    (fun f ->
      let rel = Fact.rel f in
      let pl = String.length ack_msg_prefix in
      if String.length rel > pl && String.sub rel 0 pl = ack_msg_prefix then
        add
          (Fact.make
             (got_ack_prefix ^ String.sub rel pl (String.length rel - pl))
             (Fact.args f))
      else if
        String.length rel > String.length got_ack_prefix
        && String.sub rel 0 (String.length got_ack_prefix) = got_ack_prefix
      then add f)
    d;
  !out

let q_out q input d =
  if complete input d then Query.apply q (collected input d)
  else Instance.empty

let transducer (q : Query.t) =
  let input = q.Query.input in
  let message =
    Schema.of_list [ (val_msg_rel, 1); (req_rel, 2); (ok_rel, 2) ]
    |> Schema.union (Common.rename_schema ~prefix:fact_msg_prefix input)
    |> Schema.union
         (Schema.of_list
            (List.map
               (fun (r, k) -> (ack_msg_prefix ^ r, k + 1))
               (Schema.relations input)))
  in
  let memory =
    Schema.of_list [ (known_val_rel, 1); (got_req_rel, 2); (got_ok_rel, 2) ]
    |> Schema.union (Common.rename_schema ~prefix:got_prefix input)
    |> Schema.union
         (Schema.of_list
            (List.map
               (fun (r, k) -> (got_ack_prefix ^ r, k + 1))
               (Schema.relations input)))
  in
  let schema =
    Network.Transducer_schema.make ~input ~output:q.Query.output ~message
      ~memory ()
  in
  Network.Transducer.make ~schema
    ~out:(q_out q input)
    ~ins:(q_ins input)
    ~snd:(q_snd input) ()
