(** The Mdisjoint-strategy under domain-guided distribution (proof of
    Theorem 4.4).

    Nodes broadcast the active domain of their local fragment. For every
    value [a] in its [MyAdom] that a node [x] is {e not} responsible for,
    it issues a request [(x,a)]; a node responsible for [a] — which, the
    policy being domain-guided, locally holds {e every} input fact
    containing [a] — answers with those facts, and once [x] has
    acknowledged all of them it sends [OK(x,a)]. A node outputs [Q] on its
    collected facts once every value of its [MyAdom] is either its own
    responsibility or OK'd; the collected set is then the set of input
    facts touching [MyAdom], and the rest of the input is domain-disjoint
    from it, so domain-disjoint-monotonicity makes every produced fact
    correct.

    The three-step fact/ack/OK handshake is the paper's: with arbitrary
    message delays an OK must causally follow the arrival of the facts it
    certifies. Requires the policy-aware model and [Id]; works with or
    without [All]. *)

open Relational

val val_msg_rel : string    (* "ValMsg" *)
val req_rel : string        (* "Req" *)
val ok_rel : string         (* "OkMsg" *)
val fact_msg_prefix : string   (* "FMsg_" *)
val ack_msg_prefix : string    (* "AckMsg_" *)

val collected : Schema.t -> Instance.t -> Instance.t
(** Local fragment ∪ stored ∪ just-delivered response facts. *)

val complete : Schema.t -> Instance.t -> bool
(** Every value of [MyAdom] is own-responsibility or OK'd. *)

val transducer : Query.t -> Network.Transducer.t
