(** The M-strategy (Corollary 4.6 / the CALM direction of [13]).

    Every node broadcasts its local input facts and accumulates everything
    it receives; the query is evaluated on the accumulated facts at every
    transition, and output grows with every newly received fact. Correct
    for monotone queries: derived facts are never invalidated by more
    data. Works in every model variant, including the oblivious one — it
    uses none of the system relations. *)

open Relational

val msg_prefix : string   (* "Msg_" *)
val mem_prefix : string   (* "Got_" *)

val transducer : Query.t -> Network.Transducer.t

val known : Schema.t -> Instance.t -> Instance.t
(** The input facts a node knows during a transition: local fragment ∪
    stored ∪ just delivered. Exposed for the other strategies and for
    tests. *)
