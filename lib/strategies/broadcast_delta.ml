open Relational

let sent_prefix = "Sent_"

let transducer (q : Query.t) =
  let input = q.Query.input in
  let schema =
    Network.Transducer_schema.make ~input ~output:q.Query.output
      ~message:(Common.rename_schema ~prefix:Broadcast.msg_prefix input)
      ~memory:
        (Schema.union
           (Common.rename_schema ~prefix:Broadcast.mem_prefix input)
           (Common.rename_schema ~prefix:sent_prefix input))
      ()
  in
  Network.Transducer.make ~schema
    ~out:(fun d -> Query.apply q (Broadcast.known input d))
    ~ins:(fun d ->
      let local = Common.restrict_input input d in
      Instance.union
        (Common.rename ~prefix:Broadcast.mem_prefix (Broadcast.known input d))
        (Common.rename ~prefix:sent_prefix local))
    ~snd:(fun d ->
      let local = Common.restrict_input input d in
      let already =
        Instance.restrict (Common.unrename ~prefix:sent_prefix d) input
      in
      Common.rename ~prefix:Broadcast.msg_prefix
        (Instance.diff local already))
    ()
