open Relational

let rename_schema ~prefix sg =
  Schema.of_list
    (List.map (fun (name, ar) -> (prefix ^ name, ar)) (Schema.relations sg))

let rename ~prefix i =
  Instance.fold
    (fun f acc -> Instance.add (Fact.make (prefix ^ Fact.rel f) (Fact.args f)) acc)
    i Instance.empty

let unrename ~prefix i =
  let pl = String.length prefix in
  Instance.fold
    (fun f acc ->
      let name = Fact.rel f in
      if String.length name > pl && String.sub name 0 pl = prefix then
        Instance.add
          (Fact.make (String.sub name pl (String.length name - pl)) (Fact.args f))
          acc
      else acc)
    i Instance.empty

let restrict_input input d = Instance.restrict d input

let my_id d =
  match Instance.by_rel d Network.Transducer_schema.id_rel with
  | f :: _ when Fact.arity f = 1 -> Some (Fact.arg f 0)
  | _ -> None

let my_adom d =
  List.fold_left
    (fun acc f -> Value.Set.add (Fact.arg f 0) acc)
    Value.Set.empty
    (Instance.by_rel d Network.Transducer_schema.myadom_rel)

let responsible_fact d f =
  Instance.mem
    (Fact.make (Network.Transducer_schema.policy_rel (Fact.rel f)) (Fact.args f))
    d

let responsible_value input d a =
  List.exists
    (fun (r, k) ->
      Instance.mem
        (Fact.make (Network.Transducer_schema.policy_rel r) (List.init k (fun _ -> a)))
        d)
    (Schema.relations input)
