(** Shared plumbing for the evaluation-strategy transducers: relation
    renaming between the input schema and its message/memory copies, and
    accessors into the visible instance [D] of a transition. *)

open Relational

val rename_schema : prefix:string -> Schema.t -> Schema.t
val rename : prefix:string -> Instance.t -> Instance.t

val unrename : prefix:string -> Instance.t -> Instance.t
(** Keeps only facts whose relation carries the prefix, stripping it. *)

val restrict_input : Schema.t -> Instance.t -> Instance.t
(** The node's local input fragment: [D] restricted to the input schema. *)

val my_id : Instance.t -> Value.t option
(** The node's identifier from the [Id] system relation. *)

val my_adom : Instance.t -> Value.Set.t
(** Values of the [MyAdom] system relation. *)

val responsible_fact : Instance.t -> Fact.t -> bool
(** Does [D] exhibit [policy_R(d̄)] for the given input fact? *)

val responsible_value : Schema.t -> Instance.t -> Value.t -> bool
(** Under a domain-guided policy: is this node responsible for the value —
    i.e. is [policy_R(a,...,a)] shown for some input relation [R]?
    (Proof of Theorem 4.4.) *)
