(** The coordinated fallback strategy: computes {e any} query on a
    network, at the price of a global barrier.

    Every node broadcasts its local input facts tagged with its
    identifier (plus a [BHere] presence marker), acknowledges everything
    it has seen, and — once a peer [y] has acknowledged its marker and
    every one of its local facts — certifies [BDone(x, y)]: "y holds all
    of x's input". A node outputs [Q] over its collected facts only
    after receiving such a certificate from {e every} other node, so by
    then its collection equals the global input and the output is exact
    for arbitrary (non-monotone) queries.

    Message buffers are not FIFO, which is why the certificate must
    causally follow acknowledgements rather than just the sends: a
    "done" flag sent right after the facts could overtake them. The
    three-step fact/ack/done handshake forces every output event's
    causal cone to contain a transition of every node — the
    heard-from-all-nodes cut that {!Network.Detect} flags, making this
    strategy the empirically-coordinated complement of the
    coordination-free ones.

    Requires [Id] and [All] but no policy relations: the original model
    of Ameloot et al. ({!Network.Config.original}). *)

open Relational

val fact_prefix : string     (* "BFact_" *)
val ack_prefix : string      (* "BAck_" *)
val here_rel : string        (* "BHere" *)
val ack_here_rel : string    (* "BAckHere" *)
val done_rel : string        (* "BDone" *)

val transducer : Query.t -> Network.Transducer.t
