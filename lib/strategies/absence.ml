open Relational

let fact_msg_prefix = "Msg_"
let absence_msg_prefix = "AbsMsg_"
let fact_mem_prefix = "Got_"
let absence_mem_prefix = "Abs_"
let id_msg_rel = "IdMsg"
let seen_id_rel = "SeenId"

let known_absent input d =
  let stored = Common.unrename ~prefix:absence_mem_prefix d in
  let delivered = Common.unrename ~prefix:absence_msg_prefix d in
  Instance.union
    (Instance.restrict stored input)
    (Instance.restrict delivered input)

let certified_absences input d =
  let local = Common.restrict_input input d in
  let a = Common.my_adom d in
  List.fold_left
    (fun acc f ->
      if Common.responsible_fact d f && not (Instance.mem f local) then
        Instance.add f acc
      else acc)
    Instance.empty
    (Schema.all_facts input a)

let complete input d =
  let known = Broadcast.known input d in
  let absent =
    Instance.union (known_absent input d) (certified_absences input d)
  in
  let a = Common.my_adom d in
  List.for_all
    (fun f -> Instance.mem f known || Instance.mem f absent)
    (Schema.all_facts input a)

(* Nodes also broadcast their own identifier. The paper's with-All model
   gets node identifiers into every [A] for free ([A = N ∪ adom J]); in
   the All-free model of Section 4.3 identifiers must travel as data or
   absence certificates for facts mentioning them would never be issued.
   Harmless in the with-All model. *)
let id_facts d =
  match Common.my_id d with
  | None -> Instance.empty
  | Some x -> Instance.of_list [ Fact.make id_msg_rel [ x ] ]

let seen_ids d =
  let delivered = Instance.by_rel d id_msg_rel in
  let stored = Instance.by_rel d seen_id_rel in
  List.fold_left
    (fun acc f -> Instance.add (Fact.make seen_id_rel [ Fact.arg f 0 ]) acc)
    Instance.empty (delivered @ stored)

let transducer (q : Query.t) =
  let input = q.Query.input in
  let schema =
    Network.Transducer_schema.make ~input ~output:q.Query.output
      ~message:
        (Schema.add id_msg_rel 1
           (Schema.union
              (Common.rename_schema ~prefix:fact_msg_prefix input)
              (Common.rename_schema ~prefix:absence_msg_prefix input)))
      ~memory:
        (Schema.add seen_id_rel 1
           (Schema.union
              (Common.rename_schema ~prefix:fact_mem_prefix input)
              (Common.rename_schema ~prefix:absence_mem_prefix input)))
      ()
  in
  Network.Transducer.make ~schema
    ~out:(fun d ->
      if complete input d then Query.apply q (Broadcast.known input d)
      else Instance.empty)
    ~ins:(fun d ->
      Instance.union (seen_ids d)
        (Instance.union
           (Common.rename ~prefix:fact_mem_prefix (Broadcast.known input d))
           (Common.rename ~prefix:absence_mem_prefix
              (Instance.union (known_absent input d)
                 (certified_absences input d)))))
    ~snd:(fun d ->
      Instance.union (id_facts d)
        (Instance.union
           (Common.rename ~prefix:fact_msg_prefix
              (Common.restrict_input input d))
           (Common.rename ~prefix:absence_msg_prefix
              (certified_absences input d))))
    ()
