(* The telemetry test wall.

   Three claims are pinned here:
   1. Stable metric snapshots are byte-identical across jobs 1/2/4 — on
      the policy × scheduler sweep grid, on the zoo membership checks
      (including cancelled searches), and on the model checker.
   2. The exporters round-trip: sink events through JSONL, run traces
      through JSONL, and the Chrome export parses and validates.
   3. The schema validators accept what the exporters emit and reject
      tampered documents.
   Plus regressions for the two bugs fixed alongside the telemetry
   layer: parallel sweeps used to drop traces, and heartbeat prefixes
   used to report rounds = 0. *)

open Relational
open Monotone
open Queries

let check_bool name expected actual = Alcotest.(check bool) name expected actual
let check_str name expected actual = Alcotest.(check string) name expected actual

let job_counts = [ 1; 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Json: parse/print round-trips *)

let test_json_roundtrip () =
  let open Observe.Json in
  let samples =
    [
      Null;
      Bool true;
      Int 42;
      Int (-7);
      Float 3.25;
      Float 1e-9;
      String "plain";
      String "esc \"quotes\" \\ back\nnewline \t tab \x01 ctrl";
      List [ Int 1; Null; String "x" ];
      Obj [ ("a", Int 1); ("b", List [ Bool false ]); ("c", Obj []) ];
    ]
  in
  List.iter
    (fun j ->
      let s = to_string j in
      match of_string s with
      | Error m -> Alcotest.failf "reparse of %s failed: %s" s m
      | Ok j' -> check_bool ("roundtrip " ^ s) true (equal j j'))
    samples;
  (* Pretty-printed output parses back to the same tree. *)
  let j = Obj [ ("xs", List [ Int 1; Int 2 ]); ("s", String "hi") ] in
  (match of_string (to_string_pretty j) with
  | Ok j' -> check_bool "pretty roundtrip" true (equal j j')
  | Error m -> Alcotest.fail m);
  List.iter
    (fun bad ->
      check_bool ("rejects " ^ bad) true
        (Result.is_error (of_string bad)))
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2"; "{'a':1}" ]

(* ------------------------------------------------------------------ *)
(* Stable snapshots are byte-identical across jobs *)

(* Run [f] with a clean root collector and return the canonical stable
   rendering of what it recorded. *)
let stable_snapshot f =
  Observe.Metrics.reset Observe.Metrics.root;
  ignore (f ());
  Observe.Metrics.render_stable Observe.Metrics.root

let assert_jobs_invariant name f =
  let baseline = stable_snapshot (fun () -> f 1) in
  check_bool (name ^ ": baseline records something") true (baseline <> "");
  List.iter
    (fun jobs ->
      check_str
        (Printf.sprintf "%s: jobs=%d = jobs=1" name jobs)
        baseline
        (stable_snapshot (fun () -> f jobs)))
    job_counts

let net2 = Distributed.network_of_ints [ 101; 102 ]

let comp_edges =
  Query.make ~name:"comp-edges" ~input:Graph_gen.schema
    ~output:(Schema.of_list [ ("O", 2) ])
    (fun i ->
      let dom = Value.Set.elements (Instance.adom i) in
      List.fold_left
        (fun acc a ->
          List.fold_left
            (fun acc b ->
              if Instance.mem (Fact.make "E" [ a; b ]) i then acc
              else Instance.add (Fact.make "O" [ a; b ]) acc)
            acc dom)
        Instance.empty dom)

let test_sweep_metrics_jobs_invariant () =
  let input = Graph_gen.of_edges [ (1, 2); (2, 3); (5, 1) ] in
  assert_jobs_invariant "netquery sweep grid" (fun jobs ->
      Network.Netquery.check ~jobs ~variant:Network.Config.policy_aware
        ~transducer:(Strategies.Absence.transducer comp_edges)
        ~query:comp_edges ~input net2)

let small = { Checker.dom_size = 3; fresh = 2; max_base = 3; max_ext = 2 }

let test_checker_metrics_jobs_invariant () =
  (* Both outcomes matter: TC holds (full scans), comp-TC is violated
     (cancelled searches, where the pool must commit exactly the probes
     at indices up to the winning one). *)
  List.iter
    (fun (name, q) ->
      List.iter
        (fun kind ->
          assert_jobs_invariant
            (Printf.sprintf "checker %s/%s" name (Classes.kind_to_string kind))
            (fun jobs -> Checker.check_exhaustive ~bounds:small ~jobs kind q))
        [ Classes.Plain; Classes.Distinct; Classes.Disjoint ])
    [ ("tc", Zoo.tc); ("comp-tc", Zoo.comp_tc); ("q-star-2", Zoo.q_star 2) ]

let test_explore_metrics_jobs_invariant () =
  let crossed = Graph_gen.of_edges [ (1, 2); (2, 1) ] in
  let parity =
    Network.Policy.make ~name:"parity" Graph_gen.schema net2 (fun f ->
        match Fact.arg f 0 with
        | Value.Int a when a mod 2 = 1 -> [ Value.Int 101 ]
        | _ -> [ Value.Int 102 ])
  in
  assert_jobs_invariant "explore broadcast/comp-edges" (fun jobs ->
      Network.Explore.check ~max_configs:60_000 ~jobs
        ~variant:Network.Config.policy_aware ~policy:parity
        ~transducer:(Strategies.Broadcast.transducer comp_edges)
        ~query:comp_edges ~input:crossed ())

(* ------------------------------------------------------------------ *)
(* Exporters round-trip *)

let events_equal (a : Observe.Sink.event) (b : Observe.Sink.event) =
  a.Observe.Sink.ts = b.Observe.Sink.ts
  && a.Observe.Sink.dur = b.Observe.Sink.dur
  && a.Observe.Sink.track = b.Observe.Sink.track
  && a.Observe.Sink.cat = b.Observe.Sink.cat
  && a.Observe.Sink.name = b.Observe.Sink.name
  && List.length a.Observe.Sink.args = List.length b.Observe.Sink.args
  && List.for_all2
       (fun (k1, v1) (k2, v2) -> k1 = k2 && Observe.Json.equal v1 v2)
       a.Observe.Sink.args b.Observe.Sink.args

let test_sink_jsonl_roundtrip () =
  let sink = Observe.Sink.create () in
  Observe.Sink.record ~sink ~cat:"test"
    ~args:[ ("k", Observe.Json.Int 3) ]
    "instant";
  Observe.Sink.span ~sink ~cat:"test" "outer" (fun () ->
      Observe.Sink.record ~sink "inner");
  let events = Observe.Sink.events sink in
  check_bool "recorded 3 events" true (List.length events = 3);
  match Observe.Sink.of_jsonl (Observe.Sink.to_jsonl events) with
  | Error m -> Alcotest.fail m
  | Ok events' ->
    check_bool "same count" true (List.length events = List.length events');
    List.iter2
      (fun a b -> check_bool ("event " ^ a.Observe.Sink.name) true (events_equal a b))
      events events'

let test_chrome_export_valid () =
  let sink = Observe.Sink.create () in
  Observe.Sink.span ~sink ~cat:"net" "net.run" (fun () ->
      Observe.Sink.record ~sink ~cat:"trace" "net.transition");
  let doc = Observe.Sink.to_chrome (Observe.Sink.events sink) in
  match Observe.Json.of_string doc with
  | Error m -> Alcotest.failf "chrome export is not JSON: %s" m
  | Ok j -> (
    match Observe.Schema_check.validate_trace j with
    | Ok () -> ()
    | Error m -> Alcotest.failf "chrome export fails validation: %s" m)

let test_trace_jsonl_roundtrip () =
  let input = Graph_gen.of_edges [ (1, 2); (2, 3) ] in
  let policy = Network.Policy.hash_fact Graph_gen.schema net2 in
  let tracer = Network.Trace.collector () in
  ignore
    (Network.Run.run ~tracer ~variant:Network.Config.policy_aware ~policy
       ~transducer:(Strategies.Broadcast.transducer Zoo.tc)
       ~input Network.Run.Round_robin);
  let events = Network.Trace.events tracer in
  check_bool "trace has events" true (events <> []);
  match Network.Trace.of_jsonl (Network.Trace.to_jsonl events) with
  | Error m -> Alcotest.fail m
  | Ok events' -> check_bool "trace roundtrip" true (events = events')

(* ------------------------------------------------------------------ *)
(* Validators: accept the real artifacts, reject tampering *)

let test_validate_metrics () =
  Observe.Metrics.reset Observe.Metrics.root;
  ignore (Checker.check_exhaustive ~bounds:small Classes.Plain Zoo.tc);
  let doc = Observe.Metrics.to_json Observe.Metrics.root in
  (match Observe.Schema_check.validate_metrics doc with
  | Ok () -> ()
  | Error m -> Alcotest.failf "real snapshot rejected: %s" m);
  let tamper f =
    match doc with
    | Observe.Json.Obj fields -> Observe.Json.Obj (f fields)
    | _ -> Alcotest.fail "snapshot is not an object"
  in
  let wrong_schema =
    tamper
      (List.map (function
        | ("schema", _) -> ("schema", Observe.Json.String "bogus/v9")
        | kv -> kv))
  in
  check_bool "wrong schema tag rejected" true
    (Result.is_error (Observe.Schema_check.validate_metrics wrong_schema));
  let missing_metrics = tamper (List.remove_assoc "metrics") in
  check_bool "missing metrics section rejected" true
    (Result.is_error (Observe.Schema_check.validate_metrics missing_metrics));
  let bad_row =
    tamper
      (List.map (function
        | ("metrics", Observe.Json.List (Observe.Json.Obj row :: rest)) ->
          ( "metrics",
            Observe.Json.List
              (Observe.Json.Obj
                 (List.map
                    (function
                      | ("kind", _) -> ("kind", Observe.Json.String "sketch")
                      | kv -> kv)
                    row)
              :: rest) )
        | kv -> kv))
  in
  check_bool "unknown kind rejected" true
    (Result.is_error (Observe.Schema_check.validate_metrics bad_row))

let test_validate_bench () =
  let open Observe.Json in
  let good =
    Obj
      [
        ("schema", String "calm-bench/v1");
        ("quick", Bool true);
        ("jobs", Int 2);
        ( "experiments",
          List
            [
              Obj
                [
                  ("id", String "E1");
                  ("wall_s", Float 0.25);
                  ("metrics", Obj [ ("monotone.probes", Int 12) ]);
                ];
            ] );
      ]
  in
  (match Observe.Schema_check.validate_bench good with
  | Ok () -> ()
  | Error m -> Alcotest.failf "good bench doc rejected: %s" m);
  let swap key value = function
    | Obj fields ->
      Obj (List.map (fun (k, v) -> if k = key then (k, value) else (k, v)) fields)
    | j -> j
  in
  check_bool "empty experiments rejected" true
    (Result.is_error
       (Observe.Schema_check.validate_bench (swap "experiments" (List []) good)));
  check_bool "negative wall rejected" true
    (Result.is_error
       (Observe.Schema_check.validate_bench
          (swap "experiments"
             (List
                [
                  Obj
                    [
                      ("id", String "E1");
                      ("wall_s", Float (-1.0));
                      ("metrics", Obj []);
                    ];
                ])
             good)))

(* ------------------------------------------------------------------ *)
(* Regression: parallel sweeps carry traces *)

let test_sweep_events_all_jobs () =
  let input = Graph_gen.of_edges [ (1, 2); (2, 3) ] in
  let policy = Network.Policy.hash_fact Graph_gen.schema net2 in
  let cells =
    [
      ("rr", policy, Network.Run.Round_robin);
      ("random", policy, Network.Run.Random { seed = 1; steps = 40 });
      ("stingy", policy, Network.Run.Stingy { seed = 2; steps = 60 });
    ]
  in
  let sweep jobs =
    Network.Run.sweep ~jobs ~variant:Network.Config.policy_aware
      ~transducer:(Strategies.Broadcast.transducer Zoo.tc)
      ~input cells
  in
  let seq = sweep 1 in
  List.iter
    (fun (label, (r : Network.Run.result), events) ->
      check_bool (label ^ ": cell has events") true (events <> []);
      check_bool (label ^ ": one event per transition") true
        (List.length events = r.Network.Run.transitions))
    seq;
  List.iter
    (fun jobs ->
      let par = sweep jobs in
      check_bool
        (Printf.sprintf "sweep results+events at jobs=%d = jobs=1" jobs)
        true (par = seq))
    job_counts

(* ------------------------------------------------------------------ *)
(* Regression: heartbeat prefixes report the steps they took *)

let test_heartbeat_rounds () =
  let input = Graph_gen.of_edges [ (1, 2); (2, 3) ] in
  let policy = Network.Policy.hash_fact Graph_gen.schema net2 in
  let r =
    Network.Run.heartbeat_prefix ~variant:Network.Config.policy_aware ~policy
      ~transducer:(Strategies.Broadcast.transducer Zoo.tc)
      ~input ~node:(Value.Int 101) ()
  in
  check_bool "took at least one step" true (r.Network.Run.transitions > 0);
  Alcotest.(check int)
    "rounds = heartbeat steps" r.Network.Run.transitions
    r.Network.Run.rounds;
  check_bool "quiesced" true r.Network.Run.quiesced

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "observe"
    [
      ( "json",
        [ Alcotest.test_case "roundtrip+rejects" `Quick test_json_roundtrip ] );
      ( "determinism-wall",
        [
          Alcotest.test_case "sweep grid metrics" `Quick
            test_sweep_metrics_jobs_invariant;
          Alcotest.test_case "checker zoo metrics" `Slow
            test_checker_metrics_jobs_invariant;
          Alcotest.test_case "explore metrics" `Quick
            test_explore_metrics_jobs_invariant;
        ] );
      ( "exporters",
        [
          Alcotest.test_case "sink jsonl roundtrip" `Quick
            test_sink_jsonl_roundtrip;
          Alcotest.test_case "chrome export validates" `Quick
            test_chrome_export_valid;
          Alcotest.test_case "run-trace jsonl roundtrip" `Quick
            test_trace_jsonl_roundtrip;
        ] );
      ( "validators",
        [
          Alcotest.test_case "metrics accept/reject" `Quick
            test_validate_metrics;
          Alcotest.test_case "bench accept/reject" `Quick test_validate_bench;
        ] );
      ( "regressions",
        [
          Alcotest.test_case "sweep carries traces under jobs" `Quick
            test_sweep_events_all_jobs;
          Alcotest.test_case "heartbeat rounds" `Quick test_heartbeat_rounds;
        ] );
    ]
