(* The telemetry test wall.

   Three claims are pinned here:
   1. Stable metric snapshots are byte-identical across jobs 1/2/4 — on
      the policy × scheduler sweep grid, on the zoo membership checks
      (including cancelled searches), and on the model checker.
   2. The exporters round-trip: sink events through JSONL, run traces
      through JSONL, and the Chrome export parses and validates.
   3. The schema validators accept what the exporters emit and reject
      tampered documents.
   Plus regressions for the two bugs fixed alongside the telemetry
   layer: parallel sweeps used to drop traces, and heartbeat prefixes
   used to report rounds = 0. *)

open Relational
open Monotone
open Queries

let check_bool name expected actual = Alcotest.(check bool) name expected actual
let check_str name expected actual = Alcotest.(check string) name expected actual

let job_counts = [ 1; 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Json: parse/print round-trips *)

let test_json_roundtrip () =
  let open Observe.Json in
  let samples =
    [
      Null;
      Bool true;
      Int 42;
      Int (-7);
      Float 3.25;
      Float 1e-9;
      String "plain";
      String "esc \"quotes\" \\ back\nnewline \t tab \x01 ctrl";
      List [ Int 1; Null; String "x" ];
      Obj [ ("a", Int 1); ("b", List [ Bool false ]); ("c", Obj []) ];
    ]
  in
  List.iter
    (fun j ->
      let s = to_string j in
      match of_string s with
      | Error m -> Alcotest.failf "reparse of %s failed: %s" s m
      | Ok j' -> check_bool ("roundtrip " ^ s) true (equal j j'))
    samples;
  (* Pretty-printed output parses back to the same tree. *)
  let j = Obj [ ("xs", List [ Int 1; Int 2 ]); ("s", String "hi") ] in
  (match of_string (to_string_pretty j) with
  | Ok j' -> check_bool "pretty roundtrip" true (equal j j')
  | Error m -> Alcotest.fail m);
  List.iter
    (fun bad ->
      check_bool ("rejects " ^ bad) true
        (Result.is_error (of_string bad)))
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2"; "{'a':1}" ]

(* Strings are byte sequences: the printer must emit pure ASCII (every
   control byte, DEL, and byte >= 0x80 escaped as \u00XX) and the parser
   must decode it back to the identical bytes — including NUL, ESC
   sequences, UTF-8 fragments, and lone high bytes. *)
let adversarial_samples =
  [
    "\x00";
    "\x00\x01\x02tail";
    "\x7f";
    "\x1b[31mred\x1b[0m";
    "\xff\xfe";
    "\xe2\x9c\x93 check";
    "mixed \"quote\" \\ \n \xc3\xa9 \x05";
    String.init 256 Char.chr;
  ]

let test_json_adversarial_bytes () =
  let open Observe.Json in
  List.iter
    (fun s ->
      let printed = to_string (String s) in
      check_bool "printed form is pure printable ASCII" true
        (String.for_all
           (fun c -> Char.code c >= 0x20 && Char.code c < 0x7f)
           printed);
      match of_string printed with
      | Ok (String s') -> check_bool "bytes survive" true (String.equal s s')
      | Ok _ -> Alcotest.fail "reparsed to a non-string"
      | Error m -> Alcotest.failf "reparse failed on %S: %s" s m)
    adversarial_samples

let gen_byte_string =
  QCheck2.Gen.(
    string_size ~gen:(map Char.chr (int_range 0 255)) (int_range 0 48))

let prop_json_string_bytes_roundtrip =
  QCheck2.Test.make ~name:"Json print/parse identity on arbitrary bytes"
    ~count:500 gen_byte_string (fun s ->
      let printed = Observe.Json.to_string (Observe.Json.String s) in
      String.for_all
        (fun c -> Char.code c >= 0x20 && Char.code c < 0x7f)
        printed
      &&
      match Observe.Json.of_string printed with
      | Ok (Observe.Json.String s') -> String.equal s s'
      | _ -> false)

let prop_json_obj_keys_bytes_roundtrip =
  QCheck2.Test.make ~name:"Json object keys survive arbitrary bytes"
    ~count:200 gen_byte_string (fun k ->
      let j =
        Observe.Json.Obj
          [ (k, Observe.Json.List [ Observe.Json.String k ]) ]
      in
      match Observe.Json.of_string (Observe.Json.to_string j) with
      | Ok j' -> Observe.Json.equal j j'
      | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* Stable snapshots are byte-identical across jobs *)

(* Run [f] with a clean root collector and return the canonical stable
   rendering of what it recorded. *)
let stable_snapshot f =
  Observe.Metrics.reset Observe.Metrics.root;
  ignore (f ());
  Observe.Metrics.render_stable Observe.Metrics.root

let assert_jobs_invariant name f =
  let baseline = stable_snapshot (fun () -> f 1) in
  check_bool (name ^ ": baseline records something") true (baseline <> "");
  List.iter
    (fun jobs ->
      check_str
        (Printf.sprintf "%s: jobs=%d = jobs=1" name jobs)
        baseline
        (stable_snapshot (fun () -> f jobs)))
    job_counts

let net2 = Distributed.network_of_ints [ 101; 102 ]

let comp_edges =
  Query.make ~name:"comp-edges" ~input:Graph_gen.schema
    ~output:(Schema.of_list [ ("O", 2) ])
    (fun i ->
      let dom = Value.Set.elements (Instance.adom i) in
      List.fold_left
        (fun acc a ->
          List.fold_left
            (fun acc b ->
              if Instance.mem (Fact.make "E" [ a; b ]) i then acc
              else Instance.add (Fact.make "O" [ a; b ]) acc)
            acc dom)
        Instance.empty dom)

let test_sweep_metrics_jobs_invariant () =
  let input = Graph_gen.of_edges [ (1, 2); (2, 3); (5, 1) ] in
  assert_jobs_invariant "netquery sweep grid" (fun jobs ->
      Network.Netquery.check ~jobs ~variant:Network.Config.policy_aware
        ~transducer:(Strategies.Absence.transducer comp_edges)
        ~query:comp_edges ~input net2)

let small = { Checker.dom_size = 3; fresh = 2; max_base = 3; max_ext = 2 }

let test_checker_metrics_jobs_invariant () =
  (* Both outcomes matter: TC holds (full scans), comp-TC is violated
     (cancelled searches, where the pool must commit exactly the probes
     at indices up to the winning one). *)
  List.iter
    (fun (name, q) ->
      List.iter
        (fun kind ->
          assert_jobs_invariant
            (Printf.sprintf "checker %s/%s" name (Classes.kind_to_string kind))
            (fun jobs -> Checker.check_exhaustive ~bounds:small ~jobs kind q))
        [ Classes.Plain; Classes.Distinct; Classes.Disjoint ])
    [ ("tc", Zoo.tc); ("comp-tc", Zoo.comp_tc); ("q-star-2", Zoo.q_star 2) ]

let test_explore_metrics_jobs_invariant () =
  let crossed = Graph_gen.of_edges [ (1, 2); (2, 1) ] in
  let parity =
    Network.Policy.make ~name:"parity" Graph_gen.schema net2 (fun f ->
        match Fact.arg f 0 with
        | Value.Int a when a mod 2 = 1 -> [ Value.Int 101 ]
        | _ -> [ Value.Int 102 ])
  in
  assert_jobs_invariant "explore broadcast/comp-edges" (fun jobs ->
      Network.Explore.check ~max_configs:60_000 ~jobs
        ~variant:Network.Config.policy_aware ~policy:parity
        ~transducer:(Strategies.Broadcast.transducer comp_edges)
        ~query:comp_edges ~input:crossed ())

(* ------------------------------------------------------------------ *)
(* Exporters round-trip *)

let events_equal (a : Observe.Sink.event) (b : Observe.Sink.event) =
  a.Observe.Sink.ts = b.Observe.Sink.ts
  && a.Observe.Sink.dur = b.Observe.Sink.dur
  && a.Observe.Sink.track = b.Observe.Sink.track
  && a.Observe.Sink.cat = b.Observe.Sink.cat
  && a.Observe.Sink.name = b.Observe.Sink.name
  && List.length a.Observe.Sink.args = List.length b.Observe.Sink.args
  && List.for_all2
       (fun (k1, v1) (k2, v2) -> k1 = k2 && Observe.Json.equal v1 v2)
       a.Observe.Sink.args b.Observe.Sink.args

let test_sink_jsonl_roundtrip () =
  let sink = Observe.Sink.create () in
  Observe.Sink.record ~sink ~cat:"test"
    ~args:[ ("k", Observe.Json.Int 3) ]
    "instant";
  Observe.Sink.span ~sink ~cat:"test" "outer" (fun () ->
      Observe.Sink.record ~sink "inner");
  let events = Observe.Sink.events sink in
  check_bool "recorded 3 events" true (List.length events = 3);
  match Observe.Sink.of_jsonl (Observe.Sink.to_jsonl events) with
  | Error m -> Alcotest.fail m
  | Ok events' ->
    check_bool "same count" true (List.length events = List.length events');
    List.iter2
      (fun a b -> check_bool ("event " ^ a.Observe.Sink.name) true (events_equal a b))
      events events'

let test_chrome_export_valid () =
  let sink = Observe.Sink.create () in
  Observe.Sink.span ~sink ~cat:"net" "net.run" (fun () ->
      Observe.Sink.record ~sink ~cat:"trace" "net.transition");
  let doc = Observe.Sink.to_chrome (Observe.Sink.events sink) in
  match Observe.Json.of_string doc with
  | Error m -> Alcotest.failf "chrome export is not JSON: %s" m
  | Ok j -> (
    match Observe.Schema_check.validate_trace j with
    | Ok () -> ()
    | Error m -> Alcotest.failf "chrome export fails validation: %s" m)

let test_trace_jsonl_roundtrip () =
  let input = Graph_gen.of_edges [ (1, 2); (2, 3) ] in
  let policy = Network.Policy.hash_fact Graph_gen.schema net2 in
  let tracer = Network.Trace.collector () in
  ignore
    (Network.Run.run ~tracer ~variant:Network.Config.policy_aware ~policy
       ~transducer:(Strategies.Broadcast.transducer Zoo.tc)
       ~input Network.Run.Round_robin);
  let events = Network.Trace.events tracer in
  check_bool "trace has events" true (events <> []);
  (* Every event carries a causal stamp. *)
  List.iter
    (fun (ev : Network.Trace.event) ->
      check_bool "lamport >= 1" true (ev.Network.Trace.lamport >= 1);
      check_bool "vector nonempty" true (ev.Network.Trace.vector <> []))
    events;
  match Network.Trace.of_jsonl (Network.Trace.to_jsonl events) with
  | Error m -> Alcotest.fail m
  | Ok events' ->
    check_bool "trace roundtrip (stamps included)" true (events = events')

(* ------------------------------------------------------------------ *)
(* Validators: accept the real artifacts, reject tampering *)

let test_validate_metrics () =
  Observe.Metrics.reset Observe.Metrics.root;
  ignore (Checker.check_exhaustive ~bounds:small Classes.Plain Zoo.tc);
  let doc = Observe.Metrics.to_json Observe.Metrics.root in
  (match Observe.Schema_check.validate_metrics doc with
  | Ok () -> ()
  | Error m -> Alcotest.failf "real snapshot rejected: %s" m);
  let tamper f =
    match doc with
    | Observe.Json.Obj fields -> Observe.Json.Obj (f fields)
    | _ -> Alcotest.fail "snapshot is not an object"
  in
  let wrong_schema =
    tamper
      (List.map (function
        | ("schema", _) -> ("schema", Observe.Json.String "bogus/v9")
        | kv -> kv))
  in
  check_bool "wrong schema tag rejected" true
    (Result.is_error (Observe.Schema_check.validate_metrics wrong_schema));
  let missing_metrics = tamper (List.remove_assoc "metrics") in
  check_bool "missing metrics section rejected" true
    (Result.is_error (Observe.Schema_check.validate_metrics missing_metrics));
  let bad_row =
    tamper
      (List.map (function
        | ("metrics", Observe.Json.List (Observe.Json.Obj row :: rest)) ->
          ( "metrics",
            Observe.Json.List
              (Observe.Json.Obj
                 (List.map
                    (function
                      | ("kind", _) -> ("kind", Observe.Json.String "sketch")
                      | kv -> kv)
                    row)
              :: rest) )
        | kv -> kv))
  in
  check_bool "unknown kind rejected" true
    (Result.is_error (Observe.Schema_check.validate_metrics bad_row))

let test_validate_bench () =
  let open Observe.Json in
  let good =
    Obj
      [
        ("schema", String "calm-bench/v1");
        ("quick", Bool true);
        ("jobs", Int 2);
        ( "experiments",
          List
            [
              Obj
                [
                  ("id", String "E1");
                  ("wall_s", Float 0.25);
                  ("metrics", Obj [ ("monotone.probes", Int 12) ]);
                ];
            ] );
      ]
  in
  (match Observe.Schema_check.validate_bench good with
  | Ok () -> ()
  | Error m -> Alcotest.failf "good bench doc rejected: %s" m);
  let swap key value = function
    | Obj fields ->
      Obj (List.map (fun (k, v) -> if k = key then (k, value) else (k, v)) fields)
    | j -> j
  in
  check_bool "empty experiments rejected" true
    (Result.is_error
       (Observe.Schema_check.validate_bench (swap "experiments" (List []) good)));
  check_bool "negative wall rejected" true
    (Result.is_error
       (Observe.Schema_check.validate_bench
          (swap "experiments"
             (List
                [
                  Obj
                    [
                      ("id", String "E1");
                      ("wall_s", Float (-1.0));
                      ("metrics", Obj []);
                    ];
                ])
             good)))

let test_validate_causal () =
  let open Observe.Json in
  (* The real exporter's document validates. *)
  let input = Graph_gen.of_edges [ (1, 2); (2, 3) ] in
  let policy = Network.Policy.hash_fact Graph_gen.schema net2 in
  let tracer = Network.Trace.collector () in
  ignore
    (Network.Run.run ~tracer ~variant:Network.Config.policy_aware ~policy
       ~transducer:(Strategies.Broadcast.transducer Zoo.tc)
       ~input Network.Run.Round_robin);
  let doc =
    Network.Trace.to_causal_json ~network:net2 (Network.Trace.events tracer)
  in
  let j =
    match of_string doc with
    | Ok j -> j
    | Error m -> Alcotest.failf "causal export is not JSON: %s" m
  in
  (match Observe.Schema_check.validate_causal j with
  | Ok () -> ()
  | Error m -> Alcotest.failf "real causal doc rejected: %s" m);
  let swap key value = function
    | Obj fields ->
      Obj (List.map (fun (k, v) -> if k = key then (k, value) else (k, v)) fields)
    | j -> j
  in
  let event ?(lamport = 1) ?(vector = Obj [ ("101", Int 1) ])
      ?(origins = List []) () =
    Obj
      [
        ("index", Int 1);
        ("node", String "101");
        ("lamport", Int lamport);
        ("vector", vector);
        ("origins", origins);
        ("delivered", List []);
        ("sent", List [ String "E(1,2)" ]);
        ("output_delta", List []);
      ]
  in
  let rejects name tampered =
    check_bool (name ^ " rejected") true
      (Result.is_error (Observe.Schema_check.validate_causal tampered))
  in
  rejects "wrong schema tag" (swap "schema" (String "bogus/v9") j);
  rejects "empty network" (swap "network" (List []) j);
  rejects "lamport 0" (swap "events" (List [ event ~lamport:0 () ]) j);
  rejects "empty vector" (swap "events" (List [ event ~vector:(Obj []) () ]) j);
  rejects "non-positive vector component"
    (swap "events" (List [ event ~vector:(Obj [ ("101", Int 0) ]) () ]) j);
  rejects "malformed origin pair"
    (swap "events" (List [ event ~origins:(List [ Int 3 ]) () ]) j);
  match Observe.Schema_check.validate_causal (swap "events" (List [ event () ]) j) with
  | Ok () -> ()
  | Error m -> Alcotest.failf "well-formed synthetic event rejected: %s" m

(* ------------------------------------------------------------------ *)
(* Regression: parallel sweeps carry traces *)

let test_sweep_events_all_jobs () =
  let input = Graph_gen.of_edges [ (1, 2); (2, 3) ] in
  let policy = Network.Policy.hash_fact Graph_gen.schema net2 in
  let cells =
    [
      ("rr", policy, Network.Run.Round_robin);
      ("random", policy, Network.Run.Random { seed = 1; steps = 40 });
      ("stingy", policy, Network.Run.Stingy { seed = 2; steps = 60 });
    ]
  in
  let sweep jobs =
    Network.Run.sweep ~jobs ~variant:Network.Config.policy_aware
      ~transducer:(Strategies.Broadcast.transducer Zoo.tc)
      ~input cells
  in
  let seq = sweep 1 in
  List.iter
    (fun (label, (r : Network.Run.result), events) ->
      check_bool (label ^ ": cell has events") true (events <> []);
      check_bool (label ^ ": one event per transition") true
        (List.length events = r.Network.Run.transitions))
    seq;
  List.iter
    (fun jobs ->
      let par = sweep jobs in
      check_bool
        (Printf.sprintf "sweep results+events at jobs=%d = jobs=1" jobs)
        true (par = seq))
    job_counts

(* ------------------------------------------------------------------ *)
(* Regression: heartbeat prefixes report the steps they took *)

let test_heartbeat_rounds () =
  let input = Graph_gen.of_edges [ (1, 2); (2, 3) ] in
  let policy = Network.Policy.hash_fact Graph_gen.schema net2 in
  let r =
    Network.Run.heartbeat_prefix ~variant:Network.Config.policy_aware ~policy
      ~transducer:(Strategies.Broadcast.transducer Zoo.tc)
      ~input ~node:(Value.Int 101) ()
  in
  check_bool "took at least one step" true (r.Network.Run.transitions > 0);
  Alcotest.(check int)
    "rounds = heartbeat steps" r.Network.Run.transitions
    r.Network.Run.rounds;
  check_bool "quiesced" true r.Network.Run.quiesced

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "observe"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip+rejects" `Quick test_json_roundtrip;
          Alcotest.test_case "adversarial bytes" `Quick
            test_json_adversarial_bytes;
        ]
        @ List.map QCheck_alcotest.to_alcotest
            [
              prop_json_string_bytes_roundtrip;
              prop_json_obj_keys_bytes_roundtrip;
            ] );
      ( "determinism-wall",
        [
          Alcotest.test_case "sweep grid metrics" `Quick
            test_sweep_metrics_jobs_invariant;
          Alcotest.test_case "checker zoo metrics" `Slow
            test_checker_metrics_jobs_invariant;
          Alcotest.test_case "explore metrics" `Quick
            test_explore_metrics_jobs_invariant;
        ] );
      ( "exporters",
        [
          Alcotest.test_case "sink jsonl roundtrip" `Quick
            test_sink_jsonl_roundtrip;
          Alcotest.test_case "chrome export validates" `Quick
            test_chrome_export_valid;
          Alcotest.test_case "run-trace jsonl roundtrip" `Quick
            test_trace_jsonl_roundtrip;
        ] );
      ( "validators",
        [
          Alcotest.test_case "metrics accept/reject" `Quick
            test_validate_metrics;
          Alcotest.test_case "bench accept/reject" `Quick test_validate_bench;
          Alcotest.test_case "causal accept/reject" `Quick
            test_validate_causal;
        ] );
      ( "regressions",
        [
          Alcotest.test_case "sweep carries traces under jobs" `Quick
            test_sweep_events_all_jobs;
          Alcotest.test_case "heartbeat rounds" `Quick test_heartbeat_rounds;
        ] );
    ]
