(* Tests for the relational substrate: values, facts, schemas, instances,
   homomorphisms, components, multisets, distributed instances, queries. *)

open Relational

let v = Value.int
let s = Value.sym
let fact r args = Fact.make r (List.map Value.int args)
let edge a b = fact "E" [ a; b ]

let inst facts = Instance.of_list facts

let check_bool name expected actual =
  Alcotest.(check bool) name expected actual

let check_int name expected actual = Alcotest.(check int) name expected actual

(* ------------------------------------------------------------------ *)
(* Value *)

let test_value_order () =
  check_bool "int < sym" true (Value.compare (v 5) (s "a") < 0);
  check_bool "sym < skolem" true
    (Value.compare (s "z") (Value.Skolem ("f", [ v 1 ])) < 0);
  check_int "int eq" 0 (Value.compare (v 3) (v 3));
  check_bool "skolem structural" true
    (Value.equal (Value.Skolem ("f", [ v 1; s "a" ]))
       (Value.Skolem ("f", [ v 1; s "a" ])));
  check_bool "skolem name differs" false
    (Value.equal (Value.Skolem ("f", [])) (Value.Skolem ("g", [])))

let test_value_string () =
  Alcotest.(check string) "int" "42" (Value.to_string (v 42));
  Alcotest.(check string) "sym" "abc" (Value.to_string (s "abc"));
  Alcotest.(check string) "skolem" "f(1,a)"
    (Value.to_string (Value.Skolem ("f", [ v 1; s "a" ])));
  check_bool "of_string int" true (Value.equal (Value.of_string "7") (v 7));
  check_bool "of_string sym" true (Value.equal (Value.of_string "x") (s "x"))

let test_value_invented () =
  check_bool "int not invented" false (Value.is_invented (v 1));
  check_bool "skolem invented" true (Value.is_invented (Value.Skolem ("f", [])))

let test_fresh_not_in () =
  let used = Value.Set.of_list [ v 1_000_000; v 1_000_001 ] in
  let fresh = Value.fresh_not_in used 3 in
  check_int "three fresh" 3 (List.length fresh);
  List.iter
    (fun x -> check_bool "fresh not used" false (Value.Set.mem x used))
    fresh;
  check_int "fresh distinct" 3 (Value.Set.cardinal (Value.Set.of_list fresh))

(* ------------------------------------------------------------------ *)
(* Fact *)

let test_fact_basic () =
  let f = edge 1 2 in
  Alcotest.(check string) "rel" "E" (Fact.rel f);
  check_int "arity" 2 (Fact.arity f);
  check_bool "arg0" true (Value.equal (Fact.arg f 0) (v 1));
  check_bool "adom" true
    (Value.Set.equal (Fact.adom f) (Value.Set.of_list [ v 1; v 2 ]))

let test_fact_nullary_rejected () =
  Alcotest.check_raises "nullary"
    (Invalid_argument "Fact.make: nullary facts are not supported") (fun () ->
      ignore (Fact.make "R" []))

let test_fact_roundtrip () =
  let f = Fact.of_string "R(a, 1, b)" in
  Alcotest.(check string) "print" "R(a,1,b)" (Fact.to_string f);
  check_bool "reparse" true (Fact.equal f (Fact.of_string (Fact.to_string f)))

let test_fact_order_total () =
  let f1 = edge 1 2 and f2 = edge 1 3 and f3 = fact "F" [ 1; 2 ] in
  check_bool "E(1,2) < E(1,3)" true (Fact.compare f1 f2 < 0);
  check_bool "E < F" true (Fact.compare f1 f3 < 0);
  check_bool "arity orders" true (Fact.compare (fact "E" [ 1 ]) (edge 9 9) < 0)

(* ------------------------------------------------------------------ *)
(* Schema *)

let test_schema_basic () =
  let sg = Schema.of_list [ ("E", 2); ("V", 1) ] in
  Alcotest.(check (option int)) "E arity" (Some 2) (Schema.arity sg "E");
  Alcotest.(check (option int)) "missing" None (Schema.arity sg "X");
  check_bool "fact over" true (Schema.fact_over sg (edge 1 2));
  check_bool "wrong arity" false (Schema.fact_over sg (fact "E" [ 1 ]));
  check_bool "unknown rel" false (Schema.fact_over sg (fact "X" [ 1 ]))

let test_schema_guards () =
  Alcotest.check_raises "zero arity"
    (Invalid_argument "Schema.add: relation R has arity 0 < 1") (fun () ->
      ignore (Schema.of_list [ ("R", 0) ]));
  Alcotest.check_raises "conflict"
    (Invalid_argument "Schema.add: relation R bound to arities 1 and 2")
    (fun () -> ignore (Schema.of_list [ ("R", 1); ("R", 2) ]))

let test_schema_algebra () =
  let a = Schema.of_list [ ("E", 2) ] and b = Schema.of_list [ ("V", 1) ] in
  let u = Schema.union a b in
  check_bool "union has both" true (Schema.mem u "E" && Schema.mem u "V");
  check_bool "subset" true (Schema.subset a u);
  check_bool "disjoint" true (Schema.disjoint a b);
  check_bool "diff" true (Schema.equal (Schema.diff u b) a);
  Alcotest.check_raises "disjoint_union clash"
    (Invalid_argument "Schema.disjoint_union: shared relation E") (fun () ->
      ignore (Schema.disjoint_union a a))

let test_schema_all_facts () =
  let sg = Schema.of_list [ ("E", 2); ("V", 1) ] in
  let dom = Value.Set.of_list [ v 1; v 2 ] in
  let facts = Schema.all_facts sg dom in
  (* 2^2 E-facts + 2 V-facts *)
  check_int "count" 6 (List.length facts)

(* ------------------------------------------------------------------ *)
(* Instance *)

let test_instance_basic () =
  let i = inst [ edge 1 2; edge 2 3 ] in
  check_int "cardinal" 2 (Instance.cardinal i);
  check_bool "mem" true (Instance.mem (edge 1 2) i);
  check_bool "adom" true
    (Value.Set.equal (Instance.adom i) (Value.Set.of_list [ v 1; v 2; v 3 ]))

let test_instance_restrict () =
  let i = inst [ edge 1 2; fact "V" [ 1 ]; fact "E" [ 1 ] ] in
  let sg = Schema.of_list [ ("E", 2) ] in
  let r = Instance.restrict i sg in
  check_int "only binary E" 1 (Instance.cardinal r);
  check_bool "kept the right one" true (Instance.mem (edge 1 2) r)

let test_instance_induced () =
  let i = inst [ edge 1 2; edge 2 3; edge 3 4 ] in
  let c = Value.Set.of_list [ v 1; v 2; v 3 ] in
  let ind = Instance.induced i c in
  check_bool "induced" true (Instance.equal ind (inst [ edge 1 2; edge 2 3 ]));
  let t = Instance.touching i (Value.Set.singleton (v 3)) in
  check_bool "touching" true (Instance.equal t (inst [ edge 2 3; edge 3 4 ]))

let test_instance_domain_relations () =
  let i = inst [ edge 1 2 ] in
  check_bool "distinct yes" true
    (Instance.is_domain_distinct_from (inst [ edge 2 3 ]) i);
  check_bool "distinct no" false
    (Instance.is_domain_distinct_from (inst [ edge 2 1 ]) i);
  check_bool "disjoint yes" true
    (Instance.is_domain_disjoint_from (inst [ edge 3 4 ]) i);
  check_bool "disjoint no" false
    (Instance.is_domain_disjoint_from (inst [ edge 2 3 ]) i);
  check_bool "empty vacuous" true
    (Instance.is_domain_distinct_from Instance.empty i
    && Instance.is_domain_disjoint_from Instance.empty i)

let test_instance_schema_inference () =
  let i = inst [ edge 1 2; fact "V" [ 7 ] ] in
  let sg = Instance.schema i in
  Alcotest.(check (option int)) "E" (Some 2) (Schema.arity sg "E");
  Alcotest.(check (option int)) "V" (Some 1) (Schema.arity sg "V")

(* ------------------------------------------------------------------ *)
(* Homomorphism *)

let test_hom_find () =
  let p2 = inst [ edge 1 2; edge 2 3 ] in
  let loopish = inst [ edge 5 6; edge 6 5 ] in
  check_bool "hom exists" true (Homomorphism.exists p2 loopish);
  let single = inst [ edge 5 6 ] in
  check_bool "no hom into single edge" false (Homomorphism.exists p2 single);
  check_bool "injective into bigger path" true
    (Homomorphism.exists_injective p2 (inst [ edge 7 8; edge 8 9; edge 9 1 ]));
  check_bool "no injective into loop of 2" false
    (Homomorphism.exists_injective p2 loopish)

let test_hom_validity () =
  let p2 = inst [ edge 1 2; edge 2 3 ] in
  let target = inst [ edge 5 6; edge 6 7 ] in
  (match Homomorphism.find p2 target with
  | None -> Alcotest.fail "expected a homomorphism"
  | Some h ->
    check_bool "valid" true (Homomorphism.is_homomorphism h p2 target));
  match Homomorphism.find_injective p2 target with
  | None -> Alcotest.fail "expected injective"
  | Some h -> check_bool "injective" true (Homomorphism.is_injective h)

let test_permutations () =
  let set = Value.Set.of_list [ v 1; v 2; v 3 ] in
  let perms = Homomorphism.permutations_of set in
  check_int "3! permutations" 6 (List.length perms);
  List.iter
    (fun h -> check_bool "each injective" true (Homomorphism.is_injective h))
    perms

(* ------------------------------------------------------------------ *)
(* Component *)

let test_components () =
  let i = inst [ edge 1 2; edge 2 3; edge 10 11; fact "V" [ 99 ] ] in
  let cs = Component.components i in
  check_int "three components" 3 (List.length cs);
  List.iter
    (fun c ->
      check_bool "definitional check" true (Component.is_component_of c i))
    cs;
  let u = List.fold_left Instance.union Instance.empty cs in
  check_bool "partition" true (Instance.equal u i)

let test_component_of () =
  let i = inst [ edge 1 2; edge 10 11 ] in
  check_bool "component of 2" true
    (Instance.equal (Component.component_of i (v 2)) (inst [ edge 1 2 ]));
  check_bool "absent value" true
    (Instance.is_empty (Component.component_of i (v 77)))

let test_component_empty () =
  check_int "empty has none" 0 (Component.count Instance.empty)

(* ------------------------------------------------------------------ *)
(* Multiset *)

let test_multiset_laws () =
  let f = edge 1 2 and g = edge 3 4 in
  let m = Multiset.(add f (add f (add g empty))) in
  check_int "size" 3 (Multiset.size m);
  check_int "count f" 2 (Multiset.count f m);
  check_int "support" 2 (Fact.Set.cardinal (Multiset.support m));
  let m' = Multiset.remove_one f m in
  check_int "after remove" 1 (Multiset.count f m');
  check_bool "sub" true (Multiset.sub m' m);
  check_bool "not sub" false (Multiset.sub m m');
  let d = Multiset.diff m m' in
  check_int "diff size" 1 (Multiset.size d);
  let u = Multiset.union m m' in
  check_int "union multiplicities add" 3 (Multiset.count f u)

let test_multiset_remove_absent () =
  let f = edge 1 2 in
  check_bool "identity" true
    (Multiset.equal Multiset.empty (Multiset.remove_one f Multiset.empty))

(* ------------------------------------------------------------------ *)
(* Distributed *)

let test_distributed () =
  let net = Distributed.network_of_ints [ 2; 1; 2 ] in
  check_int "dedup" 2 (List.length net);
  let d = Distributed.create net in
  let d = Distributed.set_local d (v 1) (inst [ edge 1 2 ]) in
  let d = Distributed.update_local d (v 2) (Instance.add (edge 2 3)) in
  check_bool "global union" true
    (Instance.equal (Distributed.global d) (inst [ edge 1 2; edge 2 3 ]));
  Alcotest.check_raises "unknown node"
    (Invalid_argument "Distributed.local: node 9 not in network") (fun () ->
      ignore (Distributed.local d (v 9)))

let test_network_nonempty () =
  Alcotest.check_raises "empty network"
    (Invalid_argument "Distributed: a network must be nonempty") (fun () ->
      ignore (Distributed.network_of_ints []))

(* ------------------------------------------------------------------ *)
(* Query *)

let graph_schema = Schema.of_list [ ("E", 2) ]

let reverse_query =
  Query.make ~name:"reverse" ~input:graph_schema ~output:graph_schema (fun i ->
      Instance.fold
        (fun f acc ->
          Instance.add (Fact.make "E" [ Fact.arg f 1; Fact.arg f 0 ]) acc)
        i Instance.empty)

let test_query_apply () =
  let out = Query.apply reverse_query (inst [ edge 1 2; fact "V" [ 3 ] ]) in
  check_bool "restricted + reversed" true
    (Instance.equal out (inst [ edge 2 1 ]))

let test_query_generic () =
  check_bool "reverse is generic" true
    (Query.check_generic reverse_query (inst [ edge 1 2; edge 2 3 ]))

let non_generic =
  Query.make ~name:"likes-7" ~input:graph_schema ~output:graph_schema (fun i ->
      Instance.filter (fun f -> Value.equal (Fact.arg f 0) (v 7)) i)

let test_query_non_generic_detected () =
  check_bool "constant test caught" false
    (Query.check_generic non_generic (inst [ edge 7 2; edge 2 3 ]))

(* ------------------------------------------------------------------ *)
(* Io + Dot *)

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_io_roundtrip () =
  let i = inst [ edge 1 2; edge 2 3; fact "V" [ 7 ] ] in
  check_bool "roundtrip" true
    (Instance.equal i (Io.parse_facts (Io.print_facts i)))

let test_io_comments_and_dots () =
  let i =
    Io.parse_facts "% a comment with. dots\nE(1,2). E(2,3).\n\n  E(3,4)\n"
  in
  check_int "three facts" 3 (Instance.cardinal i)

let test_io_csv () =
  let i = Io.parse_csv ~rel:"E" "1, 2\n2,3\n# comment\n" in
  check_bool "parsed" true (Instance.equal i (inst [ edge 1 2; edge 2 3 ]));
  let s = Io.print_csv ~rel:"E" i in
  check_bool "csv roundtrip" true
    (Instance.equal i (Io.parse_csv ~rel:"E" s))

let test_io_files () =
  let path = Filename.temp_file "calm" ".facts" in
  let i = inst [ edge 1 2; edge 5 6 ] in
  Io.save_facts path i;
  let j = Io.load_facts path in
  Sys.remove path;
  check_bool "file roundtrip" true (Instance.equal i j)

let test_dot_golden () =
  (* Exact output for a small digraph: edges sorted, nodes quoted. *)
  let i = inst [ edge 2 3; edge 1 2; edge 1 3 ] in
  Alcotest.(check string) "golden"
    "digraph G {\n\
    \  \"1\" -> \"2\";\n\
    \  \"1\" -> \"3\";\n\
    \  \"2\" -> \"3\";\n\
     }"
    (Dot.of_relation i);
  Alcotest.(check string) "golden empty" "digraph G {\n}"
    (Dot.of_relation (inst [ fact "V" [ 1 ] ]))

let test_dot () =
  let i = inst [ edge 1 2 ] in
  let s = Dot.of_relation i in
  check_bool "digraph" true (contains s "digraph G {");
  check_bool "edge" true (contains s "\"1\" -> \"2\";");
  let h =
    Distributed.of_assignment
      (Distributed.network_of_ints [ 1; 2 ])
      [ (v 1, i) ]
  in
  let s = Dot.of_distributed h in
  check_bool "cluster" true (contains s "subgraph cluster_0");
  check_bool "namespaced" true (contains s "\"c0_1\" -> \"c0_2\";")

(* ------------------------------------------------------------------ *)
(* qcheck properties *)

let gen_small_graph =
  QCheck2.Gen.(
    let* n = int_range 0 12 in
    let* edges = list_size (return n) (pair (int_range 0 6) (int_range 0 6)) in
    return (inst (List.map (fun (a, b) -> edge a b) edges)))

let prop_components_partition =
  QCheck2.Test.make ~name:"components partition the instance" ~count:200
    gen_small_graph (fun i ->
      let cs = Component.components i in
      let union = List.fold_left Instance.union Instance.empty cs in
      Instance.equal union i
      && List.for_all (fun c -> Component.is_component_of c i) cs)

let prop_components_pairwise_disjoint =
  QCheck2.Test.make ~name:"components pairwise adom-disjoint" ~count:200
    gen_small_graph (fun i ->
      let cs = Array.of_list (Component.components i) in
      let ok = ref true in
      Array.iteri
        (fun a ca ->
          Array.iteri
            (fun b cb ->
              if a < b && not (Instance.is_domain_disjoint_from ca cb) then
                ok := false)
            cs)
        cs;
      !ok)

let prop_adom_union =
  QCheck2.Test.make ~name:"adom of union is union of adoms" ~count:200
    (QCheck2.Gen.pair gen_small_graph gen_small_graph) (fun (a, b) ->
      Value.Set.equal
        (Instance.adom (Instance.union a b))
        (Value.Set.union (Instance.adom a) (Instance.adom b)))

let prop_induced_monotone =
  QCheck2.Test.make ~name:"induced subinstance is a subset" ~count:200
    gen_small_graph (fun i ->
      let dom = Instance.adom i in
      Value.Set.for_all
        (fun x -> Instance.subset (Instance.induced i (Value.Set.singleton x)) i)
        dom)

let gen_multiset_ops =
  QCheck2.Gen.(list_size (int_range 0 20) (pair (int_range 0 3) (int_range 0 3)))

let prop_multiset_union_size =
  QCheck2.Test.make ~name:"multiset union adds sizes" ~count:200
    (QCheck2.Gen.pair gen_multiset_ops gen_multiset_ops) (fun (xs, ys) ->
      let mk l = Multiset.of_list (List.map (fun (a, b) -> edge a b) l) in
      let a = mk xs and b = mk ys in
      Multiset.size (Multiset.union a b) = Multiset.size a + Multiset.size b)

let prop_multiset_diff_union =
  QCheck2.Test.make ~name:"(a + b) - b = a" ~count:200
    (QCheck2.Gen.pair gen_multiset_ops gen_multiset_ops) (fun (xs, ys) ->
      let mk l = Multiset.of_list (List.map (fun (a, b) -> edge a b) l) in
      let a = mk xs and b = mk ys in
      Multiset.equal (Multiset.diff (Multiset.union a b) b) a)

(* Random instances over a mixed schema with int and symbol values, all
   of which survive the fact-file syntax. *)
let gen_io_instance =
  QCheck2.Gen.(
    let gen_value =
      oneof
        [
          map Value.int (int_range 0 99);
          map Value.sym (oneofl [ "a"; "b"; "foo"; "x1" ]);
        ]
    in
    let gen_fact =
      let* name, arity = oneofl [ ("E", 2); ("V", 1); ("R", 3) ] in
      let* args = list_size (return arity) gen_value in
      return (Fact.make name args)
    in
    map Instance.of_list (list_size (int_range 0 15) gen_fact))

let prop_io_roundtrip =
  QCheck2.Test.make ~name:"Io print/parse roundtrip" ~count:200 gen_io_instance
    (fun i -> Instance.equal i (Io.parse_facts (Io.print_facts i)))

let prop_io_csv_roundtrip =
  QCheck2.Test.make ~name:"Io CSV print/parse roundtrip" ~count:200
    gen_small_graph (fun i ->
      Instance.equal i (Io.parse_csv ~rel:"E" (Io.print_csv ~rel:"E" i)))

let prop_fact_compare_total_order =
  QCheck2.Test.make ~name:"fact compare antisymmetric" ~count:200
    (QCheck2.Gen.pair
       (QCheck2.Gen.pair (QCheck2.Gen.int_range 0 4) (QCheck2.Gen.int_range 0 4))
       (QCheck2.Gen.pair (QCheck2.Gen.int_range 0 4) (QCheck2.Gen.int_range 0 4)))
    (fun ((a, b), (c, d)) ->
      let f = edge a b and g = edge c d in
      let cmp = Fact.compare f g in
      (cmp = 0) = Fact.equal f g && cmp = -Fact.compare g f)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_components_partition;
      prop_components_pairwise_disjoint;
      prop_adom_union;
      prop_induced_monotone;
      prop_multiset_union_size;
      prop_multiset_diff_union;
      prop_io_roundtrip;
      prop_io_csv_roundtrip;
      prop_fact_compare_total_order;
    ]

let () =
  Alcotest.run "relational"
    [
      ( "value",
        [
          Alcotest.test_case "ordering" `Quick test_value_order;
          Alcotest.test_case "strings" `Quick test_value_string;
          Alcotest.test_case "invented" `Quick test_value_invented;
          Alcotest.test_case "fresh_not_in" `Quick test_fresh_not_in;
        ] );
      ( "fact",
        [
          Alcotest.test_case "basic" `Quick test_fact_basic;
          Alcotest.test_case "nullary rejected" `Quick test_fact_nullary_rejected;
          Alcotest.test_case "roundtrip" `Quick test_fact_roundtrip;
          Alcotest.test_case "total order" `Quick test_fact_order_total;
        ] );
      ( "schema",
        [
          Alcotest.test_case "basic" `Quick test_schema_basic;
          Alcotest.test_case "guards" `Quick test_schema_guards;
          Alcotest.test_case "algebra" `Quick test_schema_algebra;
          Alcotest.test_case "all_facts" `Quick test_schema_all_facts;
        ] );
      ( "instance",
        [
          Alcotest.test_case "basic" `Quick test_instance_basic;
          Alcotest.test_case "restrict" `Quick test_instance_restrict;
          Alcotest.test_case "induced/touching" `Quick test_instance_induced;
          Alcotest.test_case "domain relations" `Quick
            test_instance_domain_relations;
          Alcotest.test_case "schema inference" `Quick
            test_instance_schema_inference;
        ] );
      ( "homomorphism",
        [
          Alcotest.test_case "find" `Quick test_hom_find;
          Alcotest.test_case "validity" `Quick test_hom_validity;
          Alcotest.test_case "permutations" `Quick test_permutations;
        ] );
      ( "component",
        [
          Alcotest.test_case "components" `Quick test_components;
          Alcotest.test_case "component_of" `Quick test_component_of;
          Alcotest.test_case "empty" `Quick test_component_empty;
        ] );
      ( "multiset",
        [
          Alcotest.test_case "laws" `Quick test_multiset_laws;
          Alcotest.test_case "remove absent" `Quick test_multiset_remove_absent;
        ] );
      ( "distributed",
        [
          Alcotest.test_case "basics" `Quick test_distributed;
          Alcotest.test_case "nonempty" `Quick test_network_nonempty;
        ] );
      ( "query",
        [
          Alcotest.test_case "apply" `Quick test_query_apply;
          Alcotest.test_case "genericity holds" `Quick test_query_generic;
          Alcotest.test_case "genericity violated" `Quick
            test_query_non_generic_detected;
        ] );
      ( "io-dot",
        [
          Alcotest.test_case "fact roundtrip" `Quick test_io_roundtrip;
          Alcotest.test_case "comments and dots" `Quick test_io_comments_and_dots;
          Alcotest.test_case "csv" `Quick test_io_csv;
          Alcotest.test_case "files" `Quick test_io_files;
          Alcotest.test_case "dot golden" `Quick test_dot_golden;
          Alcotest.test_case "dot export" `Quick test_dot;
        ] );
      ("properties", qcheck_cases);
    ]
