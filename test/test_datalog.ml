(* Tests for the Datalog engine: parser, stratification, fixpoints,
   well-founded semantics, connectivity, fragments, ILOG. *)

open Relational
open Datalog

let v = Value.int
let fact r args = Fact.make r (List.map Value.int args)
let edge a b = fact "E" [ a; b ]
let inst facts = Instance.of_list facts

let check_bool name expected actual = Alcotest.(check bool) name expected actual
let check_int name expected actual = Alcotest.(check int) name expected actual

let instance_testable =
  Alcotest.testable Instance.pp Instance.equal

(* Shared programs ---------------------------------------------------- *)

let tc_src = "T(x,y) :- E(x,y).  T(x,z) :- T(x,y), E(y,z)."
let tc = Parser.parse_program tc_src

(* Complement of transitive closure (Q_TC in Theorem 3.1). *)
let comp_tc_src =
  "T(x,y) :- E(x,y).\n\
   T(x,z) :- T(x,y), E(y,z).\n\
   O(x,y) :- Adom(x), Adom(y), not T(x,y)."

let winmove_src = "Win(x) :- Move(x,y), not Win(y)."

(* Example 5.1, program P1: connected but not in Mdistinct. *)
let p1_src =
  "T(x) :- E(x,y), E(y,z), E(z,x), y != x, y != z, x != z.\n\
   O(x) :- Adom(x), not T(x)."

(* Example 5.1, program P2: not semi-connected (unconnected rule feeds
   negation). *)
let p2_src =
  "T(x,y,z) :- E(x,y), E(y,z), E(z,x), y != x, y != z, x != z.\n\
   D(x1) :- T(x1,x2,x3), T(y1,y2,y3), x1 != y1, x1 != y2, x1 != y3, x2 != \
   y1, x2 != y2, x2 != y3, x3 != y1, x3 != y2, x3 != y3.\n\
   O(x) :- Adom(x), not D(x)."

(* ------------------------------------------------------------------ *)
(* Parser *)

let test_parse_tc () =
  check_int "two rules" 2 (List.length tc);
  let r = List.hd tc in
  Alcotest.(check string) "head pred" "T" r.Ast.head.Ast.pred;
  check_int "head arity" 2 (Ast.atom_arity r.Ast.head)

let test_parse_literals () =
  let r = Parser.parse_rule "O(x) :- R(x,y), not S(y), x != y, y != 3." in
  check_int "pos" 1 (List.length r.Ast.pos);
  check_int "neg" 1 (List.length r.Ast.neg);
  check_int "ineq" 2 (List.length r.Ast.ineq)

let test_parse_constants () =
  let r = Parser.parse_rule "O(x) :- R(x, 42, \"alice\")." in
  match (List.hd r.Ast.pos).Ast.terms with
  | [ Ast.Var "x"; Ast.Const c1; Ast.Const c2 ] ->
    check_bool "int const" true (Value.equal c1 (v 42));
    check_bool "sym const" true (Value.equal c2 (Value.sym "alice"))
  | _ -> Alcotest.fail "unexpected term shape"

let test_parse_invention () =
  let r = Parser.parse_rule "R(*, x, y) :- E(x, y)." in
  check_bool "invents" true r.Ast.head.Ast.invents;
  check_int "arity counts slot" 3 (Ast.atom_arity r.Ast.head)

let test_parse_negative_int () =
  let r = Parser.parse_rule "O(x) :- R(x, -5)." in
  match (List.hd r.Ast.pos).Ast.terms with
  | [ _; Ast.Const c ] -> check_bool "neg int" true (Value.equal c (v (-5)))
  | _ -> Alcotest.fail "unexpected term shape"

let test_parse_comments_and_newlines () =
  let p =
    Parser.parse_program
      "% transitive closure\nT(x,y) :- E(x,y). % base\nT(x,z) :- T(x,y), E(y,z)."
  in
  check_int "two rules" 2 (List.length p)

let expect_syntax_error src =
  match Parser.parse_program src with
  | exception Parser.Syntax_error _ -> ()
  | _ -> Alcotest.fail ("expected syntax error for: " ^ src)

let test_parse_errors () =
  expect_syntax_error "T(x,y) :- ";
  expect_syntax_error "T(x,y)";
  expect_syntax_error "T(x,y) :- E(x,y)";
  (* unbound head variable *)
  expect_syntax_error "T(x,z) :- E(x,y).";
  (* unbound variable in negation *)
  expect_syntax_error "T(x) :- E(x,y), not S(w).";
  (* invention in body *)
  expect_syntax_error "T(x) :- E(*, x).";
  (* arity clash *)
  expect_syntax_error "T(x) :- E(x,y). T(x,y) :- E(x,y).";
  (* unterminated string *)
  expect_syntax_error "T(x) :- E(x, \"abc).";
  (* nullary *)
  expect_syntax_error "T() :- E(x,y)."

let test_pretty_roundtrip () =
  let p = Parser.parse_program p2_src in
  let p' = Parser.parse_program (Ast.to_string p) in
  check_bool "roundtrip" true (Ast.equal_program p p')

let test_pretty_roundtrip_invention () =
  let p = Parser.parse_program "R(*, x) :- E(x, y), not S(x, \"lbl\")." in
  let p' = Parser.parse_program (Ast.to_string p) in
  check_bool "roundtrip" true (Ast.equal_program p p')

(* ------------------------------------------------------------------ *)
(* Ast schema helpers *)

let test_schemas () =
  let p = Parser.parse_program comp_tc_src in
  let p = Adom.augment p in
  check_bool "E is edb" true (Schema.mem (Ast.edb p) "E");
  check_bool "T is idb" true (Schema.mem (Ast.idb p) "T");
  check_bool "O is idb" true (Schema.mem (Ast.idb p) "O");
  check_bool "Adom is idb after augment" true (Schema.mem (Ast.idb p) "Adom")

(* ------------------------------------------------------------------ *)
(* Stratification *)

let test_stratify_tc () =
  match Stratify.stratify tc with
  | Error e -> Alcotest.fail e
  | Ok { strata; number } ->
    check_int "single stratum" 1 (List.length strata);
    Alcotest.(check (option int)) "T" (Some 1) (number "T");
    Alcotest.(check (option int)) "edb E has none" None (number "E")

let test_stratify_two_levels () =
  let p = Adom.augment (Parser.parse_program comp_tc_src) in
  match Stratify.stratify p with
  | Error e -> Alcotest.fail e
  | Ok { number; _ } ->
    let t = Option.get (number "T") and o = Option.get (number "O") in
    check_bool "T before O" true (t < o)

let test_unstratifiable () =
  let p = Parser.parse_program winmove_src in
  check_bool "win-move unstratifiable" false (Stratify.is_stratifiable p);
  match Stratify.stratify p with
  | Ok _ -> Alcotest.fail "expected failure"
  | Error e -> check_bool "mentions Win" true (String.length e > 0)

let test_even_odd_stratifiable () =
  (* Negation without a cycle is fine. *)
  let p =
    Parser.parse_program
      "A(x) :- V(x), not B(x). B(x) :- W(x)."
  in
  check_bool "stratifiable" true (Stratify.is_stratifiable p)

let eval_with_stratification strat i =
  List.fold_left (fun acc s -> Eval.seminaive s acc) i strat.Stratify.strata

let test_finest_agrees () =
  let programs =
    [
      tc;
      Adom.augment (Parser.parse_program comp_tc_src);
      Adom.augment (Parser.parse_program p1_src);
      Adom.augment (Parser.parse_program p2_src);
    ]
  in
  List.iter
    (fun p ->
      match (Stratify.stratify p, Stratify.finest p) with
      | Ok s1, Ok s2 ->
        for seed = 0 to 4 do
          let st = Random.State.make [| seed |] in
          let i =
            inst
              (List.init 6 (fun _ ->
                   edge (Random.State.int st 4) (Random.State.int st 4)))
          in
          check_bool "same output" true
            (Instance.equal (eval_with_stratification s1 i)
               (eval_with_stratification s2 i))
        done
      | _ -> Alcotest.fail "both stratifications should exist")
    programs

let test_finest_rejects_winmove () =
  check_bool "finest rejects win-move" true
    (Result.is_error (Stratify.finest (Parser.parse_program winmove_src)))

let test_finest_splits_independent_preds () =
  (* A and B are independent; the finest stratification separates them
     (two strata), while both orders evaluate identically. *)
  let p = Parser.parse_program "A(x) :- V(x). B(x) :- W(x), not A(x)." in
  match Stratify.finest p with
  | Error e -> Alcotest.fail e
  | Ok { strata; number } ->
    check_int "two strata" 2 (List.length strata);
    let a = Option.get (number "A") and b = Option.get (number "B") in
    check_bool "A before B" true (a < b)

let test_dependencies () =
  let p = Adom.augment (Parser.parse_program comp_tc_src) in
  let deps = Stratify.depends_on_trans p "O" in
  check_bool "O depends on T" true (List.mem "T" deps);
  check_bool "O depends on Adom" true (List.mem "Adom" deps);
  let dependents = Stratify.dependents_of_trans p [ "T" ] in
  check_bool "O depends on T (reverse)" true (List.mem "O" dependents);
  check_bool "Adom does not" false (List.mem "Adom" dependents)

(* ------------------------------------------------------------------ *)
(* Evaluation *)

let path n = inst (List.init n (fun i -> edge i (i + 1)))

let tc_pairs n =
  (* expected T-facts of a path 0..n *)
  let out = ref Instance.empty in
  for i = 0 to n do
    for j = i + 1 to n do
      out := Instance.add (fact "T" [ i; j ]) !out
    done
  done;
  !out

let test_eval_tc_path () =
  let i = path 4 in
  let out = Instance.restrict_rels (Eval.seminaive tc i) [ "T" ] in
  Alcotest.check instance_testable "tc of path" (tc_pairs 4) out

let test_eval_tc_cycle () =
  let i = inst [ edge 1 2; edge 2 3; edge 3 1 ] in
  let out = Instance.restrict_rels (Eval.seminaive tc i) [ "T" ] in
  check_int "all 9 pairs" 9 (Instance.cardinal out)

let test_naive_equals_seminaive_tc () =
  let i = inst [ edge 1 2; edge 2 3; edge 3 1; edge 3 4; edge 5 5 ] in
  Alcotest.check instance_testable "naive = seminaive" (Eval.naive tc i)
    (Eval.seminaive tc i)

let test_eval_ineq () =
  let p = Parser.parse_program "O(x,y) :- E(x,y), x != y." in
  let i = inst [ edge 1 1; edge 1 2 ] in
  let out = Instance.restrict_rels (Eval.seminaive p i) [ "O" ] in
  Alcotest.check instance_testable "irreflexive edges"
    (inst [ fact "O" [ 1; 2 ] ])
    out

let test_eval_semipositive_negation () =
  (* Non-edges over the active domain. *)
  let p =
    Adom.augment
      (Parser.parse_program "O(x,y) :- Adom(x), Adom(y), not E(x,y).")
  in
  let i = inst [ edge 1 2 ] in
  let out = Instance.restrict_rels (Eval.stratified_exn p i) [ "O" ] in
  Alcotest.check instance_testable "complement"
    (inst [ fact "O" [ 1; 1 ]; fact "O" [ 2; 1 ]; fact "O" [ 2; 2 ] ])
    out

let test_eval_stratified_comp_tc () =
  let p = Program.parse comp_tc_src in
  let i = inst [ edge 1 2; edge 2 3 ] in
  let out = Program.run p i in
  (* Pairs with no path: everything except (1,2),(2,3),(1,3). *)
  check_int "9 - 3 pairs" 6 (Instance.cardinal out);
  check_bool "no (1,3)" false (Instance.mem (fact "O" [ 1; 3 ]) out);
  check_bool "has (3,1)" true (Instance.mem (fact "O" [ 3; 1 ]) out)

let test_eval_constants_in_rules () =
  let p = Parser.parse_program "O(x) :- E(1, x)." in
  let i = inst [ edge 1 2; edge 3 4 ] in
  let out = Instance.restrict_rels (Eval.seminaive p i) [ "O" ] in
  Alcotest.check instance_testable "selected" (inst [ fact "O" [ 2 ] ]) out

let test_eval_empty_input () =
  Alcotest.check instance_testable "empty in, empty out" Instance.empty
    (Eval.seminaive tc Instance.empty)

let test_eval_multi_join () =
  (* Triangles. *)
  let p =
    Parser.parse_program
      "O(x,y,z) :- E(x,y), E(y,z), E(z,x), x != y, y != z, x != z."
  in
  let i = inst [ edge 1 2; edge 2 3; edge 3 1; edge 3 4 ] in
  let out = Instance.restrict_rels (Eval.seminaive p i) [ "O" ] in
  check_int "three rotations" 3 (Instance.cardinal out)

let test_reorder_constants_first () =
  let r = Parser.parse_rule "O(x) :- E(x,y), E(1,z), E(z,x)." in
  let r' = Eval.reorder_body r in
  (match (List.hd r'.Ast.pos).Ast.terms with
  | Ast.Const _ :: _ -> ()
  | _ -> Alcotest.fail "expected the constant-bearing atom first");
  check_int "same atoms" (List.length r.Ast.pos) (List.length r'.Ast.pos)

let test_reorder_duplicate_atom () =
  (* Regression: selection used physical equality, so a body containing
     two structurally equal copies of an atom dropped both occurrences
     at once. Removal must be by position. *)
  let r = Parser.parse_rule "O(x,y) :- E(x,y), E(x,y), E(y,z)." in
  let r' = Eval.reorder_body r in
  check_int "duplicate survives reorder" (List.length r.Ast.pos)
    (List.length r'.Ast.pos);
  let p = [ r ] and p' = [ r' ] in
  let i = inst [ edge 1 2; edge 2 3 ] in
  Alcotest.check instance_testable "same fixpoint with duplicate atom"
    (Eval.seminaive p i) (Eval.seminaive p' i)

let test_reorder_preserves_semantics () =
  let p =
    Parser.parse_program
      "O(x,y,z) :- E(x,y), E(y,z), E(z,x), x != y, y != z, x != z.\n\
       P(x) :- E(x,y), E(y,x), E(x,x)."
  in
  let p' = Eval.optimize p in
  for seed = 0 to 9 do
    let st = Random.State.make [| seed |] in
    let i =
      inst
        (List.init 10 (fun _ ->
             edge (Random.State.int st 5) (Random.State.int st 5)))
    in
    check_bool "same fixpoint" true
      (Instance.equal (Eval.seminaive p i) (Eval.seminaive p' i))
  done

(* ------------------------------------------------------------------ *)
(* Goal-directed evaluation *)

let two_part_program =
  Parser.parse_program
    "T(x,y) :- E(x,y). T(x,z) :- T(x,y), E(y,z).\n\
     S(x,y) :- F(x,y). S(x,z) :- S(x,y), F(y,z)."

let test_goal_slice () =
  let sliced = Goal.slice two_part_program "T" in
  check_int "only T rules" 2 (List.length sliced);
  check_bool "T relevant" true
    (List.mem "T" (Goal.relevant_predicates two_part_program "T"));
  check_bool "E relevant" true
    (List.mem "E" (Goal.relevant_predicates two_part_program "T"));
  check_bool "S not relevant" false
    (List.mem "S" (Goal.relevant_predicates two_part_program "T"))

let test_goal_matches () =
  let goal = Parser.parse_rule "G(x) :- T(1, x)." in
  let pattern = List.hd goal.Ast.pos in
  check_bool "matches" true (Goal.matches pattern (fact "T" [ 1; 5 ]));
  check_bool "constant mismatch" false (Goal.matches pattern (fact "T" [ 2; 5 ]));
  let rep = Ast.atom "T" [ Ast.Var "x"; Ast.Var "x" ] in
  check_bool "repeated var match" true (Goal.matches rep (fact "T" [ 3; 3 ]));
  check_bool "repeated var mismatch" false (Goal.matches rep (fact "T" [ 3; 4 ]))

let test_goal_query () =
  let i = inst [ edge 1 2; edge 2 3; Fact.make "F" [ Value.int 7; Value.int 8 ] ] in
  let goal = Ast.atom "T" [ Ast.Const (Value.Int 1); Ast.Var "y" ] in
  match Goal.query two_part_program i ~goal with
  | Error e -> Alcotest.fail e
  | Ok out ->
    Alcotest.check instance_testable "paths from 1"
      (inst [ fact "T" [ 1; 2 ]; fact "T" [ 1; 3 ] ])
      out

let test_goal_agrees_with_full () =
  let i = inst [ edge 1 2; edge 2 3; edge 3 1 ] in
  let goal = Ast.atom "T" [ Ast.Var "x"; Ast.Var "y" ] in
  match Goal.query two_part_program i ~goal with
  | Error e -> Alcotest.fail e
  | Ok out ->
    Alcotest.check instance_testable "full T extent"
      (Instance.restrict_rels (Eval.stratified_exn two_part_program i) [ "T" ])
      out

(* ------------------------------------------------------------------ *)
(* Hash-join backend *)

let test_hashjoin_tc () =
  let i = path 4 in
  Alcotest.check instance_testable "agrees with Eval on TC"
    (Eval.seminaive tc i) (Hashjoin.seminaive tc i)

let test_hashjoin_repeated_vars () =
  let p = Parser.parse_program "O(x) :- E(x,x)." in
  let i = inst [ edge 1 1; edge 1 2; edge 3 3 ] in
  Alcotest.check instance_testable "self loops"
    (Instance.restrict_rels (Eval.seminaive p i) [ "O" ])
    (Instance.restrict_rels (Hashjoin.seminaive p i) [ "O" ])

let test_hashjoin_constants_and_ineq () =
  let p = Parser.parse_program "O(y,z) :- E(1,y), E(y,z), y != z." in
  let i = inst [ edge 1 2; edge 2 3; edge 2 2; edge 4 5 ] in
  Alcotest.check instance_testable "constants + inequality"
    (Eval.seminaive p i) (Hashjoin.seminaive p i)

let test_hashjoin_stratified () =
  let p = Adom.augment (Parser.parse_program comp_tc_src) in
  let i = inst [ edge 1 2; edge 2 3 ] in
  match (Eval.stratified p i, Hashjoin.stratified p i) with
  | Ok a, Ok b -> Alcotest.check instance_testable "stratified agreement" a b
  | _ -> Alcotest.fail "stratification failed"

let test_hashjoin_invention () =
  let p = Parser.parse_program "R(*, x, y) :- E(x, y). O(x) :- R(t, x, y)." in
  let i = inst [ edge 1 2 ] in
  Alcotest.check instance_testable "invention through hash join"
    (Eval.seminaive p i) (Hashjoin.seminaive p i)

(* ------------------------------------------------------------------ *)
(* Reference engine (the preserved seed nested-loop evaluator) *)

let cycle n = inst (List.init n (fun i -> edge i ((i + 1) mod n)))

let test_refeval_zoo_agreement () =
  (* The indexed engine and the hash-join engine against the frozen seed
     engine, across the zoo's stratifiable programs and graph shapes. *)
  let graphs =
    [
      path 4;
      cycle 5;
      inst [ edge 1 2; edge 2 3; edge 3 1; edge 3 4; edge 4 4 ];
      Instance.empty;
    ]
  in
  let programs =
    [
      ("tc", tc);
      ("comp-tc", Adom.augment (Parser.parse_program comp_tc_src));
      ("p1", Adom.augment (Parser.parse_program p1_src));
      ("p2", Adom.augment (Parser.parse_program p2_src));
    ]
  in
  List.iter
    (fun (name, p) ->
      List.iter
        (fun i ->
          match (Refeval.stratified p i, Eval.stratified p i) with
          | Ok reference, Ok indexed ->
            Alcotest.check instance_testable (name ^ ": indexed = reference")
              reference indexed;
            (match Hashjoin.stratified p i with
            | Ok hj ->
              Alcotest.check instance_testable (name ^ ": hashjoin = reference")
                reference hj
            | Error e -> Alcotest.fail e)
          | Error e, _ | _, Error e -> Alcotest.fail e)
        graphs)
    programs

let test_refeval_naive_seminaive () =
  let i = path 5 in
  Alcotest.check instance_testable "reference naive = reference seminaive"
    (Refeval.naive tc i) (Refeval.seminaive tc i);
  Alcotest.check instance_testable "reference naive = indexed naive"
    (Refeval.naive tc i) (Eval.naive tc i)

(* ------------------------------------------------------------------ *)
(* Well-founded semantics *)

let winmove = Parser.parse_program winmove_src
let move a b = fact "Move" [ a; b ]
let win a = fact "Win" [ a ]

let test_wf_simple_chain () =
  (* 1 -> 2 -> 3: from 3 no move (lost), 2 wins (move to 3), 1 loses
     (only move to winning 2). *)
  let i = inst [ move 1 2; move 2 3 ] in
  let m = Wellfounded.eval winmove i in
  check_bool "total" true (Wellfounded.total m);
  check_bool "2 wins" true (Instance.mem (win 2) m.true_facts);
  check_bool "1 not won" false (Instance.mem (win 1) m.true_facts);
  check_bool "3 not won" false (Instance.mem (win 3) m.true_facts)

let test_wf_draw_cycle () =
  (* 1 <-> 2: both positions are drawn (undefined). *)
  let i = inst [ move 1 2; move 2 1 ] in
  let m = Wellfounded.eval winmove i in
  check_bool "not total" false (Wellfounded.total m);
  check_bool "win(1) undefined" true (Instance.mem (win 1) m.undefined);
  check_bool "win(2) undefined" true (Instance.mem (win 2) m.undefined)

let test_wf_cycle_with_escape () =
  (* 1 <-> 2, plus 2 -> 3 (dead end). 2 wins by moving to 3. 1's only move
     is to the winning 2, so 1 loses. *)
  let i = inst [ move 1 2; move 2 1; move 2 3 ] in
  let m = Wellfounded.eval winmove i in
  check_bool "total" true (Wellfounded.total m);
  check_bool "2 wins" true (Instance.mem (win 2) m.true_facts);
  check_bool "1 loses" false
    (Instance.mem (win 1) m.true_facts || Instance.mem (win 1) m.undefined)

let test_doubled_step_is_semipositive () =
  let p = Wellfounded.doubled_step_program winmove in
  check_bool "semi-positive" true (Fragment.is_semi_positive p);
  check_bool "connectivity preserved" true
    (List.for_all2
       (fun r r' ->
         Connectivity.rule_is_connected r = Connectivity.rule_is_connected r')
       winmove p)

let test_doubling_agrees_on_winmove () =
  for seed = 0 to 14 do
    let st = Random.State.make [| seed |] in
    let g =
      inst
        (List.init 10 (fun _ ->
             Fact.make "Move"
               [ Value.int (Random.State.int st 6);
                 Value.int (Random.State.int st 6) ]))
    in
    let a = Wellfounded.eval winmove g in
    let b = Wellfounded.eval_via_doubling winmove g in
    check_bool
      (Printf.sprintf "true facts agree (seed %d)" seed)
      true
      (Instance.equal a.Wellfounded.true_facts b.Wellfounded.true_facts);
    check_bool
      (Printf.sprintf "undefined agree (seed %d)" seed)
      true
      (Instance.equal a.Wellfounded.undefined b.Wellfounded.undefined)
  done

let test_doubling_agrees_on_stratifiable () =
  let p = Adom.augment (Parser.parse_program comp_tc_src) in
  let g = inst [ edge 1 2; edge 2 3 ] in
  let a = Wellfounded.eval p g in
  let b = Wellfounded.eval_via_doubling p g in
  check_bool "agree" true
    (Instance.equal a.Wellfounded.true_facts b.Wellfounded.true_facts
    && Wellfounded.total b)

let test_wf_agrees_with_stratified () =
  let p = Adom.augment (Parser.parse_program comp_tc_src) in
  let i = inst [ edge 1 2; edge 2 3 ] in
  check_bool "stratified-compatible" true
    (Wellfounded.is_stratified_compatible p i)

(* ------------------------------------------------------------------ *)
(* Connectivity *)

let test_rule_connectivity () =
  let r1 = Parser.parse_rule "T(x) :- E(x,y), E(y,z)." in
  check_bool "chain connected" true (Connectivity.rule_is_connected r1);
  let r2 = Parser.parse_rule "T(x) :- E(x,y), F(u,w)." in
  check_bool "disconnected product" false (Connectivity.rule_is_connected r2);
  let r3 = Parser.parse_rule "T(x) :- V(x)." in
  check_bool "single var" true (Connectivity.rule_is_connected r3)

let test_rule_connectivity_neg_not_counted () =
  (* Negative atoms do not contribute edges to graph+. Both w and x occur
     in positive atoms, but only via disconnected positive atoms. *)
  let r = Parser.parse_rule "T(x) :- E(x,y), G(w), not F(x,w)." in
  check_bool "neg atom does not connect" false (Connectivity.rule_is_connected r)

let test_example_51_p1 () =
  let p = Adom.augment (Parser.parse_program p1_src) in
  check_bool "P1 is connected program" true (Connectivity.is_connected_program p);
  check_bool "P1 semi-connected" true (Connectivity.is_semi_connected p)

let test_example_51_p2 () =
  let p = Adom.augment (Parser.parse_program p2_src) in
  check_bool "P2 not connected" false (Connectivity.is_connected_program p);
  check_bool "P2 not semi-connected" false (Connectivity.is_semi_connected p)

let test_semicon_last_stratum_ok () =
  (* Unconnected rule whose head is only used positively, nothing depends
     on it: it can sit in the final stratum. *)
  let p =
    Parser.parse_program
      "T(x) :- E(x,y). O(x,w) :- T(x), G(w), not T(w)."
  in
  check_bool "not connected" false (Connectivity.is_connected_program p);
  check_bool "semi-connected" true (Connectivity.is_semi_connected p);
  check_bool "forced contains O" true
    (List.mem "O" (Connectivity.forced_final_stratum p))

let test_semicon_violation_by_dependency () =
  (* The unconnected rule's head D is negated by a rule that itself must be
     in the final stratum: not semi-connected. *)
  let p =
    Parser.parse_program
      "D(x) :- V(x), G(w).  O(x) :- V(x), not D(x).  P(x) :- O(x), G(x)."
  in
  (* D unconnected -> D in final stratum; O negates D so O must be higher
     -> impossible within one stratum. *)
  check_bool "not semi-connected" false (Connectivity.is_semi_connected p)

(* ------------------------------------------------------------------ *)
(* Fragments *)

let test_fragments () =
  let open Fragment in
  Alcotest.(check string) "tc" "Datalog" (to_string (classify tc));
  let p_ineq = Parser.parse_program "O(x,y) :- E(x,y), x != y." in
  Alcotest.(check string) "ineq" "Datalog(!=)" (to_string (classify p_ineq));
  let p_sp =
    Parser.parse_program "O(x) :- V(x), not E(x,x)."
  in
  Alcotest.(check string) "sp" "SP-Datalog" (to_string (classify p_sp));
  let p1 = Adom.augment (Parser.parse_program p1_src) in
  Alcotest.(check string) "p1 con" "con-Datalog^neg" (to_string (classify p1));
  let p2 = Adom.augment (Parser.parse_program p2_src) in
  Alcotest.(check string) "p2 stratified only" "Datalog^neg (stratified)"
    (to_string (classify p2));
  Alcotest.(check string) "winmove" "unstratifiable"
    (to_string (classify winmove))

let test_fragment_bounds () =
  let open Fragment in
  Alcotest.(check string) "positive bound" "M" (monotonicity_upper_bound Positive);
  Alcotest.(check string) "sp bound" "Mdistinct"
    (monotonicity_upper_bound Semi_positive);
  Alcotest.(check string) "semicon bound" "Mdisjoint"
    (monotonicity_upper_bound Semi_connected_stratified)

(* ------------------------------------------------------------------ *)
(* ILOG *)

let test_ilog_basic_invention () =
  let p = Parser.parse_program "R(*, x, y) :- E(x, y)." in
  match Ilog.eval p (inst [ edge 1 2; edge 3 4 ]) with
  | Ok (Ilog.Output out) ->
    let rs = Instance.restrict_rels out [ "R" ] in
    check_int "two invented facts" 2 (Instance.cardinal rs);
    Instance.iter
      (fun f -> check_bool "first arg invented" true (Value.is_invented (Fact.arg f 0)))
      rs
  | Ok Ilog.Divergent -> Alcotest.fail "unexpected divergence"
  | Error e -> Alcotest.fail e

let test_ilog_same_tuple_same_value () =
  (* Skolemization: the same tuple always gets the same invented value,
     even across rules deriving into the same relation. *)
  let p = Parser.parse_program "R(*, x) :- E(x, y). R(*, y) :- E(x, y)." in
  match Ilog.eval p (inst [ edge 1 1 ]) with
  | Ok (Ilog.Output out) ->
    check_int "single R fact" 1
      (Instance.cardinal (Instance.restrict_rels out [ "R" ]))
  | _ -> Alcotest.fail "expected output"

let test_ilog_divergence () =
  (* Recursive invention: R feeds itself through invention. *)
  let p = Parser.parse_program "N(*, x) :- V(x). N(*, n) :- N(n, x)." in
  match Ilog.eval ~max_facts:1000 p (inst [ fact "V" [ 1 ] ]) with
  | Ok Ilog.Divergent -> ()
  | Ok (Ilog.Output _) -> Alcotest.fail "expected divergence"
  | Error e -> Alcotest.fail e

let test_ilog_validate () =
  let p = Parser.parse_program "R(*, x) :- V(x). R(x, x) :- V(x)." in
  check_bool "inconsistent invention flagged" true
    (Result.is_error (Ilog.validate p))

let test_ilog_unsafe_positions () =
  let p =
    Parser.parse_program "R(*, x) :- V(x). O(n) :- R(n, x)."
  in
  let unsafe = Ilog.unsafe_positions p in
  check_bool "(R,1) unsafe" true (List.mem ("R", 1) unsafe);
  check_bool "(O,1) unsafe by propagation" true (List.mem ("O", 1) unsafe);
  check_bool "not weakly safe" false (Ilog.is_weakly_safe ~outputs:[ "O" ] p)

let test_ilog_weakly_safe () =
  let p =
    Parser.parse_program "R(*, x) :- V(x). O(x) :- R(n, x)."
  in
  check_bool "weakly safe" true (Ilog.is_weakly_safe ~outputs:[ "O" ] p);
  match Ilog.eval_output ~outputs:[ "O" ] p (inst [ fact "V" [ 7 ] ]) with
  | Ok out ->
    check_bool "safe output" true (Ilog.is_safe_output out);
    Alcotest.check instance_testable "projected back"
      (inst [ fact "O" [ 7 ] ])
      out
  | Error e -> Alcotest.fail e

let test_ilog_invention_as_join_value () =
  (* Invented values can be joined on downstream. *)
  let p =
    Parser.parse_program
      "Pair(*, x, y) :- E(x, y). Left(p, x) :- Pair(p, x, y). Right(p, y) \
       :- Pair(p, x, y). O(x, y) :- Left(p, x), Right(p, y)."
  in
  match Ilog.eval_output ~outputs:[ "O" ] p (inst [ edge 1 2; edge 3 4 ]) with
  | Ok out ->
    check_int "recovered pairs" 2 (Instance.cardinal out);
    check_bool "has (1,2)" true (Instance.mem (fact "O" [ 1; 2 ]) out)
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* Dependency graph export *)

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_depgraph () =
  let p = Adom.augment (Parser.parse_program comp_tc_src) in
  let dot = Depgraph.to_dot p in
  check_bool "digraph" true (contains dot "digraph dependencies {");
  check_bool "edb box" true (contains dot "\"E\" [shape=box];");
  check_bool "positive edge" true (contains dot "\"E\" -> \"T\";");
  check_bool "negative edge dashed" true
    (contains dot "\"T\" -> \"O\" [style=dashed, color=red];");
  check_bool "stratum label" true (contains dot "stratum");
  (* Unstratifiable programs still render, without stratum labels. *)
  let dot' = Depgraph.to_dot (Parser.parse_program winmove_src) in
  check_bool "self negative loop" true
    (contains dot' "\"Win\" -> \"Win\" [style=dashed, color=red];");
  check_bool "no stratum label" false (contains dot' "stratum")

(* ------------------------------------------------------------------ *)
(* Points of order (Bloom-style CALM analysis) *)

let test_points_positive () =
  let points = Points_of_order.analyze tc in
  check_int "no points" 0 (List.length points);
  Alcotest.(check string) "F0" "F0 (none: positive program, monotone)"
    (Points_of_order.coordination_level tc)

let test_points_edb_negation () =
  let p =
    Adom.augment
      (Parser.parse_program "O(x,y) :- Adom(x), Adom(y), not E(x,y).")
  in
  let points = Points_of_order.analyze p in
  check_int "one point" 1 (List.length points);
  check_bool "edb severity" true
    (List.for_all
       (fun pt -> pt.Points_of_order.severity = Points_of_order.Edb_negation)
       points);
  check_bool "F1 level" true
    (String.length (Points_of_order.coordination_level p) > 1
    && String.sub (Points_of_order.coordination_level p) 0 2 = "F1")

let test_points_semicon () =
  let p = Adom.augment (Parser.parse_program comp_tc_src) in
  check_bool "F2 level" true
    (String.sub (Points_of_order.coordination_level p) 0 2 = "F2");
  match Points_of_order.max_severity (Points_of_order.analyze p) with
  | Some Points_of_order.Stratified_negation -> ()
  | _ -> Alcotest.fail "expected stratified negation as max severity"

let test_points_blocking () =
  let p = Adom.augment (Parser.parse_program p2_src) in
  match Points_of_order.max_severity (Points_of_order.analyze p) with
  | Some Points_of_order.Blocking_negation -> ()
  | _ -> Alcotest.fail "expected blocking negation for P2"

(* ------------------------------------------------------------------ *)
(* Adom + Program *)

let test_adom_rules () =
  let sg = Schema.of_list [ ("E", 2); ("V", 1) ] in
  let rules = Adom.rules_for sg in
  check_int "2 + 1 rules" 3 (List.length rules)

let test_adom_augment_noop () =
  check_bool "tc unchanged" true
    (Ast.equal_program tc (Adom.augment tc))

let test_program_api () =
  let p = Program.parse comp_tc_src in
  check_bool "input is E" true (Schema.mem (Program.input_schema p) "E");
  check_bool "output is O" true (Schema.mem (Program.output_schema p) "O");
  check_bool "input excludes Adom" false
    (Schema.mem (Program.input_schema p) "Adom")

let test_program_rejects_bad_output () =
  match Program.parse ~outputs:[ "Nope" ] tc_src with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection"

let test_program_rejects_unstratifiable () =
  match Program.parse ~outputs:[ "Win" ] winmove_src with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection"

let test_program_wellfounded_semantics () =
  let p =
    Program.parse ~outputs:[ "Win" ] ~semantics:Program.Well_founded
      winmove_src
  in
  let out = Program.run p (inst [ move 1 2; move 2 3 ]) in
  Alcotest.check instance_testable "wins" (inst [ win 2 ]) out

let test_program_as_query () =
  let p = Program.parse tc_src ~outputs:[ "T" ] in
  let q = Program.query ~name:"tc" p in
  let out = Query.apply q (path 3) in
  Alcotest.check instance_testable "tc query" (tc_pairs 3) out;
  check_bool "generic" true (Query.check_generic q (path 3))

(* ------------------------------------------------------------------ *)
(* qcheck properties *)

let gen_graph max_nodes max_edges =
  QCheck2.Gen.(
    let* n = int_range 0 max_edges in
    let* edges =
      list_size (return n)
        (pair (int_range 0 (max_nodes - 1)) (int_range 0 (max_nodes - 1)))
    in
    return (inst (List.map (fun (a, b) -> edge a b) edges)))

let prop_naive_eq_seminaive_tc =
  QCheck2.Test.make ~name:"naive = seminaive on TC" ~count:100
    (gen_graph 7 14) (fun i ->
      Instance.equal (Eval.naive tc i) (Eval.seminaive tc i))

let prop_naive_eq_seminaive_sp =
  let p =
    Adom.augment
      (Parser.parse_program
         "O(x,y) :- Adom(x), Adom(y), not E(x,y), x != y.")
  in
  QCheck2.Test.make ~name:"naive = seminaive on SP program" ~count:100
    (gen_graph 6 10) (fun i ->
      (* Evaluate each stratum both ways. *)
      match Stratify.stratify p with
      | Error _ -> false
      | Ok { strata; _ } ->
        let run eval = List.fold_left (fun acc s -> eval s acc) i strata in
        Instance.equal
          (run (fun s acc -> Eval.naive s acc))
          (run (fun s acc -> Eval.seminaive s acc)))

let prop_tc_idempotent =
  QCheck2.Test.make ~name:"TC fixpoint is a fixpoint" ~count:100
    (gen_graph 7 14) (fun i ->
      let out = Eval.seminaive tc i in
      Instance.equal out (Eval.immediate_consequence tc out))

let prop_tc_monotone =
  QCheck2.Test.make ~name:"positive program is monotone" ~count:100
    (QCheck2.Gen.pair (gen_graph 6 10) (gen_graph 6 10)) (fun (i, j) ->
      Instance.subset (Eval.seminaive tc i)
        (Eval.seminaive tc (Instance.union i j)))

let prop_wf_total_on_stratifiable =
  let p = Adom.augment (Parser.parse_program p1_src) in
  QCheck2.Test.make ~name:"WF total + agrees on stratifiable P1" ~count:50
    (gen_graph 5 8) (fun i -> Wellfounded.is_stratified_compatible p i)

let prop_wf_winmove_partition =
  QCheck2.Test.make ~name:"win-move WF: wins, losses, draws partition"
    ~count:100 (gen_graph 6 10) (fun e ->
      (* reinterpret E edges as moves *)
      let i =
        Instance.fold
          (fun f acc -> Instance.add (Fact.make "Move" (Fact.args f)) acc)
          e Instance.empty
      in
      let m = Wellfounded.eval winmove i in
      Instance.is_empty (Instance.inter m.true_facts m.undefined))

(* Random well-formed rules: positive atoms over a small var pool first,
   then head/neg/ineq drawing only from the positive variables. *)
let gen_rule =
  let open QCheck2.Gen in
  let var = oneofl [ "x"; "y"; "z"; "w" ] in
  let pred = oneofl [ "P"; "Q"; "R" ] in
  let edb_pred = oneofl [ "A"; "B" ] in
  let term =
    frequency
      [ (4, map (fun v -> Ast.Var v) var);
        (1, map (fun k -> Ast.Const (Value.Int k)) (int_range 0 3)) ]
  in
  let atom p arity = map (fun ts -> Ast.atom p ts) (list_size (return arity) term) in
  let* pos = list_size (int_range 1 3) (edb_pred >>= fun p -> atom p 2) in
  let pos_vars = List.concat_map Ast.vars_of_atom pos in
  if pos_vars = [] then
    (* all-constant bodies: head must be constant too *)
    let* hp = pred in
    return { Ast.head = Ast.atom hp [ Ast.Const (Value.Int 0) ]; pos; neg = []; ineq = [] }
  else
    let pvar = oneofl pos_vars in
    let pterm = map (fun v -> Ast.Var v) pvar in
    let* hp = pred in
    let* head_terms = list_size (int_range 1 2) pterm in
    let* neg =
      list_size (int_range 0 2)
        (edb_pred >>= fun p ->
         map (fun ts -> Ast.atom p ts) (list_size (return 2) pterm))
    in
    let* ineq = list_size (int_range 0 1) (pair pterm pterm) in
    return { Ast.head = Ast.atom hp head_terms; pos; neg; ineq }

let prop_parser_roundtrip =
  QCheck2.Test.make ~name:"pretty-print then parse is identity" ~count:300
    (QCheck2.Gen.list_size (QCheck2.Gen.int_range 1 4) gen_rule)
    (fun p ->
      match Ast.check_rule (List.hd p) with
      | Error _ -> QCheck2.assume_fail ()
      | Ok () -> (
        match List.find_opt (fun r -> Result.is_error (Ast.check_rule r)) p with
        | Some _ -> QCheck2.assume_fail ()
        | None -> (
          (* Arities must also be globally consistent for schema_of. *)
          match Ast.schema_of p with
          | exception Invalid_argument _ -> QCheck2.assume_fail ()
          | _ ->
            let p' = Parser.parse_program (Ast.to_string p) in
            Ast.equal_program p p')))

let prop_hashjoin_agrees =
  QCheck2.Test.make ~name:"hash join = nested loop on random programs"
    ~count:150
    (QCheck2.Gen.pair
       (QCheck2.Gen.list_size (QCheck2.Gen.int_range 1 4) gen_rule)
       (QCheck2.Gen.list_size (QCheck2.Gen.int_range 0 10)
          (QCheck2.Gen.pair (QCheck2.Gen.int_range 0 4)
             (QCheck2.Gen.int_range 0 4))))
    (fun (p, pairs) ->
      match Ast.schema_of p with
      | exception Invalid_argument _ -> QCheck2.assume_fail ()
      | _ ->
        if List.exists (fun r -> Result.is_error (Ast.check_rule r)) p then
          QCheck2.assume_fail ()
        else
          let i =
            Instance.union
              (inst (List.map (fun (a, b) -> fact "A" [ a; b ]) pairs))
              (inst (List.map (fun (a, b) -> fact "B" [ b; a ]) pairs))
          in
          Instance.equal (Eval.seminaive p i) (Hashjoin.seminaive p i))

(* The equivalence wall for the indexed engine: the seed's nested-loop
   evaluator is preserved verbatim as [Refeval]; random programs must
   evaluate identically through the reference naive fixpoint, the
   reference seminaive fixpoint, the indexed seminaive engine and the
   hash-join engine. *)
let prop_refeval_agrees =
  QCheck2.Test.make ~name:"indexed engine = reference engine (random programs)"
    ~count:300
    (QCheck2.Gen.pair
       (QCheck2.Gen.list_size (QCheck2.Gen.int_range 1 4) gen_rule)
       (QCheck2.Gen.list_size (QCheck2.Gen.int_range 0 10)
          (QCheck2.Gen.pair (QCheck2.Gen.int_range 0 4)
             (QCheck2.Gen.int_range 0 4))))
    (fun (p, pairs) ->
      match Ast.schema_of p with
      | exception Invalid_argument _ -> QCheck2.assume_fail ()
      | _ ->
        if List.exists (fun r -> Result.is_error (Ast.check_rule r)) p then
          QCheck2.assume_fail ()
        else
          let i =
            Instance.union
              (inst (List.map (fun (a, b) -> fact "A" [ a; b ]) pairs))
              (inst (List.map (fun (a, b) -> fact "B" [ b; a ]) pairs))
          in
          let reference = Refeval.naive p i in
          Instance.equal reference (Refeval.seminaive p i)
          && Instance.equal reference (Eval.seminaive p i)
          && Instance.equal reference (Hashjoin.seminaive p i))

let prop_stratified_genericity =
  let p = Program.parse comp_tc_src in
  let q = Program.query ~name:"comp-tc" p in
  QCheck2.Test.make ~name:"stratified program is generic" ~count:40
    (gen_graph 5 8) (fun i -> Query.check_generic ~trials:4 q i)

(* ------------------------------------------------------------------ *)
(* Incremental view maintenance: directed unit tests. *)

let test_ivm_basic () =
  let p = Parser.parse_program tc_src in
  let h = Ivm.materialize p (inst [ edge 1 2; edge 2 3 ]) in
  check_bool "T(1,3)" true (Instance.mem (fact "T" [ 1; 3 ]) (Ivm.current h));
  let m = Ivm.apply h ~delta:(inst [ edge 3 4 ]) in
  check_bool "apply derives T(1,4)" true (Instance.mem (fact "T" [ 1; 4 ]) m);
  check_bool "what-if apply leaves the handle unmoved" false
    (Instance.mem (fact "T" [ 1; 4 ]) (Ivm.current h));
  let m = Ivm.insert h (inst [ edge 3 4 ]) in
  check_bool "insert derives T(1,4)" true (Instance.mem (fact "T" [ 1; 4 ]) m);
  let m = Ivm.retract h (inst [ edge 3 4 ]) in
  check_bool "retract removes T(1,4)" false
    (Instance.mem (fact "T" [ 1; 4 ]) m);
  check_bool "retract keeps T(1,3)" true (Instance.mem (fact "T" [ 1; 3 ]) m)

let test_ivm_shared_support () =
  (* Retracting one of two independent derivations must keep the fact
     (counting), retracting both must drop it. *)
  let p = Parser.parse_program "T(x,y) :- E(x,y). T(x,y) :- F(x,y)." in
  let h = Ivm.materialize p (inst [ edge 1 2; fact "F" [ 1; 2 ] ]) in
  let m = Ivm.retract h (inst [ edge 1 2 ]) in
  check_bool "still F-supported" true (Instance.mem (fact "T" [ 1; 2 ]) m);
  let m = Ivm.retract h (inst [ fact "F" [ 1; 2 ] ]) in
  check_bool "unsupported fact gone" false
    (Instance.mem (fact "T" [ 1; 2 ]) m)

let test_ivm_idb_given () =
  (* A given fact of a derived predicate is part of the input: it
     survives the retraction of the rule derivation that also produces
     it. *)
  let p = Parser.parse_program tc_src in
  let h = Ivm.materialize p (inst [ edge 1 2; fact "T" [ 1; 2 ] ]) in
  let m = Ivm.retract h (inst [ edge 1 2 ]) in
  check_bool "given T(1,2) survives" true
    (Instance.mem (fact "T" [ 1; 2 ]) m);
  check_bool "E(1,2) gone" false (Instance.mem (edge 1 2) m)

let test_ivm_unstratifiable () =
  let p = Parser.parse_program winmove_src in
  check_bool "unsupported" false (Ivm.supported p);
  match Ivm.materialize p Instance.empty with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

(* The equivalence wall for incremental view maintenance: at every step
   of a random insert/retract sequence the handle's model must equal a
   from-scratch saturation of its input (the seed's [Refeval] as
   oracle), and a what-if {!Ivm.apply} must answer the extended model
   without moving the handle. *)

let ivm_oracle p given =
  match Refeval.stratified p given with
  | Ok m -> m
  | Error e -> Alcotest.failf "ivm oracle: %s" e

let ivm_sequence_ok p init steps to_inst =
  let h = Ivm.materialize p init in
  let given = ref init in
  List.for_all
    (fun (destructive, adds, rems) ->
      let add = to_inst adds and remove = to_inst rems in
      if destructive then begin
        let m = Ivm.update h ~add ~remove in
        given := Instance.union (Instance.diff !given remove) add;
        Instance.equal m (ivm_oracle p !given)
        && Instance.equal (Ivm.current h) m
        && Instance.equal (Ivm.given h) !given
      end
      else
        let m = Ivm.apply h ~delta:add in
        Instance.equal m (ivm_oracle p (Instance.union !given add))
        && Instance.equal (Ivm.given h) !given
        && Instance.equal (Ivm.current h) (ivm_oracle p !given))
    steps

let gen_ivm_steps gen_facts =
  QCheck2.Gen.(list_size (int_range 1 5) (triple bool gen_facts gen_facts))

let prop_ivm_zoo_sequences =
  let progs =
    List.map
      (fun src -> Adom.augment (Parser.parse_program src))
      [ tc_src; comp_tc_src; p1_src; p2_src ]
  in
  let gen_edges =
    QCheck2.Gen.(
      list_size (int_range 0 6) (pair (int_range 0 4) (int_range 0 4)))
  in
  QCheck2.Test.make ~name:"ivm update sequences = from-scratch (zoo)"
    ~count:60
    (QCheck2.Gen.pair gen_edges (gen_ivm_steps gen_edges))
    (fun (init, steps) ->
      let to_inst pairs = inst (List.map (fun (a, b) -> edge a b) pairs) in
      List.for_all
        (fun p -> ivm_sequence_ok p (to_inst init) steps to_inst)
        progs)

(* Random recursive programs with negation: bodies over edb {A, B} and
   idb {P, Q} (recursive strata exercise the DRed route), negation over
   the edb (semi-positive core, so stratifiable by construction),
   sometimes topped by a stratum negating the recursive [P] — the
   scratch-recompute route. *)
let gen_ivm_case =
  let open QCheck2.Gen in
  let vars = [ "x"; "y"; "z" ] in
  let rule =
    let* npos = int_range 1 3 in
    let* pos =
      list_size (return npos)
        (let* p = oneofl [ "A"; "B"; "P"; "Q" ] in
         let* t1 = oneofl vars in
         let* t2 = oneofl vars in
         return (Ast.atom p [ Ast.Var t1; Ast.Var t2 ]))
    in
    let pos_vars = List.concat_map Ast.vars_of_atom pos in
    let pvar = oneofl pos_vars in
    let* h1 = pvar in
    let* h2 = pvar in
    let* hp = oneofl [ "P"; "Q" ] in
    let* neg =
      list_size (int_range 0 2)
        (let* p = oneofl [ "A"; "B" ] in
         let* t1 = pvar in
         let* t2 = pvar in
         return (Ast.atom p [ Ast.Var t1; Ast.Var t2 ]))
    in
    let* ineq =
      list_size (int_range 0 1)
        (let* t1 = pvar in
         let* t2 = pvar in
         return (Ast.Var t1, Ast.Var t2))
    in
    return
      { Ast.head = Ast.atom hp [ Ast.Var h1; Ast.Var h2 ]; pos; neg; ineq }
  in
  let* rules = list_size (int_range 1 4) rule in
  let* with_top = bool in
  let p =
    if with_top then
      rules @ [ Parser.parse_rule "S(x,y) :- A(x,y), not P(x,y)." ]
    else rules
  in
  let gfacts =
    list_size (int_range 0 6)
      (triple bool (int_range 0 4) (int_range 0 4))
  in
  let* init = gfacts in
  let* steps = gen_ivm_steps gfacts in
  return (p, init, steps)

let prop_ivm_random_sequences =
  QCheck2.Test.make
    ~name:"ivm update sequences = from-scratch (random programs)" ~count:300
    gen_ivm_case
    (fun (p, init, steps) ->
      let to_inst trips =
        inst
          (List.map
             (fun (r, a, b) -> fact (if r then "A" else "B") [ a; b ])
             trips)
      in
      ivm_sequence_ok p (to_inst init) steps to_inst)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_naive_eq_seminaive_tc;
      prop_naive_eq_seminaive_sp;
      prop_tc_idempotent;
      prop_tc_monotone;
      prop_wf_total_on_stratifiable;
      prop_wf_winmove_partition;
      prop_parser_roundtrip;
      prop_hashjoin_agrees;
      prop_refeval_agrees;
      prop_stratified_genericity;
      prop_ivm_zoo_sequences;
      prop_ivm_random_sequences;
    ]

let () =
  Alcotest.run "datalog"
    [
      ( "parser",
        [
          Alcotest.test_case "tc" `Quick test_parse_tc;
          Alcotest.test_case "literals" `Quick test_parse_literals;
          Alcotest.test_case "constants" `Quick test_parse_constants;
          Alcotest.test_case "invention" `Quick test_parse_invention;
          Alcotest.test_case "negative int" `Quick test_parse_negative_int;
          Alcotest.test_case "comments" `Quick test_parse_comments_and_newlines;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "pretty roundtrip" `Quick test_pretty_roundtrip;
          Alcotest.test_case "pretty roundtrip invention" `Quick
            test_pretty_roundtrip_invention;
        ] );
      ("ast", [ Alcotest.test_case "schemas" `Quick test_schemas ]);
      ( "stratify",
        [
          Alcotest.test_case "tc" `Quick test_stratify_tc;
          Alcotest.test_case "two levels" `Quick test_stratify_two_levels;
          Alcotest.test_case "unstratifiable" `Quick test_unstratifiable;
          Alcotest.test_case "negation no cycle" `Quick test_even_odd_stratifiable;
          Alcotest.test_case "finest agrees" `Quick test_finest_agrees;
          Alcotest.test_case "finest rejects win-move" `Quick
            test_finest_rejects_winmove;
          Alcotest.test_case "finest splits" `Quick
            test_finest_splits_independent_preds;
          Alcotest.test_case "dependencies" `Quick test_dependencies;
        ] );
      ( "eval",
        [
          Alcotest.test_case "tc path" `Quick test_eval_tc_path;
          Alcotest.test_case "tc cycle" `Quick test_eval_tc_cycle;
          Alcotest.test_case "naive = seminaive" `Quick
            test_naive_equals_seminaive_tc;
          Alcotest.test_case "inequalities" `Quick test_eval_ineq;
          Alcotest.test_case "sp negation" `Quick test_eval_semipositive_negation;
          Alcotest.test_case "stratified comp-tc" `Quick
            test_eval_stratified_comp_tc;
          Alcotest.test_case "constants" `Quick test_eval_constants_in_rules;
          Alcotest.test_case "empty input" `Quick test_eval_empty_input;
          Alcotest.test_case "triangles" `Quick test_eval_multi_join;
          Alcotest.test_case "reorder constants first" `Quick
            test_reorder_constants_first;
          Alcotest.test_case "reorder duplicate atom" `Quick
            test_reorder_duplicate_atom;
          Alcotest.test_case "reorder preserves semantics" `Quick
            test_reorder_preserves_semantics;
        ] );
      ( "goal",
        [
          Alcotest.test_case "slice" `Quick test_goal_slice;
          Alcotest.test_case "matches" `Quick test_goal_matches;
          Alcotest.test_case "query" `Quick test_goal_query;
          Alcotest.test_case "agrees with full" `Quick test_goal_agrees_with_full;
        ] );
      ( "hashjoin",
        [
          Alcotest.test_case "tc" `Quick test_hashjoin_tc;
          Alcotest.test_case "repeated vars" `Quick test_hashjoin_repeated_vars;
          Alcotest.test_case "constants + ineq" `Quick
            test_hashjoin_constants_and_ineq;
          Alcotest.test_case "stratified" `Quick test_hashjoin_stratified;
          Alcotest.test_case "invention" `Quick test_hashjoin_invention;
        ] );
      ( "refeval",
        [
          Alcotest.test_case "zoo agreement" `Quick test_refeval_zoo_agreement;
          Alcotest.test_case "naive = seminaive" `Quick
            test_refeval_naive_seminaive;
        ] );
      ( "wellfounded",
        [
          Alcotest.test_case "chain" `Quick test_wf_simple_chain;
          Alcotest.test_case "draw cycle" `Quick test_wf_draw_cycle;
          Alcotest.test_case "cycle with escape" `Quick test_wf_cycle_with_escape;
          Alcotest.test_case "doubled step semi-positive" `Quick
            test_doubled_step_is_semipositive;
          Alcotest.test_case "doubling agrees (win-move)" `Quick
            test_doubling_agrees_on_winmove;
          Alcotest.test_case "doubling agrees (stratifiable)" `Quick
            test_doubling_agrees_on_stratifiable;
          Alcotest.test_case "agrees with stratified" `Quick
            test_wf_agrees_with_stratified;
        ] );
      ( "connectivity",
        [
          Alcotest.test_case "rules" `Quick test_rule_connectivity;
          Alcotest.test_case "neg not counted" `Quick
            test_rule_connectivity_neg_not_counted;
          Alcotest.test_case "example 5.1 P1" `Quick test_example_51_p1;
          Alcotest.test_case "example 5.1 P2" `Quick test_example_51_p2;
          Alcotest.test_case "semicon ok" `Quick test_semicon_last_stratum_ok;
          Alcotest.test_case "semicon violated" `Quick
            test_semicon_violation_by_dependency;
        ] );
      ( "fragment",
        [
          Alcotest.test_case "classification" `Quick test_fragments;
          Alcotest.test_case "bounds" `Quick test_fragment_bounds;
        ] );
      ( "ilog",
        [
          Alcotest.test_case "basic invention" `Quick test_ilog_basic_invention;
          Alcotest.test_case "skolem identity" `Quick
            test_ilog_same_tuple_same_value;
          Alcotest.test_case "divergence" `Quick test_ilog_divergence;
          Alcotest.test_case "validate" `Quick test_ilog_validate;
          Alcotest.test_case "unsafe positions" `Quick test_ilog_unsafe_positions;
          Alcotest.test_case "weakly safe" `Quick test_ilog_weakly_safe;
          Alcotest.test_case "join on invented" `Quick
            test_ilog_invention_as_join_value;
        ] );
      ("depgraph", [ Alcotest.test_case "dot export" `Quick test_depgraph ]);
      ( "points-of-order",
        [
          Alcotest.test_case "positive" `Quick test_points_positive;
          Alcotest.test_case "edb negation" `Quick test_points_edb_negation;
          Alcotest.test_case "semicon" `Quick test_points_semicon;
          Alcotest.test_case "blocking" `Quick test_points_blocking;
        ] );
      ( "program",
        [
          Alcotest.test_case "adom rules" `Quick test_adom_rules;
          Alcotest.test_case "adom noop" `Quick test_adom_augment_noop;
          Alcotest.test_case "api" `Quick test_program_api;
          Alcotest.test_case "bad output" `Quick test_program_rejects_bad_output;
          Alcotest.test_case "unstratifiable" `Quick
            test_program_rejects_unstratifiable;
          Alcotest.test_case "well-founded" `Quick
            test_program_wellfounded_semantics;
          Alcotest.test_case "as query" `Quick test_program_as_query;
        ] );
      ( "ivm",
        [
          Alcotest.test_case "basic" `Quick test_ivm_basic;
          Alcotest.test_case "shared support" `Quick test_ivm_shared_support;
          Alcotest.test_case "idb given" `Quick test_ivm_idb_given;
          Alcotest.test_case "unstratifiable" `Quick test_ivm_unstratifiable;
        ] );
      ("properties", qcheck_cases);
    ]
